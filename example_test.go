package graphfly_test

import (
	"fmt"

	graphfly "repro"
)

// The basic lifecycle: build a graph, create an engine (which performs the
// initial static computation), then feed update batches.
func ExampleNewSSSP() {
	g := graphfly.NewGraph(4)
	g.AddEdge(graphfly.Edge{Src: 0, Dst: 1, W: 1})
	g.AddEdge(graphfly.Edge{Src: 1, Dst: 2, W: 1})
	g.AddEdge(graphfly.Edge{Src: 2, Dst: 3, W: 1})

	eng := graphfly.NewSSSP(g, 0, graphfly.Config{Workers: 1})
	fmt.Println("before:", eng.Value(3))

	eng.ProcessBatch(graphfly.Batch{
		{Edge: graphfly.Edge{Src: 0, Dst: 3, W: 1}},            // shortcut appears
		{Edge: graphfly.Edge{Src: 1, Dst: 2, W: 1}, Del: true}, // road closes
	})
	fmt.Println("after:", eng.Value(3))
	// Output:
	// before: 3
	// after: 1
}

// Connected components need undirected semantics: symmetrize the initial
// edges; batches are symmetrized by the engine automatically.
func ExampleNewCC() {
	edges := graphfly.SymmetrizeEdges([]graphfly.Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 2, Dst: 3, W: 1},
	})
	g := graphfly.FromEdges(4, edges)
	eng := graphfly.NewCC(g, graphfly.Config{Workers: 1})
	fmt.Println("components:", eng.Value(1), eng.Value(3))

	eng.ProcessBatch(graphfly.Batch{{Edge: graphfly.Edge{Src: 1, Dst: 2, W: 1}}})
	fmt.Println("after join:", eng.Value(3))
	// Output:
	// components: 0 2
	// after join: 0
}

// Label propagation state is a distribution over labels; Argmax yields the
// assignment.
func ExampleNewLabelPropagation() {
	g := graphfly.NewGraph(3)
	g.AddEdge(graphfly.Edge{Src: 0, Dst: 1, W: 1})
	g.AddEdge(graphfly.Edge{Src: 1, Dst: 0, W: 1})
	g.AddEdge(graphfly.Edge{Src: 1, Dst: 2, W: 1})
	g.AddEdge(graphfly.Edge{Src: 2, Dst: 1, W: 1})

	eng := graphfly.NewLabelPropagation(g, 2, map[graphfly.VertexID]int{0: 1}, graphfly.Config{Workers: 1})
	fmt.Println("label of 2:", graphfly.Argmax(eng.State(2)))
	// Output:
	// label of 2: 1
}

// Workloads generate the paper's streaming methodology: warm start plus
// batched additions and deletions.
func ExampleNewWorkload() {
	numV, edges := graphfly.Dataset("LJ")
	w := graphfly.NewWorkload(numV, edges, graphfly.DefaultStream(100, 2, 7))
	fmt.Println("batches:", len(w.Batches))
	fmt.Println("first batch non-empty:", len(w.Batches[0]) > 0)
	// Output:
	// batches: 2
	// first batch non-empty: true
}
