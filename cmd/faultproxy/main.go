// faultproxy is the serving path's chaos tap: a TCP proxy that forwards one
// listen address to a real graphflyd (or graphfly-worker) while injecting
// seeded resets, partial writes, and delays per internal/netfault. check.sh
// parks it between the client and the daemon to prove exactly-once client
// resume end to end on the real binaries.
//
// Usage:
//
//	faultproxy -listen 127.0.0.1:0 -target 127.0.0.1:4242 \
//	    -netfault seed=7,reset=0.05,partial=0.02,delay=0.1,maxdelay=20ms
//
// It prints "faultproxy listening on ADDR -> TARGET" once ready (the same
// wait-for-line contract graphflyd uses) and serves until SIGINT/SIGTERM,
// then reports how many faults it injected.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/netfault"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to accept clients on")
	target := flag.String("target", "", "address of the real daemon (required)")
	spec := flag.String("netfault", "", "seeded fault mix, e.g. seed=7,reset=0.05,partial=0.02,delay=0.1,maxdelay=20ms,maxfaults=50")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "faultproxy: -target is required")
		os.Exit(2)
	}
	cfg, err := netfault.ParseSpec(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultproxy:", err)
		os.Exit(2)
	}
	p := netfault.NewProxy(*target, cfg)
	addr, err := p.Start(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultproxy:", err)
		os.Exit(1)
	}
	fmt.Printf("faultproxy listening on %s -> %s (%s)\n", addr, *target, cfg)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	p.Close()
	fmt.Printf("faultproxy done: %d resets, %d delays injected\n", p.In.Resets(), p.In.Delays())
}
