// Command graphfly-worker is one worker process of the socket cluster
// runtime. It dials the coordinator given by -addr, persists every applied
// batch and commanded checkpoint under -dir, and processes its share of the
// dependency flows until told to stop.
//
// Exit status: 0 after a graceful shutdown (SIGTERM/SIGINT, or the
// coordinator saying bye), nonzero when the coordinator link degrades past
// the retry budget — a supervisor should respawn the process with the SAME
// -dir and -id so the restart recovers from its WAL and rejoins.
//
// Example:
//
//	graphfly-worker -addr 127.0.0.1:7421 -dir /tmp/cluster/worker-0 -id 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
)

func main() {
	addr := flag.String("addr", "", "coordinator address (required)")
	dir := flag.String("dir", "", "directory for this worker's WAL and checkpoints (required)")
	id := flag.Int("id", -1, "worker id to present; -1 lets the coordinator assign one, restarts must present their previous id")
	connectTO := flag.Duration("connect-timeout", 30*time.Second, "give up dialing the coordinator after this long")
	heartbeat := flag.Duration("heartbeat", 0, "link heartbeat interval (0 = default)")
	peerTO := flag.Duration("peer-timeout", 0, "declare the coordinator unreachable after this much silence (0 = default)")
	retransBase := flag.Duration("retrans-base", 0, "base retransmission delay (0 = default)")
	maxRetries := flag.Int("max-retries", 0, "per-message retransmissions before the link is declared down (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress progress lines on stderr")
	flag.Parse()
	if *addr == "" || *dir == "" {
		fmt.Fprintln(os.Stderr, "graphfly-worker: -addr and -dir are required")
		os.Exit(2)
	}

	// SIGTERM/SIGINT cancel the context; RunWorker turns that into a bye,
	// a WAL flush, and a final checkpoint before returning nil.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var logf func(string, ...any)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "graphfly-worker[%d]: %s\n", os.Getpid(), fmt.Sprintf(format, args...))
		}
	}
	err := dist.RunWorker(ctx, dist.WorkerConfig{
		Addr:           *addr,
		Dir:            *dir,
		ID:             *id,
		ConnectTimeout: *connectTO,
		HeartbeatEvery: *heartbeat,
		RetransBase:    *retransBase,
		PeerTimeout:    *peerTO,
		MaxRetries:     *maxRetries,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphfly-worker[%d]: %v\n", os.Getpid(), err)
		os.Exit(1)
	}
}
