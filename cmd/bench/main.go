// Command bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bench                 # every table and figure at quick scale
//	bench -fig 11         # just Fig 11
//	bench -full           # dataset presets (honours GRAPHFLY_SCALE)
//	bench -ablations      # the design-choice ablation studies
//
// Output is aligned text, one block per table/figure, matching the rows and
// series the paper reports (see EXPERIMENTS.md for paper-vs-measured).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/expr"
)

func main() {
	fig := flag.String("fig", "", "table/figure id: table1, 4a, 4b, 11, 12, 13, 14a, 14b, 15a, 15b, 16, 17 (empty = all)")
	full := flag.Bool("full", false, "use the dataset presets instead of the quick scale")
	ablations := flag.Bool("ablations", false, "run the ablation studies instead of the paper figures")
	batch := flag.Int("batch", 0, "override batch size")
	batches := flag.Int("batches", 0, "override number of batches")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	faults := flag.String("faults", "", "extra fault schedule for the fault-sensitivity ablation (dist.ParseFaults syntax, e.g. seed=7,drop=0.1,crash=0.01)")
	flag.Parse()

	sc := expr.Quick()
	if *full {
		sc = expr.Full()
	}
	if *batch > 0 {
		sc.BatchSize = *batch
	}
	if *batches > 0 {
		sc.Batches = *batches
	}
	sc.Workers = *workers
	if *faults != "" {
		if _, err := dist.ParseFaults(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		sc.Faults = *faults
	}

	if *ablations {
		for _, t := range expr.Ablations(sc) {
			fmt.Println(t)
		}
		return
	}
	if *fig == "" {
		for _, t := range expr.All(sc) {
			fmt.Println(t)
		}
		return
	}
	id := strings.ToLower(strings.TrimPrefix(*fig, "fig"))
	run, ok := expr.ByID(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Println(run(sc))
}
