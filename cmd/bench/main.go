// Command bench regenerates the paper's tables and figures.
//
// Usage:
//
//	bench                 # every table and figure at quick scale
//	bench -fig 11         # just Fig 11
//	bench -full           # dataset presets (honours GRAPHFLY_SCALE)
//	bench -ablations      # the design-choice ablation studies
//	bench -json -fig 11   # also write BENCH_graphfly.json (typed rows,
//	                      # per-batch phase timings, env + git provenance)
//
// Output is aligned text, one block per table/figure, matching the rows and
// series the paper reports (see EXPERIMENTS.md for paper-vs-measured and
// the BENCH_*.json schema; scripts/benchdiff compares two reports).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/prof"
)

func main() {
	fig := flag.String("fig", "", "table/figure id: table1, 4a, 4b, 11, 12, 13, 14a, 14b, 15a, 15b, 16, 17, s1, s2, s3, s4, s5, s6, s7 (empty = all; comma-separated list runs several)")
	full := flag.Bool("full", false, "use the dataset presets instead of the quick scale")
	ablations := flag.Bool("ablations", false, "run the ablation studies instead of the paper figures")
	edgecap := flag.Int("edgecap", 0, "override the per-dataset edge cap")
	batch := flag.Int("batch", 0, "override batch size")
	batches := flag.Int("batches", 0, "override number of batches")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	sched := flag.String("sched", "", "unit scheduler: worksteal (default) or global")
	denseoff := flag.Bool("denseoff", false, "memory-discipline ablation: disable the hub adjacency index and per-batch scratch reuse (Fig S2 \"before\")")
	hubThreshold := flag.Int("hub-threshold", 0, "override the hub-index build threshold (0 = per-figure default; drop stays threshold/4)")
	hubReplicas := flag.Int("hub-replicas", 0, "replicas per hub under replication (0 = one per worker)")
	faults := flag.String("faults", "", "extra fault schedule for the fault-sensitivity ablation (dist.ParseFaults syntax, e.g. seed=7,drop=0.1,crash=0.01)")
	jsonOut := flag.Bool("json", false, "write the machine-readable report next to the text output")
	out := flag.String("out", "BENCH_graphfly.json", "report path for -json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here at exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace here")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	defer stop()

	sc := expr.Quick()
	if *full {
		sc = expr.Full()
	}
	if *edgecap > 0 {
		sc.EdgeCap = *edgecap
	}
	if *batch > 0 {
		sc.BatchSize = *batch
	}
	if *batches > 0 {
		sc.Batches = *batches
	}
	sc.Workers = *workers
	if kind, ok := engine.ParseScheduler(*sched); ok {
		sc.Scheduler = kind
	} else {
		fmt.Fprintf(os.Stderr, "bench: unknown scheduler %q\n", *sched)
		os.Exit(2)
	}
	sc.DenseOff = *denseoff
	sc.HubThreshold = *hubThreshold
	sc.HubReplicas = *hubReplicas
	if *faults != "" {
		if _, err := dist.ParseFaults(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		sc.Faults = *faults
	}
	if *jsonOut {
		sc.Rec = metrics.NewBatchRecorder(metrics.NewRegistry())
	}

	var tables []expr.Table
	switch {
	case *ablations:
		tables = expr.Ablations(sc)
	case *fig == "":
		tables = expr.All(sc)
	default:
		for _, one := range strings.Split(*fig, ",") {
			id := strings.ToLower(strings.TrimPrefix(strings.TrimSpace(one), "fig"))
			run, ok := expr.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "bench: unknown figure %q\n", one)
				os.Exit(2)
			}
			tables = append(tables, run(sc))
		}
	}
	for _, t := range tables {
		fmt.Println(t)
	}

	if *jsonOut {
		r := expr.BuildReport(sc, tables, gitSHA(), time.Now().UTC().Format(time.RFC3339))
		if err := r.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: report failed validation: %v\n", err)
			os.Exit(1)
		}
		if err := expr.WriteReport(*out, r); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s (%d figures, %d batches)\n",
			*out, len(r.Figures), len(r.Batches))
	}
	stop()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// gitSHA best-effort resolves the working tree's commit for provenance;
// reports stay valid without it (e.g. when run from a tarball).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
