// Command graphflyd is the long-lived serving daemon over a durable engine
// (selective or local): many concurrent ingest sessions append through the
// WAL group-commit layer (one shared fsync per group under -fsync always),
// and readers get consistent point-in-time answers from immutable
// batch-boundary snapshots. The same binary doubles as the client.
//
// Server:
//
//	graphflyd -waldir /tmp/d -addr 127.0.0.1:8464 -algo SSSP -dataset LJ -fsync always
//
// Clients (second terminal):
//
//	graphflyd -client ingest -addr 127.0.0.1:8464 -numberOfUpdateBatches 8 -nEdges 2000
//	graphflyd -client get    -addr 127.0.0.1:8464 -v 17
//	graphflyd -client topk   -addr 127.0.0.1:8464 -k 10
//	graphflyd -client watch  -addr 127.0.0.1:8464 -deltas 4
//	graphflyd -client stat   -addr 127.0.0.1:8464
//
// SIGTERM drains: admitted batches finish applying, sessions get a bye, and
// a final snapshot makes the next start recover instantly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/wal"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphflyd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	client := flag.String("client", "", "run as a client: ingest | get | topk | stat | watch | dump")
	addr := flag.String("addr", "127.0.0.1:8464", "server listen address (server) or target (client)")
	algoName := flag.String("algo", "SSSP", "algorithm: BFS | SSSP | SSWP | CC (selective) or triangle | kcore (local)")
	source := flag.Uint("source", 1, "source vertex for BFS/SSSP/SSWP")
	datasetCode := flag.String("dataset", "LJ", "dataset preset: FT TT TW UK LJ")
	nEdges := flag.Int("nEdges", 2000, "updates per generated batch (client ingest) and dataset batch sizing")
	batches := flag.Int("numberOfUpdateBatches", 8, "batches a client ingest session submits")
	deletions := flag.Float64("deletions", 0.1, "fraction of each generated batch that is deletions")
	seed := flag.Uint64("seed", 42, "stream sampling seed")
	firstBatch := flag.Int("first-batch", 0, "client ingest: skip the workload's first N batches (resume point)")
	workers := flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")
	flowCap := flag.Int("flowCap", 0, "dependency-flow size cap (0 = default)")
	sched := flag.String("sched", "", "unit scheduler: worksteal (default) or global")
	walDir := flag.String("waldir", "", "directory for WAL segments and snapshots (required, server)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: interval | always | off")
	snapEvery := flag.Int("snapshot-every", 16, "batches between snapshot checkpoints (0 = only at start/shutdown)")
	dedupWindow := flag.Int("dedup-window", 64, "per-client idempotency window: resends of the last N acked batches per client identity dedup instead of re-applying (0 = default)")
	diskFault := flag.String("diskfault", "", "inject WAL disk faults (testing), e.g. 'after=3,count=1,err=enospc' — the daemon degrades to read-only and recovers when appends succeed")
	groupWindow := flag.Duration("group-window", 500*time.Microsecond,
		"fsync=always commit window: how long a sync leader yields for concurrent appends to share its fsync (0 = off; lone writers never wait)")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session cap")
	maxPending := flag.Int("max-pending", 64, "admission window: logged-but-unapplied batches")
	showMetrics := flag.Bool("metrics", false, "print serve/wal counters and histograms at exit (server)")
	vtx := flag.Uint("v", 1, "vertex for -client get")
	topk := flag.Int("k", 10, "k for -client topk")
	deltas := flag.Int("deltas", 1, "delta pushes to print before exiting in -client watch")
	outFile := flag.String("o", "-", "output file for -client dump ('-' = stdout)")
	timeout := flag.Duration("timeout", 10*time.Second, "client dial/reply timeout")
	clientID := flag.String("client-id", "", "stable client identity for exactly-once resume: transport errors redial and resend the in-flight batch under its original sequence; the server dedups against its -dedup-window")
	flag.Parse()

	if *client != "" {
		runClient(*client, *addr, clientOpts{
			algo: *algoName, dataset: *datasetCode, nEdges: *nEdges,
			batches: *batches, deletions: *deletions, seed: *seed,
			firstBatch: *firstBatch, v: graph.VertexID(*vtx), k: *topk,
			deltas: *deltas, out: *outFile, timeout: *timeout, clientID: *clientID,
		})
		return
	}
	runServer(*addr, *algoName, graph.VertexID(*source), *datasetCode, *nEdges, *deletions, *seed,
		*workers, *flowCap, *sched, *walDir, *fsync, *snapEvery, *dedupWindow, *diskFault,
		*groupWindow, *maxSessions, *maxPending, *showMetrics)
}

func parseAlg(name string, src graph.VertexID) (algo.Selective, bool) {
	switch name {
	case "BFS":
		return algo.BFS{Src: src}, true
	case "SSSP":
		return algo.SSSP{Src: src}, true
	case "SSWP":
		return algo.SSWP{Src: src}, true
	case "CC":
		return algo.CC{}, true
	}
	return nil, false
}

func parseLocalAlg(name string) (algo.Local, bool) {
	switch name {
	case "triangle", "TC":
		return algo.TriangleCount{}, true
	case "kcore", "kCore", "KCore":
		return algo.KCore{}, true
	}
	return nil, false
}

// mirroredInitial doubles every initial edge for symmetric algorithms so
// the starting graph is undirected; the engines symmetrize streamed
// batches themselves.
func mirroredInitial(initial []graph.Edge) []graph.Edge {
	both := make([]graph.Edge, 0, 2*len(initial))
	for _, e := range initial {
		both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	return both
}

// buildWorkload regenerates the deterministic dataset workload. Server and
// ingest clients share it: the server takes the initial half, clients take
// the batch stream, and gen's prefix stability makes any batch count a
// prefix of any longer run with the same seed.
func buildWorkload(dataset string, batchSize, numBatches int, deletions float64, seed uint64) gen.Workload {
	cfg := gen.Dataset(dataset)
	edges := gen.Generate(cfg)
	if batchSize > len(edges)/2 {
		batchSize = len(edges) / 2
	}
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5,
		DeleteRatio:     deletions,
		BatchSize:       batchSize,
		NumBatches:      numBatches,
		Seed:            seed,
	})
}

func runServer(addr, algoName string, src graph.VertexID, dataset string, nEdges int, deletions float64, seed uint64,
	workers, flowCap int, sched, walDir, fsync string, snapEvery, dedupWindow int, diskFault string,
	groupWindow time.Duration, maxSessions, maxPending int, showMetrics bool) {
	alg, selOK := parseAlg(algoName, src)
	lalg, locOK := parseLocalAlg(algoName)
	if !selOK && !locOK {
		fatalf("unknown algorithm %q (serving supports BFS, SSSP, SSWP, CC, triangle, kcore)", algoName)
	}
	policy, ok := wal.ParseFsync(fsync)
	if !ok {
		fatalf("unknown fsync policy %q (want interval, always, or off)", fsync)
	}
	if walDir == "" {
		fatalf("-waldir is required (the WAL is what makes acknowledged batches durable)")
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	schedKind, ok := engine.ParseScheduler(sched)
	if !ok {
		fatalf("unknown scheduler %q", sched)
	}
	var faults *wal.DiskFaultInjector
	if diskFault != "" {
		inj, err := wal.ParseDiskFaultSpec(diskFault)
		if err != nil {
			fatalf("%v", err)
		}
		faults = inj
	}
	reg := metrics.NewRegistry()
	eCfg := engine.Config{Workers: workers, FlowCap: flowCap, Scheduler: schedKind}
	dc := wal.DurableConfig{
		Wal:           wal.Options{Dir: walDir, Policy: policy, Metrics: reg, GroupWindow: groupWindow, DiskFaults: faults},
		SnapshotEvery: snapEvery,
		DedupWindow:   dedupWindow,
	}

	freshGraph := func(symmetric bool) *graph.Streaming {
		w := buildWorkload(dataset, nEdges, 0, deletions, seed)
		initial := w.Initial
		if symmetric {
			initial = mirroredInitial(initial)
		}
		return graph.FromEdges(w.NumV, initial)
	}
	reportRecovery := func(rs wal.RecoveryStats) {
		fmt.Printf("recovered %s: snapshot seq %d, replayed %d batches to seq %d in %v\n",
			walDir, rs.SnapshotSeq, rs.Replayed, rs.LastSeq, rs.Duration)
	}

	var backend serve.Backend
	switch {
	case selOK && wal.HasSnapshot(walDir):
		durable, rs, err := wal.RecoverSelective(alg, eCfg, dc)
		if err != nil {
			fatalf("recovery from %s failed: %v", walDir, err)
		}
		reportRecovery(rs)
		backend = serve.SelectiveBackend{D: durable, Alg: alg}
	case selOK:
		durable, err := wal.NewDurableSelective(freshGraph(alg.Symmetric()), alg, eCfg, dc)
		if err != nil {
			fatalf("%v", err)
		}
		backend = serve.SelectiveBackend{D: durable, Alg: alg}
	case wal.HasSnapshot(walDir):
		durable, rs, err := wal.RecoverLocal(lalg, eCfg, dc)
		if err != nil {
			fatalf("recovery from %s failed: %v", walDir, err)
		}
		reportRecovery(rs)
		backend = serve.LocalBackend{D: durable, Alg: lalg}
	default:
		durable, err := wal.NewDurableLocal(freshGraph(true), lalg, eCfg, dc)
		if err != nil {
			fatalf("%v", err)
		}
		backend = serve.LocalBackend{D: durable, Alg: lalg}
	}

	srv, err := serve.New(serve.Config{
		Addr:        addr,
		Backend:     backend,
		MaxSessions: maxSessions,
		MaxPending:  maxPending,
		Metrics:     reg,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("graphflyd listening on %s (%s on %s, %d vertices, seq %d, fsync=%s)\n",
		srv.Addr(), algoName, dataset, srv.Snapshot().NumVertices(), backend.Seq(), policy)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "graphflyd: signal received — draining")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fatalf("shutdown: %v", err)
	}
	fmt.Printf("graphflyd drained: durable through seq %d\n", backend.Seq())
	if showMetrics {
		fmt.Print(reg.Snapshot().String())
	}
}

type clientOpts struct {
	algo, dataset string
	nEdges        int
	batches       int
	deletions     float64
	seed          uint64
	firstBatch    int
	v             graph.VertexID
	k             int
	deltas        int
	out           string
	timeout       time.Duration
	clientID      string
}

func runClient(op, addr string, o clientOpts) {
	role := serve.RoleQuery
	if op == "ingest" {
		role = serve.RoleIngest
	}
	// With -client-id, the session survives connection loss: transport errors
	// redial and resend the in-flight batch under its original idempotency
	// key, and the server's dedup window turns a resend of an already-logged
	// batch into an ack instead of a second apply.
	c, err := serve.DialOpts(addr, serve.ClientOptions{
		Role:        role,
		ClientID:    o.clientID,
		DialTimeout: o.timeout,
		OpTimeout:   o.timeout,
		Seed:        o.seed,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer c.Close()
	switch op {
	case "ingest":
		w := buildWorkload(o.dataset, o.nEdges, o.firstBatch+o.batches, o.deletions, o.seed)
		if o.firstBatch > len(w.Batches) {
			fatalf("-first-batch %d beyond the %d-batch workload", o.firstBatch, len(w.Batches))
		}
		for i, b := range w.Batches[o.firstBatch:] {
			seq, err := c.IngestRetry(b)
			if err != nil {
				fatalf("batch %d: %v", o.firstBatch+i, err)
			}
			fmt.Printf("ingested batch %d: seq=%d edges=%d\n", o.firstBatch+i, seq, len(b))
		}
	case "get":
		val, parent, seq, err := c.Get(o.v)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("vertex %d: value %g parent %d (at seq %d)\n", o.v, val, parent, seq)
	case "topk":
		recs, seq, err := c.TopK(o.k)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("top %d at seq %d:\n", len(recs), seq)
		for _, r := range recs {
			fmt.Printf("  %d %g\n", r.V, r.Val)
		}
	case "stat":
		st, err := c.Stat()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("applied seq %d, logged seq %d, %d sessions\n", st.AppliedSeq, st.LoggedSeq, st.Sessions)
	case "watch":
		if err := c.Subscribe(); err != nil {
			fatalf("%v", err)
		}
		for i := 0; i < o.deltas; i++ {
			d, ok, err := c.Next(0)
			if err != nil {
				fatalf("%v", err)
			}
			if !ok {
				fmt.Println("subscription ended")
				return
			}
			fmt.Printf("delta seq %d: %d vertices changed\n", d.Seq, len(d.Recs))
		}
	case "dump":
		// A full-width top-k is a consistent point-in-time dump of every
		// vertex — the smoke test's oracle comparison input.
		recs, seq, err := c.TopK(int(c.Welcome.NumV))
		if err != nil {
			fatalf("%v", err)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].V < recs[j].V })
		f := os.Stdout
		if o.out != "-" {
			f, err = os.Create(o.out)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
		}
		for _, r := range recs {
			fmt.Fprintf(f, "%d %g\n", r.V, r.Val)
		}
		fmt.Fprintf(os.Stderr, "dumped %d vertices at seq %d\n", len(recs), seq)
	default:
		fatalf("unknown client op %q (want ingest, get, topk, stat, watch, or dump)", op)
	}
}
