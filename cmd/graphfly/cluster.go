package main

// Cluster mode: graphfly -cluster N runs the socket coordinator in this
// process and supervises N real graphfly-worker processes, each with its
// own WAL directory under -clusterDir. Workers that die (crash, kill -9)
// are respawned with the same -dir and -id so they recover locally and
// rejoin; workers that exit cleanly (coordinator bye, SIGTERM) stay down.
//
// Pid files (<clusterDir>/worker-<id>.pid) track the live processes so
// external chaos harnesses (scripts/chaos.sh) can pick kill victims.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/algo"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// clusterRuntime ties the in-process coordinator to the worker supervisor.
type clusterRuntime struct {
	coord *dist.Coordinator
	sup   *supervisor
}

// startCluster launches the coordinator, spawns n supervised workers, and
// waits until all n have joined.
func startCluster(ctx context.Context, g *graph.Streaming, a algo.Selective,
	n, flowCap, ckptEvery int, dir, workerBin, addr string, reg *metrics.Registry) (*clusterRuntime, error) {
	bin, err := locateWorkerBin(workerBin)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graphfly: %w", err)
	}
	coord, err := dist.NewCoordinator(g, a, dist.CoordConfig{
		Addr:      addr,
		FlowCap:   flowCap,
		CkptEvery: ckptEvery,
		Metrics:   reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "graphfly: coord: %s\n", fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return nil, err
	}
	sup := newSupervisor(bin, coord.Addr(), dir)
	for i := 0; i < n; i++ {
		sup.spawn(i)
	}
	if err := coord.WaitForWorkers(ctx, n); err != nil {
		sup.stop()
		coord.Close()
		return nil, fmt.Errorf("graphfly: waiting for %d workers: %w", n, err)
	}
	return &clusterRuntime{coord: coord, sup: sup}, nil
}

// close byes the workers through the coordinator, then reaps the processes.
func (c *clusterRuntime) close() {
	c.coord.Close()
	c.sup.stop()
}

// supervisor spawns graphfly-worker processes and respawns any that die
// uncleanly, preserving each worker's id and durable directory.
type supervisor struct {
	bin  string
	addr string
	dir  string

	mu       sync.Mutex
	stopping bool
	procs    map[int]*os.Process
	wg       sync.WaitGroup
}

func newSupervisor(bin, addr, dir string) *supervisor {
	return &supervisor{bin: bin, addr: addr, dir: dir, procs: map[int]*os.Process{}}
}

func (s *supervisor) spawn(id int) {
	s.wg.Add(1)
	go s.runLoop(id)
}

func (s *supervisor) runLoop(id int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			return
		}
		cmd := exec.Command(s.bin,
			"-addr", s.addr,
			"-dir", filepath.Join(s.dir, fmt.Sprintf("worker-%d", id)),
			"-id", strconv.Itoa(id))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			s.mu.Unlock()
			fmt.Fprintf(os.Stderr, "graphfly: spawn worker %d: %v\n", id, err)
			return
		}
		s.procs[id] = cmd.Process
		s.mu.Unlock()
		pidPath := filepath.Join(s.dir, fmt.Sprintf("worker-%d.pid", id))
		os.WriteFile(pidPath, []byte(strconv.Itoa(cmd.Process.Pid)+"\n"), 0o644)

		err := cmd.Wait()
		s.mu.Lock()
		delete(s.procs, id)
		stopping := s.stopping
		s.mu.Unlock()
		os.Remove(pidPath)
		if stopping || err == nil {
			// Clean exit: the worker was told to stop (bye / SIGTERM).
			return
		}
		fmt.Fprintf(os.Stderr, "graphfly: worker %d died (%v) — respawning\n", id, err)
		time.Sleep(200 * time.Millisecond)
	}
}

// stop terminates the remaining workers gracefully, escalating to SIGKILL
// after a timeout, and waits for every monitor goroutine to finish.
func (s *supervisor) stop() {
	s.mu.Lock()
	s.stopping = true
	for _, p := range s.procs {
		p.Signal(syscall.SIGTERM)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		s.mu.Lock()
		for _, p := range s.procs {
			p.Kill()
		}
		s.mu.Unlock()
		<-done
	}
}

// locateWorkerBin resolves the graphfly-worker executable: an explicit
// path wins, then a sibling of this binary, then $PATH.
func locateWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "graphfly-worker")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("graphfly-worker"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("graphfly: graphfly-worker binary not found — build it next to graphfly (go build ./cmd/...) or pass -workerBin")
}
