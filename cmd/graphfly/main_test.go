package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// The SIGTERM-during-batch audit (DESIGN.md §4.11): a -wal run signaled at a
// batch marker must exit cleanly without snapshotting mid-batch state, and a
// recovery run over the same directory must land bit-exact on the oracle for
// however many batches survived — whether the signal hit at a boundary
// (clean final snapshot) or mid-apply (snapshot skipped, WAL tail replayed).

var (
	reBatchMark = regexp.MustCompile(`^batch (\d+): applied=`)
	reRecovSeq  = regexp.MustCompile(`replayed \d+ batches to seq (\d+)`)
)

func buildGraphfly(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "graphfly")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/graphfly")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func graphflyArgs(batches int, extra ...string) []string {
	return append([]string{
		"-algo", "SSSP", "-dataset", "LJ", "-nEdges", "400",
		"-numberOfUpdateBatches", strconv.Itoa(batches),
		"-seed", "42", "-deletions", "0.1",
	}, extra...)
}

func TestSigtermAtBatchMarkersRecoversClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real graphfly processes")
	}
	bin := buildGraphfly(t)

	for _, killAfter := range []int{1, 4} {
		t.Run(fmt.Sprintf("marker%d", killAfter), func(t *testing.T) {
			walDir := t.TempDir()

			// Run with the WAL on and SIGTERM the moment batch marker
			// killAfter prints — the next batch is typically mid-flight.
			cmd := exec.Command(bin, graphflyArgs(12,
				"-wal", "-waldir", walDir, "-fsync", "always", "-snapshot-every", "4")...)
			cmd.Stderr = os.Stderr
			out, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
			markers := -1
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				if m := reBatchMark.FindStringSubmatch(sc.Text()); m != nil {
					markers, _ = strconv.Atoi(m[1])
					if markers == killAfter {
						cmd.Process.Signal(syscall.SIGTERM)
					}
				}
			}
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("SIGTERM exit: %v", err)
				}
			case <-time.After(40 * time.Second):
				t.Fatal("no clean exit within 40s of SIGTERM")
			}
			if markers < killAfter {
				t.Fatalf("only %d batch markers before exit", markers+1)
			}

			// Recovery run: no new batches, dump the recovered state.
			recPath := filepath.Join(t.TempDir(), "recovered.txt")
			rec := exec.Command(bin, graphflyArgs(0,
				"-wal", "-waldir", walDir, "-fsync", "always", "-snapshot-every", "4",
				"-outputFile", recPath)...)
			recOut, err := rec.CombinedOutput()
			if err != nil {
				t.Fatalf("recovery run: %v\n%s", err, recOut)
			}
			m := reRecovSeq.FindSubmatch(recOut)
			if m == nil {
				t.Fatalf("no recovery banner in:\n%s", recOut)
			}
			seq, _ := strconv.Atoi(string(m[1]))
			// fsync=always: every marked batch was durable before its marker
			// printed, so recovery may never land short of the last marker.
			if seq < markers+1 || seq > 12 {
				t.Fatalf("recovered to seq %d; %d batches were acknowledged", seq, markers+1)
			}

			// Oracle: a fresh single-shot run over exactly seq batches
			// (gen's prefix stability: the first seq batches of the 12-batch
			// stream ARE the seq-batch stream). Byte-compare the dumps.
			oraPath := filepath.Join(t.TempDir(), "oracle.txt")
			ora := exec.Command(bin, graphflyArgs(seq, "-outputFile", oraPath)...)
			if out, err := ora.CombinedOutput(); err != nil {
				t.Fatalf("oracle run: %v\n%s", err, out)
			}
			got, err := os.ReadFile(recPath)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(oraPath)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("recovered values differ from the %d-batch oracle", seq)
			}
		})
	}
}
