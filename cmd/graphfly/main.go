// Command graphfly mirrors the paper artifact's per-algorithm binaries as
// subcommands: it generates (or loads) a graph, samples an update stream,
// and runs the requested algorithm incrementally, printing per-batch
// statistics and a result digest.
//
// Examples (cf. the artifact appendix):
//
//	graphfly -algo BFS  -source 1 -numberOfUpdateBatches 2 -nEdges 10000 -dataset LJ
//	graphfly -algo SSSP -source 1 -nEdges 100000 -dataset UK -deletions 0.3
//	graphfly -algo PageRank -dataset TW -nEdges 50000
//	graphfly -algo LabelPropagation -dataset LJ -labels 4
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/algo"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/wal"
)

func main() {
	algoName := flag.String("algo", "SSSP", "BFS | SSSP | SSWP | CC | PageRank | LabelPropagation")
	source := flag.Uint("source", 1, "source vertex for BFS/SSSP/SSWP")
	batches := flag.Int("numberOfUpdateBatches", 1, "number of update batches")
	nEdges := flag.Int("nEdges", 100000, "updates per batch")
	datasetCode := flag.String("dataset", "LJ", "dataset preset: FT TT TW UK LJ")
	deletions := flag.Float64("deletions", 0.1, "fraction of each batch that is deletions")
	labels := flag.Int("labels", 4, "label count for LabelPropagation")
	seedsFile := flag.String("seedsFile", "", "LabelPropagation seeds file ('vertex label' per line)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flowCap := flag.Int("flowCap", 0, "dependency-flow size cap (0 = default)")
	sched := flag.String("sched", "", "unit scheduler: worksteal (default) or global")
	denseoff := flag.Bool("denseoff", false, "memory-discipline ablation: disable the hub adjacency index and per-batch scratch reuse")
	replicateHubs := flag.Bool("replicate-hubs", false, "split hub fan-in across per-worker replicas with diffused combining")
	hubReplicas := flag.Int("hub-replicas", 0, "replicas per hub with -replicate-hubs (0 = one per worker)")
	hubThreshold := flag.Int("hub-threshold", 0, "override the hub-index build threshold (0 = graph default 64; drop stays threshold/4)")
	seed := flag.Uint64("seed", 42, "stream sampling seed")
	outputFile := flag.String("outputFile", "", "write the converged values here ('-' = stdout)")
	graphPath := flag.String("graphPath", "", "load the initial graph from an edge-tuple file instead of generating it")
	streamPath := flag.String("streamPath", "", "load the update stream from a stream file instead of sampling it")
	walOn := flag.Bool("wal", false, "write-ahead log every batch and snapshot periodically (selective algorithms, single node); with an existing -waldir, recover from it first")
	walDir := flag.String("waldir", "", "directory for WAL segments and snapshots (required with -wal)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: interval | always | off")
	snapEvery := flag.Int("snapshot-every", 16, "batches between snapshot checkpoints in -wal mode")
	nodes := flag.Int("nodes", 0, "run the distributed cluster simulation over this many worker nodes (selective algorithms only)")
	clusterN := flag.Int("cluster", 0, "spawn this many real graphfly-worker processes and run the batches over the socket runtime (selective algorithms only)")
	clusterDir := flag.String("clusterDir", "", "base directory for per-worker WALs, checkpoints, and pid files (required with -cluster)")
	workerBin := flag.String("workerBin", "", "path to the graphfly-worker binary (default: sibling of this binary, then $PATH)")
	clusterAddr := flag.String("addr", "127.0.0.1:0", "coordinator listen address in -cluster mode")
	faults := flag.String("faults", "", "fault injection spec for -nodes mode, e.g. seed=7,drop=0.05,crash=0.01,crashat=1:3:0 (keys: seed drop dup delay reorder maxdelay crash maxcrashes crashat detect retrans ckpt maxrounds norejoin)")
	showMetrics := flag.Bool("metrics", false, "print engine counters and phase histograms at exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here at exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace here")
	flag.Parse()

	profStop, err := prof.Start(*cpuprofile, *tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
		os.Exit(1)
	}
	defer profStop()

	fsyncPolicy, ok := wal.ParseFsync(*fsync)
	if !ok {
		fmt.Fprintf(os.Stderr, "graphfly: unknown fsync policy %q (want interval, always, or off)\n", *fsync)
		os.Exit(2)
	}
	if *walOn {
		switch {
		case *walDir == "":
			fmt.Fprintln(os.Stderr, "graphfly: -wal requires -waldir")
			os.Exit(2)
		case *nodes > 1:
			fmt.Fprintln(os.Stderr, "graphfly: -wal is single-node only (the distributed runtime checkpoints through dist.SaveCheckpoint)")
			os.Exit(2)
		case *snapEvery < 1:
			fmt.Fprintln(os.Stderr, "graphfly: -snapshot-every must be >= 1")
			os.Exit(2)
		}
	}
	if *clusterN > 0 {
		switch {
		case *clusterDir == "":
			fmt.Fprintln(os.Stderr, "graphfly: -cluster requires -clusterDir")
			os.Exit(2)
		case *walOn || *nodes > 1:
			fmt.Fprintln(os.Stderr, "graphfly: -cluster is exclusive with -wal and -nodes (workers own their WALs)")
			os.Exit(2)
		case *snapEvery < 1:
			fmt.Fprintln(os.Stderr, "graphfly: -snapshot-every must be >= 1")
			os.Exit(2)
		}
	}

	// SIGTERM/SIGINT cancel this context; the batch loop stops at the next
	// boundary and every mode flushes its durable state on the way out.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()

	var fcfg dist.FaultConfig
	if *faults != "" {
		var err error
		fcfg, err = dist.ParseFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
			os.Exit(2)
		}
		if *nodes < 2 {
			fmt.Fprintln(os.Stderr, "graphfly: -faults requires -nodes >= 2 (faults are injected into the distributed runtime)")
			os.Exit(2)
		}
	}

	var w gen.Workload
	datasetName := *datasetCode
	batchSize := *nEdges
	if *graphPath != "" {
		initial, numV, err := gio.LoadEdgesFile(*graphPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
			os.Exit(1)
		}
		w = gen.Workload{NumV: numV, Initial: initial}
		datasetName = *graphPath
		if *streamPath != "" {
			batchesIn, err := gio.LoadStreamFile(*streamPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
				os.Exit(1)
			}
			w.Batches = batchesIn
		}
	} else {
		cfg := gen.Dataset(*datasetCode)
		edges := gen.Generate(cfg)
		if batchSize > len(edges)/2 {
			batchSize = len(edges) / 2
			fmt.Fprintf(os.Stderr, "graphfly: batch capped to %d (dataset has %d edges)\n", batchSize, len(edges))
		}
		w = gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
			InitialFraction: 0.5,
			DeleteRatio:     *deletions,
			BatchSize:       batchSize,
			NumBatches:      *batches,
			Seed:            *seed,
		})
	}
	schedKind, ok := engine.ParseScheduler(*sched)
	if !ok {
		fmt.Fprintf(os.Stderr, "graphfly: unknown scheduler %q\n", *sched)
		os.Exit(2)
	}
	eCfg := engine.Config{
		Workers: *workers, FlowCap: *flowCap, Scheduler: schedKind, DenseOff: *denseoff,
		HubReplication: *replicateHubs, HubReplicas: *hubReplicas, HubThreshold: *hubThreshold,
	}
	if *replicateHubs && *denseoff {
		fmt.Fprintln(os.Stderr, "graphfly: -replicate-hubs requires the hub index; it is disabled under -denseoff")
		os.Exit(2)
	}
	var reg *metrics.Registry
	if *showMetrics {
		reg = metrics.NewRegistry()
		eCfg.Metrics = reg
	}

	var (
		values  func() []float64
		run     func(graph.Batch) (engine.BatchStats, error)
		cluster *dist.Cluster
		crt     *clusterRuntime
		durable *wal.DurableSelective
		dim     = 1
	)
	src := graph.VertexID(*source)
	switch *algoName {
	case "BFS", "SSSP", "SSWP", "CC":
		var a algo.Selective
		switch *algoName {
		case "BFS":
			a = algo.BFS{Src: src}
		case "SSSP":
			a = algo.SSSP{Src: src}
		case "SSWP":
			a = algo.SSWP{Src: src}
		case "CC":
			a = algo.CC{}
		}
		initial := w.Initial
		if a.Symmetric() {
			var both []graph.Edge
			for _, e := range initial {
				both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
			}
			initial = both
		}
		g := graph.FromEdges(w.NumV, initial)
		switch {
		case *clusterN > 0:
			var err error
			crt, err = startCluster(ctx, g, a, *clusterN, *flowCap, *snapEvery, *clusterDir, *workerBin, *clusterAddr, reg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
				os.Exit(1)
			}
			values = crt.coord.Values
		case *nodes > 1:
			cluster = dist.NewClusterWithFaults(g, a, *nodes, *flowCap, fcfg)
			values = cluster.Values
		case *walOn:
			if err := os.MkdirAll(*walDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
				os.Exit(1)
			}
			dc := wal.DurableConfig{
				Wal:           wal.Options{Dir: *walDir, Policy: fsyncPolicy, Metrics: reg},
				SnapshotEvery: *snapEvery,
			}
			if wal.HasSnapshot(*walDir) {
				// An existing log wins over the generated initial graph: the
				// stream continues from the recovered state.
				var rs wal.RecoveryStats
				var err error
				durable, rs, err = wal.RecoverSelective(a, eCfg, dc)
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphfly: recovery from %s failed: %v\n", *walDir, err)
					os.Exit(1)
				}
				fmt.Printf("recovered %s: snapshot seq %d, replayed %d batches to seq %d in %v\n",
					*walDir, rs.SnapshotSeq, rs.Replayed, rs.LastSeq, rs.Duration)
			} else {
				var err error
				durable, err = wal.NewDurableSelective(g, a, eCfg, dc)
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
					os.Exit(1)
				}
			}
			values = durable.Eng.Values
			run = func(b graph.Batch) (engine.BatchStats, error) {
				return durable.ProcessBatch(ctx, b)
			}
		default:
			eng := engine.NewSelective(g, a, eCfg)
			values = eng.Values
			run = eng.ProcessBatchE
		}
	case "PageRank", "LabelPropagation":
		var a algo.Accumulative
		if *algoName == "PageRank" {
			a = algo.NewPageRank(w.NumV)
		} else {
			seeds := map[graph.VertexID]int{}
			if *seedsFile != "" {
				var err error
				seeds, err = gio.LoadSeedsFile(*seedsFile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
					os.Exit(1)
				}
			} else {
				for i := 0; i < 4**labels; i++ {
					seeds[graph.VertexID((i*2654435761)%w.NumV)] = i % *labels
				}
			}
			a = algo.NewLabelPropagation(*labels, seeds)
			dim = *labels
		}
		if *nodes > 1 || *clusterN > 0 {
			fmt.Fprintf(os.Stderr, "graphfly: -nodes and -cluster support the selective algorithms only (%s is accumulative)\n", *algoName)
			os.Exit(2)
		}
		if *walOn {
			fmt.Fprintf(os.Stderr, "graphfly: -wal supports the selective algorithms only (%s is accumulative)\n", *algoName)
			os.Exit(2)
		}
		g := graph.FromEdges(w.NumV, w.Initial)
		eng := engine.NewAccumulative(g, a, eCfg)
		values = eng.Values
		run = eng.ProcessBatchE
	default:
		fmt.Fprintf(os.Stderr, "graphfly: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	fmt.Printf("graphfly %s on %s: %d vertices, %d initial edges, %d batches\n",
		*algoName, datasetName, w.NumV, len(w.Initial), len(w.Batches))
	if cluster != nil {
		fmt.Printf("distributed: %d nodes", *nodes)
		if fcfg.Enabled() {
			fmt.Printf(", faults %q", *faults)
		}
		fmt.Println()
	}
	if crt != nil {
		fmt.Printf("cluster: %d worker processes via %s\n", *clusterN, crt.coord.Addr())
	}
	interrupted := false
	for bi, b := range w.Batches {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		if cluster != nil {
			if err := cluster.ProcessBatchE(b); err != nil {
				fmt.Fprintf(os.Stderr, "graphfly: batch %d rejected: %v\n", bi, err)
				os.Exit(1)
			}
			fmt.Printf("batch %d: rounds=%d msgs=%d\n", bi, cluster.LastRounds, cluster.LastCrossMsgs)
			continue
		}
		if crt != nil {
			if err := crt.coord.ProcessBatch(ctx, b); err != nil {
				if ctx.Err() != nil {
					interrupted = true
					break
				}
				crt.close()
				fmt.Fprintf(os.Stderr, "graphfly: batch %d rejected: %v\n", bi, err)
				os.Exit(1)
			}
			fmt.Printf("batch %d: seq=%d live=%d\n", bi, crt.coord.BoundarySeq(), crt.coord.LiveWorkers())
			continue
		}
		st, err := run(b)
		if err != nil {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			fmt.Fprintf(os.Stderr, "graphfly: batch %d rejected: %v\n", bi, err)
			os.Exit(1)
		}
		fmt.Printf("batch %d: applied=%d trimmed=%d flows=%d units=%d levels=%d msgs=%d relax=%d time=%v\n",
			bi, st.Applied, st.Trimmed, st.Impacted, st.Units, st.Levels, st.CrossMsgs, st.Relaxations, st.Total)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "graphfly: interrupted — flushing durable state")
	}
	if durable != nil {
		if interrupted {
			if durable.Dirty() {
				// The signal landed mid-batch: the engine state is between
				// boundaries and must not be snapshotted. The batch is
				// already in the WAL; recovery replays it onto the last
				// good snapshot.
				fmt.Fprintln(os.Stderr, "graphfly: interrupted mid-batch — skipping final snapshot; recovery will replay the WAL tail")
			} else if err := durable.Snapshot(); err != nil {
				// Final checkpoint so a later run recovers instantly instead
				// of replaying the whole log tail.
				fmt.Fprintf(os.Stderr, "graphfly: final snapshot: %v\n", err)
				os.Exit(1)
			}
		}
		if err := durable.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "graphfly: wal close: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wal: %s durable through seq %d (fsync=%s, snapshot every %d)\n",
			*walDir, durable.Seq(), fsyncPolicy, *snapEvery)
	}
	if crt != nil {
		// Bye the workers (each writes a final checkpoint) and reap them.
		crt.close()
		fmt.Printf("cluster: boundary seq %d\n", crt.coord.BoundarySeq())
	}
	if cluster != nil && fcfg.Enabled() {
		s := cluster.Stats
		fmt.Printf("faults: dropped=%d duplicated=%d delayed=%d reordered=%d retransmits=%d dupsDiscarded=%d crashes=%d rejoins=%d recovered=%d replayed=%d reseeded=%d\n",
			s.Dropped, s.Duplicated, s.Delayed, s.Reordered, s.Retransmits, s.DupsDiscarded, s.Crashes, s.Rejoins, s.RecoveredVerts, s.ReplayedMsgs, s.ReplaySeeds)
	}
	digest(values(), dim)
	if *outputFile != "" {
		writeValues(*outputFile, values(), dim)
	}
	if reg != nil {
		fmt.Print(reg.Snapshot().String())
	}
	profStop()
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
		os.Exit(1)
	}
}

// digest prints a short summary of the converged values.
func digest(vals []float64, dim int) {
	n := len(vals) / dim
	reached, sum := 0, 0.0
	for v := 0; v < n; v++ {
		x := vals[v*dim]
		if !math.IsInf(x, 0) {
			sum += x
			if x != 0 {
				reached++
			}
		}
	}
	fmt.Printf("result: %d vertices, %d nonzero, component-0 sum %.6g\n", n, reached, sum)
}

func writeValues(path string, vals []float64, dim int) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphfly: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	n := len(vals) / dim
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, v := range ids {
		fmt.Fprintf(f, "%d", v)
		for d := 0; d < dim; d++ {
			fmt.Fprintf(f, " %g", vals[v*dim+d])
		}
		fmt.Fprintln(f)
	}
}
