// Command graphgen materializes the synthetic datasets and edge streams to
// disk in the artifact's formats: an edge-tuple file for the initial graph
// and a stream file of batched additions/deletions, so external tools (or
// re-runs) can consume identical inputs.
//
//	graphgen -dataset LJ -out /tmp/lj            # lj.edges + lj.stream
//	graphgen -dataset UK -batch 100000 -batches 5 -deletions 0.3 -out /tmp/uk
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/gio"
)

func main() {
	code := flag.String("dataset", "LJ", "dataset preset: FT TT TW UK LJ")
	out := flag.String("out", "", "output path prefix (required)")
	batch := flag.Int("batch", 10000, "updates per batch")
	batches := flag.Int("batches", 3, "number of batches")
	deletions := flag.Float64("deletions", 0.1, "deletion fraction per batch")
	seed := flag.Uint64("seed", 42, "stream sampling seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		os.Exit(2)
	}
	cfg := gen.Dataset(*code)
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5,
		DeleteRatio:     *deletions,
		BatchSize:       *batch,
		NumBatches:      *batches,
		Seed:            *seed,
	})

	must := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	}
	must(gio.SaveEdgesFile(*out+".edges", w.Initial))
	must(gio.SaveStreamFile(*out+".stream", w.Batches))

	fmt.Printf("wrote %s.edges (%d edges) and %s.stream (%d batches x ~%d updates)\n",
		*out, len(w.Initial), *out, len(w.Batches), *batch)
}
