// Package graphfly is a from-scratch Go reproduction of GraphFly (SC'22):
// efficient asynchronous streaming-graph processing via dependency-flows.
//
// The library processes batches of edge insertions and deletions over a
// directed weighted graph while keeping algorithm results (shortest paths,
// widest paths, BFS levels, connected components, PageRank, label
// propagation) incrementally converged. Its core idea, taken from the
// paper, is to partition the graph into dependency-flows derived from
// D-trees so that the refinement and recomputation phases of incremental
// processing fuse per flow instead of synchronizing globally.
//
// Quick start:
//
//	g := graphfly.NewGraph(4)
//	g.AddEdge(graphfly.Edge{Src: 0, Dst: 1, W: 1})
//	g.AddEdge(graphfly.Edge{Src: 1, Dst: 2, W: 1})
//	eng := graphfly.NewSSSP(g, 0, graphfly.Config{})
//	eng.ProcessBatch(graphfly.Batch{
//	    {Edge: graphfly.Edge{Src: 0, Dst: 2, W: 1}},           // insert
//	    {Edge: graphfly.Edge{Src: 1, Dst: 2, W: 1}, Del: true}, // delete
//	})
//	dist := eng.Value(2) // 1
//
// The KickStarter and GraphBolt baselines live in internal packages and are
// exposed through the benchmark harness (cmd/bench) rather than this API.
package graphfly

import (
	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Graph is the mutable streaming graph all engines operate on.
	Graph = graph.Streaming
	// Edge is a directed weighted edge.
	Edge = graph.Edge
	// Update is one streaming mutation (addition or deletion).
	Update = graph.Update
	// Batch is an atomically applied group of updates.
	Batch = graph.Batch
	// VertexID identifies a vertex (dense, in [0, NumVertices)).
	VertexID = graph.VertexID
	// Config tunes an engine (workers, flow cap, ablations, profiling).
	Config = engine.Config
	// BatchStats reports what one ProcessBatch did.
	BatchStats = engine.BatchStats
	// SelectiveEngine processes monotonic algorithms (SSSP/SSWP/BFS/CC).
	SelectiveEngine = engine.Selective
	// AccumulativeEngine processes aggregation algorithms (PageRank/LP).
	AccumulativeEngine = engine.Accumulative
	// BatchError reports the first malformed update in a rejected batch.
	// The engines' ProcessBatchE methods return it (wrapped) instead of
	// mutating state, so callers fed by untrusted update streams can drop
	// the bad batch and keep going; ProcessBatch panics with it instead.
	BatchError = graph.BatchError
	// Workload is a generated streaming experiment (initial graph + batches).
	Workload = gen.Workload
	// StreamConfig controls how a workload's update stream is sampled.
	StreamConfig = gen.StreamConfig
	// SchedulerKind selects the engine's unit scheduler (Config.Scheduler).
	SchedulerKind = engine.SchedulerKind
)

// Scheduler kinds for Config.Scheduler.
const (
	// SchedWorkStealing is the default level-banded work-stealing scheduler.
	SchedWorkStealing = engine.SchedWorkStealing
	// SchedGlobal is the reference global-lock priority pool.
	SchedGlobal = engine.SchedGlobal
)

// NewGraph returns an empty streaming graph with n vertices.
func NewGraph(n int) *Graph { return graph.NewStreaming(n) }

// FromEdges builds a streaming graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// NewSSSP returns a GraphFly engine maintaining single-source shortest
// paths from src. The graph must already hold the initial edges; the
// constructor performs the initial (static) computation.
func NewSSSP(g *Graph, src VertexID, cfg Config) *SelectiveEngine {
	return engine.NewSelective(g, algo.SSSP{Src: src}, cfg)
}

// NewBFS returns a GraphFly engine maintaining BFS hop counts from src.
func NewBFS(g *Graph, src VertexID, cfg Config) *SelectiveEngine {
	return engine.NewSelective(g, algo.BFS{Src: src}, cfg)
}

// NewSSWP returns a GraphFly engine maintaining single-source widest paths
// from src.
func NewSSWP(g *Graph, src VertexID, cfg Config) *SelectiveEngine {
	return engine.NewSelective(g, algo.SSWP{Src: src}, cfg)
}

// NewCC returns a GraphFly engine maintaining connected components
// (minimum-label) with undirected semantics: batches are symmetrized
// automatically, and the initial graph should contain both directions of
// every edge (use SymmetrizeEdges).
func NewCC(g *Graph, cfg Config) *SelectiveEngine {
	return engine.NewSelective(g, algo.CC{}, cfg)
}

// NewPageRank returns a GraphFly engine maintaining damped weighted
// PageRank over the streaming graph.
func NewPageRank(g *Graph, cfg Config) *AccumulativeEngine {
	return engine.NewAccumulative(g, algo.NewPageRank(g.NumVertices()), cfg)
}

// NewLabelPropagation returns a GraphFly engine maintaining seeded label
// propagation with k labels. seeds maps vertices to their fixed labels in
// [0, k).
func NewLabelPropagation(g *Graph, k int, seeds map[VertexID]int, cfg Config) *AccumulativeEngine {
	return engine.NewAccumulative(g, algo.NewLabelPropagation(k, seeds), cfg)
}

// Argmax returns the winning label index of a label-propagation state
// vector (-1 when the vertex received no label mass).
func Argmax(state []float64) int { return algo.Argmax(state) }

// SymmetrizeEdges returns the edge list with the reverse of every edge
// added (deduplicated), for undirected algorithms such as CC.
func SymmetrizeEdges(edges []Edge) []Edge {
	type key struct{ a, b VertexID }
	seen := make(map[key]bool, len(edges))
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		a, b := e.Src, e.Dst
		if a > b {
			a, b = b, a
		}
		k := key{a, b}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out,
			Edge{Src: a, Dst: b, W: e.W},
			Edge{Src: b, Dst: a, W: e.W},
		)
	}
	return out
}

// Dataset returns the synthetic stand-in for one of the paper's graphs
// ("FT", "TT", "TW", "UK", "LJ") as an edge list plus its vertex count.
func Dataset(code string) (numV int, edges []Edge) {
	cfg := gen.Dataset(code)
	return cfg.NumV, gen.Generate(cfg)
}

// NewWorkload samples a streaming workload from an edge list following the
// paper's methodology (warm start + batched additions/deletions).
func NewWorkload(numV int, edges []Edge, sc StreamConfig) Workload {
	return gen.BuildWorkload(numV, edges, sc)
}

// DefaultStream returns the paper's default stream shape: 50 % warm start
// and 10 % deletions per batch.
func DefaultStream(batchSize, numBatches int, seed uint64) StreamConfig {
	return gen.DefaultStream(batchSize, numBatches, seed)
}
