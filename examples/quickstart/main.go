// Quickstart: maintain shortest paths over a small streaming graph and
// watch values adjust as edges are inserted and deleted.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	graphfly "repro"
)

func main() {
	// A small road network: 0 is the depot.
	//
	//	0 --1--> 1 --1--> 2 --1--> 3
	//	 \________2_______/
	g := graphfly.NewGraph(4)
	for _, e := range []graphfly.Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 0, Dst: 2, W: 2},
	} {
		g.AddEdge(e)
	}

	eng := graphfly.NewSSSP(g, 0, graphfly.Config{})
	fmt.Println("initial distances:")
	printDistances(eng, 4)

	// A shortcut appears, and the 1->2 road closes.
	stats := eng.ProcessBatch(graphfly.Batch{
		{Edge: graphfly.Edge{Src: 0, Dst: 3, W: 1}},            // new shortcut
		{Edge: graphfly.Edge{Src: 1, Dst: 2, W: 1}, Del: true}, // closure
	})
	fmt.Printf("\nafter one batch (%d updates applied, %d vertices trimmed):\n",
		stats.Applied, stats.Trimmed)
	printDistances(eng, 4)

	// The closure is repaired with a slower road.
	eng.ProcessBatch(graphfly.Batch{
		{Edge: graphfly.Edge{Src: 1, Dst: 2, W: 5}},
	})
	fmt.Println("\nafter the repair:")
	printDistances(eng, 4)
}

func printDistances(eng *graphfly.SelectiveEngine, n int) {
	for v := graphfly.VertexID(0); int(v) < n; v++ {
		fmt.Printf("  dist(0 -> %d) = %v\n", v, eng.Value(v))
	}
}
