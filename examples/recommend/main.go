// Real-time content recommendation over a growing social graph — the
// paper's second motivating scenario: PageRank over follow relationships
// is kept converged while follows and unfollows stream in, so the "who to
// recommend" ranking is always fresh.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"sort"

	graphfly "repro"
)

func main() {
	// Synthesize a follow graph that stands in for the paper's Twitter
	// datasets, then stream the remaining half as follow/unfollow events.
	numV, edges := graphfly.Dataset("LJ")
	w := graphfly.NewWorkload(numV, edges, graphfly.DefaultStream(5000, 3, 7))

	g := graphfly.FromEdges(w.NumV, w.Initial)
	eng := graphfly.NewPageRank(g, graphfly.Config{})

	fmt.Printf("social graph: %d users, %d initial follows\n", w.NumV, len(w.Initial))
	fmt.Println("initial top influencers:")
	printTop(eng, 5)

	for bi, batch := range w.Batches {
		st := eng.ProcessBatch(batch)
		fmt.Printf("\nevent batch %d: %d follow changes applied in %v (%d flows touched)\n",
			bi, st.Applied, st.Total, st.Impacted)
		printTop(eng, 5)
	}
}

func printTop(eng *graphfly.AccumulativeEngine, k int) {
	vals := eng.Values()
	type ranked struct {
		v graphfly.VertexID
		r float64
	}
	rs := make([]ranked, len(vals))
	for v, r := range vals {
		rs[v] = ranked{graphfly.VertexID(v), r}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].r != rs[j].r {
			return rs[i].r > rs[j].r
		}
		return rs[i].v < rs[j].v
	})
	for i := 0; i < k && i < len(rs); i++ {
		fmt.Printf("  #%d user %6d rank %.6g\n", i+1, rs[i].v, rs[i].r)
	}
}
