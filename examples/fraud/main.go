// Fraud detection over a streaming transaction graph — the paper's
// motivating Label Propagation scenario: a handful of accounts are known
// fraudsters or known-good merchants; as transactions stream in (and
// chargebacks remove them), every account's label distribution is kept
// converged, and accounts drifting toward the fraud label are flagged in
// real time.
//
//	go run ./examples/fraud
package main

import (
	"fmt"

	graphfly "repro"
)

const (
	labelGood  = 0
	labelFraud = 1
)

func main() {
	// 60 accounts. 0-2 are verified merchants (good), 57-59 are confirmed
	// fraud rings.
	const n = 60
	seeds := map[graphfly.VertexID]int{
		0: labelGood, 1: labelGood, 2: labelGood,
		57: labelFraud, 58: labelFraud, 59: labelFraud,
	}

	// Initial transaction history: two loose clusters around the seeds.
	var edges []graphfly.Edge
	addTx := func(a, b graphfly.VertexID, amount float64) {
		edges = append(edges,
			graphfly.Edge{Src: a, Dst: b, W: amount},
			graphfly.Edge{Src: b, Dst: a, W: amount})
	}
	for i := graphfly.VertexID(3); i < 30; i++ {
		addTx(i, i%3, 10) // trades with merchants
		if i > 3 {
			addTx(i, i-1, 5)
		}
	}
	for i := graphfly.VertexID(30); i < 57; i++ {
		addTx(i, 57+i%3, 8) // trades with the fraud ring
		if i > 30 {
			addTx(i, i-1, 4)
		}
	}

	g := graphfly.FromEdges(n, edges)
	eng := graphfly.NewLabelPropagation(g, 2, seeds, graphfly.Config{})

	fmt.Println("initial fraud scores (selected accounts):")
	report(eng, []graphfly.VertexID{5, 20, 35, 50})

	// A burst of new transactions: account 20 suddenly starts trading
	// heavily with the fraud cluster, while a chargeback removes one of
	// its merchant links.
	batch := graphfly.Batch{
		{Edge: graphfly.Edge{Src: 20, Dst: 58, W: 50}},
		{Edge: graphfly.Edge{Src: 58, Dst: 20, W: 50}},
		{Edge: graphfly.Edge{Src: 20, Dst: 45, W: 30}},
		{Edge: graphfly.Edge{Src: 45, Dst: 20, W: 30}},
		{Edge: graphfly.Edge{Src: 20, Dst: 2, W: 10}, Del: true},
		{Edge: graphfly.Edge{Src: 2, Dst: 20, W: 10}, Del: true},
	}
	st := eng.ProcessBatch(batch)
	fmt.Printf("\nbatch processed in %v (%d flows impacted, %d pushes)\n",
		st.Total, st.Impacted, st.Relaxations)

	fmt.Println("\nscores after the suspicious burst:")
	report(eng, []graphfly.VertexID{5, 20, 35, 50})

	fmt.Println("\nflagged accounts (fraud mass > good mass):")
	for v := graphfly.VertexID(0); int(v) < n; v++ {
		state := eng.State(v)
		if graphfly.Argmax(state) == labelFraud {
			if _, isSeed := seeds[v]; !isSeed {
				fmt.Printf("  account %d (good=%.4f fraud=%.4f)\n", v, state[labelGood], state[labelFraud])
			}
		}
	}
}

func report(eng *graphfly.AccumulativeEngine, accounts []graphfly.VertexID) {
	for _, v := range accounts {
		state := eng.State(v)
		verdict := "good"
		if graphfly.Argmax(state) == labelFraud {
			verdict = "FRAUD-LEANING"
		}
		fmt.Printf("  account %2d: good=%.4f fraud=%.4f -> %s\n",
			v, state[labelGood], state[labelFraud], verdict)
	}
}
