// Live navigation over a road network: a grid of intersections with
// streaming closures and reopenings; the engine keeps shortest travel
// times from a depot converged after every traffic batch, and the example
// checks the incremental answers against a from-scratch recomputation.
//
//	go run ./examples/roadnet
package main

import (
	"fmt"
	"math"

	graphfly "repro"
)

const side = 40 // 40x40 grid of intersections

func id(r, c int) graphfly.VertexID { return graphfly.VertexID(r*side + c) }

func main() {
	// Build the grid: 4-neighbour roads, both directions, weight 1-3.
	var edges []graphfly.Edge
	weight := func(r, c, dr, dc int) float64 {
		return float64(1 + (r*7+c*13+dr*3+dc)%3)
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				w := weight(r, c, 0, 1)
				edges = append(edges,
					graphfly.Edge{Src: id(r, c), Dst: id(r, c+1), W: w},
					graphfly.Edge{Src: id(r, c+1), Dst: id(r, c), W: w})
			}
			if r+1 < side {
				w := weight(r, c, 1, 0)
				edges = append(edges,
					graphfly.Edge{Src: id(r, c), Dst: id(r+1, c), W: w},
					graphfly.Edge{Src: id(r+1, c), Dst: id(r, c), W: w})
			}
		}
	}
	g := graphfly.FromEdges(side*side, edges)
	depot := id(0, 0)
	eng := graphfly.NewSSSP(g, depot, graphfly.Config{})

	dest := id(side-1, side-1)
	fmt.Printf("road grid %dx%d, depot at (0,0)\n", side, side)
	fmt.Printf("initial travel time to (%d,%d): %v\n", side-1, side-1, eng.Value(dest))

	// Rush hour: close a diagonal band of roads, open one express route.
	closures := graphfly.Batch{}
	for k := 5; k < side-5; k++ {
		closures = append(closures,
			graphfly.Update{Edge: graphfly.Edge{Src: id(k, k), Dst: id(k, k+1), W: weight(k, k, 0, 1)}, Del: true},
			graphfly.Update{Edge: graphfly.Edge{Src: id(k, k), Dst: id(k+1, k), W: weight(k, k, 1, 0)}, Del: true},
		)
	}
	closures = append(closures, graphfly.Update{
		Edge: graphfly.Edge{Src: depot, Dst: id(side/2, side/2), W: 2},
	})
	st := eng.ProcessBatch(closures)
	fmt.Printf("\nrush hour: %d closures + 1 express route, processed in %v (%d trimmed, %d flows)\n",
		st.Applied-1, st.Total, st.Trimmed, st.Impacted)
	fmt.Printf("travel time to (%d,%d) is now: %v\n", side-1, side-1, eng.Value(dest))

	// Verify the incremental answer against a from-scratch computation.
	fresh := graphfly.NewSSSP(g.Clone(), depot, graphfly.Config{})
	mismatches := 0
	for v := 0; v < side*side; v++ {
		a, b := eng.Value(graphfly.VertexID(v)), fresh.Value(graphfly.VertexID(v))
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			mismatches++
		}
	}
	fmt.Printf("\ncross-check vs from-scratch recomputation: %d mismatches across %d intersections\n",
		mismatches, side*side)
	if mismatches != 0 {
		panic("incremental result diverged")
	}
}
