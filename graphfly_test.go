package graphfly

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(Edge{Src: 0, Dst: 1, W: 1})
	g.AddEdge(Edge{Src: 1, Dst: 2, W: 1})
	eng := NewSSSP(g, 0, Config{})
	if eng.Value(2) != 2 {
		t.Fatalf("dist(2) = %v", eng.Value(2))
	}
	eng.ProcessBatch(Batch{
		{Edge: Edge{Src: 0, Dst: 2, W: 1}},
		{Edge: Edge{Src: 1, Dst: 2, W: 1}, Del: true},
	})
	if eng.Value(2) != 1 {
		t.Fatalf("after batch, dist(2) = %v", eng.Value(2))
	}
	// Deleting the only path leaves 2 at the new direct edge; removing
	// that too makes it unreachable.
	eng.ProcessBatch(Batch{{Edge: Edge{Src: 0, Dst: 2, W: 1}, Del: true}})
	if !math.IsInf(eng.Value(2), 1) {
		t.Fatalf("unreachable dist(2) = %v", eng.Value(2))
	}
}

func TestFacadeBFSAndSSWP(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(Edge{Src: 0, Dst: 1, W: 9})
	g.AddEdge(Edge{Src: 1, Dst: 2, W: 4})
	bfs := NewBFS(g.Clone(), 0, Config{})
	if bfs.Value(2) != 2 {
		t.Fatalf("BFS hops = %v", bfs.Value(2))
	}
	sswp := NewSSWP(g.Clone(), 0, Config{})
	if sswp.Value(2) != 4 {
		t.Fatalf("SSWP width = %v", sswp.Value(2))
	}
}

func TestFacadeCC(t *testing.T) {
	edges := SymmetrizeEdges([]Edge{{Src: 0, Dst: 1, W: 1}, {Src: 2, Dst: 3, W: 1}})
	g := FromEdges(4, edges)
	cc := NewCC(g, Config{})
	if cc.Value(1) != 0 || cc.Value(3) != 2 {
		t.Fatalf("labels: %v %v", cc.Value(1), cc.Value(3))
	}
	// Join the components (the engine symmetrizes batches itself).
	cc.ProcessBatch(Batch{{Edge: Edge{Src: 1, Dst: 2, W: 1}}})
	if cc.Value(3) != 0 {
		t.Fatalf("after join, label(3) = %v", cc.Value(3))
	}
}

func TestFacadePageRankAndLP(t *testing.T) {
	numV, edges := Dataset("LJ")
	w := NewWorkload(numV, edges, DefaultStream(500, 1, 3))
	pr := NewPageRank(FromEdges(w.NumV, w.Initial), Config{})
	pr.ProcessBatch(w.Batches[0])
	vals := pr.Values()
	if len(vals) != w.NumV {
		t.Fatalf("PR values length %d", len(vals))
	}
	for _, x := range vals {
		if x <= 0 || math.IsNaN(x) {
			t.Fatalf("bad PR value %v", x)
		}
	}

	lp := NewLabelPropagation(FromEdges(w.NumV, w.Initial), 3,
		map[VertexID]int{0: 0, 1: 1, 2: 2}, Config{})
	lp.ProcessBatch(w.Batches[0])
	if got := Argmax(lp.State(0)); got != 0 {
		t.Fatalf("seed 0 drifted to label %d", got)
	}
}

func TestSymmetrizeEdges(t *testing.T) {
	out := SymmetrizeEdges([]Edge{{Src: 1, Dst: 2, W: 3}, {Src: 2, Dst: 1, W: 3}})
	if len(out) != 2 {
		t.Fatalf("SymmetrizeEdges kept duplicates: %v", out)
	}
}

func TestDatasetCodes(t *testing.T) {
	numV, edges := Dataset("LJ")
	if numV == 0 || len(edges) == 0 {
		t.Fatal("LJ dataset empty")
	}
}
