package engine

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/graph"
)

// checkAgainstStatic drives an engine through a workload and asserts
// bit-exact agreement with from-scratch static computation after every
// batch — the paper's correctness requirement for incremental processing.
func checkAgainstStatic(t *testing.T, alg algo.Selective, cfg Config, w gen.Workload) {
	t.Helper()
	initial := w.Initial
	if alg.Symmetric() {
		var both []graph.Edge
		for _, e := range initial {
			both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		initial = both
	}
	g := graph.FromEdges(w.NumV, initial)
	e := NewSelective(g, alg, cfg)

	// The engine mutates g; the reference graph evolves in lockstep.
	ref := g.Clone()
	for bi, b := range w.Batches {
		st := e.ProcessBatch(b)
		rb := b
		if alg.Symmetric() {
			rb = Symmetrize(b)
		}
		ref.ApplyBatch(rb)
		want, _ := algo.SolveSelective(ref, alg)
		got := e.Values()
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("%s batch %d: vertex %d = %v, want %v (stats %+v)",
					alg.Name(), bi, v, got[v], want[v], st)
			}
		}
	}
}

func smallWorkload(seed uint64, batches int) gen.Workload {
	cfg := gen.TestDataset(seed)
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: 200,
		NumBatches: batches, Seed: seed + 1,
	})
}

func TestSelectiveSSSPMatchesStatic(t *testing.T) {
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 4, FlowCap: 64}, smallWorkload(1, 6))
}

func TestSelectiveBFSMatchesStatic(t *testing.T) {
	checkAgainstStatic(t, algo.BFS{Src: 0}, Config{Workers: 4, FlowCap: 64}, smallWorkload(2, 6))
}

func TestSelectiveSSWPMatchesStatic(t *testing.T) {
	checkAgainstStatic(t, algo.SSWP{Src: 0}, Config{Workers: 4, FlowCap: 64}, smallWorkload(3, 6))
}

func TestSelectiveCCMatchesStatic(t *testing.T) {
	checkAgainstStatic(t, algo.CC{}, Config{Workers: 4, FlowCap: 64}, smallWorkload(4, 6))
}

func TestSelectiveSingleWorker(t *testing.T) {
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 1, FlowCap: 32}, smallWorkload(5, 4))
}

func TestSelectiveTwoPhaseAblation(t *testing.T) {
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 4, FlowCap: 64, TwoPhase: true}, smallWorkload(6, 4))
}

func TestSelectiveNoSCCMergeAblation(t *testing.T) {
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 4, FlowCap: 64, NoSCCMerge: true}, smallWorkload(7, 4))
}

func TestSelectiveScatteredStorageAblation(t *testing.T) {
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 4, FlowCap: 64, ScatteredStorage: true}, smallWorkload(8, 4))
}

func TestSelectiveRepartitionEveryBatch(t *testing.T) {
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 4, FlowCap: 64, RepartitionEvery: 1}, smallWorkload(9, 4))
}

func TestSelectiveProfiledRun(t *testing.T) {
	sim := cachesim.NewSim(cachesim.DefaultConfig())
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 2, FlowCap: 64, Probe: sim}, smallWorkload(10, 3))
	st := sim.Drain()
	if st.Total() == 0 {
		t.Fatal("profiled run recorded no memory accesses")
	}
	if st.Hits+st.Misses != st.Total() {
		t.Fatalf("probe accounting broken: %+v", st)
	}
}

func TestSelectiveDeletionHeavy(t *testing.T) {
	cfg := gen.TestDataset(11)
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.7, DeleteRatio: 0.8, BatchSize: 150, NumBatches: 5, Seed: 12,
	})
	checkAgainstStatic(t, algo.SSSP{Src: 0}, Config{Workers: 4, FlowCap: 64}, w)
}

func TestSelectiveStatsPopulated(t *testing.T) {
	w := smallWorkload(13, 1)
	g := graph.FromEdges(w.NumV, w.Initial)
	e := NewSelective(g, algo.SSSP{Src: 0}, Config{Workers: 2, FlowCap: 64, TraceWork: true})
	st := e.ProcessBatch(w.Batches[0])
	if st.Applied == 0 {
		t.Fatal("no updates applied")
	}
	if st.Trace == nil {
		t.Fatal("TraceWork did not produce a trace")
	}
	if st.Total <= 0 {
		t.Fatal("total time not measured")
	}
}

func TestSymmetrize(t *testing.T) {
	b := graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 3}},
		{Edge: graph.Edge{Src: 2, Dst: 1, W: 3}}, // dup after canonicalization
		{Edge: graph.Edge{Src: 4, Dst: 3, W: 1}, Del: true},
	}
	s := Symmetrize(b)
	if len(s) != 4 {
		t.Fatalf("Symmetrize produced %d updates: %+v", len(s), s)
	}
	// Both directions present for each canonical pair.
	if s[0].Src != 1 || s[1].Src != 2 || !s[2].Del || !s[3].Del {
		t.Fatalf("unexpected symmetrized batch: %+v", s)
	}
}
