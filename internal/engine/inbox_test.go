package engine

import (
	"sort"
	"sync"
	"testing"
)

func TestInboxPutDrain(t *testing.T) {
	var b inbox[int]
	if !b.empty() {
		t.Fatal("fresh inbox not empty")
	}
	b.put(1)
	b.put(2)
	if b.empty() {
		t.Fatal("inbox with messages reported empty")
	}
	got := b.drain(nil)
	sort.Ints(got) // cross-shard drain order is unspecified
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drain = %v", got)
	}
	if !b.empty() {
		t.Fatal("drain did not clear the inbox")
	}
	// Buffer reuse.
	b.put(3)
	got = b.drain(got)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("second drain = %v", got)
	}
}

func TestInboxConcurrentPut(t *testing.T) {
	var b inbox[int]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.put(i)
			}
		}()
	}
	wg.Wait()
	if got := b.drain(nil); len(got) != 800 {
		t.Fatalf("drained %d messages, want 800", len(got))
	}
}

// TestInboxConcurrentPutDrain races producers against a single drainer
// (the unit-runner discipline) and checks no message is lost or
// duplicated. Run under -race this also proves the shard swap is sound.
func TestInboxConcurrentPutDrain(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	var b inbox[int]
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b.put(p*perProducer + i)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	seen := make(map[int]bool, producers*perProducer)
	var buf []int
	collect := func() {
		buf = b.drain(buf)
		for _, m := range buf {
			if seen[m] {
				t.Errorf("message %d drained twice", m)
			}
			seen[m] = true
		}
	}
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		collect()
	}
	collect() // final sweep after all producers finished
	if len(seen) != producers*perProducer {
		t.Fatalf("drained %d distinct messages, want %d", len(seen), producers*perProducer)
	}
}

// TestInboxCapacityDecay is the regression test for unbounded buffer
// retention: a burst of messages must not permanently pin its
// high-water-mark backing array. After the burst drains, the retained
// capacity has to fall back under the trim cap (per shard, both buffers),
// for drain-driven decay and for the between-batches reset alike.
func TestInboxCapacityDecay(t *testing.T) {
	const burst = 64 * inboxTrimCap
	bound := 2 * inboxShards * inboxTrimCap // msgs + spare per shard

	var b inbox[int]
	for i := 0; i < burst; i++ {
		b.put(i)
	}
	if got := b.drain(nil); len(got) != burst {
		t.Fatalf("burst drain returned %d messages, want %d", len(got), burst)
	}
	// One steady-state cycle so any oversized spare rotates through drain.
	b.put(1)
	b.drain(nil)
	if c := b.capSum(); c > bound {
		t.Fatalf("after burst drain, inbox retains capacity %d, want <= %d", c, bound)
	}

	var r inbox[int]
	for i := 0; i < burst; i++ {
		r.put(i)
	}
	r.reset()
	if c := r.capSum(); c > bound {
		t.Fatalf("after reset, inbox retains capacity %d, want <= %d", c, bound)
	}
	if !r.empty() {
		t.Fatal("reset left messages behind")
	}
}
