package engine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Cross-engine equivalence properties: for arbitrary small graphs and
// update streams, the GraphFly engine must agree exactly with from-scratch
// recomputation under every configuration knob, for every selective
// algorithm, and the accumulative engine must agree within tolerance.
// These are the repository's strongest correctness guarantees: they cover
// topologies and streams no hand-written case anticipates.

func randomWorkload(seed uint64) gen.Workload {
	r := rng.New(seed)
	numV := 32 + r.Intn(96)
	numE := numV * (2 + r.Intn(6))
	kind := gen.Kind(r.Intn(3))
	cfg := gen.Config{Kind: kind, NumV: numV, NumE: numE, Seed: seed,
		A: 0.57, B: 0.19, C: 0.19, MaxWeight: 1 + r.Intn(8)}
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(numV, edges, gen.StreamConfig{
		InitialFraction: 0.3 + 0.5*r.Float64(),
		DeleteRatio:     r.Float64() * 0.9,
		BatchSize:       20 + r.Intn(100),
		NumBatches:      1 + r.Intn(4),
		Seed:            seed ^ 0xabcdef,
	})
}

func randomConfig(seed uint64) Config {
	r := rng.New(seed ^ 0x5ca1ab1e)
	return Config{
		Workers:          1 + r.Intn(4),
		FlowCap:          8 << r.Intn(6),
		TwoPhase:         r.Float64() < 0.25,
		NoSCCMerge:       r.Float64() < 0.25,
		ScatteredStorage: r.Float64() < 0.25,
		RepartitionEvery: 1 + r.Intn(4),
		Scheduler:        SchedulerKind(r.Intn(2)),
	}
}

func selectiveEquivalent(alg algo.Selective, w gen.Workload, cfg Config) bool {
	initial := w.Initial
	if alg.Symmetric() {
		var both []graph.Edge
		for _, e := range initial {
			both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		initial = both
	}
	g := graph.FromEdges(w.NumV, initial)
	e := NewSelective(g, alg, cfg)
	ref := g.Clone()
	for _, b := range w.Batches {
		e.ProcessBatch(b)
		rb := b
		if alg.Symmetric() {
			rb = Symmetrize(b)
		}
		ref.ApplyBatch(rb)
		want, _ := algo.SolveSelective(ref, alg)
		got := e.Values()
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) &&
				!(math.IsInf(want[v], -1) && math.IsInf(got[v], -1)) {
				return false
			}
		}
	}
	return true
}

func TestPropertySSSPEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		w := randomWorkload(seed)
		src := graph.VertexID(seed % uint64(w.NumV))
		return selectiveEquivalent(algo.SSSP{Src: src}, w, randomConfig(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySSWPEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		w := randomWorkload(seed + 1)
		src := graph.VertexID(seed % uint64(w.NumV))
		return selectiveEquivalent(algo.SSWP{Src: src}, w, randomConfig(seed+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBFSEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		w := randomWorkload(seed + 2)
		src := graph.VertexID(seed % uint64(w.NumV))
		return selectiveEquivalent(algo.BFS{Src: src}, w, randomConfig(seed+2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCCEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		w := randomWorkload(seed + 3)
		return selectiveEquivalent(algo.CC{}, w, randomConfig(seed+3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPageRankEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		w := randomWorkload(seed + 4)
		alg := algo.NewPageRank(w.NumV)
		g := graph.FromEdges(w.NumV, w.Initial)
		e := NewAccumulative(g, alg, randomConfig(seed+4))
		ref := g.Clone()
		for _, b := range w.Batches {
			e.ProcessBatch(b)
			ref.ApplyBatch(b)
			want := algo.SolveAccumulative(ref, alg)
			got := e.Values()
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The key-edge forest recorded by the engine must always support the
// current values: parent(v) is a real in-edge whose propagation yields
// exactly val(v) — KickStarter's dependence invariant, which trimming
// correctness rests on.
func TestPropertyKeyEdgesSupportValues(t *testing.T) {
	f := func(seed uint64) bool {
		w := randomWorkload(seed + 5)
		alg := algo.SSSP{Src: 0}
		g := graph.FromEdges(w.NumV, w.Initial)
		e := NewSelective(g, alg, randomConfig(seed+5))
		for _, b := range w.Batches {
			e.ProcessBatch(b)
		}
		for v := 0; v < w.NumV; v++ {
			p := e.Parent(graph.VertexID(v))
			val := e.Value(graph.VertexID(v))
			if p == -1 {
				// Unsupported vertices must sit at their base value.
				if val != alg.Base(graph.VertexID(v)) && !math.IsInf(val, 1) {
					return false
				}
				continue
			}
			wgt, ok := g.HasEdge(graph.VertexID(p), graph.VertexID(v))
			if !ok {
				return false // parent edge vanished from the graph
			}
			if alg.Propagate(e.Value(graph.VertexID(p)), wgt) != val {
				return false // parent no longer supports the value
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
