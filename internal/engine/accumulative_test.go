package engine

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/graph"
)

// accTolerance bounds the allowed divergence between the asynchronous
// engine and the synchronous reference solver; both stop within epsilon of
// the unique fixpoint, so the gap is a small multiple of epsilon scaled by
// the contraction factor.
const accTolerance = 1e-5

func checkAccAgainstStatic(t *testing.T, mkAlg func(w gen.Workload) algo.Accumulative, cfg Config, w gen.Workload) {
	t.Helper()
	g := graph.FromEdges(w.NumV, w.Initial)
	alg := mkAlg(w)
	e := NewAccumulative(g, alg, cfg)
	ref := g.Clone()

	// Initial convergence must already match.
	want := algo.SolveAccumulative(ref, alg)
	compare(t, alg.Name(), -1, e.Values(), want)

	for bi, b := range w.Batches {
		e.ProcessBatch(b)
		ref.ApplyBatch(b)
		want = algo.SolveAccumulative(ref, alg)
		compare(t, alg.Name(), bi, e.Values(), want)
	}
}

func compare(t *testing.T, name string, batch int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s batch %d: dims differ %d vs %d", name, batch, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > accTolerance {
			t.Fatalf("%s batch %d: component %d = %v, want %v (|Δ|=%g)",
				name, batch, i, got[i], want[i], math.Abs(got[i]-want[i]))
		}
	}
}

func prAlg(w gen.Workload) algo.Accumulative { return algo.NewPageRank(w.NumV) }

func lpAlg(w gen.Workload) algo.Accumulative {
	seeds := map[graph.VertexID]int{}
	for i := 0; i < 8; i++ {
		seeds[graph.VertexID(i*17%w.NumV)] = i % 4
	}
	return algo.NewLabelPropagation(4, seeds)
}

func accWorkload(seed uint64, batches int) gen.Workload {
	cfg := gen.TestDataset(seed)
	cfg.NumV, cfg.NumE = 256, 1500
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: 120,
		NumBatches: batches, Seed: seed + 2,
	})
}

func TestAccumulativePageRankMatchesStatic(t *testing.T) {
	checkAccAgainstStatic(t, prAlg, Config{Workers: 4, FlowCap: 32}, accWorkload(21, 5))
}

func TestAccumulativeLPMatchesStatic(t *testing.T) {
	checkAccAgainstStatic(t, lpAlg, Config{Workers: 4, FlowCap: 32}, accWorkload(22, 4))
}

func TestAccumulativeSingleWorker(t *testing.T) {
	checkAccAgainstStatic(t, prAlg, Config{Workers: 1, FlowCap: 16}, accWorkload(23, 3))
}

func TestAccumulativeScatteredAblation(t *testing.T) {
	checkAccAgainstStatic(t, prAlg, Config{Workers: 4, FlowCap: 32, ScatteredStorage: true}, accWorkload(24, 3))
}

func TestAccumulativeNoSCCMerge(t *testing.T) {
	checkAccAgainstStatic(t, prAlg, Config{Workers: 4, FlowCap: 32, NoSCCMerge: true}, accWorkload(25, 3))
}

func TestAccumulativeRepartitionEveryBatch(t *testing.T) {
	checkAccAgainstStatic(t, prAlg, Config{Workers: 4, FlowCap: 32, RepartitionEvery: 1}, accWorkload(26, 3))
}

func TestAccumulativeProfiled(t *testing.T) {
	sim := cachesim.NewSim(cachesim.DefaultConfig())
	checkAccAgainstStatic(t, prAlg, Config{Workers: 2, FlowCap: 32, Probe: sim}, accWorkload(27, 2))
	if sim.Drain().Total() == 0 {
		t.Fatal("profiled accumulative run recorded no accesses")
	}
}

func TestAccumulativeDeletionHeavy(t *testing.T) {
	cfg := gen.TestDataset(28)
	cfg.NumV, cfg.NumE = 200, 1200
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.7, DeleteRatio: 0.8, BatchSize: 100, NumBatches: 4, Seed: 29,
	})
	checkAccAgainstStatic(t, prAlg, Config{Workers: 4, FlowCap: 32}, w)
}

func TestAccumulativeStats(t *testing.T) {
	w := accWorkload(30, 1)
	g := graph.FromEdges(w.NumV, w.Initial)
	e := NewAccumulative(g, algo.NewPageRank(w.NumV), Config{Workers: 2, FlowCap: 32, TraceWork: true})
	st := e.ProcessBatch(w.Batches[0])
	if st.Applied == 0 || st.Trace == nil || st.Total <= 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
	if st.Relaxations == 0 {
		t.Fatal("no pushes recorded for a non-trivial batch")
	}
}

func TestAccumulativeBackwardFlows(t *testing.T) {
	// §V-A Discussion: swapping the triangles' roles must not change the
	// fixpoint, only the flow structure.
	checkAccAgainstStatic(t, prAlg, Config{Workers: 4, FlowCap: 32, BackwardFlows: true}, accWorkload(31, 3))
}
