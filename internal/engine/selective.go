package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/dense"
	"repro/internal/dflow"
	"repro/internal/etree"
	"repro/internal/graph"
	"repro/internal/layout"
)

// Selective is the GraphFly engine for monotonic (selection-based)
// algorithms: SSSP, SSWP, BFS, CC.
//
// Correctness protocol (DESIGN.md §4.3): the key-edge forest makes the trim
// set of a batch computable before refinement; trimmed vertices carry an
// atomic "invalid" bit; refinement pulls skip invalid neighbours; every
// reset or improved vertex pushes through its out-edges, so any candidate a
// skipped pull would have found arrives later as a push. The post-trim
// state is an achievable over-approximation, hence chaotic asynchronous
// relaxation converges to the exact fixpoint — the same values a
// from-scratch computation yields.
type Selective struct {
	G   *graph.Streaming
	Alg algo.Selective
	cfg Config

	vals    *layout.Store
	parent  []int32
	trimmed *flags
	kf      *etree.KeyForest

	part *dflow.Partition
	fg   *dflow.FlowGraph

	probe    cachesim.Probe
	profiled bool
	outIdx   *layout.EdgeIndex
	inIdx    *layout.EdgeIndex

	batches int

	// Per-batch execution state.
	unitsMu  sync.Mutex
	units    []*unit
	unitOf   []int32 // flow -> unit index (atomic access)
	inboxes  []inbox[selMsg]
	trimList [][]uint32     // per-flow trim lists (real flows only)
	impacted *dense.FlowSet // epoch-stamped impacted-flow scratch
	symm     Symmetrizer
	pl       scheduler

	// rs is the hub-replication plan (nil unless Config.HubReplication):
	// cross-flow messages bound for a hub scatter over per-worker replica
	// units whose folded candidates a diffused-combine unit merges back
	// into the hub's home flow. See replicate.go.
	rs      *replicaSet
	specBuf []dflow.CombineSpec

	relaxations atomic.Int64
	pulls       atomic.Int64
	crossMsgs   atomic.Int64
	replicaMsgs atomic.Int64
	combines    atomic.Int64

	canceled bool // a batch was aborted mid-flight; state is inconsistent

	trace   *WorkTrace
	traceMu sync.Mutex
}

type selMsg struct {
	v      uint32
	val    float64
	parent int32
	force  bool // enqueue the vertex even if the value does not improve
}

// NewSelective builds the engine over g (which must already contain the
// initial graph) and runs the initial static computation, recording key
// edges, exactly as the paper's workflow does ("Initially, we generate the
// D-trees of a graph offline", §VI).
func NewSelective(g *graph.Streaming, alg algo.Selective, cfg Config) *Selective {
	e := &Selective{
		G:     g,
		Alg:   alg,
		cfg:   cfg,
		probe: cfg.probe(),
		kf:    etree.NewKeyForest(g.NumVertices()),
	}
	if cfg.DenseOff {
		g.DisableHubIndex()
	} else if cfg.HubThreshold > 0 {
		g.SetHubThresholds(cfg.HubThreshold, 0)
	}
	_, e.profiled = e.probe.(*cachesim.Sim)

	vals, parent := algo.SolveSelective(g, alg)
	e.parent = parent
	e.trimmed = newFlags(g.NumVertices())
	e.repartition()
	for v, x := range vals {
		e.vals.Set(uint32(v), x)
	}
	e.rs = newReplicaSetFor(cfg, g, e.part.NumFlows(), 0)
	return e
}

// NewSelectiveFromState rebuilds an engine from a snapshot (vals, parent)
// taken by SnapshotState over an identical graph, skipping the from-scratch
// static solve: the restored values are GraphFly's floored refinement state,
// so subsequent batches reconverge incrementally exactly as if the engine
// had never stopped. This is the recovery entry point internal/wal uses.
func NewSelectiveFromState(g *graph.Streaming, alg algo.Selective, cfg Config, vals []float64, parent []int32) (*Selective, error) {
	n := g.NumVertices()
	if len(vals) != n || len(parent) != n {
		return nil, fmt.Errorf("engine: state for %d/%d vertices, graph has %d", len(vals), len(parent), n)
	}
	e := &Selective{
		G:     g,
		Alg:   alg,
		cfg:   cfg,
		probe: cfg.probe(),
		kf:    etree.NewKeyForest(n),
	}
	if cfg.DenseOff {
		g.DisableHubIndex()
	} else if cfg.HubThreshold > 0 {
		g.SetHubThresholds(cfg.HubThreshold, 0)
	}
	_, e.profiled = e.probe.(*cachesim.Sim)
	e.parent = append([]int32(nil), parent...)
	e.trimmed = newFlags(n)
	e.repartition()
	for v, x := range vals {
		e.vals.Set(uint32(v), x)
	}
	e.rs = newReplicaSetFor(cfg, g, e.part.NumFlows(), 0)
	return e, nil
}

// SnapshotState copies the converged per-vertex values and key-edge parents
// — everything NewSelectiveFromState needs besides the graph itself. Call
// it only between batches (the engine is not processing).
func (e *Selective) SnapshotState() (vals []float64, parent []int32) {
	return e.Values(), append([]int32(nil), e.parent...)
}

// repartition rebuilds flows from the current key-edge forest, the flow
// graph, the flow-blocked value store, and (when profiling) the edge
// address model. Values migrate into the new store.
func (e *Selective) repartition() {
	e.part = dflow.NewPartitionFromParents(e.parent, e.cfg.FlowCap)
	if e.fg == nil || e.cfg.DenseOff {
		e.fg = dflow.NewFlowGraph(e.G, e.part)
	} else {
		e.fg.Rebuild(e.G, e.part)
	}
	var store *layout.Store
	if e.cfg.ScatteredStorage {
		store = layout.NewScatteredStore(e.G.NumVertices(), 1)
	} else {
		store = layout.NewFlowStore(e.part, 1)
	}
	if e.vals != nil {
		for v := 0; v < e.G.NumVertices(); v++ {
			store.Set(uint32(v), e.vals.Get(uint32(v)))
		}
	}
	e.vals = store
	e.refreshEdgeIndex()
}

func (e *Selective) refreshEdgeIndex() {
	if !e.profiled {
		return
	}
	blocked := !e.cfg.ScatteredStorage
	prevOut, prevIn := e.outIdx, e.inIdx
	if e.cfg.DenseOff {
		prevOut, prevIn = nil, nil
	}
	e.outIdx = layout.NewEdgeIndexInto(prevOut, e.G, e.part, blocked)
	e.inIdx = layout.NewInEdgeIndexInto(prevIn, e.G, e.part, blocked)
}

// Value returns v's current converged value.
func (e *Selective) Value(v graph.VertexID) float64 { return e.vals.Get(uint32(v)) }

// Values copies all values into a fresh slice.
func (e *Selective) Values() []float64 {
	out := make([]float64, e.G.NumVertices())
	for v := range out {
		out[v] = e.vals.Get(uint32(v))
	}
	return out
}

// Parent returns v's key-edge source (-1 if none).
func (e *Selective) Parent(v graph.VertexID) int32 { return e.parent[v] }

// Partition exposes the current dependency-flow partition (read-only).
func (e *Selective) Partition() *dflow.Partition { return e.part }

// ProcessBatch applies one batch of updates and incrementally reconverges.
// It implements processEdgeStream of Fig 10. It panics on a malformed batch;
// ProcessBatchE is the error-returning form.
func (e *Selective) ProcessBatch(batch graph.Batch) BatchStats {
	st, err := e.ProcessBatchE(batch)
	if err != nil {
		panic(err)
	}
	return st
}

// ProcessBatchE is ProcessBatch with graceful degradation: the batch is
// validated up front and a malformed update stream returns a
// *graph.BatchError without mutating any engine state, so a caller fed by
// an untrusted source can drop the bad batch and keep going.
func (e *Selective) ProcessBatchE(batch graph.Batch) (BatchStats, error) {
	return e.ProcessBatchCtx(context.Background(), batch)
}

// ProcessBatchCtx is ProcessBatchE with cancellation: when ctx is canceled
// mid-batch the schedulers drain out after their in-flight units and the
// call returns ctx's error. A canceled batch leaves the engine mid-refinement
// — inconsistent by design — so every later call fails with ErrCanceled;
// recover by rebuilding the engine (wal.Recover replays a durable log).
func (e *Selective) ProcessBatchCtx(ctx context.Context, batch graph.Batch) (BatchStats, error) {
	if e.canceled {
		return BatchStats{}, ErrCanceled
	}
	if err := ctx.Err(); err != nil {
		return BatchStats{}, err
	}
	if err := e.G.CheckBatch(batch); err != nil {
		return BatchStats{}, err
	}
	st := e.processBatch(ctx, batch)
	if err := ctx.Err(); err != nil {
		e.canceled = true
		return st, err
	}
	return st, nil
}

func (e *Selective) processBatch(ctx context.Context, batch graph.Batch) BatchStats {
	var st BatchStats
	t0 := time.Now()
	e.probe.BeginBatch()
	if e.Alg.Symmetric() {
		if e.cfg.DenseOff {
			batch = Symmetrize(batch)
		} else {
			batch = e.symm.Symmetrize(batch)
		}
	}
	if e.cfg.TraceWork {
		e.trace = newWorkTrace()
		st.Trace = e.trace
	} else {
		e.trace = nil
	}

	// (1) Graph update (Workers, in parallel) ...
	tApply := time.Now()
	applied := e.G.ApplyBatchParallel(batch, e.cfg.workers())
	st.Applied = len(applied)
	st.ApplyTime = time.Since(tApply)

	// (2) ... then the Manager maintains the dependency indexes: flow graph
	// incrementally, key-edge D-tree by bulk-loading the key edges recorded
	// during the previous batch (§IV-B).
	tMaint := time.Now()
	e.batches++
	if e.batches%e.cfg.repartitionEvery() == 0 {
		e.repartition()
	} else {
		for _, u := range applied {
			if u.Del {
				e.fg.DeleteEdge(u.Src, u.Dst)
			} else {
				e.fg.AddEdge(u.Src, u.Dst)
			}
		}
		e.refreshEdgeIndex()
	}
	tKf := time.Now()
	e.kf.BulkLoad(e.parent)
	st.DtreeTime = time.Since(tKf)
	st.MaintainTime = time.Since(tMaint)

	// (3) Trim identification at tree-node cost (no graph-edge traversal).
	tTrim := time.Now()
	nf := e.part.NumFlows()
	if e.rs != nil {
		e.rs.update(e.G, applied, nf)
		st.ReplicatedHubs = len(e.rs.hubs)
		e.replicaMsgs.Store(0)
		e.combines.Store(0)
	}
	if cap(e.trimList) < nf {
		e.trimList = make([][]uint32, nf)
	}
	e.trimList = e.trimList[:nf]
	for i := range e.trimList {
		e.trimList[i] = e.trimList[i][:0]
	}
	impacted := e.impactedScratch(nf)
	for _, u := range applied {
		if !u.Del || e.parent[u.Dst] != int32(u.Src) {
			continue
		}
		if e.cfg.FaultSkipTrim {
			continue // injected bug for oracle mutation tests
		}
		st.TrimRoots++
		e.kf.Subtree(uint32(u.Dst), func(x uint32) bool {
			if e.trimmed.swapSet(x) {
				return false // already trimmed by a nested root
			}
			e.parent[x] = -1
			f := e.part.Flow(x)
			e.trimList[f] = append(e.trimList[f], x)
			impacted.Add(f)
			st.Trimmed++
			return true
		})
	}
	st.TrimTime = time.Since(tTrim)

	// (4) Space-time schedule over the refining flows (cycles merged).
	tSched := time.Now()
	var groups []dflow.Group
	if e.cfg.NoSCCMerge {
		for _, f := range impacted.Members() {
			groups = append(groups, dflow.Group{Flows: []int32{f}})
		}
	} else if e.rs != nil {
		e.specBuf = e.rs.combineSpecs(e.part.Flow, e.specBuf)
		groups = dflow.ScheduleWithCombines(e.fg, impacted.Members(), e.specBuf)
	} else {
		groups = dflow.Schedule(e.fg, impacted.Members())
	}
	maxLevel := 0
	for _, g := range groups {
		if g.Level > maxLevel {
			maxLevel = g.Level
		}
	}
	st.Units = len(groups)
	st.Levels = maxLevel + 1
	st.Impacted = impacted.Len()

	// Virtual replica/combine flows get unit and inbox slots past the real
	// flow ids.
	nfAll := nf
	if e.rs != nil {
		nfAll = e.rs.numFlows()
	}
	e.units = e.units[:0]
	if cap(e.unitOf) < nfAll {
		e.unitOf = make([]int32, nfAll)
	}
	e.unitOf = e.unitOf[:nfAll]
	for i := range e.unitOf {
		e.unitOf[i] = -1
	}
	// One unit per flow with its group's schedule level: the SCC
	// condensation provides the space-time *order*; flows still execute
	// concurrently (the trimmed-bit protocol is interleaving-safe), which
	// preserves the vertex-level parallelism §VI calls for inside large
	// dependency groups.
	for _, grp := range groups {
		for _, f := range grp.Flows {
			u := &unit{id: int32(len(e.units)), flows: []int32{f}, level: grp.Level}
			if e.rs != nil {
				u.pin = e.rs.pinFor(f, e.cfg.workers())
			}
			e.units = append(e.units, u)
			e.unitOf[f] = u.id
		}
	}
	if cap(e.inboxes) < nfAll {
		e.inboxes = make([]inbox[selMsg], nfAll)
	}
	e.inboxes = e.inboxes[:nfAll]
	for i := range e.inboxes {
		e.inboxes[i].reset()
	}
	e.pl = e.cfg.newScheduler()
	st.ScheduleTime = time.Since(tSched)

	// (5) Seed addition relaxations as messages (no refinement needed:
	// additions can only improve monotonic values).
	for _, u := range applied {
		if u.Del {
			continue
		}
		if e.trimmed.get(uint32(u.Src)) {
			continue // the source will push once its flow refines it
		}
		cand := e.Alg.Propagate(e.vals.Get(uint32(u.Src)), u.W)
		if e.trimmed.get(uint32(u.Dst)) || e.Alg.Better(cand, e.vals.Get(uint32(u.Dst))) {
			m := selMsg{v: uint32(u.Dst), val: cand, parent: int32(u.Src)}
			if e.rs != nil {
				if k := e.rs.slotOf(uint32(u.Dst)); k >= 0 {
					rf := e.rs.replicaFlow(int(k), e.rs.routeOf(uint32(u.Src)))
					e.inboxes[rf].put(m)
					e.replicaMsgs.Add(1)
					e.activateFlow(rf, maxLevel+1)
					continue
				}
			}
			f := e.part.Flow(u.Dst)
			e.inboxes[f].put(m)
			e.activateFlow(f, maxLevel+1)
		}
	}

	// (6) Execute.
	tComp := time.Now()
	e.relaxations.Store(0)
	e.pulls.Store(0)
	e.crossMsgs.Store(0)
	stopWatch := watchCancel(ctx, e.pl)
	if e.cfg.TwoPhase {
		e.runTwoPhase()
	} else {
		e.runAsync()
	}
	stopWatch()
	st.ComputeTime = time.Since(tComp)
	st.Relaxations = e.relaxations.Load()
	st.Pulls = e.pulls.Load()
	st.CrossMsgs = e.crossMsgs.Load()
	st.ReplicaMsgs = e.replicaMsgs.Load()
	st.Combines = e.combines.Load()
	ss := e.pl.stats()
	st.Dispatches = ss.Dispatches
	st.Steals = ss.Steals
	st.SchedParks = ss.Parks
	st.Total = time.Since(t0)
	e.cfg.observe(&st)
	return st
}

// impactedScratch hands out the per-batch impacted-flow set (see
// scratchFlowSet for the -denseoff semantics).
func (e *Selective) impactedScratch(nf int) *dense.FlowSet {
	e.impacted = scratchFlowSet(e.impacted, nf, e.cfg.DenseOff)
	return e.impacted
}

// activateFlow ensures flow f has a unit and activates it, lazily creating
// singleton units for flows outside the schedule.
func (e *Selective) activateFlow(f int32, level int) {
	var u *unit
	if ui := atomic.LoadInt32(&e.unitOf[f]); ui != -1 {
		e.unitsMu.Lock()
		u = e.units[ui]
		e.unitsMu.Unlock()
	} else {
		e.unitsMu.Lock()
		if ui := e.unitOf[f]; ui != -1 { // re-check under the lock
			u = e.units[ui]
		} else {
			u = &unit{id: int32(len(e.units)), flows: []int32{f}, level: level}
			if e.rs != nil {
				u.pin = e.rs.pinFor(f, e.cfg.workers())
			}
			e.units = append(e.units, u)
			atomic.StoreInt32(&e.unitOf[f], u.id)
		}
		e.unitsMu.Unlock()
	}
	e.pl.activate(u)
}

// runAsync is GraphFly's normal mode: each unit fuses refine+recompute and
// units at the same level run concurrently, no global phase barrier.
func (e *Selective) runAsync() {
	e.unitsMu.Lock()
	for _, u := range e.units {
		// Virtual replica/combine units are reactive: they run only when a
		// hub-bound message lands, so the common no-traffic batch pays no
		// dispatches for them.
		if e.rs != nil && int(u.flows[0]) >= e.rs.nf {
			continue
		}
		e.pl.activate(u)
	}
	e.unitsMu.Unlock()
	e.pl.run(e.cfg.workers(), func(w int, u *unit) {
		sw := e.newWorker()
		sw.processUnit(u, true, true)
	})
}

// runTwoPhase is the execution-model ablation: refine every impacted flow,
// hit a global barrier, then recompute — the KickStarter/GraphBolt shape on
// GraphFly's data structures.
func (e *Selective) runTwoPhase() {
	e.unitsMu.Lock()
	units := append([]*unit(nil), e.units...)
	e.unitsMu.Unlock()
	graph.ParallelFor(len(units), e.cfg.workers(), func(lo, hi int) {
		sw := e.newWorker()
		for i := lo; i < hi; i++ {
			sw.processUnit(units[i], true, false)
			// Hand the reset vertices to phase 2 as forced seeds.
			for _, v := range sw.wl {
				f := e.part.Flow(v)
				e.inboxes[f].put(selMsg{v: v, val: e.vals.Get(v), parent: e.parent[v], force: true})
			}
			sw.wl = sw.wl[:0]
		}
	})
	// Global barrier, then recompute to quiescence.
	e.unitsMu.Lock()
	units = append(units[:0], e.units...)
	e.unitsMu.Unlock()
	for _, u := range units {
		e.pl.activate(u)
	}
	e.pl.run(e.cfg.workers(), func(w int, u *unit) {
		sw := e.newWorker()
		sw.processUnit(u, false, true)
	})
}

// selWorker is per-goroutine state: a forked probe and a local worklist.
type selWorker struct {
	e     *Selective
	probe cachesim.Probe
	wl    []uint32
	buf   []selMsg
}

func (e *Selective) newWorker() *selWorker {
	return &selWorker{e: e, probe: e.probe.Fork()}
}

func (sw *selWorker) readVal(v uint32) float64 {
	if sw.e.profiled {
		sw.probe.Access(sw.e.vals.Addr(v), false, cachesim.ClassVertex)
	}
	return sw.e.vals.Get(v)
}

func (sw *selWorker) writeVal(v uint32, x float64) {
	if sw.e.profiled {
		sw.probe.Access(sw.e.vals.Addr(v), true, cachesim.ClassVertex)
	}
	sw.e.vals.Set(v, x)
}

// processUnit runs one scheduling unit: optionally refine its trimmed
// vertices (pull style, within the flow), then recompute to local
// quiescence, draining inbox messages and pushing cross-flow candidates
// (push style between flows — §V-A's pull-inside/push-outside rule).
func (sw *selWorker) processUnit(u *unit, refine, recompute bool) {
	e := sw.e
	if e.rs != nil {
		if k, rep, combine, ok := e.rs.virtual(u.flows[0]); ok {
			sw.processVirtual(u, k, rep, combine)
			return
		}
	}
	inUnit := func(f int32) bool {
		return atomic.LoadInt32(&e.unitOf[f]) == u.id
	}

	if refine {
		sw.probe.SetPhase(cachesim.PhaseRefine)
		for _, f := range u.flows {
			for _, v := range e.trimList[f] {
				if !e.trimmed.get(v) {
					continue // reset on a previous activation
				}
				sw.refineVertex(v)
			}
		}
	}
	if !recompute {
		return
	}
	sw.probe.SetPhase(cachesim.PhaseRecompute)
	for {
		progressed := false
		for _, f := range u.flows {
			sw.buf = e.inboxes[f].drain(sw.buf)
			for _, m := range sw.buf {
				progressed = true
				sw.apply(m)
			}
		}
		// FIFO (SPFA-style) relaxation: breadth-first orders touch each
		// vertex far fewer times than depth-first on weighted graphs.
		for head := 0; head < len(sw.wl); head++ {
			progressed = true
			sw.relax(sw.wl[head], u, inUnit)
		}
		sw.wl = sw.wl[:0]
		if !progressed {
			return
		}
	}
}

// refineVertex resets a trimmed vertex to the best value achievable from
// its untrimmed in-neighbours (or its base value) and queues it for
// recomputation: refineEdge of Fig 10 at vertex granularity.
func (sw *selWorker) refineVertex(v uint32) {
	e := sw.e
	best := e.Alg.Base(graph.VertexID(v))
	bestParent := int32(-1)
	in := e.G.In(graph.VertexID(v))
	for i, h := range in {
		if e.profiled {
			sw.probe.Access(e.inIdx.Addr(v, i), false, cachesim.ClassEdge)
		}
		if e.trimmed.get(uint32(h.To)) {
			continue // invalid neighbour: its push will arrive later
		}
		cand := e.Alg.Propagate(sw.readVal(uint32(h.To)), h.W)
		if e.Alg.Better(cand, best) {
			best = cand
			bestParent = int32(h.To)
		}
	}
	e.pulls.Add(int64(len(in)))
	sw.writeVal(v, best)
	e.parent[v] = bestParent
	e.trimmed.clear(v)
	sw.wl = append(sw.wl, v)
	if e.trace != nil {
		sw.addTraceWork(e.part.Flow(v), int64(len(in)))
	}
}

// apply merges an incoming candidate into v (owner-side message handling).
func (sw *selWorker) apply(m selMsg) {
	e := sw.e
	v := m.v
	if e.trimmed.get(v) {
		// Still invalid when its message arrives (e.g. trimmed by a nested
		// root after the send): refine now so pull and push merge.
		sw.refineVertex(v)
	}
	if e.Alg.Better(m.val, sw.readVal(v)) {
		sw.writeVal(v, m.val)
		e.parent[v] = m.parent
		sw.wl = append(sw.wl, v)
	} else if m.force {
		sw.wl = append(sw.wl, v)
	}
}

// relax pushes v's value over its out-edges: computeEdge of Fig 10.
func (sw *selWorker) relax(v uint32, u *unit, inUnit func(int32) bool) {
	e := sw.e
	uVal := sw.readVal(v)
	out := e.G.Out(graph.VertexID(v))
	e.relaxations.Add(int64(len(out)))
	if e.trace != nil {
		sw.addTraceWork(e.part.Flow(v), int64(len(out)))
	}
	for i, h := range out {
		if e.profiled {
			sw.probe.Access(e.outIdx.Addr(v, i), false, cachesim.ClassEdge)
		}
		w := uint32(h.To)
		cand := e.Alg.Propagate(uVal, h.W)
		tf := e.part.Flow(h.To)
		if inUnit(tf) {
			if e.trimmed.get(w) {
				sw.refineVertex(w)
			}
			if e.Alg.Better(cand, sw.readVal(w)) {
				sw.writeVal(w, cand)
				e.parent[w] = int32(v)
				sw.wl = append(sw.wl, w)
			}
			continue
		}
		// Cross-flow: send only when it could matter.
		if e.trimmed.get(w) || e.Alg.Better(cand, sw.readVal(w)) {
			m := selMsg{v: w, val: cand, parent: int32(v)}
			if e.rs != nil {
				// Hub-bound: scatter onto a replica instead of the home
				// flow, so the fan-in folds across workers.
				if k := e.rs.slotOf(w); k >= 0 {
					rf := e.rs.replicaFlow(int(k), e.rs.routeOf(v))
					e.inboxes[rf].put(m)
					e.crossMsgs.Add(1)
					e.replicaMsgs.Add(1)
					e.activateFlow(rf, u.level+1)
					continue
				}
			}
			e.inboxes[tf].put(m)
			e.crossMsgs.Add(1)
			if e.trace != nil {
				sw.addTraceMsg(e.part.Flow(v), tf)
			}
			e.activateFlow(tf, u.level+1)
		}
	}
}

// processVirtual runs a replica or combine unit (hub replication). A
// replica folds its inbox to the single best candidate for its hub — the
// in-network min/max reduction — and forwards it to the combine; the
// combine folds the replicas' candidates and forwards at most one message
// into the hub's home flow, which stays the hub's only writer. Dropping
// non-best candidates is exact for selection-based algorithms: a dropped
// candidate is dominated by the forwarded one, and the trimmed-bit check
// keeps refinement-triggering messages flowing even when no candidate
// improves the (possibly about-to-be-reset) current value.
func (sw *selWorker) processVirtual(u *unit, k, rep int, combine bool) {
	e := sw.e
	rs := e.rs
	if !combine {
		sw.buf = e.inboxes[rs.replicaFlow(k, rep)].drain(sw.buf)
		if len(sw.buf) == 0 {
			return
		}
		best := sw.buf[0]
		for _, m := range sw.buf[1:] {
			if e.Alg.Better(m.val, best.val) {
				best = m
			}
		}
		cf := rs.combineFlow(k)
		e.inboxes[cf].put(best)
		e.activateFlow(cf, u.level+1)
		return
	}
	sw.buf = e.inboxes[rs.combineFlow(k)].drain(sw.buf)
	if len(sw.buf) == 0 {
		return
	}
	best := sw.buf[0]
	for _, m := range sw.buf[1:] {
		if e.Alg.Better(m.val, best.val) {
			best = m
		}
	}
	e.combines.Add(1)
	h := rs.hubs[k]
	if e.trimmed.get(h) || e.Alg.Better(best.val, e.vals.Get(h)) {
		tf := e.part.Flow(h)
		e.inboxes[tf].put(best)
		e.activateFlow(tf, u.level+1)
	}
}

func (sw *selWorker) addTraceWork(f int32, n int64) {
	sw.e.traceMu.Lock()
	sw.e.trace.FlowWork[f] += n
	sw.e.traceMu.Unlock()
}

func (sw *selWorker) addTraceMsg(from, to int32) {
	sw.e.traceMu.Lock()
	sw.e.trace.FlowMsgs[[2]int32{from, to}]++
	sw.e.traceMu.Unlock()
}
