package engine

import (
	"context"
	"errors"

	"repro/internal/metrics"
)

// ErrCanceled reports a ProcessBatchCtx call on an engine whose earlier
// batch was aborted by context cancellation: the in-memory state is
// mid-refinement and must be rebuilt (or recovered from a WAL+snapshot)
// before processing can continue.
var ErrCanceled = errors.New("engine: prior batch canceled; state requires recovery")

// watchCancel arranges for pl to be interrupted when ctx is canceled. The
// returned stop function must be called once the run completes; a late
// interrupt on an already-finished scheduler is harmless (schedulers are
// per-batch), so the watcher needs no further synchronization.
func watchCancel(ctx context.Context, pl scheduler) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			pl.interrupt()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// scheduler runs scheduling units (single flows or merged cyclic groups) to
// global quiescence. Both implementations share the unit state machine
// (idle/queued/running/pending) declared in pool.go: activate is safe from
// any goroutine — including workers mid-unit and external producers — and
// run returns only when no unit is queued, running, or pending.
//
// Correctness never depends on dispatch order (the trimmed-bit and
// delta-push protocols tolerate any interleaving); level preference is the
// paper's space-time cache-efficiency lever, a heuristic only.
type scheduler interface {
	activate(u *unit)
	run(workers int, fn func(w int, u *unit))
	// interrupt makes run return as soon as every in-flight unit callback
	// finishes, abandoning queued and pending units. Safe from any
	// goroutine, idempotent, and permanent for this scheduler instance —
	// it is how context cancellation reaches a wedged batch.
	interrupt()
	stats() schedStats
}

// schedStats are one run's scheduling counters, exported through
// BatchStats and internal/metrics for the scaling experiments.
type schedStats struct {
	Dispatches int64 // units handed to workers
	Steals     int64 // dispatches served from another worker's deque
	Parks      int64 // idle waits (condvar waits or backoff sleeps)
}

// SchedulerKind selects the unit scheduler implementation.
type SchedulerKind int

const (
	// SchedWorkStealing is the default scheduler: per-worker deques banded
	// by schedule level, lock-free unit handoff through the atomic state
	// machine, and atomic-counter quiescence detection. Owners pop their
	// lowest-level local unit; idle workers steal from the most loaded
	// victim, preferring earlier levels.
	SchedWorkStealing SchedulerKind = iota
	// SchedGlobal is the reference implementation retained for conformance
	// testing and ablation: a single mutex-protected level heap with
	// condvar wakeups. It serializes every dispatch, so it stops scaling
	// past a few workers.
	SchedGlobal
)

// String names the kind for CLI flags and experiment tables.
func (k SchedulerKind) String() string {
	switch k {
	case SchedWorkStealing:
		return "worksteal"
	case SchedGlobal:
		return "global"
	}
	return "unknown"
}

// ParseScheduler maps a CLI name to a SchedulerKind.
func ParseScheduler(s string) (SchedulerKind, bool) {
	switch s {
	case "worksteal", "ws", "":
		return SchedWorkStealing, true
	case "global", "pool":
		return SchedGlobal, true
	}
	return SchedWorkStealing, false
}

// newScheduler builds the configured scheduler for one batch. When metrics
// are enabled the scheduler feeds the dispatch-wait histogram (time from
// activation to dispatch) directly into the registry.
func (c Config) newScheduler() scheduler {
	var h *metrics.Histogram
	if c.Metrics != nil {
		h = c.Metrics.Histogram("sched.dispatch_wait_ns")
	}
	if c.Scheduler == SchedGlobal {
		return newPool(h)
	}
	return newWSPool(c.workers(), h)
}
