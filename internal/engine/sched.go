package engine

import "repro/internal/metrics"

// scheduler runs scheduling units (single flows or merged cyclic groups) to
// global quiescence. Both implementations share the unit state machine
// (idle/queued/running/pending) declared in pool.go: activate is safe from
// any goroutine — including workers mid-unit and external producers — and
// run returns only when no unit is queued, running, or pending.
//
// Correctness never depends on dispatch order (the trimmed-bit and
// delta-push protocols tolerate any interleaving); level preference is the
// paper's space-time cache-efficiency lever, a heuristic only.
type scheduler interface {
	activate(u *unit)
	run(workers int, fn func(w int, u *unit))
	stats() schedStats
}

// schedStats are one run's scheduling counters, exported through
// BatchStats and internal/metrics for the scaling experiments.
type schedStats struct {
	Dispatches int64 // units handed to workers
	Steals     int64 // dispatches served from another worker's deque
	Parks      int64 // idle waits (condvar waits or backoff sleeps)
}

// SchedulerKind selects the unit scheduler implementation.
type SchedulerKind int

const (
	// SchedWorkStealing is the default scheduler: per-worker deques banded
	// by schedule level, lock-free unit handoff through the atomic state
	// machine, and atomic-counter quiescence detection. Owners pop their
	// lowest-level local unit; idle workers steal from the most loaded
	// victim, preferring earlier levels.
	SchedWorkStealing SchedulerKind = iota
	// SchedGlobal is the reference implementation retained for conformance
	// testing and ablation: a single mutex-protected level heap with
	// condvar wakeups. It serializes every dispatch, so it stops scaling
	// past a few workers.
	SchedGlobal
)

// String names the kind for CLI flags and experiment tables.
func (k SchedulerKind) String() string {
	switch k {
	case SchedWorkStealing:
		return "worksteal"
	case SchedGlobal:
		return "global"
	}
	return "unknown"
}

// ParseScheduler maps a CLI name to a SchedulerKind.
func ParseScheduler(s string) (SchedulerKind, bool) {
	switch s {
	case "worksteal", "ws", "":
		return SchedWorkStealing, true
	case "global", "pool":
		return SchedGlobal, true
	}
	return SchedWorkStealing, false
}

// newScheduler builds the configured scheduler for one batch. When metrics
// are enabled the scheduler feeds the dispatch-wait histogram (time from
// activation to dispatch) directly into the registry.
func (c Config) newScheduler() scheduler {
	var h *metrics.Histogram
	if c.Metrics != nil {
		h = c.Metrics.Histogram("sched.dispatch_wait_ns")
	}
	if c.Scheduler == SchedGlobal {
		return newPool(h)
	}
	return newWSPool(c.workers(), h)
}
