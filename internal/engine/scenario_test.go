package engine

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Targeted scenarios for the trickiest corners of the trimming protocol.

func newSSSPEngine(t *testing.T, n int, edges []graph.Edge, cfg Config) (*Selective, *graph.Streaming) {
	t.Helper()
	g := graph.FromEdges(n, edges)
	return NewSelective(g, algo.SSSP{Src: 0}, cfg), g
}

func assertMatchesStatic(t *testing.T, e *Selective, g *graph.Streaming) {
	t.Helper()
	want, _ := algo.SolveSelective(g, e.Alg)
	got := e.Values()
	for v := range want {
		if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
			t.Fatalf("vertex %d = %v, want %v", v, got[v], want[v])
		}
	}
}

// Deleting the key edge of a long chain trims the whole suffix; a parallel
// longer path must then take over.
func TestScenarioChainTrimWithBackup(t *testing.T) {
	// 0 -1-> 1 -1-> 2 -1-> 3 -1-> 4, plus a backup 0 -10-> 2.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1}, {Src: 3, Dst: 4, W: 1},
		{Src: 0, Dst: 2, W: 10},
	}
	e, g := newSSSPEngine(t, 5, edges, Config{Workers: 2, FlowCap: 2})
	st := e.ProcessBatch(graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true}})
	if st.Trimmed < 3 {
		t.Fatalf("expected the chain suffix trimmed, got %d", st.Trimmed)
	}
	if e.Value(2) != 10 || e.Value(4) != 12 {
		t.Fatalf("backup path not adopted: %v", e.Values())
	}
	assertMatchesStatic(t, e, g)
}

// Deleting the only path leaves the suffix unreachable (values reset to
// +Inf and stay there).
func TestScenarioUnreachableAfterDeletion(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 1},
	}
	e, g := newSSSPEngine(t, 4, edges, Config{Workers: 2, FlowCap: 2})
	e.ProcessBatch(graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true}})
	if !math.IsInf(e.Value(2), 1) || !math.IsInf(e.Value(3), 1) {
		t.Fatalf("unreachable suffix kept values: %v", e.Values())
	}
	assertMatchesStatic(t, e, g)
}

// A deletion and an addition that repairs it in the same batch: the trim
// must not leave stale resets behind.
func TestScenarioDeleteAndRepairSameBatch(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 1},
	}
	e, g := newSSSPEngine(t, 4, edges, Config{Workers: 2, FlowCap: 2})
	e.ProcessBatch(graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true},
		{Edge: graph.Edge{Src: 0, Dst: 2, W: 1}}, // better repair
	})
	if e.Value(2) != 1 || e.Value(3) != 2 {
		t.Fatalf("repair not adopted: %v", e.Values())
	}
	assertMatchesStatic(t, e, g)
}

// Nested trim roots: deleting two key edges where one target lies in the
// other's subtree must not double-process or miss vertices.
func TestScenarioNestedTrimRoots(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1}, {Src: 3, Dst: 4, W: 1},
	}
	e, g := newSSSPEngine(t, 5, edges, Config{Workers: 2, FlowCap: 2})
	st := e.ProcessBatch(graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true}, // trims {2,3,4}
		{Edge: graph.Edge{Src: 3, Dst: 4, W: 1}, Del: true}, // nested in the subtree
	})
	if st.Trimmed != 3 {
		t.Fatalf("trimmed %d vertices, want 3 (no double count)", st.Trimmed)
	}
	assertMatchesStatic(t, e, g)
}

// Deleting a non-key edge must be free: no trimming, no recomputation.
func TestScenarioNonKeyDeletionIsFree(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 0, Dst: 2, W: 5}, // non-key: 2's key edge is via 1
		{Src: 1, Dst: 2, W: 1},
	}
	e, g := newSSSPEngine(t, 3, edges, Config{Workers: 2, FlowCap: 2})
	st := e.ProcessBatch(graph.Batch{{Edge: graph.Edge{Src: 0, Dst: 2, W: 5}, Del: true}})
	if st.Trimmed != 0 || st.TrimRoots != 0 {
		t.Fatalf("non-key deletion caused trimming: %+v", st)
	}
	if e.Value(2) != 2 {
		t.Fatalf("value disturbed: %v", e.Value(2))
	}
	assertMatchesStatic(t, e, g)
}

// The source vertex can never be trimmed: deleting an edge INTO the source
// must not disturb it.
func TestScenarioSourceUntrimmable(t *testing.T) {
	edges := []graph.Edge{
		{Src: 1, Dst: 0, W: 1}, {Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1},
	}
	e, g := newSSSPEngine(t, 3, edges, Config{Workers: 2, FlowCap: 2})
	e.ProcessBatch(graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 0, W: 1}, Del: true}})
	if e.Value(0) != 0 {
		t.Fatalf("source disturbed: %v", e.Value(0))
	}
	assertMatchesStatic(t, e, g)
}

// An empty batch is a no-op.
func TestScenarioEmptyBatch(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, W: 1}}
	e, g := newSSSPEngine(t, 2, edges, Config{Workers: 2})
	st := e.ProcessBatch(nil)
	if st.Applied != 0 || st.Trimmed != 0 {
		t.Fatalf("empty batch did work: %+v", st)
	}
	assertMatchesStatic(t, e, g)
}

// Repeated batches that add and delete the same shortcut flip the value
// back and forth exactly (the graph is simple, so the shortcut uses a
// distinct vertex pair).
func TestScenarioFlipFlop(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 2, W: 4}, {Src: 2, Dst: 1, W: 1},
	}
	e, g := newSSSPEngine(t, 3, edges, Config{Workers: 2, RepartitionEvery: 1})
	short := graph.Edge{Src: 0, Dst: 1, W: 2}
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			e.ProcessBatch(graph.Batch{{Edge: short}})
			if e.Value(1) != 2 {
				t.Fatalf("iter %d: value %v, want 2", i, e.Value(1))
			}
		} else {
			e.ProcessBatch(graph.Batch{{Edge: short, Del: true}})
			if e.Value(1) != 5 {
				t.Fatalf("iter %d: value %v, want 5", i, e.Value(1))
			}
		}
		assertMatchesStatic(t, e, g)
	}
}

// A dense cyclic core (every flow depends on every other) exercises the
// SCC-merged schedule path end to end.
func TestScenarioCyclicCore(t *testing.T) {
	var edges []graph.Edge
	n := 12
	for i := 0; i < n; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n), W: 1},
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 5) % n), W: 3},
		)
	}
	e, g := newSSSPEngine(t, n, edges, Config{Workers: 3, FlowCap: 3})
	e.ProcessBatch(graph.Batch{
		{Edge: graph.Edge{Src: 0, Dst: 1, W: 1}, Del: true},
		{Edge: graph.Edge{Src: 5, Dst: 6, W: 1}, Del: true},
	})
	assertMatchesStatic(t, e, g)
}

// PageRank must survive a vertex losing all its out-edges (becoming
// dangling) and regaining them.
func TestScenarioAccumulativeDangling(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 0, W: 1},
	}
	g := graph.FromEdges(3, edges)
	alg := algo.NewPageRank(3)
	e := NewAccumulative(g, alg, Config{Workers: 2, FlowCap: 2})
	check := func() {
		want := algo.SolveAccumulative(g, alg)
		got := e.Values()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5 {
				t.Fatalf("component %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	e.ProcessBatch(graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true}}) // 1 dangles
	check()
	e.ProcessBatch(graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 0, W: 2}}}) // 1 recovers
	check()
}

// Soak: a long stream with heavy churn, frequent repartitioning, and a
// rebuild-triggering deletion rate — the engine must track static
// recomputation across dozens of batches.
func TestScenarioSoakLongStream(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	cfg := gen.TestDataset(99)
	cfg.NumV, cfg.NumE = 400, 3000
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.4, DeleteRatio: 0.45, BatchSize: 120,
		NumBatches: 30, Seed: 100,
	})
	g := graph.FromEdges(w.NumV, w.Initial)
	alg := algo.SSSP{Src: 0}
	e := NewSelective(g, alg, Config{Workers: 4, FlowCap: 48, RepartitionEvery: 2})
	ref := g.Clone()
	for bi, b := range w.Batches {
		e.ProcessBatch(b)
		ref.ApplyBatch(b)
		want, _ := algo.SolveSelective(ref, alg)
		got := e.Values()
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("soak batch %d: vertex %d = %v, want %v", bi, v, got[v], want[v])
			}
		}
	}
	// The engine's own graph must still be structurally sound.
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Accumulative soak with forest-rebuild churn.
func TestScenarioSoakAccumulative(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	cfg := gen.TestDataset(101)
	cfg.NumV, cfg.NumE = 200, 1400
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.4, DeleteRatio: 0.5, BatchSize: 80,
		NumBatches: 15, Seed: 102,
	})
	g := graph.FromEdges(w.NumV, w.Initial)
	alg := algo.NewPageRank(w.NumV)
	e := NewAccumulative(g, alg, Config{Workers: 4, FlowCap: 32, RepartitionEvery: 2})
	ref := g.Clone()
	for bi, b := range w.Batches {
		e.ProcessBatch(b)
		ref.ApplyBatch(b)
		want := algo.SolveAccumulative(ref, alg)
		got := e.Values()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5 {
				t.Fatalf("soak batch %d: component %d = %v, want %v", bi, i, got[i], want[i])
			}
		}
	}
}
