package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/dense"
	"repro/internal/dflow"
	"repro/internal/etree"
	"repro/internal/graph"
	"repro/internal/layout"
)

// Local is the GraphFly engine for neighborhood-local, non-monotonic
// algorithms (triangle counting, k-core maintenance). It shares the
// dependency-flow runtime with the other two engines — structural D-trees
// partition the graph into flows, impacted flows are scheduled in
// space-time order, and cross-flow influence travels as messages — but its
// convergence discipline is seeded recomputation: the algorithm plans each
// batch into sequentially converged steps (algo.Local.Plan), marks the
// vertices a step invalidates (Seed), and the workers re-derive values
// (Recompute) until quiescence, re-notifying neighbors when a value changes
// and the algorithm reads neighbor values.
//
// Exclusivity protocol: every vertex is recomputed only by the worker
// currently running its flow's unit (seeds and inbox messages are routed by
// flow, and a unit runs on one worker at a time), so there are no
// concurrent writes to one value. The queued-bit handshake — clear before
// Recompute, swapSet when notifying — guarantees a vertex whose neighbor
// changes mid-recompute is re-queued, which with a unique seeded fixpoint
// makes the result independent of worker count and scheduler.
type Local struct {
	G   *graph.Streaming
	Alg algo.Local
	cfg Config

	vals   *layout.Store
	queued *flags // vertex sits on some worklist / inbox
	notify bool   // Alg.UsesNeighborVals()

	forest *etree.Forest
	part   *dflow.Partition
	fg     *dflow.FlowGraph

	batches int

	unitsMu sync.Mutex
	units   []*unit
	unitOf  []int32
	inboxes []inbox[[]uint32]
	seeds   [][]uint32
	pl      scheduler

	impacted *dense.FlowSet
	symm     Symmetrizer
	valOf    func(graph.VertexID) float64

	recomputes atomic.Int64
	crossMsgs  atomic.Int64

	canceled bool
}

// NewLocal builds the engine over g (already symmetric for symmetric
// algorithms) and installs the from-scratch solution as the initial state.
func NewLocal(g *graph.Streaming, alg algo.Local, cfg Config) *Local {
	return newLocal(g, alg, cfg, alg.Solve(g))
}

// NewLocalFromState rebuilds an engine from a snapshot of Values() taken
// over an identical graph, skipping the from-scratch solve — the recovery
// entry point internal/wal uses.
func NewLocalFromState(g *graph.Streaming, alg algo.Local, cfg Config, vals []float64) (*Local, error) {
	if len(vals) != g.NumVertices() {
		return nil, fmt.Errorf("engine: state for %d vertices, graph has %d", len(vals), g.NumVertices())
	}
	return newLocal(g, alg, cfg, vals), nil
}

func newLocal(g *graph.Streaming, alg algo.Local, cfg Config, vals []float64) *Local {
	e := &Local{
		G:      g,
		Alg:    alg,
		cfg:    cfg,
		notify: alg.UsesNeighborVals(),
	}
	if cfg.DenseOff {
		g.DisableHubIndex()
	}
	n := g.NumVertices()
	e.queued = newFlags(n)
	dir := etree.Forward
	if cfg.BackwardFlows {
		dir = etree.Backward
	}
	e.forest = etree.NewForest(g, dir)
	e.repartition()
	for v, x := range vals {
		e.vals.Set(uint32(v), x)
	}
	e.valOf = func(v graph.VertexID) float64 { return e.vals.Get(v) }
	return e
}

func (e *Local) repartition() {
	e.part = dflow.NewPartition(e.forest, e.cfg.FlowCap)
	if e.fg == nil || e.cfg.DenseOff {
		e.fg = dflow.NewFlowGraph(e.G, e.part)
	} else {
		e.fg.Rebuild(e.G, e.part)
	}
	var store *layout.Store
	if e.cfg.ScatteredStorage {
		store = layout.NewScatteredStore(e.G.NumVertices(), 1)
	} else {
		store = layout.NewFlowStore(e.part, 1)
	}
	if e.vals != nil {
		for v := 0; v < e.G.NumVertices(); v++ {
			store.Set(uint32(v), e.vals.Get(uint32(v)))
		}
	}
	e.vals = store
}

// Value returns v's current converged value.
func (e *Local) Value(v graph.VertexID) float64 { return e.vals.Get(v) }

// Values copies all values into a fresh slice.
func (e *Local) Values() []float64 {
	out := make([]float64, e.G.NumVertices())
	for v := range out {
		out[v] = e.vals.Get(uint32(v))
	}
	return out
}

// SnapshotState copies the converged per-vertex values — everything
// NewLocalFromState needs besides the graph itself. Call it only between
// batches.
func (e *Local) SnapshotState() []float64 { return e.Values() }

// StateSnapshot captures the current converged state under seq for the
// serving layer. Local algorithms have no key-edge parents; the Parent
// column is -1 throughout, matching the wire schema.
func (e *Local) StateSnapshot(seq uint64) *StateSnapshot {
	vals := e.Values()
	parent := make([]int32, len(vals))
	for i := range parent {
		parent[i] = -1
	}
	return &StateSnapshot{Seq: seq, Vals: vals, Parent: parent}
}

// Partition exposes the current dependency-flow partition.
func (e *Local) Partition() *dflow.Partition { return e.part }

// ProcessBatch applies one batch and incrementally reconverges. It panics
// on a malformed batch; ProcessBatchE is the error-returning form.
func (e *Local) ProcessBatch(batch graph.Batch) BatchStats {
	st, err := e.ProcessBatchE(batch)
	if err != nil {
		panic(err)
	}
	return st
}

// ProcessBatchE is ProcessBatch with graceful degradation: a malformed
// batch is rejected before any state mutates.
func (e *Local) ProcessBatchE(batch graph.Batch) (BatchStats, error) {
	return e.ProcessBatchCtx(context.Background(), batch)
}

// ProcessBatchCtx is ProcessBatchE with cancellation, mirroring the other
// engines: a canceled batch leaves the engine mid-step, so every later call
// fails with ErrCanceled until it is rebuilt (wal recovery replays the log).
func (e *Local) ProcessBatchCtx(ctx context.Context, batch graph.Batch) (BatchStats, error) {
	if e.canceled {
		return BatchStats{}, ErrCanceled
	}
	if err := ctx.Err(); err != nil {
		return BatchStats{}, err
	}
	if err := e.G.CheckBatch(batch); err != nil {
		return BatchStats{}, err
	}
	st := e.processBatch(ctx, batch)
	if err := ctx.Err(); err != nil {
		e.canceled = true
		return st, err
	}
	return st, nil
}

func (e *Local) processBatch(ctx context.Context, batch graph.Batch) BatchStats {
	var st BatchStats
	t0 := time.Now()
	if e.Alg.Symmetric() {
		if e.cfg.DenseOff {
			batch = Symmetrize(batch)
		} else {
			batch = e.symm.Symmetrize(batch)
		}
	}
	e.batches++
	e.recomputes.Store(0)
	e.crossMsgs.Store(0)

	for _, step := range e.Alg.Plan(batch) {
		if ctx.Err() != nil {
			break
		}
		tApply := time.Now()
		applied := e.G.ApplyBatchParallel(step, e.cfg.workers())
		st.Applied += len(applied)
		st.ApplyTime += time.Since(tApply)
		if len(applied) == 0 {
			continue
		}

		tMaint := time.Now()
		for _, u := range applied {
			if u.Del {
				e.forest.DeleteEdge(e.G, u.Src, u.Dst)
			} else {
				e.forest.AddEdge(u.Src, u.Dst)
			}
		}
		st.DtreeTime += time.Since(tMaint)
		if e.forest.RebuildIfDirty(e.G, 0.2) {
			e.repartition()
		} else {
			for _, u := range applied {
				if u.Del {
					e.fg.DeleteEdge(u.Src, u.Dst)
				} else {
					e.fg.AddEdge(u.Src, u.Dst)
				}
			}
		}
		st.MaintainTime += time.Since(tMaint)

		// Seeding (the trim-equivalent phase for local algorithms): the
		// algorithm decides which values this step invalidates.
		tTrim := time.Now()
		nf := e.part.NumFlows()
		if cap(e.seeds) < nf {
			e.seeds = make([][]uint32, nf)
		}
		e.seeds = e.seeds[:nf]
		for i := range e.seeds {
			e.seeds[i] = e.seeds[i][:0]
		}
		impacted := e.impactedScratch(nf)
		emit := func(v graph.VertexID) {
			if e.queued.swapSet(v) {
				return // already seeded this step
			}
			f := e.part.Flow(v)
			e.seeds[f] = append(e.seeds[f], v)
			impacted.Add(f)
			st.Trimmed++
		}
		e.Alg.Seed(e.G, applied, e.valOf,
			func(v graph.VertexID, x float64) { e.vals.Set(v, x) }, emit)
		st.TrimTime += time.Since(tTrim)

		tComp := time.Now()
		st.Impacted += impacted.Len()
		units, levels := e.converge(ctx, impacted.Members())
		st.Units += units
		if levels > st.Levels {
			st.Levels = levels
		}
		st.ComputeTime += time.Since(tComp)
	}

	if e.batches%e.cfg.repartitionEvery() == 0 {
		e.repartition()
	}
	st.Relaxations = e.recomputes.Load()
	st.CrossMsgs = e.crossMsgs.Load()
	if e.pl != nil {
		ss := e.pl.stats()
		st.Dispatches = ss.Dispatches
		st.Steals = ss.Steals
		st.SchedParks = ss.Parks
	}
	st.Total = time.Since(t0)
	e.cfg.observe(&st)
	return st
}

// impactedScratch hands out the per-step impacted-flow set (see
// scratchFlowSet for the -denseoff semantics).
func (e *Local) impactedScratch(nf int) *dense.FlowSet {
	e.impacted = scratchFlowSet(e.impacted, nf, e.cfg.DenseOff)
	return e.impacted
}

// converge schedules the impacted flows and recomputes to quiescence (or
// until ctx cancels), returning scheduled units and levels.
func (e *Local) converge(ctx context.Context, impacted []int32) (int, int) {
	if len(impacted) == 0 {
		return 0, 0
	}
	var groups []dflow.Group
	if e.cfg.NoSCCMerge {
		for _, f := range impacted {
			groups = append(groups, dflow.Group{Flows: []int32{f}})
		}
	} else {
		groups = dflow.Schedule(e.fg, impacted)
	}
	maxLevel := 0
	for _, g := range groups {
		if g.Level > maxLevel {
			maxLevel = g.Level
		}
	}
	nf := e.part.NumFlows()
	e.units = e.units[:0]
	if cap(e.unitOf) < nf {
		e.unitOf = make([]int32, nf)
	}
	e.unitOf = e.unitOf[:nf]
	for i := range e.unitOf {
		e.unitOf[i] = -1
	}
	for _, grp := range groups {
		for _, f := range grp.Flows {
			u := &unit{id: int32(len(e.units)), flows: []int32{f}, level: grp.Level}
			e.units = append(e.units, u)
			e.unitOf[f] = u.id
		}
	}
	if cap(e.inboxes) < nf {
		e.inboxes = make([]inbox[[]uint32], nf)
	}
	e.inboxes = e.inboxes[:nf]
	for i := range e.inboxes {
		e.inboxes[i].reset()
	}
	e.pl = e.cfg.newScheduler()

	e.unitsMu.Lock()
	for _, u := range e.units {
		e.pl.activate(u)
	}
	e.unitsMu.Unlock()

	workerPool := make([]*localWorker, e.cfg.workers())
	batchBufs := make([][][]uint32, e.cfg.workers())
	stopWatch := watchCancel(ctx, e.pl)
	e.pl.run(e.cfg.workers(), func(w int, u *unit) {
		if workerPool[w] == nil {
			workerPool[w] = &localWorker{e: e, pending: make(map[int32][]uint32)}
		}
		batchBufs[w] = workerPool[w].processUnit(u, batchBufs[w])
	})
	stopWatch()
	return len(groups), maxLevel + 1
}

func (e *Local) activateFlow(f int32, level int) {
	var u *unit
	if ui := atomic.LoadInt32(&e.unitOf[f]); ui != -1 {
		e.unitsMu.Lock()
		u = e.units[ui]
		e.unitsMu.Unlock()
	} else {
		e.unitsMu.Lock()
		if ui := e.unitOf[f]; ui != -1 {
			u = e.units[ui]
		} else {
			u = &unit{id: int32(len(e.units)), flows: []int32{f}, level: level}
			e.units = append(e.units, u)
			atomic.StoreInt32(&e.unitOf[f], u.id)
		}
		e.unitsMu.Unlock()
	}
	e.pl.activate(u)
}

type localWorker struct {
	e       *Local
	wl      []uint32
	pending map[int32][]uint32
	level   int
}

// flush delivers the batched cross-flow notifications.
func (lw *localWorker) flush() {
	e := lw.e
	for tf, vs := range lw.pending {
		if len(vs) == 0 {
			continue
		}
		e.inboxes[tf].put(vs)
		delete(lw.pending, tf) // hand ownership of the slice to the inbox
		e.activateFlow(tf, lw.level+1)
	}
}

func (lw *localWorker) processUnit(u *unit, batches [][]uint32) [][]uint32 {
	e := lw.e
	lw.level = u.level
	inUnit := func(f int32) bool {
		return atomic.LoadInt32(&e.unitOf[f]) == u.id
	}
	for _, f := range u.flows {
		if len(e.seeds[f]) > 0 {
			lw.wl = append(lw.wl, e.seeds[f]...)
			e.seeds[f] = e.seeds[f][:0]
		}
	}
	for {
		progressed := false
		for _, f := range u.flows {
			batches = e.inboxes[f].drain(batches)
			for _, bt := range batches {
				if len(bt) > 0 {
					progressed = true
					lw.wl = append(lw.wl, bt...)
				}
			}
		}
		for head := 0; head < len(lw.wl); head++ {
			progressed = true
			lw.recompute(lw.wl[head], inUnit)
		}
		lw.wl = lw.wl[:0]
		// Deliver batched cross-flow notifications before (possibly) going
		// idle, so the scheduler's quiescence detection stays sound.
		lw.flush()
		if !progressed {
			return batches
		}
	}
}

// recompute re-derives one vertex and, on change, re-queues its neighbors
// when the algorithm reads neighbor values. Clearing the queued bit before
// reading guarantees a concurrent neighbor change re-queues v.
func (lw *localWorker) recompute(v uint32, inUnit func(int32) bool) {
	e := lw.e
	e.queued.clear(v)
	old := e.vals.Get(v)
	nv := e.Alg.Recompute(e.G, v, old, e.valOf)
	e.recomputes.Add(1)
	if nv == old {
		return
	}
	e.vals.Set(v, nv)
	if !e.notify {
		return
	}
	for _, h := range e.G.Out(graph.VertexID(v)) {
		w := h.To
		if w == v || e.queued.swapSet(w) {
			continue
		}
		tf := e.part.Flow(w)
		if inUnit(tf) {
			lw.wl = append(lw.wl, w)
		} else {
			lw.pending[tf] = append(lw.pending[tf], w)
			e.crossMsgs.Add(1)
		}
	}
}
