package engine

import (
	"sync/atomic"
	"testing"
)

// TestPoolStressCrossActivation hammers the pool with concurrent cross-unit
// reactivations and asserts no work is ever lost in the unitPending →
// re-queue transition: every token added to a unit's mailbox before the
// matching activate call must be consumed by the time run returns
// quiescent. The fan-out mirrors how engine workers push cross-flow
// messages to other units mid-processing, the historical lost-wakeup spot
// (a token added while its unit is running must flip it to unitPending so
// it re-queues, not idle out with mail unread). Run under -race.
func TestPoolStressCrossActivation(t *testing.T) {
	const (
		numUnits = 64
		workers  = 8
		seed     = 4       // tokens pre-loaded per unit before run
		budget   = 200_000 // cap on total tokens ever injected
	)
	units := make([]*unit, numUnits)
	for i := range units {
		units[i] = &unit{id: int32(i), level: i % 4}
	}
	tokens := make([]atomic.Int64, numUnits)
	var injected, consumed atomic.Int64

	p := newPool(nil)
	fn := func(_ int, u *unit) {
		n := tokens[u.id].Swap(0)
		if n == 0 {
			return // benign: a racing drain beat this activation
		}
		consumed.Add(n)
		// Push follow-up work to two deterministically-chosen other units:
		// token first, activate second, exactly like a cross-flow message.
		h := uint64(u.id)*0x9E3779B97F4A7C15 + uint64(n)*0xBF58476D1CE4E5B9
		for k := 0; k < 2; k++ {
			h ^= h >> 33
			h *= 0xFF51AFD7ED558CCD
			h ^= h >> 33
			tgt := int(h % numUnits)
			if injected.Add(1) > budget {
				injected.Add(-1)
				continue
			}
			tokens[tgt].Add(1)
			p.activate(units[tgt])
		}
	}

	for i := range units {
		tokens[i].Store(seed)
		injected.Add(seed)
		p.activate(units[i])
	}
	p.run(workers, fn)

	if got, want := consumed.Load(), injected.Load(); got != want {
		t.Fatalf("lost work: consumed %d of %d injected tokens", got, want)
	}
	for i := range tokens {
		if n := tokens[i].Load(); n != 0 {
			t.Fatalf("unit %d quiesced with %d unread tokens", i, n)
		}
		if s := units[i].state.Load(); s != unitIdle {
			t.Fatalf("unit %d quiesced in state %d", i, s)
		}
	}
	if injected.Load() < budget/2 {
		t.Fatalf("reactivation storm died early: only %d tokens injected (budget %d)", injected.Load(), budget)
	}
}
