package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/graph"
)

// gatedSSSP blocks every Propagate on a gate once armed, standing in for a
// wedged batch: the computation cannot finish until the gate opens, so
// cancellation is the only way ProcessBatchCtx returns promptly.
type gatedSSSP struct {
	algo.SSSP
	armed *atomic.Bool
	gate  chan struct{}
}

func (s gatedSSSP) Propagate(u float64, w graph.Weight) float64 {
	if s.armed.Load() {
		<-s.gate
	}
	return s.SSSP.Propagate(u, w)
}

// TestProcessBatchCtxCancel wedges a batch on both schedulers, cancels it,
// and requires (a) a prompt context error, (b) the engine to refuse further
// batches with ErrCanceled. Run under -race this also exercises the
// interrupt path's synchronization.
func TestProcessBatchCtxCancel(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedWorkStealing, SchedGlobal} {
		t.Run(kind.String(), func(t *testing.T) {
			w := randomWorkload(77)
			alg := gatedSSSP{SSSP: algo.SSSP{Src: 0}, armed: &atomic.Bool{}, gate: make(chan struct{})}
			g := graph.FromEdges(w.NumV, w.Initial)
			e := NewSelective(g, alg, Config{Workers: 3, Scheduler: kind})

			alg2 := e.Alg.(gatedSSSP)
			alg2.armed.Store(true)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel() // interrupt the scheduler...
				time.Sleep(5 * time.Millisecond)
				close(alg2.gate) // ...then unwedge the in-flight units so they can drain
			}()
			_, err := e.ProcessBatchCtx(ctx, w.Batches[0])
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			// The engine is mid-refinement: it must refuse to continue.
			if _, err := e.ProcessBatchCtx(context.Background(), w.Batches[0]); !errors.Is(err, ErrCanceled) {
				t.Fatalf("want ErrCanceled after abort, got %v", err)
			}
			if _, err := e.ProcessBatchE(w.Batches[0]); !errors.Is(err, ErrCanceled) {
				t.Fatalf("ProcessBatchE after abort: want ErrCanceled, got %v", err)
			}
		})
	}
}

// TestProcessBatchCtxPreCanceled: an already-dead context touches nothing —
// the engine stays consistent and keeps processing afterwards.
func TestProcessBatchCtxPreCanceled(t *testing.T) {
	w := randomWorkload(78)
	g := graph.FromEdges(w.NumV, w.Initial)
	e := NewSelective(g, algo.SSSP{Src: 0}, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ProcessBatchCtx(ctx, w.Batches[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := e.ProcessBatchE(w.Batches[0]); err != nil {
		t.Fatalf("engine must stay usable after a pre-canceled call: %v", err)
	}

	ga := graph.FromEdges(w.NumV, w.Initial)
	ea := NewAccumulative(ga, algo.NewPageRank(w.NumV), Config{Workers: 2})
	if _, err := ea.ProcessBatchCtx(ctx, w.Batches[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("accumulative: want context.Canceled, got %v", err)
	}
	if _, err := ea.ProcessBatchE(w.Batches[0]); err != nil {
		t.Fatalf("accumulative must stay usable after a pre-canceled call: %v", err)
	}
}

// TestSchedulerInterruptUnblocksRun drives both schedulers with units that
// perpetually re-activate each other — a livelock that, without interrupt,
// never quiesces — and requires interrupt to drain run() promptly.
func TestSchedulerInterruptUnblocksRun(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedWorkStealing, SchedGlobal} {
		t.Run(kind.String(), func(t *testing.T) {
			pl := Config{Scheduler: kind, Workers: 4}.newScheduler()
			units := make([]*unit, 8)
			for i := range units {
				units[i] = &unit{id: int32(i)}
			}
			for _, u := range units {
				pl.activate(u)
			}
			done := make(chan struct{})
			go func() {
				pl.run(4, func(w int, u *unit) {
					pl.activate(units[(int(u.id)+1)%len(units)])
					pl.activate(u) // mark self pending too: outstanding never drops
				})
				close(done)
			}()
			time.Sleep(5 * time.Millisecond)
			pl.interrupt()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("run did not drain after interrupt")
			}
			if pl.stats().Dispatches == 0 {
				t.Fatal("livelock never dispatched — test is vacuous")
			}
		})
	}
}
