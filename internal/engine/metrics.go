package engine

import "repro/internal/metrics"

// Point converts the stats into the metrics layer's batch record.
func (st BatchStats) Point() metrics.BatchPoint {
	return metrics.BatchPoint{
		ApplyNs:    int64(st.ApplyTime),
		MaintainNs: int64(st.MaintainTime),
		TrimNs:     int64(st.TrimTime),
		ScheduleNs: int64(st.ScheduleTime),
		ComputeNs:  int64(st.ComputeTime),
		TotalNs:    int64(st.Total),
		Applied:    st.Applied,
	}
}

// observe feeds one batch's stats into the configured registry. With a
// nil registry (the default) this is a single branch per batch.
func (c Config) observe(st *BatchStats) {
	r := c.Metrics
	if r == nil {
		return
	}
	r.Histogram("phase.apply_ns").Observe(int64(st.ApplyTime))
	r.Histogram("phase.maintain_ns").Observe(int64(st.MaintainTime))
	r.Histogram("phase.trim_ns").Observe(int64(st.TrimTime))
	r.Histogram("phase.schedule_ns").Observe(int64(st.ScheduleTime))
	r.Histogram("phase.compute_ns").Observe(int64(st.ComputeTime))
	r.Histogram("batch.total_ns").Observe(int64(st.Total))
	r.Counter("batch.count").Inc()
	r.Counter("updates.applied").Add(int64(st.Applied))
	r.Counter("trim.roots").Add(int64(st.TrimRoots))
	r.Counter("trim.vertices").Add(int64(st.Trimmed))
	r.Counter("schedule.units").Add(int64(st.Units))
	r.Counter("compute.relaxations").Add(st.Relaxations)
	r.Counter("compute.pulls").Add(st.Pulls)
	r.Counter("compute.cross_msgs").Add(st.CrossMsgs)
	r.Counter("sched.dispatches").Add(st.Dispatches)
	r.Counter("sched.steals").Add(st.Steals)
	r.Counter("sched.parks").Add(st.SchedParks)
	r.Counter("replica.msgs").Add(st.ReplicaMsgs)
	r.Counter("replica.combines").Add(st.Combines)
	r.Gauge("replica.hubs").Set(float64(st.ReplicatedHubs))
	r.Gauge("schedule.levels").Set(float64(st.Levels))
	r.Gauge("schedule.impacted_flows").Set(float64(st.Impacted))
}
