package engine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Seeded end-to-end stream fuzzer: hostile RMAT update streams — far
// outside the paper's gentle 10%-deletion default — driven through every
// algorithm at several worker counts under BOTH schedulers, checked
// against from-scratch recomputation after every batch. Each failure
// message carries the reproducing seed, shape, scheduler, and worker
// count, so any divergence replays deterministically.

type fuzzShape struct {
	name  string
	build func(seed uint64) gen.Workload
}

// fuzzRMAT builds a small RMAT workload whose size parameters derive from
// the seed, with the stream shaped by sc.
func fuzzRMAT(seed uint64, sc gen.StreamConfig) gen.Workload {
	r := rng.New(seed)
	numV := 40 + r.Intn(56)
	numE := numV * (3 + r.Intn(5))
	cfg := gen.Config{Kind: gen.RMAT, NumV: numV, NumE: numE, Seed: seed,
		A: 0.57, B: 0.19, C: 0.19, MaxWeight: 1 + r.Intn(8)}
	edges := gen.Generate(cfg)
	sc.BatchSize = 24 + r.Intn(48)
	sc.Seed = seed ^ 0xf00dface
	return gen.BuildWorkload(numV, edges, sc)
}

func fuzzShapes() []fuzzShape {
	return []fuzzShape{
		// Deletion-heavy: 80% of each batch tears edges out of a warm
		// graph, stressing trimming and key-edge invalidation far beyond
		// the paper's 10% default.
		{"delete-heavy", func(seed uint64) gen.Workload {
			return fuzzRMAT(seed, gen.StreamConfig{
				InitialFraction: 0.75,
				DeleteRatio:     0.8,
				NumBatches:      3,
			})
		}},
		// Deletion-only: the adversarial phase — every batch is pure
		// teardown of a warm graph, so values only move in the "wrong"
		// direction (selective floors rise, triangle counts and coreness
		// fall) and nothing masks a missed invalidation.
		{"delete-only", func(seed uint64) gen.Workload {
			return fuzzRMAT(seed, gen.StreamConfig{
				InitialFraction: 0.9,
				DeleteRatio:     1.0,
				NumBatches:      3,
			})
		}},
		// Add/delete-interleaved: a balanced mix, with each batch's
		// updates deterministically shuffled so additions and deletions
		// alternate arbitrarily. Safe to reorder: BuildWorkload never
		// adds and deletes the same vertex pair within one batch, and the
		// same shuffled batch feeds both the engine and the oracle.
		// Hub-skewed: Barabási–Albert growth concentrates in-degree on a
		// few hubs, the topology that stresses the hub adjacency index and
		// (when enabled) hub replication. Replication-on coverage of the
		// same workloads lives in replicate_test.go and the oracle fuzzer.
		{"hub-skew", func(seed uint64) gen.Workload {
			return fuzzBA(seed, gen.StreamConfig{
				InitialFraction: 0.6,
				DeleteRatio:     0.4,
				NumBatches:      3,
			})
		}},
		{"interleaved", func(seed uint64) gen.Workload {
			w := fuzzRMAT(seed, gen.StreamConfig{
				InitialFraction: 0.5,
				DeleteRatio:     0.5,
				NumBatches:      3,
			})
			r := rng.New(seed ^ 0x1ab0e1)
			for _, b := range w.Batches {
				b := b
				r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
			}
			return w
		}},
	}
}

// accumulativeEquivalent mirrors selectiveEquivalent for the accumulative
// engine: PageRank must track the from-scratch solution within tolerance
// after every batch.
func accumulativeEquivalent(w gen.Workload, cfg Config) bool {
	alg := algo.NewPageRank(w.NumV)
	g := graph.FromEdges(w.NumV, w.Initial)
	e := NewAccumulative(g, alg, cfg)
	ref := g.Clone()
	for _, b := range w.Batches {
		e.ProcessBatch(b)
		ref.ApplyBatch(b)
		want := algo.SolveAccumulative(ref, alg)
		got := e.Values()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5 {
				return false
			}
		}
	}
	return true
}

func TestFuzzStreamEquivalence(t *testing.T) {
	seeds := []uint64{0x5eed0001, 0xDEC0DE42, 0xA11CE}
	workerCounts := []int{1, 4, 8}
	scheds := []SchedulerKind{SchedWorkStealing, SchedGlobal}

	for _, shape := range fuzzShapes() {
		for _, seed := range seeds {
			shape, seed := shape, seed
			t.Run(fmt.Sprintf("%s/seed=%#x", shape.name, seed), func(t *testing.T) {
				t.Parallel()
				w := shape.build(seed)
				src := graph.VertexID(seed % uint64(w.NumV))
				selective := []struct {
					name string
					alg  algo.Selective
				}{
					{"sssp", algo.SSSP{Src: src}},
					{"sswp", algo.SSWP{Src: src}},
					{"bfs", algo.BFS{Src: src}},
					{"cc", algo.CC{}},
				}
				for _, sched := range scheds {
					for _, workers := range workerCounts {
						cfg := Config{Workers: workers, FlowCap: 32, Scheduler: sched}
						for _, sa := range selective {
							if !selectiveEquivalent(sa.alg, w, cfg) {
								t.Errorf("%s diverged from oracle: shape=%s seed=%#x sched=%s workers=%d",
									sa.name, shape.name, seed, sched, workers)
							}
						}
						if !accumulativeEquivalent(w, cfg) {
							t.Errorf("pagerank diverged from oracle: shape=%s seed=%#x sched=%s workers=%d",
								shape.name, seed, sched, workers)
						}
					}
				}
			})
		}
	}
}
