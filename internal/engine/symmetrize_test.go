package engine

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

// find returns the update for directed pair (s,d), failing if absent.
func find(t *testing.T, b graph.Batch, s, d graph.VertexID) graph.Update {
	t.Helper()
	for _, u := range b {
		if u.Src == s && u.Dst == d {
			return u
		}
	}
	t.Fatalf("no update for %d->%d in %+v", s, d, b)
	return graph.Update{}
}

// TestSymmetrizeLastUpdateWins is the regression test for the dedup bug:
// Symmetrize used to keep the *first* update per undirected pair, so an
// add followed by a del of the same edge silently dropped the delete and
// re-weight adds kept the stale first weight.
func TestSymmetrizeLastUpdateWins(t *testing.T) {
	// add(1,2) then del(1,2): the delete must win, in both directions.
	s := Symmetrize(graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 7}},
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 7}, Del: true},
	})
	if len(s) != 2 {
		t.Fatalf("add+del emitted %d updates: %+v", len(s), s)
	}
	if u := find(t, s, 1, 2); !u.Del {
		t.Fatalf("add+del kept the add: %+v", s)
	}
	if u := find(t, s, 2, 1); !u.Del {
		t.Fatalf("add+del kept the add in the mirrored direction: %+v", s)
	}

	// del(2,1) then add(1,2): the add must win (canonicalization must not
	// hide that these address the same undirected edge).
	s = Symmetrize(graph.Batch{
		{Edge: graph.Edge{Src: 2, Dst: 1, W: 3}, Del: true},
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 3}},
	})
	if len(s) != 2 {
		t.Fatalf("del+add emitted %d updates: %+v", len(s), s)
	}
	if u := find(t, s, 1, 2); u.Del || u.W != 3 {
		t.Fatalf("del+add kept the del: %+v", s)
	}

	// add(1,2,w=5) then add(2,1,w=9): the re-weight must win.
	s = Symmetrize(graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 5}},
		{Edge: graph.Edge{Src: 2, Dst: 1, W: 9}},
	})
	if len(s) != 2 {
		t.Fatalf("re-weight emitted %d updates: %+v", len(s), s)
	}
	if u := find(t, s, 1, 2); u.W != 9 {
		t.Fatalf("re-weight kept stale weight %v: %+v", u.W, s)
	}
	if u := find(t, s, 2, 1); u.W != 9 {
		t.Fatalf("mirrored re-weight kept stale weight %v: %+v", u.W, s)
	}

	// All three conflict shapes in one batch, mixed with an independent
	// pair: per-pair resolution must not interfere across pairs.
	s = Symmetrize(graph.Batch{
		{Edge: graph.Edge{Src: 0, Dst: 1, W: 1}},            // add, then deleted below
		{Edge: graph.Edge{Src: 3, Dst: 2, W: 4}, Del: true}, // del, then re-added below
		{Edge: graph.Edge{Src: 4, Dst: 5, W: 2}},            // untouched pair
		{Edge: graph.Edge{Src: 1, Dst: 0, W: 1}, Del: true}, // kills (0,1)
		{Edge: graph.Edge{Src: 2, Dst: 3, W: 8}},            // revives (2,3) at w=8
	})
	if len(s) != 6 {
		t.Fatalf("mixed batch emitted %d updates: %+v", len(s), s)
	}
	if u := find(t, s, 0, 1); !u.Del {
		t.Fatalf("(0,1) add survived its delete: %+v", s)
	}
	if u := find(t, s, 2, 3); u.Del || u.W != 8 {
		t.Fatalf("(2,3) delete survived its re-add: %+v", s)
	}
	if u := find(t, s, 4, 5); u.Del || u.W != 2 {
		t.Fatalf("(4,5) mangled: %+v", s)
	}
}

// TestSymmetricEngineAppliesIntraBatchDelete runs the bug end to end: a
// CC engine (symmetric) fed a batch whose bridge edge is added and then
// deleted must agree with a from-scratch solve on the resulting graph —
// on HEAD before the fix the delete was dropped and the components stayed
// merged.
func TestSymmetricEngineAppliesIntraBatchDelete(t *testing.T) {
	// Two 2-cliques, no bridge.
	initial := []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 0, W: 1},
		{Src: 2, Dst: 3, W: 1}, {Src: 3, Dst: 2, W: 1},
	}
	g := graph.FromEdges(4, initial)
	e := NewSelective(g, algo.CC{}, Config{Workers: 2})

	// One batch: bridge 1-2 appears and disappears.
	batch := graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}},
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true},
	}
	e.ProcessBatch(batch)

	ref := graph.FromEdges(4, initial)
	ref.ApplyBatch(Symmetrize(batch))
	want, _ := algo.SolveSelective(ref, algo.CC{})
	got := e.Values()
	for v := range want {
		if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
			t.Fatalf("vertex %d = %v, want %v (intra-batch delete dropped)", v, got[v], want[v])
		}
	}
	// And the engine's graph must not contain the bridge.
	if _, ok := e.G.HasEdge(1, 2); ok {
		t.Fatal("bridge edge 1->2 survived the batch")
	}
	if _, ok := e.G.HasEdge(2, 1); ok {
		t.Fatal("bridge edge 2->1 survived the batch")
	}
	// The components must have diverged again (0/1 vs 2/3).
	if got[0] == got[2] {
		t.Fatalf("components still merged after delete: %v", got)
	}
}
