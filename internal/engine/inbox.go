package engine

import (
	"sync"
	"sync/atomic"
)

// inbox is a per-flow mailbox. Senders scatter across shards (round-robin,
// one atomic add to pick) so concurrent cross-flow pushes to a hot flow do
// not serialize on one mutex; the owning unit drains all shards during
// processing, and each shard drain is a single slice swap under the shard
// lock rather than a per-message copy.
//
// A flow has at most one runner at a time (the unit state machine
// guarantees it), so drain and reset never race with themselves — only
// put is called concurrently.

const (
	// inboxShards must be a power of two (the round-robin pick masks).
	inboxShards = 4
	// inboxTrimCap bounds the backing capacity an inbox retains across
	// drains. Without it, one burst of cross-flow messages permanently
	// pins its high-water-mark array on every flow it touched; buffers
	// beyond the cap are dropped for the allocator to reclaim.
	inboxTrimCap = 1024
)

type inboxShard[T any] struct {
	mu   sync.Mutex
	msgs []T
	// spare is the previously drained buffer, kept for reuse. Only the
	// drainer touches it.
	spare []T
}

type inbox[T any] struct {
	rr     atomic.Uint32
	shards [inboxShards]inboxShard[T]
}

func (b *inbox[T]) put(m T) {
	s := &b.shards[b.rr.Add(1)&(inboxShards-1)]
	s.mu.Lock()
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
}

// drain moves every pending message into buf (reusing its capacity) and
// returns it. Message order across shards is arbitrary; all inbox payloads
// are commutative (monotonic candidate merges, dirty-vertex batches).
func (b *inbox[T]) drain(buf []T) []T {
	var zero T
	buf = buf[:0]
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		taken := s.msgs
		s.msgs = s.spare[:0] // the swap: senders now fill the spare buffer
		s.mu.Unlock()
		buf = append(buf, taken...)
		if cap(taken) > inboxTrimCap {
			taken = nil // capacity decay after a burst
		}
		for j := range taken {
			taken[j] = zero // release payload references (e.g. batch slices)
		}
		s.spare = taken[:0]
	}
	return buf
}

// empty reports whether any shard holds a message.
func (b *inbox[T]) empty() bool {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n := len(s.msgs)
		s.mu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// reset clears the inbox between batches, applying the same capacity decay
// as drain. The manager calls it while no unit is running.
func (b *inbox[T]) reset() {
	var zero T
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		for _, buf := range [][]T{s.msgs, s.spare} {
			for j := range buf {
				buf[j] = zero
			}
		}
		if cap(s.msgs) > inboxTrimCap {
			s.msgs = nil
		}
		if cap(s.spare) > inboxTrimCap {
			s.spare = nil
		}
		s.msgs = s.msgs[:0]
		s.spare = s.spare[:0]
		s.mu.Unlock()
	}
}

// capSum reports the total retained backing capacity, for the
// capacity-decay regression test.
func (b *inbox[T]) capSum() int {
	total := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		total += cap(s.msgs) + cap(s.spare)
		s.mu.Unlock()
	}
	return total
}
