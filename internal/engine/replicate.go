package engine

import (
	"math"
	"sync/atomic"

	"repro/internal/dflow"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Hub replication (Config.HubReplication) splits the message fan-in of
// high-degree vertices across per-worker replicas, closing the bottleneck
// where one flow — and therefore one scheduler unit — serializes all
// traffic into a power-law hub (the Rhizomes/Diffusions direction:
// replicated vertex objects with in-network reductions).
//
// A replicaSet is the engine's per-batch replication plan. Each vertex
// currently carrying an in-adjacency hub index (graph.Streaming.InHub) gets
// R replicas plus one diffused-combine step, addressed as *virtual flows*
// just past the real flow id space:
//
//	replica r of hub slot k = nf + k*(R+1) + r
//	combine of hub slot k   = nf + k*(R+1) + R
//
// Virtual flows get inbox slots and scheduling units like real flows, but
// no vertices, no trim lists, and no flow-graph nodes: combine nodes are
// schedule-time constructs (dflow.ScheduleWithCombines), so repartitioning
// never migrates them. Senders route hub-bound messages to a replica chosen
// by sender identity; replica units fold their inbox into a partial
// aggregate (min/max for selective, partial sums for accumulative); the
// combine unit merges the partials and forwards at most one residual
// message into the hub's home flow, which remains the only writer of the
// hub's state — single-owner semantics and therefore every declared
// guarantee survive replication.
//
// The hub set is maintained incrementally: a vertex's in-degree only
// changes when it is the destination of an applied update, so update()
// inspects just those vertices against the graph's hysteresis signal.
type replicaSet struct {
	nf   int      // real flows this batch (virtual ids start here)
	r    int      // replicas per hub
	hubs []uint32 // hub vertex by slot
	slot []int32  // vertex -> hub slot, -1 when not replicated (retained)

	// Accumulative partial-sum slabs (unused by the selective engine,
	// which folds in-flight messages instead). parts holds R partial
	// aggregates per hub, comb the combine stage's accumulator; all values
	// are atomic float64 bit patterns, padded to a cache line per slot so
	// replicas pinned to different workers never false-share. The dirty
	// flags implement the add-then-set / clear-then-drain handoff that
	// makes the slabs loss-free without locks.
	dim       int
	dimPad    int
	parts     []uint64 // len(hubs) * r * dimPad
	comb      []uint64 // len(hubs) * dimPad
	repDirty  *flags   // len(hubs) * r
	combDirty *flags   // len(hubs)
}

// slabPad rounds a state dimension up to a full cache line of float64s.
const slabPad = 8

// newReplicaSet scans g's current hubs and builds the plan. dim is the
// engine's state dimension (0 for the selective engine: no slabs).
func newReplicaSet(g *graph.Streaming, nf, replicas, dim int) *replicaSet {
	rs := &replicaSet{
		nf:   nf,
		r:    replicas,
		slot: make([]int32, g.NumVertices()),
		dim:  dim,
	}
	if rs.r < 1 {
		rs.r = 1
	}
	if dim > 0 {
		rs.dimPad = (dim + slabPad - 1) / slabPad * slabPad
	}
	for i := range rs.slot {
		rs.slot[i] = -1
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.InHub(graph.VertexID(v)) {
			rs.addHub(uint32(v))
		}
	}
	rs.ensure()
	return rs
}

// update re-bases the plan on this batch's flow count and promotes/demotes
// hubs whose in-degree crossed the graph's hysteresis band. Call it after
// the batch has been applied to the graph and before scheduling.
func (rs *replicaSet) update(g *graph.Streaming, applied graph.Batch, nf int) {
	rs.nf = nf
	for _, u := range applied {
		v := uint32(u.Dst)
		switch hub := g.InHub(u.Dst); {
		case hub && rs.slot[v] < 0:
			rs.addHub(v)
		case !hub && rs.slot[v] >= 0:
			rs.removeHub(v)
		}
	}
	rs.ensure()
}

func (rs *replicaSet) addHub(v uint32) {
	rs.slot[v] = int32(len(rs.hubs))
	rs.hubs = append(rs.hubs, v)
}

// removeHub swap-deletes v's slot. Safe between batches only: the slabs
// are quiescent (all-zero) then, so slot reassignment moves no state.
func (rs *replicaSet) removeHub(v uint32) {
	k := rs.slot[v]
	last := len(rs.hubs) - 1
	moved := rs.hubs[last]
	rs.hubs[k] = moved
	rs.hubs = rs.hubs[:last]
	rs.slot[moved] = k
	rs.slot[v] = -1
}

// ensure sizes the slabs and dirty flags for the current hub count. Reused
// capacity is already zero: every batch drains the slabs to quiescence.
func (rs *replicaSet) ensure() {
	h := len(rs.hubs)
	if rs.repDirty == nil || len(rs.repDirty.w) < h*rs.r {
		rs.repDirty = newFlags(h * rs.r)
		rs.combDirty = newFlags(h)
	}
	if rs.dim == 0 {
		return
	}
	if need := h * rs.r * rs.dimPad; cap(rs.parts) < need {
		rs.parts = make([]uint64, need)
		rs.comb = make([]uint64, h*rs.dimPad)
	}
}

// numFlows is the inbox/unit table size covering real and virtual flows.
func (rs *replicaSet) numFlows() int { return rs.nf + len(rs.hubs)*(rs.r+1) }

func (rs *replicaSet) replicaFlow(k, rep int) int32 { return int32(rs.nf + k*(rs.r+1) + rep) }
func (rs *replicaSet) combineFlow(k int) int32      { return int32(rs.nf + k*(rs.r+1) + rs.r) }

// slotOf returns v's hub slot, or -1 — the per-edge hot-path test.
func (rs *replicaSet) slotOf(v uint32) int32 { return rs.slot[v] }

// virtual decodes a flow id: ok reports whether f is virtual, and then k is
// the hub slot and either combine is set or rep is the replica index.
func (rs *replicaSet) virtual(f int32) (k, rep int, combine bool, ok bool) {
	if int(f) < rs.nf {
		return 0, 0, false, false
	}
	q := int(f) - rs.nf
	k = q / (rs.r + 1)
	rep = q % (rs.r + 1)
	if rep == rs.r {
		return k, 0, true, true
	}
	return k, rep, false, true
}

// routeOf picks the replica a sender's messages ride on: a hash of the
// sender spreads a hub's fan-in across all replicas while keeping any one
// sender's messages ordered within a single inbox.
func (rs *replicaSet) routeOf(sender uint32) int {
	return int(rng.Mix64(uint64(sender)) % uint64(rs.r))
}

// pinFor maps a virtual flow to its scheduler pin (see unit.pin): replicas
// of one hub land on consecutive shards starting from a hub-specific base,
// so with workers >= replicas no two replicas share a worker's deque; the
// combine takes the next shard after the replicas.
func (rs *replicaSet) pinFor(f int32, workers int) int32 {
	k, rep, combine, ok := rs.virtual(f)
	if !ok {
		return 0
	}
	idx := rep
	if combine {
		idx = rs.r
	}
	base := rng.Mix64(uint64(rs.hubs[k]))
	return 1 + int32((base+uint64(idx))%uint64(workers))
}

// combineSpecs materializes the dflow scheduling specs for every current
// hub; ScheduleWithCombines drops those whose home flow is not impacted.
func (rs *replicaSet) combineSpecs(flowOf func(graph.VertexID) int32, buf []dflow.CombineSpec) []dflow.CombineSpec {
	buf = buf[:0]
	for k, h := range rs.hubs {
		reps := make([]int32, rs.r)
		for rep := range reps {
			reps[rep] = rs.replicaFlow(k, rep)
		}
		buf = append(buf, dflow.CombineSpec{
			HomeFlow: flowOf(graph.VertexID(h)),
			Replicas: reps,
			Combine:  rs.combineFlow(k),
		})
	}
	return buf
}

// addBits atomically adds x to the float64 stored at p as bits.
func addBits(p *uint64, x float64) {
	for {
		old := atomic.LoadUint64(p)
		nw := math.Float64bits(math.Float64frombits(old) + x)
		if atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}

// swapBits atomically takes the float64 at p, leaving zero.
func swapBits(p *uint64) float64 {
	return math.Float64frombits(atomic.SwapUint64(p, 0))
}

// addPartial folds one delta into replica rep's partial aggregate.
func (rs *replicaSet) addPartial(k, rep, d int, delta float64) {
	addBits(&rs.parts[(k*rs.r+rep)*rs.dimPad+d], delta)
}

// replicaDirtySwapSet marks replica (k,rep) as holding undrained partials;
// reports whether it was already marked (no new notification needed).
// Senders call it *after* addPartial — the add-then-set side of the
// handoff.
func (rs *replicaSet) replicaDirtySwapSet(k, rep int) bool {
	return rs.repDirty.swapSet(uint32(k*rs.r + rep))
}

// drainReplicaInto moves replica (k,rep)'s partials into the combine
// accumulator and reports whether anything moved. It clears the dirty mark
// *before* swapping the slots (clear-then-drain), so a concurrent
// addPartial either lands in this swap or triggers a fresh notification —
// never both lost.
func (rs *replicaSet) drainReplicaInto(k, rep int) bool {
	rs.repDirty.clear(uint32(k*rs.r + rep))
	base := (k*rs.r + rep) * rs.dimPad
	cbase := k * rs.dimPad
	any := false
	for d := 0; d < rs.dim; d++ {
		if x := swapBits(&rs.parts[base+d]); x != 0 {
			addBits(&rs.comb[cbase+d], x)
			any = true
		}
	}
	return any
}

// combineDirtySwapSet is replicaDirtySwapSet for the combine stage.
func (rs *replicaSet) combineDirtySwapSet(k int) bool {
	return rs.combDirty.swapSet(uint32(k))
}

// drainCombine hands the combine accumulator's residual to apply (one call
// per nonzero dimension) under the same clear-then-drain discipline, and
// reports whether anything was applied.
func (rs *replicaSet) drainCombine(k int, apply func(d int, x float64)) bool {
	rs.combDirty.clear(uint32(k))
	base := k * rs.dimPad
	any := false
	for d := 0; d < rs.dim; d++ {
		if x := swapBits(&rs.comb[base+d]); x != 0 {
			apply(d, x)
			any = true
		}
	}
	return any
}

// pullHub drains every replica partial and the combine accumulator of hub
// slot k straight through to apply — the pull-inside path: when the hub's
// home flow is about to recompute the hub anyway, it folds all mass
// deposited so far instead of waiting for the replica/combine pipeline's
// notifications, so the hub never broadcasts from a stale aggregate. Safe
// concurrently with the pipeline's own drains: every slot moves by atomic
// swap, so each delta lands exactly once whichever side wins.
func (rs *replicaSet) pullHub(k int, apply func(d int, x float64)) bool {
	for rep := 0; rep < rs.r; rep++ {
		rs.drainReplicaInto(k, rep)
	}
	return rs.drainCombine(k, apply)
}

// newReplicaSetFor builds the engine-side plan when the config asks for
// replication; nil otherwise (including under DenseOff, where the hub
// signal is disabled along with the index).
func newReplicaSetFor(cfg Config, g *graph.Streaming, nf, dim int) *replicaSet {
	if !cfg.HubReplication || cfg.DenseOff {
		return nil
	}
	return newReplicaSet(g, nf, cfg.hubReplicas(), dim)
}
