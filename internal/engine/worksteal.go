package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// wsPool is the work-stealing scheduler: one shard (a set of level-banded
// FIFO deques) per worker, units assigned to a home shard by hashing their
// id. A worker pops the lowest-banded unit of its own shard; when the shard
// is dry it steals from the most loaded victim, again preferring earlier
// bands, so the space-time order survives as a heuristic without any global
// ordering structure. Handoff is the same atomic unit state machine the
// global pool uses, and quiescence is a single atomic counter of non-idle
// units — no mutex or condvar is shared across workers on the dispatch
// path, which is what lets throughput scale with the worker count.

// wsBands is the number of level bands per shard; schedule levels at or
// beyond the last band share it. Eight bands cover the schedule depths seen
// in practice (BatchStats.Levels rarely exceeds a handful).
const wsBands = 8

func bandOf(level int) int {
	if level < 0 {
		return 0
	}
	if level >= wsBands {
		return wsBands - 1
	}
	return level
}

// wsDeque is a FIFO of units: append at the tail, pop at the head. The head
// index creeps forward and the buffer compacts once the dead prefix
// dominates, keeping pops O(1) without unbounded growth.
type wsDeque struct {
	head  int
	items []*unit
}

func (d *wsDeque) push(u *unit) { d.items = append(d.items, u) }

func (d *wsDeque) pop() *unit {
	if d.head >= len(d.items) {
		return nil
	}
	u := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.items = d.items[:0]
		d.head = 0
	} else if d.head > 64 && d.head*2 > len(d.items) {
		n := copy(d.items, d.items[d.head:])
		for i := n; i < len(d.items); i++ {
			d.items[i] = nil
		}
		d.items = d.items[:n]
		d.head = 0
	}
	return u
}

// wsShard is one worker's run queue. size is maintained under mu but read
// without it by thieves choosing a victim; a stale read only misdirects a
// steal attempt, never loses work (termination rests on wsPool.outstanding,
// not on size).
type wsShard struct {
	mu    sync.Mutex
	bands [wsBands]wsDeque
	size  atomic.Int64
}

// popLowest removes the unit from the earliest non-empty band.
func (s *wsShard) popLowest() *unit {
	if s.size.Load() == 0 {
		return nil
	}
	s.mu.Lock()
	for b := range s.bands {
		if u := s.bands[b].pop(); u != nil {
			s.size.Add(-1)
			s.mu.Unlock()
			return u
		}
	}
	s.mu.Unlock()
	return nil
}

type wsPool struct {
	shards []wsShard
	// outstanding counts units not idle (queued + running + pending): the
	// quiescence condition is outstanding == 0, replacing the global pool's
	// condvar broadcast.
	outstanding atomic.Int64
	// stopped makes workers drain out after their current unit (interrupt).
	stopped atomic.Bool

	dispatches atomic.Int64
	steals     atomic.Int64
	parks      atomic.Int64
	waitHist   *metrics.Histogram
}

// newWSPool sizes the pool for the given worker count (one shard each).
// waitHist, when non-nil, receives activation-to-dispatch latencies.
func newWSPool(workers int, waitHist *metrics.Histogram) *wsPool {
	if workers < 1 {
		workers = 1
	}
	return &wsPool{shards: make([]wsShard, workers), waitHist: waitHist}
}

// homeShard hashes a unit to its owning shard, spreading flows evenly so
// external activations (the manager seeding a batch, cross-flow messages)
// distribute load without knowing which goroutine sent them. Pinned units
// (hub replicas and their combines) bypass the hash so replicas of one hub
// land on distinct workers' deques.
func (p *wsPool) homeShard(u *unit) *wsShard {
	if u.pin != 0 {
		return &p.shards[uint64(u.pin-1)%uint64(len(p.shards))]
	}
	return &p.shards[rng.Mix64(uint64(uint32(u.id)))%uint64(len(p.shards))]
}

func (p *wsPool) push(u *unit) {
	s := p.homeShard(u)
	s.mu.Lock()
	if p.waitHist != nil {
		u.enqueuedNs = time.Now().UnixNano()
	}
	s.bands[bandOf(u.level)].push(u)
	s.size.Add(1)
	s.mu.Unlock()
}

// activate queues u if idle, or flags it pending if running: the same
// lock-free handoff protocol as the global pool. Safe from any goroutine.
func (p *wsPool) activate(u *unit) {
	for {
		switch s := u.state.Load(); s {
		case unitIdle:
			if u.state.CompareAndSwap(unitIdle, unitQueued) {
				p.outstanding.Add(1)
				p.push(u)
				return
			}
		case unitQueued, unitPending:
			return
		case unitRunning:
			if u.state.CompareAndSwap(unitRunning, unitPending) {
				return
			}
		default:
			return
		}
	}
}

// next finds the next unit for worker w: own shard first (lowest band),
// then a steal from the most loaded victim, then a full sweep in case the
// size hints were stale. Returns nil when no queued unit was found.
func (p *wsPool) next(w int) *unit {
	home := w % len(p.shards)
	if u := p.shards[home].popLowest(); u != nil {
		p.dispatched(u, false)
		return u
	}
	best, bestLoad := -1, int64(0)
	for i := range p.shards {
		if i == home {
			continue
		}
		if l := p.shards[i].size.Load(); l > bestLoad {
			best, bestLoad = i, l
		}
	}
	if best >= 0 {
		if u := p.shards[best].popLowest(); u != nil {
			p.dispatched(u, true)
			return u
		}
	}
	for i := range p.shards {
		if i == home || i == best {
			continue
		}
		if u := p.shards[i].popLowest(); u != nil {
			p.dispatched(u, true)
			return u
		}
	}
	return nil
}

func (p *wsPool) dispatched(u *unit, stolen bool) {
	p.dispatches.Add(1)
	if stolen {
		p.steals.Add(1)
	}
	if p.waitHist != nil {
		p.waitHist.Observe(time.Now().UnixNano() - u.enqueuedNs)
	}
}

// backoff yields the processor while the pool is busy elsewhere: a few
// Gosched rounds, then short sleeps capped at 100µs so a worker blocked on
// a long-running sibling unit does not burn its core.
func (p *wsPool) backoff(spins *int) {
	*spins++
	if *spins <= 8 {
		runtime.Gosched()
		return
	}
	p.parks.Add(1)
	d := time.Duration(1) << uint(min(*spins-8, 6)) * time.Microsecond
	time.Sleep(min(d, 100*time.Microsecond))
}

// run processes units with the given number of workers until quiescent.
// fn must process one unit completely (drain its inboxes and worklists).
func (p *wsPool) run(workers int, fn func(w int, u *unit)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spins := 0
			for {
				if p.stopped.Load() {
					return // interrupted
				}
				u := p.next(w)
				if u == nil {
					if p.outstanding.Load() == 0 {
						return // globally quiescent
					}
					p.backoff(&spins)
					continue
				}
				spins = 0
				u.state.Store(unitRunning)
				fn(w, u)
				// Close out; re-queue if messages arrived while running.
				if u.state.CompareAndSwap(unitRunning, unitIdle) {
					p.outstanding.Add(-1)
					continue
				}
				u.state.Store(unitQueued)
				p.push(u)
			}
		}(w)
	}
	wg.Wait()
}

// interrupt abandons queued and pending units; each worker exits before
// dispatching its next unit.
func (p *wsPool) interrupt() { p.stopped.Store(true) }

func (p *wsPool) stats() schedStats {
	return schedStats{
		Dispatches: p.dispatches.Load(),
		Steals:     p.steals.Load(),
		Parks:      p.parks.Load(),
	}
}
