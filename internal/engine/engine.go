// Package engine implements GraphFly itself (the paper's core
// contribution): the Manager/Worker runtime of Fig 9-10 that processes a
// batch of edge updates by (1) maintaining the D-trees and dependency-flow
// partition, (2) identifying trim sets at tree-node cost before refinement,
// (3) scheduling impacted flows in space-time order with cyclic groups
// merged, and (4) letting each flow fuse its refinement with its
// recomputation and exchange cross-flow influence through messages — no
// global barrier between the two phases.
//
// Two engines share the runtime: Selective (SSSP/SSWP/BFS/CC, key-edge
// D-trees, trimming) and Accumulative (PageRank/LP, structural D-trees,
// delta-push aggregation).
package engine

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cachesim"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Config controls a GraphFly engine instance. The zero value is usable:
// all workers, default flow cap, no profiling, fully asynchronous.
type Config struct {
	// Workers is the number of worker goroutines (GOMAXPROCS if <= 0).
	Workers int
	// Scheduler selects the unit scheduler: the work-stealing, level-banded
	// scheduler by default (SchedWorkStealing is the zero value), or the
	// reference global-lock pool (SchedGlobal) for conformance testing and
	// the scaling ablation.
	Scheduler SchedulerKind
	// FlowCap caps dependency-flow size (dflow.DefaultCap if <= 0).
	FlowCap int
	// Probe receives instrumented memory accesses (cachesim.Nop if nil).
	Probe cachesim.Probe
	// ScatteredStorage disables the specialized flow-blocked layout
	// (the "GraphFly-w/o-SSF" ablation of Fig 13).
	ScatteredStorage bool
	// TwoPhase inserts a global barrier between refinement and
	// recomputation (the execution-model ablation: what GraphFly removes).
	TwoPhase bool
	// NoSCCMerge schedules every impacted flow independently instead of
	// merging cyclic groups; correctness is preserved by the trimmed-bit
	// protocol, locality may suffer (ablation).
	NoSCCMerge bool
	// RepartitionEvery rebuilds flows from the current D-trees every K
	// batches (default 8). 1 = repartition each batch.
	RepartitionEvery int
	// BackwardFlows swaps the roles of the two triangles (§V-A Discussion):
	// the backward-triangle D-trees partition the graph into flows and the
	// forward triangle constrains execution order. Useful when most edges
	// live in the upper triangle. Accumulative engine only.
	BackwardFlows bool
	// TraceWork records per-flow work and cross-flow message volume for
	// the distributed simulation (small overhead).
	TraceWork bool
	// Metrics, when non-nil, receives per-batch counters and per-phase
	// duration histograms (internal/metrics). Nil costs one pointer
	// comparison per batch — the same no-op discipline as Probe.
	Metrics *metrics.Registry
	// DenseOff is the memory-discipline ablation (-denseoff, Fig S2
	// "before"): disable the graph's hub adjacency index and allocate the
	// per-batch scratch state (impacted-flow set, symmetrize dedup map,
	// flow graph at repartition) fresh each batch instead of reusing the
	// retained epoch-stamped/arena structures.
	DenseOff bool
	// FaultSkipTrim deliberately skips the selective engine's key-edge
	// subtree trim on deletions — a seeded consistency bug used by
	// internal/oracle's mutation tests to prove the harness detects
	// stale-value violations. Never set outside tests.
	FaultSkipTrim bool
	// HubReplication splits the state of hub vertices (those carrying an
	// in-adjacency index, see graph.Streaming.InHub) into per-worker
	// replicas holding partial aggregates, merged by a diffused-combine
	// step scheduled one level band above the replicas. Closes the
	// single-flow serialization bottleneck on power-law graphs (Rhizomes /
	// Diffusions direction); ablation flag, off by default. Ignored under
	// DenseOff (no hub index means no hub signal).
	HubReplication bool
	// HubReplicas is the number of replicas per hub (default: the worker
	// count, so each worker owns at most one replica of a given hub).
	HubReplicas int
	// HubThreshold overrides the graph's hub-index build threshold
	// (graph.Options.HubThreshold); 0 keeps the graph's current setting.
	// The drop floor follows at a quarter of the build threshold.
	HubThreshold int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) probe() cachesim.Probe {
	if c.Probe == nil {
		return cachesim.Nop{}
	}
	return c.Probe
}

func (c Config) repartitionEvery() int {
	if c.RepartitionEvery <= 0 {
		return 8
	}
	return c.RepartitionEvery
}

func (c Config) hubReplicas() int {
	if c.HubReplicas > 0 {
		return c.HubReplicas
	}
	return c.workers()
}

// BatchStats reports what one ProcessBatch did.
type BatchStats struct {
	Applied     int // updates that took effect
	TrimRoots   int // deletions that killed a key edge
	Trimmed     int // vertices invalidated by trimming
	Impacted    int // flows seeded with work
	Units       int // scheduling units (cyclic groups merged)
	Levels      int // depth of the space-time schedule
	CrossMsgs   int64
	Relaxations int64 // edge relaxations / delta pushes
	Pulls       int64 // refinement pulls
	Dispatches  int64 // scheduling units handed to workers
	Steals      int64 // dispatches served from another worker's deque
	SchedParks  int64 // scheduler idle waits during compute

	// Hub replication (Config.HubReplication): hubs replicated this batch,
	// messages routed to replicas instead of the home flow, and diffused
	// combines that merged replica aggregates back.
	ReplicatedHubs int
	ReplicaMsgs    int64
	Combines       int64

	ApplyTime    time.Duration
	MaintainTime time.Duration // D-tree + flow index maintenance (total)
	DtreeTime    time.Duration // D-tree incremental maintenance only
	TrimTime     time.Duration
	ScheduleTime time.Duration
	ComputeTime  time.Duration
	Total        time.Duration

	// Trace is non-nil when Config.TraceWork is set.
	Trace *WorkTrace
}

// WorkTrace captures where the work happened, for the distributed
// cost-model simulation (Fig 16).
type WorkTrace struct {
	// FlowWork is per-flow work in edge-operations.
	FlowWork map[int32]int64
	// FlowMsgs counts cross-flow messages by (src,dst) flow pair.
	FlowMsgs map[[2]int32]int64
}

func newWorkTrace() *WorkTrace {
	return &WorkTrace{
		FlowWork: make(map[int32]int64),
		FlowMsgs: make(map[[2]int32]int64),
	}
}

// flags is an atomic per-vertex flag array (one word per vertex: simple and
// contention-free at our scales).
type flags struct{ w []uint32 }

func newFlags(n int) *flags { return &flags{w: make([]uint32, n)} }

func (f *flags) get(v uint32) bool { return atomic.LoadUint32(&f.w[v]) != 0 }
func (f *flags) set(v uint32)      { atomic.StoreUint32(&f.w[v], 1) }
func (f *flags) clear(v uint32)    { atomic.StoreUint32(&f.w[v], 0) }
func (f *flags) swapSet(v uint32) bool {
	return atomic.SwapUint32(&f.w[v], 1) != 0 // reports previously set
}

// Symmetrize expands a batch for undirected algorithms: each update is
// canonicalized to its (min,max) pair, deduplicated with the *last* update
// for a pair winning (batch order semantics: an add followed by a del of
// the same undirected edge is a delete, not an add), and emitted in both
// directions so the directed graph faithfully models an undirected one.
func Symmetrize(b graph.Batch) graph.Batch {
	var s Symmetrizer
	return s.Symmetrize(b)
}

// symKey is an undirected vertex pair in canonical (min,max) order.
type symKey struct{ a, b graph.VertexID }

// Symmetrizer is the retained-state form of Symmetrize: the dedup map and
// both batch buffers survive across calls (the map emptied with clear, the
// slices re-sliced), so an engine symmetrizing every batch allocates only
// when a batch outgrows all previous ones.
//
// Aliasing: the returned batch shares the Symmetrizer's buffer and is valid
// until the next Symmetrize call on the same receiver.
type Symmetrizer struct {
	at    map[symKey]int
	canon graph.Batch
	out   graph.Batch
}

// Symmetrize canonicalizes, dedups (last update wins), and mirrors b.
func (s *Symmetrizer) Symmetrize(b graph.Batch) graph.Batch {
	if s.at == nil {
		s.at = make(map[symKey]int, len(b))
	} else {
		clear(s.at)
	}
	s.canon = s.canon[:0]
	for _, u := range b {
		a, c := u.Src, u.Dst
		if a > c {
			a, c = c, a
		}
		cu := graph.Update{Edge: graph.Edge{Src: a, Dst: c, W: u.W}, Del: u.Del}
		if i, ok := s.at[symKey{a, c}]; ok {
			s.canon[i] = cu
			continue
		}
		s.at[symKey{a, c}] = len(s.canon)
		s.canon = append(s.canon, cu)
	}
	s.out = s.out[:0]
	for _, u := range s.canon {
		s.out = append(s.out,
			u,
			graph.Update{Edge: graph.Edge{Src: u.Dst, Dst: u.Src, W: u.W}, Del: u.Del},
		)
	}
	return s.out
}

// scratchFlowSet returns a cleared impacted-flow set sized for nf flows.
// The steady path reuses prev (allocated on first use); under the -denseoff
// ablation it always allocates afresh, restoring the pre-optimization
// per-batch churn this PR removed.
func scratchFlowSet(prev *dense.FlowSet, nf int, denseOff bool) *dense.FlowSet {
	if denseOff || prev == nil {
		return dense.NewSet[int32](nf)
	}
	prev.Reset(nf)
	return prev
}
