package engine

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/etree"
	"repro/internal/graph"
)

// AccState is the accumulative engine's converged residual state: the rank
// (state) vector plus the aggregate and last-broadcast residuals that make
// the delta-push invariant agg(v) = Σ w·lastUnit(u) restorable without a
// from-scratch converge. All three are row-major NumV*Dim, matching
// Values(). Capture it only at a batch boundary (Dirty engines have
// in-flight deltas the residuals do not cover).
type AccState struct {
	Dim                  int
	State, Agg, LastUnit []float64
}

// SnapshotState copies the engine's residual state for durability.
func (e *Accumulative) SnapshotState() *AccState {
	n := e.G.NumVertices()
	st := &AccState{
		Dim:      e.dim,
		State:    make([]float64, n*e.dim),
		Agg:      make([]float64, n*e.dim),
		LastUnit: make([]float64, n*e.dim),
	}
	for v := 0; v < n; v++ {
		e.state.GetVec(uint32(v), st.State[v*e.dim:(v+1)*e.dim])
		e.agg.GetVec(uint32(v), st.Agg[v*e.dim:(v+1)*e.dim])
		e.lastUnit.GetVec(uint32(v), st.LastUnit[v*e.dim:(v+1)*e.dim])
	}
	return st
}

// NewAccumulativeFromState rebuilds an engine over g from a residual
// snapshot taken at a batch boundary over an identical graph, skipping the
// initial convergence: out-weights are rederived from g, the residual
// vectors are installed as-is, and every dirtiness flag starts clear — the
// converged-boundary condition SnapshotState captured.
func NewAccumulativeFromState(g *graph.Streaming, alg algo.Accumulative, cfg Config, st *AccState) (*Accumulative, error) {
	n := g.NumVertices()
	if st.Dim != alg.Dim() {
		return nil, fmt.Errorf("engine: state dim %d, algorithm wants %d", st.Dim, alg.Dim())
	}
	want := n * st.Dim
	if len(st.State) != want || len(st.Agg) != want || len(st.LastUnit) != want {
		return nil, fmt.Errorf("engine: state vectors %d/%d/%d values, want %d",
			len(st.State), len(st.Agg), len(st.LastUnit), want)
	}
	e := &Accumulative{
		G:     g,
		Alg:   alg,
		cfg:   cfg,
		dim:   alg.Dim(),
		probe: cfg.probe(),
	}
	_, e.profiled = e.probe.(*cachesim.Sim)
	if cfg.DenseOff {
		g.DisableHubIndex()
	}
	e.outW = make([]float64, n)
	for v := 0; v < n; v++ {
		for _, h := range g.Out(graph.VertexID(v)) {
			e.outW[v] += h.W
		}
	}
	e.dirty = newFlags(n)
	e.needPush = newFlags(n)
	dir := etree.Forward
	if cfg.BackwardFlows {
		dir = etree.Backward
	}
	e.forest = etree.NewForest(g, dir)
	e.repartition()
	for v := 0; v < n; v++ {
		e.state.SetVec(uint32(v), st.State[v*e.dim:(v+1)*e.dim])
		e.agg.SetVec(uint32(v), st.Agg[v*e.dim:(v+1)*e.dim])
		e.lastUnit.SetVec(uint32(v), st.LastUnit[v*e.dim:(v+1)*e.dim])
	}
	e.seeds = make([][]uint32, e.part.NumFlows())
	return e, nil
}
