package engine

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/dense"
	"repro/internal/dflow"
	"repro/internal/etree"
	"repro/internal/graph"
	"repro/internal/layout"
)

// Accumulative is the GraphFly engine for aggregation-based algorithms
// (PageRank, Label Propagation).
//
// It maintains the invariant agg(v) = Σ_{u→v} w_uv · lastUnit(u), where
// lastUnit(u) is the per-weight contribution vector u last broadcast.
// Refinement adjusts aggregates for the batch's changed edges using the
// *current* lastUnit (so the invariant survives structural change);
// recomputation is asynchronous delta-push Gauss–Seidel, executed per
// dependency-flow with cross-flow dirtiness carried by messages. Because
// the algorithms are contractions, the asynchronous order converges to the
// same fixpoint (within epsilon) as GraphBolt's synchronous BSP.
//
// Flows come from the structural D-trees of the forward triangle with
// hyper vertices (§IV), maintained incrementally as the graph mutates.
type Accumulative struct {
	G   *graph.Streaming
	Alg algo.Accumulative
	cfg Config

	dim      int
	state    *layout.Store
	agg      *layout.Store
	lastUnit *layout.Store
	outW     []float64

	dirty    *flags // state must be recomputed from agg
	needPush *flags // contribution broadcast is stale

	forest *etree.Forest
	part   *dflow.Partition
	fg     *dflow.FlowGraph

	probe    cachesim.Probe
	profiled bool
	outIdx   *layout.EdgeIndex

	batches int

	unitsMu sync.Mutex
	units   []*unit
	unitOf  []int32
	inboxes []inbox[[]uint32]
	seeds   [][]uint32 // per-flow seed vertices for the current batch
	pl      scheduler

	impacted *dense.FlowSet // per-batch impacted flows, reused across batches
	symm     Symmetrizer    // retained symmetrize scratch

	// rs is the hub-replication plan (nil unless Config.HubReplication):
	// delta pushes into a hub accumulate in per-worker partial-sum slabs
	// drained by replica units into a combine unit, which applies the
	// residual to the hub's aggregate exactly once per quiescence wave.
	// See replicate.go.
	rs      *replicaSet
	specBuf []dflow.CombineSpec

	pushes      atomic.Int64
	crossMsgs   atomic.Int64
	replicaMsgs atomic.Int64
	combines    atomic.Int64

	canceled bool // a batch was aborted mid-flight; state is inconsistent

	trace   *WorkTrace
	traceMu sync.Mutex
}

// NewAccumulative builds the engine over g and converges the initial graph.
func NewAccumulative(g *graph.Streaming, alg algo.Accumulative, cfg Config) *Accumulative {
	e := &Accumulative{
		G:     g,
		Alg:   alg,
		cfg:   cfg,
		dim:   alg.Dim(),
		probe: cfg.probe(),
	}
	_, e.profiled = e.probe.(*cachesim.Sim)
	if cfg.DenseOff {
		g.DisableHubIndex()
	} else if cfg.HubThreshold > 0 {
		g.SetHubThresholds(cfg.HubThreshold, 0)
	}
	n := g.NumVertices()
	e.outW = make([]float64, n)
	for v := 0; v < n; v++ {
		for _, h := range g.Out(graph.VertexID(v)) {
			e.outW[v] += h.W
		}
	}
	e.dirty = newFlags(n)
	e.needPush = newFlags(n)
	dir := etree.Forward
	if cfg.BackwardFlows {
		dir = etree.Backward
	}
	e.forest = etree.NewForest(g, dir)
	e.repartition()
	e.rs = newReplicaSetFor(cfg, g, e.part.NumFlows(), e.dim)

	// Initial convergence through the engine itself: state = base,
	// aggregates and broadcasts zero, every vertex must push.
	buf := make([]float64, e.dim)
	for v := 0; v < n; v++ {
		e.Alg.Base(graph.VertexID(v), buf)
		e.state.SetVec(uint32(v), buf)
		e.needPush.set(uint32(v))
	}
	impacted := e.impactedScratch(e.part.NumFlows())
	e.seeds = make([][]uint32, e.part.NumFlows())
	for v := 0; v < n; v++ {
		f := e.part.Flow(graph.VertexID(v))
		e.seeds[f] = append(e.seeds[f], uint32(v))
		impacted.Add(f)
	}
	e.converge(context.Background(), impacted.Members())
	return e
}

// impactedScratch hands out the per-batch impacted-flow set (see
// scratchFlowSet for the -denseoff semantics).
func (e *Accumulative) impactedScratch(nf int) *dense.FlowSet {
	e.impacted = scratchFlowSet(e.impacted, nf, e.cfg.DenseOff)
	return e.impacted
}

func (e *Accumulative) repartition() {
	e.part = dflow.NewPartition(e.forest, e.cfg.FlowCap)
	if e.fg == nil || e.cfg.DenseOff {
		e.fg = dflow.NewFlowGraph(e.G, e.part)
	} else {
		e.fg.Rebuild(e.G, e.part)
	}
	mk := func() *layout.Store {
		if e.cfg.ScatteredStorage {
			return layout.NewScatteredStore(e.G.NumVertices(), e.dim)
		}
		return layout.NewFlowStore(e.part, e.dim)
	}
	migrate := func(old *layout.Store) *layout.Store {
		s := mk()
		if old != nil {
			buf := make([]float64, e.dim)
			for v := 0; v < e.G.NumVertices(); v++ {
				old.GetVec(uint32(v), buf)
				s.SetVec(uint32(v), buf)
			}
		}
		return s
	}
	e.state = migrate(e.state)
	e.agg = migrate(e.agg)
	e.lastUnit = migrate(e.lastUnit)
	e.refreshEdgeIndex()
}

func (e *Accumulative) refreshEdgeIndex() {
	if !e.profiled {
		return
	}
	prev := e.outIdx
	if e.cfg.DenseOff {
		prev = nil
	}
	e.outIdx = layout.NewEdgeIndexInto(prev, e.G, e.part, !e.cfg.ScatteredStorage)
}

// State copies v's state vector into a fresh slice.
func (e *Accumulative) State(v graph.VertexID) []float64 {
	return e.state.GetVec(uint32(v), make([]float64, e.dim))
}

// Values returns all states row-major (vertex v at [v*Dim:(v+1)*Dim]),
// matching algo.SolveAccumulative's shape.
func (e *Accumulative) Values() []float64 {
	n := e.G.NumVertices()
	out := make([]float64, n*e.dim)
	for v := 0; v < n; v++ {
		e.state.GetVec(uint32(v), out[v*e.dim:(v+1)*e.dim])
	}
	return out
}

// Partition exposes the current dependency-flow partition.
func (e *Accumulative) Partition() *dflow.Partition { return e.part }

// Forest exposes the structural D-tree forest.
func (e *Accumulative) Forest() *etree.Forest { return e.forest }

// ProcessBatch applies one batch and incrementally reconverges. It panics
// on a malformed batch; ProcessBatchE is the error-returning form.
func (e *Accumulative) ProcessBatch(batch graph.Batch) BatchStats {
	st, err := e.ProcessBatchE(batch)
	if err != nil {
		panic(err)
	}
	return st
}

// ProcessBatchE is ProcessBatch with graceful degradation: the batch is
// validated up front and a malformed update stream returns a
// *graph.BatchError without mutating any engine state, so a caller fed by
// an untrusted source can drop the bad batch and keep going.
func (e *Accumulative) ProcessBatchE(batch graph.Batch) (BatchStats, error) {
	return e.ProcessBatchCtx(context.Background(), batch)
}

// ProcessBatchCtx is ProcessBatchE with cancellation, mirroring
// (*Selective).ProcessBatchCtx: cancellation drains the scheduler after its
// in-flight units, the call returns ctx's error, and the engine is left
// mid-refinement — later calls fail with ErrCanceled until it is rebuilt.
func (e *Accumulative) ProcessBatchCtx(ctx context.Context, batch graph.Batch) (BatchStats, error) {
	if e.canceled {
		return BatchStats{}, ErrCanceled
	}
	if err := ctx.Err(); err != nil {
		return BatchStats{}, err
	}
	if err := e.G.CheckBatch(batch); err != nil {
		return BatchStats{}, err
	}
	st := e.processBatch(ctx, batch)
	if err := ctx.Err(); err != nil {
		e.canceled = true
		return st, err
	}
	return st, nil
}

func (e *Accumulative) processBatch(ctx context.Context, batch graph.Batch) BatchStats {
	var st BatchStats
	t0 := time.Now()
	e.probe.BeginBatch()
	if e.Alg.Symmetric() {
		if e.cfg.DenseOff {
			batch = Symmetrize(batch)
		} else {
			batch = e.symm.Symmetrize(batch)
		}
	}
	if e.cfg.TraceWork {
		e.trace = newWorkTrace()
		st.Trace = e.trace
	} else {
		e.trace = nil
	}

	tApply := time.Now()
	applied := e.G.ApplyBatchParallel(batch, e.cfg.workers())
	st.Applied = len(applied)
	st.ApplyTime = time.Since(tApply)

	// D-tree and index maintenance (Fig 15b measures this span):
	// incremental O(1)-amortized per update, with a lazy rebuild when
	// enough deletions have accumulated (hyper-vertex separation, §IV-C).
	tMaint := time.Now()
	e.batches++
	for _, u := range applied {
		if u.Del {
			e.forest.DeleteEdge(e.G, u.Src, u.Dst)
		} else {
			e.forest.AddEdge(u.Src, u.Dst)
		}
	}
	st.DtreeTime = time.Since(tMaint)
	rebuilt := e.forest.RebuildIfDirty(e.G, 0.2)
	if rebuilt || e.batches%e.cfg.repartitionEvery() == 0 {
		e.repartition()
	} else {
		for _, u := range applied {
			if u.Del {
				e.fg.DeleteEdge(u.Src, u.Dst)
			} else {
				e.fg.AddEdge(u.Src, u.Dst)
			}
		}
		e.refreshEdgeIndex()
	}
	for _, u := range applied {
		if u.Del {
			e.outW[u.Src] -= u.W
			if e.outW[u.Src] < 0 {
				e.outW[u.Src] = 0
			}
		} else {
			e.outW[u.Src] += u.W
		}
	}
	st.MaintainTime = time.Since(tMaint)

	// Refinement: adjust the aggregates of changed edges with the current
	// broadcasts so the invariant holds on the new topology (the paper's
	// refine phase; GraphFly needs no barrier after it because each flow's
	// recomputation starts from a consistent aggregate).
	tTrim := time.Now()
	e.probe.SetPhase(cachesim.PhaseRefine)
	nf := e.part.NumFlows()
	if e.rs != nil {
		e.rs.update(e.G, applied, nf)
		st.ReplicatedHubs = len(e.rs.hubs)
	}
	if cap(e.seeds) < nf {
		e.seeds = make([][]uint32, nf)
	}
	e.seeds = e.seeds[:nf]
	for i := range e.seeds {
		e.seeds[i] = e.seeds[i][:0]
	}
	impacted := e.impactedScratch(nf)
	seed := func(v uint32) {
		f := e.part.Flow(v)
		e.seeds[f] = append(e.seeds[f], v)
		impacted.Add(f)
	}
	unit := make([]float64, e.dim)
	for _, u := range applied {
		e.lastUnit.GetVec(uint32(u.Src), unit)
		sign := 1.0
		if u.Del {
			sign = -1
		}
		if e.profiled {
			e.probe.Access(e.agg.Addr(uint32(u.Dst)), true, cachesim.ClassVertex)
			e.probe.Access(e.lastUnit.Addr(uint32(u.Src)), false, cachesim.ClassVertex)
		}
		for d := 0; d < e.dim; d++ {
			if unit[d] != 0 {
				e.agg.AddAt(uint32(u.Dst), d, sign*u.W*unit[d])
			}
		}
		if !e.dirty.swapSet(uint32(u.Dst)) {
			seed(uint32(u.Dst))
		}
		// The source's out-weight changed: its broadcast is stale.
		if !e.needPush.swapSet(uint32(u.Src)) {
			seed(uint32(u.Src))
		}
		st.Trimmed++
	}
	st.TrimTime = time.Since(tTrim)

	tComp := time.Now()
	st.Impacted = impacted.Len()
	units, levels := e.converge(ctx, impacted.Members())
	st.Units = units
	st.Levels = levels
	st.ComputeTime = time.Since(tComp)
	st.Relaxations = e.pushes.Load()
	st.CrossMsgs = e.crossMsgs.Load()
	st.ReplicaMsgs = e.replicaMsgs.Load()
	st.Combines = e.combines.Load()
	ss := e.pl.stats()
	st.Dispatches = ss.Dispatches
	st.Steals = ss.Steals
	st.SchedParks = ss.Parks
	st.Total = time.Since(t0)
	e.cfg.observe(&st)
	return st
}

// converge schedules the impacted flows and runs delta-push to quiescence
// (or until ctx cancels). It returns the number of scheduled units and
// levels.
func (e *Accumulative) converge(ctx context.Context, impacted []int32) (int, int) {
	var groups []dflow.Group
	if e.cfg.NoSCCMerge {
		for _, f := range impacted {
			groups = append(groups, dflow.Group{Flows: []int32{f}})
		}
	} else if e.rs != nil {
		e.specBuf = e.rs.combineSpecs(e.part.Flow, e.specBuf)
		groups = dflow.ScheduleWithCombines(e.fg, impacted, e.specBuf)
	} else {
		groups = dflow.Schedule(e.fg, impacted)
	}
	maxLevel := 0
	for _, g := range groups {
		if g.Level > maxLevel {
			maxLevel = g.Level
		}
	}
	nf := e.part.NumFlows()
	// Virtual replica/combine flows get unit and inbox slots past the real
	// flow ids.
	nfAll := nf
	if e.rs != nil {
		nfAll = e.rs.numFlows()
	}
	e.units = e.units[:0]
	if cap(e.unitOf) < nfAll {
		e.unitOf = make([]int32, nfAll)
	}
	e.unitOf = e.unitOf[:nfAll]
	for i := range e.unitOf {
		e.unitOf[i] = -1
	}
	// One unit per flow, carrying its group's schedule level: the SCC
	// condensation decides *order* (space-time co-scheduling) while flows
	// keep executing concurrently — merging a cyclic group into a single
	// serial unit would forfeit the vertex-level parallelism §VI calls for,
	// and the delta-push protocol is correct under any interleaving.
	for _, grp := range groups {
		for _, f := range grp.Flows {
			u := &unit{id: int32(len(e.units)), flows: []int32{f}, level: grp.Level}
			if e.rs != nil {
				u.pin = e.rs.pinFor(f, e.cfg.workers())
			}
			e.units = append(e.units, u)
			e.unitOf[f] = u.id
		}
	}
	if cap(e.inboxes) < nfAll {
		e.inboxes = make([]inbox[[]uint32], nfAll)
	}
	e.inboxes = e.inboxes[:nfAll]
	for i := range e.inboxes {
		e.inboxes[i].reset()
	}
	e.pl = e.cfg.newScheduler()
	e.pushes.Store(0)
	e.crossMsgs.Store(0)
	e.replicaMsgs.Store(0)
	e.combines.Store(0)

	e.unitsMu.Lock()
	for _, u := range e.units {
		// Virtual replica/combine units are reactive: they run only when
		// notified, so hubs with no traffic this batch cost no dispatches.
		if e.rs != nil && int(u.flows[0]) >= e.rs.nf {
			continue
		}
		e.pl.activate(u)
	}
	e.unitsMu.Unlock()

	// Config.TwoPhase has no extra effect here: aggregate refinement
	// already completes under the manager before recomputation starts, so
	// the faithful barrier-per-superstep baseline is internal/graphbolt.
	workerPool := make([]*accWorker, e.cfg.workers())
	var batchBufs = make([][][]uint32, e.cfg.workers())
	stopWatch := watchCancel(ctx, e.pl)
	e.pl.run(e.cfg.workers(), func(w int, u *unit) {
		if workerPool[w] == nil {
			workerPool[w] = e.newWorker()
			workerPool[w].id = w
		}
		batchBufs[w] = workerPool[w].processUnit(u, batchBufs[w])
	})
	stopWatch()
	return len(groups), maxLevel + 1
}

func (e *Accumulative) activateFlow(f int32, level int) {
	var u *unit
	if ui := atomic.LoadInt32(&e.unitOf[f]); ui != -1 {
		e.unitsMu.Lock()
		u = e.units[ui]
		e.unitsMu.Unlock()
	} else {
		e.unitsMu.Lock()
		if ui := e.unitOf[f]; ui != -1 {
			u = e.units[ui]
		} else {
			u = &unit{id: int32(len(e.units)), flows: []int32{f}, level: level}
			if e.rs != nil {
				u.pin = e.rs.pinFor(f, e.cfg.workers())
			}
			e.units = append(e.units, u)
			atomic.StoreInt32(&e.unitOf[f], u.id)
		}
		e.unitsMu.Unlock()
	}
	e.pl.activate(u)
}

type accWorker struct {
	e       *Accumulative
	probe   cachesim.Probe
	wl      []uint32
	next    []uint32
	pushers []uint32
	buf     []uint32
	base    []float64
	newSt   []float64
	oldSt   []float64
	newU    []float64
	oldU    []float64
	aggBuf  []float64

	// pending batches outgoing cross-flow notifications per target flow;
	// flushed once per drain iteration so one inbox lock and one pool
	// activation cover many vertices instead of paying both per edge.
	pending map[int32][]uint32
	level   int
	// id is the worker's index in the pool, used to pick which replica
	// slab this worker's hub-bound deltas accumulate into.
	id int
}

func (e *Accumulative) newWorker() *accWorker {
	return &accWorker{
		e:       e,
		probe:   e.probe.Fork(),
		base:    make([]float64, e.dim),
		newSt:   make([]float64, e.dim),
		oldSt:   make([]float64, e.dim),
		newU:    make([]float64, e.dim),
		oldU:    make([]float64, e.dim),
		aggBuf:  make([]float64, e.dim),
		pending: make(map[int32][]uint32),
	}
}

// flush delivers the batched cross-flow notifications.
func (aw *accWorker) flush() {
	e := aw.e
	for tf, vs := range aw.pending {
		if len(vs) == 0 {
			continue
		}
		e.inboxes[tf].put(vs)
		delete(aw.pending, tf) // hand ownership of the slice to the inbox
		e.activateFlow(tf, aw.level+1)
	}
}

// roundsPerActivation bounds how many local rounds a unit runs before
// yielding. Converging a flow fully against stale boundary aggregates
// wastes pushes (its neighbours' deltas arrive later and force local
// re-convergence); yielding after a few rounds interleaves flows into an
// approximately global round order while keeping all processing flow-local.
const roundsPerActivation = 2

func (aw *accWorker) processUnit(u *unit, batches [][]uint32) [][]uint32 {
	e := aw.e
	if e.rs != nil {
		if k, rep, combine, ok := e.rs.virtual(u.flows[0]); ok {
			return aw.processVirtual(u, k, rep, combine, batches)
		}
	}
	aw.probe.SetPhase(cachesim.PhaseRecompute)
	aw.level = u.level
	inUnit := func(f int32) bool {
		return atomic.LoadInt32(&e.unitOf[f]) == u.id
	}
	// Worklist carried over from a previous activation, then the seed
	// vertices queued by the manager for this batch.
	aw.wl = append(aw.wl, u.carry...)
	u.carry = u.carry[:0]
	for _, f := range u.flows {
		if len(e.seeds[f]) > 0 {
			aw.wl = append(aw.wl, e.seeds[f]...)
			e.seeds[f] = e.seeds[f][:0]
		}
	}
	for {
		progressed := false
		for _, f := range u.flows {
			batches = e.inboxes[f].drain(batches)
			for _, bt := range batches {
				if len(bt) > 0 {
					progressed = true
					aw.wl = append(aw.wl, bt...)
				}
			}
		}
		// Round-structured local convergence with two sub-phases per round
		// (recompute all states, then broadcast all deltas): a vertex folds
		// every delta of the round into its aggregate before pushing once —
		// a BSP superstep's work discipline, private to this flow, with no
		// global barrier.
		rounds := 0
		for len(aw.wl) > 0 {
			progressed = true
			if rounds >= roundsPerActivation {
				// Yield: park the remaining worklist on the unit, hand the
				// pool a re-activation, and let sibling flows catch up.
				u.carry = append(u.carry[:0], aw.wl...)
				aw.wl = aw.wl[:0]
				aw.flush()
				e.pl.activate(u)
				return batches
			}
			rounds++
			round := aw.wl
			aw.wl = aw.next[:0]
			aw.pushers = aw.pushers[:0]
			for _, v := range round {
				if aw.recomputeVertex(v) {
					aw.pushers = append(aw.pushers, v)
				}
			}
			for _, v := range aw.pushers {
				aw.pushVertex(v, u, inUnit)
			}
			aw.next = round[:0]
		}
		// Deliver batched cross-flow notifications before (possibly) going
		// idle, so the pool's quiescence detection stays sound.
		aw.flush()
		if !progressed {
			return batches
		}
	}
}

// recomputeVertex re-derives v's state from its aggregate (first sub-phase
// of a round) and reports whether v's contribution must be re-broadcast.
func (aw *accWorker) recomputeVertex(v uint32) bool {
	e := aw.e
	if e.rs != nil {
		// Pull-inside: a hub about to recompute folds everything its
		// replicas hold, so its broadcast reflects all mass deposited so
		// far — the pipeline's own drains then find empty slabs (benign).
		if k := e.rs.slotOf(v); k >= 0 {
			if e.rs.pullHub(int(k), func(d int, x float64) { e.agg.AddAt(v, d, x) }) {
				e.dirty.set(v)
			}
		}
	}
	if e.dirty.get(v) {
		e.dirty.clear(v)
		if e.profiled {
			aw.probe.Access(e.agg.Addr(v), false, cachesim.ClassVertex)
			aw.probe.Access(e.state.Addr(v), true, cachesim.ClassVertex)
		}
		e.Alg.Base(graph.VertexID(v), aw.base)
		e.agg.GetVec(v, aw.aggBuf)
		e.state.GetVec(v, aw.oldSt)
		e.Alg.Update(aw.base, aw.aggBuf, aw.newSt)
		maxDelta := 0.0
		for d := 0; d < e.dim; d++ {
			if dd := math.Abs(aw.newSt[d] - aw.oldSt[d]); dd > maxDelta {
				maxDelta = dd
			}
		}
		e.state.SetVec(v, aw.newSt)
		if maxDelta > e.Alg.Epsilon() {
			e.needPush.set(v)
		}
	}
	if !e.needPush.get(v) {
		return false
	}
	e.needPush.clear(v)
	return true
}

// pushVertex broadcasts v's contribution delta over its out-edges (second
// sub-phase of a round).
func (aw *accWorker) pushVertex(v uint32, u *unit, inUnit func(int32) bool) {
	e := aw.e
	if e.profiled {
		aw.probe.Access(e.state.Addr(v), false, cachesim.ClassVertex)
		aw.probe.Access(e.lastUnit.Addr(v), true, cachesim.ClassVertex)
	}
	e.state.GetVec(v, aw.newSt)
	e.Alg.Unit(aw.newSt, e.outW[v], aw.newU)
	e.lastUnit.GetVec(v, aw.oldU)
	changed := false
	for d := 0; d < e.dim; d++ {
		if aw.newU[d] != aw.oldU[d] {
			changed = true
			break
		}
	}
	if !changed {
		return
	}
	e.lastUnit.SetVec(v, aw.newU)
	out := e.G.Out(graph.VertexID(v))
	e.pushes.Add(int64(len(out)))
	if e.trace != nil {
		e.traceMu.Lock()
		e.trace.FlowWork[e.part.Flow(v)] += int64(len(out))
		e.traceMu.Unlock()
	}
	for i, h := range out {
		if e.profiled {
			aw.probe.Access(e.outIdx.Addr(v, i), false, cachesim.ClassEdge)
			aw.probe.Access(e.agg.Addr(uint32(h.To)), true, cachesim.ClassVertex)
		}
		w := uint32(h.To)
		if e.rs != nil {
			// Cross-unit hub-bound: fold the delta into this worker's
			// replica slab instead of CAS-contending on the hub's shared
			// aggregate; the replica/combine chain applies the residual
			// later. Intra-unit pushes keep the direct path — they coalesce
			// in this unit's next round anyway, and detouring them through
			// the pipeline would fragment the hub's delta batching.
			if k := e.rs.slotOf(w); k >= 0 && !inUnit(e.part.Flow(h.To)) {
				aw.pushReplica(int(k), w, h.W)
				continue
			}
		}
		for d := 0; d < e.dim; d++ {
			delta := h.W * (aw.newU[d] - aw.oldU[d])
			if delta != 0 {
				e.agg.AddAt(w, d, delta)
			}
		}
		if e.dirty.swapSet(w) {
			continue // already queued somewhere
		}
		tf := e.part.Flow(h.To)
		if inUnit(tf) {
			aw.wl = append(aw.wl, w)
		} else {
			aw.pending[tf] = append(aw.pending[tf], w)
			e.crossMsgs.Add(1)
			if e.trace != nil {
				e.traceMu.Lock()
				e.trace.FlowMsgs[[2]int32{e.part.Flow(v), tf}]++
				e.traceMu.Unlock()
			}
		}
	}
}

// pushReplica accumulates one edge's delta vector into replica slab
// (k, worker mod R) and batches a notification to the replica's virtual
// flow. add-then-set: the dirty mark is taken only after the partials
// land, so the replica drain can never miss a delta.
func (aw *accWorker) pushReplica(k int, w uint32, edgeW float64) {
	e := aw.e
	rs := e.rs
	rep := aw.id % rs.r
	any := false
	for d := 0; d < e.dim; d++ {
		delta := edgeW * (aw.newU[d] - aw.oldU[d])
		if delta != 0 {
			rs.addPartial(k, rep, d, delta)
			any = true
		}
	}
	if !any {
		return
	}
	e.replicaMsgs.Add(1)
	if !rs.replicaDirtySwapSet(k, rep) {
		rf := rs.replicaFlow(k, rep)
		aw.pending[rf] = append(aw.pending[rf], w)
	}
}

// processVirtual runs a replica or combine unit (hub replication). The
// inbox payloads are pure notifications — the data rides in the atomic
// slabs — so each activation is one drain pass: clear the dirty mark,
// swap the slots, forward. Late arrivals re-activate through the unit
// state machine.
func (aw *accWorker) processVirtual(u *unit, k, rep int, combine bool, batches [][]uint32) [][]uint32 {
	e := aw.e
	rs := e.rs
	if !combine {
		batches = e.inboxes[rs.replicaFlow(k, rep)].drain(batches)
		if rs.drainReplicaInto(k, rep) {
			if !rs.combineDirtySwapSet(k) {
				cf := rs.combineFlow(k)
				e.inboxes[cf].put(nil)
				e.activateFlow(cf, u.level+1)
			}
		}
		return batches
	}
	h := rs.hubs[k]
	batches = e.inboxes[rs.combineFlow(k)].drain(batches)
	if rs.drainCombine(k, func(d int, x float64) { e.agg.AddAt(h, d, x) }) {
		e.combines.Add(1)
		if !e.dirty.swapSet(h) {
			tf := e.part.Flow(h)
			e.inboxes[tf].put([]uint32{h})
			e.activateFlow(tf, u.level+1)
		}
	}
	return batches
}
