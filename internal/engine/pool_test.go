package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryActivatedUnit(t *testing.T) {
	p := newPool(nil)
	var processed atomic.Int64
	units := make([]*unit, 100)
	for i := range units {
		units[i] = &unit{id: int32(i), level: i % 5}
		p.activate(units[i])
	}
	p.run(4, func(w int, u *unit) {
		processed.Add(1)
	})
	if processed.Load() != 100 {
		t.Fatalf("processed %d units, want 100", processed.Load())
	}
	for _, u := range units {
		if u.state.Load() != unitIdle {
			t.Fatalf("unit %d not idle after run", u.id)
		}
	}
}

func TestPoolDoubleActivationRunsOnce(t *testing.T) {
	p := newPool(nil)
	u := &unit{id: 0}
	p.activate(u)
	p.activate(u) // queued: second activation is a no-op
	var runs atomic.Int64
	p.run(2, func(w int, x *unit) { runs.Add(1) })
	if runs.Load() != 1 {
		t.Fatalf("queued unit ran %d times", runs.Load())
	}
}

func TestPoolPendingReruns(t *testing.T) {
	// A unit activated while running must run again.
	p := newPool(nil)
	u := &unit{id: 0}
	var runs atomic.Int64
	p.activate(u)
	p.run(2, func(w int, x *unit) {
		if runs.Add(1) == 1 {
			p.activate(x) // arrives while running -> pending -> re-run
		}
	})
	if runs.Load() != 2 {
		t.Fatalf("unit ran %d times, want 2", runs.Load())
	}
}

func TestPoolCascadingActivation(t *testing.T) {
	// Units activate each other in a chain; the pool must stay live until
	// the whole cascade drains.
	p := newPool(nil)
	const n = 50
	units := make([]*unit, n)
	for i := range units {
		units[i] = &unit{id: int32(i), level: i}
	}
	var order []int32
	var mu sync.Mutex
	p.activate(units[0])
	p.run(3, func(w int, u *unit) {
		mu.Lock()
		order = append(order, u.id)
		mu.Unlock()
		if int(u.id)+1 < n {
			p.activate(units[u.id+1])
		}
	})
	if len(order) != n {
		t.Fatalf("cascade processed %d units, want %d", len(order), n)
	}
}

func TestPoolLevelPriority(t *testing.T) {
	// With one worker, queued units must come out in level order.
	p := newPool(nil)
	levels := []int{3, 1, 2, 0, 1}
	for i, l := range levels {
		p.activate(&unit{id: int32(i), level: l})
	}
	var got []int
	p.run(1, func(w int, u *unit) { got = append(got, u.level) })
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("levels out of order: %v", got)
		}
	}
}

func TestPoolEmptyRunReturns(t *testing.T) {
	p := newPool(nil)
	done := make(chan struct{})
	go func() {
		p.run(4, func(int, *unit) { t.Error("nothing should run") })
		close(done)
	}()
	<-done
}

func TestFlags(t *testing.T) {
	f := newFlags(8)
	if f.get(3) {
		t.Fatal("fresh flag set")
	}
	if f.swapSet(3) {
		t.Fatal("swapSet on clear flag returned true")
	}
	if !f.get(3) || !f.swapSet(3) {
		t.Fatal("flag did not stick")
	}
	f.clear(3)
	if f.get(3) {
		t.Fatal("clear failed")
	}
	f.set(7)
	if !f.get(7) {
		t.Fatal("set failed")
	}
}
