package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolPendingRequeueExactlyOnce pins down the pending-requeue
// protocol directly: every activate() that lands while the unit is
// running (CAS unitRunning -> unitPending) must cause exactly ONE
// re-execution, no matter how many messages arrive during that run —
// pending coalesces them — and a message arriving after the unit went
// idle must queue a fresh run.
func TestPoolPendingRequeueExactlyOnce(t *testing.T) {
	p := newPool(nil)
	u := &unit{id: 0}
	var runs atomic.Int64
	inRun := make(chan struct{})
	release := make(chan struct{})
	p.activate(u)
	go func() {
		<-inRun
		// Three activations while the unit is mid-run: the first flips
		// unitRunning -> unitPending, the rest observe unitPending and
		// are no-ops. Together they must buy exactly one re-execution.
		p.activate(u)
		p.activate(u)
		p.activate(u)
		close(release)
	}()
	p.run(2, func(w int, x *unit) {
		if runs.Add(1) == 1 {
			inRun <- struct{}{}
			<-release // all three mid-run activations observed unitRunning/Pending
		}
	})
	if got := runs.Load(); got != 2 {
		t.Fatalf("unit ran %d times, want 2 (coalesced pending re-run)", got)
	}
	if u.state.Load() != unitIdle {
		t.Fatalf("unit state = %d after quiescence, want idle", u.state.Load())
	}

	// After quiescence the unit is idle: a new activation runs it again.
	p2 := newPool(nil)
	p2.activate(u)
	var again atomic.Int64
	p2.run(1, func(int, *unit) { again.Add(1) })
	if again.Load() != 1 {
		t.Fatalf("idle unit re-activation ran %d times, want 1", again.Load())
	}
}

// TestPoolMidRunMessageNeverLost hammers the lost-wakeup window: a
// producer deposits messages into a mailbox and activates the consuming
// unit, racing the worker that is just finishing fn. If activate's
// pending CAS or run's close-out CAS mishandled the interleaving, a
// message would be deposited after the final drain without a re-run
// (consumed == sent would fail), or the pool would hang (deadline).
// Run under -race this also proves the protocol is data-race-free.
func TestPoolMidRunMessageNeverLost(t *testing.T) {
	const producers = 4
	const perProducer = 2000

	p := newPool(nil)
	var mail inbox[int]
	u := &unit{id: 0}
	var consumed atomic.Int64

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				mail.put(1)
				p.activate(u) // deposit-then-activate, racing the drain
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Keep the pool alive until every producer has finished: quiescence
		// can genuinely occur mid-stream (producers are external), so run
		// again whenever more mail arrived after the previous run returned.
		for {
			p.activate(u)
			p.run(3, func(w int, x *unit) {
				var buf []int
				buf = mail.drain(buf)
				consumed.Add(int64(len(buf)))
			})
			if consumed.Load() == producers*perProducer {
				return
			}
			// Not all mail consumed yet: either producers are still running
			// or a message landed after the final drain. Re-running must
			// pick it up; a lost-wakeup bug would spin here forever (caught
			// by the deadline below).
		}
	}()

	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("pool hung: consumed %d of %d messages (lost wakeup)",
			consumed.Load(), producers*perProducer)
	}
	if got := consumed.Load(); got != producers*perProducer {
		t.Fatalf("consumed %d messages, want %d", got, producers*perProducer)
	}
}

// TestPoolPendingWhileQueuedCoalesces verifies the other coalescing edge:
// activations on an already-queued unit never double-queue it (the heap
// must see each unit at most once, or priority ordering and outstanding
// accounting both break).
func TestPoolPendingWhileQueuedCoalesces(t *testing.T) {
	p := newPool(nil)
	var runsA, runsB atomic.Int64
	a := &unit{id: 0, level: 0}
	b := &unit{id: 1, level: 1}
	p.activate(a)
	for i := 0; i < 100; i++ {
		p.activate(b) // 100 activations of a queued unit -> one run
	}
	p.run(1, func(w int, x *unit) {
		if x.id == 0 {
			runsA.Add(1)
		} else {
			runsB.Add(1)
		}
	})
	if runsA.Load() != 1 || runsB.Load() != 1 {
		t.Fatalf("runs = (%d, %d), want (1, 1)", runsA.Load(), runsB.Load())
	}
}
