package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// Scheduler conformance suite: one table-driven harness run against BOTH
// pool implementations (the global-lock reference and the work-stealing
// scheduler), pinning down the contract sched.go documents — quiescence,
// exactly-once pending requeue, and no lost wakeups under hostile
// cross-unit activation interleavings. Run under -race these tests double
// as a data-race proof of the handoff protocol.

type schedImpl struct {
	name string
	mk   func(workers int) scheduler
}

func schedImpls() []schedImpl {
	return []schedImpl{
		{"global", func(int) scheduler { return newPool(nil) }},
		{"worksteal", func(w int) scheduler { return newWSPool(w, nil) }},
	}
}

// runConform runs fn for each scheduler implementation as a subtest.
func runConform(t *testing.T, fn func(t *testing.T, impl schedImpl)) {
	for _, impl := range schedImpls() {
		impl := impl
		t.Run(impl.name, func(t *testing.T) { fn(t, impl) })
	}
}

// withDeadline fails the test if fn does not return in time — the shape
// every quiescence assertion takes (a lost wakeup shows up as a hang).
func withDeadline(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { defer close(done); fn() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal(what)
	}
}

func TestSchedConformEmptyRunQuiesces(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		p := impl.mk(4)
		withDeadline(t, 10*time.Second, "run with no activations did not return", func() {
			p.run(4, func(int, *unit) { t.Error("nothing should run") })
		})
	})
}

func TestSchedConformRunsEveryActivatedUnit(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		p := impl.mk(4)
		var processed atomic.Int64
		units := make([]*unit, 100)
		for i := range units {
			units[i] = &unit{id: int32(i), level: i % 5}
			p.activate(units[i])
		}
		p.run(4, func(w int, u *unit) { processed.Add(1) })
		if processed.Load() != 100 {
			t.Fatalf("processed %d units, want 100", processed.Load())
		}
		for _, u := range units {
			if u.state.Load() != unitIdle {
				t.Fatalf("unit %d not idle after run", u.id)
			}
		}
		if ss := p.stats(); ss.Dispatches != 100 {
			t.Fatalf("scheduler reported %d dispatches, want 100", ss.Dispatches)
		}
	})
}

func TestSchedConformDoubleActivationRunsOnce(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		p := impl.mk(2)
		u := &unit{id: 0}
		p.activate(u)
		p.activate(u) // queued: second activation is a no-op
		var runs atomic.Int64
		p.run(2, func(int, *unit) { runs.Add(1) })
		if runs.Load() != 1 {
			t.Fatalf("queued unit ran %d times", runs.Load())
		}
	})
}

// TestSchedConformPendingRequeueExactlyOnce: every activate() landing while
// the unit runs (CAS unitRunning -> unitPending) must buy exactly ONE
// re-execution no matter how many messages arrive mid-run (pending
// coalesces), and an activation after quiescence runs it afresh.
func TestSchedConformPendingRequeueExactlyOnce(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		p := impl.mk(2)
		u := &unit{id: 0}
		var runs atomic.Int64
		inRun := make(chan struct{})
		release := make(chan struct{})
		p.activate(u)
		go func() {
			<-inRun
			// Three activations while the unit is mid-run: the first flips
			// unitRunning -> unitPending, the rest observe unitPending and
			// are no-ops. Together they must buy exactly one re-execution.
			p.activate(u)
			p.activate(u)
			p.activate(u)
			close(release)
		}()
		withDeadline(t, 20*time.Second, "pending requeue hung", func() {
			p.run(2, func(w int, x *unit) {
				if runs.Add(1) == 1 {
					inRun <- struct{}{}
					<-release
				}
			})
		})
		if got := runs.Load(); got != 2 {
			t.Fatalf("unit ran %d times, want 2 (coalesced pending re-run)", got)
		}
		if u.state.Load() != unitIdle {
			t.Fatalf("unit state = %d after quiescence, want idle", u.state.Load())
		}

		// After quiescence the unit is idle: a new activation runs it again.
		p2 := impl.mk(1)
		p2.activate(u)
		var again atomic.Int64
		p2.run(1, func(int, *unit) { again.Add(1) })
		if again.Load() != 1 {
			t.Fatalf("idle unit re-activation ran %d times, want 1", again.Load())
		}
	})
}

func TestSchedConformCascadingActivation(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		p := impl.mk(3)
		const n = 50
		units := make([]*unit, n)
		for i := range units {
			units[i] = &unit{id: int32(i), level: i}
		}
		var order []int32
		var mu sync.Mutex
		p.activate(units[0])
		p.run(3, func(w int, u *unit) {
			mu.Lock()
			order = append(order, u.id)
			mu.Unlock()
			if int(u.id)+1 < n {
				p.activate(units[u.id+1])
			}
		})
		if len(order) != n {
			t.Fatalf("cascade processed %d units, want %d", len(order), n)
		}
	})
}

// TestSchedConformLevelPreference: with one worker (and, for the
// work-stealing pool, one shard) units queued before the run must come out
// in nondecreasing level order — the space-time heuristic both schedulers
// honour when nothing races. Levels stay inside the band range so banding
// is exact.
func TestSchedConformLevelPreference(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		p := impl.mk(1)
		levels := []int{3, 1, 2, 0, 1, 7, 5, 0}
		for i, l := range levels {
			p.activate(&unit{id: int32(i), level: l})
		}
		var got []int
		p.run(1, func(w int, u *unit) { got = append(got, u.level) })
		if len(got) != len(levels) {
			t.Fatalf("ran %d units, want %d", len(got), len(levels))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("levels out of order: %v", got)
			}
		}
	})
}

// TestSchedConformActivationStorm is the adversarial core of the suite:
// randomized cross-unit activation storms from concurrent external senders
// racing the workers' own reactivation fan-out. Every token deposited
// before its matching activate must be consumed by the time run returns —
// a lost wakeup either strands tokens (caught by the accounting) or hangs
// the pool (caught by the deadline).
func TestSchedConformActivationStorm(t *testing.T) {
	seeds := []uint64{1, 0xBAD5EED, 0xFEEDFACE}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			runConform(t, func(t *testing.T, impl schedImpl) {
				r := rng.New(seed)
				numUnits := 16 + r.Intn(64)
				workers := 1 + r.Intn(8)
				senders := 1 + r.Intn(4)
				perSender := 2000 + r.Intn(4000)
				fanout := 1 + r.Intn(3)
				budget := int64(100_000)

				units := make([]*unit, numUnits)
				for i := range units {
					units[i] = &unit{id: int32(i), level: r.Intn(12)}
				}
				tokens := make([]atomic.Int64, numUnits)
				var injected, consumed atomic.Int64
				p := impl.mk(workers)

				// Workers re-inject follow-up tokens, hash-directed: the
				// cross-flow message pattern (token first, activate second).
				fn := func(_ int, u *unit) {
					n := tokens[u.id].Swap(0)
					if n == 0 {
						return // benign: a racing drain beat this activation
					}
					consumed.Add(n)
					h := rng.Mix64(uint64(u.id)*0x9E3779B9 + uint64(n))
					for k := 0; k < fanout; k++ {
						h = rng.Mix64(h)
						if injected.Add(1) > budget {
							injected.Add(-1)
							continue
						}
						tgt := int(h % uint64(numUnits))
						tokens[tgt].Add(1)
						p.activate(units[tgt])
					}
				}

				// External senders race the running workers: they are exactly
				// the "concurrent sender" in the lost-wakeup window (deposit,
				// then activate a unit that may be idle, queued, running, or
				// mid-close-out).
				var wg sync.WaitGroup
				sendersDone := make(chan struct{})
				for s := 0; s < senders; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						sr := rng.New(seed ^ uint64(s+1)*0x9E3779B97F4A7C15)
						for i := 0; i < perSender; i++ {
							if injected.Add(1) > budget {
								injected.Add(-1)
								continue
							}
							tgt := sr.Intn(numUnits)
							tokens[tgt].Add(1)
							p.activate(units[tgt])
						}
					}(s)
				}
				go func() { wg.Wait(); close(sendersDone) }()

				// Quiescence can genuinely occur mid-storm (senders are
				// external), so re-run until every injected token is
				// accounted for. A deposit whose activation landed after run
				// returned legitimately waits for the next run; a token
				// stranded on an IDLE unit is the lost-wakeup bug, which
				// shows up here as a never-converging loop (the deadline) —
				// or as a consumed/injected mismatch below.
				withDeadline(t, 60*time.Second, "storm did not quiesce (lost wakeup)", func() {
					for {
						p.run(workers, fn)
						select {
						case <-sendersDone:
							if consumed.Load() == injected.Load() {
								return
							}
						default:
						}
					}
				})

				// One final run to drain benign activations that landed after
				// the previous run returned (their tokens were consumed
				// mid-run, but the activate left the unit queued).
				p.run(workers, fn)

				if got, want := consumed.Load(), injected.Load(); got != want {
					t.Fatalf("seed=%#x: lost work: consumed %d of %d injected tokens", seed, got, want)
				}
				for i := range tokens {
					if n := tokens[i].Load(); n != 0 {
						t.Fatalf("seed=%#x: unit %d quiesced with %d unread tokens", seed, i, n)
					}
					if s := units[i].state.Load(); s != unitIdle {
						t.Fatalf("seed=%#x: unit %d quiesced in state %d", seed, i, s)
					}
				}
			})
		})
	}
}

// TestSchedConformMidRunSenderNeverLost ports the historical lost-wakeup
// reproducer: producers deposit into a mailbox and activate the consuming
// unit, racing the worker that is just finishing fn. Mishandling the
// pending CAS or close-out CAS either strands a message (consumed != sent)
// or hangs the pool.
func TestSchedConformMidRunSenderNeverLost(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		const producers = 4
		const perProducer = 2000

		p := impl.mk(3)
		var mail inbox[int]
		u := &unit{id: 0}
		var consumed atomic.Int64

		var wg sync.WaitGroup
		for pr := 0; pr < producers; pr++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					mail.put(1)
					p.activate(u) // deposit-then-activate, racing the drain
				}
			}()
		}

		done := make(chan struct{})
		go func() {
			defer close(done)
			// Quiescence can genuinely occur mid-stream (producers are
			// external), so run again whenever mail arrived after the
			// previous run returned; a lost wakeup spins here forever.
			for {
				p.activate(u)
				p.run(3, func(w int, x *unit) {
					var buf []int
					buf = mail.drain(buf)
					consumed.Add(int64(len(buf)))
				})
				if consumed.Load() == producers*perProducer {
					return
				}
			}
		}()

		wg.Wait()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("pool hung: consumed %d of %d messages (lost wakeup)",
				consumed.Load(), producers*perProducer)
		}
		if got := consumed.Load(); got != int64(producers*perProducer) {
			t.Fatalf("consumed %d messages, want %d", got, producers*perProducer)
		}
	})
}

// TestSchedConformReplicaPinPlacement pins down the hub-replication
// placement invariant: the replicas of one hub home to pairwise distinct
// worker deques whenever workers >= replicas, for any hub identity (the
// shard base is hub-derived), and unpinned units are untouched by the pin
// machinery. Placement governs home deques only — stealing may still move
// a replica, which is exactly why correctness never depends on it.
func TestSchedConformReplicaPinPlacement(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		p := newWSPool(workers, nil)
		for hub := uint32(0); hub < 64; hub++ {
			rs := &replicaSet{nf: 5, r: workers, dim: 1, dimPad: slabPad,
				hubs: []uint32{hub}, slot: make([]int32, hub+1)}
			rs.slot[hub] = 0
			rs.ensure()
			seen := make(map[*wsShard]int32)
			for rep := 0; rep < rs.r; rep++ {
				f := rs.replicaFlow(0, rep)
				u := &unit{id: f, pin: rs.pinFor(f, workers)}
				if u.pin == 0 {
					t.Fatalf("replica flow %d of hub %d got no pin", f, hub)
				}
				sh := p.homeShard(u)
				if prev, dup := seen[sh]; dup {
					t.Fatalf("hub %d workers=%d: replica flows %d and %d share a home deque",
						hub, workers, prev, f)
				}
				seen[sh] = f
			}
			// The combine is pinned too (one deque past the replicas, so it
			// wraps onto some worker) — just never unpinned.
			cf := rs.combineFlow(0)
			if rs.pinFor(cf, workers) == 0 {
				t.Fatalf("combine flow %d of hub %d got no pin", cf, hub)
			}
			// Real flows stay unpinned.
			if rs.pinFor(3, workers) != 0 {
				t.Fatalf("real flow 3 got a pin")
			}
		}
	}
}

// TestSchedConformCombineExactlyOnce drives the diffused-combine handoff
// protocol (addPartial then replicaDirtySwapSet on the sending side,
// clear-then-drain on the draining side) through both schedulers under a
// steal storm: external senders race the replica and combine units, and at
// quiescence every deposited delta must have been merged into the total
// EXACTLY once — a lost notification strands mass (total < injected, or a
// hang), a double drain duplicates it (total > injected).
func TestSchedConformCombineExactlyOnce(t *testing.T) {
	runConform(t, func(t *testing.T, impl schedImpl) {
		const workers = 4
		const senders = 4
		const perSender = 3000

		rs := &replicaSet{nf: 0, r: workers, dim: 1, dimPad: slabPad,
			hubs: []uint32{0}, slot: []int32{0}}
		rs.ensure()

		units := make([]*unit, rs.r+1)
		for i := range units {
			f := int32(i)
			units[i] = &unit{id: f, level: 0, pin: rs.pinFor(f, workers)}
		}
		combineUnit := units[rs.r]
		combineUnit.level = 1 // one band above the replicas, as scheduled

		var total uint64 // merged mass, atomic float64 bits
		var combines atomic.Int64
		p := impl.mk(workers)
		fn := func(_ int, u *unit) {
			if int(u.id) == rs.r {
				if rs.drainCombine(0, func(_ int, x float64) { addBits(&total, x) }) {
					combines.Add(1)
				}
				return
			}
			if rs.drainReplicaInto(0, int(u.id)) && !rs.combineDirtySwapSet(0) {
				p.activate(combineUnit)
			}
		}

		var injected atomic.Int64
		var wg sync.WaitGroup
		sendersDone := make(chan struct{})
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sr := rng.New(uint64(s+1) * 0x9E3779B97F4A7C15)
				for i := 0; i < perSender; i++ {
					rep := sr.Intn(rs.r)
					injected.Add(1)
					rs.addPartial(0, rep, 0, 1)
					if !rs.replicaDirtySwapSet(0, rep) {
						p.activate(units[rep])
					}
				}
			}(s)
		}
		go func() { wg.Wait(); close(sendersDone) }()

		merged := func() int64 {
			return int64(math.Float64frombits(atomic.LoadUint64(&total)))
		}
		withDeadline(t, 60*time.Second, "combine protocol did not quiesce (lost notification)", func() {
			for {
				p.run(workers, fn)
				select {
				case <-sendersDone:
					if merged() == injected.Load() {
						return
					}
				default:
				}
			}
		})
		// Drain activations that landed after the previous run returned;
		// the merged mass must not change (nothing left to merge twice).
		p.run(workers, fn)

		if got, want := merged(), injected.Load(); got != want {
			t.Fatalf("merged %d of %d deposited deltas (exactly-once violated)", got, want)
		}
		for rep := 0; rep < rs.r; rep++ {
			if rs.repDirty.get(uint32(rep)) {
				t.Fatalf("replica %d quiesced dirty", rep)
			}
		}
		if rs.combDirty.get(0) {
			t.Fatal("combine quiesced dirty")
		}
		if combines.Load() == 0 {
			t.Fatal("combine never merged anything")
		}
	})
}
