package engine

import (
	"sort"

	"repro/internal/graph"
)

// StateSnapshot is an immutable point-in-time copy of a selective engine's
// converged state, taken at a batch boundary. The serving layer publishes
// one per applied batch through an atomic pointer, so any number of readers
// can answer point lookups, top-k scans, and delta subscriptions without
// locking the engine — and without ever observing a half-applied batch.
type StateSnapshot struct {
	Seq    uint64 // sequence of the last batch folded into this state
	Vals   []float64
	Parent []int32
}

// VertexValue pairs a vertex with its value in some snapshot.
type VertexValue struct {
	V   graph.VertexID
	Val float64
}

// StateSnapshot captures the engine's current converged state under seq.
// Call only at a batch boundary (the engine quiescent); the returned copy
// is then safe to read concurrently with later batches.
func (e *Selective) StateSnapshot(seq uint64) *StateSnapshot {
	vals, parent := e.SnapshotState()
	return &StateSnapshot{Seq: seq, Vals: vals, Parent: parent}
}

// NumVertices returns the vertex-space size of the snapshot.
func (s *StateSnapshot) NumVertices() int { return len(s.Vals) }

// Value returns v's value and key-edge parent, with ok=false when v is out
// of range.
func (s *StateSnapshot) Value(v graph.VertexID) (val float64, parent int32, ok bool) {
	if int(v) >= len(s.Vals) {
		return 0, -1, false
	}
	return s.Vals[v], s.Parent[v], true
}

// TopK returns the k vertices whose values rank best under better (the
// algorithm's own ordering: smallest distance for SSSP, widest path for
// SSWP), best first, ties broken by vertex id for determinism.
func (s *StateSnapshot) TopK(k int, better func(a, b float64) bool) []VertexValue {
	if k <= 0 {
		return nil
	}
	out := make([]VertexValue, 0, len(s.Vals))
	for v, val := range s.Vals {
		out = append(out, VertexValue{V: graph.VertexID(v), Val: val})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return better(out[i].Val, out[j].Val)
		}
		return out[i].V < out[j].V
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Diff lists every vertex whose value differs from prev (nil prev means
// everything), in vertex order — the delta stream a subscriber sees as
// flows reconverge after a batch.
func (s *StateSnapshot) Diff(prev *StateSnapshot) []VertexValue {
	var out []VertexValue
	for v, val := range s.Vals {
		if prev != nil && v < len(prev.Vals) && prev.Vals[v] == val {
			continue
		}
		out = append(out, VertexValue{V: graph.VertexID(v), Val: val})
	}
	return out
}
