package engine

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
)

// checkLocalAgainstStatic drives the Local engine through a workload and
// asserts bit-exact agreement with from-scratch recomputation after every
// batch. Both local algorithms have unique seeded fixpoints over small
// integers, so equality is exact regardless of worker count or scheduler.
func checkLocalAgainstStatic(t *testing.T, alg algo.Local, cfg Config, w gen.Workload) {
	t.Helper()
	var both []graph.Edge
	for _, e := range w.Initial {
		both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	g := graph.FromEdges(w.NumV, both)
	e := NewLocal(g, alg, cfg)

	ref := g.Clone()
	for bi, b := range w.Batches {
		st := e.ProcessBatch(b)
		ref.ApplyBatch(Symmetrize(b))
		want := alg.Solve(ref)
		got := e.Values()
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("%s batch %d: vertex %d = %v, want %v (stats %+v)",
					alg.Name(), bi, v, got[v], want[v], st)
			}
		}
	}
}

func TestLocalTriangleMatchesStatic(t *testing.T) {
	checkLocalAgainstStatic(t, algo.TriangleCount{}, Config{Workers: 4, FlowCap: 64}, smallWorkload(21, 6))
}

func TestLocalKCoreMatchesStatic(t *testing.T) {
	checkLocalAgainstStatic(t, algo.KCore{}, Config{Workers: 4, FlowCap: 64}, smallWorkload(22, 6))
}

func TestLocalSingleWorker(t *testing.T) {
	checkLocalAgainstStatic(t, algo.KCore{}, Config{Workers: 1, FlowCap: 32}, smallWorkload(23, 4))
}

func TestLocalGlobalScheduler(t *testing.T) {
	checkLocalAgainstStatic(t, algo.KCore{}, Config{Workers: 4, FlowCap: 64, Scheduler: SchedGlobal}, smallWorkload(24, 4))
	checkLocalAgainstStatic(t, algo.TriangleCount{}, Config{Workers: 4, FlowCap: 64, Scheduler: SchedGlobal}, smallWorkload(25, 4))
}

func TestLocalAblations(t *testing.T) {
	checkLocalAgainstStatic(t, algo.KCore{}, Config{Workers: 4, FlowCap: 64, NoSCCMerge: true}, smallWorkload(26, 3))
	checkLocalAgainstStatic(t, algo.KCore{}, Config{Workers: 4, FlowCap: 64, ScatteredStorage: true}, smallWorkload(27, 3))
	checkLocalAgainstStatic(t, algo.KCore{}, Config{Workers: 4, FlowCap: 64, DenseOff: true}, smallWorkload(28, 3))
}

// Restarting from SnapshotState mid-stream must continue bit-exactly — the
// contract wal.DurableLocal recovery depends on.
func TestLocalFromStateResumes(t *testing.T) {
	w := smallWorkload(29, 6)
	var both []graph.Edge
	for _, e := range w.Initial {
		both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	alg := algo.KCore{}
	cfg := Config{Workers: 4, FlowCap: 64}

	g1 := graph.FromEdges(w.NumV, both)
	e1 := NewLocal(g1, alg, cfg)
	for _, b := range w.Batches {
		e1.ProcessBatch(b)
	}

	g2 := graph.FromEdges(w.NumV, both)
	e2 := NewLocal(g2, alg, cfg)
	for _, b := range w.Batches[:3] {
		e2.ProcessBatch(b)
	}
	state := e2.SnapshotState()
	g3 := g2.Clone()
	e3, err := NewLocalFromState(g3, alg, cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[3:] {
		e3.ProcessBatch(b)
	}
	want, got := e1.Values(), e3.Values()
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("vertex %d after resume = %v, want %v", v, got[v], want[v])
		}
	}
	if snap := e3.StateSnapshot(9); snap.Seq != 9 || len(snap.Vals) != w.NumV || snap.Parent[0] != -1 {
		t.Fatalf("StateSnapshot malformed: %+v", snap)
	}
}
