package engine_test

import (
	"fmt"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// The local-engine slice of the stream fuzzer (external test package so it
// can drive the consistency oracle, which imports engine): triangle
// counting and k-core maintenance across the same hostile shapes as
// TestFuzzStreamEquivalence — including the deletion-only adversarial phase
// — under both schedulers and several worker counts. A failure prints the
// reproducing seed and the oracle's first divergent vertex.

func localFuzzWorkload(seed uint64, sc gen.StreamConfig) gen.Workload {
	r := rng.New(seed)
	numV := 40 + r.Intn(56)
	numE := numV * (3 + r.Intn(5))
	cfg := gen.Config{Kind: gen.RMAT, NumV: numV, NumE: numE, Seed: seed,
		A: 0.57, B: 0.19, C: 0.19, MaxWeight: 1 + r.Intn(8)}
	edges := gen.Generate(cfg)
	sc.BatchSize = 24 + r.Intn(48)
	sc.Seed = seed ^ 0xf00dface
	return gen.BuildWorkload(numV, edges, sc)
}

func localFuzzShapes() map[string]gen.StreamConfig {
	return map[string]gen.StreamConfig{
		"delete-heavy": {InitialFraction: 0.75, DeleteRatio: 0.8, NumBatches: 3},
		"delete-only":  {InitialFraction: 0.9, DeleteRatio: 1.0, NumBatches: 3},
		"interleaved":  {InitialFraction: 0.5, DeleteRatio: 0.5, NumBatches: 3},
	}
}

func TestFuzzStreamLocalEquivalence(t *testing.T) {
	seeds := []uint64{0x5eed0001, 0xDEC0DE42, 0xA11CE}
	workerCounts := []int{1, 4, 8}
	scheds := []engine.SchedulerKind{engine.SchedWorkStealing, engine.SchedGlobal}
	algs := []algo.Local{algo.TriangleCount{}, algo.KCore{}}

	for shapeName, sc := range localFuzzShapes() {
		for _, seed := range seeds {
			shapeName, sc, seed := shapeName, sc, seed
			t.Run(fmt.Sprintf("%s/seed=%#x", shapeName, seed), func(t *testing.T) {
				t.Parallel()
				w := localFuzzWorkload(seed, sc)
				for _, alg := range algs {
					for _, sched := range scheds {
						for _, workers := range workerCounts {
							cfg := engine.Config{Workers: workers, FlowCap: 32, Scheduler: sched}
							s := oracle.LocalSubject{Alg: alg}
							r := oracle.Check(s, oracle.Convergence, cfg, w)
							if v := r.Violation; v != nil {
								t.Errorf("%s diverged from oracle: shape=%s seed=%#x sched=%s workers=%d "+
									"batch=%d first divergent vertex=%d (got %v, want %v)",
									alg.Name(), shapeName, seed, sched, workers,
									v.Batch, v.Vertex, v.Got, v.Want)
							}
						}
					}
				}
			})
		}
	}
}
