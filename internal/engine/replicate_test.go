package engine

import (
	"fmt"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Hub replication equivalence: the replicated configurations must agree
// with the unreplicated engine's answer (itself checked against
// from-scratch recomputation) on hub-skewed streams, where replication
// actually engages. fuzzBA builds the skew: Barabási–Albert growth plus a
// low hub threshold guarantees several replicated vertices at test scale.

func fuzzBA(seed uint64, sc gen.StreamConfig) gen.Workload {
	r := rng.New(seed)
	numV := 48 + r.Intn(48)
	numE := numV * (4 + r.Intn(4))
	cfg := gen.Config{Kind: gen.BA, NumV: numV, NumE: numE, Seed: seed,
		MaxWeight: 1 + r.Intn(8)}
	edges := gen.Generate(cfg)
	sc.BatchSize = 24 + r.Intn(48)
	sc.Seed = seed ^ 0xba5eba11
	return gen.BuildWorkload(numV, edges, sc)
}

func replicatedConfig(workers int, sched SchedulerKind) Config {
	return Config{
		Workers:        workers,
		FlowCap:        32,
		Scheduler:      sched,
		HubReplication: true,
		HubThreshold:   8,
	}
}

func TestReplicationSelectiveEquivalence(t *testing.T) {
	algs := []algo.Selective{
		algo.SSSP{Src: 0}, algo.SSWP{Src: 0}, algo.BFS{Src: 0}, algo.CC{},
	}
	for _, sched := range []SchedulerKind{SchedWorkStealing, SchedGlobal} {
		for _, workers := range []int{1, 4} {
			for _, seed := range []uint64{0xba0001, 0xba0002, 0xba0003} {
				sched, workers, seed := sched, workers, seed
				name := fmt.Sprintf("%v/w%d/seed%x", sched, workers, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					w := fuzzBA(seed, gen.StreamConfig{
						InitialFraction: 0.6,
						DeleteRatio:     0.3,
						NumBatches:      3,
					})
					cfg := replicatedConfig(workers, sched)
					for _, alg := range algs {
						if !selectiveEquivalent(alg, w, cfg) {
							t.Errorf("replicated %s diverged (seed=%#x sched=%v workers=%d)",
								alg.Name(), seed, sched, workers)
						}
					}
				})
			}
		}
	}
}

func TestReplicationAccumulativeEquivalence(t *testing.T) {
	for _, sched := range []SchedulerKind{SchedWorkStealing, SchedGlobal} {
		for _, workers := range []int{1, 4} {
			for _, seed := range []uint64{0xba1001, 0xba1002, 0xba1003} {
				sched, workers, seed := sched, workers, seed
				name := fmt.Sprintf("%v/w%d/seed%x", sched, workers, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					w := fuzzBA(seed, gen.StreamConfig{
						InitialFraction: 0.6,
						DeleteRatio:     0.3,
						NumBatches:      3,
					})
					cfg := replicatedConfig(workers, sched)
					if !accumulativeEquivalent(w, cfg) {
						t.Errorf("replicated pagerank diverged (seed=%#x sched=%v workers=%d)",
							seed, sched, workers)
					}
				})
			}
		}
	}
}

// TestReplicationEngages proves the replica path actually runs on a
// hub-skewed stream: hubs are replicated, messages ride replicas, and the
// diffused combine fires — otherwise the equivalence tests above would
// vacuously pass with replication never triggering.
func TestReplicationEngages(t *testing.T) {
	w := fuzzBA(0xba2001, gen.StreamConfig{
		InitialFraction: 0.6,
		DeleteRatio:     0.2,
		NumBatches:      4,
	})
	cfg := replicatedConfig(4, SchedWorkStealing)

	g := graph.FromEdges(w.NumV, w.Initial)
	e := NewAccumulative(g, algo.NewPageRank(w.NumV), cfg)
	var hubs int
	var msgs, combines int64
	for _, b := range w.Batches {
		st := e.ProcessBatch(b)
		if st.ReplicatedHubs > hubs {
			hubs = st.ReplicatedHubs
		}
		msgs += st.ReplicaMsgs
		combines += st.Combines
	}
	if hubs == 0 {
		t.Fatal("no hubs replicated on a BA stream with threshold 8")
	}
	if msgs == 0 {
		t.Error("no messages routed through replicas")
	}
	if combines == 0 {
		t.Error("diffused combine never fired")
	}
	t.Logf("accumulative: hubs=%d replicaMsgs=%d combines=%d", hubs, msgs, combines)

	// Selective side: SSSP on the symmetrized stream. Replica traffic here
	// requires a cross-flow edge into a hub, which the BA topology supplies.
	var sboth []graph.Edge
	for _, ed := range w.Initial {
		sboth = append(sboth, ed, graph.Edge{Src: ed.Dst, Dst: ed.Src, W: ed.W})
	}
	sg := graph.FromEdges(w.NumV, sboth)
	se := NewSelective(sg, algo.SSSP{Src: 0}, cfg)
	hubs, msgs, combines = 0, 0, 0
	for _, b := range w.Batches {
		st := se.ProcessBatch(Symmetrize(b))
		if st.ReplicatedHubs > hubs {
			hubs = st.ReplicatedHubs
		}
		msgs += st.ReplicaMsgs
		combines += st.Combines
	}
	if hubs == 0 {
		t.Fatal("selective: no hubs replicated on a BA stream with threshold 8")
	}
	if msgs == 0 {
		t.Error("selective: no messages routed through replicas")
	}
	if combines == 0 {
		t.Error("selective: diffused combine never fired")
	}
	t.Logf("selective: hubs=%d replicaMsgs=%d combines=%d", hubs, msgs, combines)
}
