package engine

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// The global pool is the reference scheduler implementation (see sched.go):
// it runs scheduling units with level-priority ordering and quiescence
// detection behind one mutex + condvar heap. Workers prefer units from
// earlier schedule levels (the space-time order), units re-activated by
// incoming cross-flow messages are re-queued, and the pool returns when no
// unit is queued, running, or pending. Every dispatch serializes on the one
// lock, which is why the work-stealing scheduler replaced it as the
// default; it stays as the conformance oracle and the scaling baseline.
//
// Correctness never depends on the priority order (the trimmed-bit and
// delta-push protocols tolerate any interleaving); the order is the paper's
// cache-efficiency lever.

const (
	unitIdle int32 = iota
	unitQueued
	unitRunning
	unitPending // running, with new work arrived
)

// unit is one scheduling unit.
type unit struct {
	id    int32
	flows []int32
	level int
	seq   int64 // FIFO tie-break within a level
	state atomic.Int32

	// pin, when non-zero, pins the unit's home shard in the work-stealing
	// scheduler to (pin-1) mod workers instead of the id hash. Hub
	// replication uses it to land the replicas of one hub on distinct
	// workers' deques. 0 (the zero value) means unpinned; the global pool
	// ignores it.
	pin int32

	// enqueuedNs is the activation timestamp feeding the dispatch-wait
	// histogram; written and read under the owning queue's lock.
	enqueuedNs int64

	// carry holds worklist items preserved across activations when the
	// unit yields mid-convergence (bounded rounds per activation). Only the
	// unit's current runner touches it, so no lock is needed.
	carry []uint32
}

type unitHeap []*unit

func (h unitHeap) Len() int { return len(h) }
func (h unitHeap) Less(i, j int) bool {
	if h[i].level != h[j].level {
		return h[i].level < h[j].level
	}
	return h[i].seq < h[j].seq
}
func (h unitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *unitHeap) Push(x interface{}) { *h = append(*h, x.(*unit)) }
func (h *unitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	u := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return u
}

type pool struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       unitHeap
	outstanding int // units not idle
	stopped     bool
	seq         int64

	dispatches int64
	parks      int64
	waitHist   *metrics.Histogram
}

// newPool returns the reference scheduler. waitHist, when non-nil,
// receives activation-to-dispatch latencies.
func newPool(waitHist *metrics.Histogram) *pool {
	p := &pool{waitHist: waitHist}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// activate queues u if idle, or flags it pending if running. Safe from any
// goroutine, including workers mid-unit.
func (p *pool) activate(u *unit) {
	for {
		switch s := u.state.Load(); s {
		case unitIdle:
			if u.state.CompareAndSwap(unitIdle, unitQueued) {
				p.mu.Lock()
				p.seq++
				u.seq = p.seq
				if p.waitHist != nil {
					u.enqueuedNs = time.Now().UnixNano()
				}
				heap.Push(&p.queue, u)
				p.outstanding++
				p.mu.Unlock()
				p.cond.Signal()
				return
			}
		case unitQueued, unitPending:
			return
		case unitRunning:
			if u.state.CompareAndSwap(unitRunning, unitPending) {
				return
			}
		default:
			return
		}
	}
}

// run processes units with the given number of workers until quiescent.
// fn must process one unit completely (drain its inboxes and worklists).
func (p *pool) run(workers int, fn func(w int, u *unit)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				p.mu.Lock()
				for len(p.queue) == 0 && p.outstanding > 0 && !p.stopped {
					p.parks++
					p.cond.Wait()
				}
				if p.stopped || len(p.queue) == 0 {
					// Quiescent (outstanding == 0) or interrupted.
					p.mu.Unlock()
					p.cond.Broadcast()
					return
				}
				u := heap.Pop(&p.queue).(*unit)
				p.dispatches++
				if p.waitHist != nil {
					p.waitHist.Observe(time.Now().UnixNano() - u.enqueuedNs)
				}
				p.mu.Unlock()

				u.state.Store(unitRunning)
				fn(w, u)

				// Close out the unit; re-queue if messages arrived while
				// running.
				if u.state.CompareAndSwap(unitRunning, unitIdle) {
					p.mu.Lock()
					p.outstanding--
					done := p.outstanding == 0
					p.mu.Unlock()
					if done {
						p.cond.Broadcast()
					}
					continue
				}
				// Pending: put it back, unit stays outstanding.
				u.state.Store(unitQueued)
				p.mu.Lock()
				p.seq++
				u.seq = p.seq
				if p.waitHist != nil {
					u.enqueuedNs = time.Now().UnixNano()
				}
				heap.Push(&p.queue, u)
				p.mu.Unlock()
				p.cond.Signal()
			}
		}(w)
	}
	wg.Wait()
}

// interrupt abandons queued and pending units and wakes every waiter so
// run's workers drain out after their current unit.
func (p *pool) interrupt() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *pool) stats() schedStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return schedStats{Dispatches: p.dispatches, Parks: p.parks}
}
