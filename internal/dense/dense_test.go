package dense

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// oracleCheck compares a Set against a plain map after every operation of a
// random op stream. Covers Add/Has/Remove/Clear/Len/Members.
func oracleCheck(t *testing.T, seed uint64, universe int, ops int, clearProb float64) {
	t.Helper()
	r := rng.New(seed)
	s := NewSet[int32](universe)
	oracle := make(map[int32]bool)
	for i := 0; i < ops; i++ {
		k := int32(r.Intn(universe))
		switch {
		case r.Float64() < clearProb:
			s.Clear()
			oracle = make(map[int32]bool)
		case r.Float64() < 0.6:
			added := s.Add(k)
			if added == oracle[k] {
				t.Fatalf("seed %d op %d: Add(%d) = %v, oracle had %v", seed, i, k, added, oracle[k])
			}
			oracle[k] = true
		default:
			removed := s.Remove(k)
			if removed != oracle[k] {
				t.Fatalf("seed %d op %d: Remove(%d) = %v, oracle %v", seed, i, k, removed, oracle[k])
			}
			delete(oracle, k)
		}
		if s.Len() != len(oracle) {
			t.Fatalf("seed %d op %d: Len = %d, oracle %d", seed, i, s.Len(), len(oracle))
		}
		probe := int32(r.Intn(universe))
		if s.Has(probe) != oracle[probe] {
			t.Fatalf("seed %d op %d: Has(%d) = %v, oracle %v", seed, i, probe, s.Has(probe), oracle[probe])
		}
	}
	// Members must be exactly the oracle keys (order-free).
	got := append([]int32(nil), s.Members()...)
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	want := make([]int32, 0, len(oracle))
	for k := range oracle {
		want = append(want, k)
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(got) != len(want) {
		t.Fatalf("seed %d: members %v, oracle %v", seed, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed %d: members %v, oracle %v", seed, got, want)
		}
	}
}

func TestSetMatchesMapOracle(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		oracleCheck(t, seed, 64, 2000, 0.02)
	}
}

func TestSetOracleTinyUniverse(t *testing.T) {
	for seed := uint64(100); seed <= 110; seed++ {
		oracleCheck(t, seed, 3, 500, 0.1)
	}
}

// TestClearVsRemoveEquivalence: clearing via epoch bump must be
// observationally identical to removing every member individually.
func TestClearVsRemoveEquivalence(t *testing.T) {
	r := rng.New(7)
	a := NewSet[uint32](128)
	b := NewSet[uint32](128)
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			k := uint32(r.Intn(128))
			a.Add(k)
			b.Add(k)
		}
		a.Clear()
		for _, k := range append([]uint32(nil), b.Members()...) {
			if !b.Remove(k) {
				t.Fatalf("round %d: member %d vanished", round, k)
			}
		}
		if a.Len() != 0 || b.Len() != 0 {
			t.Fatalf("round %d: lens %d/%d after empty", round, a.Len(), b.Len())
		}
		for k := uint32(0); k < 128; k++ {
			if a.Has(k) || b.Has(k) {
				t.Fatalf("round %d: key %d survived", round, k)
			}
		}
	}
}

// TestEpochWraparound forces the uint32 epoch through 0. Stale stamps from
// before the wrap must not read as members afterwards.
func TestEpochWraparound(t *testing.T) {
	s := NewSet[int32](16)
	s.Add(3)
	s.Add(7)
	// Jump to the edge: next two Clears wrap the counter through zero.
	s.epoch = ^uint32(0) - 1
	s.stamp[3] = s.epoch // keep 3 a member at the forged epoch
	s.stamp[7] = s.epoch
	if !s.Has(3) || !s.Has(7) {
		t.Fatal("forged epoch lost members")
	}
	s.Clear() // epoch = max
	if s.Has(3) || s.Len() != 0 {
		t.Fatal("clear at epoch max leaked member")
	}
	s.Add(5)
	s.Clear() // epoch wraps to 0 -> stamps wiped, epoch = 1
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	for k := int32(0); k < 16; k++ {
		if s.Has(k) {
			t.Fatalf("stale stamp on %d read as member after wrap", k)
		}
	}
	// Epoch 1 must behave like a fresh set: in particular key 5, whose
	// stamp was written right before the wrap, must be re-addable.
	if !s.Add(5) {
		t.Fatal("Add(5) after wrap claims already present")
	}
	if !s.Has(5) || s.Len() != 1 {
		t.Fatal("membership broken after wrap")
	}
}

// TestZeroValueAndGrowth: the zero Set must be usable and grow on demand.
func TestZeroValueAndGrowth(t *testing.T) {
	var s Set[uint32]
	if s.Has(9) {
		t.Fatal("zero set claims membership")
	}
	if !s.Add(9) {
		t.Fatal("Add on zero set failed")
	}
	if !s.Add(1000) { // forces growth
		t.Fatal("growth Add failed")
	}
	if !s.Has(9) || !s.Has(1000) || s.Len() != 2 {
		t.Fatal("growth lost members")
	}
	s.Reset(4) // smaller n keeps capacity
	if s.Len() != 0 || s.Has(9) || s.Has(1000) {
		t.Fatal("Reset did not clear")
	}
}

// TestRemoveSwapDelete pins the pos bookkeeping: removing a middle member
// must keep every other member reachable.
func TestRemoveSwapDelete(t *testing.T) {
	s := NewSet[int32](8)
	for k := int32(0); k < 6; k++ {
		s.Add(k)
	}
	s.Remove(2)
	s.Remove(0)
	for _, k := range []int32{1, 3, 4, 5} {
		if !s.Has(k) {
			t.Fatalf("member %d lost after swap-deletes", k)
		}
		if !s.Remove(k) {
			t.Fatalf("Remove(%d) after swap-deletes failed", k)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after removing all", s.Len())
	}
}

// FuzzSetOps drives a Set and a map oracle from an arbitrary op tape.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x81, 0xff, 0x00, 0x42})
	f.Add([]byte{0xc0, 0x01, 0x02, 0xc1, 0x03})
	f.Fuzz(func(t *testing.T, tape []byte) {
		s := NewSet[uint32](32)
		oracle := make(map[uint32]bool)
		for _, b := range tape {
			k := uint32(b & 0x3f)
			switch {
			case b&0xc0 == 0xc0:
				s.Clear()
				oracle = make(map[uint32]bool)
			case b&0x80 != 0:
				if s.Remove(k) != oracle[k] {
					t.Fatalf("Remove(%d) diverged from oracle", k)
				}
				delete(oracle, k)
			default:
				if s.Add(k) == oracle[k] {
					t.Fatalf("Add(%d) diverged from oracle", k)
				}
				oracle[k] = true
			}
			if s.Len() != len(oracle) {
				t.Fatalf("Len %d != oracle %d", s.Len(), len(oracle))
			}
			if s.Has(k) != oracle[k] {
				t.Fatalf("Has(%d) diverged", k)
			}
		}
	})
}
