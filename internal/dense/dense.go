// Package dense provides epoch-stamped dense sets over small integer key
// spaces (vertex IDs, flow IDs). They replace the per-batch
// `make(map[...]bool)` scratch sets on the engines' hot path: membership is
// a stamp comparison, iteration walks a packed member slice, and Clear is an
// O(1) epoch bump instead of a fresh allocation, so a set retained across
// batches contributes zero steady-state allocations.
//
// Keys must be non-negative and dense-ish: a Set sized for universe n holds
// two 4-byte words per key in [0, n). That is exactly the shape of GraphFly
// vertex and flow ID spaces, where the universe is known up front and small
// relative to the update stream that scans it every batch.
package dense

// Key is any 32-bit integer ID type. Negative keys are not supported;
// passing one panics via out-of-range conversion growth.
type Key interface {
	~int32 | ~uint32
}

// VertexSet is a Set over raw uint32 vertex IDs (graph.VertexID).
type VertexSet = Set[uint32]

// FlowSet is a Set over int32 dependency-flow IDs.
type FlowSet = Set[int32]

// Set is an epoch-stamped dense set. The zero value is usable and grows on
// demand; prefer NewSet (or Reset) with the universe size to avoid growth
// reallocations on the hot path.
//
// Invariant: epoch >= 1 whenever the set is observable, and stamp[k] ==
// epoch iff k is a member. Clear bumps the epoch; on the (rare) uint32
// wraparound it zeroes the stamps once so stale stamps from 2^32 clears ago
// can never alias the new epoch.
type Set[K Key] struct {
	stamp   []uint32
	pos     []int32
	members []K
	epoch   uint32
}

// NewSet returns an empty set sized for keys in [0, n).
func NewSet[K Key](n int) *Set[K] {
	s := &Set[K]{}
	s.Reset(n)
	return s
}

// Reset clears the set and ensures capacity for keys in [0, n). Backing
// arrays are retained when already large enough, so Reset is the
// repartition-time companion to the per-batch Clear.
func (s *Set[K]) Reset(n int) {
	if n > len(s.stamp) {
		s.stamp = make([]uint32, n)
		s.pos = make([]int32, n)
		s.epoch = 0 // fresh zero stamps: any epoch >= 1 is safe
	}
	s.Clear()
}

// Clear empties the set in O(1) by bumping the epoch.
func (s *Set[K]) Clear() {
	s.members = s.members[:0]
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could alias, wipe them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

func (s *Set[K]) grow(n int) {
	c := len(s.stamp)*2 + 1
	if c < n {
		c = n
	}
	stamp := make([]uint32, c)
	pos := make([]int32, c)
	copy(stamp, s.stamp)
	copy(pos, s.pos)
	s.stamp, s.pos = stamp, pos
	if s.epoch == 0 {
		s.epoch = 1
	}
}

// Add inserts k and reports whether it was absent.
func (s *Set[K]) Add(k K) bool {
	i := int(uint32(k))
	if i >= len(s.stamp) {
		s.grow(i + 1)
	}
	if s.stamp[i] == s.epoch && s.epoch != 0 {
		return false
	}
	if s.epoch == 0 {
		s.epoch = 1
	}
	s.stamp[i] = s.epoch
	s.pos[i] = int32(len(s.members))
	s.members = append(s.members, k)
	return true
}

// Has reports membership of k.
func (s *Set[K]) Has(k K) bool {
	i := int(uint32(k))
	return i < len(s.stamp) && s.stamp[i] == s.epoch && s.epoch != 0
}

// Remove deletes k and reports whether it was present. The member order is
// not preserved (swap-delete).
func (s *Set[K]) Remove(k K) bool {
	i := int(uint32(k))
	if i >= len(s.stamp) || s.stamp[i] != s.epoch || s.epoch == 0 {
		return false
	}
	p := s.pos[i]
	last := len(s.members) - 1
	moved := s.members[last]
	s.members[p] = moved
	s.pos[uint32(moved)] = p
	s.members = s.members[:last]
	s.stamp[i] = 0 // epoch >= 1, so 0 never matches
	return true
}

// Len returns the number of members.
func (s *Set[K]) Len() int { return len(s.members) }

// Members returns the members in insertion order (perturbed by Remove's
// swap-delete). The slice aliases internal storage: valid until the next
// mutation, must not be modified.
func (s *Set[K]) Members() []K { return s.members }
