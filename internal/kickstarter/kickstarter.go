// Package kickstarter reimplements the KickStarter baseline (Vora, Gupta,
// Xu — ASPLOS'17) the paper compares against for monotonic algorithms:
// value-dependence tracking, trimming of approximations broken by edge
// deletions, and incremental recomputation — with the defining structural
// property GraphFly removes: a global synchronization barrier between the
// refinement phase and the recomputation phase, and bulk-synchronous
// frontier rounds over globally scattered vertex state.
//
// The engine runs the same algorithm contracts, graph substrate, and memory
// probes as GraphFly, so measured differences isolate the execution model
// (the paper's claim in §VII-B).
package kickstarter

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/etree"
	"repro/internal/graph"
	"repro/internal/layout"
)

// Engine is a KickStarter-style incremental engine for selective
// algorithms.
type Engine struct {
	G   *graph.Streaming
	Alg algo.Selective
	cfg engine.Config

	vals    *layout.Store // scattered: global vertex-ID order
	parent  []int32
	trimmed []uint32 // atomic flags
	kf      *etree.KeyForest

	probe    cachesim.Probe
	profiled bool
	outIdx   *layout.EdgeIndex
	inIdx    *layout.EdgeIndex

	inFrontier []uint32 // atomic flags for frontier dedup

	symm engine.Symmetrizer // retained symmetrize scratch
}

// New builds the engine and computes the initial graph statically,
// recording the dependence tree.
func New(g *graph.Streaming, alg algo.Selective, cfg engine.Config) *Engine {
	e := &Engine{
		G:     g,
		Alg:   alg,
		cfg:   cfg,
		probe: cfgProbe(cfg),
		kf:    etree.NewKeyForest(g.NumVertices()),
	}
	_, e.profiled = e.probe.(*cachesim.Sim)
	vals, parent := algo.SolveSelective(g, alg)
	e.parent = parent
	n := g.NumVertices()
	e.vals = layout.NewScatteredStore(n, 1)
	for v, x := range vals {
		e.vals.Set(uint32(v), x)
	}
	e.trimmed = make([]uint32, n)
	e.inFrontier = make([]uint32, n)
	e.refreshEdgeIndex()
	return e
}

func cfgProbe(cfg engine.Config) cachesim.Probe {
	if cfg.Probe == nil {
		return cachesim.Nop{}
	}
	return cfg.Probe
}

func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return 0 // graph.ParallelFor resolves GOMAXPROCS
}

func (e *Engine) refreshEdgeIndex() {
	if !e.profiled {
		return
	}
	e.outIdx = layout.NewEdgeIndex(e.G, nil, false)
	e.inIdx = layout.NewInEdgeIndex(e.G, nil, false)
}

// Value returns v's converged value.
func (e *Engine) Value(v graph.VertexID) float64 { return e.vals.Get(uint32(v)) }

// Values copies all values.
func (e *Engine) Values() []float64 {
	out := make([]float64, e.G.NumVertices())
	for v := range out {
		out[v] = e.vals.Get(uint32(v))
	}
	return out
}

// ProcessBatch applies the batch with KickStarter's two-phase protocol:
// tag + trim (refinement), global barrier, then bulk-synchronous pull
// rounds until quiescence (recomputation).
func (e *Engine) ProcessBatch(batch graph.Batch) engine.BatchStats {
	var st engine.BatchStats
	t0 := time.Now()
	e.probe.BeginBatch()
	if e.Alg.Symmetric() {
		batch = e.symm.Symmetrize(batch)
	}

	tApply := time.Now()
	applied := e.G.ApplyBatchParallel(batch, e.cfg.Workers)
	st.Applied = len(applied)
	st.ApplyTime = time.Since(tApply)
	e.refreshEdgeIndex()

	tMaint := time.Now()
	e.kf.BulkLoad(e.parent)
	st.MaintainTime = time.Since(tMaint)

	// ---- Phase 1: refinement (tag + trim). ----
	tTrim := time.Now()
	e.probe.SetPhase(cachesim.PhaseRefine)
	var trimmedList []uint32
	for _, u := range applied {
		if !u.Del || e.parent[u.Dst] != int32(u.Src) {
			continue
		}
		st.TrimRoots++
		e.kf.Subtree(uint32(u.Dst), func(x uint32) bool {
			if atomic.SwapUint32(&e.trimmed[x], 1) != 0 {
				return false
			}
			e.parent[x] = -1
			trimmedList = append(trimmedList, x)
			return true
		})
	}
	st.Trimmed = len(trimmedList)

	// Reset every trimmed vertex to a safe approximation: the best value
	// reachable from untrimmed in-neighbours (all trimmed values stay
	// invisible until the barrier, so the approximation is conservative).
	// A reset can also *improve* on the pre-batch value when the batch
	// added a good edge into the trimmed region; such resets must notify
	// their out-neighbours, so they are recorded in resetImproved.
	resetImproved := make([]uint32, len(trimmedList))
	graph.ParallelFor(len(trimmedList), e.workers(), func(lo, hi int) {
		p := e.probe.Fork()
		p.SetPhase(cachesim.PhaseRefine)
		for i := lo; i < hi; i++ {
			v := trimmedList[i]
			best := e.Alg.Base(graph.VertexID(v))
			bestParent := int32(-1)
			for j, h := range e.G.In(graph.VertexID(v)) {
				if e.profiled {
					p.Access(e.inIdx.Addr(v, j), false, cachesim.ClassEdge)
				}
				if atomic.LoadUint32(&e.trimmed[h.To]) != 0 {
					continue
				}
				if e.profiled {
					p.Access(e.vals.Addr(uint32(h.To)), false, cachesim.ClassVertex)
				}
				cand := e.Alg.Propagate(e.vals.Get(uint32(h.To)), h.W)
				if e.Alg.Better(cand, best) {
					best = cand
					bestParent = int32(h.To)
				}
			}
			if e.profiled {
				p.Access(e.vals.Addr(v), true, cachesim.ClassVertex)
			}
			if e.Alg.Better(best, e.vals.Get(v)) {
				resetImproved[i] = 1
			}
			e.vals.Set(v, best)
			e.parent[v] = bestParent
		}
	})
	// ---- Global barrier: refinement complete before recomputation. ----
	for _, v := range trimmedList {
		atomic.StoreUint32(&e.trimmed[v], 0)
	}
	st.TrimTime = time.Since(tTrim)

	// ---- Phase 2: bulk-synchronous recomputation. ----
	tComp := time.Now()
	e.probe.SetPhase(cachesim.PhaseRecompute)
	frontier := make([]uint32, 0, len(trimmedList))
	push := func(v uint32) {
		if atomic.SwapUint32(&e.inFrontier[v], 1) == 0 {
			frontier = append(frontier, v)
		}
	}
	// Trimmed vertices must re-derive; addition targets may improve; the
	// out-neighbours of improved resets must observe the better value.
	for i, v := range trimmedList {
		push(v)
		if resetImproved[i] != 0 {
			for _, h := range e.G.Out(graph.VertexID(v)) {
				push(uint32(h.To))
			}
		}
	}
	for _, u := range applied {
		if !u.Del {
			push(uint32(u.Dst))
		}
	}

	rounds := 0
	var relaxations atomic.Int64
	for len(frontier) > 0 {
		rounds++
		// (a) Pull-update every frontier vertex in parallel.
		improved := make([]uint32, len(frontier))
		graph.ParallelFor(len(frontier), e.workers(), func(lo, hi int) {
			p := e.probe.Fork()
			p.SetPhase(cachesim.PhaseRecompute)
			for i := lo; i < hi; i++ {
				v := frontier[i]
				atomic.StoreUint32(&e.inFrontier[v], 0)
				cur := e.vals.Get(v)
				best := cur
				bestParent := e.parent[v]
				in := e.G.In(graph.VertexID(v))
				relaxations.Add(int64(len(in)))
				for j, h := range in {
					if e.profiled {
						p.Access(e.inIdx.Addr(v, j), false, cachesim.ClassEdge)
						p.Access(e.vals.Addr(uint32(h.To)), false, cachesim.ClassVertex)
					}
					cand := e.Alg.Propagate(e.vals.Get(uint32(h.To)), h.W)
					if e.Alg.Better(cand, best) {
						best = cand
						bestParent = int32(h.To)
					}
				}
				if e.Alg.Better(best, cur) {
					if e.profiled {
						p.Access(e.vals.Addr(v), true, cachesim.ClassVertex)
					}
					e.vals.Set(v, best)
					e.parent[v] = bestParent
					improved[i] = 1
				}
			}
		})
		// (b) Barrier, then build the next frontier from improved vertices.
		next := make([]uint32, 0)
		var nextMu sync.Mutex
		graph.ParallelFor(len(frontier), e.workers(), func(lo, hi int) {
			p := e.probe.Fork()
			p.SetPhase(cachesim.PhaseRecompute)
			local := make([]uint32, 0, 64)
			for i := lo; i < hi; i++ {
				if improved[i] == 0 {
					continue
				}
				v := frontier[i]
				for j, h := range e.G.Out(graph.VertexID(v)) {
					if e.profiled {
						p.Access(e.outIdx.Addr(v, j), false, cachesim.ClassEdge)
					}
					w := uint32(h.To)
					if atomic.SwapUint32(&e.inFrontier[w], 1) == 0 {
						local = append(local, w)
					}
				}
			}
			if len(local) > 0 {
				nextMu.Lock()
				next = append(next, local...)
				nextMu.Unlock()
			}
		})
		frontier = next
	}
	st.Relaxations = relaxations.Load()
	st.Levels = rounds
	st.ComputeTime = time.Since(tComp)
	st.Total = time.Since(t0)
	return st
}
