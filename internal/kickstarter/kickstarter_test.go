package kickstarter

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

func check(t *testing.T, alg algo.Selective, cfg engine.Config, w gen.Workload) {
	t.Helper()
	initial := w.Initial
	if alg.Symmetric() {
		var both []graph.Edge
		for _, e := range initial {
			both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		initial = both
	}
	g := graph.FromEdges(w.NumV, initial)
	e := New(g, alg, cfg)
	ref := g.Clone()
	for bi, b := range w.Batches {
		e.ProcessBatch(b)
		rb := b
		if alg.Symmetric() {
			rb = engine.Symmetrize(b)
		}
		ref.ApplyBatch(rb)
		want, _ := algo.SolveSelective(ref, alg)
		got := e.Values()
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("%s batch %d: vertex %d = %v, want %v", alg.Name(), bi, v, got[v], want[v])
			}
		}
	}
}

func workload(seed uint64, batches int) gen.Workload {
	cfg := gen.TestDataset(seed)
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: 200,
		NumBatches: batches, Seed: seed + 1,
	})
}

func TestKickStarterSSSP(t *testing.T) {
	check(t, algo.SSSP{Src: 0}, engine.Config{Workers: 4}, workload(41, 6))
}

func TestKickStarterBFS(t *testing.T) {
	check(t, algo.BFS{Src: 0}, engine.Config{Workers: 4}, workload(42, 5))
}

func TestKickStarterSSWP(t *testing.T) {
	check(t, algo.SSWP{Src: 0}, engine.Config{Workers: 4}, workload(43, 5))
}

func TestKickStarterCC(t *testing.T) {
	check(t, algo.CC{}, engine.Config{Workers: 4}, workload(44, 5))
}

func TestKickStarterSingleWorker(t *testing.T) {
	check(t, algo.SSSP{Src: 0}, engine.Config{Workers: 1}, workload(45, 4))
}

func TestKickStarterDeletionHeavy(t *testing.T) {
	cfg := gen.TestDataset(46)
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.7, DeleteRatio: 0.8, BatchSize: 150, NumBatches: 5, Seed: 47,
	})
	check(t, algo.SSSP{Src: 0}, engine.Config{Workers: 4}, w)
}

func TestKickStarterProfiledPhases(t *testing.T) {
	sim := cachesim.NewSim(cachesim.DefaultConfig())
	check(t, algo.SSSP{Src: 0}, engine.Config{Workers: 2, Probe: sim}, workload(48, 3))
	st := sim.Drain()
	if st.Total() == 0 {
		t.Fatal("no accesses recorded")
	}
	// The two-phase engine must exhibit cross-phase redundancy: that is the
	// paper's Fig 4a phenomenon.
	if st.PhaseAccesses[cachesim.PhaseRefine] == 0 || st.PhaseAccesses[cachesim.PhaseRecompute] == 0 {
		t.Fatalf("phases not populated: %+v", st.PhaseAccesses)
	}
	if st.Redundant == 0 {
		t.Fatal("two-phase execution showed no redundant accesses")
	}
}

func TestKickStarterStats(t *testing.T) {
	w := workload(49, 1)
	g := graph.FromEdges(w.NumV, w.Initial)
	e := New(g, algo.SSSP{Src: 0}, engine.Config{Workers: 2})
	st := e.ProcessBatch(w.Batches[0])
	if st.Applied == 0 || st.Total <= 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}
