// Package layout implements the paper's specialized graph data layout
// (§V-B, Fig 8): the vertex values of one dependency-flow are stored
// contiguously (Vidx/Vval with a Flow Pointer + Flow Offset per vertex),
// and the flow's edges are blocked the same way (Ptr/Eidx/Eval). Processing
// a flow then touches one dense region instead of scattering across the
// global arrays, which is where GraphFly's cache efficiency comes from.
//
// Store is the value side: values actually live in flow-blocked order, so
// the wall-clock effect is real, and every slot has a modeled address so
// the cache simulator sees the same locality (Fig 12, Fig 13). The
// scattered variant (ablation "GraphFly-w/o-SSF") indexes values by raw
// vertex ID.
//
// Values are stored as IEEE-754 bit patterns in uint64 words accessed with
// sync/atomic, because GraphFly's asynchronous engine lets a flow's owner
// write a value while neighbouring flows read it; atomics make those
// cross-flow reads race-free without locks.
package layout

import (
	"math"
	"sync/atomic"

	"repro/internal/dflow"
	"repro/internal/graph"
)

// Address-space bases for the cache model; regions never overlap for any
// realistic graph size (each region spans < 2^40 bytes).
const (
	ValueRegion  uint64 = 1 << 40
	EdgeRegion   uint64 = 1 << 41
	InEdgeRegion uint64 = 3 << 40 // disjoint slice between Edge and Meta
	MetaRegion   uint64 = 1 << 42
)

// Store holds one float64-vector value per vertex, either flow-blocked
// (the specialized layout) or scattered (raw vertex order).
type Store struct {
	dim  int
	n    int
	slot []int32  // vertex -> slot (identity when scattered)
	vidx []uint32 // slot -> vertex (the paper's V_idx)
	vals []uint64 // bit patterns, n*dim words
}

// NewFlowStore builds the specialized (flow-blocked) store: slots follow
// the partition's pack order, so a flow's values occupy one dense block.
func NewFlowStore(part *dflow.Partition, dim int) *Store {
	n := len(part.FlowOf)
	s := &Store{
		dim:  dim,
		n:    n,
		slot: make([]int32, n),
		vidx: make([]uint32, n),
		vals: make([]uint64, n*dim),
	}
	next := int32(0)
	for f := int32(0); int(f) < part.NumFlows(); f++ {
		for _, v := range part.Members(f) {
			s.slot[v] = next
			s.vidx[next] = v
			next++
		}
	}
	return s
}

// NewScatteredStore builds the ablation store: slot == vertex ID.
func NewScatteredStore(n, dim int) *Store {
	s := &Store{
		dim:  dim,
		n:    n,
		slot: make([]int32, n),
		vidx: make([]uint32, n),
		vals: make([]uint64, n*dim),
	}
	for v := 0; v < n; v++ {
		s.slot[v] = int32(v)
		s.vidx[v] = uint32(v)
	}
	return s
}

// Dim returns the per-vertex vector dimension.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of vertices.
func (s *Store) Len() int { return s.n }

// Slot returns v's storage slot (the paper's Flow Pointer + Flow Offset
// resolved to a flat index).
func (s *Store) Slot(v uint32) int32 { return s.slot[v] }

// VertexAt returns the vertex stored in a slot (V_idx).
func (s *Store) VertexAt(slot int32) uint32 { return s.vidx[slot] }

// Get returns component 0 of v's value (the common scalar case).
func (s *Store) Get(v uint32) float64 { return s.GetAt(v, 0) }

// Set stores component 0 of v's value.
func (s *Store) Set(v uint32, x float64) { s.SetAt(v, 0, x) }

// GetAt returns component d of v's value.
func (s *Store) GetAt(v uint32, d int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&s.vals[int(s.slot[v])*s.dim+d]))
}

// SetAt stores component d of v's value.
func (s *Store) SetAt(v uint32, d int, x float64) {
	atomic.StoreUint64(&s.vals[int(s.slot[v])*s.dim+d], math.Float64bits(x))
}

// AddAt atomically adds delta to component d of v's value via a CAS loop.
// The accumulative engines use it so concurrent flows can fold their edge
// deltas into a shared aggregate without locks.
func (s *Store) AddAt(v uint32, d int, delta float64) {
	p := &s.vals[int(s.slot[v])*s.dim+d]
	for {
		old := atomic.LoadUint64(p)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(p, old, next) {
			return
		}
	}
}

// GetVec copies v's vector into dst (len >= dim) and returns it.
func (s *Store) GetVec(v uint32, dst []float64) []float64 {
	base := int(s.slot[v]) * s.dim
	for d := 0; d < s.dim; d++ {
		dst[d] = math.Float64frombits(atomic.LoadUint64(&s.vals[base+d]))
	}
	return dst[:s.dim]
}

// SetVec stores v's vector.
func (s *Store) SetVec(v uint32, src []float64) {
	base := int(s.slot[v]) * s.dim
	for d := 0; d < s.dim; d++ {
		atomic.StoreUint64(&s.vals[base+d], math.Float64bits(src[d]))
	}
}

// Fill sets every component of every vertex to x.
func (s *Store) Fill(x float64) {
	bits := math.Float64bits(x)
	for i := range s.vals {
		atomic.StoreUint64(&s.vals[i], bits)
	}
}

// Addr returns the modeled byte address of v's value for the cache
// simulator: dense within a flow under the specialized layout, strided by
// raw vertex ID otherwise.
func (s *Store) Addr(v uint32) uint64 {
	return ValueRegion + uint64(s.slot[v])*uint64(s.dim)*8
}

// EdgeIndex models the addresses of the edge arrays (Ptr/E_idx/E_val in
// Fig 8). Flow-blocked mode lays a flow's edges out contiguously in pack
// order; scattered mode uses global CSR order (by raw vertex ID). Rebuild
// after each batch so the model tracks the mutated adjacency.
type EdgeIndex struct {
	base   []int64 // vertex -> first edge slot
	region uint64  // address-space base
}

// edgeSlotBytes is the modeled size of one adjacency entry
// (4-byte E_idx + 8-byte E_val, padded).
const edgeSlotBytes = 16

// NewEdgeIndex builds the out-adjacency address model for g. part may be
// nil in scattered mode.
func NewEdgeIndex(g *graph.Streaming, part *dflow.Partition, flowBlocked bool) *EdgeIndex {
	return NewEdgeIndexInto(nil, g, part, flowBlocked)
}

// NewEdgeIndexInto is NewEdgeIndex rebuilding into prev's storage when its
// capacity suffices (nil prev allocates). Engines refresh the model after
// every batch; reuse makes that refresh allocation-free at steady state.
func NewEdgeIndexInto(prev *EdgeIndex, g *graph.Streaming, part *dflow.Partition, flowBlocked bool) *EdgeIndex {
	return newEdgeIndex(prev, g, part, flowBlocked, EdgeRegion, func(v graph.VertexID) int { return g.OutDegree(v) })
}

// NewInEdgeIndex builds the in-adjacency address model (selective
// refinement pulls over in-edges, which live in their own array).
func NewInEdgeIndex(g *graph.Streaming, part *dflow.Partition, flowBlocked bool) *EdgeIndex {
	return NewInEdgeIndexInto(nil, g, part, flowBlocked)
}

// NewInEdgeIndexInto is NewInEdgeIndex with prev's storage reused.
func NewInEdgeIndexInto(prev *EdgeIndex, g *graph.Streaming, part *dflow.Partition, flowBlocked bool) *EdgeIndex {
	return newEdgeIndex(prev, g, part, flowBlocked, InEdgeRegion, func(v graph.VertexID) int { return g.InDegree(v) })
}

func newEdgeIndex(prev *EdgeIndex, g *graph.Streaming, part *dflow.Partition, flowBlocked bool, region uint64, degree func(graph.VertexID) int) *EdgeIndex {
	n := g.NumVertices()
	e := prev
	if e == nil {
		e = &EdgeIndex{}
	}
	e.region = region
	if cap(e.base) >= n {
		e.base = e.base[:n]
	} else {
		e.base = make([]int64, n)
	}
	var next int64
	if flowBlocked && part != nil {
		for f := int32(0); int(f) < part.NumFlows(); f++ {
			for _, v := range part.Members(f) {
				e.base[v] = next
				next += int64(degree(graph.VertexID(v)))
			}
		}
	} else {
		for v := 0; v < n; v++ {
			e.base[v] = next
			next += int64(degree(graph.VertexID(v)))
		}
	}
	return e
}

// Addr returns the modeled address of the i-th adjacency entry of v.
func (e *EdgeIndex) Addr(v uint32, i int) uint64 {
	return e.region + uint64(e.base[v]+int64(i))*edgeSlotBytes
}
