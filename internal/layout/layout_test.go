package layout

import (
	"sync"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/dflow"
	"repro/internal/etree"
	"repro/internal/gen"
	"repro/internal/graph"
)

func buildParts(t *testing.T) (*graph.Streaming, *dflow.Partition) {
	t.Helper()
	cfg := gen.TestDataset(5)
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	f := etree.NewForest(g, etree.Forward)
	p := dflow.NewPartition(f, 32)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestStoreRoundTrip(t *testing.T) {
	_, p := buildParts(t)
	s := NewFlowStore(p, 1)
	for v := uint32(0); int(v) < s.Len(); v += 7 {
		s.Set(v, float64(v)*1.5)
	}
	for v := uint32(0); int(v) < s.Len(); v += 7 {
		if got := s.Get(v); got != float64(v)*1.5 {
			t.Fatalf("Get(%d) = %v", v, got)
		}
	}
}

func TestSlotBijection(t *testing.T) {
	_, p := buildParts(t)
	s := NewFlowStore(p, 1)
	seen := make([]bool, s.Len())
	for v := uint32(0); int(v) < s.Len(); v++ {
		sl := s.Slot(v)
		if seen[sl] {
			t.Fatalf("slot %d assigned twice", sl)
		}
		seen[sl] = true
		if s.VertexAt(sl) != v {
			t.Fatalf("VertexAt(Slot(%d)) = %d", v, s.VertexAt(sl))
		}
	}
}

func TestFlowStoreBlocksAreContiguous(t *testing.T) {
	_, p := buildParts(t)
	s := NewFlowStore(p, 1)
	for f := int32(0); int(f) < p.NumFlows(); f++ {
		members := p.Members(f)
		for i := 1; i < len(members); i++ {
			if s.Slot(members[i]) != s.Slot(members[i-1])+1 {
				t.Fatalf("flow %d not contiguous at member %d", f, i)
			}
		}
	}
}

func TestScatteredStoreIdentity(t *testing.T) {
	s := NewScatteredStore(10, 1)
	for v := uint32(0); v < 10; v++ {
		if s.Slot(v) != int32(v) {
			t.Fatalf("scattered slot(%d) = %d", v, s.Slot(v))
		}
	}
}

func TestVectorOps(t *testing.T) {
	s := NewScatteredStore(4, 3)
	s.SetVec(2, []float64{1, 2, 3})
	buf := make([]float64, 3)
	got := s.GetVec(2, buf)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("GetVec = %v", got)
	}
	if s.GetAt(2, 1) != 2 {
		t.Fatalf("GetAt = %v", s.GetAt(2, 1))
	}
	s.SetAt(2, 1, 9)
	if s.GetAt(2, 1) != 9 {
		t.Fatal("SetAt lost the write")
	}
	// Other vertices untouched.
	if s.GetAt(1, 0) != 0 {
		t.Fatal("write leaked to another vertex")
	}
}

func TestFill(t *testing.T) {
	s := NewScatteredStore(8, 2)
	s.Fill(3.25)
	for v := uint32(0); v < 8; v++ {
		for d := 0; d < 2; d++ {
			if s.GetAt(v, d) != 3.25 {
				t.Fatalf("Fill missed (%d,%d)", v, d)
			}
		}
	}
}

func TestConcurrentAccessIsRaceFree(t *testing.T) {
	// Run with -race: concurrent Set/Get through atomics must not trip it.
	s := NewScatteredStore(64, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := uint32((w*17 + i) % 64)
				s.Set(v, float64(i))
				_ = s.Get((v + 1) % 64)
			}
		}(w)
	}
	wg.Wait()
}

func TestAddrRegionsDisjoint(t *testing.T) {
	g, p := buildParts(t)
	s := NewFlowStore(p, 1)
	e := NewEdgeIndex(g, p, true)
	if s.Addr(0) >= EdgeRegion {
		t.Fatal("value address escaped its region")
	}
	if a := e.Addr(0, 0); a < EdgeRegion || a >= MetaRegion {
		t.Fatalf("edge address %x outside its region", a)
	}
}

// The central claim of Fig 13: walking a flow's vertices under the
// specialized layout produces far fewer cache misses than under the
// scattered layout.
func TestFlowBlockedLocalityBeatsScattered(t *testing.T) {
	_, p := buildParts(t)
	flowStore := NewFlowStore(p, 1)
	scatStore := NewScatteredStore(len(p.FlowOf), 1)

	count := func(s *Store) uint64 {
		// Deliberately tiny cache so the access *pattern* decides the miss
		// count (the full 512-vertex value array would fit in 4 KiB).
		sim := cachesim.NewSim(cachesim.Config{SizeBytes: 512, LineBytes: 64, Ways: 2})
		for f := int32(0); int(f) < p.NumFlows(); f++ {
			for _, v := range p.Members(f) {
				sim.Access(s.Addr(v), false, cachesim.ClassVertex)
			}
		}
		return sim.Drain().Misses
	}
	fm, sm := count(flowStore), count(scatStore)
	if fm*2 > sm {
		t.Fatalf("flow-blocked misses %d not well below scattered %d", fm, sm)
	}
}

func TestEdgeIndexCoversAllEdges(t *testing.T) {
	g, p := buildParts(t)
	for _, blocked := range []bool{true, false} {
		e := NewEdgeIndex(g, p, blocked)
		seen := map[uint64]bool{}
		for v := 0; v < g.NumVertices(); v++ {
			for i := 0; i < g.OutDegree(graph.VertexID(v)); i++ {
				a := e.Addr(uint32(v), i)
				if seen[a] {
					t.Fatalf("blocked=%v: edge slot address %x reused", blocked, a)
				}
				seen[a] = true
			}
		}
		if len(seen) != g.NumEdges() {
			t.Fatalf("blocked=%v: %d edge slots for %d edges", blocked, len(seen), g.NumEdges())
		}
	}
}

func BenchmarkStoreGetSet(b *testing.B) {
	s := NewScatteredStore(1<<16, 1)
	for i := 0; i < b.N; i++ {
		v := uint32(i) & (1<<16 - 1)
		s.Set(v, float64(i))
		_ = s.Get(v)
	}
}
