package gen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestGenerateDeterminism(t *testing.T) {
	for _, kind := range []Kind{RMAT, ER, BA} {
		cfg := Config{Name: "t", Kind: kind, NumV: 200, NumE: 1000, Seed: 5}
		a := Generate(cfg)
		b := Generate(cfg)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: edge %d differs", kind, i)
			}
		}
	}
}

func TestGenerateNoSelfLoopsNoDuplicates(t *testing.T) {
	for _, kind := range []Kind{RMAT, ER, BA} {
		cfg := Config{Name: "t", Kind: kind, NumV: 100, NumE: 2000, Seed: 9}
		edges := Generate(cfg)
		type pair struct{ s, d graph.VertexID }
		seen := map[pair]bool{}
		for _, e := range edges {
			if e.Src == e.Dst {
				t.Fatalf("%v: self loop %v", kind, e)
			}
			if int(e.Src) >= cfg.NumV || int(e.Dst) >= cfg.NumV {
				t.Fatalf("%v: vertex out of range %v", kind, e)
			}
			if e.W < 1 {
				t.Fatalf("%v: non-positive weight %v", kind, e)
			}
			k := pair{e.Src, e.Dst}
			if seen[k] {
				t.Fatalf("%v: duplicate edge %v", kind, e)
			}
			seen[k] = true
		}
	}
}

// RMAT should produce a markedly more skewed degree distribution than ER.
func TestRMATSkew(t *testing.T) {
	deg := func(edges []graph.Edge, n int) []int {
		d := make([]int, n)
		for _, e := range edges {
			d[e.Src]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(d)))
		return d
	}
	n, m := 1024, 16384
	rm := deg(Generate(Config{Kind: RMAT, NumV: n, NumE: m, Seed: 3, A: 0.57, B: 0.19, C: 0.19}), n)
	er := deg(Generate(Config{Kind: ER, NumV: n, NumE: m, Seed: 3}), n)
	// Compare the share of edges owned by the top 1% of vertices.
	top := n / 100
	share := func(d []int) float64 {
		s, tot := 0, 0
		for i, v := range d {
			tot += v
			if i < top {
				s += v
			}
		}
		return float64(s) / float64(tot)
	}
	if share(rm) < share(er)*1.5 {
		t.Fatalf("RMAT top-1%% share %.3f not much larger than ER %.3f", share(rm), share(er))
	}
}

func TestDatasetPresets(t *testing.T) {
	for _, code := range DatasetCodes() {
		cfg := Dataset(code)
		if cfg.Name != code {
			t.Fatalf("Dataset(%q).Name = %q", code, cfg.Name)
		}
		if cfg.NumV <= 0 || cfg.NumE <= 0 {
			t.Fatalf("Dataset(%q) has empty dims", code)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset code should panic")
		}
	}()
	Dataset("XX")
}

func TestDatasetRelativeSizes(t *testing.T) {
	// Table I ordering: FT > TT > TW > UK >> LJ by edge count.
	var sizes []int
	for _, code := range []string{"FT", "TT", "TW", "UK", "LJ"} {
		sizes = append(sizes, Dataset(code).NumE)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("dataset sizes not descending: %v", sizes)
		}
	}
}

func TestBuildWorkloadSplit(t *testing.T) {
	cfg := TestDataset(1)
	edges := Generate(cfg)
	sc := DefaultStream(100, 5, 2)
	w := BuildWorkload(cfg.NumV, edges, sc)
	if len(w.Batches) != 5 {
		t.Fatalf("batches = %d", len(w.Batches))
	}
	frac := float64(len(w.Initial)) / float64(len(edges))
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("initial fraction = %v", frac)
	}
	for bi, b := range w.Batches {
		if len(b) == 0 || len(b) > sc.BatchSize {
			t.Fatalf("batch %d size %d out of range", bi, len(b))
		}
		dels := b.Deletions()
		ratio := float64(dels) / float64(len(b))
		if ratio > 0.2 {
			t.Fatalf("batch %d deletion ratio %.2f too high", bi, ratio)
		}
	}
}

// Every batch must apply cleanly: additions of absent edges, deletions of
// present edges — the sampler tracks the live edge set.
func TestWorkloadBatchesApplyCleanly(t *testing.T) {
	cfg := TestDataset(4)
	edges := Generate(cfg)
	w := BuildWorkload(cfg.NumV, edges, DefaultStream(200, 8, 11))
	g := graph.FromEdges(w.NumV, w.Initial)
	for bi, b := range w.Batches {
		applied := g.ApplyBatch(b)
		if len(applied) != len(b) {
			t.Fatalf("batch %d: only %d/%d updates took effect", bi, len(applied), len(b))
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("batch %d corrupted graph: %v", bi, err)
		}
	}
}

func TestWorkloadNoIntraBatchConflicts(t *testing.T) {
	cfg := TestDataset(8)
	edges := Generate(cfg)
	w := BuildWorkload(cfg.NumV, edges, StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.5, BatchSize: 300, NumBatches: 6, Seed: 3})
	type pair struct{ s, d graph.VertexID }
	for bi, b := range w.Batches {
		seen := map[pair]bool{}
		for _, u := range b {
			k := pair{u.Src, u.Dst}
			if seen[k] {
				t.Fatalf("batch %d touches %v twice", bi, k)
			}
			seen[k] = true
		}
	}
}

func TestStreamSynthesizesWhenExhausted(t *testing.T) {
	// Tiny edge list + many large batches: the sampler must keep producing.
	cfg := Config{Kind: ER, NumV: 64, NumE: 100, Seed: 6}
	edges := Generate(cfg)
	w := BuildWorkload(cfg.NumV, edges, DefaultStream(500, 4, 9))
	total := 0
	for _, b := range w.Batches {
		total += len(b)
	}
	if total < 1000 {
		t.Fatalf("stream dried up: only %d updates total", total)
	}
}

func TestScaleFactorParsing(t *testing.T) {
	t.Setenv("GRAPHFLY_SCALE", "2.5")
	if f := ScaleFactor(); f != 2.5 {
		t.Fatalf("ScaleFactor = %v", f)
	}
	t.Setenv("GRAPHFLY_SCALE", "garbage")
	if f := ScaleFactor(); f != 1.0 {
		t.Fatalf("ScaleFactor with garbage = %v", f)
	}
	t.Setenv("GRAPHFLY_SCALE", "-1")
	if f := ScaleFactor(); f != 1.0 {
		t.Fatalf("ScaleFactor with negative = %v", f)
	}
}

func TestDatasetWorkloadEndToEnd(t *testing.T) {
	t.Setenv("GRAPHFLY_SCALE", "0.01")
	w := DatasetWorkload("LJ", DefaultStream(50, 2, 1))
	if w.NumV == 0 || len(w.Initial) == 0 || len(w.Batches) != 2 {
		t.Fatalf("workload empty: %d vertices, %d initial, %d batches",
			w.NumV, len(w.Initial), len(w.Batches))
	}
}
