// Package gen produces deterministic synthetic graphs and edge-update
// streams that stand in for the paper's proprietary-scale datasets
// (Friendster, Twitter MPI, Twitter, UKDomain, LiveJournal).
//
// The paper's experiments depend on two topological properties that the
// generators reproduce: a skewed (power-law-like) degree distribution and a
// locality structure that decomposes into many dependency-flows. RMAT and
// preferential attachment both yield those properties at any scale, so the
// *shapes* of GraphFly's results survive the scale-down (see DESIGN.md §2).
//
// Streams follow the paper's methodology (§VII-A): 50 % of the edges form
// the initial graph; the remainder arrive as batched additions, mixed with
// deletions of existing edges drawn with a configurable probability.
package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Kind selects a generator family.
type Kind int

const (
	// RMAT is the recursive-matrix generator (Chakrabarti et al.), the
	// standard stand-in for social-network topology (Graph500 uses it).
	RMAT Kind = iota
	// ER is the Erdős–Rényi uniform random graph; used by tests as the
	// "no skew" control.
	ER
	// BA is Barabási–Albert preferential attachment: strong power law,
	// models web/social growth.
	BA
)

func (k Kind) String() string {
	switch k {
	case RMAT:
		return "rmat"
	case ER:
		return "er"
	case BA:
		return "ba"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config describes a synthetic dataset.
type Config struct {
	Name      string
	Kind      Kind
	NumV      int
	NumE      int // target directed edge count (pre-dedup)
	Seed      uint64
	MaxWeight int // weights uniform in [1, MaxWeight]

	// RMAT partition probabilities; must sum to <= 1 (D = 1-A-B-C).
	A, B, C float64
}

// Generate produces the full edge list for the configuration. Self loops
// and duplicate (src,dst) pairs are removed, so the returned list may be
// slightly smaller than cfg.NumE; order is deterministic.
func Generate(cfg Config) []graph.Edge {
	r := rng.New(cfg.Seed)
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 8
	}
	var raw []graph.Edge
	switch cfg.Kind {
	case RMAT:
		raw = genRMAT(cfg, r)
	case ER:
		raw = genER(cfg, r)
	case BA:
		raw = genBA(cfg, r)
	default:
		panic(fmt.Sprintf("gen: unknown kind %v", cfg.Kind))
	}
	return dedup(raw)
}

func genRMAT(cfg Config, r *rng.Xoshiro256) []graph.Edge {
	a, b, c := cfg.A, cfg.B, cfg.C
	if a == 0 && b == 0 && c == 0 {
		a, b, c = 0.57, 0.19, 0.19 // Graph500 defaults
	}
	// Number of bits; vertices outside [0,NumV) are re-drawn by rejection.
	bits := 0
	for 1<<bits < cfg.NumV {
		bits++
	}
	edges := make([]graph.Edge, 0, cfg.NumE)
	for len(edges) < cfg.NumE {
		var src, dst uint32
		for {
			src, dst = 0, 0
			for i := 0; i < bits; i++ {
				p := r.Float64()
				switch {
				case p < a:
					// top-left quadrant: no bits set
				case p < a+b:
					dst |= 1 << i
				case p < a+b+c:
					src |= 1 << i
				default:
					src |= 1 << i
					dst |= 1 << i
				}
			}
			if int(src) < cfg.NumV && int(dst) < cfg.NumV {
				break
			}
		}
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, W: r.Weight(cfg.MaxWeight)})
	}
	return edges
}

func genER(cfg Config, r *rng.Xoshiro256) []graph.Edge {
	edges := make([]graph.Edge, 0, cfg.NumE)
	for len(edges) < cfg.NumE {
		src := graph.VertexID(r.Intn(cfg.NumV))
		dst := graph.VertexID(r.Intn(cfg.NumV))
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, W: r.Weight(cfg.MaxWeight)})
	}
	return edges
}

func genBA(cfg Config, r *rng.Xoshiro256) []graph.Edge {
	// Preferential attachment by the repeated-endpoint trick: keep a slice
	// of endpoints; sampling uniformly from it is degree-proportional.
	// Each edge's direction is randomized: pure new->old orientation would
	// make low-ID sources reach almost nothing, which web graphs (link both
	// ways across page ages) do not exhibit.
	perNew := cfg.NumE / cfg.NumV
	if perNew < 1 {
		perNew = 1
	}
	endpoints := make([]graph.VertexID, 0, 2*cfg.NumE)
	edges := make([]graph.Edge, 0, cfg.NumE)
	// Small seed clique.
	seedN := perNew + 1
	if seedN > cfg.NumV {
		seedN = cfg.NumV
	}
	for i := 1; i < seedN; i++ {
		e := graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i - 1), W: r.Weight(cfg.MaxWeight)}
		edges = append(edges, e)
		endpoints = append(endpoints, e.Src, e.Dst)
	}
	for v := seedN; v < cfg.NumV && len(edges) < cfg.NumE; v++ {
		for k := 0; k < perNew && len(edges) < cfg.NumE; k++ {
			var dst graph.VertexID
			if len(endpoints) == 0 {
				dst = graph.VertexID(r.Intn(v))
			} else {
				dst = endpoints[r.Intn(len(endpoints))]
			}
			if dst == graph.VertexID(v) {
				continue
			}
			src := graph.VertexID(v)
			if r.Float64() < 0.5 {
				src, dst = dst, src
			}
			e := graph.Edge{Src: src, Dst: dst, W: r.Weight(cfg.MaxWeight)}
			edges = append(edges, e)
			endpoints = append(endpoints, e.Src, e.Dst)
		}
	}
	// Top up with preferential extra edges if the target was not reached.
	for len(edges) < cfg.NumE && len(endpoints) >= 2 {
		src := endpoints[r.Intn(len(endpoints))]
		dst := endpoints[r.Intn(len(endpoints))]
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, W: r.Weight(cfg.MaxWeight)})
	}
	return edges
}

func dedup(edges []graph.Edge) []graph.Edge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	out := edges[:0]
	for i, e := range edges {
		if i > 0 && e.Src == out[len(out)-1].Src && e.Dst == out[len(out)-1].Dst {
			continue
		}
		out = append(out, e)
	}
	return out
}
