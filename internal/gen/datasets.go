package gen

import (
	"os"
	"strconv"
)

// Dataset presets mirror Table I of the paper, scaled so that every
// experiment runs on a laptop. Scale 1.0 targets roughly 1/1000 of each
// graph's edge count while preserving each dataset's character:
//
//	FT (Friendster)   — RMAT, moderately skewed, densest
//	TT (Twitter MPI)  — RMAT, highly skewed
//	TW (Twitter)      — RMAT, highly skewed, smaller
//	UK (UKDomain)     — BA, web-like with long attachment chains
//	LJ (LiveJournal)  — RMAT, the small test graph
//
// The environment variable GRAPHFLY_SCALE multiplies vertex and edge counts
// for larger runs (e.g. GRAPHFLY_SCALE=10).

// ScaleFactor returns the global dataset scale from GRAPHFLY_SCALE
// (default 1.0).
func ScaleFactor() float64 {
	s := os.Getenv("GRAPHFLY_SCALE")
	if s == "" {
		return 1.0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 {
		return 1.0
	}
	return f
}

func scaled(base int, f float64) int {
	v := int(float64(base) * f)
	if v < 16 {
		v = 16
	}
	return v
}

// Dataset returns the preset configuration for one of the paper's five
// graphs, identified by its two-letter code.
func Dataset(code string) Config {
	f := ScaleFactor()
	switch code {
	case "FT": // Friendster: 68.3M V / 2.5B E  -> scaled
		return Config{Name: "FT", Kind: RMAT, NumV: scaled(70_000, f), NumE: scaled(2_500_000, f),
			Seed: 0xF7, A: 0.55, B: 0.20, C: 0.20, MaxWeight: 8}
	case "TT": // Twitter MPI: 52.6M V / 2.0B E
		return Config{Name: "TT", Kind: RMAT, NumV: scaled(53_000, f), NumE: scaled(2_000_000, f),
			Seed: 0x77, A: 0.60, B: 0.19, C: 0.19, MaxWeight: 8}
	case "TW": // Twitter: 41.7M V / 1.5B E
		return Config{Name: "TW", Kind: RMAT, NumV: scaled(42_000, f), NumE: scaled(1_500_000, f),
			Seed: 0x7A, A: 0.60, B: 0.19, C: 0.19, MaxWeight: 8}
	case "UK": // UKDomain: 39.5M V / 1.0B E
		return Config{Name: "UK", Kind: BA, NumV: scaled(40_000, f), NumE: scaled(1_000_000, f),
			Seed: 0x0B, MaxWeight: 8}
	case "LJ": // LiveJournal: 4.8M V / 69M E
		return Config{Name: "LJ", Kind: RMAT, NumV: scaled(4_800, f), NumE: scaled(69_000, f),
			Seed: 0x13, A: 0.57, B: 0.19, C: 0.19, MaxWeight: 8}
	}
	panic("gen: unknown dataset code " + code)
}

// DatasetCodes lists the five paper datasets in the order Table I uses.
func DatasetCodes() []string { return []string{"FT", "TT", "TW", "UK", "LJ"} }

// TestDataset returns a small graph for unit tests: deterministic,
// a few thousand edges, independent of GRAPHFLY_SCALE.
func TestDataset(seed uint64) Config {
	return Config{Name: "test", Kind: RMAT, NumV: 512, NumE: 4096,
		Seed: seed, A: 0.57, B: 0.19, C: 0.19, MaxWeight: 8}
}
