package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// StreamConfig controls how a static edge list is turned into an initial
// graph plus a stream of update batches, following the paper's methodology:
// "we use 50% of the graph as the initial graph, and the rest of the edges
// are added with graph mutations ... edges are deleted from the graph with
// 0.1 probability" (§VII-A).
type StreamConfig struct {
	InitialFraction float64 // fraction of edges in G0 (paper: 0.5)
	DeleteRatio     float64 // fraction of each batch that is deletions (paper default: 0.1)
	BatchSize       int     // updates per batch
	NumBatches      int     // number of batches to emit
	Seed            uint64
}

// DefaultStream mirrors the paper's default workload: 50 % warm start,
// 10 % deletions, batches of the given size.
func DefaultStream(batchSize, numBatches int, seed uint64) StreamConfig {
	return StreamConfig{
		InitialFraction: 0.5,
		DeleteRatio:     0.1,
		BatchSize:       batchSize,
		NumBatches:      numBatches,
		Seed:            seed,
	}
}

// Workload is a fully materialized streaming experiment: the number of
// vertices, the initial edges, and the update batches.
type Workload struct {
	NumV    int
	Initial []graph.Edge
	Batches []graph.Batch
}

// BuildWorkload splits edges into the initial graph and update batches.
// Additions are drawn (in order) from the held-out edges; deletions are
// sampled from edges currently present in the evolving graph, never
// colliding with an addition of the same pair inside the same batch.
func BuildWorkload(numV int, edges []graph.Edge, sc StreamConfig) Workload {
	r := rng.New(sc.Seed)
	if sc.InitialFraction <= 0 || sc.InitialFraction > 1 {
		sc.InitialFraction = 0.5
	}
	// Shuffle a copy so the split is random but deterministic.
	shuffled := append([]graph.Edge(nil), edges...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	nInit := int(float64(len(shuffled)) * sc.InitialFraction)
	initial := shuffled[:nInit]
	pending := shuffled[nInit:] // future additions, consumed in order

	// live tracks edges currently in the graph, as a slice for O(1)
	// sampling plus an index map for O(1) removal.
	type pair struct{ s, d graph.VertexID }
	live := make([]graph.Edge, len(initial))
	copy(live, initial)
	liveIdx := make(map[pair]int, len(live))
	for i, e := range live {
		liveIdx[pair{e.Src, e.Dst}] = i
	}
	removeLive := func(i int) graph.Edge {
		e := live[i]
		last := len(live) - 1
		live[i] = live[last]
		liveIdx[pair{live[i].Src, live[i].Dst}] = i
		live = live[:last]
		delete(liveIdx, pair{e.Src, e.Dst})
		return e
	}
	addLive := func(e graph.Edge) {
		if _, ok := liveIdx[pair{e.Src, e.Dst}]; ok {
			return
		}
		liveIdx[pair{e.Src, e.Dst}] = len(live)
		live = append(live, e)
	}

	w := Workload{NumV: numV, Initial: initial}
	nextAdd := 0
	for b := 0; b < sc.NumBatches; b++ {
		batch := make(graph.Batch, 0, sc.BatchSize)
		inBatch := make(map[pair]bool, sc.BatchSize)
		nDel := int(float64(sc.BatchSize) * sc.DeleteRatio)
		nAdd := sc.BatchSize - nDel

		for i := 0; i < nAdd; i++ {
			var e graph.Edge
			if nextAdd < len(pending) {
				e = pending[nextAdd]
				nextAdd++
			} else {
				// Pending pool exhausted: synthesize fresh random edges so
				// long streams keep flowing (documented departure from the
				// finite static file, needed for Fig 14b's large batches).
				e = graph.Edge{
					Src: graph.VertexID(r.Intn(numV)),
					Dst: graph.VertexID(r.Intn(numV)),
					W:   r.Weight(8),
				}
				if e.Src == e.Dst {
					i--
					continue
				}
			}
			k := pair{e.Src, e.Dst}
			if inBatch[k] {
				continue
			}
			inBatch[k] = true
			batch = append(batch, graph.Update{Edge: e})
			addLive(e)
		}
		for i := 0; i < nDel && len(live) > 0; i++ {
			idx := r.Intn(len(live))
			e := live[idx]
			k := pair{e.Src, e.Dst}
			if inBatch[k] {
				continue // never add and delete the same pair in one batch
			}
			inBatch[k] = true
			removeLive(idx)
			batch = append(batch, graph.Update{Edge: e, Del: true})
		}
		w.Batches = append(w.Batches, batch)
	}
	return w
}

// DatasetWorkload is the one-call helper used throughout the experiments:
// generate the dataset, then build its stream.
func DatasetWorkload(code string, sc StreamConfig) Workload {
	cfg := Dataset(code)
	edges := Generate(cfg)
	return BuildWorkload(cfg.NumV, edges, sc)
}
