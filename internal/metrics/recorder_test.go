package metrics

import (
	"sync"
	"testing"
)

// Error-path behavior of BatchRecorder's lifecycle: Close is idempotent,
// Observe after Close is dropped (not recorded, not fed to the registry),
// and reads keep working on a sealed recorder.

func TestBatchRecorderCloseIdempotent(t *testing.T) {
	reg := NewRegistry()
	r := NewBatchRecorder(reg)
	r.Observe(BatchPoint{TotalNs: 10, Applied: 1})
	if err := r.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !r.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if got := len(r.Points()); got != 1 {
		t.Fatalf("points after double close: %d", got)
	}
}

func TestBatchRecorderObserveAfterClose(t *testing.T) {
	reg := NewRegistry()
	r := NewBatchRecorder(reg)
	r.Observe(BatchPoint{TotalNs: 10, Applied: 2})
	r.Close()
	r.Observe(BatchPoint{TotalNs: 99, Applied: 7}) // must be dropped
	if got := len(r.Points()); got != 1 {
		t.Fatalf("sealed recorder grew to %d points", got)
	}
	if got := reg.Counter("batch.count").Value(); got != 1 {
		t.Fatalf("registry saw %d batches, want 1", got)
	}
	if got := reg.Counter("updates.applied").Value(); got != 2 {
		t.Fatalf("registry saw %d applied updates, want 2", got)
	}
	// Reads still work after sealing.
	phases, total := r.PhaseSnapshots()
	if len(phases) == 0 || total.Count != 1 {
		t.Fatalf("sealed reads broken: %d phases, total count %d", len(phases), total.Count)
	}
}

func TestBatchRecorderCloseOnNil(t *testing.T) {
	var r *BatchRecorder
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Closed() {
		t.Fatal("nil recorder reports closed")
	}
	r.Observe(BatchPoint{}) // must not panic
}

// Concurrent observers racing a Close must never corrupt the sequence: the
// recorder ends with only points observed before the seal won the lock.
func TestBatchRecorderConcurrentClose(t *testing.T) {
	r := NewBatchRecorder(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe(BatchPoint{TotalNs: int64(i)})
			}
		}()
	}
	r.Close()
	wg.Wait()
	n := len(r.Points())
	if n > 800 {
		t.Fatalf("recorded %d points", n)
	}
	if r.Observe(BatchPoint{}); len(r.Points()) != n {
		t.Fatal("sealed recorder still grows")
	}
}
