// Package metrics is the observability substrate of the repository: cheap
// atomic counters and gauges, log-bucketed duration histograms with
// p50/p95/p99 quantiles, and a batch recorder that turns the per-phase
// timings of engine.BatchStats into a machine-readable perf trajectory
// (cmd/bench -json writes them into BENCH_graphfly.json).
//
// The layer follows the same no-op discipline as cachesim.Probe: every
// integration point is nil-guarded (engine.Config.Metrics == nil, expr
// Scale.Rec == nil), so a disabled registry costs one pointer comparison
// per batch — nothing on the per-edge hot paths.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores f.
func (g *Gauge) Set(f float64) { g.bits.Store(math.Float64bits(f)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records int64 samples (typically nanoseconds) into
// log-spaced buckets with 16 linear sub-buckets per power of two, giving
// quantile estimates with bounded relative error (<= 1/16) at fixed
// memory (no per-sample allocation). All methods are safe for concurrent
// use; Observe is a single atomic add.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	histSubBits = 4 // 16 linear sub-buckets per octave
	histSub     = 1 << histSubBits
	// Values < histSub land in exact unit buckets; above that each octave
	// [2^k, 2^(k+1)) splits into histSub buckets. 63 octaves cover int64.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// bucketOf maps a non-negative sample to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	sub := int((v >> (uint(msb) - histSubBits)) & (histSub - 1))
	return histSub + (msb-histSubBits)*histSub + sub
}

// bucketUpper returns the inclusive upper bound of bucket i, the value
// reported for quantiles that land in it.
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	i -= histSub
	msb := i/histSub + histSubBits
	sub := i % histSub
	lo := int64(1) << uint(msb)
	step := lo >> histSubBits
	return lo + int64(sub+1)*step - 1
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]).
// The true quantile lies within one sub-bucket (<= 1/16 relative error).
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based.
	rank := int64(q*float64(n-1)) + 1
	var cum int64
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			cum += c
			if cum >= rank {
				u := bucketUpper(i)
				if m := h.max.Load(); u > m {
					return m // tightest known bound in the last bucket
				}
				return u
			}
		}
	}
	return h.max.Load()
}

// Snapshot captures the histogram's summary statistics.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		SumNs: h.Sum(),
		MaxNs: h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// HistSnapshot is the JSON form of a histogram summary. Field names keep
// the _ns suffix because every histogram in this repository records
// durations in nanoseconds.
type HistSnapshot struct {
	Count int64   `json:"count"`
	SumNs int64   `json:"sum_ns"`
	MaxNs int64   `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P95   int64   `json:"p95_ns"`
	P99   int64   `json:"p99_ns"`
}

// Registry is a concurrency-safe, name-indexed collection of metrics.
// Lookups take a read lock; the returned metric objects are lock-free, so
// hot paths should hold onto them rather than re-resolving names.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, ready for JSON.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// String renders the snapshot as sorted "name value" lines for CLI output.
func (s Snapshot) String() string {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", n, v))
	}
	for n, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s count=%d mean=%.0fns p50=%dns p95=%dns p99=%dns max=%dns",
			n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.MaxNs))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// BatchPoint is one processed batch's phase breakdown, in nanoseconds,
// mirroring engine.BatchStats (the engine package converts; metrics stays
// dependency-free). These are the spans Figs 11/14/15 decompose.
type BatchPoint struct {
	ApplyNs    int64 `json:"apply_ns"`
	MaintainNs int64 `json:"maintain_ns"`
	TrimNs     int64 `json:"trim_ns"`
	ScheduleNs int64 `json:"schedule_ns"`
	ComputeNs  int64 `json:"compute_ns"`
	TotalNs    int64 `json:"total_ns"`
	Applied    int   `json:"applied"`
	// Allocs/AllocBytes are the heap allocation deltas
	// (runtime.ReadMemStats Mallocs/TotalAlloc) the harness measured
	// around this batch; zero when the run doesn't sample memory.
	Allocs     int64 `json:"allocs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// PhaseNames are the per-batch phases a BatchPoint decomposes, in
// execution order. Report phase maps are keyed by these names.
var PhaseNames = []string{"apply", "maintain", "trim", "schedule", "compute"}

// phaseNs returns the named phase's span from p.
func (p BatchPoint) phaseNs(name string) int64 {
	switch name {
	case "apply":
		return p.ApplyNs
	case "maintain":
		return p.MaintainNs
	case "trim":
		return p.TrimNs
	case "schedule":
		return p.ScheduleNs
	case "compute":
		return p.ComputeNs
	}
	return 0
}

// BatchRecorder accumulates the per-batch perf trajectory: the exact
// point sequence (for the JSON report) plus per-phase histograms and a
// whole-batch latency histogram in the backing registry. A nil recorder
// is a no-op, so call sites need no guards.
type BatchRecorder struct {
	mu     sync.Mutex
	points []BatchPoint
	reg    *Registry
	closed bool
}

// NewBatchRecorder returns a recorder feeding reg (which may be nil; the
// point sequence still accumulates).
func NewBatchRecorder(reg *Registry) *BatchRecorder {
	return &BatchRecorder{reg: reg}
}

// Observe records one batch. Safe on a nil recorder; a point observed
// after Close is dropped rather than corrupting the sealed trajectory.
func (r *BatchRecorder) Observe(p BatchPoint) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.points = append(r.points, p)
	r.mu.Unlock()
	if r.reg == nil {
		return
	}
	for _, name := range PhaseNames {
		r.reg.Histogram("phase." + name + "_ns").Observe(p.phaseNs(name))
	}
	r.reg.Histogram("batch.total_ns").Observe(p.TotalNs)
	r.reg.Counter("batch.count").Inc()
	r.reg.Counter("updates.applied").Add(int64(p.Applied))
	if p.Allocs > 0 || p.AllocBytes > 0 {
		r.reg.Histogram("batch.allocs").Observe(p.Allocs)
		r.reg.Histogram("batch.alloc_bytes").Observe(p.AllocBytes)
	}
}

// Close seals the recorder: the point sequence becomes immutable and later
// Observe calls are dropped. Idempotent — closing twice (the report writer
// and a deferred cleanup both flushing) is safe and returns nil both times.
// Points and PhaseSnapshots keep working after Close. Safe on nil.
func (r *BatchRecorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return nil
}

// Closed reports whether the recorder has been sealed.
func (r *BatchRecorder) Closed() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Points returns a copy of the recorded sequence.
func (r *BatchRecorder) Points() []BatchPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]BatchPoint(nil), r.points...)
}

// Registry returns the backing registry (nil when detached).
func (r *BatchRecorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// PhaseSnapshots summarizes the recorder's per-phase histograms keyed by
// PhaseNames, plus the whole-batch latency histogram.
func (r *BatchRecorder) PhaseSnapshots() (map[string]HistSnapshot, HistSnapshot) {
	if r == nil || r.reg == nil {
		return nil, HistSnapshot{}
	}
	phases := make(map[string]HistSnapshot, len(PhaseNames))
	for _, name := range PhaseNames {
		phases[name] = r.reg.Histogram("phase." + name + "_ns").Snapshot()
	}
	return phases, r.reg.Histogram("batch.total_ns").Snapshot()
}
