package metrics

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := r.Counter("c").Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g")
	g.Set(3.5)
	if got := r.Gauge("g").Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	// Names are namespaces: distinct kinds may share a name.
	if r.Counter("g").Value() != 0 {
		t.Fatal("counter aliased a gauge")
	}
}

func TestHistogramBucketsRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// bucket indexes must be monotone in the sample value.
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64 / 2} {
		b := bucketOf(v)
		if b <= prev && v > 0 {
			// Buckets may repeat for nearby values but never go backwards.
			if b < prev {
				t.Fatalf("bucketOf(%d) = %d below previous %d", v, b, prev)
			}
		}
		prev = b
		if u := bucketUpper(b); u < v {
			t.Fatalf("bucketUpper(bucketOf(%d)) = %d < sample", v, u)
		}
		if b2 := bucketOf(bucketUpper(b)); b2 != b {
			t.Fatalf("bucket %d upper bound %d maps to bucket %d", b, bucketUpper(b), b2)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform samples in [0, 1e6): quantile estimates must be within one
	// sub-bucket (1/16 relative error) above the true quantile.
	var h Histogram
	x := rng.New(7)
	n := 20000
	for i := 0; i < n; i++ {
		h.Observe(int64(x.Intn(1_000_000)))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		want := int64(q * 1_000_000)
		if got < want-want/8 || got > want+want/8 {
			t.Fatalf("Quantile(%v) = %d, want ~%d", q, got, want)
		}
	}
	if h.Count() != int64(n) {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("p100 %d exceeds max %d", h.Quantile(1), h.Max())
	}
}

func TestHistogramSmallCounts(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(100)
	if got := h.Quantile(0.5); got < 100 || got > 107 {
		t.Fatalf("single-sample p50 = %d", got)
	}
	h.Observe(-5) // clamps to 0
	if h.Quantile(0) != 0 {
		t.Fatalf("p0 = %d, want 0", h.Quantile(0))
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := rng.New(uint64(w))
			for i := 0; i < each; i++ {
				h.Observe(int64(x.Intn(1 << 30)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	if h.Quantile(0.5) <= 0 || h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatalf("quantiles inconsistent: p50=%d p99=%d", h.Quantile(0.5), h.Quantile(0.99))
	}
}

func TestBatchRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewBatchRecorder(reg)
	for i := 1; i <= 10; i++ {
		rec.Observe(BatchPoint{
			ApplyNs: int64(i * 100), MaintainNs: int64(i * 10), TrimNs: int64(i),
			ScheduleNs: 5, ComputeNs: int64(i * 1000),
			TotalNs: int64(i * 1200), Applied: i,
		})
	}
	pts := rec.Points()
	if len(pts) != 10 || pts[9].TotalNs != 12000 {
		t.Fatalf("points = %+v", pts)
	}
	phases, lat := rec.PhaseSnapshots()
	for _, name := range PhaseNames {
		if phases[name].Count != 10 {
			t.Fatalf("phase %q count = %d", name, phases[name].Count)
		}
	}
	if lat.Count != 10 || lat.P50 < lat.Count || lat.P99 < lat.P50 || lat.MaxNs < lat.P99 {
		t.Fatalf("latency snapshot inconsistent: %+v", lat)
	}
	if reg.Counter("batch.count").Value() != 10 {
		t.Fatalf("batch.count = %d", reg.Counter("batch.count").Value())
	}
	if reg.Counter("updates.applied").Value() != 55 {
		t.Fatalf("updates.applied = %d", reg.Counter("updates.applied").Value())
	}
}

func TestNilRecorderAndSnapshotString(t *testing.T) {
	var rec *BatchRecorder
	rec.Observe(BatchPoint{TotalNs: 1}) // must not panic
	if rec.Points() != nil || rec.Registry() != nil {
		t.Fatal("nil recorder leaked state")
	}
	reg := NewRegistry()
	reg.Counter("a").Inc()
	reg.Gauge("b").Set(2)
	reg.Histogram("h").Observe(5)
	s := reg.Snapshot().String()
	if s == "" {
		t.Fatal("empty snapshot rendering")
	}
}
