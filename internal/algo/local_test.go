package algo_test

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// undirected builds a symmetric streaming graph from one-directional pairs.
func undirected(n int, pairs [][2]uint32) *graph.Streaming {
	var edges []graph.Edge
	for _, p := range pairs {
		edges = append(edges,
			graph.Edge{Src: p[0], Dst: p[1], W: 1},
			graph.Edge{Src: p[1], Dst: p[0], W: 1})
	}
	return graph.FromEdges(n, edges)
}

func valsOf(g *graph.Streaming, vals []float64) func(graph.VertexID) float64 {
	_ = g
	return func(v graph.VertexID) float64 { return vals[v] }
}

func TestSolveTrianglesKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		pairs [][2]uint32
		want  []float64
	}{
		{"path", 4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}}, []float64{0, 0, 0, 0}},
		{"triangle", 3, [][2]uint32{{0, 1}, {1, 2}, {0, 2}}, []float64{1, 1, 1}},
		{"k4", 4, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
			[]float64{3, 3, 3, 3}},
		{"bowtie", 5, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}},
			[]float64{1, 1, 2, 1, 1}},
	}
	for _, tc := range cases {
		g := undirected(tc.n, tc.pairs)
		got := algo.SolveTriangles(g)
		for v := range tc.want {
			if got[v] != tc.want[v] {
				t.Errorf("%s: triangle count of %d = %v, want %v", tc.name, v, got[v], tc.want[v])
			}
		}
	}
}

func TestSolveKCoreKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		pairs [][2]uint32
		want  []float64
	}{
		{"path", 4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}}, []float64{1, 1, 1, 1}},
		{"k4", 4, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
			[]float64{3, 3, 3, 3}},
		// triangle with a pendant hanging off vertex 2
		{"lollipop", 4, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}},
			[]float64{2, 2, 2, 1}},
		{"isolated", 3, [][2]uint32{{0, 1}}, []float64{1, 1, 0}},
	}
	for _, tc := range cases {
		g := undirected(tc.n, tc.pairs)
		got := algo.SolveKCore(g)
		for v := range tc.want {
			if got[v] != tc.want[v] {
				t.Errorf("%s: coreness of %d = %v, want %v", tc.name, v, got[v], tc.want[v])
			}
		}
	}
}

// The from-scratch solution must be a Recompute fixpoint: this is the
// quiescence condition the engine relies on, and for k-core it is the
// H-index locality theorem (coreness is the unique seeded fixpoint).
func TestLocalSolveIsRecomputeFixpoint(t *testing.T) {
	cfg := gen.TestDataset(0xf1f1)
	edges := gen.Generate(cfg)
	var both []graph.Edge
	for _, e := range edges {
		both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	g := graph.FromEdges(cfg.NumV, both)
	for _, alg := range []algo.Local{algo.TriangleCount{}, algo.KCore{}} {
		vals := alg.Solve(g)
		val := valsOf(g, vals)
		for v := 0; v < g.NumVertices(); v++ {
			got := alg.Recompute(g, graph.VertexID(v), vals[v], val)
			if got != vals[v] {
				t.Fatalf("%s: Recompute(%d) = %v, want fixpoint %v", alg.Name(), v, got, vals[v])
			}
		}
	}
}

// KCore.Plan must keep deletions in one leading step and give every
// inserted undirected edge its own step (the subcore insertion theorem is
// per-edge); together the steps must repartition the symmetrized batch.
func TestKCorePlanDecomposition(t *testing.T) {
	b := engine.Symmetrize(graph.Batch{
		{Edge: graph.Edge{Src: 0, Dst: 1, W: 1}},
		{Edge: graph.Edge{Src: 2, Dst: 3, W: 1}, Del: true},
		{Edge: graph.Edge{Src: 4, Dst: 5, W: 1}},
		{Edge: graph.Edge{Src: 6, Dst: 7, W: 1}, Del: true},
	})
	steps := algo.KCore{}.Plan(b)
	if len(steps) != 3 {
		t.Fatalf("Plan produced %d steps, want 3 (dels + 2 single adds): %v", len(steps), steps)
	}
	for _, u := range steps[0] {
		if !u.Del {
			t.Fatalf("first step must be deletion-only, got %+v", u)
		}
	}
	if len(steps[0]) != 4 {
		t.Fatalf("deletion step has %d updates, want 4 (2 mirrored pairs)", len(steps[0]))
	}
	for i, s := range steps[1:] {
		if len(s) != 2 || s[0].Del || s[1].Del {
			t.Fatalf("add step %d = %+v, want one mirrored insertion pair", i+1, s)
		}
		if s[0].Src != s[1].Dst || s[0].Dst != s[1].Src {
			t.Fatalf("add step %d = %+v is not a mirror pair", i+1, s)
		}
	}
	total := 0
	for _, s := range steps {
		total += len(s)
	}
	if total != len(b) {
		t.Fatalf("steps cover %d updates, want %d", total, len(b))
	}
}

// Closing a path into a cycle raises every vertex from core 1 to core 2;
// the insertion seed must propagate the subcore BFS through the whole path,
// not just the new edge's endpoints.
func TestKCoreSeedInsertionSpreadsSubcore(t *testing.T) {
	g := undirected(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	vals := algo.SolveKCore(g)
	applied := graph.Batch{
		{Edge: graph.Edge{Src: 0, Dst: 3, W: 1}},
		{Edge: graph.Edge{Src: 3, Dst: 0, W: 1}},
	}
	g.ApplyBatch(applied)
	emitted := map[graph.VertexID]bool{}
	algo.KCore{}.Seed(g, applied,
		func(v graph.VertexID) float64 { return vals[v] },
		func(v graph.VertexID, x float64) { vals[v] = x },
		func(v graph.VertexID) { emitted[v] = true })
	for v := 0; v < 4; v++ {
		if !emitted[graph.VertexID(v)] {
			t.Fatalf("vertex %d not seeded after cycle-closing insertion", v)
		}
		if vals[v] != 2 {
			t.Fatalf("vertex %d raised to %v, want super-solution value 2", v, vals[v])
		}
	}
	// Descent from the seeded super-solution must land on the new coreness.
	want := algo.SolveKCore(g)
	val := func(v graph.VertexID) float64 { return vals[v] }
	for v := 0; v < 4; v++ {
		if got := (algo.KCore{}).Recompute(g, graph.VertexID(v), vals[v], val); got != want[v] {
			t.Fatalf("vertex %d: descent gives %v, want %v", v, got, want[v])
		}
	}
}

// Completing a wedge into a triangle must seed the common neighbor, whose
// count changes even though it is not an endpoint of the new edge.
func TestTriangleSeedIncludesCommonNeighbors(t *testing.T) {
	g := undirected(3, [][2]uint32{{0, 1}, {0, 2}})
	applied := graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}},
		{Edge: graph.Edge{Src: 2, Dst: 1, W: 1}},
	}
	g.ApplyBatch(applied)
	emitted := map[graph.VertexID]bool{}
	algo.TriangleCount{}.Seed(g, applied,
		func(graph.VertexID) float64 { return 0 },
		func(graph.VertexID, float64) {},
		func(v graph.VertexID) { emitted[v] = true })
	for v := 0; v < 3; v++ {
		if !emitted[graph.VertexID(v)] {
			t.Fatalf("vertex %d not seeded (common neighbor 0 must be included)", v)
		}
	}
}

// Deleting a triangle edge must seed the surviving common neighbor so its
// count drops — the non-monotonic direction the selective trim path never
// exercises.
func TestTriangleSeedDeletion(t *testing.T) {
	g := undirected(3, [][2]uint32{{0, 1}, {0, 2}, {1, 2}})
	applied := graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}, Del: true},
		{Edge: graph.Edge{Src: 2, Dst: 1, W: 1}, Del: true},
	}
	g.ApplyBatch(applied)
	emitted := map[graph.VertexID]bool{}
	algo.TriangleCount{}.Seed(g, applied,
		func(graph.VertexID) float64 { return 1 },
		func(graph.VertexID, float64) {},
		func(v graph.VertexID) { emitted[v] = true })
	for v := 0; v < 3; v++ {
		if !emitted[graph.VertexID(v)] {
			t.Fatalf("vertex %d not seeded after triangle-breaking deletion", v)
		}
	}
	val := func(graph.VertexID) float64 { return 1 }
	for v := 0; v < 3; v++ {
		if got := (algo.TriangleCount{}).Recompute(g, graph.VertexID(v), 1, val); got != 0 {
			t.Fatalf("vertex %d recomputes to %v, want 0", v, got)
		}
	}
}
