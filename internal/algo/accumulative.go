package algo

import (
	"math"

	"repro/internal/graph"
)

// Accumulative is an aggregation-based vertex program with D-dimensional
// state. Engines maintain, for every vertex v, the aggregate
//
//	agg(v) = Σ_{u→v} w_uv · unit(u)
//
// where unit(u) is u's per-weight contribution vector; the state is
// state(v) = Update(Base(v), agg(v)). Because Unit folds in the damping
// factor, the induced map is a contraction, so asynchronous (Gauss–Seidel)
// and synchronous (Jacobi/BSP) evaluation converge to the same fixpoint
// within Epsilon — the property GraphFly's per-flow asynchrony relies on.
type Accumulative interface {
	// Name returns the algorithm's short name.
	Name() string
	// Dim returns the state dimension (1 for PageRank, #labels for LP).
	Dim() int
	// Base writes v's base (teleport/seed) vector into dst.
	Base(v graph.VertexID, dst []float64)
	// Unit writes u's per-weight contribution vector into dst, given u's
	// state and total out-weight. outWeight == 0 means a dangling vertex
	// (contribution must be zero).
	Unit(state []float64, outWeight float64, dst []float64)
	// Update writes the new state into dst from the base and aggregate.
	Update(base, agg, dst []float64)
	// Epsilon is the convergence threshold on the max-norm state delta.
	Epsilon() float64
	// Symmetric reports whether undirected semantics are required.
	Symmetric() bool
}

// PageRank is the damped, weighted PageRank: state(v) = (1-d)/N +
// d·Σ_in (w/outW(u))·state(u). Dangling vertices drop their mass (the
// common simplification; identical across all engines and the reference
// solver, so comparisons are exact).
type PageRank struct {
	N       int     // number of vertices
	Damping float64 // d, typically 0.85
	Eps     float64
}

// NewPageRank returns PageRank with standard parameters.
func NewPageRank(n int) PageRank { return PageRank{N: n, Damping: 0.85, Eps: 1e-9} }

// Name implements Accumulative.
func (PageRank) Name() string { return "PageRank" }

// Dim implements Accumulative.
func (PageRank) Dim() int { return 1 }

// Base implements Accumulative.
func (p PageRank) Base(_ graph.VertexID, dst []float64) {
	dst[0] = (1 - p.Damping) / float64(p.N)
}

// Unit implements Accumulative: d·x/outW per unit of edge weight.
func (p PageRank) Unit(state []float64, outWeight float64, dst []float64) {
	if outWeight <= 0 {
		dst[0] = 0
		return
	}
	dst[0] = p.Damping * state[0] / outWeight
}

// Update implements Accumulative.
func (PageRank) Update(base, agg, dst []float64) { dst[0] = base[0] + agg[0] }

// Epsilon implements Accumulative.
func (p PageRank) Epsilon() float64 { return p.Eps }

// Symmetric implements Accumulative.
func (PageRank) Symmetric() bool { return false }

// LabelPropagation is seeded, damped label propagation: every seed vertex
// holds a one-hot base over K labels, and label mass flows like damped
// PageRank per label. Non-seed vertices converge to a distribution over
// labels; Argmax gives the final assignment. This is the fraud-detection
// style LP workload the paper cites.
type LabelPropagation struct {
	K     int                    // number of labels
	Seeds map[graph.VertexID]int // vertex -> label
	Alpha float64                // propagation weight, < 1
	Eps   float64
}

// NewLabelPropagation returns LP with standard parameters.
func NewLabelPropagation(k int, seeds map[graph.VertexID]int) LabelPropagation {
	return LabelPropagation{K: k, Seeds: seeds, Alpha: 0.8, Eps: 1e-9}
}

// Name implements Accumulative.
func (LabelPropagation) Name() string { return "LP" }

// Dim implements Accumulative.
func (l LabelPropagation) Dim() int { return l.K }

// Base implements Accumulative: (1-α)·one-hot for seeds, zero elsewhere.
func (l LabelPropagation) Base(v graph.VertexID, dst []float64) {
	for i := range dst[:l.K] {
		dst[i] = 0
	}
	if lab, ok := l.Seeds[v]; ok {
		dst[lab] = 1 - l.Alpha
	}
}

// Unit implements Accumulative: α·x/outW per unit of edge weight.
func (l LabelPropagation) Unit(state []float64, outWeight float64, dst []float64) {
	if outWeight <= 0 {
		for i := range dst[:l.K] {
			dst[i] = 0
		}
		return
	}
	s := l.Alpha / outWeight
	for i := 0; i < l.K; i++ {
		dst[i] = s * state[i]
	}
}

// Update implements Accumulative.
func (l LabelPropagation) Update(base, agg, dst []float64) {
	for i := 0; i < l.K; i++ {
		dst[i] = base[i] + agg[i]
	}
}

// Epsilon implements Accumulative.
func (l LabelPropagation) Epsilon() float64 { return l.Eps }

// Symmetric implements Accumulative.
func (LabelPropagation) Symmetric() bool { return false }

// Argmax returns the index of the largest component (smallest index wins
// ties), or -1 for an all-zero vector — LP's final label for a vertex.
func Argmax(x []float64) int {
	best, bi := 0.0, -1
	for i, v := range x {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// SolveAccumulative computes the fixpoint of alg on g from scratch with
// synchronous Jacobi iterations until the max-norm state delta drops below
// Epsilon. It is the reference every incremental engine is tested against.
// The returned slice is row-major: state of v at [v*Dim : (v+1)*Dim].
func SolveAccumulative(g *graph.Streaming, alg Accumulative) []float64 {
	n, d := g.NumVertices(), alg.Dim()
	state := make([]float64, n*d)
	next := make([]float64, n*d)
	base := make([]float64, n*d)
	outW := make([]float64, n)
	for v := 0; v < n; v++ {
		alg.Base(graph.VertexID(v), base[v*d:(v+1)*d])
		copy(state[v*d:(v+1)*d], base[v*d:(v+1)*d])
		for _, h := range g.Out(graph.VertexID(v)) {
			outW[v] += h.W
		}
	}
	unit := make([]float64, d)
	agg := make([]float64, n*d)
	for iter := 0; iter < 10000; iter++ {
		for i := range agg {
			agg[i] = 0
		}
		for u := 0; u < n; u++ {
			alg.Unit(state[u*d:(u+1)*d], outW[u], unit)
			for _, h := range g.Out(graph.VertexID(u)) {
				row := int(h.To) * d
				for i := 0; i < d; i++ {
					agg[row+i] += h.W * unit[i]
				}
			}
		}
		maxDelta := 0.0
		for v := 0; v < n; v++ {
			alg.Update(base[v*d:(v+1)*d], agg[v*d:(v+1)*d], next[v*d:(v+1)*d])
			for i := 0; i < d; i++ {
				if delta := math.Abs(next[v*d+i] - state[v*d+i]); delta > maxDelta {
					maxDelta = delta
				}
			}
		}
		state, next = next, state
		if maxDelta < alg.Epsilon() {
			break
		}
	}
	return state
}
