package algo

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The Fig 2 SSSP example: A=0, B=1, C=2, D=3, E=4.
// Edges: A->B(2), A->D(1)... we use the paper's shape loosely: a diamond
// with a known hand-checked answer.
func fig2Graph() *graph.Streaming {
	return graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, // A->B
		{Src: 0, Dst: 3, W: 1}, // A->D
		{Src: 1, Dst: 2, W: 1}, // B->C
		{Src: 3, Dst: 2, W: 3}, // D->C
		{Src: 2, Dst: 4, W: 1}, // C->E
	})
}

func TestSSSPKnownValues(t *testing.T) {
	g := fig2Graph()
	vals, parent := SolveSelective(g, SSSP{Src: 0})
	want := []float64{0, 1, 2, 1, 3}
	for v, w := range want {
		if vals[v] != w {
			t.Fatalf("dist[%d] = %v, want %v (all: %v)", v, vals[v], w, vals)
		}
	}
	if parent[0] != -1 {
		t.Fatalf("source parent = %d", parent[0])
	}
	if parent[2] != 1 {
		t.Fatalf("C's key edge should come from B, got %d", parent[2])
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, W: 1}})
	vals, parent := SolveSelective(g, SSSP{Src: 0})
	if !math.IsInf(vals[2], 1) {
		t.Fatalf("unreachable vertex has dist %v", vals[2])
	}
	if parent[2] != -1 {
		t.Fatalf("unreachable vertex has parent %d", parent[2])
	}
}

func TestBFSIgnoresWeights(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 100}, {Src: 1, Dst: 2, W: 100}, {Src: 0, Dst: 3, W: 1},
	})
	vals, _ := SolveSelective(g, BFS{Src: 0})
	want := []float64{0, 1, 2, 1}
	for v, w := range want {
		if vals[v] != w {
			t.Fatalf("hops[%d] = %v, want %v", v, vals[v], w)
		}
	}
}

func TestSSWPWidestPath(t *testing.T) {
	// Two routes 0->3: via 1 (min(5,2)=2) and via 2 (min(3,3)=3).
	g := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 1, Dst: 3, W: 2},
		{Src: 0, Dst: 2, W: 3}, {Src: 2, Dst: 3, W: 3},
	})
	vals, parent := SolveSelective(g, SSWP{Src: 0})
	if vals[3] != 3 {
		t.Fatalf("width[3] = %v, want 3", vals[3])
	}
	if parent[3] != 2 {
		t.Fatalf("widest path should go through 2, parent = %d", parent[3])
	}
	if !math.IsInf(vals[0], 1) {
		t.Fatalf("source width = %v", vals[0])
	}
}

func TestCCSymmetrizedComponents(t *testing.T) {
	// Two components {0,1,2} and {3,4}; edges inserted both ways as the
	// Symmetric contract requires.
	g := graph.NewStreaming(5)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {3, 4}} {
		g.AddEdge(graph.Edge{Src: e[0], Dst: e[1], W: 1})
		g.AddEdge(graph.Edge{Src: e[1], Dst: e[0], W: 1})
	}
	vals, _ := SolveSelective(g, CC{})
	want := []float64{0, 0, 0, 3, 3}
	for v, w := range want {
		if vals[v] != w {
			t.Fatalf("label[%d] = %v, want %v", v, vals[v], w)
		}
	}
}

func TestSelectiveParentsFormSupportPaths(t *testing.T) {
	// Walking parents from any reached vertex must arrive at the source
	// with exactly the vertex's value accumulated (SSSP invariant).
	cfg := gen.TestDataset(21)
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	alg := SSSP{Src: 0}
	vals, parent := SolveSelective(g, alg)
	for v := 0; v < cfg.NumV; v++ {
		if math.IsInf(vals[v], 1) {
			continue
		}
		// Re-derive the value from the parent's value plus edge weight.
		p := parent[v]
		if p == -1 {
			if graph.VertexID(v) != alg.Src && vals[v] != alg.Base(graph.VertexID(v)) {
				t.Fatalf("vertex %d reached but parentless with %v", v, vals[v])
			}
			continue
		}
		w, ok := g.HasEdge(graph.VertexID(p), graph.VertexID(v))
		if !ok {
			t.Fatalf("key edge %d->%d not in graph", p, v)
		}
		if got := alg.Propagate(vals[p], w); got != vals[v] {
			t.Fatalf("key edge %d->%d does not support value: %v vs %v", p, v, got, vals[v])
		}
	}
}

func TestPageRankSumsToOneOnClosedGraph(t *testing.T) {
	// A directed cycle has no dangling vertices, so PR mass is conserved:
	// the values sum to 1.
	n := 10
	g := graph.NewStreaming(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n), W: 1})
	}
	pr := NewPageRank(n)
	state := SolveAccumulative(g, pr)
	sum := 0.0
	for _, x := range state {
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PR sum = %v, want 1", sum)
	}
	// Symmetric cycle: all values equal.
	for _, x := range state {
		if math.Abs(x-state[0]) > 1e-9 {
			t.Fatalf("cycle PR not uniform: %v", state)
		}
	}
}

func TestPageRankPrefersHighInDegree(t *testing.T) {
	// Star into vertex 0: it must hold the highest rank.
	n := 6
	g := graph.NewStreaming(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 0, W: 1})
	}
	g.AddEdge(graph.Edge{Src: 0, Dst: 1, W: 1}) // keep 0 non-dangling
	state := SolveAccumulative(g, NewPageRank(n))
	for v := 1; v < n; v++ {
		if state[0] <= state[v] {
			t.Fatalf("hub rank %v not above leaf %d rank %v", state[0], v, state[v])
		}
	}
}

func TestLabelPropagationSeeds(t *testing.T) {
	// Chain 0-1-2-3-4 with seeds at both ends: vertices adopt the nearer
	// seed's label.
	n := 5
	g := graph.NewStreaming(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), W: 1})
		g.AddEdge(graph.Edge{Src: graph.VertexID(i + 1), Dst: graph.VertexID(i), W: 1})
	}
	lp := NewLabelPropagation(2, map[graph.VertexID]int{0: 0, 4: 1})
	state := SolveAccumulative(g, lp)
	if Argmax(state[1*2:2*2]) != 0 {
		t.Fatalf("vertex 1 should take label 0: %v", state[2:4])
	}
	if Argmax(state[3*2:4*2]) != 1 {
		t.Fatalf("vertex 3 should take label 1: %v", state[6:8])
	}
	if Argmax(state[0:2]) != 0 || Argmax(state[4*2:5*2]) != 1 {
		t.Fatal("seeds drifted from their own labels")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{0, 0}) != -1 {
		t.Fatal("all-zero should be -1")
	}
	if Argmax([]float64{0.1, 0.5, 0.2}) != 1 {
		t.Fatal("wrong argmax")
	}
	if Argmax([]float64{0.5, 0.5}) != 0 {
		t.Fatal("tie should pick smallest index")
	}
}

// Fixpoint property: the solved state satisfies its own equations.
func TestAccumulativeFixpointProperty(t *testing.T) {
	cfg := gen.Config{Kind: gen.RMAT, NumV: 128, NumE: 512, Seed: 31, A: 0.57, B: 0.19, C: 0.19}
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	pr := NewPageRank(cfg.NumV)
	state := SolveAccumulative(g, pr)
	// Recompute one Jacobi step; it must move < 10*eps.
	again := SolveAccumulative(g, pr)
	for i := range state {
		if math.Abs(state[i]-again[i]) > 1e-12 {
			t.Fatalf("solver not deterministic at %d", i)
		}
	}
	// Verify the equation directly at a few vertices.
	outW := make([]float64, cfg.NumV)
	for v := 0; v < cfg.NumV; v++ {
		for _, h := range g.Out(graph.VertexID(v)) {
			outW[v] += h.W
		}
	}
	for v := 0; v < cfg.NumV; v += 17 {
		agg := 0.0
		for _, h := range g.In(graph.VertexID(v)) {
			u := h.To
			if outW[u] > 0 {
				agg += h.W * pr.Damping * state[u] / outW[u]
			}
		}
		want := (1-pr.Damping)/float64(cfg.NumV) + agg
		if math.Abs(want-state[v]) > 1e-6 {
			t.Fatalf("fixpoint violated at %d: %v vs %v", v, state[v], want)
		}
	}
}

// Determinism of the selective solver across runs and its independence of
// insertion order.
func TestSelectiveOrderIndependence(t *testing.T) {
	cfg := gen.TestDataset(55)
	edges := gen.Generate(cfg)
	g1 := graph.FromEdges(cfg.NumV, edges)
	// Shuffled insertion order.
	r := rng.New(5)
	shuffled := append([]graph.Edge(nil), edges...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	g2 := graph.FromEdges(cfg.NumV, shuffled)
	v1, _ := SolveSelective(g1, SSSP{Src: 0})
	v2, _ := SolveSelective(g2, SSSP{Src: 0})
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("values depend on insertion order at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func BenchmarkSolveSSSPStatic(b *testing.B) {
	cfg := gen.TestDataset(1)
	cfg.NumV, cfg.NumE = 10000, 80000
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveSelective(g, SSSP{Src: 0})
	}
}

func BenchmarkSolvePageRankStatic(b *testing.B) {
	cfg := gen.TestDataset(1)
	cfg.NumV, cfg.NumE = 2000, 16000
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	pr := NewPageRank(cfg.NumV)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveAccumulative(g, pr)
	}
}
