// Package algo defines the two algorithm families the paper evaluates and
// their static (from-scratch) reference solvers.
//
// Selective (monotonic) algorithms — SSSP, SSWP, BFS, CC — compute each
// vertex's value by *selecting* the best candidate offered by one in-edge;
// that edge is the vertex's key edge, and the key edges form the dependence
// forest that drives trimming and dependency-flow extraction (§IV-B).
//
// Accumulative algorithms — PageRank, Label Propagation — derive a vertex's
// state from the *aggregate* of all in-edge contributions (§IV-B), handled
// by the delta-push machinery in accumulative.go.
package algo

import (
	"math"

	"repro/internal/graph"
)

// Selective is a monotonic, selection-based vertex program.
//
// The contract engines rely on: Base(v) is achievable with no in-edges;
// Propagate maps an achievable value across an edge to an achievable value;
// Better is a strict total preorder; and repeated relaxation from any
// achievable over-approximation converges to the unique fixpoint. These are
// exactly KickStarter's safety conditions for trimmed approximations.
type Selective interface {
	// Name returns the algorithm's short name (matches the paper).
	Name() string
	// Base returns v's value in the absence of in-edges.
	Base(v graph.VertexID) float64
	// Better reports whether a is strictly better than b.
	Better(a, b float64) bool
	// Propagate maps the source value across an edge of weight w.
	Propagate(uVal float64, w graph.Weight) float64
	// Symmetric reports whether the algorithm needs undirected semantics
	// (each logical edge present in both directions), as CC does.
	Symmetric() bool
}

// SSSP is single-source shortest paths with positive weights.
type SSSP struct{ Src graph.VertexID }

// Name implements Selective.
func (SSSP) Name() string { return "SSSP" }

// Base implements Selective: 0 at the source, +Inf elsewhere.
func (a SSSP) Base(v graph.VertexID) float64 {
	if v == a.Src {
		return 0
	}
	return math.Inf(1)
}

// Better implements Selective: shorter is better.
func (SSSP) Better(x, y float64) bool { return x < y }

// Propagate implements Selective.
func (SSSP) Propagate(u float64, w graph.Weight) float64 {
	if math.IsInf(u, 1) {
		return u
	}
	return u + w
}

// Symmetric implements Selective.
func (SSSP) Symmetric() bool { return false }

// BFS computes hop counts from a source; edge weights are ignored.
type BFS struct{ Src graph.VertexID }

// Name implements Selective.
func (BFS) Name() string { return "BFS" }

// Base implements Selective.
func (a BFS) Base(v graph.VertexID) float64 {
	if v == a.Src {
		return 0
	}
	return math.Inf(1)
}

// Better implements Selective.
func (BFS) Better(x, y float64) bool { return x < y }

// Propagate implements Selective: one more hop.
func (BFS) Propagate(u float64, _ graph.Weight) float64 {
	if math.IsInf(u, 1) {
		return u
	}
	return u + 1
}

// Symmetric implements Selective.
func (BFS) Symmetric() bool { return false }

// SSWP is single-source widest paths: the value is the best bottleneck
// capacity over all paths from the source.
type SSWP struct{ Src graph.VertexID }

// Name implements Selective.
func (SSWP) Name() string { return "SSWP" }

// Base implements Selective: infinite width at the source, zero elsewhere.
func (a SSWP) Base(v graph.VertexID) float64 {
	if v == a.Src {
		return math.Inf(1)
	}
	return 0
}

// Better implements Selective: wider is better.
func (SSWP) Better(x, y float64) bool { return x > y }

// Propagate implements Selective: the bottleneck of the path.
func (SSWP) Propagate(u float64, w graph.Weight) float64 { return math.Min(u, w) }

// Symmetric implements Selective.
func (SSWP) Symmetric() bool { return false }

// CC is connected components by minimum-label propagation over undirected
// edges: every vertex converges to the smallest vertex ID in its component.
type CC struct{}

// Name implements Selective.
func (CC) Name() string { return "CC" }

// Base implements Selective: a vertex's own ID is always achievable.
func (CC) Base(v graph.VertexID) float64 { return float64(v) }

// Better implements Selective: smaller label wins.
func (CC) Better(x, y float64) bool { return x < y }

// Propagate implements Selective: labels cross edges unchanged.
func (CC) Propagate(u float64, _ graph.Weight) float64 { return u }

// Symmetric implements Selective: components are undirected.
func (CC) Symmetric() bool { return true }

// SolveSelective computes the exact fixpoint of alg on g from scratch with
// a sequential SPFA-style worklist. It is the ground truth every
// incremental engine is tested against, and the Tornado-style
// "recompute from scratch" baseline.
//
// The returned parent slice records each vertex's key edge source (-1 for
// none), i.e. the dependence forest at the fixpoint.
func SolveSelective(g *graph.Streaming, alg Selective) (vals []float64, parent []int32) {
	n := g.NumVertices()
	vals = make([]float64, n)
	parent = make([]int32, n)
	inQueue := make([]bool, n)
	queue := make([]graph.VertexID, 0, n)
	for v := 0; v < n; v++ {
		vals[v] = alg.Base(graph.VertexID(v))
		parent[v] = -1
		// Seed every vertex whose base value can propagate: cheap and
		// uniform (handles both single-source and source-free algorithms).
		queue = append(queue, graph.VertexID(v))
		inQueue[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		uVal := vals[v]
		for _, h := range g.Out(v) {
			cand := alg.Propagate(uVal, h.W)
			if alg.Better(cand, vals[h.To]) {
				vals[h.To] = cand
				parent[h.To] = int32(v)
				if !inQueue[h.To] {
					inQueue[h.To] = true
					queue = append(queue, h.To)
				}
			}
		}
	}
	return vals, parent
}
