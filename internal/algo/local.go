package algo

import (
	"repro/internal/graph"
)

// Local is the contract for neighborhood-local algorithms: a vertex's value
// is a function of its immediate neighborhood (and, optionally, its
// neighbors' values), recomputable in place. Unlike the Selective family
// these are non-monotonic under streaming — a deletion can raise one
// vertex's value and lower another's — so the engine cannot rely on
// refinement floors. Instead each algorithm declares how a batch decomposes
// into sequentially converged steps (Plan) and which vertices a step
// invalidates (Seed); the engine recomputes from those seeds to quiescence.
//
// Determinism contract: Recompute must be a pure function of the graph and
// the value vector, and the seeded fixpoint must be unique (for KCore this
// is the greatest-fixpoint property of the H-index operator; TriangleCount
// does not read neighbor values at all). That is what lets the consistency
// oracle demand bit-exact equality across worker counts and schedulers.
type Local interface {
	// Name identifies the algorithm ("triangle", "kCore").
	Name() string
	// Symmetric reports whether the algorithm needs undirected semantics
	// (both current algorithms do). The initial graph must then hold each
	// edge in both directions and batches are symmetrized by the engine.
	Symmetric() bool
	// Better orders values for top-k queries (true when a ranks before b).
	Better(a, b float64) bool
	// UsesNeighborVals reports whether Recompute reads neighbor values. If
	// true, the engine re-notifies a vertex's neighbors whenever its value
	// changes during convergence.
	UsesNeighborVals() bool
	// Recompute re-derives v's value from its current neighborhood. cur is
	// v's present value; val reads any vertex's present value. The engine
	// calls this concurrently from workers — it must not write anything.
	Recompute(g *graph.Streaming, v graph.VertexID, cur float64, val func(graph.VertexID) float64) float64
	// Plan splits one batch into steps the engine applies and converges
	// sequentially. The batch arrives exactly as it will be applied: for
	// symmetric algorithms it is already canonicalized (last update per
	// undirected pair wins) and mirrored, with the two directions of a pair
	// adjacent. Steps must partition the batch's updates.
	Plan(b graph.Batch) []graph.Batch
	// Seed runs after one step's updates are applied to g (and before
	// convergence): it inspects current values with get, may reset some
	// with set, and emits every vertex whose value must be re-verified.
	// It runs single-threaded in the engine's manager.
	Seed(g *graph.Streaming, applied []graph.Update,
		get func(graph.VertexID) float64,
		set func(graph.VertexID, float64),
		emit func(graph.VertexID))
	// Solve computes the from-scratch answer — the oracle reference and
	// the engine's initial state.
	Solve(g *graph.Streaming) []float64
}

// TriangleCount maintains the number of triangles through each vertex.
// Deletions decrease counts and additions increase them, with no
// monotone refinement floor either way — the canonical non-monotonic
// streaming workload (Besta et al.'s survey, PAPERS.md).
type TriangleCount struct{}

func (TriangleCount) Name() string             { return "triangle" }
func (TriangleCount) Symmetric() bool          { return true }
func (TriangleCount) Better(a, b float64) bool { return a > b }
func (TriangleCount) UsesNeighborVals() bool   { return false }

// Recompute counts v's triangles by neighbor-list intersection: for each
// neighbor u, walk the smaller of the two adjacency lists probing the other
// through the hub-indexed HasEdge. Each triangle {v,u,w} is found once via
// u and once via w, hence the halving.
func (TriangleCount) Recompute(g *graph.Streaming, v graph.VertexID, _ float64, _ func(graph.VertexID) float64) float64 {
	t := 0
	for _, h := range g.Out(v) {
		u := h.To
		if u == v {
			continue
		}
		a, b := v, u
		if g.OutDegree(b) < g.OutDegree(a) {
			a, b = b, a
		}
		for _, h2 := range g.Out(a) {
			w := h2.To
			if w == v || w == u {
				continue
			}
			if _, ok := g.HasEdge(b, w); ok {
				t++
			}
		}
	}
	return float64(t / 2)
}

// Plan keeps the whole batch as one step: triangle counts depend only on
// the final topology, not on the order updates land.
func (TriangleCount) Plan(b graph.Batch) []graph.Batch { return []graph.Batch{b} }

// Seed marks every vertex whose count the step can change: the endpoints of
// each applied update plus their common neighbors in the post-step graph.
// A triangle destroyed together with one of its other edges is still
// covered — that edge's endpoints are themselves seeds.
func (TriangleCount) Seed(g *graph.Streaming, applied []graph.Update,
	_ func(graph.VertexID) float64, _ func(graph.VertexID, float64),
	emit func(graph.VertexID)) {
	for _, up := range applied {
		u, v := up.Src, up.Dst
		emit(u)
		emit(v)
		a, b := u, v
		if g.OutDegree(b) < g.OutDegree(a) {
			a, b = b, a
		}
		for _, h := range g.Out(a) {
			w := h.To
			if w == u || w == v {
				continue
			}
			if _, ok := g.HasEdge(b, w); ok {
				emit(w)
			}
		}
	}
}

// Solve counts triangles from scratch by enumerating neighbor pairs — a
// deliberately different code path from Recompute, so the two cannot share
// a bug.
func SolveTriangles(g *graph.Streaming) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	var ns []graph.VertexID
	for v := 0; v < n; v++ {
		ns = ns[:0]
		for _, h := range g.Out(graph.VertexID(v)) {
			if h.To != graph.VertexID(v) {
				ns = append(ns, h.To)
			}
		}
		t := 0
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				if _, ok := g.HasEdge(ns[i], ns[j]); ok {
					t++
				}
			}
		}
		out[v] = float64(t)
	}
	return out
}

func (TriangleCount) Solve(g *graph.Streaming) []float64 { return SolveTriangles(g) }

// KCore maintains every vertex's core number: the largest k such that the
// vertex belongs to a subgraph where every member has at least k neighbors
// inside it. Deletions lower core numbers and additions raise them, and a
// single edge can shift values arbitrarily far from either endpoint —
// non-monotonic in both directions.
//
// The incremental scheme rests on two classical results:
//
//   - Coreness is the greatest fixpoint of the capped H-index operator
//     T(x)(v) = min(deg(v), H{x(u) : u ∈ N(v)}) (Lü et al., "The H-index
//     of a network node"). Recompute evaluates min(cur, T): capping at the
//     current value makes chaotic asynchronous iteration a monotone
//     descent, and any descent started from a pointwise super-solution of
//     the true coreness converges to it exactly, in any execution order.
//   - On a single edge insertion with k = min(core(u), core(v)), only the
//     subcore — vertices with core exactly k connected to the endpoints
//     through vertices of core k — can change, each by at most one
//     (Sariyüce et al., streaming k-core decomposition).
//
// Hence Plan converges all deletions first (current values are already a
// super-solution of the shrunken graph) and then each insertion as its own
// step, where Seed raises the subcore to k+1 — a super-solution again — and
// lets the descent settle.
type KCore struct{}

func (KCore) Name() string             { return "kCore" }
func (KCore) Symmetric() bool          { return true }
func (KCore) Better(a, b float64) bool { return a > b }
func (KCore) UsesNeighborVals() bool   { return true }

// Recompute evaluates min(cur, deg(v), H-index of neighbor values), the
// monotone-descent form of the coreness operator. Values are small integers
// stored exactly in float64, so counting sort over [0, min(cur,deg)] finds
// the H-index in one pass.
func (KCore) Recompute(g *graph.Streaming, v graph.VertexID, cur float64, val func(graph.VertexID) float64) float64 {
	out := g.Out(v)
	deg := 0
	for _, h := range out {
		if h.To != v {
			deg++
		}
	}
	bound := int(cur)
	if deg < bound {
		bound = deg
	}
	if bound <= 0 {
		return 0
	}
	counts := make([]int, bound+1)
	for _, h := range out {
		if h.To == v {
			continue
		}
		c := int(val(h.To))
		if c > bound {
			c = bound
		}
		if c < 0 {
			c = 0
		}
		counts[c]++
	}
	cum := 0
	for k := bound; k >= 1; k-- {
		cum += counts[k]
		if cum >= k {
			return float64(k)
		}
	}
	return 0
}

// Plan groups the step sequence: all deletions first (one step — the old
// values over-approximate the shrunken graph's coreness everywhere), then
// each inserted undirected edge alone (the subcore theorem is per-edge).
// Mirrored directions of one pair stay in the same step.
func (KCore) Plan(b graph.Batch) []graph.Batch {
	var dels graph.Batch
	var steps []graph.Batch
	for i := 0; i < len(b); {
		j := i + 1
		if j < len(b) && b[j].Src == b[i].Dst && b[j].Dst == b[i].Src && b[j].Del == b[i].Del {
			j++ // the mirror of one undirected update
		}
		if b[i].Del {
			dels = append(dels, b[i:j]...)
		} else {
			steps = append(steps, b[i:j])
		}
		i = j
	}
	if len(dels) > 0 {
		steps = append([]graph.Batch{dels}, steps...)
	}
	return steps
}

// Seed invalidates what one step can change. For a deletion step the old
// values are already a super-solution, so only the endpoints need
// re-verification (the descent spreads through notifications). For an
// insertion step it raises the subcore of the lower endpoint to k+1 — the
// tight super-solution — and emits it for descent.
func (KCore) Seed(g *graph.Streaming, applied []graph.Update,
	get func(graph.VertexID) float64,
	set func(graph.VertexID, float64),
	emit func(graph.VertexID)) {
	if len(applied) == 0 {
		return
	}
	if applied[0].Del {
		for _, up := range applied {
			emit(up.Src)
			emit(up.Dst)
		}
		return
	}
	// Single inserted undirected edge (possibly both directions applied).
	u, v := applied[0].Src, applied[0].Dst
	k := get(u)
	if kv := get(v); kv < k {
		k = kv
	}
	ki := int(k)
	var queue []graph.VertexID
	visited := map[graph.VertexID]bool{}
	for _, r := range []graph.VertexID{u, v} {
		if int(get(r)) == ki && !visited[r] {
			visited[r] = true
			queue = append(queue, r)
		}
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, h := range g.Out(x) {
			w := h.To
			if w == x || visited[w] {
				continue
			}
			if int(get(w)) == ki {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	for _, x := range queue {
		set(x, float64(ki+1))
		emit(x)
	}
}

// SolveKCore computes core numbers from scratch with Batagelj–Zaveršnik
// bucket peeling — O(V+E) and independent of the H-index formulation the
// incremental path uses.
func SolveKCore(g *graph.Streaming) []float64 {
	n := g.NumVertices()
	deg := make([]int, n)
	md := 0
	for v := 0; v < n; v++ {
		for _, h := range g.Out(graph.VertexID(v)) {
			if h.To != graph.VertexID(v) {
				deg[v]++
			}
		}
		if deg[v] > md {
			md = deg[v]
		}
	}
	// bin[d] = index in vert where degree-d vertices start.
	bin := make([]int, md+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= md; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	vert := make([]int, n)
	pos := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := md; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	if md >= 0 {
		bin[0] = 0
	}
	cur := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, h := range g.Out(graph.VertexID(v)) {
			u := int(h.To)
			if u == v || cur[u] <= cur[v] {
				continue
			}
			du, pu := cur[u], pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				pos[u], vert[pu] = pw, w
				pos[w], vert[pw] = pu, u
			}
			bin[du]++
			cur[u]--
		}
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = float64(cur[v])
	}
	return out
}

func (KCore) Solve(g *graph.Streaming) []float64 { return SolveKCore(g) }
