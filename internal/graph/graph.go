// Package graph provides the streaming-graph substrate used by every engine
// in the GraphFly reproduction: a mutable directed weighted multigraph-free
// adjacency structure supporting batched edge additions and deletions, plus
// immutable CSR snapshots for static computation.
//
// Terminology follows the paper: a streaming graph starts from an initial
// graph G0 and evolves by applying batches of edge updates. Vertex IDs are
// dense integers in [0, N). Edges are directed; algorithms that need
// undirected semantics (e.g. connected components) insert both directions.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/dense"
)

// VertexID identifies a vertex. IDs are dense: every ID in [0, NumVertices)
// is a valid vertex (possibly with no edges).
type VertexID = uint32

// Weight is an edge weight. Generators produce small positive integers
// stored as float64 so selective algorithms stay exactly comparable across
// engines.
type Weight = float64

// Edge is a directed weighted edge.
type Edge struct {
	Src VertexID
	Dst VertexID
	W   Weight
}

// Half is the destination half of an edge as stored in an adjacency list.
type Half struct {
	To VertexID
	W  Weight
}

// Update is a single streaming mutation.
type Update struct {
	Edge
	Del bool // true = deletion, false = addition
}

// Batch is an ordered set of updates applied atomically between queries.
type Batch []Update

// Additions returns the number of additions in the batch.
func (b Batch) Additions() int {
	n := 0
	for _, u := range b {
		if !u.Del {
			n++
		}
	}
	return n
}

// Deletions returns the number of deletions in the batch.
func (b Batch) Deletions() int { return len(b) - b.Additions() }

// HubThreshold is the degree at which a vertex's adjacency list gains a
// neighbour->position hash index, making HasEdge/AddEdge/DeleteEdge O(1)
// amortized on that list regardless of skew. Below the threshold a linear
// scan over a short cache-resident slice is faster than a map probe; 64
// halves (~1KB of Half entries) is where the scan stops winning on the
// power-law hubs RMAT/BA produce. The index is dropped again only when the
// degree falls below HubThreshold/4 (hysteresis, so a hub oscillating
// around the threshold does not thrash index builds).
const HubThreshold = 64

// hubDropThreshold is the hysteresis floor: an index is discarded only when
// the degree shrinks to a quarter of the build threshold.
const hubDropThreshold = HubThreshold / 4

// Options tunes a streaming graph at construction time. The zero value
// selects the package defaults (HubThreshold build, HubThreshold/4 drop).
type Options struct {
	// HubThreshold is the degree at which an adjacency list gains its
	// neighbour->position index. 0 means the package default (64).
	HubThreshold int
	// HubDropThreshold is the hysteresis floor below which the index is
	// discarded again. 0 means HubThreshold/4. Values >= HubThreshold are
	// clamped to HubThreshold-1 so the hysteresis band never inverts.
	HubDropThreshold int
}

// normalize resolves zero values to defaults and keeps drop < build.
func (o Options) normalize() (build, drop int) {
	build = o.HubThreshold
	if build <= 0 {
		build = HubThreshold
	}
	drop = o.HubDropThreshold
	if drop <= 0 {
		drop = build / 4
		if drop < 1 {
			drop = 1
		}
	}
	if drop >= build {
		drop = build - 1
	}
	return build, drop
}

// Streaming is a mutable directed graph with both out- and in-adjacency,
// supporting O(1) amortized edge addition, deletion, and lookup: adjacency
// lists of high-degree (hub) vertices carry an incrementally maintained
// neighbour->position index, low-degree lists are scanned.
//
// Streaming is not safe for concurrent mutation of the same vertex's list;
// ApplyBatchParallel shards work so each vertex's list is owned by exactly
// one goroutine (the hub indexes follow the same sharding: out-indexes are
// touched only by out-list owners, in-indexes only by in-list owners).
type Streaming struct {
	out [][]Half
	in  [][]Half
	// outIdx[v] / inIdx[v] map a neighbour to its position in out[v] /
	// in[v]. Non-nil only while v is a hub in that direction.
	outIdx []map[VertexID]int32
	inIdx  []map[VertexID]int32
	m      int
	noIdx  bool // hub indexing disabled (-denseoff ablation, equivalence tests)
	// hubBuild/hubDrop are this graph's hysteresis band (Options; defaults
	// HubThreshold and HubThreshold/4).
	hubBuild int
	hubDrop  int
}

// NewStreaming returns an empty streaming graph with n vertices and the
// default hub-index thresholds.
func NewStreaming(n int) *Streaming {
	return NewStreamingOpts(n, Options{})
}

// NewStreamingOpts returns an empty streaming graph with n vertices and the
// given tuning options.
func NewStreamingOpts(n int, o Options) *Streaming {
	build, drop := o.normalize()
	return &Streaming{
		out:      make([][]Half, n),
		in:       make([][]Half, n),
		outIdx:   make([]map[VertexID]int32, n),
		inIdx:    make([]map[VertexID]int32, n),
		hubBuild: build,
		hubDrop:  drop,
	}
}

// DisableHubIndex drops all hub indexes and turns maintenance off, forcing
// every adjacency operation back to the linear-scan path. It exists for the
// -denseoff ablation and for equivalence tests; call it before heavy
// mutation, not concurrently with it.
func (g *Streaming) DisableHubIndex() {
	g.noIdx = true
	for v := range g.outIdx {
		g.outIdx[v] = nil
		g.inIdx[v] = nil
	}
}

// FromEdges builds a streaming graph with n vertices from an edge list.
// Duplicate (src,dst) pairs are dropped (first wins) so the graph is simple.
func FromEdges(n int, edges []Edge) *Streaming {
	return FromEdgesOpts(n, edges, Options{})
}

// FromEdgesOpts is FromEdges with explicit tuning options.
func FromEdgesOpts(n int, edges []Edge, o Options) *Streaming {
	g := NewStreamingOpts(n, o)
	for _, e := range edges {
		g.AddEdge(e)
	}
	return g
}

// HubThresholds returns the graph's current hysteresis band.
func (g *Streaming) HubThresholds() (build, drop int) { return g.hubBuild, g.hubDrop }

// SetHubThresholds retunes the hysteresis band on a live graph: indexes are
// built for every list at or above the new build threshold and dropped for
// every list below the new drop floor (lists in between keep whatever they
// had — hysteresis). drop <= 0 means build/4. A no-op when hub indexing is
// disabled. Not safe concurrently with mutation.
func (g *Streaming) SetHubThresholds(build, drop int) {
	b, d := Options{HubThreshold: build, HubDropThreshold: drop}.normalize()
	g.hubBuild, g.hubDrop = b, d
	if g.noIdx {
		return
	}
	retune := func(lists [][]Half, idxs []map[VertexID]int32) {
		for v, l := range lists {
			switch {
			case idxs[v] == nil && len(l) >= b:
				idx := make(map[VertexID]int32, 2*len(l))
				for i, e := range l {
					idx[e.To] = int32(i)
				}
				idxs[v] = idx
			case idxs[v] != nil && len(l) < d:
				idxs[v] = nil
			}
		}
	}
	retune(g.out, g.outIdx)
	retune(g.in, g.inIdx)
}

// InHub reports whether v currently carries an in-adjacency hub index —
// the signal the engines use to decide which vertices to replicate. Always
// false when hub indexing is disabled (-denseoff).
func (g *Streaming) InHub(v VertexID) bool { return g.inIdx[v] != nil }

// NumVertices returns N.
func (g *Streaming) NumVertices() int { return len(g.out) }

// NumEdges returns the current number of directed edges.
func (g *Streaming) NumEdges() int { return g.m }

// OutDegree returns the out-degree of v.
func (g *Streaming) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Streaming) InDegree(v VertexID) int { return len(g.in[v]) }

// Out returns the out-adjacency of v. The slice must not be mutated and is
// invalidated by the next batch application.
func (g *Streaming) Out(v VertexID) []Half { return g.out[v] }

// In returns the in-adjacency of v under the same aliasing rules as Out.
func (g *Streaming) In(v VertexID) []Half { return g.in[v] }

// lookupHalf returns the position of `to` in list, consulting the hub index
// when one exists, or -1 when absent.
func lookupHalf(list []Half, idx map[VertexID]int32, to VertexID) int32 {
	if idx != nil {
		if p, ok := idx[to]; ok {
			return p
		}
		return -1
	}
	for i, h := range list {
		if h.To == to {
			return int32(i)
		}
	}
	return -1
}

// appendHalf appends h to lists[u] and maintains the hub index: existing
// indexes learn the new position, and a list crossing HubThreshold gets one
// built (O(degree) once, amortized O(1) per add).
func (g *Streaming) appendHalf(lists [][]Half, idxs []map[VertexID]int32, u VertexID, h Half) {
	lists[u] = append(lists[u], h)
	l := lists[u]
	if idx := idxs[u]; idx != nil {
		idx[h.To] = int32(len(l) - 1)
	} else if !g.noIdx && len(l) >= g.hubBuild {
		idx = make(map[VertexID]int32, 2*len(l))
		for i, e := range l {
			idx[e.To] = int32(i)
		}
		idxs[u] = idx
	}
}

// removeHalfIdx swap-deletes `to` from lists[u], fixing up the moved
// entry's index position and dropping the index under hubDropThreshold.
func (g *Streaming) removeHalfIdx(lists [][]Half, idxs []map[VertexID]int32, u, to VertexID) (Weight, bool) {
	idx := idxs[u]
	p := lookupHalf(lists[u], idx, to)
	if p < 0 {
		return 0, false
	}
	l := lists[u]
	w := l[p].W
	last := len(l) - 1
	moved := l[last]
	l[p] = moved
	lists[u] = l[:last]
	if idx != nil {
		delete(idx, to)
		if int(p) != last {
			idx[moved.To] = p
		}
		if last < g.hubDrop {
			idxs[u] = nil
		}
	}
	return w, true
}

// HasEdge reports whether edge src->dst exists and returns its weight.
func (g *Streaming) HasEdge(src, dst VertexID) (Weight, bool) {
	if p := lookupHalf(g.out[src], g.outIdx[src], dst); p >= 0 {
		return g.out[src][p].W, true
	}
	return 0, false
}

// AddEdge inserts e if absent. It reports whether the edge was inserted.
func (g *Streaming) AddEdge(e Edge) bool {
	if p := lookupHalf(g.out[e.Src], g.outIdx[e.Src], e.Dst); p >= 0 {
		return false
	}
	g.appendHalf(g.out, g.outIdx, e.Src, Half{To: e.Dst, W: e.W})
	g.appendHalf(g.in, g.inIdx, e.Dst, Half{To: e.Src, W: e.W})
	g.m++
	return true
}

// DeleteEdge removes src->dst if present. It reports whether an edge was
// removed and returns its weight.
func (g *Streaming) DeleteEdge(src, dst VertexID) (Weight, bool) {
	w, ok := g.removeHalfIdx(g.out, g.outIdx, src, dst)
	if !ok {
		return 0, false
	}
	if _, ok := g.removeHalfIdx(g.in, g.inIdx, dst, src); !ok {
		panic(fmt.Sprintf("graph: inconsistent adjacency for %d->%d", src, dst))
	}
	g.m--
	return w, true
}

// ApplyBatch applies every update in order, sequentially. Additions of
// existing edges and deletions of missing edges are ignored (idempotent
// streams), matching how the paper's artifact samples update streams from
// static edge lists. It returns the updates that actually took effect.
func (g *Streaming) ApplyBatch(b Batch) Batch {
	applied := b[:0:0]
	for _, u := range b {
		if u.Del {
			if w, ok := g.DeleteEdge(u.Src, u.Dst); ok {
				u.W = w
				applied = append(applied, u)
			}
		} else {
			if g.AddEdge(u.Edge) {
				applied = append(applied, u)
			}
		}
	}
	return applied
}

// Clone returns a deep copy of the graph. Used by tests that compare
// incremental engines against static recomputation on identical topologies.
func (g *Streaming) Clone() *Streaming {
	c := &Streaming{
		out:      make([][]Half, len(g.out)),
		in:       make([][]Half, len(g.in)),
		outIdx:   make([]map[VertexID]int32, len(g.out)),
		inIdx:    make([]map[VertexID]int32, len(g.in)),
		m:        g.m,
		noIdx:    g.noIdx,
		hubBuild: g.hubBuild,
		hubDrop:  g.hubDrop,
	}
	for i, l := range g.out {
		c.out[i] = append([]Half(nil), l...)
	}
	for i, l := range g.in {
		c.in[i] = append([]Half(nil), l...)
	}
	cloneIdx := func(dst, src []map[VertexID]int32) {
		for i, m := range src {
			if m == nil {
				continue
			}
			cp := make(map[VertexID]int32, len(m))
			for k, v := range m {
				cp[k] = v
			}
			dst[i] = cp
		}
	}
	cloneIdx(c.outIdx, g.outIdx)
	cloneIdx(c.inIdx, g.inIdx)
	return c
}

// Edges returns all edges in deterministic (src, dst) order. The outer
// loop already groups edges by ascending source, so only each vertex's
// span needs ordering — insertion sort on the typically tiny spans instead
// of one reflective sort over the whole edge list (the difference is
// visible in the snapshot path, which calls this per checkpoint).
func (g *Streaming) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for v := range g.out {
		start := len(es)
		for _, h := range g.out[v] {
			es = append(es, Edge{Src: VertexID(v), Dst: h.To, W: h.W})
		}
		span := es[start:]
		if len(span) > 32 {
			sort.Slice(span, func(i, j int) bool { return span[i].Dst < span[j].Dst })
			continue
		}
		for i := 1; i < len(span); i++ {
			for j := i; j > 0 && span[j].Dst < span[j-1].Dst; j-- {
				span[j], span[j-1] = span[j-1], span[j]
			}
		}
	}
	return es
}

// Validate checks internal consistency (every out-edge has a matching
// in-edge and vice versa, no duplicates, hub indexes agree with the lists)
// and returns an error describing the first violation. It is O(N + M) in
// allocations-aside work — one epoch-stamped scratch set serves every
// vertex instead of a fresh map per vertex — and intended for tests.
func (g *Streaming) Validate() error {
	type key struct{ s, d VertexID }
	fwd := make(map[key]Weight, g.m)
	seen := dense.NewSet[VertexID](g.NumVertices())
	n := 0
	for v := range g.out {
		seen.Clear()
		for _, h := range g.out[v] {
			if int(h.To) >= g.NumVertices() {
				return fmt.Errorf("out-edge %d->%d exceeds vertex range", v, h.To)
			}
			if !seen.Add(h.To) {
				return fmt.Errorf("duplicate out-edge %d->%d", v, h.To)
			}
			fwd[key{VertexID(v), h.To}] = h.W
			n++
		}
		if err := validateIdx(g.out[v], g.outIdx[v], VertexID(v), "out"); err != nil {
			return err
		}
	}
	if n != g.m {
		return fmt.Errorf("edge count mismatch: counted %d, recorded %d", n, g.m)
	}
	rev := 0
	for v := range g.in {
		seen.Clear()
		for _, h := range g.in[v] {
			if !seen.Add(h.To) {
				return fmt.Errorf("duplicate in-edge %d<-%d", v, h.To)
			}
			w, ok := fwd[key{h.To, VertexID(v)}]
			if !ok {
				return fmt.Errorf("in-edge %d<-%d has no out counterpart", v, h.To)
			}
			if w != h.W {
				return fmt.Errorf("weight mismatch on %d->%d: out %v in %v", h.To, v, w, h.W)
			}
			rev++
		}
		if err := validateIdx(g.in[v], g.inIdx[v], VertexID(v), "in"); err != nil {
			return err
		}
	}
	if rev != g.m {
		return fmt.Errorf("in-edge count mismatch: counted %d, recorded %d", rev, g.m)
	}
	return nil
}

// validateIdx checks that a hub index, when present, is an exact
// neighbour->position bijection for the list it covers.
func validateIdx(list []Half, idx map[VertexID]int32, v VertexID, dir string) error {
	if idx == nil {
		return nil
	}
	if len(idx) != len(list) {
		return fmt.Errorf("%s-index of %d has %d entries for %d halves", dir, v, len(idx), len(list))
	}
	for i, h := range list {
		if p, ok := idx[h.To]; !ok || p != int32(i) {
			return fmt.Errorf("%s-index of %d maps %d to %d, list has it at %d", dir, v, h.To, p, i)
		}
	}
	return nil
}
