// Package graph provides the streaming-graph substrate used by every engine
// in the GraphFly reproduction: a mutable directed weighted multigraph-free
// adjacency structure supporting batched edge additions and deletions, plus
// immutable CSR snapshots for static computation.
//
// Terminology follows the paper: a streaming graph starts from an initial
// graph G0 and evolves by applying batches of edge updates. Vertex IDs are
// dense integers in [0, N). Edges are directed; algorithms that need
// undirected semantics (e.g. connected components) insert both directions.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: every ID in [0, NumVertices)
// is a valid vertex (possibly with no edges).
type VertexID = uint32

// Weight is an edge weight. Generators produce small positive integers
// stored as float64 so selective algorithms stay exactly comparable across
// engines.
type Weight = float64

// Edge is a directed weighted edge.
type Edge struct {
	Src VertexID
	Dst VertexID
	W   Weight
}

// Half is the destination half of an edge as stored in an adjacency list.
type Half struct {
	To VertexID
	W  Weight
}

// Update is a single streaming mutation.
type Update struct {
	Edge
	Del bool // true = deletion, false = addition
}

// Batch is an ordered set of updates applied atomically between queries.
type Batch []Update

// Additions returns the number of additions in the batch.
func (b Batch) Additions() int {
	n := 0
	for _, u := range b {
		if !u.Del {
			n++
		}
	}
	return n
}

// Deletions returns the number of deletions in the batch.
func (b Batch) Deletions() int { return len(b) - b.Additions() }

// Streaming is a mutable directed graph with both out- and in-adjacency,
// supporting O(degree) edge deletion and O(1) amortized addition.
//
// Streaming is not safe for concurrent mutation of the same vertex's list;
// ApplyBatchParallel shards work so each vertex's list is owned by exactly
// one goroutine.
type Streaming struct {
	out [][]Half
	in  [][]Half
	m   int
}

// NewStreaming returns an empty streaming graph with n vertices.
func NewStreaming(n int) *Streaming {
	return &Streaming{
		out: make([][]Half, n),
		in:  make([][]Half, n),
	}
}

// FromEdges builds a streaming graph with n vertices from an edge list.
// Duplicate (src,dst) pairs are dropped (first wins) so the graph is simple.
func FromEdges(n int, edges []Edge) *Streaming {
	g := NewStreaming(n)
	for _, e := range edges {
		g.AddEdge(e)
	}
	return g
}

// NumVertices returns N.
func (g *Streaming) NumVertices() int { return len(g.out) }

// NumEdges returns the current number of directed edges.
func (g *Streaming) NumEdges() int { return g.m }

// OutDegree returns the out-degree of v.
func (g *Streaming) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Streaming) InDegree(v VertexID) int { return len(g.in[v]) }

// Out returns the out-adjacency of v. The slice must not be mutated and is
// invalidated by the next batch application.
func (g *Streaming) Out(v VertexID) []Half { return g.out[v] }

// In returns the in-adjacency of v under the same aliasing rules as Out.
func (g *Streaming) In(v VertexID) []Half { return g.in[v] }

// HasEdge reports whether edge src->dst exists and returns its weight.
func (g *Streaming) HasEdge(src, dst VertexID) (Weight, bool) {
	for _, h := range g.out[src] {
		if h.To == dst {
			return h.W, true
		}
	}
	return 0, false
}

// AddEdge inserts e if absent. It reports whether the edge was inserted.
func (g *Streaming) AddEdge(e Edge) bool {
	if _, ok := g.HasEdge(e.Src, e.Dst); ok {
		return false
	}
	g.out[e.Src] = append(g.out[e.Src], Half{To: e.Dst, W: e.W})
	g.in[e.Dst] = append(g.in[e.Dst], Half{To: e.Src, W: e.W})
	g.m++
	return true
}

// DeleteEdge removes src->dst if present. It reports whether an edge was
// removed and returns its weight.
func (g *Streaming) DeleteEdge(src, dst VertexID) (Weight, bool) {
	w, ok := removeHalf(&g.out[src], dst)
	if !ok {
		return 0, false
	}
	if _, ok := removeHalf(&g.in[dst], src); !ok {
		panic(fmt.Sprintf("graph: inconsistent adjacency for %d->%d", src, dst))
	}
	g.m--
	return w, true
}

func removeHalf(list *[]Half, to VertexID) (Weight, bool) {
	s := *list
	for i, h := range s {
		if h.To == to {
			w := h.W
			s[i] = s[len(s)-1]
			*list = s[:len(s)-1]
			return w, true
		}
	}
	return 0, false
}

// ApplyBatch applies every update in order, sequentially. Additions of
// existing edges and deletions of missing edges are ignored (idempotent
// streams), matching how the paper's artifact samples update streams from
// static edge lists. It returns the updates that actually took effect.
func (g *Streaming) ApplyBatch(b Batch) Batch {
	applied := b[:0:0]
	for _, u := range b {
		if u.Del {
			if w, ok := g.DeleteEdge(u.Src, u.Dst); ok {
				u.W = w
				applied = append(applied, u)
			}
		} else {
			if g.AddEdge(u.Edge) {
				applied = append(applied, u)
			}
		}
	}
	return applied
}

// Clone returns a deep copy of the graph. Used by tests that compare
// incremental engines against static recomputation on identical topologies.
func (g *Streaming) Clone() *Streaming {
	c := &Streaming{
		out: make([][]Half, len(g.out)),
		in:  make([][]Half, len(g.in)),
		m:   g.m,
	}
	for i, l := range g.out {
		c.out[i] = append([]Half(nil), l...)
	}
	for i, l := range g.in {
		c.in[i] = append([]Half(nil), l...)
	}
	return c
}

// Edges returns all edges in deterministic (src, dst) order.
func (g *Streaming) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for v := range g.out {
		for _, h := range g.out[v] {
			es = append(es, Edge{Src: VertexID(v), Dst: h.To, W: h.W})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
	return es
}

// Validate checks internal consistency (every out-edge has a matching
// in-edge and vice versa, no duplicates) and returns an error describing the
// first violation. It is O(N + M log M) and intended for tests.
func (g *Streaming) Validate() error {
	type key struct{ s, d VertexID }
	fwd := make(map[key]Weight, g.m)
	n := 0
	for v := range g.out {
		seen := make(map[VertexID]bool, len(g.out[v]))
		for _, h := range g.out[v] {
			if int(h.To) >= g.NumVertices() {
				return fmt.Errorf("out-edge %d->%d exceeds vertex range", v, h.To)
			}
			if seen[h.To] {
				return fmt.Errorf("duplicate out-edge %d->%d", v, h.To)
			}
			seen[h.To] = true
			fwd[key{VertexID(v), h.To}] = h.W
			n++
		}
	}
	if n != g.m {
		return fmt.Errorf("edge count mismatch: counted %d, recorded %d", n, g.m)
	}
	rev := 0
	for v := range g.in {
		seen := make(map[VertexID]bool, len(g.in[v]))
		for _, h := range g.in[v] {
			if seen[h.To] {
				return fmt.Errorf("duplicate in-edge %d<-%d", v, h.To)
			}
			seen[h.To] = true
			w, ok := fwd[key{h.To, VertexID(v)}]
			if !ok {
				return fmt.Errorf("in-edge %d<-%d has no out counterpart", v, h.To)
			}
			if w != h.W {
				return fmt.Errorf("weight mismatch on %d->%d: out %v in %v", h.To, v, w, h.W)
			}
			rev++
		}
	}
	if rev != g.m {
		return fmt.Errorf("in-edge count mismatch: counted %d, recorded %d", rev, g.m)
	}
	return nil
}
