package graph

import (
	"fmt"
	"math"
)

// BatchError reports the first malformed update in a batch. Update streams
// come from untrusted sources (files, sockets, generators outside this
// module), so the public apply paths validate them and degrade gracefully
// instead of panicking; panics remain reserved for true internal invariants
// such as out/in adjacency divergence.
type BatchError struct {
	Index  int    // position of the offending update within the batch
	Update Update // the update itself
	Reason string
}

func (e *BatchError) Error() string {
	op := "add"
	if e.Update.Del {
		op = "del"
	}
	return fmt.Sprintf("graph: bad update [%d] %s %d->%d (w=%v): %s",
		e.Index, op, e.Update.Src, e.Update.Dst, e.Update.W, e.Reason)
}

// CheckBatch validates a batch against this graph: vertex IDs must be in
// range and addition weights finite. It returns a *BatchError for the first
// violation, or nil. Engines call this before mutating any state, so a
// malformed stream is rejected atomically.
func (g *Streaming) CheckBatch(b Batch) error {
	n := VertexID(g.NumVertices())
	for i, u := range b {
		switch {
		case u.Src >= n:
			return &BatchError{Index: i, Update: u, Reason: fmt.Sprintf("src out of range [0,%d)", n)}
		case u.Dst >= n:
			return &BatchError{Index: i, Update: u, Reason: fmt.Sprintf("dst out of range [0,%d)", n)}
		case !u.Del && (math.IsNaN(u.W) || math.IsInf(u.W, 0)):
			return &BatchError{Index: i, Update: u, Reason: "non-finite weight"}
		}
	}
	return nil
}

// ApplyBatchChecked is ApplyBatch behind CheckBatch: it validates first and
// applies only if the whole batch is well-formed.
func (g *Streaming) ApplyBatchChecked(b Batch) (Batch, error) {
	if err := g.CheckBatch(b); err != nil {
		return nil, err
	}
	return g.ApplyBatch(b), nil
}
