package graph

import "testing"

// TestOptionsThresholds checks that per-graph thresholds drive index build
// and hysteresis drop, replacing the compile-time constants.
func TestOptionsThresholds(t *testing.T) {
	g := NewStreamingOpts(64, Options{HubThreshold: 8})
	build, drop := g.HubThresholds()
	if build != 8 || drop != 2 {
		t.Fatalf("thresholds = (%d,%d), want (8,2)", build, drop)
	}
	for i := VertexID(1); i <= 7; i++ {
		g.AddEdge(Edge{Src: 0, Dst: i, W: 1})
	}
	if g.InHub(1) {
		t.Fatal("vertex 1 (in-degree 1) reported as hub")
	}
	if g.outIdx[0] != nil {
		t.Fatal("out-index built below threshold")
	}
	g.AddEdge(Edge{Src: 0, Dst: 8, W: 1})
	if g.outIdx[0] == nil {
		t.Fatal("out-index not built at threshold 8")
	}
	// Hysteresis: the index survives down to drop (=2) and is shed below it.
	for i := VertexID(1); i <= 6; i++ {
		g.DeleteEdge(0, i)
	}
	if g.outIdx[0] == nil {
		t.Fatal("index dropped above the hysteresis floor")
	}
	g.DeleteEdge(0, 7)
	if g.outIdx[0] != nil {
		t.Fatal("index kept below the hysteresis floor")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSetHubThresholds retunes a live graph and checks indexes are rebuilt
// or shed to match the new band, and that InHub tracks the in-index.
func TestSetHubThresholds(t *testing.T) {
	g := NewStreaming(64)
	for i := VertexID(1); i <= 16; i++ {
		g.AddEdge(Edge{Src: i, Dst: 0, W: 1}) // vertex 0: in-degree 16
	}
	if g.InHub(0) {
		t.Fatal("in-degree 16 is a hub at default threshold 64")
	}
	g.SetHubThresholds(8, 0)
	if !g.InHub(0) {
		t.Fatal("in-degree 16 not a hub after retuning to 8")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Raising the band far above current degrees sheds the index again
	// (16 < drop floor 64/4).
	g.SetHubThresholds(256, 0)
	if g.InHub(0) {
		t.Fatal("index survived a retune far above its degree")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := g.Clone(); func() bool { b, d := c.HubThresholds(); return b != 256 || d != 64 }() {
		t.Fatal("Clone dropped the retuned thresholds")
	}
}

// TestSetHubThresholdsDenseOff: retuning under DisableHubIndex stays a no-op.
func TestSetHubThresholdsDenseOff(t *testing.T) {
	g := NewStreaming(32)
	g.DisableHubIndex()
	for i := VertexID(1); i <= 16; i++ {
		g.AddEdge(Edge{Src: i, Dst: 0, W: 1})
	}
	g.SetHubThresholds(4, 0)
	if g.InHub(0) {
		t.Fatal("InHub true with hub indexing disabled")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
