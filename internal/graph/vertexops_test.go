package graph

import "testing"

func TestVertexDeletionRemovesAllIncident(t *testing.T) {
	g := FromEdges(5, []Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 2},
		{Src: 3, Dst: 1, W: 3}, {Src: 3, Dst: 4, W: 4},
	})
	b := g.VertexDeletion(1)
	if len(b) != 3 {
		t.Fatalf("VertexDeletion(1) produced %d updates: %+v", len(b), b)
	}
	applied := g.ApplyBatch(b)
	if len(applied) != 3 {
		t.Fatalf("only %d deletions applied", len(applied))
	}
	if g.OutDegree(1) != 0 || g.InDegree(1) != 0 {
		t.Fatal("vertex 1 still has edges")
	}
	if _, ok := g.HasEdge(3, 4); !ok {
		t.Fatal("unrelated edge lost")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVertexDeletionIsolatedIsEmpty(t *testing.T) {
	g := NewStreaming(3)
	if b := g.VertexDeletion(1); len(b) != 0 {
		t.Fatalf("isolated vertex deletion produced %+v", b)
	}
}

func TestVertexAddition(t *testing.T) {
	g := NewStreaming(4)
	b := VertexAddition(2,
		[]Half{{To: 0, W: 1}, {To: 3, W: 2}},
		[]Half{{To: 1, W: 5}},
	)
	if len(b) != 3 {
		t.Fatalf("VertexAddition produced %d updates", len(b))
	}
	g.ApplyBatch(b)
	if g.OutDegree(2) != 2 || g.InDegree(2) != 1 {
		t.Fatalf("degrees after addition: out=%d in=%d", g.OutDegree(2), g.InDegree(2))
	}
	if w, ok := g.HasEdge(1, 2); !ok || w != 5 {
		t.Fatalf("in-edge wrong: %v %v", w, ok)
	}
}

func TestVertexRoundTrip(t *testing.T) {
	// Adding a vertex then deleting it restores the original graph.
	g := FromEdges(4, []Edge{{Src: 0, Dst: 1, W: 1}})
	before := g.Edges()
	g.ApplyBatch(VertexAddition(3, []Half{{To: 0, W: 2}}, []Half{{To: 1, W: 3}}))
	g.ApplyBatch(g.VertexDeletion(3))
	after := g.Edges()
	if len(before) != len(after) {
		t.Fatalf("edge sets differ: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
