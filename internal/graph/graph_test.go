package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAddDeleteBasics(t *testing.T) {
	g := NewStreaming(4)
	if !g.AddEdge(Edge{0, 1, 2.5}) {
		t.Fatal("AddEdge returned false for new edge")
	}
	if g.AddEdge(Edge{0, 1, 9}) {
		t.Fatal("AddEdge inserted a duplicate")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 2.5 {
		t.Fatalf("HasEdge(0,1) = %v,%v", w, ok)
	}
	if _, ok := g.HasEdge(1, 0); ok {
		t.Fatal("HasEdge(1,0) should be false; edges are directed")
	}
	if w, ok := g.DeleteEdge(0, 1); !ok || w != 2.5 {
		t.Fatalf("DeleteEdge = %v,%v", w, ok)
	}
	if _, ok := g.DeleteEdge(0, 1); ok {
		t.Fatal("DeleteEdge of missing edge returned true")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after delete", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {0, 2, 1}, {3, 2, 1}})
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 || g.OutDegree(4) != 0 {
		t.Fatalf("degree mismatch: out0=%d in2=%d out4=%d",
			g.OutDegree(0), g.InDegree(2), g.OutDegree(4))
	}
}

func TestApplyBatchIdempotence(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}})
	applied := g.ApplyBatch(Batch{
		{Edge: Edge{0, 1, 1}, Del: false}, // duplicate add: dropped
		{Edge: Edge{1, 2, 4}, Del: false},
		{Edge: Edge{2, 0, 1}, Del: true}, // missing delete: dropped
		{Edge: Edge{0, 1, 0}, Del: true}, // weight filled from graph
	})
	if len(applied) != 2 {
		t.Fatalf("applied = %d updates, want 2: %+v", len(applied), applied)
	}
	if applied[1].W != 1 {
		t.Fatalf("deletion did not capture original weight: %+v", applied[1])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}})
	c := g.Clone()
	g.DeleteEdge(0, 1)
	if _, ok := c.HasEdge(0, 1); !ok {
		t.Fatal("clone shares storage with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := FromEdges(4, []Edge{{3, 0, 1}, {0, 2, 1}, {0, 1, 1}})
	es := g.Edges()
	want := []Edge{{0, 1, 1}, {0, 2, 1}, {3, 0, 1}}
	if len(es) != len(want) {
		t.Fatalf("Edges() = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {0, 2, 3}, {2, 1, 7}, {4, 0, 2}})
	c := g.ToCSR()
	if c.N != 5 || c.M != 4 {
		t.Fatalf("CSR dims N=%d M=%d", c.N, c.M)
	}
	dst, w := c.OutEdges(0)
	if len(dst) != 2 || len(w) != 2 {
		t.Fatalf("OutEdges(0) = %v %v", dst, w)
	}
	src, wi := c.InEdges(1)
	if len(src) != 2 || len(wi) != 2 {
		t.Fatalf("InEdges(1) = %v %v", src, wi)
	}
	if c.OutDegree(0) != 2 || c.InDegree(1) != 2 || c.OutDegree(3) != 0 {
		t.Fatal("CSR degree mismatch")
	}
	// Total edges reachable via CSR equals M in both directions.
	total := 0
	for v := VertexID(0); int(v) < c.N; v++ {
		total += c.OutDegree(v)
	}
	if total != c.M {
		t.Fatalf("sum of out-degrees %d != M %d", total, c.M)
	}
}

func randomBatch(r *rng.Xoshiro256, n, size int) Batch {
	b := make(Batch, 0, size)
	for i := 0; i < size; i++ {
		src := VertexID(r.Intn(n))
		dst := VertexID(r.Intn(n))
		if src == dst {
			continue
		}
		b = append(b, Update{
			Edge: Edge{Src: src, Dst: dst, W: r.Weight(8)},
			Del:  r.Float64() < 0.3,
		})
	}
	return b
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 10; trial++ {
		base := NewStreaming(64)
		seed := randomBatch(r, 64, 400)
		// Deduplicate (src,dst) pairs within the batch so parallel and
		// sequential application are comparable (the generators never emit
		// duplicate pairs in one batch either).
		seen := map[[2]VertexID]bool{}
		dedup := seed[:0]
		for _, u := range seed {
			k := [2]VertexID{u.Src, u.Dst}
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, u)
			}
		}
		g1 := base.Clone()
		g2 := base.Clone()
		a1 := g1.ApplyBatch(dedup)
		a2 := g2.ApplyBatchParallel(dedup, 4)
		if len(a1) != len(a2) {
			t.Fatalf("trial %d: applied counts differ: %d vs %d", trial, len(a1), len(a2))
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("trial %d: parallel result invalid: %v", trial, err)
		}
		e1, e2 := g1.Edges(), g2.Edges()
		if len(e1) != len(e2) {
			t.Fatalf("trial %d: edge counts differ: %d vs %d", trial, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("trial %d: edge %d differs: %v vs %v", trial, i, e1[i], e2[i])
			}
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		covered := make([]int32, n)
		ParallelFor(n, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

// Property: applying a batch then deleting everything it added and re-adding
// everything it deleted restores the original edge set.
func TestBatchInverseProperty(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		g := NewStreaming(32)
		// Seed graph.
		for i := 0; i < 100; i++ {
			s, d := VertexID(rr.Intn(32)), VertexID(rr.Intn(32))
			if s != d {
				g.AddEdge(Edge{s, d, rr.Weight(4)})
			}
		}
		before := g.Edges()
		applied := g.ApplyBatch(randomBatch(r, 32, 64))
		inverse := make(Batch, 0, len(applied))
		for i := len(applied) - 1; i >= 0; i-- {
			u := applied[i]
			u.Del = !u.Del
			inverse = append(inverse, u)
		}
		g.ApplyBatch(inverse)
		after := g.Edges()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}})
	// Corrupt: remove the in-edge behind the struct's back.
	g.in[1] = nil
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed a dangling out-edge")
	}
}

func BenchmarkApplyBatchParallel(b *testing.B) {
	r := rng.New(1)
	g := NewStreaming(1 << 14)
	for i := 0; i < 1<<16; i++ {
		s, d := VertexID(r.Intn(1<<14)), VertexID(r.Intn(1<<14))
		if s != d {
			g.AddEdge(Edge{s, d, 1})
		}
	}
	batch := randomBatch(r, 1<<14, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clone().ApplyBatchParallel(batch, 0)
	}
}
