package graph

// Vertex-level updates, modeled as edge updates exactly as §II-A of the
// paper prescribes: "a vertex deletion can be understood as deleting all
// the edges containing this vertex. A vertex addition can be modeled by
// adding the first edge of this vertex."

// VertexDeletion returns the batch of edge deletions that removes v from
// the current graph: every out-edge and every in-edge of v.
func (g *Streaming) VertexDeletion(v VertexID) Batch {
	b := make(Batch, 0, g.OutDegree(v)+g.InDegree(v))
	for _, h := range g.Out(v) {
		b = append(b, Update{Edge: Edge{Src: v, Dst: h.To, W: h.W}, Del: true})
	}
	for _, h := range g.In(v) {
		b = append(b, Update{Edge: Edge{Src: h.To, Dst: v, W: h.W}, Del: true})
	}
	return b
}

// VertexAddition returns the batch that introduces a vertex through its
// first edges. The vertex ID must already be within the graph's dense ID
// range (graphs are sized for their maximum vertex count up front).
func VertexAddition(v VertexID, out []Half, in []Half) Batch {
	b := make(Batch, 0, len(out)+len(in))
	for _, h := range out {
		b = append(b, Update{Edge: Edge{Src: v, Dst: h.To, W: h.W}})
	}
	for _, h := range in {
		b = append(b, Update{Edge: Edge{Src: h.To, Dst: v, W: h.W}})
	}
	return b
}
