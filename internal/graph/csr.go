package graph

// CSR is an immutable compressed-sparse-row snapshot of a graph, used by the
// static solvers and by the specialized layout builder. Both the out- and
// in-direction are materialized because selective refinement pulls over
// in-edges while propagation pushes over out-edges.
type CSR struct {
	N int
	M int

	OutPtr []int32
	OutDst []VertexID
	OutW   []Weight

	InPtr []int32
	InSrc []VertexID
	InW   []Weight
}

// ToCSR snapshots the streaming graph. Adjacency within each row preserves
// the streaming graph's current order (deterministic for a deterministic
// update sequence).
func (g *Streaming) ToCSR() *CSR {
	n := g.NumVertices()
	c := &CSR{
		N:      n,
		M:      g.m,
		OutPtr: make([]int32, n+1),
		OutDst: make([]VertexID, g.m),
		OutW:   make([]Weight, g.m),
		InPtr:  make([]int32, n+1),
		InSrc:  make([]VertexID, g.m),
		InW:    make([]Weight, g.m),
	}
	pos := int32(0)
	for v := 0; v < n; v++ {
		c.OutPtr[v] = pos
		for _, h := range g.out[v] {
			c.OutDst[pos] = h.To
			c.OutW[pos] = h.W
			pos++
		}
	}
	c.OutPtr[n] = pos
	pos = 0
	for v := 0; v < n; v++ {
		c.InPtr[v] = pos
		for _, h := range g.in[v] {
			c.InSrc[pos] = h.To
			c.InW[pos] = h.W
			pos++
		}
	}
	c.InPtr[n] = pos
	return c
}

// OutEdges returns the out-neighbour and weight slices of v.
func (c *CSR) OutEdges(v VertexID) ([]VertexID, []Weight) {
	lo, hi := c.OutPtr[v], c.OutPtr[v+1]
	return c.OutDst[lo:hi], c.OutW[lo:hi]
}

// InEdges returns the in-neighbour and weight slices of v.
func (c *CSR) InEdges(v VertexID) ([]VertexID, []Weight) {
	lo, hi := c.InPtr[v], c.InPtr[v+1]
	return c.InSrc[lo:hi], c.InW[lo:hi]
}

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v VertexID) int { return int(c.OutPtr[v+1] - c.OutPtr[v]) }

// InDegree returns the in-degree of v.
func (c *CSR) InDegree(v VertexID) int { return int(c.InPtr[v+1] - c.InPtr[v]) }
