package graph

// CSR is an immutable compressed-sparse-row snapshot of a graph, used by the
// static solvers and by the specialized layout builder. Both the out- and
// in-direction are materialized because selective refinement pulls over
// in-edges while propagation pushes over out-edges.
type CSR struct {
	N int
	M int

	OutPtr []int32
	OutDst []VertexID
	OutW   []Weight

	InPtr []int32
	InSrc []VertexID
	InW   []Weight
}

// ToCSR snapshots the streaming graph into freshly allocated arrays.
// Adjacency within each row preserves the streaming graph's current order
// (deterministic for a deterministic update sequence).
func (g *Streaming) ToCSR() *CSR {
	return g.ToCSRInto(new(CSR))
}

// ToCSRInto snapshots the streaming graph into c, reusing c's six backing
// arrays whenever their capacity suffices; per-batch snapshotting with a
// retained arena is therefore allocation-free at steady state. Aliasing
// hazard: the returned CSR is c itself, and any slices handed out from a
// previous snapshot (OutEdges/InEdges) are overwritten — callers must treat
// the arena's previous contents as dead. A nil c is equivalent to ToCSR.
func (g *Streaming) ToCSRInto(c *CSR) *CSR {
	if c == nil {
		c = new(CSR)
	}
	n := g.NumVertices()
	c.N, c.M = n, g.m
	c.OutPtr = growInt32(c.OutPtr, n+1)
	c.OutDst = growUint32(c.OutDst, g.m)
	c.OutW = growFloat64(c.OutW, g.m)
	c.InPtr = growInt32(c.InPtr, n+1)
	c.InSrc = growUint32(c.InSrc, g.m)
	c.InW = growFloat64(c.InW, g.m)
	pos := int32(0)
	for v := 0; v < n; v++ {
		c.OutPtr[v] = pos
		for _, h := range g.out[v] {
			c.OutDst[pos] = h.To
			c.OutW[pos] = h.W
			pos++
		}
	}
	c.OutPtr[n] = pos
	pos = 0
	for v := 0; v < n; v++ {
		c.InPtr[v] = pos
		for _, h := range g.in[v] {
			c.InSrc[pos] = h.To
			c.InW[pos] = h.W
			pos++
		}
	}
	c.InPtr[n] = pos
	return c
}

// growInt32 returns a slice of length n, reusing s's backing array when it
// is large enough. Contents are not preserved.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growUint32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// OutEdges returns the out-neighbour and weight slices of v.
func (c *CSR) OutEdges(v VertexID) ([]VertexID, []Weight) {
	lo, hi := c.OutPtr[v], c.OutPtr[v+1]
	return c.OutDst[lo:hi], c.OutW[lo:hi]
}

// InEdges returns the in-neighbour and weight slices of v.
func (c *CSR) InEdges(v VertexID) ([]VertexID, []Weight) {
	lo, hi := c.InPtr[v], c.InPtr[v+1]
	return c.InSrc[lo:hi], c.InW[lo:hi]
}

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v VertexID) int { return int(c.OutPtr[v+1] - c.OutPtr[v]) }

// InDegree returns the in-degree of v.
func (c *CSR) InDegree(v VertexID) int { return int(c.InPtr[v+1] - c.InPtr[v]) }
