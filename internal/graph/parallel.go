package graph

import (
	"runtime"
	"sync"
)

// ApplyBatchParallel applies a batch with vertex-sharded parallelism: every
// out-list is mutated only by the goroutine owning the source shard, every
// in-list only by the goroutine owning the destination shard, so no locks
// are needed. Within one vertex the original update order is preserved, so
// the result is identical to ApplyBatch for batches that do not contain
// both an addition and a deletion of the same edge (the stream samplers in
// internal/gen never emit such pairs).
//
// It returns the updates that actually took effect (in batch order), which
// downstream engines use to drive refinement. This mirrors the paper's
// workflow where Workers "update the graph data in parallel" while the
// Manager maintains D-trees (Fig 9).
func (g *Streaming) ApplyBatchParallel(b Batch, workers int) Batch {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(b) < 256 {
		return g.ApplyBatch(b)
	}
	n := g.NumVertices()
	shard := func(v VertexID) int { return int(v) % workers }
	_ = n

	// took[i] records whether update i took effect; decided on the
	// out-direction pass (the authoritative one), then mirrored by the
	// in-direction pass.
	took := make([]bool, len(b))
	weights := make([]Weight, len(b))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i, u := range b {
				if shard(u.Src) != w {
					continue
				}
				if u.Del {
					if wt, ok := g.removeHalfIdx(g.out, g.outIdx, u.Src, u.Dst); ok {
						took[i] = true
						weights[i] = wt
					}
				} else {
					if lookupHalf(g.out[u.Src], g.outIdx[u.Src], u.Dst) < 0 {
						g.appendHalf(g.out, g.outIdx, u.Src, Half{To: u.Dst, W: u.W})
						took[i] = true
						weights[i] = u.W
					}
				}
			}
		}(w)
	}
	wg.Wait()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i, u := range b {
				if shard(u.Dst) != w || !took[i] {
					continue
				}
				if u.Del {
					if _, ok := g.removeHalfIdx(g.in, g.inIdx, u.Dst, u.Src); !ok {
						panic("graph: in/out adjacency diverged during parallel delete")
					}
				} else {
					g.appendHalf(g.in, g.inIdx, u.Dst, Half{To: u.Src, W: weights[i]})
				}
			}
		}(w)
	}
	wg.Wait()

	applied := make(Batch, 0, len(b))
	delta := 0
	for i, u := range b {
		if took[i] {
			u.W = weights[i]
			applied = append(applied, u)
			if u.Del {
				delta--
			} else {
				delta++
			}
		}
	}
	g.m += delta
	return applied
}

// ParallelFor runs fn over [0, n) split into contiguous chunks across the
// given number of workers (GOMAXPROCS when workers <= 0). It is the shared
// fork-join primitive for vertex-parallel phases.
func ParallelFor(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
