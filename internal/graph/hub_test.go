package graph

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// hubBatch samples a batch where hubFrac of the updates have vertex 0 as
// their source — the adversarial skew for the adjacency index.
func hubBatch(r *rng.Xoshiro256, n, size int, hubFrac float64) Batch {
	b := make(Batch, 0, size)
	for i := 0; i < size; i++ {
		src := VertexID(r.Intn(n))
		if r.Float64() < hubFrac {
			src = 0
		}
		dst := VertexID(r.Intn(n))
		if src == dst {
			continue
		}
		b = append(b, Update{
			Edge: Edge{Src: src, Dst: dst, W: r.Weight(8)},
			Del:  r.Float64() < 0.4,
		})
	}
	return b
}

// rmatEdge samples one RMAT edge over 2^scale vertices with the canonical
// (0.57, 0.19, 0.19, 0.05) quadrant probabilities.
func rmatEdge(r *rng.Xoshiro256, scale int) (VertexID, VertexID) {
	var src, dst VertexID
	for level := 0; level < scale; level++ {
		p := r.Float64()
		var sBit, dBit VertexID
		switch {
		case p < 0.57:
		case p < 0.76:
			dBit = 1
		case p < 0.95:
			sBit = 1
		default:
			sBit, dBit = 1, 1
		}
		src = src<<1 | sBit
		dst = dst<<1 | dBit
	}
	return src, dst
}

// TestHubIndexedMatchesScan asserts the tentpole equivalence: the
// hub-indexed adjacency and the pure scan-based adjacency produce identical
// Edges() output (and identical applied sub-batches) on random update
// streams, including heavily hub-skewed ones.
func TestHubIndexedMatchesScan(t *testing.T) {
	const nv = 4 * HubThreshold
	for _, hubFrac := range []float64{0, 0.5, 0.95} {
		r := rng.New(uint64(1000 + int(hubFrac*100)))
		idxed := NewStreaming(nv)
		scan := NewStreaming(nv)
		scan.DisableHubIndex()
		for round := 0; round < 30; round++ {
			b := hubBatch(r, nv, 300, hubFrac)
			a1 := idxed.ApplyBatch(b)
			a2 := scan.ApplyBatch(b)
			if len(a1) != len(a2) {
				t.Fatalf("hubFrac %v round %d: applied %d vs %d", hubFrac, round, len(a1), len(a2))
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("hubFrac %v round %d: applied[%d] %v vs %v", hubFrac, round, i, a1[i], a2[i])
				}
			}
			if err := idxed.Validate(); err != nil {
				t.Fatalf("hubFrac %v round %d: indexed graph invalid: %v", hubFrac, round, err)
			}
			if err := scan.Validate(); err != nil {
				t.Fatalf("hubFrac %v round %d: scan graph invalid: %v", hubFrac, round, err)
			}
			e1, e2 := idxed.Edges(), scan.Edges()
			if len(e1) != len(e2) {
				t.Fatalf("hubFrac %v round %d: %d vs %d edges", hubFrac, round, len(e1), len(e2))
			}
			for i := range e1 {
				if e1[i] != e2[i] {
					t.Fatalf("hubFrac %v round %d: edge %d: %v vs %v", hubFrac, round, i, e1[i], e2[i])
				}
			}
		}
		if idxed.outIdx[0] == nil && hubFrac > 0.4 {
			t.Fatalf("hubFrac %v: vertex 0 never became a hub — test lost its teeth", hubFrac)
		}
	}
}

// TestHubIndexBuildDropHysteresis pins the build/drop thresholds: the index
// appears at HubThreshold and is discarded only below HubThreshold/4.
func TestHubIndexBuildDropHysteresis(t *testing.T) {
	n := HubThreshold * 2
	g := NewStreaming(n + 1)
	for d := 1; d <= HubThreshold-1; d++ {
		g.AddEdge(Edge{0, VertexID(d), 1})
	}
	if g.outIdx[0] != nil {
		t.Fatalf("index built at degree %d, threshold is %d", g.OutDegree(0), HubThreshold)
	}
	g.AddEdge(Edge{0, VertexID(HubThreshold), 1})
	if g.outIdx[0] == nil {
		t.Fatal("index not built at threshold")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shrink back down: the index must survive until hubDropThreshold.
	for d := HubThreshold; d > hubDropThreshold; d-- {
		g.DeleteEdge(0, VertexID(d))
	}
	if g.outIdx[0] == nil {
		t.Fatalf("index dropped early at degree %d (floor %d)", g.OutDegree(0), hubDropThreshold)
	}
	g.DeleteEdge(0, VertexID(hubDropThreshold))
	if g.outIdx[0] != nil {
		t.Fatalf("index kept at degree %d, floor %d", g.OutDegree(0), hubDropThreshold)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// In-direction symmetry: many sources pointing at one sink.
	h := NewStreaming(n + 1)
	for s := 1; s <= HubThreshold; s++ {
		h.AddEdge(Edge{VertexID(s), 0, 1})
	}
	if h.inIdx[0] == nil {
		t.Fatal("in-index not built at threshold")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHubParallelMatchesSequential runs hub-skewed batches through both
// batch paths; the parallel path maintains the same indexes shard-locally.
func TestHubParallelMatchesSequential(t *testing.T) {
	r := rng.New(31)
	base := NewStreaming(96)
	for i := 0; i < 600; i++ {
		d := VertexID(r.Intn(96))
		if d != 0 {
			base.AddEdge(Edge{0, d, r.Weight(4)})
		}
	}
	for trial := 0; trial < 8; trial++ {
		raw := hubBatch(r, 96, 500, 0.8)
		seen := map[[2]VertexID]bool{}
		b := raw[:0]
		for _, u := range raw {
			k := [2]VertexID{u.Src, u.Dst}
			if !seen[k] {
				seen[k] = true
				b = append(b, u)
			}
		}
		g1, g2 := base.Clone(), base.Clone()
		a1 := g1.ApplyBatch(b)
		a2 := g2.ApplyBatchParallel(b, 4)
		if len(a1) != len(a2) {
			t.Fatalf("trial %d: applied %d vs %d", trial, len(a1), len(a2))
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("trial %d: parallel hub graph invalid: %v", trial, err)
		}
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("trial %d: edge %d: %v vs %v", trial, i, e1[i], e2[i])
			}
		}
	}
}

// TestCloneCopiesHubIndex: mutating a clone's hub must not corrupt the
// original's index (and vice versa).
func TestCloneCopiesHubIndex(t *testing.T) {
	g := NewStreaming(HubThreshold * 3)
	for d := 1; d <= HubThreshold+5; d++ {
		g.AddEdge(Edge{0, VertexID(d), 1})
	}
	c := g.Clone()
	if c.outIdx[0] == nil {
		t.Fatal("clone lost the hub index")
	}
	c.DeleteEdge(0, 1)
	if _, ok := g.HasEdge(0, 1); !ok {
		t.Fatal("clone shares index state with original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestToCSRIntoReusesArena: ToCSRInto must equal ToCSR and reuse backing
// arrays across snapshots once capacity has been established.
func TestToCSRIntoReusesArena(t *testing.T) {
	r := rng.New(5)
	g := NewStreaming(64)
	g.ApplyBatch(hubBatch(r, 64, 800, 0.3))
	want := g.ToCSR()
	var arena CSR
	got := g.ToCSRInto(&arena)
	if got != &arena {
		t.Fatal("ToCSRInto did not return its argument")
	}
	compareCSR(t, want, got)
	// Mutate slightly and re-snapshot into the same arena: no new arrays.
	g.DeleteEdge(want.OutDst[0], want.OutDst[1]) // may miss; irrelevant
	p0 := &got.OutDst[:cap(got.OutDst)][0]
	g.ToCSRInto(&arena)
	if &arena.OutDst[:cap(arena.OutDst)][0] != p0 {
		t.Fatal("ToCSRInto reallocated a buffer that had capacity")
	}
	compareCSR(t, g.ToCSR(), &arena)
	// Nil receiver degrades to ToCSR.
	compareCSR(t, g.ToCSR(), g.ToCSRInto(nil))
}

func compareCSR(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.N != b.N || a.M != b.M {
		t.Fatalf("dims: %d/%d vs %d/%d", a.N, a.M, b.N, b.M)
	}
	for v := VertexID(0); int(v) < a.N; v++ {
		ad, aw := a.OutEdges(v)
		bd, bw := b.OutEdges(v)
		if len(ad) != len(bd) {
			t.Fatalf("out row %d: %v vs %v", v, ad, bd)
		}
		for i := range ad {
			if ad[i] != bd[i] || aw[i] != bw[i] {
				t.Fatalf("out row %d entry %d differs", v, i)
			}
		}
		as, av := a.InEdges(v)
		bs, bv := b.InEdges(v)
		if len(as) != len(bs) {
			t.Fatalf("in row %d: %v vs %v", v, as, bs)
		}
		for i := range as {
			if as[i] != bs[i] || av[i] != bv[i] {
				t.Fatalf("in row %d entry %d differs", v, i)
			}
		}
	}
}

// FuzzHubAdjacency drives AddEdge/DeleteEdge/HasEdge from an op tape
// against a map oracle, validating index integrity after every step burst.
func FuzzHubAdjacency(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x80, 0x01, 0x00, 0x41})
	f.Add([]byte{0x01, 0x02, 0x03, 0x81, 0x82, 0x83, 0x01})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const n = 32
		g := NewStreaming(n)
		oracle := map[[2]VertexID]Weight{}
		for i := 0; i+1 < len(tape); i += 2 {
			src := VertexID(tape[i] & 0x1f)
			dst := VertexID(tape[i+1] & 0x1f)
			if src == dst {
				continue
			}
			k := [2]VertexID{src, dst}
			if tape[i]&0x80 != 0 {
				_, want := oracle[k]
				if _, ok := g.DeleteEdge(src, dst); ok != want {
					t.Fatalf("DeleteEdge(%d,%d) = %v, oracle %v", src, dst, ok, want)
				}
				delete(oracle, k)
			} else {
				w := Weight(tape[i+1]%7) + 1
				_, dup := oracle[k]
				if g.AddEdge(Edge{src, dst, w}) == dup {
					t.Fatalf("AddEdge(%d,%d) diverged from oracle", src, dst)
				}
				if !dup {
					oracle[k] = w
				}
			}
			if w, ok := g.HasEdge(src, dst); ok != (oracle[k] != 0) || (ok && w != oracle[k]) {
				t.Fatalf("HasEdge(%d,%d) diverged", src, dst)
			}
		}
		if g.NumEdges() != len(oracle) {
			t.Fatalf("NumEdges %d != oracle %d", g.NumEdges(), len(oracle))
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// BenchmarkApplyBatchHub measures steady-state batch application on a
// 1-hub star graph and an RMAT graph, with and without the hub index (the
// scan variants are the pre-index baseline the >=5x acceptance criterion is
// judged against). Each iteration deletes K hub-incident edges and re-adds
// them, so the graph returns to its start state and every iteration does
// identical work.
func BenchmarkApplyBatchHub(b *testing.B) {
	const k = 256
	star := func() (*Streaming, Batch) {
		n := 1 << 15
		g := NewStreaming(n)
		for d := 1; d < n; d++ {
			g.AddEdge(Edge{0, VertexID(d), 1})
		}
		batch := make(Batch, 0, 2*k)
		for i := 0; i < k; i++ {
			batch = append(batch, Update{Edge: Edge{0, VertexID(1 + i*97), 1}, Del: true})
		}
		for i := 0; i < k; i++ {
			batch = append(batch, Update{Edge: Edge{0, VertexID(1 + i*97), 1}, Del: false})
		}
		return g, batch
	}
	rmat := func() (*Streaming, Batch) {
		const scale = 14
		r := rng.New(77)
		g := NewStreaming(1 << scale)
		var accepted []Edge
		for len(accepted) < 6*(1<<scale) {
			s, d := rmatEdge(r, scale)
			if s == d {
				continue
			}
			e := Edge{s, d, 1}
			if g.AddEdge(e) {
				accepted = append(accepted, e)
			}
		}
		// Target the natural RMAT hubs: take the k accepted edges with the
		// highest-degree sources so the batch stresses skewed lists.
		sort.SliceStable(accepted, func(i, j int) bool {
			return g.OutDegree(accepted[i].Src) > g.OutDegree(accepted[j].Src)
		})
		batch := make(Batch, 0, 2*k)
		for i := 0; i < k; i++ {
			batch = append(batch, Update{Edge: accepted[i], Del: true})
		}
		for i := 0; i < k; i++ {
			batch = append(batch, Update{Edge: accepted[i], Del: false})
		}
		return g, batch
	}
	for _, tc := range []struct {
		name  string
		build func() (*Streaming, Batch)
		scan  bool
	}{
		{"star/indexed", star, false},
		{"star/scan", star, true},
		{"rmat/indexed", rmat, false},
		{"rmat/scan", rmat, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g, batch := tc.build()
			if tc.scan {
				g.DisableHubIndex()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := len(g.ApplyBatch(batch)); got != len(batch) {
					b.Fatalf("applied %d of %d", got, len(batch))
				}
			}
			b.ReportMetric(float64(len(batch)), "updates/batch")
		})
	}
}
