package graphbolt

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

const tolerance = 1e-5

func check(t *testing.T, alg algo.Accumulative, cfg engine.Config, w gen.Workload) {
	t.Helper()
	g := graph.FromEdges(w.NumV, w.Initial)
	e := New(g, alg, cfg)
	ref := g.Clone()
	verify := func(batch int) {
		want := algo.SolveAccumulative(ref, alg)
		got := e.Values()
		for i := range want {
			if math.Abs(got[i]-want[i]) > tolerance {
				t.Fatalf("%s batch %d: component %d = %v, want %v", alg.Name(), batch, i, got[i], want[i])
			}
		}
	}
	verify(-1)
	for bi, b := range w.Batches {
		e.ProcessBatch(b)
		ref.ApplyBatch(b)
		verify(bi)
	}
}

func workload(seed uint64, batches int) gen.Workload {
	cfg := gen.TestDataset(seed)
	cfg.NumV, cfg.NumE = 256, 1500
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: 120,
		NumBatches: batches, Seed: seed + 2,
	})
}

func TestGraphBoltPageRank(t *testing.T) {
	w := workload(51, 5)
	check(t, algo.NewPageRank(w.NumV), engine.Config{Workers: 4}, w)
}

func TestGraphBoltLP(t *testing.T) {
	w := workload(52, 4)
	seeds := map[graph.VertexID]int{}
	for i := 0; i < 8; i++ {
		seeds[graph.VertexID(i*13%w.NumV)] = i % 4
	}
	check(t, algo.NewLabelPropagation(4, seeds), engine.Config{Workers: 4}, w)
}

func TestGraphBoltSingleWorker(t *testing.T) {
	w := workload(53, 3)
	check(t, algo.NewPageRank(w.NumV), engine.Config{Workers: 1}, w)
}

func TestGraphBoltDeletionHeavy(t *testing.T) {
	cfg := gen.TestDataset(54)
	cfg.NumV, cfg.NumE = 200, 1200
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.7, DeleteRatio: 0.8, BatchSize: 100, NumBatches: 4, Seed: 55,
	})
	check(t, algo.NewPageRank(w.NumV), engine.Config{Workers: 4}, w)
}

func TestGraphBoltProfiledRedundancy(t *testing.T) {
	sim := cachesim.NewSim(cachesim.DefaultConfig())
	w := workload(56, 2)
	check(t, algo.NewPageRank(w.NumV), engine.Config{Workers: 2, Probe: sim}, w)
	st := sim.Drain()
	if st.Total() == 0 {
		t.Fatal("no accesses recorded")
	}
	if st.PhaseAccesses[cachesim.PhaseRefine] == 0 {
		t.Fatal("refine phase recorded nothing")
	}
}

func TestGraphBoltStats(t *testing.T) {
	w := workload(57, 1)
	g := graph.FromEdges(w.NumV, w.Initial)
	e := New(g, algo.NewPageRank(w.NumV), engine.Config{Workers: 2})
	st := e.ProcessBatch(w.Batches[0])
	if st.Applied == 0 || st.Total <= 0 || st.Levels == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}
