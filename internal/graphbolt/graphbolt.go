// Package graphbolt reimplements the GraphBolt baseline (Mariappan, Vora —
// EuroSys'19) the paper compares against for accumulative algorithms:
// dependency-driven refinement of stored aggregation values followed by
// Bulk Synchronous Parallel recomputation. Like GraphFly's accumulative
// engine it maintains agg(v) = Σ w·lastUnit(u); unlike GraphFly it runs
// frontier supersteps with a global barrier per step over globally
// scattered state — the synchronization and locality costs GraphFly's
// dependency-flows remove.
package graphbolt

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/layout"
)

// Engine is a GraphBolt-style BSP incremental engine.
type Engine struct {
	G   *graph.Streaming
	Alg algo.Accumulative
	cfg engine.Config

	dim      int
	state    *layout.Store
	agg      *layout.Store
	lastUnit *layout.Store
	outW     []float64

	dirty    []uint32 // atomic flags: state must be re-derived
	needPush []uint32 // atomic flags: broadcast is stale

	probe    cachesim.Probe
	profiled bool
	outIdx   *layout.EdgeIndex

	pushes atomic.Int64 // edge-level delta broadcasts (stats)

	symm engine.Symmetrizer // retained symmetrize scratch
}

// New builds the engine and converges the initial graph with supersteps.
func New(g *graph.Streaming, alg algo.Accumulative, cfg engine.Config) *Engine {
	e := &Engine{
		G:   g,
		Alg: alg,
		cfg: cfg,
		dim: alg.Dim(),
	}
	if cfg.Probe == nil {
		e.probe = cachesim.Nop{}
	} else {
		e.probe = cfg.Probe
	}
	_, e.profiled = e.probe.(*cachesim.Sim)
	n := g.NumVertices()
	e.state = layout.NewScatteredStore(n, e.dim)
	e.agg = layout.NewScatteredStore(n, e.dim)
	e.lastUnit = layout.NewScatteredStore(n, e.dim)
	e.outW = make([]float64, n)
	e.dirty = make([]uint32, n)
	e.needPush = make([]uint32, n)
	buf := make([]float64, e.dim)
	frontier := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, h := range g.Out(graph.VertexID(v)) {
			e.outW[v] += h.W
		}
		e.Alg.Base(graph.VertexID(v), buf)
		e.state.SetVec(uint32(v), buf)
		e.needPush[v] = 1
		frontier[v] = uint32(v)
	}
	e.refreshEdgeIndex()
	e.supersteps(frontier)
	return e
}

func (e *Engine) workers() int { return e.cfg.Workers }

func (e *Engine) refreshEdgeIndex() {
	if !e.profiled {
		return
	}
	e.outIdx = layout.NewEdgeIndex(e.G, nil, false)
}

// State copies v's state vector.
func (e *Engine) State(v graph.VertexID) []float64 {
	return e.state.GetVec(uint32(v), make([]float64, e.dim))
}

// Values returns all states row-major.
func (e *Engine) Values() []float64 {
	n := e.G.NumVertices()
	out := make([]float64, n*e.dim)
	for v := 0; v < n; v++ {
		e.state.GetVec(uint32(v), out[v*e.dim:(v+1)*e.dim])
	}
	return out
}

// ProcessBatch applies the batch with GraphBolt's protocol: refine stored
// aggregates for changed edges, global barrier, then BSP supersteps.
func (e *Engine) ProcessBatch(batch graph.Batch) engine.BatchStats {
	var st engine.BatchStats
	t0 := time.Now()
	e.probe.BeginBatch()
	if e.Alg.Symmetric() {
		batch = e.symm.Symmetrize(batch)
	}

	tApply := time.Now()
	applied := e.G.ApplyBatchParallel(batch, e.cfg.Workers)
	st.Applied = len(applied)
	st.ApplyTime = time.Since(tApply)
	e.refreshEdgeIndex()
	for _, u := range applied {
		if u.Del {
			e.outW[u.Src] -= u.W
			if e.outW[u.Src] < 0 {
				e.outW[u.Src] = 0
			}
		} else {
			e.outW[u.Src] += u.W
		}
	}

	// ---- Phase 1: dependency-driven aggregate refinement. ----
	tTrim := time.Now()
	e.probe.SetPhase(cachesim.PhaseRefine)
	var frontier []uint32
	seed := func(v uint32) {
		frontier = append(frontier, v)
	}
	unit := make([]float64, e.dim)
	for _, u := range applied {
		if e.profiled {
			e.probe.Access(e.lastUnit.Addr(uint32(u.Src)), false, cachesim.ClassVertex)
			e.probe.Access(e.agg.Addr(uint32(u.Dst)), true, cachesim.ClassVertex)
		}
		e.lastUnit.GetVec(uint32(u.Src), unit)
		sign := 1.0
		if u.Del {
			sign = -1
		}
		for d := 0; d < e.dim; d++ {
			if unit[d] != 0 {
				e.agg.AddAt(uint32(u.Dst), d, sign*u.W*unit[d])
			}
		}
		if atomic.SwapUint32(&e.dirty[u.Dst], 1) == 0 {
			seed(uint32(u.Dst))
		}
		if atomic.SwapUint32(&e.needPush[u.Src], 1) == 0 {
			seed(uint32(u.Src))
		}
		st.Trimmed++
	}
	st.TrimTime = time.Since(tTrim)

	// ---- Global barrier, then Phase 2: BSP supersteps. ----
	tComp := time.Now()
	e.pushes.Store(0)
	rounds := e.supersteps(frontier)
	st.Levels = rounds
	st.Relaxations = e.pushes.Load()
	st.ComputeTime = time.Since(tComp)
	st.Total = time.Since(t0)
	return st
}

// supersteps runs synchronous rounds until the frontier empties, returning
// the number of rounds. Each round: (a) re-derive states of dirty frontier
// vertices, (b) barrier, (c) broadcast contribution deltas of stale
// vertices and build the next frontier, (d) barrier.
func (e *Engine) supersteps(frontier []uint32) int {
	rounds := 0
	inNext := make([]uint32, e.G.NumVertices())
	for len(frontier) > 0 {
		rounds++
		// (a) State re-derivation.
		graph.ParallelFor(len(frontier), e.workers(), func(lo, hi int) {
			p := e.probe.Fork()
			p.SetPhase(cachesim.PhaseRecompute)
			base := make([]float64, e.dim)
			aggBuf := make([]float64, e.dim)
			oldSt := make([]float64, e.dim)
			newSt := make([]float64, e.dim)
			for i := lo; i < hi; i++ {
				v := frontier[i]
				if atomic.SwapUint32(&e.dirty[v], 0) == 0 {
					continue
				}
				if e.profiled {
					p.Access(e.agg.Addr(v), false, cachesim.ClassVertex)
					p.Access(e.state.Addr(v), true, cachesim.ClassVertex)
				}
				e.Alg.Base(graph.VertexID(v), base)
				e.agg.GetVec(v, aggBuf)
				e.state.GetVec(v, oldSt)
				e.Alg.Update(base, aggBuf, newSt)
				maxDelta := 0.0
				for d := 0; d < e.dim; d++ {
					if dd := math.Abs(newSt[d] - oldSt[d]); dd > maxDelta {
						maxDelta = dd
					}
				}
				e.state.SetVec(v, newSt)
				if maxDelta > e.Alg.Epsilon() {
					atomic.StoreUint32(&e.needPush[v], 1)
				}
			}
		})
		// (b) barrier (implicit in ParallelFor), (c) delta broadcast.
		var next []uint32
		var nextMu sync.Mutex
		graph.ParallelFor(len(frontier), e.workers(), func(lo, hi int) {
			p := e.probe.Fork()
			p.SetPhase(cachesim.PhaseRecompute)
			newSt := make([]float64, e.dim)
			newU := make([]float64, e.dim)
			oldU := make([]float64, e.dim)
			local := make([]uint32, 0, 64)
			for i := lo; i < hi; i++ {
				v := frontier[i]
				if atomic.SwapUint32(&e.needPush[v], 0) == 0 {
					continue
				}
				if e.profiled {
					p.Access(e.state.Addr(v), false, cachesim.ClassVertex)
					p.Access(e.lastUnit.Addr(v), true, cachesim.ClassVertex)
				}
				e.state.GetVec(v, newSt)
				e.Alg.Unit(newSt, e.outW[v], newU)
				e.lastUnit.GetVec(v, oldU)
				changed := false
				for d := 0; d < e.dim; d++ {
					if newU[d] != oldU[d] {
						changed = true
						break
					}
				}
				if !changed {
					continue
				}
				e.lastUnit.SetVec(v, newU)
				e.pushes.Add(int64(e.G.OutDegree(graph.VertexID(v))))
				for j, h := range e.G.Out(graph.VertexID(v)) {
					if e.profiled {
						p.Access(e.outIdx.Addr(v, j), false, cachesim.ClassEdge)
						p.Access(e.agg.Addr(uint32(h.To)), true, cachesim.ClassVertex)
					}
					w := uint32(h.To)
					for d := 0; d < e.dim; d++ {
						if delta := h.W * (newU[d] - oldU[d]); delta != 0 {
							e.agg.AddAt(w, d, delta)
						}
					}
					atomic.StoreUint32(&e.dirty[w], 1)
					if atomic.SwapUint32(&inNext[w], 1) == 0 {
						local = append(local, w)
					}
				}
			}
			if len(local) > 0 {
				nextMu.Lock()
				next = append(next, local...)
				nextMu.Unlock()
			}
		})
		for _, w := range next {
			atomic.StoreUint32(&inNext[w], 0)
		}
		frontier = next
	}
	return rounds
}
