package dflow

import "sort"

// GroupKind distinguishes ordinary flow groups from the virtual groups hub
// replication injects into a schedule: replica groups carry per-replica
// partial state for one hub, and each combine group merges those partials
// exactly once before the hub's dependents fire.
type GroupKind int8

const (
	GroupFlows GroupKind = iota
	GroupReplicas
	GroupCombine
)

// Group is one scheduling unit: either a single flow or a set of flows that
// form a dependency cycle and must execute as a whole (paper §V-A: "we
// merge such dependency-flows and consider them as a whole
// dependency-flow"). Level is the unit's depth in the condensed DAG; units
// at the same level are mutually independent and run concurrently.
type Group struct {
	Flows []int32
	Level int
	Kind  GroupKind
}

// CombineSpec describes the replica fan-out of one replicated hub vertex:
// the flow that owns the hub (HomeFlow), the virtual flow ids of its
// replicas, and the virtual flow id of the diffused-combine step. The ids
// live outside the FlowGraph's id space — combine nodes are schedule-time
// constructs, not persistent flow-graph nodes, so repartitioning never has
// to migrate them.
type CombineSpec struct {
	HomeFlow int32
	Replicas []int32
	Combine  int32
}

// ScheduleWithCombines is Schedule plus hub replication: for every spec
// whose home flow appears in the schedule, it appends a replica group at the
// home flow's level and a combine group at the level band just above, so
// replicas run concurrently with (and never after) their combine, and the
// combine still precedes any dependent flow scheduled at deeper levels via
// the engines' inbox activation. Specs whose home flow is not impacted are
// skipped — their hubs received no traffic this batch.
func ScheduleWithCombines(fg *FlowGraph, impacted []int32, specs []CombineSpec) []Group {
	groups := Schedule(fg, impacted)
	if len(specs) == 0 {
		return groups
	}
	levelOf := make(map[int32]int, len(impacted))
	for _, g := range groups {
		for _, f := range g.Flows {
			levelOf[f] = g.Level
		}
	}
	added := false
	for _, s := range specs {
		l, ok := levelOf[s.HomeFlow]
		if !ok {
			continue
		}
		groups = append(groups,
			Group{Flows: append([]int32(nil), s.Replicas...), Level: l, Kind: GroupReplicas},
			Group{Flows: []int32{s.Combine}, Level: l + 1, Kind: GroupCombine})
		added = true
	}
	if added {
		sort.Slice(groups, func(i, j int) bool {
			if groups[i].Level != groups[j].Level {
				return groups[i].Level < groups[j].Level
			}
			return groups[i].Flows[0] < groups[j].Flows[0]
		})
	}
	return groups
}

// Schedule computes the space-time dependent co-scheduling order for the
// impacted flows: Tarjan SCC condensation of the flow digraph restricted to
// the impacted set, then Kahn levels on the condensed DAG. Groups are
// returned sorted by level (ties broken by smallest flow id) so workers can
// consume them in priority order.
//
// impacted is a list of flow ids (duplicates tolerated); engines pass the
// member slice of their epoch-stamped dense set directly, so no per-batch
// map materializes on the hot path.
func Schedule(fg *FlowGraph, impacted []int32) []Group {
	if len(impacted) == 0 {
		return nil
	}
	// Dense re-indexing of the impacted flows for the SCC pass.
	ids := append([]int32(nil), impacted...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	uniq := ids[:1]
	for _, f := range ids[1:] {
		if f != uniq[len(uniq)-1] {
			uniq = append(uniq, f)
		}
	}
	ids = uniq
	index := make(map[int32]int32, len(ids))
	for i, f := range ids {
		index[f] = int32(i)
	}
	n := len(ids)
	adj := make([][]int32, n)
	for i, f := range ids {
		fg.OutFlows(f, func(g int32) {
			if j, ok := index[g]; ok {
				adj[i] = append(adj[i], j)
			}
		})
		sort.Slice(adj[i], func(a, b int) bool { return adj[i][a] < adj[i][b] })
	}

	comp := tarjanSCC(n, adj)

	// Condensed DAG edges + in-degrees.
	numComp := 0
	for _, c := range comp {
		if int(c)+1 > numComp {
			numComp = int(c) + 1
		}
	}
	compOut := make([]map[int32]bool, numComp)
	indeg := make([]int, numComp)
	for u := 0; u < n; u++ {
		cu := comp[u]
		for _, v := range adj[u] {
			cv := comp[v]
			if cu == cv {
				continue
			}
			if compOut[cu] == nil {
				compOut[cu] = make(map[int32]bool)
			}
			if !compOut[cu][cv] {
				compOut[cu][cv] = true
				indeg[cv]++
			}
		}
	}

	// Kahn levels.
	level := make([]int, numComp)
	queue := make([]int32, 0, numComp)
	for c := 0; c < numComp; c++ {
		if indeg[c] == 0 {
			queue = append(queue, int32(c))
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for d := range compOut[c] {
			if l := level[c] + 1; l > level[d] {
				level[d] = l
			}
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}

	// Collect members per component.
	groups := make([]Group, numComp)
	for c := range groups {
		groups[c].Level = level[c]
	}
	for u := 0; u < n; u++ {
		c := comp[u]
		groups[c].Flows = append(groups[c].Flows, ids[u])
	}
	for c := range groups {
		sort.Slice(groups[c].Flows, func(i, j int) bool { return groups[c].Flows[i] < groups[c].Flows[j] })
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Level != groups[j].Level {
			return groups[i].Level < groups[j].Level
		}
		return groups[i].Flows[0] < groups[j].Flows[0]
	})
	return groups
}

// tarjanSCC returns the strongly-connected-component id of each node for a
// digraph in adjacency-list form, using the iterative Tarjan algorithm
// (recursion-free so million-flow graphs cannot overflow the stack).
func tarjanSCC(n int, adj [][]int32) []int32 {
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		counter int32
		nComp   int32
		stack   []int32
	)
	type frame struct {
		v    int32
		next int // next child index to visit
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: int32(root)}}
		index[int32(root)] = counter
		low[int32(root)] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(adj[f.v]) {
				w := adj[f.v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: close the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
