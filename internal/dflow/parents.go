package dflow

// NewPartitionFromParents extracts dependency-flows from a key-edge
// dependence forest given as a parent array (parent[v] == -1 for roots).
// This is the selective-algorithm path of §IV-B: key edges give every
// vertex at most one parent, so the D-tree is a plain forest and flows are
// packed subtrees. Children of a root start new flows so independent
// subtrees (PROPERTY 1) land in different flows; the cap bounds flow size.
//
// The function assumes the parent array is acyclic (guaranteed for
// monotonic algorithms; see internal/etree.KeyForest).
func NewPartitionFromParents(parent []int32, cap int) *Partition {
	if cap <= 0 {
		cap = DefaultCap
	}
	n := len(parent)
	p := &Partition{
		FlowOf: make([]int32, n),
		Cap:    cap,
	}
	children := make([][]int32, n)
	roots := make([]int32, 0, 64)
	for v, pa := range parent {
		if pa == -1 {
			roots = append(roots, int32(v))
		} else {
			children[pa] = append(children[pa], int32(v))
		}
	}
	var cur []uint32
	flush := func() {
		if len(cur) > 0 {
			p.Flows = append(p.Flows, cur)
			cur = nil
		}
	}
	// DFS pack each root's subtree; small subtrees share flows (they are
	// independent by construction, and dust-sized flows would drown the
	// scheduler in boundary traffic).
	stack := make([]int32, 0, 64)
	for _, r := range roots {
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(cur) >= cap {
				flush()
			}
			cur = append(cur, uint32(v))
			stack = append(stack, children[v]...)
		}
	}
	flush()
	for fi, flow := range p.Flows {
		for _, v := range flow {
			p.FlowOf[v] = int32(fi)
		}
	}
	return p
}
