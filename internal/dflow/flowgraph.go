package dflow

import (
	"fmt"

	"repro/internal/graph"
)

func errDuplicate(v uint32) error { return fmt.Errorf("dflow: vertex %d in two flows", v) }
func errFlowOf(v uint32, got, want int32) error {
	return fmt.Errorf("dflow: FlowOf[%d] = %d, member of %d", v, got, want)
}
func errUnassigned(v uint32) error { return fmt.Errorf("dflow: vertex %d unassigned", v) }

// FlowGraph is the flow-level dependency digraph: an edge f->g exists while
// at least one graph edge leaves a vertex of flow f into a vertex of flow g.
// It is the runtime index the paper derives from the backward-triangle
// D-trees: given an impacted flow, it answers "which other flows can my
// values reach" without touching graph edges (§V-A).
//
// Edge multiplicities are reference counts so incremental deletion works.
type FlowGraph struct {
	part *Partition
	out  []map[int32]int32 // flow -> downstream flow -> #graph edges
	in   []map[int32]int32 // reverse index, for impact analysis
}

// NewFlowGraph indexes every cross-flow edge of g under partition part.
func NewFlowGraph(g *graph.Streaming, part *Partition) *FlowGraph {
	fg := &FlowGraph{
		part: part,
		out:  make([]map[int32]int32, part.NumFlows()),
		in:   make([]map[int32]int32, part.NumFlows()),
	}
	for v := 0; v < g.NumVertices(); v++ {
		src := graph.VertexID(v)
		for _, h := range g.Out(src) {
			fg.AddEdge(src, h.To)
		}
	}
	return fg
}

// AddEdge records graph edge u->v.
func (fg *FlowGraph) AddEdge(u, v graph.VertexID) {
	fu, fv := fg.part.Flow(u), fg.part.Flow(v)
	if fu == fv {
		return
	}
	if fg.out[fu] == nil {
		fg.out[fu] = make(map[int32]int32)
	}
	fg.out[fu][fv]++
	if fg.in[fv] == nil {
		fg.in[fv] = make(map[int32]int32)
	}
	fg.in[fv][fu]++
}

// DeleteEdge removes graph edge u->v from the index.
func (fg *FlowGraph) DeleteEdge(u, v graph.VertexID) {
	fu, fv := fg.part.Flow(u), fg.part.Flow(v)
	if fu == fv {
		return
	}
	if m := fg.out[fu]; m != nil {
		if m[fv]--; m[fv] <= 0 {
			delete(m, fv)
		}
	}
	if m := fg.in[fv]; m != nil {
		if m[fu]--; m[fu] <= 0 {
			delete(m, fu)
		}
	}
}

// NumFlows returns the number of flows.
func (fg *FlowGraph) NumFlows() int { return len(fg.out) }

// OutFlows calls fn for each flow downstream of f.
func (fg *FlowGraph) OutFlows(f int32, fn func(g int32)) {
	for g := range fg.out[f] {
		fn(g)
	}
}

// InFlows calls fn for each flow upstream of f.
func (fg *FlowGraph) InFlows(f int32, fn func(g int32)) {
	for g := range fg.in[f] {
		fn(g)
	}
}

// OutDegree returns the number of downstream flows of f.
func (fg *FlowGraph) OutDegree(f int32) int { return len(fg.out[f]) }

// Reach returns the set of flows reachable from the seeds (seeds included),
// following downstream edges, capped at limit flows (limit <= 0 means no
// cap). This is the impacted-flow discovery of §V-A: the flows a batch of
// updates can possibly influence.
func (fg *FlowGraph) Reach(seeds []int32, limit int) map[int32]bool {
	seen := make(map[int32]bool, len(seeds))
	queue := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		if limit > 0 && len(seen) >= limit {
			break
		}
		f := queue[0]
		queue = queue[1:]
		for g := range fg.out[f] {
			if !seen[g] {
				seen[g] = true
				queue = append(queue, g)
			}
		}
	}
	return seen
}
