package dflow

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

func errDuplicate(v uint32) error { return fmt.Errorf("dflow: vertex %d in two flows", v) }
func errFlowOf(v uint32, got, want int32) error {
	return fmt.Errorf("dflow: FlowOf[%d] = %d, member of %d", v, got, want)
}
func errUnassigned(v uint32) error { return fmt.Errorf("dflow: vertex %d unassigned", v) }

// FlowGraph is the flow-level dependency digraph: an edge f->g exists while
// at least one graph edge leaves a vertex of flow f into a vertex of flow g.
// It is the runtime index the paper derives from the backward-triangle
// D-trees: given an impacted flow, it answers "which other flows can my
// values reach" without touching graph edges (§V-A).
//
// Storage is a CSR-style refcount index rebuilt into reusable buffers at
// (re)partition time — the former map-of-maps representation re-allocated
// O(flows + cross edges) of map headers on every rebuild. Between rebuilds,
// AddEdge/DeleteEdge adjust refcounts in place; a flow pair that first
// appears after the rebuild goes into a small per-flow overflow map (kept
// allocated and emptied with clear() at the next rebuild). A CSR entry may
// rest at count zero and be re-incremented later; iteration skips
// non-positive counts.
type FlowGraph struct {
	part *Partition

	outPtr, outDst, outCnt []int32 // rows sorted by dst flow id
	inPtr, inSrc, inCnt    []int32 // reverse index, rows sorted by src
	outDeg                 []int32 // distinct downstream flows with positive count

	outOvf []map[int32]int32 // novel pairs since the last rebuild
	inOvf  []map[int32]int32

	rowLen []int32 // rebuild scratch: per-flow cross-edge count, then cursor
	tmpDst []int32 // rebuild scratch: flattened unsorted rows
}

// NewFlowGraph indexes every cross-flow edge of g under partition part.
func NewFlowGraph(g *graph.Streaming, part *Partition) *FlowGraph {
	fg := &FlowGraph{}
	fg.Rebuild(g, part)
	return fg
}

// newFlowGraphN returns an empty FlowGraph over n flows with no partition.
// Tests use it to build flow digraphs directly via addFlowEdge.
func newFlowGraphN(n int) *FlowGraph {
	fg := &FlowGraph{}
	fg.sizeFor(n)
	return fg
}

// sizeFor (re)establishes buffers for n flows, reusing capacity. Counts and
// overflow maps are emptied; pointer arrays are zeroed.
func (fg *FlowGraph) sizeFor(n int) {
	fg.outPtr = resetI32(fg.outPtr, n+1)
	fg.inPtr = resetI32(fg.inPtr, n+1)
	fg.outDeg = resetI32(fg.outDeg, n)
	fg.rowLen = resetI32(fg.rowLen, n)
	fg.outDst = fg.outDst[:0]
	fg.outCnt = fg.outCnt[:0]
	fg.inSrc = fg.inSrc[:0]
	fg.inCnt = fg.inCnt[:0]
	fg.outOvf = resetOvf(fg.outOvf, n)
	fg.inOvf = resetOvf(fg.inOvf, n)
}

// resetI32 returns a zeroed slice of length n reusing capacity.
func resetI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetOvf returns a length-n overflow slice whose existing maps are kept
// allocated but emptied, so steady-state rebuilds free no map storage.
func resetOvf(s []map[int32]int32, n int) []map[int32]int32 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]map[int32]int32, n-cap(s))...)
	}
	s = s[:n]
	for _, m := range s {
		clear(m)
	}
	return s
}

// Rebuild re-indexes every cross-flow edge of g under part, reusing the
// receiver's buffers. Engines call this at repartition instead of
// allocating a fresh FlowGraph.
func (fg *FlowGraph) Rebuild(g *graph.Streaming, part *Partition) {
	fg.part = part
	nf := part.NumFlows()
	fg.sizeFor(nf)

	// Pass 1: count cross edges per source flow (duplicates included).
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		fu := part.Flow(graph.VertexID(v))
		for _, h := range g.Out(graph.VertexID(v)) {
			if part.Flow(h.To) != fu {
				fg.rowLen[fu]++
				total++
			}
		}
	}
	// Pass 2: flatten destination flows per row.
	if cap(fg.tmpDst) < total {
		fg.tmpDst = make([]int32, total)
	}
	fg.tmpDst = fg.tmpDst[:total]
	cur := fg.outPtr // reuse as cursor array; rewritten below
	pos := int32(0)
	for f := 0; f < nf; f++ {
		cur[f] = pos
		pos += fg.rowLen[f]
		fg.rowLen[f] = cur[f] // remember row start for the RLE pass
	}
	cur[nf] = pos
	for v := 0; v < g.NumVertices(); v++ {
		fu := part.Flow(graph.VertexID(v))
		for _, h := range g.Out(graph.VertexID(v)) {
			if fv := part.Flow(h.To); fv != fu {
				fg.tmpDst[cur[fu]] = fv
				cur[fu]++
			}
		}
	}
	// Pass 3: sort each row and run-length-encode into the out CSR. After
	// pass 2, cur[f] is the row end and rowLen[f] the row start.
	for f := 0; f < nf; f++ {
		lo, hi := fg.rowLen[f], cur[f]
		row := fg.tmpDst[lo:hi]
		slices.Sort(row)
		fg.outPtr[f] = int32(len(fg.outDst))
		for i := 0; i < len(row); {
			j := i + 1
			for j < len(row) && row[j] == row[i] {
				j++
			}
			fg.outDst = append(fg.outDst, row[i])
			fg.outCnt = append(fg.outCnt, int32(j-i))
			i = j
		}
		fg.outDeg[f] = int32(len(fg.outDst)) - fg.outPtr[f]
	}
	fg.outPtr[nf] = int32(len(fg.outDst))

	// Reverse index: walking out-rows in ascending f appends sources to
	// each in-row already sorted, so no per-row sort is needed.
	inLen := fg.rowLen // reuse scratch as in-row counters
	for i := range inLen {
		inLen[i] = 0
	}
	for _, g := range fg.outDst {
		inLen[g]++
	}
	pos = 0
	for f := 0; f < nf; f++ {
		fg.inPtr[f] = pos
		pos += inLen[f]
		inLen[f] = fg.inPtr[f]
	}
	fg.inPtr[nf] = pos
	fg.inSrc = resetI32(fg.inSrc, int(pos))
	fg.inCnt = resetI32(fg.inCnt, int(pos))
	for f := 0; f < nf; f++ {
		for p := fg.outPtr[f]; p < fg.outPtr[f+1]; p++ {
			gid := fg.outDst[p]
			at := inLen[gid]
			fg.inSrc[at] = int32(f)
			fg.inCnt[at] = fg.outCnt[p]
			inLen[gid]++
		}
	}
}

// csrFind binary-searches row f of a CSR for neighbour x, returning the
// entry position or -1.
func csrFind(ptr, ids []int32, f, x int32) int32 {
	lo, hi := ptr[f], ptr[f+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ids[mid] < x:
			lo = mid + 1
		case ids[mid] > x:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// AddEdge records graph edge u->v.
func (fg *FlowGraph) AddEdge(u, v graph.VertexID) {
	fu, fv := fg.part.Flow(u), fg.part.Flow(v)
	if fu == fv {
		return
	}
	fg.addFlowEdge(fu, fv)
}

// DeleteEdge removes graph edge u->v from the index.
func (fg *FlowGraph) DeleteEdge(u, v graph.VertexID) {
	fu, fv := fg.part.Flow(u), fg.part.Flow(v)
	if fu == fv {
		return
	}
	// Out direction.
	if p := csrFind(fg.outPtr, fg.outDst, fu, fv); p >= 0 {
		if fg.outCnt[p] > 0 {
			if fg.outCnt[p]--; fg.outCnt[p] == 0 {
				fg.outDeg[fu]--
			}
		}
	} else if m := fg.outOvf[fu]; m != nil {
		if c := m[fv]; c > 0 {
			if c == 1 {
				delete(m, fv)
				fg.outDeg[fu]--
			} else {
				m[fv] = c - 1
			}
		}
	}
	// In direction.
	if p := csrFind(fg.inPtr, fg.inSrc, fv, fu); p >= 0 {
		if fg.inCnt[p] > 0 {
			fg.inCnt[p]--
		}
	} else if m := fg.inOvf[fv]; m != nil {
		if c := m[fu]; c > 0 {
			if c == 1 {
				delete(m, fu)
			} else {
				m[fu] = c - 1
			}
		}
	}
}

// addFlowEdge bumps the refcount of flow edge fu->fv by one.
func (fg *FlowGraph) addFlowEdge(fu, fv int32) {
	if p := csrFind(fg.outPtr, fg.outDst, fu, fv); p >= 0 {
		if fg.outCnt[p]++; fg.outCnt[p] == 1 {
			fg.outDeg[fu]++
		}
	} else {
		m := fg.outOvf[fu]
		if m == nil {
			m = make(map[int32]int32)
			fg.outOvf[fu] = m
		}
		if m[fv]++; m[fv] == 1 {
			fg.outDeg[fu]++
		}
	}
	if p := csrFind(fg.inPtr, fg.inSrc, fv, fu); p >= 0 {
		fg.inCnt[p]++
	} else {
		m := fg.inOvf[fv]
		if m == nil {
			m = make(map[int32]int32)
			fg.inOvf[fv] = m
		}
		m[fu]++
	}
}

// NumFlows returns the number of flows.
func (fg *FlowGraph) NumFlows() int { return len(fg.outDeg) }

// OutFlows calls fn for each flow downstream of f.
func (fg *FlowGraph) OutFlows(f int32, fn func(g int32)) {
	for p := fg.outPtr[f]; p < fg.outPtr[f+1]; p++ {
		if fg.outCnt[p] > 0 {
			fn(fg.outDst[p])
		}
	}
	for g, c := range fg.outOvf[f] {
		if c > 0 {
			fn(g)
		}
	}
}

// InFlows calls fn for each flow upstream of f.
func (fg *FlowGraph) InFlows(f int32, fn func(g int32)) {
	for p := fg.inPtr[f]; p < fg.inPtr[f+1]; p++ {
		if fg.inCnt[p] > 0 {
			fn(fg.inSrc[p])
		}
	}
	for g, c := range fg.inOvf[f] {
		if c > 0 {
			fn(g)
		}
	}
}

// OutDegree returns the number of downstream flows of f.
func (fg *FlowGraph) OutDegree(f int32) int { return int(fg.outDeg[f]) }

// Reach returns the set of flows reachable from the seeds (seeds included),
// following downstream edges, capped at limit flows (limit <= 0 means no
// cap). This is the impacted-flow discovery of §V-A: the flows a batch of
// updates can possibly influence.
func (fg *FlowGraph) Reach(seeds []int32, limit int) map[int32]bool {
	seen := make(map[int32]bool, len(seeds))
	queue := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		if limit > 0 && len(seen) >= limit {
			break
		}
		f := queue[0]
		queue = queue[1:]
		fg.OutFlows(f, func(g int32) {
			if !seen[g] {
				seen[g] = true
				queue = append(queue, g)
			}
		})
	}
	return seen
}
