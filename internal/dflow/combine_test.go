package dflow

import (
	"testing"

	"repro/internal/etree"
)

// TestScheduleWithCombines checks the replica/combine group injection: the
// replica group lands at its home flow's level, the combine one band above,
// specs for unimpacted flows are skipped, and ordinary groups are unchanged.
func TestScheduleWithCombines(t *testing.T) {
	g := chainGraph(6)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	impacted := []int32{p.Flow(0), p.Flow(2), p.Flow(4)}
	base := Schedule(fg, impacted)

	nf := int32(p.NumFlows())
	specs := []CombineSpec{
		{HomeFlow: p.Flow(2), Replicas: []int32{nf, nf + 1}, Combine: nf + 2},
		{HomeFlow: nf - 1 + 100, Replicas: []int32{nf + 3}, Combine: nf + 4}, // not impacted
	}
	groups := ScheduleWithCombines(fg, impacted, specs)
	if len(groups) != len(base)+2 {
		t.Fatalf("got %d groups, want %d (base) + 2", len(groups), len(base))
	}

	homeLevel := -1
	for _, gr := range base {
		for _, fl := range gr.Flows {
			if fl == p.Flow(2) {
				homeLevel = gr.Level
			}
		}
	}
	if homeLevel < 0 {
		t.Fatal("home flow missing from base schedule")
	}

	var sawReplicas, sawCombine bool
	for _, gr := range groups {
		switch gr.Kind {
		case GroupReplicas:
			sawReplicas = true
			if gr.Level != homeLevel {
				t.Fatalf("replica group at level %d, home at %d", gr.Level, homeLevel)
			}
			if len(gr.Flows) != 2 || gr.Flows[0] != nf || gr.Flows[1] != nf+1 {
				t.Fatalf("replica flows = %v", gr.Flows)
			}
		case GroupCombine:
			sawCombine = true
			if gr.Level != homeLevel+1 {
				t.Fatalf("combine group at level %d, want %d", gr.Level, homeLevel+1)
			}
			if len(gr.Flows) != 1 || gr.Flows[0] != nf+2 {
				t.Fatalf("combine flows = %v", gr.Flows)
			}
			for _, fl := range gr.Flows {
				if fl == nf+4 {
					t.Fatal("combine for unimpacted home flow scheduled")
				}
			}
		}
	}
	if !sawReplicas || !sawCombine {
		t.Fatalf("replicas=%v combine=%v, want both", sawReplicas, sawCombine)
	}
	// The result stays level-sorted (ties by first flow id), the invariant
	// the engines' group loop relies on.
	for i := 1; i < len(groups); i++ {
		a, b := groups[i-1], groups[i]
		if a.Level > b.Level || (a.Level == b.Level && a.Flows[0] > b.Flows[0]) {
			t.Fatalf("groups out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestScheduleWithCombinesNoSpecs degenerates to Schedule exactly.
func TestScheduleWithCombinesNoSpecs(t *testing.T) {
	g := chainGraph(4)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	impacted := []int32{p.Flow(0)}
	a := Schedule(fg, impacted)
	b := ScheduleWithCombines(fg, impacted, nil)
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Level != b[i].Level || a[i].Kind != b[i].Kind {
			t.Fatalf("group %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
