package dflow

import (
	"testing"

	"repro/internal/rng"
)

// Property tests for Schedule over randomized flow digraphs (satellite of
// the bench/metrics PR): for every condensed edge u->v between impacted
// flows, level(u) < level(v), and every set of mutually-reachable
// (cyclic) impacted flows lands in exactly one Group.
//
// The FlowGraph is built directly via addFlowEdge — Schedule only consults
// OutFlows, so no Partition is needed.

// randFlowGraph builds a random flow digraph on n flows with roughly
// density*n*n directed edges (no self-loops; self-edges are impossible in
// a real FlowGraph since AddEdge drops same-flow pairs).
func randFlowGraph(r *rng.Xoshiro256, n int, density float64) *FlowGraph {
	fg := newFlowGraphN(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || r.Float64() >= density {
				continue
			}
			fg.addFlowEdge(int32(u), int32(v))
		}
	}
	return fg
}

// reachableWithin computes reachability from src restricted to the
// impacted set, following out-edges along paths of length >= 1 (src is in
// the result only if it lies on a cycle back to itself, which is exactly
// what SCC co-membership needs).
func reachableWithin(fg *FlowGraph, impacted map[int32]bool, src int32) map[int32]bool {
	seen := make(map[int32]bool)
	queue := []int32{src}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		fg.OutFlows(f, func(g int32) {
			if !impacted[g] || seen[g] {
				return
			}
			seen[g] = true
			queue = append(queue, g)
		})
	}
	return seen
}

// sameSCC reports whether impacted flows a and b are mutually reachable
// through impacted flows — the reference definition of "must share a
// Group".
func sameSCC(fg *FlowGraph, impacted map[int32]bool, a, b int32) bool {
	if a == b {
		return true
	}
	return reachableWithin(fg, impacted, a)[b] && reachableWithin(fg, impacted, b)[a]
}

func checkScheduleProperties(t *testing.T, fg *FlowGraph, impacted map[int32]bool, seed uint64) {
	t.Helper()
	list := make([]int32, 0, len(impacted))
	for f := range impacted {
		list = append(list, f)
	}
	groups := Schedule(fg, list)

	// Every impacted flow appears in exactly one group; nothing else does.
	groupOf := make(map[int32]int, len(impacted))
	levelOf := make(map[int32]int, len(impacted))
	for gi, g := range groups {
		if len(g.Flows) == 0 {
			t.Fatalf("seed %d: empty group at index %d", seed, gi)
		}
		for _, f := range g.Flows {
			if !impacted[f] {
				t.Fatalf("seed %d: group %d contains non-impacted flow %d", seed, gi, f)
			}
			if prev, dup := groupOf[f]; dup {
				t.Fatalf("seed %d: flow %d in groups %d and %d", seed, f, prev, gi)
			}
			groupOf[f] = gi
			levelOf[f] = g.Level
		}
	}
	if len(groupOf) != len(impacted) {
		t.Fatalf("seed %d: %d flows grouped, %d impacted", seed, len(groupOf), len(impacted))
	}

	// Property 1: condensed edges go strictly downhill in level. For every
	// flow edge u->v inside the impacted set whose endpoints are in
	// different groups, level(u) < level(v).
	for u := range impacted {
		fg.OutFlows(u, func(v int32) {
			if !impacted[v] || groupOf[u] == groupOf[v] {
				return
			}
			if levelOf[u] >= levelOf[v] {
				t.Fatalf("seed %d: condensed edge %d->%d has level(%d)=%d >= level(%d)=%d",
					seed, u, v, u, levelOf[u], v, levelOf[v])
			}
		})
	}

	// Property 2: mutual reachability (within the impacted set) exactly
	// characterizes group co-membership — cyclic flow sets merge into one
	// Group, and flows not on a common cycle never share one.
	flows := make([]int32, 0, len(impacted))
	for f := range impacted {
		flows = append(flows, f)
	}
	for i, a := range flows {
		for _, b := range flows[i+1:] {
			same := groupOf[a] == groupOf[b]
			want := sameSCC(fg, impacted, a, b)
			if same != want {
				t.Fatalf("seed %d: flows %d,%d sameGroup=%v mutuallyReachable=%v",
					seed, a, b, same, want)
			}
		}
	}
}

func TestSchedulePropertiesRandom(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		r := rng.New(seed)
		n := 2 + r.Intn(24)
		density := 0.05 + r.Float64()*0.3 // sparse to cyclic-heavy
		fg := randFlowGraph(r, n, density)

		// Random impacted subset (at least one flow).
		impacted := make(map[int32]bool)
		for f := 0; f < n; f++ {
			if r.Float64() < 0.6 {
				impacted[int32(f)] = true
			}
		}
		if len(impacted) == 0 {
			impacted[int32(r.Intn(n))] = true
		}
		checkScheduleProperties(t, fg, impacted, seed)
	}
}

// TestSchedulePropertiesDenseCyclic stresses the merge path: high density
// makes most of the graph one big SCC, so the schedule should collapse to
// very few groups while keeping the level invariant on the remainder.
func TestSchedulePropertiesDenseCyclic(t *testing.T) {
	for seed := uint64(100); seed < 110; seed++ {
		r := rng.New(seed)
		n := 6 + r.Intn(10)
		fg := randFlowGraph(r, n, 0.5)
		impacted := make(map[int32]bool, n)
		for f := 0; f < n; f++ {
			impacted[int32(f)] = true
		}
		checkScheduleProperties(t, fg, impacted, seed)
	}
}

// TestScheduleKnownCycle is a deterministic anchor: a 3-cycle feeding a
// chain must give exactly {cycle}@0 -> {3}@1 -> {4}@2.
func TestScheduleKnownCycle(t *testing.T) {
	fg := newFlowGraphN(5)
	add := fg.addFlowEdge
	add(0, 1)
	add(1, 2)
	add(2, 0) // cycle {0,1,2}
	add(2, 3)
	add(3, 4)
	impacted := map[int32]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	groups := Schedule(fg, []int32{0, 1, 2, 3, 4})
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	if len(groups[0].Flows) != 3 || groups[0].Level != 0 {
		t.Fatalf("cycle group = %+v, want flows {0,1,2} at level 0", groups[0])
	}
	if groups[1].Level != 1 || groups[1].Flows[0] != 3 {
		t.Fatalf("group 1 = %+v, want flow 3 at level 1", groups[1])
	}
	if groups[2].Level != 2 || groups[2].Flows[0] != 4 {
		t.Fatalf("group 2 = %+v, want flow 4 at level 2", groups[2])
	}
	checkScheduleProperties(t, fg, impacted, 0)
}
