package dflow

import (
	"sort"
	"testing"

	"repro/internal/etree"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// flowOracle recomputes the flow adjacency from scratch as the old
// map-of-maps representation would have: counts of graph edges per
// cross-flow pair.
func flowOracle(g *graph.Streaming, p *Partition) (out, in []map[int32]int32) {
	out = make([]map[int32]int32, p.NumFlows())
	in = make([]map[int32]int32, p.NumFlows())
	for _, e := range g.Edges() {
		fu, fv := p.Flow(e.Src), p.Flow(e.Dst)
		if fu == fv {
			continue
		}
		if out[fu] == nil {
			out[fu] = make(map[int32]int32)
		}
		out[fu][fv]++
		if in[fv] == nil {
			in[fv] = make(map[int32]int32)
		}
		in[fv][fu]++
	}
	return out, in
}

func sortedKeys(m map[int32]int32) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func collectSorted(iter func(func(int32))) []int32 {
	var got []int32
	iter(func(f int32) { got = append(got, f) })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func compareFlowGraph(t *testing.T, tag string, fg *FlowGraph, g *graph.Streaming, p *Partition) {
	t.Helper()
	out, in := flowOracle(g, p)
	for f := int32(0); int(f) < p.NumFlows(); f++ {
		wantOut := sortedKeys(out[f])
		gotOut := collectSorted(func(fn func(int32)) { fg.OutFlows(f, fn) })
		if len(wantOut) != len(gotOut) {
			t.Fatalf("%s: flow %d out = %v, oracle %v", tag, f, gotOut, wantOut)
		}
		for i := range wantOut {
			if wantOut[i] != gotOut[i] {
				t.Fatalf("%s: flow %d out = %v, oracle %v", tag, f, gotOut, wantOut)
			}
		}
		if fg.OutDegree(f) != len(wantOut) {
			t.Fatalf("%s: flow %d OutDegree = %d, oracle %d", tag, f, fg.OutDegree(f), len(wantOut))
		}
		wantIn := sortedKeys(in[f])
		gotIn := collectSorted(func(fn func(int32)) { fg.InFlows(f, fn) })
		if len(wantIn) != len(gotIn) {
			t.Fatalf("%s: flow %d in = %v, oracle %v", tag, f, gotIn, wantIn)
		}
		for i := range wantIn {
			if wantIn[i] != gotIn[i] {
				t.Fatalf("%s: flow %d in = %v, oracle %v", tag, f, gotIn, wantIn)
			}
		}
	}
}

// TestFlowGraphMatchesMapOracle streams random add/delete updates through
// the CSR-backed FlowGraph (including deletions driving CSR counts to zero
// and re-additions resurrecting them, plus novel pairs landing in the
// overflow maps) and checks every view against a from-scratch oracle.
// Mid-stream Rebuild calls must fold the overflow back into the CSR and
// keep all views identical.
func TestFlowGraphMatchesMapOracle(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		cfg := gen.Config{Kind: gen.ER, NumV: 60, NumE: 150, Seed: seed}
		g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
		f := etree.NewForest(g, etree.Forward)
		p := NewPartition(f, 6)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		fg := NewFlowGraph(g, p)
		compareFlowGraph(t, "initial", fg, g, p)

		for step := 0; step < 200; step++ {
			src := graph.VertexID(r.Intn(cfg.NumV))
			dst := graph.VertexID(r.Intn(cfg.NumV))
			if src == dst {
				continue
			}
			if r.Float64() < 0.45 {
				if _, ok := g.DeleteEdge(src, dst); ok {
					fg.DeleteEdge(src, dst)
				}
			} else {
				if g.AddEdge(graph.Edge{Src: src, Dst: dst, W: 1}) {
					fg.AddEdge(src, dst)
				}
			}
			if step%23 == 0 {
				compareFlowGraph(t, "stream", fg, g, p)
			}
			if step%67 == 66 {
				fg.Rebuild(g, p) // same partition, fresh CSR
				compareFlowGraph(t, "rebuild", fg, g, p)
			}
		}
		compareFlowGraph(t, "final", fg, g, p)

		// A rebuild under a brand-new partition (the repartition path) must
		// also agree, reusing the same buffers.
		f2 := etree.NewForest(g, etree.Forward)
		p2 := NewPartition(f2, 9)
		fg.Rebuild(g, p2)
		compareFlowGraph(t, "repartition", fg, g, p2)
	}
}
