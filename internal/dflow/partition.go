// Package dflow turns D-trees into dependency-flows and schedules them.
// It implements the paper's Dependency Management module (§III, §V-A):
// flows are extracted from the forward-triangle D-tree forest (space), and
// their execution order is constrained by the cross-flow edges the backward
// triangle induces (time). Cyclically dependent flows are merged into one
// scheduling unit, exactly as §V-A prescribes for flows that form a cycle.
package dflow

import (
	"repro/internal/etree"
	"repro/internal/graph"
)

// Partition assigns every vertex to a dependency-flow. Flows are packed in
// D-tree DFS order so tree-adjacent vertices are flow-adjacent, which is
// what the specialized layout (internal/layout) exploits.
type Partition struct {
	// FlowOf maps a vertex to its flow.
	FlowOf []int32
	// Flows lists each flow's member vertices in pack order.
	Flows [][]uint32
	// Cap is the flow size cap used at build time.
	Cap int
}

// DefaultCap is the default flow size cap: small enough that one flow's
// vertex values and edge pointers fit comfortably in a private cache,
// large enough to amortize scheduling.
const DefaultCap = 1024

// NewPartition extracts dependency-flows from a D-tree forest. Hyper
// vertices are kept together when possible; hyper vertices and trees larger
// than cap are divided into sub-flows (the paper's §V-A "divide the
// oversized dependency-flow"), whose mutual ordering the scheduler
// preserves through the flow graph.
func NewPartition(f *etree.Forest, cap int) *Partition {
	if cap <= 0 {
		cap = DefaultCap
	}
	n := f.N()
	p := &Partition{
		FlowOf: make([]int32, n),
		Cap:    cap,
	}
	for i := range p.FlowOf {
		p.FlowOf[i] = -1
	}

	// Group vertices by hyper representative, preserving ID order inside
	// each hyper vertex.
	members := make(map[int32][]uint32)
	for v := 0; v < n; v++ {
		r := f.Rep(graph.VertexID(v))
		members[r] = append(members[r], uint32(v))
	}

	// Condensed tree structure over hyper nodes: each hyper node gets at
	// most one chosen parent (the hyper of the smallest member link that
	// leaves the node). Children lists drive the packing DFS.
	chosenParent := make(map[int32]int32)
	children := make(map[int32][]int32)
	for v := 0; v < n; v++ {
		l := f.Link(graph.VertexID(v))
		if l == -1 {
			continue
		}
		r, lr := f.Rep(graph.VertexID(v)), f.Rep(graph.VertexID(l))
		if r == lr {
			continue
		}
		if _, ok := chosenParent[r]; !ok {
			chosenParent[r] = lr
			children[lr] = append(children[lr], r)
		}
	}

	visited := make(map[int32]bool, len(members))
	var cur []uint32
	flush := func() {
		if len(cur) > 0 {
			p.Flows = append(p.Flows, cur)
			cur = nil
		}
	}
	packNode := func(r int32) {
		for _, v := range members[r] {
			if len(cur) >= cap {
				flush()
			}
			cur = append(cur, v)
		}
	}
	// Iterative DFS over the condensed tree: pack the node, then descend
	// into children so a root and its subtree stay flow-contiguous.
	dfs := func(root int32) {
		stack := []int32{root}
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[r] {
				continue
			}
			visited[r] = true
			packNode(r)
			stack = append(stack, children[r]...)
		}
	}

	// Roots first (hyper nodes with no chosen parent); the chosen-parent
	// links can form cycles across hyper nodes, so sweep leftovers after.
	// Small trees share flows: PROPERTY 1 guarantees sibling subtrees are
	// independent, so colocating them is safe, and it avoids degenerate
	// dust flows whose boundary traffic would dominate scheduling.
	for v := 0; v < n; v++ {
		r := f.Rep(graph.VertexID(v))
		if _, hasParent := chosenParent[r]; !hasParent && !visited[r] {
			dfs(r)
		}
	}
	for v := 0; v < n; v++ {
		r := f.Rep(graph.VertexID(v))
		if !visited[r] {
			dfs(r)
		}
	}
	flush()

	for fi, flow := range p.Flows {
		for _, v := range flow {
			p.FlowOf[v] = int32(fi)
		}
	}
	return p
}

// NumFlows returns the number of flows.
func (p *Partition) NumFlows() int { return len(p.Flows) }

// Flow returns the flow id of v.
func (p *Partition) Flow(v graph.VertexID) int32 { return p.FlowOf[v] }

// Members returns the member vertices of flow f in pack order.
func (p *Partition) Members(f int32) []uint32 { return p.Flows[f] }

// Validate checks that flows partition the vertex set exactly and that no
// flow (other than oversized-hyper splits) exceeds the cap. O(N).
func (p *Partition) Validate() error {
	seen := make([]bool, len(p.FlowOf))
	for fi, flow := range p.Flows {
		for _, v := range flow {
			if seen[v] {
				return errDuplicate(v)
			}
			seen[v] = true
			if p.FlowOf[v] != int32(fi) {
				return errFlowOf(v, p.FlowOf[v], int32(fi))
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return errUnassigned(uint32(v))
		}
	}
	return nil
}
