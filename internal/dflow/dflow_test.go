package dflow

import (
	"testing"
	"testing/quick"

	"repro/internal/etree"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func chainGraph(n int) *graph.Streaming {
	g := graph.NewStreaming(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), W: 1})
	}
	return g
}

func TestPartitionChainRespectCap(t *testing.T) {
	g := chainGraph(100)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumFlows() != 10 {
		t.Fatalf("NumFlows = %d, want 10", p.NumFlows())
	}
	for fi := int32(0); int(fi) < p.NumFlows(); fi++ {
		if len(p.Members(fi)) > 10 {
			t.Fatalf("flow %d has %d members, cap 10", fi, len(p.Members(fi)))
		}
	}
}

func TestPartitionKeepsHyperTogether(t *testing.T) {
	// 0 -> {1,2,3}: one hyper vertex of size 4, cap 8 keeps it whole.
	g := graph.FromEdges(8, []graph.Edge{
		{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 1}, {Src: 0, Dst: 3, W: 1},
		{Src: 5, Dst: 6, W: 1},
	})
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	fl := p.Flow(0)
	for _, v := range []graph.VertexID{1, 2, 3} {
		if p.Flow(v) != fl {
			t.Fatalf("hyper member %d in flow %d, want %d", v, p.Flow(v), fl)
		}
	}
	// Small independent trees may share the flow (PROPERTY 1 makes that
	// safe); the inseparability requirement is only on the hyper vertex.
}

func TestPartitionSplitsOversizedHyper(t *testing.T) {
	// Star 0 -> {1..30}: hyper vertex of 31 members, cap 8: must split into
	// ceil(31/8) = 4 sub-flows (paper §V-A sub-flow division).
	edges := []graph.Edge{}
	for i := 1; i <= 30; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.VertexID(i), W: 1})
	}
	g := graph.FromEdges(31, edges)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumFlows() != 4 {
		t.Fatalf("NumFlows = %d, want 4", p.NumFlows())
	}
}

func TestPartitionDefaultCap(t *testing.T) {
	g := chainGraph(10)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 0)
	if p.Cap != DefaultCap {
		t.Fatalf("Cap = %d", p.Cap)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCoversRealGraph(t *testing.T) {
	cfg := gen.TestDataset(3)
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumFlows() < 2 {
		t.Fatalf("real graph produced %d flows", p.NumFlows())
	}
}

func TestFlowGraphCrossEdges(t *testing.T) {
	g := chainGraph(4) // flows {0,1} and {2,3} with cap 2
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	f01, f23 := p.Flow(0), p.Flow(2)
	if f01 == f23 {
		t.Fatalf("expected two flows, got one (%d)", f01)
	}
	found := false
	fg.OutFlows(f01, func(x int32) { found = found || x == f23 })
	if !found {
		t.Fatal("cross edge 1->2 not indexed")
	}
	if fg.OutDegree(f23) != 0 {
		t.Fatalf("flow %d should have no downstream", f23)
	}
	// Reverse index matches.
	up := false
	fg.InFlows(f23, func(x int32) { up = up || x == f01 })
	if !up {
		t.Fatal("reverse index missing")
	}
}

func TestFlowGraphIncremental(t *testing.T) {
	g := chainGraph(4)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	fA, fB := p.Flow(0), p.Flow(2)
	// Add a second cross edge, then delete both: the f->g edge must
	// survive the first deletion (refcount) and vanish after the second.
	fg.AddEdge(0, 3)
	fg.DeleteEdge(1, 2)
	deg := fg.OutDegree(fA)
	if deg != 1 {
		t.Fatalf("after one delete, out-degree = %d, want 1", deg)
	}
	fg.DeleteEdge(0, 3)
	if fg.OutDegree(fA) != 0 {
		t.Fatal("flow edge survived both deletions")
	}
	_ = fB
}

func TestFlowGraphIntraFlowIgnored(t *testing.T) {
	g := chainGraph(4)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 4)
	fg := NewFlowGraph(g, p)
	for fi := int32(0); int(fi) < fg.NumFlows(); fi++ {
		if fg.OutDegree(fi) != 0 {
			t.Fatalf("intra-flow edges leaked into the flow graph at %d", fi)
		}
	}
}

func TestReach(t *testing.T) {
	// Three flows in a line: A -> B -> C.
	g := chainGraph(6)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	a := p.Flow(0)
	r := fg.Reach([]int32{a}, 0)
	if len(r) != 3 {
		t.Fatalf("Reach from head = %v, want all 3 flows", r)
	}
	c := p.Flow(5)
	r = fg.Reach([]int32{c}, 0)
	if len(r) != 1 || !r[c] {
		t.Fatalf("Reach from tail = %v", r)
	}
}

func TestScheduleLevelsOnLine(t *testing.T) {
	g := chainGraph(6)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	groups := Schedule(fg, []int32{p.Flow(0), p.Flow(2), p.Flow(4)})
	if len(groups) != 3 {
		t.Fatalf("groups = %+v", groups)
	}
	for i, grp := range groups {
		if grp.Level != i {
			t.Fatalf("group %d has level %d: %+v", i, grp.Level, groups)
		}
		if len(grp.Flows) != 1 {
			t.Fatalf("line must not merge flows: %+v", grp)
		}
	}
	if groups[0].Flows[0] != p.Flow(0) || groups[2].Flows[0] != p.Flow(4) {
		t.Fatalf("level order wrong: %+v", groups)
	}
}

func TestScheduleMergesCycles(t *testing.T) {
	// Two flows with edges both ways must merge into one group (§V-A).
	g := graph.NewStreaming(4)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1, W: 1}) // flow A internal
	g.AddEdge(graph.Edge{Src: 2, Dst: 3, W: 1}) // flow B internal
	g.AddEdge(graph.Edge{Src: 1, Dst: 2, W: 1}) // A -> B
	g.AddEdge(graph.Edge{Src: 3, Dst: 0, W: 1}) // B -> A
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	fa, fb := p.Flow(0), p.Flow(2)
	if fa == fb {
		t.Skip("partition merged the cycle already; nothing to schedule")
	}
	groups := Schedule(fg, []int32{fa, fb})
	if len(groups) != 1 {
		t.Fatalf("cyclic flows not merged: %+v", groups)
	}
	if len(groups[0].Flows) != 2 {
		t.Fatalf("merged group wrong: %+v", groups[0])
	}
}

func TestScheduleEmpty(t *testing.T) {
	g := chainGraph(2)
	f := etree.NewForest(g, etree.Forward)
	p := NewPartition(f, 2)
	fg := NewFlowGraph(g, p)
	if got := Schedule(fg, nil); got != nil {
		t.Fatalf("Schedule(nil) = %+v", got)
	}
}

func TestTarjanKnownGraph(t *testing.T) {
	// 0->1->2->0 (SCC), 2->3, 3->4, 4->3 (SCC), 5 isolated.
	adj := [][]int32{{1}, {2}, {0, 3}, {4}, {3}, {}}
	comp := tarjanSCC(6, adj)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("first SCC split: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Fatalf("second SCC split: %v", comp)
	}
	if comp[0] == comp[3] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("distinct SCCs merged: %v", comp)
	}
}

// Property: scheduling levels respect every cross-group dependency edge.
func TestSchedulePropertyTopological(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := gen.Config{Kind: gen.ER, NumV: 80, NumE: 200, Seed: seed}
		g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
		f := etree.NewForest(g, etree.Forward)
		p := NewPartition(f, 8)
		if p.Validate() != nil {
			return false
		}
		fg := NewFlowGraph(g, p)
		impacted := map[int32]bool{}
		list := []int32{}
		for i := 0; i < 10; i++ {
			f := p.Flow(graph.VertexID(r.Intn(cfg.NumV)))
			impacted[f] = true
			list = append(list, f) // duplicates on purpose: Schedule dedupes
		}
		groups := Schedule(fg, list)
		levelOf := map[int32]int{}
		groupOf := map[int32]int{}
		for gi, grp := range groups {
			for _, fl := range grp.Flows {
				levelOf[fl] = grp.Level
				groupOf[fl] = gi
			}
		}
		// Each impacted flow appears exactly once.
		if len(levelOf) != len(impacted) {
			return false
		}
		ok := true
		for fl := range impacted {
			fg.OutFlows(fl, func(dn int32) {
				if !impacted[dn] || groupOf[fl] == groupOf[dn] {
					return
				}
				if levelOf[dn] <= levelOf[fl] {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPartitionBuild(b *testing.B) {
	cfg := gen.TestDataset(1)
	cfg.NumV, cfg.NumE = 20000, 160000
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	f := etree.NewForest(g, etree.Forward)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPartition(f, DefaultCap)
	}
}
