package gio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestEdgesRoundTrip(t *testing.T) {
	in := []graph.Edge{{Src: 0, Dst: 1, W: 2.5}, {Src: 7, Dst: 3, W: 1}}
	var buf bytes.Buffer
	if err := WriteEdges(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, numV, err := ReadEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if numV != 8 {
		t.Fatalf("numV = %d, want 8", numV)
	}
	if len(out) != len(in) {
		t.Fatalf("edges = %v", out)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("edge %d: %v vs %v", i, in[i], out[i])
		}
	}
}

func TestReadEdgesDefaultsAndComments(t *testing.T) {
	src := "# SNAP-style\n\n0 1\n1 2 3.5\n"
	edges, numV, err := ReadEdges(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || numV != 3 {
		t.Fatalf("edges=%v numV=%d", edges, numV)
	}
	if edges[0].W != 1 {
		t.Fatalf("default weight = %v", edges[0].W)
	}
	if edges[1].W != 3.5 {
		t.Fatalf("explicit weight = %v", edges[1].W)
	}
}

func TestReadEdgesErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "x 1\n", "1 y\n", "1 2 z\n"} {
		if _, _, err := ReadEdges(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadEdges(%q) accepted garbage", bad)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	in := []graph.Batch{
		{
			{Edge: graph.Edge{Src: 1, Dst: 2, W: 3}},
			{Edge: graph.Edge{Src: 2, Dst: 0, W: 1}, Del: true},
		},
		{
			{Edge: graph.Edge{Src: 5, Dst: 4, W: 2}},
		},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 2 || len(out[1]) != 1 {
		t.Fatalf("stream shape wrong: %v", out)
	}
	if !out[0][1].Del || out[0][1].Src != 2 {
		t.Fatalf("deletion lost: %+v", out[0][1])
	}
}

func TestReadStreamVerboseOps(t *testing.T) {
	src := "add 0 1 2\ndelete 1 0 1\n"
	batches, err := ReadStream(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %v", batches)
	}
	if batches[0][0].Del || !batches[0][1].Del {
		t.Fatal("verbose op names misparsed")
	}
}

func TestReadStreamErrors(t *testing.T) {
	for _, bad := range []string{"q 1 2 3\n", "a 1\n", "a x 2 3\n", "a 1 y 3\n", "a 1 2 z\n"} {
		if _, err := ReadStream(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadStream(%q) accepted garbage", bad)
		}
	}
}

func TestFileRoundTripThroughWorkload(t *testing.T) {
	dir := t.TempDir()
	cfg := gen.TestDataset(71)
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.DefaultStream(100, 3, 72))

	ep := filepath.Join(dir, "g.edges")
	sp := filepath.Join(dir, "g.stream")
	if err := SaveEdgesFile(ep, w.Initial); err != nil {
		t.Fatal(err)
	}
	if err := SaveStreamFile(sp, w.Batches); err != nil {
		t.Fatal(err)
	}
	le, numV, err := LoadEdgesFile(ep)
	if err != nil {
		t.Fatal(err)
	}
	if len(le) != len(w.Initial) {
		t.Fatalf("edges: %d vs %d", len(le), len(w.Initial))
	}
	if numV > w.NumV {
		t.Fatalf("implied numV %d exceeds workload %d", numV, w.NumV)
	}
	lb, err := LoadStreamFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) != len(w.Batches) {
		t.Fatalf("batches: %d vs %d", len(lb), len(w.Batches))
	}
	// Replaying the loaded stream on the loaded graph applies cleanly.
	g := graph.FromEdges(w.NumV, le)
	for bi, b := range lb {
		if applied := g.ApplyBatch(b); len(applied) != len(b) {
			t.Fatalf("batch %d: %d/%d applied", bi, len(applied), len(b))
		}
	}
}

func TestLoadMissingFiles(t *testing.T) {
	if _, _, err := LoadEdgesFile("/nonexistent/x.edges"); err == nil {
		t.Fatal("missing edge file not reported")
	}
	if _, err := LoadStreamFile("/nonexistent/x.stream"); err == nil {
		t.Fatal("missing stream file not reported")
	}
}

func TestReadSeeds(t *testing.T) {
	src := "# seeds\n0 1\n42 0\n"
	seeds, err := ReadSeeds(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != 1 || seeds[42] != 0 {
		t.Fatalf("seeds = %v", seeds)
	}
	for _, bad := range []string{"1\n", "x 1\n", "1 y\n", "1 -2\n"} {
		if _, err := ReadSeeds(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadSeeds(%q) accepted garbage", bad)
		}
	}
}
