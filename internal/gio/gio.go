// Package gio reads and writes the on-disk formats of the paper's
// artifact: edge-tuple files for (initial) graphs and stream files of
// batched updates, so workloads can be materialized once and replayed
// across engines or external tools (cf. the artifact appendix: "These
// graphs are stored as lists of edge tuples ... edge updates are then
// stored in a file as edge streams").
//
// Formats (text, '#' comments ignored):
//
//	graph file:   "<src> <dst> <weight>" per line
//	stream file:  "batch <n>" separators, then "a|d <src> <dst> <weight>"
package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteEdges writes an edge list in the artifact's tuple format.
func WriteEdges(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdges parses an edge-tuple file. A missing weight column defaults to
// 1 so plain SNAP-style "src dst" files load too. It also returns the
// number of vertices implied by the largest ID.
func ReadEdges(r io.Reader) (edges []graph.Edge, numV int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("gio: line %d: want 'src dst [weight]', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("gio: line %d: bad source: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("gio: line %d: bad destination: %v", line, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, 0, fmt.Errorf("gio: line %d: bad weight: %v", line, err)
			}
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), W: w})
		if int(src)+1 > numV {
			numV = int(src) + 1
		}
		if int(dst)+1 > numV {
			numV = int(dst) + 1
		}
	}
	return edges, numV, sc.Err()
}

// WriteStream writes update batches in the artifact's stream format.
func WriteStream(w io.Writer, batches []graph.Batch) error {
	bw := bufio.NewWriter(w)
	for bi, b := range batches {
		if _, err := fmt.Fprintf(bw, "batch %d\n", bi); err != nil {
			return err
		}
		for _, u := range b {
			op := "a"
			if u.Del {
				op = "d"
			}
			if _, err := fmt.Fprintf(bw, "%s %d %d %g\n", op, u.Src, u.Dst, u.W); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadStream parses a stream file into batches. Updates before the first
// "batch" separator form batch 0.
func ReadStream(r io.Reader) ([]graph.Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var batches []graph.Batch
	var cur graph.Batch
	started := false
	line := 0
	flush := func() {
		if started {
			batches = append(batches, cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "batch") {
			flush()
			started = true
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("gio: line %d: want 'a|d src dst [weight]', got %q", line, text)
		}
		var del bool
		switch fields[0] {
		case "a", "add":
			del = false
		case "d", "del", "delete":
			del = true
		default:
			return nil, fmt.Errorf("gio: line %d: unknown op %q", line, fields[0])
		}
		src, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad source: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad destination: %v", line, err)
		}
		w := 1.0
		if len(fields) >= 4 {
			w, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad weight: %v", line, err)
			}
		}
		started = true
		cur = append(cur, graph.Update{
			Edge: graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), W: w},
			Del:  del,
		})
	}
	flush()
	return batches, sc.Err()
}

// ReadSeeds parses a label-propagation seeds file: "<vertex> <label>" per
// line ('#' comments ignored) — the artifact's lj-seeds-file format.
func ReadSeeds(r io.Reader) (map[graph.VertexID]int, error) {
	sc := bufio.NewScanner(r)
	out := make(map[graph.VertexID]int)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("gio: line %d: want 'vertex label', got %q", line, text)
		}
		v, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad vertex: %v", line, err)
		}
		lab, err := strconv.Atoi(fields[1])
		if err != nil || lab < 0 {
			return nil, fmt.Errorf("gio: line %d: bad label %q", line, fields[1])
		}
		out[graph.VertexID(v)] = lab
	}
	return out, sc.Err()
}

// LoadSeedsFile reads a seeds file from disk.
func LoadSeedsFile(path string) (map[graph.VertexID]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSeeds(f)
}

// LoadEdgesFile reads an edge file from disk.
func LoadEdgesFile(path string) ([]graph.Edge, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadEdges(f)
}

// LoadStreamFile reads a stream file from disk.
func LoadStreamFile(path string) ([]graph.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}

// SaveEdgesFile writes an edge file to disk.
func SaveEdgesFile(path string, edges []graph.Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdges(f, edges); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveStreamFile writes a stream file to disk.
func SaveStreamFile(path string, batches []graph.Batch) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteStream(f, batches); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
