package wal

import (
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
)

// DurableLocal makes the local engine (triangle counting, k-core) durable.
// Local algorithms have values but no key-edge parents, so snapshots reuse
// the selective frame format with an empty parent column (the codec's
// np=0 case) — ReadSnapshot returns Parent == nil and recovery installs
// values only.
type DurableLocal struct {
	Eng *engine.Local
	durableCore
}

func (d *DurableLocal) wire() {
	d.checkBatch = d.Eng.G.CheckBatch
	d.applyBatch = d.Eng.ProcessBatchCtx
	d.writeSnap = func(seq uint64) error {
		return writeSnapshotWith(d.cfg.Wal, seq, d.Eng.G, d.Eng.SnapshotState(), nil, d.dedup)
	}
}

// NewDurableLocal builds a fresh engine over g (running the static solve)
// and makes it durable; the directory must not already hold a snapshot or
// log — recover those with RecoverLocal instead.
func NewDurableLocal(g *graph.Streaming, alg algo.Local, ecfg engine.Config, dc DurableConfig) (*DurableLocal, error) {
	log, err := openFreshLog(dc, "RecoverLocal")
	if err != nil {
		return nil, err
	}
	d := &DurableLocal{Eng: engine.NewLocal(g, alg, ecfg)}
	d.log, d.cfg = log, dc
	d.initDedup(nil)
	d.wire()
	if err := d.Snapshot(); err != nil {
		log.Close()
		return nil, err
	}
	return d, nil
}

// RecoverLocal rebuilds a durable local engine from dc.Wal.Dir: newest
// validating snapshot, values installed without a from-scratch solve, WAL
// tail replayed exactly once. The local engines' unique seeded fixpoints
// make the recovered state bit-exact with an uninterrupted run.
func RecoverLocal(alg algo.Local, ecfg engine.Config, dc DurableConfig) (*DurableLocal, RecoveryStats, error) {
	t0 := time.Now()
	var rs RecoveryStats
	var sd *SnapshotData
	if err := newestValidating(dc.Wal.Dir, func(path string) error {
		var err error
		sd, err = ReadSnapshot(path)
		return err
	}); err != nil {
		return nil, rs, err
	}
	rs.SnapshotSeq = sd.Seq

	g := graph.FromEdges(sd.NumV, sd.Edges)
	eng, err := engine.NewLocalFromState(g, alg, ecfg, sd.Vals)
	if err != nil {
		return nil, rs, err
	}
	d := &DurableLocal{Eng: eng}
	d.cfg = dc
	d.initDedup(sd.Dedup)
	log, err := replayTail(dc, sd.Seq, d.dedup, &rs, func(b graph.Batch) error {
		_, err := eng.ProcessBatchE(b)
		return err
	})
	if err != nil {
		return nil, rs, err
	}
	rs.Duration = time.Since(t0)
	if m := dc.Wal.Metrics; m != nil {
		m.Gauge("recovery.ns").Set(float64(rs.Duration.Nanoseconds()))
	}
	d.log, d.seq = log, rs.LastSeq
	d.wire()
	return d, rs, nil
}
