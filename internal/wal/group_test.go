package wal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// The group-commit suite (DESIGN.md §4.11): concurrent appenders through
// GroupCommit must keep the on-disk sequence chain contiguous, preserve each
// session's submission order, share fsyncs under FsyncAlways, and leave a
// directory that recovers exactly like the single-writer path.

// tagBatch encodes (session, i) as a single addition so a log replay can
// reconstruct which session appended which batch in which order.
func tagBatch(session, i int) graph.Batch {
	return graph.Batch{{Edge: graph.Edge{
		Src: graph.VertexID(session),
		Dst: graph.VertexID(16 + i),
		W:   graph.Weight(1 + i%7),
	}}}
}

// TestGroupCommitConcurrentAppenders is the acceptance suite's core: 8
// goroutine appenders race through one GroupCommit under FsyncAlways while a
// single applier feeds the engine in logged order. Run under -race.
func TestGroupCommitConcurrentAppenders(t *testing.T) {
	const (
		sessions   = 8
		perSession = 25
		total      = sessions * perSession
	)
	w := testWorkload(7, 64, 1, 10)
	alg := algo.SSSP{Src: 0}
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	dc := DurableConfig{Wal: Options{
		Dir: dir, Policy: FsyncAlways, Metrics: reg,
		// Stretch each fsync so appenders pile up behind the in-flight sync
		// and groups form even on a single-core scheduler.
		hook: func(site string) error {
			if site == "append.sync" {
				time.Sleep(300 * time.Microsecond)
			}
			return nil
		},
	}}
	d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}

	type logged struct {
		seq uint64
		b   graph.Batch
	}
	applyQ := make(chan logged, total)
	groupSize := reg.Histogram("serve.group_commit_size")
	gc := d.Group(func(seq uint64, b graph.Batch) {
		applyQ <- logged{seq, b}
	}, groupSize)

	var applyErr error
	applierDone := make(chan struct{})
	go func() {
		defer close(applierDone)
		for lg := range applyQ {
			if _, err := d.ApplyLogged(context.Background(), lg.seq, lg.b); err != nil && applyErr == nil {
				applyErr = err
			}
		}
	}()

	// ackSeqs[s][i] is the sequence session s got back for its i-th batch.
	ackSeqs := make([][]uint64, sessions)
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		ackSeqs[s] = make([]uint64, perSession)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				seq, err := gc.Append(tagBatch(s, i))
				if err != nil {
					errs[s] = err
					return
				}
				ackSeqs[s][i] = seq
			}
		}(s)
	}
	wg.Wait()
	close(applyQ)
	<-applierDone
	for s, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
	}
	if applyErr != nil {
		t.Fatalf("applier: %v", applyErr)
	}
	if got := d.Seq(); got != total {
		t.Fatalf("applied through seq %d, want %d", got, total)
	}

	// Acks are durable-on-return: each session's acked sequences must be
	// strictly increasing (its own FIFO), and the union must be 1..total.
	seen := make([]bool, total+1)
	for s := 0; s < sessions; s++ {
		for i, seq := range ackSeqs[s] {
			if i > 0 && seq <= ackSeqs[s][i-1] {
				t.Fatalf("session %d: ack %d (=%d) not after ack %d (=%d)", s, i, seq, i-1, ackSeqs[s][i-1])
			}
			if seq < 1 || seq > total || seen[seq] {
				t.Fatalf("session %d: duplicate or out-of-range ack seq %d", s, seq)
			}
			seen[seq] = true
		}
	}

	// Fsync sharing: with 8 writers queuing behind each in-flight sync, the
	// fsync count must be well below one per append (Fig S5's claim).
	appends := reg.Counter("wal.appends").Value()
	fsyncs := reg.Counter("wal.fsyncs").Value()
	if appends != total {
		t.Fatalf("wal.appends = %d, want %d", appends, total)
	}
	if fsyncs*2 >= appends {
		t.Fatalf("no fsync sharing: %d fsyncs for %d appends", fsyncs, appends)
	}
	if groupSize.Sum() != total {
		t.Fatalf("group_commit_size sum %d, want %d (every append in exactly one group)", groupSize.Sum(), total)
	}
	t.Logf("%d appends, %d fsyncs (amplification %.3f), max group %d",
		appends, fsyncs, float64(fsyncs)/float64(appends), groupSize.Max())

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The on-disk log is the authoritative order. Replay it: the chain must
	// be contiguous 1..total, and each session's tags must appear in
	// submission order — per-session FIFO survived the races.
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	nextTag := make([]int, sessions)
	g := graph.FromEdges(w.NumV, w.Initial)
	var prev uint64
	replayed := 0
	err = l.Replay(0, func(seq uint64, b graph.Batch) error {
		if seq != prev+1 {
			t.Fatalf("replay gap: %d after %d", seq, prev)
		}
		prev = seq
		replayed++
		if len(b) != 1 || b[0].Del {
			t.Fatalf("seq %d: untagged batch %v", seq, b)
		}
		s, i := int(b[0].Src), int(b[0].Dst)-16
		if s < 0 || s >= sessions || i != nextTag[s] {
			t.Fatalf("seq %d: session %d batch %d out of order (want batch %d)", seq, s, i, nextTag[s])
		}
		nextTag[s]++
		g.ApplyBatch(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != total {
		t.Fatalf("replayed %d frames, want %d", replayed, total)
	}

	// The served state equals a from-scratch solve over the logged stream.
	vals, _ := algo.SolveSelective(g, alg)
	if !valsEqual(d.Eng.Values(), vals) {
		t.Fatal("engine state after concurrent group commit differs from replay oracle")
	}
}

// runServingUntilCrash is runUntilCrash's serving-mode twin: batches flow
// through the GroupCommit (append, then ApplyLogged), and an injected crash
// abandons the directory exactly as process death would.
func runServingUntilCrash(t *testing.T, w gen.Workload, alg algo.Selective, dc DurableConfig) (acked int, crashed bool) {
	t.Helper()
	d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		if _, ok := err.(*crashError); ok {
			return 0, true
		}
		t.Fatal(err)
	}
	gc := d.Group(nil, nil)
	for _, b := range w.Batches {
		seq, err := gc.Append(b)
		if err != nil {
			if _, ok := err.(*crashError); ok {
				d.Abandon()
				return acked, true
			}
			t.Fatal(err)
		}
		if _, err := d.ApplyLogged(context.Background(), seq, b); err != nil {
			if _, ok := err.(*crashError); ok {
				d.Abandon()
				return acked, true
			}
			t.Fatal(err)
		}
		acked++
	}
	d.Abandon()
	return acked, false
}

// TestServingModeCrashRecovery drives the crash-point methodology through
// the group-commit path: a directory written in serving mode must recover
// with exactly-once replay accounting (Replayed == LastSeq - SnapshotSeq),
// no acknowledged batch lost, and oracle-equal state.
func TestServingModeCrashRecovery(t *testing.T) {
	w := testWorkload(23, 96, 8, 50)
	alg := algo.SSSP{Src: 0}

	// Count pass: how many injection sites does the serving path reach?
	countPlan := &crashPlan{}
	{
		dir := t.TempDir()
		if _, crashed := runServingUntilCrash(t, w, alg, crashConfig(dir, FsyncAlways, countPlan, nil)); crashed {
			t.Fatal("count pass must not crash")
		}
	}
	sites := countPlan.count
	if sites < 15 {
		t.Fatalf("serving path reached only %d sites", sites)
	}

	for _, tear := range []int{-1, 5} {
		for _, at := range []int{sites / 4, sites / 2, 3 * sites / 4, sites} {
			dir := t.TempDir()
			plan := &crashPlan{at: at, tear: tear}
			dc := crashConfig(dir, FsyncAlways, plan, nil)
			acked, crashed := runServingUntilCrash(t, w, alg, dc)
			if !crashed {
				t.Fatalf("site %d/%d tear %d: crash did not fire", at, sites, tear)
			}
			if !HasSnapshot(dir) {
				if acked != 0 {
					t.Fatalf("site %d (%s): %d acked without a snapshot", at, plan.fired, acked)
				}
				continue
			}
			verifyRecovery(t, w, alg, dc, acked, "serving/"+plan.fired)
		}
	}
}

// TestAppendFailurePoisonsLog is the satellite-1 regression: a failed or
// torn frame write leaves l.size out of step with the file, so the first
// error must surface as-is, every later Append/Sync must refuse with
// ErrPoisoned, and a re-Open must repair the torn bytes and resume.
func TestAppendFailurePoisonsLog(t *testing.T) {
	b := graph.Batch{{Edge: graph.Edge{Src: 0, Dst: 1, W: 1}}}

	t.Run("torn write", func(t *testing.T) {
		dir := t.TempDir()
		// Sites under FsyncAlways: seq 1 = rotate.create, append.write,
		// append.sync; seq 2's append.write is site 4.
		plan := &crashPlan{at: 4, tear: 3}
		l, err := Open(Options{Dir: dir, Policy: FsyncAlways, hook: plan.hook})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(1, b); err != nil {
			t.Fatal(err)
		}
		err = l.Append(2, b)
		ce, ok := err.(*crashError)
		if !ok || ce.Site != "append.write" {
			t.Fatalf("first failure must be the original error, got %v (fired %q)", err, plan.fired)
		}
		if l.LastSeq() != 1 {
			t.Fatalf("failed append advanced lastSeq to %d", l.LastSeq())
		}
		// The log now has 3 stray bytes; any further append would interleave
		// a frame mid-stream. Sticky refusal, not silent reuse:
		if err := l.Append(2, b); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("second append after failure: got %v, want ErrPoisoned", err)
		}
		if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("sync after failure: got %v, want ErrPoisoned", err)
		}
		l.abandon()

		// Re-Open is the only way forward: repair truncates the torn bytes
		// and the chain resumes where the last durable frame left it.
		l2, err := Open(Options{Dir: dir, Policy: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		if l2.LastSeq() != 1 {
			t.Fatalf("repair recovered lastSeq %d, want 1", l2.LastSeq())
		}
		if err := l2.Append(2, b); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		var seqs []uint64
		if err := l2.Replay(0, func(seq uint64, _ graph.Batch) error {
			seqs = append(seqs, seq)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
			t.Fatalf("replay after repair: %v", seqs)
		}
		l2.Close()
	})

	t.Run("failed fsync", func(t *testing.T) {
		dir := t.TempDir()
		plan := &crashPlan{at: 3, tear: -1} // seq 1's append.sync
		l, err := Open(Options{Dir: dir, Policy: FsyncAlways, hook: plan.hook})
		if err != nil {
			t.Fatal(err)
		}
		err = l.Append(1, b)
		if ce, ok := err.(*crashError); !ok || ce.Site != "append.sync" {
			t.Fatalf("got %v, want the original crash at append.sync", err)
		}
		// The kernel may have dropped the dirty pages; retrying cannot make
		// the frame durable, so the log must refuse.
		if err := l.Append(2, b); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("append after failed fsync: got %v, want ErrPoisoned", err)
		}
		l.abandon()
	})

	t.Run("sequence errors do not poison", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Policy: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if err := l.Append(1, b); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(7, b); err == nil || errors.Is(err, ErrPoisoned) {
			t.Fatalf("gap append: got %v, want a plain validation error", err)
		}
		// Nothing touched disk, so the log stays usable.
		if err := l.Append(2, b); err != nil {
			t.Fatalf("append after validation error: %v", err)
		}
	})
}

// TestGroupWindowSharesFsyncs covers the commit window (Options.GroupWindow):
// with several advertised writers, a sync leader yields before its fsync so
// concurrent appends land and share it — the mechanism that makes groups form
// on few-core hosts where appenders rarely overlap an in-flight fsync by
// accident. A lone writer must skip the window entirely.
func TestGroupWindowSharesFsyncs(t *testing.T) {
	const (
		sessions   = 4
		perSession = 15
		total      = sessions * perSession
	)
	w := testWorkload(11, 64, 1, 10)
	alg := algo.SSSP{Src: 0}
	reg := metrics.NewRegistry()
	dc := DurableConfig{Wal: Options{
		Dir: t.TempDir(), Policy: FsyncAlways, Metrics: reg,
		GroupWindow: 2 * time.Millisecond,
	}}
	d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	gc := d.Group(nil, nil)
	gc.AddWriter(sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				if _, err := gc.Append(tagBatch(s, i)); err != nil {
					t.Errorf("session %d append %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	gc.AddWriter(-sessions)
	appends := reg.Counter("wal.appends").Value()
	fsyncs := reg.Counter("wal.fsyncs").Value()
	if appends != total {
		t.Fatalf("appends = %d, want %d", appends, total)
	}
	if fsyncs*2 > appends {
		t.Fatalf("window never formed groups: %d fsyncs for %d appends", fsyncs, appends)
	}
	t.Logf("window grouping: %d appends, %d fsyncs (amplification %.3f)",
		appends, fsyncs, float64(fsyncs)/float64(appends))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Lone writer: with no concurrency advertised and none in flight, the
	// leader must not sleep — 20 sequential appends under a 50ms window
	// would otherwise take a full second.
	dc2 := DurableConfig{Wal: Options{
		Dir: t.TempDir(), Policy: FsyncAlways,
		GroupWindow: 50 * time.Millisecond,
	}}
	d2, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc2)
	if err != nil {
		t.Fatal(err)
	}
	gc2 := d2.Group(nil, nil)
	t0 := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := gc2.Append(tagBatch(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("lone writer paid the commit window: 20 appends took %v", elapsed)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitFsyncFailureExactlyOnce drives several appenders into one
// commit window and fails the covering fsync: every parked writer must
// observe the failure exactly once (its own Append returns the error, never
// a false ack), the log must poison consistently for later appends, and
// after a ReopenLog each writer's resend of the SAME idempotency key must
// land exactly once — the already-applied ones dedup, the rest append fresh.
func TestGroupCommitFsyncFailureExactlyOnce(t *testing.T) {
	const writers = 6
	w := testWorkload(41, 64, 1, 10)
	alg := algo.SSSP{Src: 0}
	var failSync atomic.Bool
	dc := DurableConfig{DedupWindow: 8, Wal: Options{
		Dir: t.TempDir(), Policy: FsyncAlways,
		// Hold the window open so the writers pile into one sync round, and
		// fail that round's fsync when armed.
		GroupWindow: 2 * time.Millisecond,
		hook: func(site string) error {
			if site == "append.sync" && failSync.CompareAndSwap(true, false) {
				return errors.New("injected fsync failure")
			}
			return nil
		},
	}}
	d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	type logged struct {
		seq uint64
		b   graph.Batch
	}
	applyQ := make(chan logged, 64)
	gc := d.Group(func(seq uint64, b graph.Batch) { applyQ <- logged{seq, b} }, nil)
	applierDone := make(chan error, 1)
	go func() {
		for lg := range applyQ {
			if _, err := d.ApplyLogged(context.Background(), lg.seq, lg.b); err != nil {
				applierDone <- err
				return
			}
		}
		applierDone <- nil
	}()
	gc.AddWriter(writers)

	// One healthy append proves the rig, then arm the failure and park all
	// writers in the same commit window.
	if _, err := gc.Append(tagBatch(0, 0)); err != nil {
		t.Fatal(err)
	}
	failSync.Store(true)
	type result struct {
		id  int
		err error
	}
	results := make(chan result, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			_, _, err := gc.AppendTagged(fmt.Sprintf("w%d", i), 1, tagBatch(i+1, 1))
			results <- result{i, err}
		}(i)
	}
	nerr := 0
	for i := 0; i < writers; i++ {
		r := <-results
		if r.err == nil {
			t.Fatalf("writer %d was acked by a failed commit window", r.id)
		}
		nerr++
	}
	if nerr != writers {
		t.Fatalf("%d error observations for %d parked writers", nerr, writers)
	}
	// Poisoned consistently: the next append refuses without touching disk.
	if _, err := gc.Append(tagBatch(9, 9)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("post-failure append = %v, want ErrPoisoned", err)
	}

	// Recover the serving log in place, then resend every writer's key.
	var rerr error
	for i := 0; i < 200; i++ {
		if rerr = d.ReopenLog(); rerr == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if rerr != nil {
		t.Fatalf("ReopenLog never succeeded: %v", rerr)
	}
	for i := 0; i < writers; i++ {
		if _, _, err := gc.AppendTagged(fmt.Sprintf("w%d", i), 1, tagBatch(i+1, 1)); err != nil {
			t.Fatalf("writer %d resend: %v", i, err)
		}
	}
	// Exactly once end to end: 1 healthy + one instance of each writer's
	// batch, whether its original landed before the poison or its resend
	// did after the reopen.
	if got, want := gc.LastSeq(), uint64(1+writers); got != want {
		t.Fatalf("LastSeq = %d, want %d (duplicate or lost appends)", got, want)
	}
	gc.AddWriter(-writers)
	close(applyQ)
	if err := <-applierDone; err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The directory agrees: recovery replays to exactly LastSeq.
	d2, rs, err := RecoverSelective(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Seq() != uint64(1+writers) {
		t.Fatalf("recovered seq = %d, want %d", d2.Seq(), 1+writers)
	}
	_ = rs
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}
