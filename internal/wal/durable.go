package wal

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// snapRetain is how many snapshots survive retention. Two, not one: the WAL
// is truncated only through the *older* retained snapshot, so even if the
// newest snapshot is lost to bit rot, the older one plus the untrimmed log
// tail still reconstructs every acknowledged batch.
const snapRetain = 2

// ErrNoSnapshot means the directory has no snapshot to recover from.
var ErrNoSnapshot = errors.New("wal: no snapshot found")

// ErrEngineDirty refuses a snapshot of an engine whose last batch did not
// finish applying (canceled or failed mid-flight): the in-memory state is
// between batch boundaries, so a snapshot of it — though it would pass CRC
// validation — would silently become a corrupt recovery base. The WAL tail
// already holds the batch; recovery replays it onto the last good snapshot.
var ErrEngineDirty = errors.New("wal: engine dirty mid-batch; snapshot refused")

// HasSnapshot reports whether dir holds at least one snapshot file — the
// CLI's cue to recover instead of starting fresh.
func HasSnapshot(dir string) bool {
	seqs, err := Snapshots(dir)
	return err == nil && len(seqs) > 0
}

// DurableConfig configures a durable engine: the log options plus the
// snapshot cadence.
type DurableConfig struct {
	Wal Options
	// SnapshotEvery checkpoints after every N batches (0 = only the
	// creation-time snapshot; the log then grows unboundedly).
	SnapshotEvery int
	// DedupWindow, when positive, enables exactly-once ingest: the wrapper
	// keeps a per-client window of that many (clientSeq -> walSeq)
	// assignments, persists it inside snapshots, rebuilds it during
	// recovery, and the GroupCommit consults it so a resent batch is
	// acknowledged without a second append or apply.
	DedupWindow int
}

// durableCore is the engine-agnostic half of a durable wrapper: the
// log-before-apply protocol, the dirty bracket, group-commit serving mode,
// snapshot cadence, retention, and log truncation. The engine-specific half
// plugs in through the three closures.
type durableCore struct {
	mu        sync.Mutex // serializes batch apply, snapshot, and seq/dirty
	log       *Log
	cfg       DurableConfig
	seq       uint64 // sequence of the last acknowledged batch
	sinceSnap int
	dirty     bool         // a batch is mid-apply (or died mid-apply)
	gc        *GroupCommit // non-nil once Group() put the log in serving mode
	dedup     *DedupTable  // non-nil when cfg.DedupWindow > 0

	checkBatch func(graph.Batch) error
	applyBatch func(context.Context, graph.Batch) (engine.BatchStats, error)
	writeSnap  func(seq uint64) error // persist the engine state at seq
}

// ProcessBatch validates, logs, syncs (per policy), and only then applies
// one batch. A nil return means the batch is both applied and as durable as
// the fsync policy promises; a non-nil return means it was NOT acknowledged
// (a malformed batch mutated nothing; any other error leaves the wrapper
// unusable — recover from the directory).
func (d *durableCore) ProcessBatch(ctx context.Context, batch graph.Batch) (engine.BatchStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gc != nil {
		return engine.BatchStats{}, fmt.Errorf("wal: log is in serving mode; append through the group and apply with ApplyLogged")
	}
	if err := d.checkBatch(batch); err != nil {
		return engine.BatchStats{}, err // reject before logging garbage
	}
	seq := d.seq + 1
	if err := d.log.Append(seq, batch); err != nil {
		return engine.BatchStats{}, err
	}
	return d.applyLocked(ctx, seq, batch)
}

// applyLocked runs the engine over an already-logged batch and, on success,
// advances the acknowledged sequence and the snapshot cadence. The dirty
// flag brackets the apply: if the engine is canceled or fails mid-batch the
// flag stays set and Snapshot refuses to persist the half-applied state.
func (d *durableCore) applyLocked(ctx context.Context, seq uint64, batch graph.Batch) (engine.BatchStats, error) {
	d.dirty = true
	st, err := d.applyBatch(ctx, batch)
	if err != nil {
		return st, err
	}
	d.dirty = false
	d.seq = seq
	d.sinceSnap++
	if d.cfg.SnapshotEvery > 0 && d.sinceSnap >= d.cfg.SnapshotEvery {
		if err := d.snapshotLocked(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// ApplyLogged applies one batch that is already in the log under seq (the
// serving mode's apply half: sessions append through the GroupCommit, a
// single applier feeds the engine in logged order). seq must be exactly
// Seq()+1 — the logged order is the only apply order recovery can
// reproduce.
func (d *durableCore) ApplyLogged(ctx context.Context, seq uint64, batch graph.Batch) (engine.BatchStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if seq != d.seq+1 {
		return engine.BatchStats{}, fmt.Errorf("wal: apply seq %d, want %d (out of logged order)", seq, d.seq+1)
	}
	return d.applyLocked(ctx, seq, batch)
}

// Group puts the log in serving mode: concurrent appenders go through the
// returned GroupCommit (sharing fsyncs under FsyncAlways), onAppend observes
// every append in logged order, and ProcessBatch is disabled in favor of
// ApplyLogged. groupSize, when non-nil, records appends-per-fsync.
func (d *durableCore) Group(onAppend func(seq uint64, b graph.Batch), groupSize *metrics.Histogram) *GroupCommit {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gc == nil {
		d.gc = newGroupCommit(d.log, d.seq, onAppend, d.dedup, groupSize)
	}
	return d.gc
}

// Dedup exposes the dedup table (nil when DedupWindow is 0).
func (d *durableCore) Dedup() *DedupTable { return d.dedup }

// Dirty reports whether the engine died mid-batch (canceled apply), in
// which case the in-memory state is between batch boundaries and must not
// be snapshotted; recovery from the directory is the only safe exit.
func (d *durableCore) Dirty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirty
}

// Seq returns the sequence of the last acknowledged (applied) batch.
func (d *durableCore) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Log exposes the underlying log (read-only use).
func (d *durableCore) Log() *Log { return d.log }

// Snapshot checkpoints the current state at the current sequence, applies
// retention (keep snapRetain newest), and truncates the log through the
// older retained snapshot. It refuses (ErrEngineDirty) when the last batch
// died mid-apply — persisting that state would fabricate a corrupt-but-
// CRC-valid recovery base.
func (d *durableCore) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

// withLog runs f on the log, under the group's append mutex when the log is
// in serving mode so snapshot-driven syncs and truncations never interleave
// with a concurrent append's write or rotation.
func (d *durableCore) withLog(f func(l *Log) error) error {
	if d.gc != nil {
		return d.gc.withLog(f)
	}
	return f(d.log)
}

func (d *durableCore) snapshotLocked() error {
	if d.dirty {
		return ErrEngineDirty
	}
	// Frames <= seq must be durable before a snapshot claims to cover them.
	if d.cfg.Wal.Policy != FsyncOff {
		if err := d.withLog((*Log).Sync); err != nil {
			return err
		}
	}
	if err := d.writeSnap(d.seq); err != nil {
		return err
	}
	d.sinceSnap = 0
	if m := d.cfg.Wal.Metrics; m != nil {
		m.Counter("wal.snapshots").Inc()
	}
	seqs, err := Snapshots(d.cfg.Wal.Dir)
	if err != nil {
		return err
	}
	for len(seqs) > snapRetain {
		if err := removeSnapshot(d.cfg.Wal, seqs[0]); err != nil {
			return err
		}
		seqs = seqs[1:]
	}
	if len(seqs) == snapRetain {
		trim := seqs[0]
		return d.withLog(func(l *Log) error { return l.TruncateThrough(trim) })
	}
	return nil
}

// ReopenLog recovers from a poisoned log without losing the live engine —
// the degraded-mode exit. It must only be called once appends are failing
// (the log is poisoned) and, in serving mode, keeps retrying cheaply until
// the applier has caught up with every append that made it into the log.
//
// The in-memory engine is the recovery base: everything the applier has
// applied was either durable already or enqueued by an append whose ack may
// have failed only at the fsync — and every such batch's dedup record rode
// the same frame, so a client resend is acknowledged without reapply. The
// exit therefore snapshots the applied state (snapshot writes bypass the
// append-path fault window), restarts the chain there with a fresh log over
// the repaired directory, and clears the group's sticky sync error.
func (d *durableCore) ReopenLog() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dirty {
		return ErrEngineDirty
	}
	establish := func(nl *Log) error {
		if nl.LastSeq() > d.seq {
			return fmt.Errorf("wal: reopen: log holds seq %d but only %d applied; applier behind", nl.LastSeq(), d.seq)
		}
		if err := d.writeSnap(d.seq); err != nil {
			return err
		}
		if err := nl.resetTo(d.seq); err != nil {
			return err
		}
		d.sinceSnap = 0
		d.log = nl
		if m := d.cfg.Wal.Metrics; m != nil {
			m.Counter("wal.reopens").Inc()
		}
		seqs, err := Snapshots(d.cfg.Wal.Dir)
		if err != nil {
			return nil // retention is best-effort here; the base is durable
		}
		for len(seqs) > snapRetain {
			if err := removeSnapshot(d.cfg.Wal, seqs[0]); err != nil {
				return nil
			}
			seqs = seqs[1:]
		}
		return nil
	}
	if d.gc != nil {
		return d.gc.reopen(establish)
	}
	old := d.log
	old.abandon()
	nl, err := Open(d.cfg.Wal)
	if err != nil {
		return err
	}
	if err := establish(nl); err != nil {
		nl.abandon()
		d.log = old
		return err
	}
	return nil
}

// Close syncs (per policy) and closes the log. The engine stays usable but
// further batches are no longer durable. In serving mode the caller must
// have stopped every appender first.
func (d *durableCore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.withLog((*Log).Close)
}

// Abandon drops the log handle without any cleanup — the crash fuzzers' and
// chaos harnesses' process-death stand-in.
func (d *durableCore) Abandon() { d.log.abandon() }

// openFreshLog opens dc's directory for a brand-new durable engine,
// refusing directories that already hold recovery artifacts.
func openFreshLog(dc DurableConfig, recoverWith string) (*Log, error) {
	if HasSnapshot(dc.Wal.Dir) {
		return nil, fmt.Errorf("wal: %s already holds a snapshot; use %s", dc.Wal.Dir, recoverWith)
	}
	log, err := Open(dc.Wal)
	if err != nil {
		return nil, err
	}
	if log.LastSeq() != 0 {
		log.Close()
		return nil, fmt.Errorf("wal: %s holds a log but no snapshot; cannot establish a recovery base", dc.Wal.Dir)
	}
	return log, nil
}

// DurableSelective wraps a Selective engine with write-ahead durability:
// each batch is logged (and synced per policy) before the engine applies
// it, and periodic snapshots bound replay length and log size. After a
// crash, RecoverSelective restores the newest intact snapshot and replays
// the log tail to the exact pre-crash acknowledged state.
type DurableSelective struct {
	Eng *engine.Selective
	durableCore
}

func (d *DurableSelective) wire() {
	d.checkBatch = d.Eng.G.CheckBatch
	d.applyBatch = d.Eng.ProcessBatchCtx
	d.writeSnap = func(seq uint64) error {
		vals, parent := d.Eng.SnapshotState()
		return writeSnapshotWith(d.cfg.Wal, seq, d.Eng.G, vals, parent, d.dedup)
	}
}

// initDedup builds the dedup table for a fresh or recovered wrapper: the
// snapshot's persisted window when one survived (recovery), else empty.
func (d *durableCore) initDedup(fromSnap *DedupTable) {
	if d.cfg.DedupWindow <= 0 {
		return
	}
	if fromSnap != nil {
		d.dedup = fromSnap
		d.dedup.setWindow(d.cfg.DedupWindow)
		return
	}
	d.dedup = NewDedupTable(d.cfg.DedupWindow)
}

// NewDurableSelective builds a fresh engine over g (running the static
// solve) and makes it durable: the directory must not already hold a
// snapshot or log — recover those with RecoverSelective instead.
func NewDurableSelective(g *graph.Streaming, alg algo.Selective, ecfg engine.Config, dc DurableConfig) (*DurableSelective, error) {
	log, err := openFreshLog(dc, "RecoverSelective")
	if err != nil {
		return nil, err
	}
	d := &DurableSelective{Eng: engine.NewSelective(g, alg, ecfg)}
	d.log, d.cfg = log, dc
	d.initDedup(nil)
	d.wire()
	// The creation-time snapshot (seq 0) makes the initial graph and solve
	// durable, so recovery never depends on regenerating the input.
	if err := d.Snapshot(); err != nil {
		log.Close()
		return nil, err
	}
	return d, nil
}

// RecoveryStats summarizes one recovery.
type RecoveryStats struct {
	SnapshotSeq uint64        // sequence of the snapshot restored
	Replayed    int           // WAL frames replayed through the engine
	LastSeq     uint64        // last acknowledged sequence after recovery
	Duration    time.Duration // wall time of the whole recovery
}

// replayTail opens dc's log and replays every frame past snapSeq through
// apply, updating rs; it then repairs a log whose surviving tail predates
// the snapshot (an unsynced tail torn away) by restarting the sequence
// chain at the snapshot. Shared by every recovery path.
func replayTail(dc DurableConfig, snapSeq uint64, dedup *DedupTable, rs *RecoveryStats,
	apply func(b graph.Batch) error) (*Log, error) {
	log, err := Open(dc.Wal)
	if err != nil {
		return nil, err
	}
	last := snapSeq
	err = log.ReplayTagged(snapSeq, func(seq uint64, b graph.Batch, cid string, cseq uint64) error {
		if err := apply(b); err != nil {
			return err
		}
		if dedup != nil && cid != "" {
			dedup.Record(cid, cseq, seq)
		}
		last = seq
		rs.Replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	if log.LastSeq() < snapSeq {
		if err := log.resetTo(snapSeq); err != nil {
			log.Close()
			return nil, err
		}
	}
	rs.LastSeq = last
	if m := dc.Wal.Metrics; m != nil {
		m.Counter("recovery.replay_batches").Add(int64(rs.Replayed))
	}
	return log, nil
}

// newestValidating walks the directory's snapshots newest-first and returns
// the first path read accepts (the retention policy guarantees the log
// still covers the older one when the newest is damaged).
func newestValidating(dir string, read func(path string) error) error {
	seqs, err := Snapshots(dir)
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return ErrNoSnapshot
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		if lastErr = read(filepath.Join(dir, SnapName(seqs[i]))); lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("wal: no snapshot validates: %w", lastErr)
}

// RecoverSelective rebuilds a durable engine from dc.Wal.Dir: it restores
// the newest snapshot that validates (falling back to older ones — the
// retention policy guarantees the log still covers them), installs the
// snapshot's values and parents as the engine's refinement floors without a
// from-scratch solve, and replays the WAL tail through the engine. Each
// surviving sequence is applied exactly once; replay stops cleanly at the
// first torn or corrupt frame.
func RecoverSelective(alg algo.Selective, ecfg engine.Config, dc DurableConfig) (*DurableSelective, RecoveryStats, error) {
	t0 := time.Now()
	var rs RecoveryStats
	var sd *SnapshotData
	if err := newestValidating(dc.Wal.Dir, func(path string) error {
		var err error
		sd, err = ReadSnapshot(path)
		return err
	}); err != nil {
		return nil, rs, err
	}
	rs.SnapshotSeq = sd.Seq

	g := graph.FromEdges(sd.NumV, sd.Edges)
	eng, err := engine.NewSelectiveFromState(g, alg, ecfg, sd.Vals, sd.Parent)
	if err != nil {
		return nil, rs, err
	}
	d := &DurableSelective{Eng: eng}
	d.cfg = dc
	d.initDedup(sd.Dedup)
	log, err := replayTail(dc, sd.Seq, d.dedup, &rs, func(b graph.Batch) error {
		_, err := eng.ProcessBatchE(b)
		return err
	})
	if err != nil {
		return nil, rs, err
	}
	rs.Duration = time.Since(t0)
	if m := dc.Wal.Metrics; m != nil {
		m.Gauge("recovery.ns").Set(float64(rs.Duration.Nanoseconds()))
	}
	d.log, d.seq = log, rs.LastSeq
	d.wire()
	return d, rs, nil
}
