package wal

// Enc/Dec are the little-endian payload cursors shared by every WAL-framed
// wire and disk format in the repository. internal/dist's socket protocol
// and internal/serve's session protocol both compose messages from these
// primitives inside frames written by AppendFrame/WriteFrame, so a payload
// decodes with the same discipline everywhere: every length and range is
// validated before allocation, and a malformed payload yields an error,
// never a panic or garbage.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc is an append-only encoder; read the accumulated payload from B.
type Enc struct{ B []byte }

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.B = append(e.B, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// I32 appends an int32 in uint32 clothing.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Dec is a sticky-error cursor: after the first violation every read
// returns zero values and Err reports the failure.
type Dec struct {
	B   []byte
	bad bool
}

// Bad reports whether the cursor has tripped a violation.
func (d *Dec) Bad() bool { return d.bad }

func (d *Dec) fail() { d.bad = true }

// Take consumes n bytes, or trips the cursor when fewer remain.
func (d *Dec) Take(n int) []byte {
	if d.bad || len(d.B) < n {
		d.fail()
		return nil
	}
	p := d.B[:n]
	d.B = d.B[n:]
	return p
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	p := d.Take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	p := d.Take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	p := d.Take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I32 reads an int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	if n < 0 || n > len(d.B) {
		d.fail()
		return ""
	}
	return string(d.Take(n))
}

// Count reads a length prefix and validates it against the remaining bytes
// at elemLen bytes per element, so a hostile count can never drive an
// allocation past the payload it arrived in.
func (d *Dec) Count(elemLen int) int {
	n := int(d.U32())
	if d.bad || n < 0 || n*elemLen > len(d.B) {
		d.fail()
		return 0
	}
	return n
}

// Err finalizes the decode: it reports a tripped cursor or trailing bytes
// as an ErrCorrupt-wrapped error, and nil on a clean, fully consumed
// payload. what names the message for the error text.
func (d *Dec) Err(what string) error {
	if d.bad {
		return fmt.Errorf("%w: malformed %s message", ErrCorrupt, what)
	}
	if len(d.B) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %s message", ErrCorrupt, len(d.B), what)
	}
	return nil
}
