package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// ErrPoisoned marks a log whose on-disk state diverged from its in-memory
// bookkeeping: a write or fsync failed partway, so the file offset no longer
// matches l.size and a further append would interleave a frame mid-segment.
// Every later Append/Sync returns an error wrapping this sentinel; the only
// way forward is to close the handle and re-Open, whose repair truncates the
// damage.
var ErrPoisoned = errors.New("wal: log poisoned by earlier write failure")

// FsyncPolicy says when the log forces appended frames to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) syncs every Options.FsyncEvery appends:
	// bounded loss under an OS crash at a fraction of FsyncAlways's cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: an acknowledged batch survives
	// even an OS crash.
	FsyncAlways
	// FsyncOff never syncs: durability only against process crashes (the
	// page cache keeps written bytes alive when the process dies).
	FsyncOff
)

// String names the policy for CLI flags and experiment tables.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	}
	return "interval"
}

// ParseFsync maps a CLI name to a policy.
func ParseFsync(s string) (FsyncPolicy, bool) {
	switch s {
	case "interval", "":
		return FsyncInterval, true
	case "always":
		return FsyncAlways, true
	case "off", "none":
		return FsyncOff, true
	}
	return FsyncInterval, false
}

// Options configures a Log (and, through Durable, the snapshot cadence
// sharing its directory). The zero value is usable once Dir is set.
type Options struct {
	// Dir holds the segments and snapshots. It must exist.
	Dir string
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default 4 MiB).
	SegmentBytes int64
	// Policy is the fsync policy (FsyncInterval by default).
	Policy FsyncPolicy
	// FsyncEvery is the append count between syncs under FsyncInterval
	// (default 8).
	FsyncEvery int
	// Metrics, when non-nil, receives wal.append_ns / wal.fsync_ns
	// histograms and wal.appends / wal.fsyncs / wal.rotations counters.
	Metrics *metrics.Registry
	// GroupWindow, under FsyncAlways in serving (GroupCommit) mode, is how
	// long a sync leader yields before issuing its fsync so concurrent
	// appenders can write their frames and share it. The wait is adaptive:
	// it is skipped whenever no other Append is in flight, so a lone writer
	// pays nothing. Zero disables the window (every leader syncs
	// immediately; groups only form from appends that landed during a
	// previous fsync).
	GroupWindow time.Duration

	// DiskFaults, when non-nil, is consulted at the same sites as the crash
	// hook but injects live disk errors (ENOSPC, EIO, failing fsync) instead
	// of simulated process death: the operation fails and poisons the log,
	// and the process is expected to degrade, probe, and Reopen. Shared by
	// reference across Options copies and log reopens.
	DiskFaults *DiskFaultInjector

	// hook is the crash-point injection seam: when non-nil it runs before
	// every durability-critical operation, and a non-nil return aborts the
	// operation as if the process died there (crash_test.go). Production
	// code never sets it.
	hook func(site string) error
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 4 << 20
}

func (o Options) fsyncEvery() int {
	if o.FsyncEvery > 0 {
		return o.FsyncEvery
	}
	return 8
}

// crashError simulates a process death at an injection site. Tear >= 0
// first writes that many bytes of the pending data, modeling a write torn
// mid-frame.
type crashError struct {
	Site string
	Tear int
}

func (e *crashError) Error() string { return "wal: injected crash at " + e.Site }

// fire runs the hook for a site and reports how many bytes of pending data
// to write before dying (-1 = none).
func (o Options) fire(site string) (tear int, err error) {
	if o.hook != nil {
		if err := o.hook(site); err != nil {
			if ce, ok := err.(*crashError); ok {
				return ce.Tear, err
			}
			return -1, err
		}
	}
	if o.DiskFaults != nil {
		if err := o.DiskFaults.fire(site); err != nil {
			return -1, err
		}
	}
	return -1, nil
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

// segFirst parses a segment filename's first-sequence component.
func segFirst(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexa := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexa) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

type segment struct {
	path  string
	first uint64
}

// Log is a segmented, CRC-framed, length-prefixed write-ahead log of edge
// batches. Sequence numbers are assigned by the caller, must increase by
// exactly one per append, and are the exactly-once contract recovery relies
// on: replay applies each surviving sequence number once and in order.
//
// Log is not safe for concurrent use; the durable wrappers serialize on it.
type Log struct {
	opts Options

	segs      []segment // sorted by first seq; the last one is active
	f         *os.File  // active segment (nil until the first append)
	size      int64
	lastSeq   uint64 // highest appended/recovered seq (0 = none known)
	sinceSync int
	buf       []byte
	err       error // sticky ErrPoisoned wrapper once disk state is suspect

	appendNs  *metrics.Histogram
	fsyncNs   *metrics.Histogram
	appends   *metrics.Counter
	fsyncs    *metrics.Counter
	rotations *metrics.Counter
}

// Open scans dir, repairs the log (truncating the first torn or corrupt
// frame and discarding everything after it — later frames are unreachable
// once the sequence chain breaks), and returns a log positioned to append
// after the last valid frame.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	l := &Log{opts: opts}
	if r := opts.Metrics; r != nil {
		l.appendNs = r.Histogram("wal.append_ns")
		l.fsyncNs = r.Histogram("wal.fsync_ns")
		l.appends = r.Counter("wal.appends")
		l.fsyncs = r.Counter("wal.fsyncs")
		l.rotations = r.Counter("wal.rotations")
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if first, ok := segFirst(e.Name()); ok {
			l.segs = append(l.segs, segment{path: filepath.Join(opts.Dir, e.Name()), first: first})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	if err := l.repair(); err != nil {
		return nil, err
	}
	if n := len(l.segs); n > 0 {
		f, err := os.OpenFile(l.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, st.Size()
	}
	return l, nil
}

// repair walks every segment in order, validating frames and the sequence
// chain. The first torn, corrupt, or out-of-chain frame ends the valid log:
// its file is truncated to the last good offset and every later segment is
// deleted. lastSeq is left at the last valid frame.
func (l *Log) repair() error {
	for i := 0; i < len(l.segs); i++ {
		validEnd, last, ok, err := scanSegment(l.segs[i].path, l.lastSeq)
		if err != nil {
			return err
		}
		if last > 0 {
			l.lastSeq = last
		}
		if ok {
			continue
		}
		// Damage inside segment i: keep its valid prefix, drop the rest.
		if err := os.Truncate(l.segs[i].path, validEnd); err != nil {
			return fmt.Errorf("wal: repair: %w", err)
		}
		for _, s := range l.segs[i+1:] {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: repair: %w", err)
			}
		}
		l.segs = l.segs[:i+1]
		break
	}
	return nil
}

// scanSegment validates one segment's frames. prevSeq is the sequence the
// chain must continue from (0 = accept any start). It returns the byte
// offset after the last valid frame, the last valid sequence (0 if none),
// and whether the whole file validated.
func scanSegment(path string, prevSeq uint64) (validEnd int64, lastSeq uint64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	cr := &countingReader{r: f}
	for {
		kind, payload, rerr := ReadFrame(cr)
		if rerr == io.EOF {
			return cr.n, lastSeq, true, nil
		}
		if rerr != nil {
			return validEnd, lastSeq, false, nil // torn or corrupt: stop here
		}
		seq, _, _, _, derr := decodeAnyBatch(kind, payload)
		if derr != nil || (prevSeq != 0 && seq != prevSeq+1) || (prevSeq == 0 && seq == 0) {
			return validEnd, lastSeq, false, nil
		}
		prevSeq, lastSeq = seq, seq
		validEnd = cr.n
	}
}

// decodeAnyBatch decodes either batch frame kind, returning empty tag fields
// for untagged frames and an error for any other kind.
func decodeAnyBatch(kind byte, payload []byte) (seq uint64, b graph.Batch, clientID string, clientSeq uint64, err error) {
	switch kind {
	case KindBatch:
		seq, b, err = DecodeBatch(payload)
		return seq, b, "", 0, err
	case KindBatchTagged:
		return DecodeTaggedBatch(payload)
	}
	return 0, nil, "", 0, fmt.Errorf("%w: frame kind %d in log segment", ErrCorrupt, kind)
}

// countingReader tracks how many bytes have been consumed, so scans know
// the exact offset of the last fully valid frame.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// LastSeq returns the highest sequence known to the log (0 when empty).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int { return len(l.segs) }

// poison records the first disk-state failure and returns it unwrapped, so
// the caller sees the original cause; every later Append/Sync gets the
// sticky ErrPoisoned wrapper instead of a chance to interleave frames after
// a partial write.
func (l *Log) poison(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	return err
}

// Append logs one batch under seq, which must be exactly lastSeq+1 (any
// positive seq when the log is empty and has no recovered history). The
// batch is durable per the fsync policy once Append returns nil.
func (l *Log) Append(seq uint64, b graph.Batch) error {
	if err := l.append(seq, b); err != nil {
		return err
	}
	return l.syncPolicy()
}

// append writes an untagged batch frame without running the fsync policy —
// the seam the group-commit layer uses to batch many appends under one sync.
func (l *Log) append(seq uint64, b graph.Batch) error {
	return l.appendKind(seq, KindBatch, EncodeBatch(nil, seq, b))
}

// appendTagged writes a batch frame carrying a client idempotency key; an
// empty clientID falls back to the untagged kind.
func (l *Log) appendTagged(seq uint64, clientID string, clientSeq uint64, b graph.Batch) error {
	if clientID == "" {
		return l.append(seq, b)
	}
	return l.appendKind(seq, KindBatchTagged, EncodeTaggedBatch(nil, seq, clientID, clientSeq, b))
}

// appendKind writes one already-encoded batch payload under seq. Failures
// that may have left bytes on disk (torn write, short write, rotate) poison
// the log; sequence-validation errors change nothing and do not.
func (l *Log) appendKind(seq uint64, kind byte, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	if seq == 0 {
		return fmt.Errorf("wal: sequence numbers start at 1")
	}
	if l.lastSeq != 0 && seq != l.lastSeq+1 {
		return fmt.Errorf("wal: append seq %d, want %d (duplicate or gap)", seq, l.lastSeq+1)
	}
	t0 := time.Now()
	if l.f == nil || l.size >= l.opts.segmentBytes() {
		if err := l.rotate(seq); err != nil {
			return l.poison(err)
		}
	}
	l.buf = AppendFrame(l.buf[:0], kind, payload)
	if tear, err := l.opts.fire("append.write"); err != nil {
		if tear >= 0 && tear < len(l.buf) {
			l.f.Write(l.buf[:tear])
		}
		return l.poison(err)
	}
	if _, err := l.f.Write(l.buf); err != nil {
		// Part of the frame may be on disk; l.size no longer matches the
		// file offset, so no further frame may be appended to this handle.
		return l.poison(fmt.Errorf("wal: append: %w", err))
	}
	l.size += int64(len(l.buf))
	l.lastSeq = seq
	l.sinceSync++
	if l.appends != nil {
		l.appends.Inc()
	}
	if l.appendNs != nil {
		l.appendNs.Observe(time.Since(t0).Nanoseconds())
	}
	return nil
}

// syncPolicy applies the configured fsync policy after an append.
func (l *Log) syncPolicy() error {
	switch l.opts.Policy {
	case FsyncAlways:
		return l.Sync()
	case FsyncInterval:
		if l.sinceSync >= l.opts.fsyncEvery() {
			return l.Sync()
		}
	}
	return nil
}

// rotate closes the active segment (synced, so a finished segment is never
// partially persisted) and starts a new one whose name carries firstSeq.
func (l *Log) rotate(firstSeq uint64) error {
	if _, err := l.opts.fire("rotate.create"); err != nil {
		return err
	}
	if l.f != nil {
		if l.opts.Policy != FsyncOff {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: rotate: %w", err)
			}
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
		if l.rotations != nil {
			l.rotations.Inc()
		}
	}
	path := filepath.Join(l.opts.Dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.f, l.size = f, 0
	l.segs = append(l.segs, segment{path: path, first: firstSeq})
	l.opts.syncDir()
	return nil
}

// Sync forces the active segment to stable storage. A failed fsync poisons
// the log: the kernel may have dropped the dirty pages, so retrying the
// sync cannot make the acknowledged frames durable.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil || l.sinceSync == 0 {
		return nil
	}
	if _, err := l.opts.fire("append.sync"); err != nil {
		return l.poison(err)
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return l.poison(fmt.Errorf("wal: sync: %w", err))
	}
	l.sinceSync = 0
	if l.fsyncs != nil {
		l.fsyncs.Inc()
	}
	if l.fsyncNs != nil {
		l.fsyncNs.Observe(time.Since(t0).Nanoseconds())
	}
	return nil
}

// Replay streams every valid frame with sequence in (fromSeq, lastSeq] to
// fn, in order, and propagates fn's first error. Damage in the *tail*
// segment — a torn or corrupt final frame, or a sequence chain that simply
// ends — is the expected shape of a crash, so replay stops cleanly there
// with a nil error (Open's repair makes that point the end of the log).
// Damage in any earlier segment is different: every later segment still
// holds valid acknowledged frames that a silent stop would drop, so
// mid-log corruption is reported as an ErrCorrupt-wrapped error instead of
// being passed off as a short log.
func (l *Log) Replay(fromSeq uint64, fn func(seq uint64, b graph.Batch) error) error {
	return l.ReplayTagged(fromSeq, func(seq uint64, b graph.Batch, _ string, _ uint64) error {
		return fn(seq, b)
	})
}

// ReplayTagged is Replay with the client idempotency tag surfaced: frames
// written by appendTagged yield their (clientID, clientSeq); untagged frames
// yield ("", 0). Recovery uses it to rebuild the dedup window alongside the
// engine state.
func (l *Log) ReplayTagged(fromSeq uint64, fn func(seq uint64, b graph.Batch, clientID string, clientSeq uint64) error) error {
	prev := fromSeq
	for i, s := range l.segs {
		tail := i == len(l.segs)-1
		midLog := func(what string) error {
			return fmt.Errorf("wal: replay: %w: %s in non-tail segment %s (later segments hold valid frames)",
				ErrCorrupt, what, filepath.Base(s.path))
		}
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		for {
			kind, payload, rerr := ReadFrame(f)
			if rerr == io.EOF {
				break
			}
			if rerr != nil || (kind != KindBatch && kind != KindBatchTagged) {
				f.Close()
				if tail {
					return nil // damaged tail: recovery keeps the prefix
				}
				return midLog("damaged frame")
			}
			seq, b, cid, cseq, derr := decodeAnyBatch(kind, payload)
			if derr != nil {
				f.Close()
				if tail {
					return nil
				}
				return midLog("undecodable batch")
			}
			if seq <= fromSeq {
				continue
			}
			if seq != prev+1 {
				f.Close()
				if tail {
					return nil // gap at the tail: later frames are unreachable
				}
				return midLog(fmt.Sprintf("sequence gap (%d after %d)", seq, prev))
			}
			if err := fn(seq, b, cid, cseq); err != nil {
				f.Close()
				return err
			}
			prev = seq
		}
		f.Close()
	}
	return nil
}

// TruncateThrough deletes segments whose every frame has sequence <= seq:
// after a snapshot at seq, those frames are covered by the snapshot and the
// log can shed them. The active segment is never deleted.
func (l *Log) TruncateThrough(seq uint64) error {
	keep := l.segs[:0]
	for i, s := range l.segs {
		// Segment i's frames end where segment i+1 begins; the last
		// segment is active and always kept.
		if i+1 < len(l.segs) && l.segs[i+1].first-1 <= seq {
			if _, err := l.opts.fire("truncate.remove"); err != nil {
				l.segs = append(keep, l.segs[i:]...)
				return err
			}
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	l.opts.syncDir()
	return nil
}

// Close syncs (per policy) and closes the active segment.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	if l.opts.Policy != FsyncOff {
		if err := l.Sync(); err != nil {
			l.f.Close()
			l.f = nil
			return err
		}
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// resetTo discards every segment — valid only when all surviving frames
// are covered by a snapshot at seq — and restarts the sequence chain there,
// so the next append carries seq+1 into a fresh segment.
func (l *Log) resetTo(seq uint64) error {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	for _, s := range l.segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	l.segs = l.segs[:0]
	l.size = 0
	l.lastSeq = seq
	l.sinceSync = 0
	l.opts.syncDir()
	return nil
}

// abandon drops the file handle without syncing or closing cleanly — the
// crash fuzzer's stand-in for process death (the OS keeps written bytes).
func (l *Log) abandon() {
	if l.f != nil {
		l.f.Close() // release the fd; written data stays in the page cache
		l.f = nil
	}
}

// syncDir best-effort fsyncs a directory so renames and unlinks are
// durable; some platforms reject directory fsync, which we tolerate.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// syncDir fsyncs the log directory unless the policy is FsyncOff — with
// durability off, directory metadata syscalls are pure overhead.
func (o Options) syncDir() {
	if o.Policy != FsyncOff {
		syncDir(o.Dir)
	}
}
