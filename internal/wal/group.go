package wal

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// GroupCommit adapts the single-writer Log to concurrent appenders. Frame
// writes are serialized under one mutex — appends stay strictly ordered, so
// the on-disk sequence chain is also the authoritative apply order — and,
// under FsyncAlways, appenders share fsyncs leader/follower style: while one
// append's fsync is in flight, later appenders queue, write their frames the
// moment it completes, and the next leader's single fsync makes the whole
// group durable. With W concurrent writers each fsync covers up to W
// appends, so fsync amplification drops below one per batch (Fig S5).
// Options.GroupWindow widens the net: a leader that sees another Append in
// flight yields briefly before syncing, which matters on few-core hosts
// where appenders rarely overlap an in-progress fsync on their own.
//
// The zero value is not usable; build one with DurableSelective.Group.
type GroupCommit struct {
	mu       sync.Mutex // serializes l.append, onAppend, rotation, truncation
	l        *Log
	onAppend func(seq uint64, b graph.Batch)
	dedup    *DedupTable // nil = exactly-once ingest disabled

	next uint64 // last assigned sequence (under mu)

	inflight atomic.Int32 // Append calls between entry and return
	writers  atomic.Int32 // advertised concurrent writers (AddWriter)

	sm      sync.Mutex
	syncing bool          // a leader's fsync is in flight
	synced  uint64        // highest sequence known durable
	syncErr error         // sticky: a failed fsync fails every later waiter
	wake    chan struct{} // closed and replaced when a sync round ends

	groupSize *metrics.Histogram
}

func newGroupCommit(l *Log, start uint64, onAppend func(seq uint64, b graph.Batch), dedup *DedupTable, groupSize *metrics.Histogram) *GroupCommit {
	return &GroupCommit{
		l:         l,
		onAppend:  onAppend,
		dedup:     dedup,
		next:      start,
		synced:    start, // everything <= start is snapshot-covered or replayed
		wake:      make(chan struct{}),
		groupSize: groupSize,
	}
}

// Append logs b under the next sequence and returns that sequence once the
// batch is as durable as the log's fsync policy promises. onAppend runs
// under the append mutex — immediately after the frame is written and
// before any later append — so it observes batches in exactly the logged
// order; it must not block.
func (gc *GroupCommit) Append(b graph.Batch) (uint64, error) {
	seq, _, err := gc.AppendTagged("", 0, b)
	return seq, err
}

// AppendTagged is Append carrying a client idempotency key. When the key was
// already logged (a resend after a reconnect, a degraded episode, or a
// daemon restart) it reports dup=true with the original sequence — already
// durable and already on its way to the engine — without a second append or
// apply; otherwise it logs the batch with the key embedded in the frame and
// records the assignment in the dedup window. An empty clientID bypasses
// deduplication entirely.
//
// On error, a nonzero returned sequence means the frame was written and
// onAppend observed it — only the durability promise failed (a poisoned
// fsync), so an applier downstream of onAppend WILL process the batch and
// the caller must not double-release resources it hands the applier. A
// zero sequence with an error means nothing was logged or enqueued.
func (gc *GroupCommit) AppendTagged(clientID string, clientSeq uint64, b graph.Batch) (uint64, bool, error) {
	gc.inflight.Add(1)
	defer gc.inflight.Add(-1)
	gc.mu.Lock()
	if gc.dedup != nil && clientID != "" {
		if walSeq, dup := gc.dedup.Check(clientID, clientSeq); dup {
			gc.mu.Unlock()
			// The original append already ran; make sure the ack we are
			// about to repeat keeps the durability promise it carried.
			if gc.l.opts.Policy == FsyncAlways && walSeq > 0 {
				if err := gc.waitDurable(walSeq); err != nil {
					return 0, true, err
				}
			}
			return walSeq, true, nil
		}
	}
	seq := gc.next + 1
	if err := gc.l.appendTagged(seq, clientID, clientSeq, b); err != nil {
		gc.mu.Unlock()
		return 0, false, err
	}
	gc.next = seq
	if gc.dedup != nil && clientID != "" {
		gc.dedup.Record(clientID, clientSeq, seq)
	}
	if gc.onAppend != nil {
		gc.onAppend(seq, b)
	}
	if gc.l.opts.Policy != FsyncAlways {
		// interval/off: acknowledge before sync, as the policy promises. The
		// interval sync runs inline; it is amortized and rarely fires.
		err := gc.l.syncPolicy()
		gc.mu.Unlock()
		// On error the frame is still logged and enqueued: report seq so the
		// caller knows the applier will see this batch.
		return seq, false, err
	}
	gc.mu.Unlock()
	// always: wait (outside the append mutex, so the next group can form)
	// until a leader's fsync covers this sequence.
	if err := gc.waitDurable(seq); err != nil {
		return seq, false, err
	}
	return seq, false, nil
}

// waitDurable blocks until synced >= seq. The first waiter of a round
// becomes leader: it takes the append mutex (freezing LastSeq), issues one
// fsync, and publishes the new watermark; every waiter at or below the
// watermark returns. Waiters that appended while the fsync was in flight
// form the next round.
func (gc *GroupCommit) waitDurable(seq uint64) error {
	gc.sm.Lock()
	for {
		if gc.syncErr != nil {
			err := gc.syncErr
			gc.sm.Unlock()
			return err
		}
		if gc.synced >= seq {
			gc.sm.Unlock()
			return nil
		}
		if !gc.syncing {
			gc.syncing = true
			prev := gc.synced
			gc.sm.Unlock()

			// Commit window: when other writers exist — another Append is
			// mid-flight, or the owner advertised concurrent sessions via
			// AddWriter — yield briefly so their frames land and ride this
			// fsync. A lone writer skips the wait entirely, so the window
			// only trades latency for shared fsyncs when there is actually
			// a group to form.
			if w := gc.l.opts.GroupWindow; w > 0 &&
				(gc.writers.Load() > 1 || gc.inflight.Load() > 1) {
				time.Sleep(w)
			}

			gc.mu.Lock()
			high := gc.l.LastSeq()
			err := gc.l.Sync()
			gc.mu.Unlock()

			gc.sm.Lock()
			gc.syncing = false
			if err != nil {
				gc.syncErr = err
			} else {
				if gc.groupSize != nil && high > prev {
					gc.groupSize.Observe(int64(high - prev))
				}
				if high > gc.synced {
					gc.synced = high
				}
			}
			close(gc.wake)
			gc.wake = make(chan struct{})
			continue
		}
		ch := gc.wake
		gc.sm.Unlock()
		<-ch
		gc.sm.Lock()
	}
}

// AddWriter adjusts the advertised concurrent-writer count (delta may be
// negative). The serving layer calls it as ingest sessions come and go;
// with more than one writer advertised, sync leaders hold the GroupWindow
// open even when the peers are momentarily outside Append (typical on
// few-core hosts, where staggered request cycles rarely overlap).
func (gc *GroupCommit) AddWriter(delta int) { gc.writers.Add(int32(delta)) }

// Sync forces everything appended so far durable (drain/shutdown path).
func (gc *GroupCommit) Sync() error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.l.Sync()
}

// LastSeq returns the highest appended sequence.
func (gc *GroupCommit) LastSeq() uint64 {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.l.LastSeq()
}

// withLog runs f with the append mutex held — the seam the snapshot path
// uses so retention-driven syncs and truncations cannot interleave with a
// concurrent append's rotation.
func (gc *GroupCommit) withLog(f func(l *Log) error) error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return f(gc.l)
}

// Dedup exposes the group's dedup table (nil when exactly-once ingest is
// disabled) for hit accounting.
func (gc *GroupCommit) Dedup() *DedupTable { return gc.dedup }

// reopen swaps a poisoned log for a freshly Opened one over the same
// directory — the degraded-mode recovery seam. establish runs with the new
// log installed and the append mutex held; it must leave disk and engine
// agreeing on the chain head (durableCore does so by snapshotting the
// applied state and restarting the chain there). On success the sticky sync
// error clears and the durable watermark jumps to the last assigned
// sequence, which the establish snapshot now covers.
func (gc *GroupCommit) reopen(establish func(l *Log) error) error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	old := gc.l
	old.abandon() // a poisoned handle can't be synced; drop it
	nl, err := Open(old.opts)
	if err != nil {
		return err
	}
	gc.l = nl
	if err := establish(nl); err != nil {
		// Still degraded: put the (dead) old log back so appends keep
		// failing with ErrPoisoned until a later reopen succeeds.
		nl.abandon()
		gc.l = old
		return err
	}
	gc.sm.Lock()
	gc.syncErr = nil
	if gc.next > gc.synced {
		gc.synced = gc.next
	}
	close(gc.wake)
	gc.wake = make(chan struct{})
	gc.sm.Unlock()
	return nil
}
