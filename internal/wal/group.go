package wal

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// GroupCommit adapts the single-writer Log to concurrent appenders. Frame
// writes are serialized under one mutex — appends stay strictly ordered, so
// the on-disk sequence chain is also the authoritative apply order — and,
// under FsyncAlways, appenders share fsyncs leader/follower style: while one
// append's fsync is in flight, later appenders queue, write their frames the
// moment it completes, and the next leader's single fsync makes the whole
// group durable. With W concurrent writers each fsync covers up to W
// appends, so fsync amplification drops below one per batch (Fig S5).
// Options.GroupWindow widens the net: a leader that sees another Append in
// flight yields briefly before syncing, which matters on few-core hosts
// where appenders rarely overlap an in-progress fsync on their own.
//
// The zero value is not usable; build one with DurableSelective.Group.
type GroupCommit struct {
	mu       sync.Mutex // serializes l.append, onAppend, rotation, truncation
	l        *Log
	onAppend func(seq uint64, b graph.Batch)

	next uint64 // last assigned sequence (under mu)

	inflight atomic.Int32 // Append calls between entry and return
	writers  atomic.Int32 // advertised concurrent writers (AddWriter)

	sm      sync.Mutex
	syncing bool          // a leader's fsync is in flight
	synced  uint64        // highest sequence known durable
	syncErr error         // sticky: a failed fsync fails every later waiter
	wake    chan struct{} // closed and replaced when a sync round ends

	groupSize *metrics.Histogram
}

func newGroupCommit(l *Log, start uint64, onAppend func(seq uint64, b graph.Batch), groupSize *metrics.Histogram) *GroupCommit {
	return &GroupCommit{
		l:         l,
		onAppend:  onAppend,
		next:      start,
		synced:    start, // everything <= start is snapshot-covered or replayed
		wake:      make(chan struct{}),
		groupSize: groupSize,
	}
}

// Append logs b under the next sequence and returns that sequence once the
// batch is as durable as the log's fsync policy promises. onAppend runs
// under the append mutex — immediately after the frame is written and
// before any later append — so it observes batches in exactly the logged
// order; it must not block.
func (gc *GroupCommit) Append(b graph.Batch) (uint64, error) {
	gc.inflight.Add(1)
	defer gc.inflight.Add(-1)
	gc.mu.Lock()
	seq := gc.next + 1
	if err := gc.l.append(seq, b); err != nil {
		gc.mu.Unlock()
		return 0, err
	}
	gc.next = seq
	if gc.onAppend != nil {
		gc.onAppend(seq, b)
	}
	if gc.l.opts.Policy != FsyncAlways {
		// interval/off: acknowledge before sync, as the policy promises. The
		// interval sync runs inline; it is amortized and rarely fires.
		err := gc.l.syncPolicy()
		gc.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return seq, nil
	}
	gc.mu.Unlock()
	// always: wait (outside the append mutex, so the next group can form)
	// until a leader's fsync covers this sequence.
	if err := gc.waitDurable(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// waitDurable blocks until synced >= seq. The first waiter of a round
// becomes leader: it takes the append mutex (freezing LastSeq), issues one
// fsync, and publishes the new watermark; every waiter at or below the
// watermark returns. Waiters that appended while the fsync was in flight
// form the next round.
func (gc *GroupCommit) waitDurable(seq uint64) error {
	gc.sm.Lock()
	for {
		if gc.syncErr != nil {
			err := gc.syncErr
			gc.sm.Unlock()
			return err
		}
		if gc.synced >= seq {
			gc.sm.Unlock()
			return nil
		}
		if !gc.syncing {
			gc.syncing = true
			prev := gc.synced
			gc.sm.Unlock()

			// Commit window: when other writers exist — another Append is
			// mid-flight, or the owner advertised concurrent sessions via
			// AddWriter — yield briefly so their frames land and ride this
			// fsync. A lone writer skips the wait entirely, so the window
			// only trades latency for shared fsyncs when there is actually
			// a group to form.
			if w := gc.l.opts.GroupWindow; w > 0 &&
				(gc.writers.Load() > 1 || gc.inflight.Load() > 1) {
				time.Sleep(w)
			}

			gc.mu.Lock()
			high := gc.l.LastSeq()
			err := gc.l.Sync()
			gc.mu.Unlock()

			gc.sm.Lock()
			gc.syncing = false
			if err != nil {
				gc.syncErr = err
			} else {
				if gc.groupSize != nil && high > prev {
					gc.groupSize.Observe(int64(high - prev))
				}
				if high > gc.synced {
					gc.synced = high
				}
			}
			close(gc.wake)
			gc.wake = make(chan struct{})
			continue
		}
		ch := gc.wake
		gc.sm.Unlock()
		<-ch
		gc.sm.Lock()
	}
}

// AddWriter adjusts the advertised concurrent-writer count (delta may be
// negative). The serving layer calls it as ingest sessions come and go;
// with more than one writer advertised, sync leaders hold the GroupWindow
// open even when the peers are momentarily outside Append (typical on
// few-core hosts, where staggered request cycles rarely overlap).
func (gc *GroupCommit) AddWriter(delta int) { gc.writers.Add(int32(delta)) }

// Sync forces everything appended so far durable (drain/shutdown path).
func (gc *GroupCommit) Sync() error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.l.Sync()
}

// LastSeq returns the highest appended sequence.
func (gc *GroupCommit) LastSeq() uint64 {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.l.LastSeq()
}

// withLog runs f with the append mutex held — the seam the snapshot path
// uses so retention-driven syncs and truncations cannot interleave with a
// concurrent append's rotation.
func (gc *GroupCommit) withLog(f func(l *Log) error) error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return f(gc.l)
}
