package wal

import (
	"bytes"
	"context"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// --- codec ---

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		kind, got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: kind=%d len=%d", i, kind, len(got))
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFrameTornAndCorrupt(t *testing.T) {
	frame := AppendFrame(nil, KindBatch, []byte("hello world"))
	// Every proper prefix is torn (or EOF for the empty prefix).
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]))
		if err != ErrTorn {
			t.Fatalf("cut=%d: want ErrTorn, got %v", cut, err)
		}
	}
	// Every single-bit flip anywhere in the frame is detected: CRC32C
	// catches all 1-bit errors, and header flips either break the CRC,
	// declare an impossible length (corrupt), or over-declare (torn).
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			_, _, err := ReadFrame(bytes.NewReader(mut))
			if err != ErrCorrupt && err != ErrTorn {
				t.Fatalf("flip byte %d bit %d: want corrupt/torn, got %v", i, bit, err)
			}
		}
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	b := graph.Batch{
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 3.5}},
		{Edge: graph.Edge{Src: 7, Dst: 0, W: 0.25}, Del: true},
	}
	seq, got, err := DecodeBatch(EncodeBatch(nil, 42, b))
	if err != nil || seq != 42 || len(got) != len(b) {
		t.Fatalf("seq=%d len=%d err=%v", seq, len(got), err)
	}
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("update %d: %+v != %+v", i, got[i], b[i])
		}
	}
	if _, _, err := DecodeBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload must fail")
	}
}

func TestStateCodecValidation(t *testing.T) {
	vals := []float64{1, 2, math.Inf(1)}
	parent := []int32{-1, 0, 1}
	p := EncodeState(nil, vals, parent)
	gv, gp, err := DecodeState(p, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if gv[i] != vals[i] || gp[i] != parent[i] {
			t.Fatalf("i=%d", i)
		}
	}
	if _, _, err := DecodeState(p, 4, 4); err == nil {
		t.Fatal("count mismatch must fail")
	}
	bad := EncodeState(nil, vals, []int32{-1, 0, 3}) // parent 3 out of range
	if _, _, err := DecodeState(bad, 3, 3); err == nil {
		t.Fatal("out-of-range parent must fail")
	}
}

// --- log ---

func mkBatch(seq uint64, n int) graph.Batch {
	b := make(graph.Batch, n)
	for i := range b {
		b[i] = graph.Update{Edge: graph.Edge{Src: uint32(seq), Dst: uint32(i), W: float64(seq) + float64(i)/16}}
	}
	return b
}

func TestLogAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 256, Policy: FsyncOff}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for s := uint64(1); s <= n; s++ {
		if err := l.Append(s, mkBatch(s, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 2 {
		t.Fatalf("want rotation, got %d segments", l.SegmentCount())
	}
	if err := l.Append(5, mkBatch(5, 1)); err == nil {
		t.Fatal("duplicate seq must fail")
	}
	if err := l.Append(n+2, mkBatch(n+2, 1)); err == nil {
		t.Fatal("gap seq must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != n {
		t.Fatalf("reopen LastSeq=%d want %d", l2.LastSeq(), n)
	}
	var seen []uint64
	if err := l2.Replay(7, func(seq uint64, b graph.Batch) error {
		if len(b) != 3 || b[0].Src != uint32(seq) {
			t.Fatalf("seq %d payload mangled", seq)
		}
		seen = append(seen, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n-7 || seen[0] != 8 || seen[len(seen)-1] != n {
		t.Fatalf("replayed %v", seen)
	}
	if err := l2.Append(n+1, mkBatch(n+1, 2)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	l2.Close()
}

func TestLogRepairTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: FsyncOff}
	l, _ := Open(opts)
	for s := uint64(1); s <= 5; s++ {
		if err := l.Append(s, mkBatch(s, 4)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Tear the tail mid-frame.
	path := filepath.Join(dir, segName(1))
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq=%d want 4 after torn tail", l2.LastSeq())
	}
	// The torn bytes are gone: appending seq 5 again continues the chain.
	if err := l2.Append(5, mkBatch(5, 1)); err != nil {
		t.Fatal(err)
	}
	count := 0
	l2.Replay(0, func(uint64, graph.Batch) error { count++; return nil })
	if count != 5 {
		t.Fatalf("replayed %d want 5", count)
	}
	l2.Close()
}

func TestLogRepairStopsAtBitFlip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 128, Policy: FsyncOff}
	l, _ := Open(opts)
	for s := uint64(1); s <= 12; s++ {
		if err := l.Append(s, mkBatch(s, 2)); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.SegmentCount()
	if segs < 3 {
		t.Fatalf("want >=3 segments, got %d", segs)
	}
	first := l.segs[1] // corrupt the middle segment
	l.Close()
	data, _ := os.ReadFile(first.path)
	data[len(data)/2] ^= 0x40
	os.WriteFile(first.path, data, 0o644)

	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() >= 12 || l2.LastSeq() < first.first-1 {
		t.Fatalf("LastSeq=%d after corrupting segment starting at %d", l2.LastSeq(), first.first)
	}
	// Later segments were removed; the chain continues from the repair point.
	if err := l2.Append(l2.LastSeq()+1, mkBatch(l2.LastSeq()+1, 1)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 128, Policy: FsyncOff}
	l, _ := Open(opts)
	for s := uint64(1); s <= 12; s++ {
		l.Append(s, mkBatch(s, 2))
	}
	segs := l.SegmentCount()
	if segs < 3 {
		t.Fatalf("want >=3 segments, got %d", segs)
	}
	cut := l.segs[1].first // everything before segment 1 is disposable
	if err := l.TruncateThrough(cut - 1); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() != segs-1 {
		t.Fatalf("segments %d want %d", l.SegmentCount(), segs-1)
	}
	// Replay resumes from the covering snapshot seq (cut-1); the dropped
	// frames are exactly those the snapshot covers.
	var first, count uint64
	l.Replay(cut-1, func(seq uint64, b graph.Batch) error {
		if first == 0 {
			first = seq
		}
		count++
		return nil
	})
	if first != cut || count != 12-(cut-1) {
		t.Fatalf("replayed %d frames from %d, want %d from %d", count, first, 12-(cut-1), cut)
	}
	l.Close()
}

// --- snapshots ---

func testWorkload(seed uint64, numV, batches, batchSize int) gen.Workload {
	r := rng.New(seed)
	edges := gen.Generate(gen.Config{Kind: gen.Kind(r.Intn(3)), NumV: numV, NumE: numV * 4,
		Seed: seed, A: 0.57, B: 0.19, C: 0.19, MaxWeight: 8})
	return gen.BuildWorkload(numV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: batchSize,
		NumBatches: batches, Seed: seed ^ 0xabcdef,
	})
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: FsyncOff}
	w := testWorkload(11, 64, 1, 10)
	g := graph.FromEdges(w.NumV, w.Initial)
	vals, parent := algo.SolveSelective(g, algo.SSSP{Src: 0})
	if err := WriteSnapshot(opts, 9, g, vals, parent); err != nil {
		t.Fatal(err)
	}
	sd, err := ReadSnapshot(filepath.Join(dir, SnapName(9)))
	if err != nil {
		t.Fatal(err)
	}
	if sd.Seq != 9 || sd.NumV != w.NumV || len(sd.Edges) != len(g.Edges()) {
		t.Fatalf("snapshot mangled: %+v", sd)
	}
	for v := range vals {
		if sd.Vals[v] != vals[v] || sd.Parent[v] != parent[v] {
			t.Fatalf("state differs at %d", v)
		}
	}
	// Any single byte flip must be rejected, not loaded.
	path := filepath.Join(dir, SnapName(9))
	orig, _ := os.ReadFile(path)
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		mut := append([]byte(nil), orig...)
		mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		os.WriteFile(path, mut, 0o644)
		if _, err := ReadSnapshot(path); err == nil {
			t.Fatalf("flip %d accepted", i)
		}
	}
}

// --- durable wrapper end to end ---

// oracleVals solves the workload from scratch with the first n batches
// applied.
func oracleVals(t *testing.T, w gen.Workload, alg algo.Selective, n int) []float64 {
	t.Helper()
	g := graph.FromEdges(w.NumV, w.Initial)
	for _, b := range w.Batches[:n] {
		g.ApplyBatch(b)
	}
	vals, _ := algo.SolveSelective(g, alg)
	return vals
}

func valsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsInf(a[i], 1) && math.IsInf(b[i], 1)) &&
			!(math.IsInf(a[i], -1) && math.IsInf(b[i], -1)) {
			return false
		}
	}
	return true
}

func TestDurableRecoveryConvergesToOracle(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			reg := metrics.NewRegistry()
			w := testWorkload(23, 96, 8, 50)
			alg := algo.SSSP{Src: 0}
			dc := DurableConfig{
				Wal:           Options{Dir: dir, SegmentBytes: 1 << 12, Policy: policy, FsyncEvery: 2, Metrics: reg},
				SnapshotEvery: 3,
			}
			d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
			if err != nil {
				t.Fatal(err)
			}
			crashAt := 6 // die after acking 6 of 8 batches
			for i := 0; i < crashAt; i++ {
				if _, err := d.ProcessBatch(context.Background(), w.Batches[i]); err != nil {
					t.Fatal(err)
				}
			}
			d.Abandon() // process death: no Close, no final sync

			d2, rs, err := RecoverSelective(alg, engine.Config{Workers: 2}, dc)
			if err != nil {
				t.Fatal(err)
			}
			if rs.LastSeq != uint64(crashAt) {
				t.Fatalf("LastSeq=%d want %d", rs.LastSeq, crashAt)
			}
			if rs.Replayed != int(rs.LastSeq-rs.SnapshotSeq) {
				t.Fatalf("replayed %d, snapshot %d, last %d: duplicate or missed replay",
					rs.Replayed, rs.SnapshotSeq, rs.LastSeq)
			}
			if got := reg.Counter("recovery.replay_batches").Value(); got != int64(rs.Replayed) {
				t.Fatalf("recovery.replay_batches=%d want %d", got, rs.Replayed)
			}
			if !valsEqual(d2.Eng.Values(), oracleVals(t, w, alg, crashAt)) {
				t.Fatal("recovered state differs from from-scratch oracle")
			}
			// The recovered engine keeps working: feed the rest and re-check.
			for i := crashAt; i < len(w.Batches); i++ {
				if _, err := d2.ProcessBatch(context.Background(), w.Batches[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !valsEqual(d2.Eng.Values(), oracleVals(t, w, alg, len(w.Batches))) {
				t.Fatal("post-recovery stream diverged from oracle")
			}
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			if reg.Counter("wal.appends").Value() == 0 || reg.Histogram("wal.append_ns").Count() == 0 {
				t.Fatal("wal metrics not fed")
			}
		})
	}
}

func TestNewDurableRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(31, 48, 2, 20)
	alg := algo.BFS{Src: 0}
	dc := DurableConfig{Wal: Options{Dir: dir, Policy: FsyncOff}, SnapshotEvery: 1}
	d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{}, dc)
	if err != nil {
		t.Fatal(err)
	}
	d.ProcessBatch(context.Background(), w.Batches[0])
	d.Close()
	if _, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{}, dc); err == nil {
		t.Fatal("New over an existing snapshot must fail")
	}
	if !HasSnapshot(dir) {
		t.Fatal("HasSnapshot must see the directory")
	}
}
