package wal

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// DiskFaultInjector is the plain-error sibling of the crash-site hook: where
// the hook simulates process death (append aborted, test re-Opens the
// directory), the injector simulates a disk that keeps failing while the
// process lives — ENOSPC, EIO, a failing fsync. A fired fault poisons the
// log exactly like a real write error; the owner is expected to degrade to
// read-only, keep probing, and Reopen once the injector (or the disk)
// relents.
//
// Faults fire only at the append-path sites ("append.write", "append.sync",
// "rotate.create"): snapshot writes stay healthy so degraded recovery can
// always establish a new base. The injector is shared by reference through
// Options copies and across log reopens, so one armed window governs the
// whole episode. It is safe for concurrent use.
type DiskFaultInjector struct {
	mu    sync.Mutex
	err   error
	after int // fault-eligible ops to let through before failing
	count int // ops to fail once armed (-1 = until Clear)
	fired int64
}

// NewDiskFaultInjector arms an injector: after `after` eligible operations
// succeed, the next `count` fail with err (count < 0 = fail until Clear).
func NewDiskFaultInjector(err error, after, count int) *DiskFaultInjector {
	return &DiskFaultInjector{err: err, after: after, count: count}
}

// ParseDiskFaultSpec parses a CLI fault window of the form
// "after=N,count=M,err=enospc|eio" (any component optional; defaults
// after=0, count=1, err=enospc). An empty spec returns (nil, nil).
func ParseDiskFaultSpec(spec string) (*DiskFaultInjector, error) {
	if spec == "" {
		return nil, nil
	}
	inj := &DiskFaultInjector{err: syscall.ENOSPC, count: 1}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("wal: diskfault spec %q: want key=value", kv)
		}
		switch k {
		case "after", "count":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("wal: diskfault %s=%q: %v", k, v, err)
			}
			if k == "after" {
				inj.after = n
			} else {
				inj.count = n
			}
		case "err":
			switch v {
			case "enospc":
				inj.err = syscall.ENOSPC
			case "eio":
				inj.err = syscall.EIO
			default:
				return nil, fmt.Errorf("wal: diskfault err=%q: want enospc or eio", v)
			}
		default:
			return nil, fmt.Errorf("wal: diskfault spec: unknown key %q", k)
		}
	}
	return inj, nil
}

// Set re-arms the injector with a new window.
func (inj *DiskFaultInjector) Set(err error, after, count int) {
	inj.mu.Lock()
	inj.err, inj.after, inj.count = err, after, count
	inj.mu.Unlock()
}

// Clear disarms the injector; the disk is healthy again.
func (inj *DiskFaultInjector) Clear() {
	inj.mu.Lock()
	inj.count = 0
	inj.mu.Unlock()
}

// Fired returns how many faults the injector has injected.
func (inj *DiskFaultInjector) Fired() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired
}

// fire is the Options.fire integration point.
func (inj *DiskFaultInjector) fire(site string) error {
	if !strings.HasPrefix(site, "append.") && site != "rotate.create" {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.count == 0 {
		return nil
	}
	if inj.after > 0 {
		inj.after--
		return nil
	}
	if inj.count > 0 {
		inj.count--
	}
	inj.fired++
	return fmt.Errorf("wal: injected disk fault at %s: %w", site, inj.err)
}
