package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Snapshot files. A snapshot at sequence s captures the graph and engine
// state after every batch with sequence <= s was applied: recovery restores
// it and replays only the WAL frames with sequence > s. Snapshots are
// written to a temp file and renamed into place, so a crash mid-write
// leaves no half snapshot under the visible name; the footer frame is the
// belt to that suspender (a truncated rename-less file is never listed, a
// bit-flipped listed one fails its CRC or misses the footer).

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// SnapName returns the snapshot filename for sequence seq.
func SnapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

func snapSeqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexa := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexa) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Snapshots lists the snapshot sequences present in dir, ascending.
func Snapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if s, ok := snapSeqOf(e.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// SnapshotData is one decoded snapshot: the graph content plus the engine's
// refinement floors (values and key-edge parents).
type SnapshotData struct {
	Seq    uint64
	NumV   int
	Edges  []graph.Edge
	Vals   []float64
	Parent []int32
	// Dedup is the persisted exactly-once ingest window, consistent with
	// Seq; nil for snapshots written before dedup existed or with it off.
	Dedup *DedupTable
}

// WriteSnapshot persists a snapshot of g and the engine state at seq into
// opts.Dir, atomically (temp file + rename) and durably (file and directory
// synced unless the policy is FsyncOff).
func WriteSnapshot(opts Options, seq uint64, g *graph.Streaming, vals []float64, parent []int32) error {
	return writeSnapshotWith(opts, seq, g, vals, parent, nil)
}

// writeSnapshotWith is WriteSnapshot plus the optional dedup frame: only
// entries whose walSeq the snapshot covers are persisted, so a snapshot can
// never assert exactly-once for a batch whose frame it might outlive.
func writeSnapshotWith(opts Options, seq uint64, g *graph.Streaming, vals []float64, parent []int32, dedup *DedupTable) error {
	if _, err := opts.fire("snapshot.write"); err != nil {
		return err
	}
	var buf []byte
	var hdr [12]byte
	putU64(hdr[0:8], seq)
	putU32(hdr[8:12], uint32(g.NumVertices()))
	buf = AppendFrame(buf, KindSnapHeader, hdr[:])
	buf = AppendFrame(buf, KindSnapEdges, EncodeEdges(nil, g.Edges()))
	buf = AppendFrame(buf, KindSnapState, EncodeState(nil, vals, parent))
	if dedup != nil {
		buf = AppendFrame(buf, KindSnapDedup, dedup.Encode(nil, seq))
	}
	buf = AppendFrame(buf, KindSnapFooter, hdr[0:8])
	return writeSnapshotFile(opts, seq, buf)
}

// writeSnapshotFile is the shared atomic-and-durable tail of every snapshot
// writer: temp file, write, policy-gated fsync, rename into the visible
// name, directory sync — with the crash-injection hooks at each boundary.
func writeSnapshotFile(opts Options, seq uint64, buf []byte) error {
	tmp := filepath.Join(opts.Dir, SnapName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := opts.fire("snapshot.sync"); err != nil {
		f.Close()
		return err
	}
	if opts.Policy != FsyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := opts.fire("snapshot.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(opts.Dir, SnapName(seq))); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	opts.syncDir()
	return nil
}

// ReadSnapshot loads and fully validates one snapshot file: frame CRCs,
// frame order, decoded payload bounds, and header/footer sequence
// agreement. Any violation returns an error; the caller falls back to an
// older snapshot.
func ReadSnapshot(path string) (*SnapshotData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	defer f.Close()

	next := func(want byte) ([]byte, error) {
		kind, payload, err := ReadFrame(f)
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
		}
		if kind != want {
			return nil, fmt.Errorf("%w: snapshot frame kind %d, want %d", ErrCorrupt, kind, want)
		}
		return payload, nil
	}

	hdr, err := next(KindSnapHeader)
	if err != nil {
		return nil, err
	}
	if len(hdr) != 12 {
		return nil, fmt.Errorf("%w: snapshot header %d bytes", ErrCorrupt, len(hdr))
	}
	sd := &SnapshotData{Seq: getU64(hdr[0:8]), NumV: int(getU32(hdr[8:12]))}
	if sd.NumV < 0 || sd.NumV > 1<<28 {
		return nil, fmt.Errorf("%w: snapshot declares %d vertices", ErrCorrupt, sd.NumV)
	}
	edgesP, err := next(KindSnapEdges)
	if err != nil {
		return nil, err
	}
	if sd.Edges, err = DecodeEdges(edgesP, sd.NumV); err != nil {
		return nil, err
	}
	stateP, err := next(KindSnapState)
	if err != nil {
		return nil, err
	}
	if sd.Vals, sd.Parent, err = DecodeState(stateP, sd.NumV, sd.NumV); err != nil {
		return nil, err
	}
	// The dedup frame is optional (older snapshots and dedup-off wrappers
	// omit it); whichever of KindSnapDedup/KindSnapFooter comes next decides.
	kind, payload, err := ReadFrame(f)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
	}
	if kind == KindSnapDedup {
		if sd.Dedup, err = DecodeDedupTable(payload); err != nil {
			return nil, err
		}
		if payload, err = next(KindSnapFooter); err != nil {
			return nil, err
		}
		kind = KindSnapFooter
	}
	if kind != KindSnapFooter {
		return nil, fmt.Errorf("%w: snapshot frame kind %d, want %d", ErrCorrupt, kind, KindSnapFooter)
	}
	footer := payload
	if len(footer) != 8 || getU64(footer) != sd.Seq {
		return nil, fmt.Errorf("%w: snapshot footer disagrees with header", ErrCorrupt)
	}
	if _, _, err := ReadFrame(f); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after snapshot footer", ErrCorrupt)
	}
	return sd, nil
}

// removeSnapshot deletes one snapshot file (retention), firing the
// crash-injection hook first.
func removeSnapshot(opts Options, seq uint64) error {
	if _, err := opts.fire("snapshot.remove"); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(opts.Dir, SnapName(seq))); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	opts.syncDir()
	return nil
}
