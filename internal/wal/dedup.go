package wal

import (
	"fmt"
	"sort"
	"sync"
)

// DedupTable is the server side of exactly-once ingest: for every client
// identity it remembers a bounded window of (clientSeq -> walSeq)
// assignments, so a batch resent after a reconnect or a daemon restart is
// recognized and acknowledged without a second append or apply.
//
// The contract with clients: each client assigns strictly increasing
// clientSeq values and never has more than one batch outstanding, so a
// clientSeq at or below the newest recorded one is always a duplicate. The
// window only bounds how far back the original walSeq can still be reported;
// older duplicates are still detected (walSeq 0) because the newest entry's
// clientSeq is a high-water mark.
//
// The table is written under the group-commit append mutex and read by the
// snapshot path outside it, so it carries its own lock.
type DedupTable struct {
	mu     sync.Mutex
	window int
	m      map[string][]dedupEntry // per client, ascending ClientSeq
	hits   uint64
}

type dedupEntry struct{ ClientSeq, WalSeq uint64 }

// DefaultDedupWindow is the per-client entry count kept when the configured
// window is not positive.
const DefaultDedupWindow = 64

// NewDedupTable builds an empty table keeping up to window entries per
// client (DefaultDedupWindow when window <= 0).
func NewDedupTable(window int) *DedupTable {
	if window <= 0 {
		window = DefaultDedupWindow
	}
	return &DedupTable{window: window, m: make(map[string][]dedupEntry)}
}

// Check reports whether (clientID, clientSeq) was already logged. For a
// duplicate inside the window it returns the original walSeq; for one that
// aged out of the window it returns walSeq 0 — still a duplicate, the caller
// acks without reapplying but cannot name the original sequence.
func (t *DedupTable) Check(clientID string, clientSeq uint64) (walSeq uint64, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	es := t.m[clientID]
	if len(es) == 0 || clientSeq > es[len(es)-1].ClientSeq {
		return 0, false
	}
	t.hits++
	i := sort.Search(len(es), func(i int) bool { return es[i].ClientSeq >= clientSeq })
	if i < len(es) && es[i].ClientSeq == clientSeq {
		return es[i].WalSeq, true
	}
	return 0, true // below the window's oldest entry: ancient duplicate
}

// Record stores a fresh (clientSeq -> walSeq) assignment, trimming the
// client's window. Re-recording a clientSeq at or below the newest is a
// no-op, which makes recovery replay (snapshot table + tagged WAL tail)
// idempotent.
func (t *DedupTable) Record(clientID string, clientSeq, walSeq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	es := t.m[clientID]
	if len(es) > 0 && clientSeq <= es[len(es)-1].ClientSeq {
		return
	}
	es = append(es, dedupEntry{ClientSeq: clientSeq, WalSeq: walSeq})
	if over := len(es) - t.window; over > 0 {
		es = append(es[:0], es[over:]...)
	}
	t.m[clientID] = es
}

// Hits returns how many duplicate checks the table has answered — the
// exactly-once accounting the chaos sweeps assert on.
func (t *DedupTable) Hits() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits
}

// Clients returns the number of client identities tracked.
func (t *DedupTable) Clients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// setWindow adjusts the per-client window for future Records.
func (t *DedupTable) setWindow(window int) {
	if window <= 0 {
		window = DefaultDedupWindow
	}
	t.mu.Lock()
	t.window = window
	t.mu.Unlock()
}

// Encode appends the table's entries with WalSeq <= maxWalSeq, the subset a
// snapshot at maxWalSeq is allowed to claim: entries for batches logged but
// not yet covered by the snapshot must be rebuilt from the WAL tail, never
// asserted by a snapshot that might outlive their frames.
func (t *DedupTable) Encode(buf []byte, maxWalSeq uint64) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.m))
	for id := range t.m {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic bytes for bit-exact snapshot compares
	e := Enc{B: buf}
	e.U32(uint32(t.window))
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		kept := 0
		for _, en := range t.m[id] {
			if en.WalSeq <= maxWalSeq {
				kept++
			}
		}
		e.Str(id)
		e.U32(uint32(kept))
		for _, en := range t.m[id] {
			if en.WalSeq <= maxWalSeq {
				e.U64(en.ClientSeq)
				e.U64(en.WalSeq)
			}
		}
	}
	return e.B
}

// DecodeDedupTable decodes Encode's payload with the codec package's usual
// strictness: every length is validated before allocation.
func DecodeDedupTable(p []byte) (*DedupTable, error) {
	d := Dec{B: p}
	window := int(d.U32())
	n := int(d.U32())
	if d.Bad() || window < 1 || window > 1<<20 || n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: dedup table header", ErrCorrupt)
	}
	t := NewDedupTable(window)
	for i := 0; i < n; i++ {
		id := d.Str()
		cnt := d.Count(16)
		if d.Bad() || id == "" || len(id) > maxClientIDLen || cnt > window {
			return nil, fmt.Errorf("%w: dedup table client %d", ErrCorrupt, i)
		}
		es := make([]dedupEntry, cnt)
		var prev uint64
		for j := range es {
			es[j] = dedupEntry{ClientSeq: d.U64(), WalSeq: d.U64()}
			if j > 0 && es[j].ClientSeq <= prev {
				return nil, fmt.Errorf("%w: dedup table client %q out of order", ErrCorrupt, id)
			}
			prev = es[j].ClientSeq
		}
		t.m[id] = es
	}
	if err := d.Err("dedup table"); err != nil {
		return nil, err
	}
	return t, nil
}
