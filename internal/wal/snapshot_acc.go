package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Accumulative snapshot files share the selective snapshot framing (header,
// edges, state, footer) but carry the engine's residual state — rank vector
// plus aggregate and last-broadcast residuals — in a KindSnapAccState frame
// instead of KindSnapState. The kind byte makes the two formats mutually
// unreadable, so a recovery path can never restore the wrong engine family
// from a directory.

// AccSnapshotData is one decoded accumulative snapshot.
type AccSnapshotData struct {
	Seq   uint64
	NumV  int
	Edges []graph.Edge
	Acc   *engine.AccState
}

// WriteAccSnapshot persists g and the accumulative residual state at seq
// with the same atomicity and durability discipline as WriteSnapshot.
func WriteAccSnapshot(opts Options, seq uint64, g *graph.Streaming, st *engine.AccState) error {
	if _, err := opts.fire("snapshot.write"); err != nil {
		return err
	}
	var buf []byte
	var hdr [12]byte
	putU64(hdr[0:8], seq)
	putU32(hdr[8:12], uint32(g.NumVertices()))
	buf = AppendFrame(buf, KindSnapHeader, hdr[:])
	buf = AppendFrame(buf, KindSnapEdges, EncodeEdges(nil, g.Edges()))
	buf = AppendFrame(buf, KindSnapAccState, EncodeAccState(nil, g.NumVertices(), st))
	buf = AppendFrame(buf, KindSnapFooter, hdr[0:8])
	return writeSnapshotFile(opts, seq, buf)
}

// ReadAccSnapshot loads and fully validates one accumulative snapshot file
// with ReadSnapshot's strictness: frame CRCs, frame order, payload bounds,
// header/footer agreement, and no trailing data.
func ReadAccSnapshot(path string) (*AccSnapshotData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	defer f.Close()

	next := func(want byte) ([]byte, error) {
		kind, payload, err := ReadFrame(f)
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
		}
		if kind != want {
			return nil, fmt.Errorf("%w: snapshot frame kind %d, want %d", ErrCorrupt, kind, want)
		}
		return payload, nil
	}

	hdr, err := next(KindSnapHeader)
	if err != nil {
		return nil, err
	}
	if len(hdr) != 12 {
		return nil, fmt.Errorf("%w: snapshot header %d bytes", ErrCorrupt, len(hdr))
	}
	sd := &AccSnapshotData{Seq: getU64(hdr[0:8]), NumV: int(getU32(hdr[8:12]))}
	if sd.NumV < 0 || sd.NumV > 1<<28 {
		return nil, fmt.Errorf("%w: snapshot declares %d vertices", ErrCorrupt, sd.NumV)
	}
	edgesP, err := next(KindSnapEdges)
	if err != nil {
		return nil, err
	}
	if sd.Edges, err = DecodeEdges(edgesP, sd.NumV); err != nil {
		return nil, err
	}
	stateP, err := next(KindSnapAccState)
	if err != nil {
		return nil, err
	}
	if sd.Acc, err = DecodeAccState(stateP, sd.NumV); err != nil {
		return nil, err
	}
	footer, err := next(KindSnapFooter)
	if err != nil {
		return nil, err
	}
	if len(footer) != 8 || getU64(footer) != sd.Seq {
		return nil, fmt.Errorf("%w: snapshot footer disagrees with header", ErrCorrupt)
	}
	if _, _, err := ReadFrame(f); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after snapshot footer", ErrCorrupt)
	}
	return sd, nil
}
