package wal

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/oracle"
)

// The exactly-once ingest suite: the dedup window's contract (strictly
// increasing clientSeq, one batch outstanding), its persistence inside
// snapshots, its reconstruction from tagged WAL frames during recovery, and
// the degraded-mode ReopenLog episode a disk fault triggers.

func TestDedupTableCheckRecord(t *testing.T) {
	d := NewDedupTable(3)
	if _, dup := d.Check("a", 1); dup {
		t.Fatal("empty table claimed a duplicate")
	}
	d.Record("a", 1, 101)
	d.Record("a", 2, 102)
	if ws, dup := d.Check("a", 2); !dup || ws != 102 {
		t.Fatalf("Check(a,2) = (%d,%v), want (102,true)", ws, dup)
	}
	if ws, dup := d.Check("a", 1); !dup || ws != 101 {
		t.Fatalf("Check(a,1) = (%d,%v), want (101,true)", ws, dup)
	}
	if _, dup := d.Check("a", 3); dup {
		t.Fatal("future clientSeq claimed duplicate")
	}
	if _, dup := d.Check("b", 1); dup {
		t.Fatal("unknown client claimed duplicate")
	}
	// Window trims to 3 entries; aged-out duplicates still detected, walSeq 0.
	d.Record("a", 3, 103)
	d.Record("a", 4, 104)
	if ws, dup := d.Check("a", 1); !dup || ws != 0 {
		t.Fatalf("ancient dup = (%d,%v), want (0,true)", ws, dup)
	}
	// Re-recording at or below the newest is a no-op (recovery idempotence).
	d.Record("a", 4, 999)
	d.Record("a", 2, 998)
	if ws, _ := d.Check("a", 4); ws != 104 {
		t.Fatalf("re-Record overwrote walSeq: got %d, want 104", ws)
	}
	if d.Hits() == 0 {
		t.Fatal("hits counter never advanced")
	}
	if d.Clients() != 1 {
		t.Fatalf("Clients() = %d, want 1", d.Clients())
	}
}

func TestDedupTableEncodeDecode(t *testing.T) {
	d := NewDedupTable(8)
	d.Record("ing-1", 1, 10)
	d.Record("ing-1", 2, 11)
	d.Record("ing-2", 7, 12)
	d.Record("ing-2", 8, 13) // above maxWalSeq below: must be filtered

	got, err := DecodeDedupTable(d.Encode(nil, 12))
	if err != nil {
		t.Fatal(err)
	}
	if ws, dup := got.Check("ing-1", 2); !dup || ws != 11 {
		t.Fatalf("roundtrip Check(ing-1,2) = (%d,%v)", ws, dup)
	}
	if ws, dup := got.Check("ing-2", 7); !dup || ws != 12 {
		t.Fatalf("roundtrip Check(ing-2,7) = (%d,%v)", ws, dup)
	}
	// (ing-2, 8) had walSeq 13 > 12: the snapshot may not assert it.
	if _, dup := got.Check("ing-2", 8); dup {
		t.Fatal("snapshot asserted exactly-once for a frame it might outlive")
	}
	// Deterministic bytes (sorted client ids) for bit-exact snapshots.
	if a, b := string(d.Encode(nil, 12)), string(d.Encode(nil, 12)); a != b {
		t.Fatal("Encode is not deterministic")
	}
	if _, err := DecodeDedupTable([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated table decoded")
	}
}

func TestTaggedBatchCodec(t *testing.T) {
	b := graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 2, W: 3}}, {Edge: graph.Edge{Src: 4, Dst: 5, W: 6}, Del: true}}
	p := EncodeTaggedBatch(nil, 42, "client-7", 9, b)
	seq, got, cid, cseq, err := DecodeTaggedBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || cid != "client-7" || cseq != 9 || len(got) != 2 || got[1].Del != true {
		t.Fatalf("roundtrip mangled: seq=%d cid=%q cseq=%d batch=%v", seq, cid, cseq, got)
	}
	for cut := 1; cut < len(p); cut += 3 {
		if _, _, _, _, err := DecodeTaggedBatch(p[:cut]); err == nil {
			t.Fatalf("truncated tagged batch (%d bytes) decoded", cut)
		}
	}
	if _, _, _, _, err := DecodeTaggedBatch(EncodeTaggedBatch(nil, 1, "", 1, b)); err == nil {
		t.Fatal("empty clientID accepted in a tagged frame")
	}
}

func TestParseDiskFaultSpec(t *testing.T) {
	if inj, err := ParseDiskFaultSpec(""); err != nil || inj != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", inj, err)
	}
	inj, err := ParseDiskFaultSpec("after=2,count=3,err=eio")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := inj.fire("append.write"); err != nil {
			t.Fatalf("op %d failed before the window opened: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := inj.fire("append.sync"); !errors.Is(err, syscall.EIO) {
			t.Fatalf("armed op %d = %v, want EIO", i, err)
		}
	}
	if err := inj.fire("append.write"); err != nil {
		t.Fatalf("window exhausted but still failing: %v", err)
	}
	// Non-append sites never fault: snapshots stay writable while degraded.
	inj.Set(syscall.ENOSPC, 0, -1)
	if err := inj.fire("snapshot.write"); err != nil {
		t.Fatalf("snapshot site faulted: %v", err)
	}
	if err := inj.fire("append.write"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("count<0 should fail until Clear, got %v", err)
	}
	inj.Clear()
	if err := inj.fire("append.write"); err != nil {
		t.Fatalf("Clear did not disarm: %v", err)
	}
	for _, bad := range []string{"after", "after=x", "err=efault", "bogus=1"} {
		if _, err := ParseDiskFaultSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestSnapshotCarriesDedupTable(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: FsyncOff}
	w := testWorkload(17, 64, 1, 10)
	g := graph.FromEdges(w.NumV, w.Initial)
	vals, parent := algo.SolveSelective(g, algo.SSSP{Src: 0})

	dd := NewDedupTable(4)
	dd.Record("c", 1, 3)
	dd.Record("c", 2, 9) // beyond the snapshot seq: filtered
	if err := writeSnapshotWith(opts, 5, g, vals, parent, dd); err != nil {
		t.Fatal(err)
	}
	sd, err := ReadSnapshot(filepath.Join(dir, SnapName(5)))
	if err != nil {
		t.Fatal(err)
	}
	if sd.Dedup == nil {
		t.Fatal("snapshot lost the dedup frame")
	}
	if ws, dup := sd.Dedup.Check("c", 1); !dup || ws != 3 {
		t.Fatalf("restored Check(c,1) = (%d,%v)", ws, dup)
	}
	if _, dup := sd.Dedup.Check("c", 2); dup {
		t.Fatal("snapshot asserted an uncovered walSeq")
	}
	// A dedup-less snapshot still reads back (format compatibility).
	if err := WriteSnapshot(opts, 6, g, vals, parent); err != nil {
		t.Fatal(err)
	}
	sd6, err := ReadSnapshot(filepath.Join(dir, SnapName(6)))
	if err != nil {
		t.Fatal(err)
	}
	if sd6.Dedup != nil {
		t.Fatal("dedup-less snapshot grew a table")
	}
}

// servingHarness is the minimal serving-mode rig: a durable selective
// engine, its group commit, and a single applier goroutine.
type servingHarness struct {
	d      *DurableSelective
	gc     *GroupCommit
	applyQ chan struct {
		seq uint64
		b   graph.Batch
	}
	done chan error
}

func newServingHarness(t *testing.T, w wload, dc DurableConfig) *servingHarness {
	t.Helper()
	d, err := NewDurableSelective(graph.FromEdges(w.nv, w.initial), algo.SSSP{Src: 0}, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	h := &servingHarness{d: d, done: make(chan error, 1)}
	h.applyQ = make(chan struct {
		seq uint64
		b   graph.Batch
	}, 256)
	h.gc = d.Group(func(seq uint64, b graph.Batch) {
		h.applyQ <- struct {
			seq uint64
			b   graph.Batch
		}{seq, b}
	}, nil)
	go func() {
		for lg := range h.applyQ {
			if _, err := d.ApplyLogged(context.Background(), lg.seq, lg.b); err != nil {
				h.done <- err
				return
			}
		}
		h.done <- nil
	}()
	return h
}

type wload struct {
	nv      int
	initial []graph.Edge
}

func isInf(x float64) bool { return math.IsInf(x, 1) }

func (h *servingHarness) drain(t *testing.T) {
	t.Helper()
	close(h.applyQ)
	if err := <-h.done; err != nil {
		t.Fatal(err)
	}
}

func TestTaggedAppendRecoveryKeepsExactlyOnce(t *testing.T) {
	w := testWorkload(23, 64, 8, 12)
	dir := t.TempDir()
	dc := DurableConfig{DedupWindow: 4, SnapshotEvery: 3,
		Wal: Options{Dir: dir, Policy: FsyncAlways}}
	h := newServingHarness(t, wload{w.NumV, w.Initial}, dc)

	// Two clients interleave; client A resends cseq 2 mid-stream.
	seqs := map[string][]uint64{}
	appendOne := func(cid string, cseq uint64, b graph.Batch, wantDup bool) uint64 {
		t.Helper()
		seq, dup, err := h.gc.AppendTagged(cid, cseq, b)
		if err != nil {
			t.Fatalf("%s/%d: %v", cid, cseq, err)
		}
		if dup != wantDup {
			t.Fatalf("%s/%d: dup=%v, want %v", cid, cseq, dup, wantDup)
		}
		seqs[cid] = append(seqs[cid], seq)
		return seq
	}
	appendOne("A", 1, w.Batches[0], false)
	appendOne("B", 1, w.Batches[1], false)
	appendOne("A", 2, w.Batches[2], false)
	if re := appendOne("A", 2, w.Batches[2], true); re != seqs["A"][1] {
		t.Fatalf("resend acked seq %d, want original %d", re, seqs["A"][1])
	}
	appendOne("B", 2, w.Batches[3], false)
	appendOne("A", 3, w.Batches[4], false)
	if h.gc.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d after 5 unique + 1 resend, want 5", h.gc.LastSeq())
	}
	h.drain(t)
	if err := h.d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery (snapshot at seq 3 + tagged tail) must rebuild the window:
	// resends of pre-crash batches are still duplicates, new seqs are not.
	d2, rs, err := RecoverSelective(algo.SSSP{Src: 0}, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if v := oracle.CheckReplay("recover", rs.SnapshotSeq, 5, rs.Replayed); v != nil {
		t.Fatal(v)
	}
	gc2 := d2.Group(func(uint64, graph.Batch) {}, nil)
	// Append order was A1=1, B1=2, A2=3, B2=4, A3=5.
	if seq, dup, err := gc2.AppendTagged("A", 3, w.Batches[4]); err != nil || !dup || seq != 5 {
		t.Fatalf("post-recovery resend A/3 = (%d,%v,%v), want (5,true,nil)", seq, dup, err)
	}
	if seq, dup, err := gc2.AppendTagged("B", 2, w.Batches[3]); err != nil || !dup || seq != 4 {
		t.Fatalf("post-recovery resend B/2 = (%d,%v,%v), want (4,true,nil)", seq, dup, err)
	}
	if _, dup, err := gc2.AppendTagged("B", 3, w.Batches[5]); err != nil || dup {
		t.Fatalf("fresh post-recovery append flagged dup=%v err=%v", dup, err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenLogRecoversFromDiskFault(t *testing.T) {
	w := testWorkload(29, 64, 8, 12)
	inj := NewDiskFaultInjector(syscall.ENOSPC, 0, 0) // count 0: built disarmed
	dc := DurableConfig{DedupWindow: 4,
		Wal: Options{Dir: t.TempDir(), Policy: FsyncAlways, DiskFaults: inj}}
	h := newServingHarness(t, wload{w.NumV, w.Initial}, dc)

	for i := 0; i < 3; i++ {
		if _, _, err := h.gc.AppendTagged("C", uint64(i+1), w.Batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Arm a one-op ENOSPC window: the next append fails and poisons the log.
	inj.Set(syscall.ENOSPC, 0, 1)
	if _, _, err := h.gc.AppendTagged("C", 4, w.Batches[3]); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("armed append = %v, want ENOSPC", err)
	}
	if _, err := h.gc.Append(w.Batches[3]); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	if inj.Fired() == 0 {
		t.Fatal("injector never fired")
	}

	// Probe like the server does: ReopenLog may need retries while the
	// applier is still draining the batches the dead generation enqueued.
	var rerr error
	for i := 0; i < 200; i++ {
		if rerr = h.d.ReopenLog(); rerr == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if rerr != nil {
		t.Fatalf("ReopenLog never succeeded: %v", rerr)
	}

	// The failed batch was never acked: the client resends the SAME cseq
	// and it must append fresh (not dup — the torn frame died with the old
	// log generation).
	seq, dup, err := h.gc.AppendTagged("C", 4, w.Batches[3])
	if err != nil {
		t.Fatalf("post-reopen resend: %v", err)
	}
	if dup {
		t.Fatal("resend of a never-logged batch claimed duplicate")
	}
	if seq != 4 {
		t.Fatalf("post-reopen seq = %d, want 4", seq)
	}
	h.drain(t)
	if err := h.d.Close(); err != nil {
		t.Fatal(err)
	}

	// The directory recovers to exactly the served state.
	d2, _, err := RecoverSelective(algo.SSSP{Src: 0}, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Seq() != 4 {
		t.Fatalf("recovered seq = %d, want 4", d2.Seq())
	}
	ref := graph.FromEdges(w.NumV, w.Initial)
	for i := 0; i < 4; i++ {
		ref.ApplyBatch(w.Batches[i])
	}
	want, _ := algo.SolveSelective(ref, algo.SSSP{Src: 0})
	got := d2.Eng.Values()
	for v := range want {
		if got[v] != want[v] && !(isInf(got[v]) && isInf(want[v])) {
			t.Fatalf("vertex %d = %v, want %v", v, got[v], want[v])
		}
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}
