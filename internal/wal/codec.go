// Package wal gives the single-node engines a durability story: a
// segmented, CRC32C-framed write-ahead log of edge batches with a
// configurable fsync policy, periodic snapshot checkpoints of the
// graph.Streaming state and engine refinement floors, log truncation behind
// snapshots, and a recovery path that restores the newest intact snapshot
// and replays the WAL tail through the engine to converge on the
// from-scratch oracle (DESIGN.md §4.9).
//
// The frame codec in this file is the shared serialization layer: the WAL
// segments, the snapshot files, and the distributed runtime's on-disk
// checkpoints (internal/dist) all speak it, so every durable artifact in the
// repository detects truncation and bit corruption the same way.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Frame layout, little-endian:
//
//	[4B payload length][4B CRC32C of kind+payload][1B kind][payload]
//
// The length counts the kind byte plus the payload, so a reader can skip a
// frame it does not understand while still checksumming it. A frame is torn
// when the file ends before the declared length, and corrupt when the CRC
// does not match; readers stop cleanly at the first of either.
const (
	frameHeaderLen = 8
	// MaxFrameLen bounds a single frame (1 GiB): a declared length beyond
	// it is treated as corruption, never as an allocation request.
	MaxFrameLen = 1 << 30
)

// Frame kinds. The codec itself is kind-agnostic; these constants name the
// record types the WAL, snapshots, and dist checkpoints write.
const (
	// KindBatch is one logged edge batch: [8B seq][batch payload].
	KindBatch byte = 1
	// KindSnapHeader opens a snapshot file: seq, vertex count, state dim.
	KindSnapHeader byte = 2
	// KindSnapEdges carries the snapshot graph's edge list.
	KindSnapEdges byte = 3
	// KindSnapState carries the engine values and key-edge parents.
	KindSnapState byte = 4
	// KindSnapFooter closes a snapshot file; its absence marks a snapshot
	// that was still being written when the process died.
	KindSnapFooter byte = 5
	// KindDistCheckpoint is the distributed runtime's checkpoint payload.
	KindDistCheckpoint byte = 6
	// KindSnapAccState carries the accumulative engine's residual state
	// (rank vector + aggregate + last-broadcast residuals) in place of
	// KindSnapState inside an accumulative snapshot file.
	KindSnapAccState byte = 7
	// KindBatchTagged is a logged edge batch carrying a client idempotency
	// key: [4B len][clientID][8B clientSeq][KindBatch payload]. The key and
	// the batch share one frame (one CRC), so a torn write can never persist
	// the batch without its dedup record or vice versa.
	KindBatchTagged byte = 8
	// KindSnapDedup, when present between KindSnapState (or KindSnapAccState)
	// and the footer, carries the per-client dedup window consistent with the
	// snapshot's sequence. Readers tolerate its absence: snapshots written
	// before exactly-once ingest (or with dedup disabled) simply lack it.
	KindSnapDedup byte = 9
)

// castagnoli is the CRC32C polynomial table (the same checksum families
// like RocksDB and etcd frame their logs with; SSE4.2 accelerates it).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors readers branch on. ErrTorn means the file ended inside a
// frame (a crashed append); ErrCorrupt means the frame is structurally
// complete but fails its checksum or sanity bounds (bit rot, overwrite).
var (
	ErrTorn    = errors.New("wal: torn frame (file ends mid-frame)")
	ErrCorrupt = errors.New("wal: corrupt frame (checksum or bounds violation)")
)

// Little-endian shorthands shared by the frame and payload codecs.
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// AppendFrame appends one encoded frame to buf and returns the extension.
func AppendFrame(buf []byte, kind byte, payload []byte) []byte {
	n := len(payload) + 1
	var hdr [frameHeaderLen + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Update(0, castagnoli, []byte{kind})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = kind
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	_, err := w.Write(AppendFrame(nil, kind, payload))
	return err
}

// ReadFrame reads the next frame from r. It returns io.EOF at a clean end
// of input, ErrTorn when the input ends inside a frame, and ErrCorrupt when
// the frame fails its checksum or declares an impossible length. The
// returned payload aliases a fresh allocation and is safe to retain.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, ErrTorn // ErrUnexpectedEOF or a short read
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 1 || n > MaxFrameLen {
		return 0, nil, ErrCorrupt
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, ErrTorn
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, nil, ErrCorrupt
	}
	return body[0], body[1:], nil
}

// --- payload codecs ---
//
// Payloads are flat little-endian records. Decoders validate every length
// and range before allocating or returning data: a decoder must never
// panic or hand back garbage on adversarial input — that is the regression
// the dist checkpoint hardening (checkpoint_test.go) pins down.

// EncodeBatch encodes a sequence-numbered edge batch.
func EncodeBatch(buf []byte, seq uint64, b graph.Batch) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	for _, u := range b {
		buf = binary.LittleEndian.AppendUint32(buf, u.Src)
		buf = binary.LittleEndian.AppendUint32(buf, u.Dst)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.W))
		if u.Del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeBatch decodes EncodeBatch's payload.
func DecodeBatch(p []byte) (seq uint64, b graph.Batch, err error) {
	const updLen = 4 + 4 + 8 + 1
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("%w: batch payload %d bytes", ErrCorrupt, len(p))
	}
	seq = binary.LittleEndian.Uint64(p[0:8])
	n := int(binary.LittleEndian.Uint32(p[8:12]))
	p = p[12:]
	if n < 0 || len(p) != n*updLen {
		return 0, nil, fmt.Errorf("%w: batch declares %d updates, %d bytes follow", ErrCorrupt, n, len(p))
	}
	b = make(graph.Batch, n)
	for i := range b {
		rec := p[i*updLen:]
		b[i] = graph.Update{
			Edge: graph.Edge{
				Src: binary.LittleEndian.Uint32(rec[0:4]),
				Dst: binary.LittleEndian.Uint32(rec[4:8]),
				W:   math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
			},
			Del: rec[16] != 0,
		}
	}
	return seq, b, nil
}

// maxClientIDLen bounds a client identity inside tagged frames; a longer
// declared length is corruption, never an allocation request.
const maxClientIDLen = 256

// EncodeTaggedBatch encodes a sequence-numbered edge batch carrying a client
// idempotency key (clientID, clientSeq). The tag prefixes a standard
// EncodeBatch payload so the two decode paths share the batch tail.
func EncodeTaggedBatch(buf []byte, seq uint64, clientID string, clientSeq uint64, b graph.Batch) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(clientID)))
	buf = append(buf, clientID...)
	buf = binary.LittleEndian.AppendUint64(buf, clientSeq)
	return EncodeBatch(buf, seq, b)
}

// DecodeTaggedBatch decodes EncodeTaggedBatch's payload.
func DecodeTaggedBatch(p []byte) (seq uint64, b graph.Batch, clientID string, clientSeq uint64, err error) {
	if len(p) < 4 {
		return 0, nil, "", 0, fmt.Errorf("%w: tagged batch payload %d bytes", ErrCorrupt, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	if n < 1 || n > maxClientIDLen || len(p) < 4+n+8 {
		return 0, nil, "", 0, fmt.Errorf("%w: tagged batch declares %d-byte client id", ErrCorrupt, n)
	}
	clientID = string(p[4 : 4+n])
	clientSeq = binary.LittleEndian.Uint64(p[4+n : 12+n])
	seq, b, err = DecodeBatch(p[12+n:])
	return seq, b, clientID, clientSeq, err
}

// EncodeDistCheckpoint encodes a distributed worker's checkpoint payload:
// the batch sequence the state is consistent with, followed by the state
// section. It is the payload carried by KindDistCheckpoint frames inside
// per-worker checkpoint files (internal/dist's socket runtime); the
// Manager-side cluster checkpoint (dist.SaveCheckpoint) predates the seq
// prefix and keeps its bare EncodeState payload.
func EncodeDistCheckpoint(buf []byte, seq uint64, vals []float64, parent []int32) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return EncodeState(buf, vals, parent)
}

// DecodeDistCheckpoint decodes EncodeDistCheckpoint's payload with the same
// validation discipline as DecodeState.
func DecodeDistCheckpoint(p []byte, numVals, numV int) (seq uint64, vals []float64, parent []int32, err error) {
	if len(p) < 8 {
		return 0, nil, nil, fmt.Errorf("%w: dist checkpoint payload %d bytes", ErrCorrupt, len(p))
	}
	seq = binary.LittleEndian.Uint64(p[0:8])
	vals, parent, err = DecodeState(p[8:], numVals, numV)
	return seq, vals, parent, err
}

// EncodeEdges encodes an edge list (a snapshot's graph section).
func EncodeEdges(buf []byte, edges []graph.Edge) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, e.Src)
		buf = binary.LittleEndian.AppendUint32(buf, e.Dst)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.W))
	}
	return buf
}

// DecodeEdges decodes EncodeEdges's payload, rejecting edges whose
// endpoints fall outside [0, numV).
func DecodeEdges(p []byte, numV int) ([]graph.Edge, error) {
	const edgeLen = 4 + 4 + 8
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: edge payload %d bytes", ErrCorrupt, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	if n < 0 || len(p) != n*edgeLen {
		return nil, fmt.Errorf("%w: edge list declares %d edges, %d bytes follow", ErrCorrupt, n, len(p))
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		rec := p[i*edgeLen:]
		e := graph.Edge{
			Src: binary.LittleEndian.Uint32(rec[0:4]),
			Dst: binary.LittleEndian.Uint32(rec[4:8]),
			W:   math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
		}
		if int(e.Src) >= numV || int(e.Dst) >= numV {
			return nil, fmt.Errorf("%w: edge %d->%d exceeds %d vertices", ErrCorrupt, e.Src, e.Dst, numV)
		}
		edges[i] = e
	}
	return edges, nil
}

// EncodeState encodes per-vertex values and key-edge parents (an engine
// snapshot's state section and the dist checkpoint payload). parent may be
// nil when only values are checkpointed.
func EncodeState(buf []byte, vals []float64, parent []int32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vals)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(parent)))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, pv := range parent {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pv))
	}
	return buf
}

// DecodeState decodes EncodeState's payload. Parents must be -1 or a valid
// vertex under numV; values of a dim-vector state pass numV*dim.
func DecodeState(p []byte, numVals, numV int) (vals []float64, parent []int32, err error) {
	if len(p) < 8 {
		return nil, nil, fmt.Errorf("%w: state payload %d bytes", ErrCorrupt, len(p))
	}
	nv := int(binary.LittleEndian.Uint32(p[0:4]))
	np := int(binary.LittleEndian.Uint32(p[4:8]))
	p = p[8:]
	if nv != numVals || (np != 0 && np != numV) {
		return nil, nil, fmt.Errorf("%w: state declares %d values / %d parents, want %d / {0,%d}",
			ErrCorrupt, nv, np, numVals, numV)
	}
	if len(p) != nv*8+np*4 {
		return nil, nil, fmt.Errorf("%w: state payload %d bytes, want %d", ErrCorrupt, len(p), nv*8+np*4)
	}
	vals = make([]float64, nv)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	p = p[nv*8:]
	if np == 0 {
		return vals, nil, nil
	}
	parent = make([]int32, np)
	for i := range parent {
		pv := int32(binary.LittleEndian.Uint32(p[i*4:]))
		if pv < -1 || int(pv) >= numV {
			return nil, nil, fmt.Errorf("%w: parent[%d]=%d outside [-1,%d)", ErrCorrupt, i, pv, numV)
		}
		parent[i] = pv
	}
	return vals, parent, nil
}

// EncodeAccState appends the accumulative engine's residual state: a header
// of [4B dim][4B numV] followed by the state, aggregate, and last-broadcast
// vectors, each numV*dim little-endian float64 bits. buf may be nil.
func EncodeAccState(buf []byte, numV int, st *engine.AccState) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.Dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(numV))
	for _, vec := range [][]float64{st.State, st.Agg, st.LastUnit} {
		for _, v := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// DecodeAccState decodes EncodeAccState's payload, validating the declared
// dimension and vertex count against the snapshot header's.
func DecodeAccState(p []byte, numV int) (*engine.AccState, error) {
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: acc state payload %d bytes", ErrCorrupt, len(p))
	}
	dim := int(binary.LittleEndian.Uint32(p[0:4]))
	nv := int(binary.LittleEndian.Uint32(p[4:8]))
	p = p[8:]
	if dim < 1 || dim > 1<<12 {
		return nil, fmt.Errorf("%w: acc state declares dim %d", ErrCorrupt, dim)
	}
	if nv != numV {
		return nil, fmt.Errorf("%w: acc state declares %d vertices, want %d", ErrCorrupt, nv, numV)
	}
	n := nv * dim
	if len(p) != 3*n*8 {
		return nil, fmt.Errorf("%w: acc state payload %d bytes, want %d", ErrCorrupt, len(p), 3*n*8)
	}
	st := &engine.AccState{Dim: dim}
	for _, dst := range []*[]float64{&st.State, &st.Agg, &st.LastUnit} {
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
		}
		p = p[n*8:]
		*dst = vec
	}
	return st, nil
}
