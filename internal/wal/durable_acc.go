package wal

import (
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
)

// DurableAccumulative gives PageRank/LP the same write-ahead durability as
// DurableSelective: log-before-apply, periodic snapshots of the residual
// state (rank vector + aggregate + last-broadcast residuals), retention,
// and exactly-once tail replay on recovery. Because the residuals are
// captured at a converged batch boundary, recovery resumes delta-push
// incrementally — no from-scratch converge.
type DurableAccumulative struct {
	Eng *engine.Accumulative
	durableCore
}

func (d *DurableAccumulative) wire() {
	d.checkBatch = d.Eng.G.CheckBatch
	d.applyBatch = d.Eng.ProcessBatchCtx
	d.writeSnap = func(seq uint64) error {
		return WriteAccSnapshot(d.cfg.Wal, seq, d.Eng.G, d.Eng.SnapshotState())
	}
}

// NewDurableAccumulative builds a fresh engine over g (running the initial
// converge) and makes it durable; the directory must not already hold a
// snapshot or log — recover those with RecoverAccumulative instead.
func NewDurableAccumulative(g *graph.Streaming, alg algo.Accumulative, ecfg engine.Config, dc DurableConfig) (*DurableAccumulative, error) {
	log, err := openFreshLog(dc, "RecoverAccumulative")
	if err != nil {
		return nil, err
	}
	d := &DurableAccumulative{Eng: engine.NewAccumulative(g, alg, ecfg)}
	d.log, d.cfg = log, dc
	d.wire()
	if err := d.Snapshot(); err != nil {
		log.Close()
		return nil, err
	}
	return d, nil
}

// RecoverAccumulative rebuilds a durable accumulative engine from
// dc.Wal.Dir: newest validating residual snapshot, engine restored at the
// converged boundary, WAL tail replayed exactly once.
func RecoverAccumulative(alg algo.Accumulative, ecfg engine.Config, dc DurableConfig) (*DurableAccumulative, RecoveryStats, error) {
	t0 := time.Now()
	var rs RecoveryStats
	var sd *AccSnapshotData
	if err := newestValidating(dc.Wal.Dir, func(path string) error {
		var err error
		sd, err = ReadAccSnapshot(path)
		return err
	}); err != nil {
		return nil, rs, err
	}
	rs.SnapshotSeq = sd.Seq

	g := graph.FromEdges(sd.NumV, sd.Edges)
	eng, err := engine.NewAccumulativeFromState(g, alg, ecfg, sd.Acc)
	if err != nil {
		return nil, rs, err
	}
	log, err := replayTail(dc, sd.Seq, nil, &rs, func(b graph.Batch) error {
		_, err := eng.ProcessBatchE(b)
		return err
	})
	if err != nil {
		return nil, rs, err
	}
	rs.Duration = time.Since(t0)
	if m := dc.Wal.Metrics; m != nil {
		m.Gauge("recovery.ns").Set(float64(rs.Duration.Nanoseconds()))
	}
	d := &DurableAccumulative{Eng: eng}
	d.log, d.cfg, d.seq = log, dc, rs.LastSeq
	d.wire()
	return d, rs, nil
}
