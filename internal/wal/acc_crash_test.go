package wal

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// The DurableAccumulative / DurableLocal crash sweeps mirror crash_test.go:
// every injection site the workload reaches × fsync policies × clean/torn
// death, plus corruption of the residual snapshots behind finished runs.
// Replay accounting is validated by the consistency oracle's exactly-once
// check, and the recovered state by FirstDivergence against a from-scratch
// solve (tolerance-bounded for the accumulative engine, bit-exact for the
// local engines).

func runUntilCrashAcc(t *testing.T, w gen.Workload, alg algo.Accumulative, dc DurableConfig) (acked int, crashed bool) {
	t.Helper()
	d, err := NewDurableAccumulative(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		if _, ok := err.(*crashError); ok {
			return 0, true
		}
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if _, err := d.ProcessBatch(context.Background(), b); err != nil {
			if _, ok := err.(*crashError); ok {
				d.Abandon()
				return acked, true
			}
			t.Fatal(err)
		}
		acked++
	}
	d.Abandon()
	return acked, false
}

func accOracleVals(t *testing.T, w gen.Workload, alg algo.Accumulative, n int) []float64 {
	t.Helper()
	g := graph.FromEdges(w.NumV, w.Initial)
	for _, b := range w.Batches[:n] {
		g.ApplyBatch(b)
	}
	return algo.SolveAccumulative(g, alg)
}

func verifyAccRecovery(t *testing.T, w gen.Workload, alg algo.Accumulative, dc DurableConfig, minSeq int, label string) {
	t.Helper()
	dc.Wal.hook = nil
	d, rs, err := RecoverAccumulative(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer d.Close()
	if v := oracle.CheckReplay("wal/accumulative", rs.SnapshotSeq, rs.LastSeq, rs.Replayed); v != nil {
		t.Fatalf("%s: %v", label, v)
	}
	if int(rs.LastSeq) > len(w.Batches) {
		t.Fatalf("%s: recovered past the stream: seq %d of %d", label, rs.LastSeq, len(w.Batches))
	}
	if minSeq >= 0 && int(rs.LastSeq) < minSeq {
		t.Fatalf("%s: lost acknowledged batches: recovered to %d, acked %d", label, rs.LastSeq, minSeq)
	}
	want := accOracleVals(t, w, alg, int(rs.LastSeq))
	if i, div := oracle.FirstDivergence(d.Eng.Values(), want, oracle.AccTolerance); div {
		t.Fatalf("%s: recovered state differs from oracle at vertex %d over %d batches",
			label, i, rs.LastSeq)
	}
}

// TestAccCrashPointSweep is the acceptance-bar sweep: ≥ 100 seeded crash
// points across every site × policy × clean/torn death, plus seeded
// corruption of the snapshot-of-residuals files.
func TestAccCrashPointSweep(t *testing.T) {
	w := testWorkload(113, 96, 8, 50)
	alg := algo.NewPageRank(w.NumV)
	scenarios := 0

	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		countPlan := &crashPlan{}
		countDir := t.TempDir()
		if _, crashed := runUntilCrashAcc(t, w, alg, crashConfig(countDir, policy, countPlan, nil)); crashed {
			t.Fatal("count pass must not crash")
		}
		sites := countPlan.count
		if sites < 15 {
			t.Fatalf("policy %v: only %d sites — the workload no longer exercises the WAL", policy, sites)
		}
		for _, tear := range []int{-1, 5} {
			for k := 1; k <= sites; k++ {
				dir := t.TempDir()
				plan := &crashPlan{at: k, tear: tear}
				dc := crashConfig(dir, policy, plan, nil)
				acked, crashed := runUntilCrashAcc(t, w, alg, dc)
				if !crashed {
					t.Fatalf("policy %v site %d/%d: crash did not fire", policy, k, sites)
				}
				if !HasSnapshot(dir) {
					if acked != 0 {
						t.Fatalf("policy %v site %d (%s): %d acked without a snapshot", policy, k, plan.fired, acked)
					}
					scenarios++
					continue
				}
				verifyAccRecovery(t, w, alg, dc, acked, policy.String()+"/"+plan.fired)
				scenarios++
			}
		}
	}

	// Corruption of the residual snapshots behind completed runs: flipping
	// or tearing the newest snapshot must fall back to the older one plus
	// the untrimmed log tail without losing an acknowledged batch.
	for seed := uint64(0); seed < 24; seed++ {
		r := rng.New(seed*9151841 + 17)
		dir := t.TempDir()
		dc := crashConfig(dir, FsyncOff, nil, nil)
		acked, _ := runUntilCrashAcc(t, w, alg, dc)

		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var snaps []string
		for _, e := range entries {
			if _, ok := snapSeqOf(e.Name()); ok {
				snaps = append(snaps, filepath.Join(dir, e.Name()))
			}
		}
		if len(snaps) != snapRetain {
			t.Fatalf("seed %d: %d snapshots, want %d", seed, len(snaps), snapRetain)
		}
		if seed%2 == 0 {
			corruptFile(t, snaps[len(snaps)-1], r, true) // torn residual snapshot
			verifyAccRecovery(t, w, alg, dc, acked, "accsnap-tear")
		} else {
			corruptFile(t, snaps[len(snaps)-1], r, false) // bit-flipped residuals
			verifyAccRecovery(t, w, alg, dc, acked, "accsnap-flip")
		}
		scenarios++
	}

	if scenarios < 100 {
		t.Fatalf("only %d scenarios ran; the acceptance bar is 100", scenarios)
	}
	t.Logf("%d accumulative crash/corruption scenarios verified", scenarios)
}

// TestDurableAccumulativeRoundTrip pins the uncrashed path: snapshots and
// recovery on a clean directory reproduce the engine state exactly (the
// residuals restore bit-for-bit; only replayed batches are tolerance-bound).
func TestDurableAccumulativeRoundTrip(t *testing.T) {
	w := testWorkload(29, 64, 6, 40)
	alg := algo.NewPageRank(w.NumV)
	dir := t.TempDir()
	dc := DurableConfig{Wal: Options{Dir: dir, SegmentBytes: 1 << 12, Policy: FsyncOff}, SnapshotEvery: 2}
	d, err := NewDurableAccumulative(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if _, err := d.ProcessBatch(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	want := d.Eng.Values()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, rs, err := RecoverAccumulative(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v := oracle.CheckReplay("wal/accumulative", rs.SnapshotSeq, rs.LastSeq, rs.Replayed); v != nil {
		t.Fatal(v)
	}
	if rs.LastSeq != uint64(len(w.Batches)) {
		t.Fatalf("recovered to seq %d, want %d", rs.LastSeq, len(w.Batches))
	}
	if i, div := oracle.FirstDivergence(r.Eng.Values(), want, oracle.AccTolerance); div {
		t.Fatalf("recovered state differs from pre-close state at index %d", i)
	}
	if r.Seq() != rs.LastSeq || r.Dirty() {
		t.Fatalf("recovered wrapper in bad state: seq %d dirty %v", r.Seq(), r.Dirty())
	}
}

// --- DurableLocal: crash sweep over the non-monotonic workloads ---

func localWorkloadMirrored(seed uint64) gen.Workload {
	w := testWorkload(seed, 96, 8, 50)
	var both []graph.Edge
	for _, e := range w.Initial {
		both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	w.Initial = both
	return w
}

func localOracleVals(t *testing.T, w gen.Workload, alg algo.Local, n int) []float64 {
	t.Helper()
	g := graph.FromEdges(w.NumV, w.Initial)
	for _, b := range w.Batches[:n] {
		g.ApplyBatch(engine.Symmetrize(b))
	}
	return alg.Solve(g)
}

func runUntilCrashLocal(t *testing.T, w gen.Workload, alg algo.Local, dc DurableConfig) (acked int, crashed bool) {
	t.Helper()
	d, err := NewDurableLocal(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		if _, ok := err.(*crashError); ok {
			return 0, true
		}
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if _, err := d.ProcessBatch(context.Background(), b); err != nil {
			if _, ok := err.(*crashError); ok {
				d.Abandon()
				return acked, true
			}
			t.Fatal(err)
		}
		acked++
	}
	d.Abandon()
	return acked, false
}

func verifyLocalRecovery(t *testing.T, w gen.Workload, alg algo.Local, dc DurableConfig, minSeq int, label string) {
	t.Helper()
	dc.Wal.hook = nil
	d, rs, err := RecoverLocal(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer d.Close()
	if v := oracle.CheckReplay("wal/local", rs.SnapshotSeq, rs.LastSeq, rs.Replayed); v != nil {
		t.Fatalf("%s: %v", label, v)
	}
	if minSeq >= 0 && int(rs.LastSeq) < minSeq {
		t.Fatalf("%s: lost acknowledged batches: recovered to %d, acked %d", label, rs.LastSeq, minSeq)
	}
	// Unique seeded fixpoints over small integers: bit-exact, no tolerance.
	want := localOracleVals(t, w, alg, int(rs.LastSeq))
	if i, div := oracle.FirstDivergence(d.Eng.Values(), want, 0); div {
		t.Fatalf("%s: recovered state differs from oracle at vertex %d over %d batches",
			label, i, rs.LastSeq)
	}
}

// TestLocalCrashPointSweep drives both non-monotonic workloads through the
// injection sites under the interval policy (the other policies only move
// sync sites, which the accumulative and selective sweeps already cover).
func TestLocalCrashPointSweep(t *testing.T) {
	for _, alg := range []algo.Local{algo.TriangleCount{}, algo.KCore{}} {
		w := localWorkloadMirrored(131)
		countPlan := &crashPlan{}
		countDir := t.TempDir()
		if _, crashed := runUntilCrashLocal(t, w, alg, crashConfig(countDir, FsyncInterval, countPlan, nil)); crashed {
			t.Fatal("count pass must not crash")
		}
		if countPlan.count < 15 {
			t.Fatalf("%s: only %d sites", alg.Name(), countPlan.count)
		}
		for _, tear := range []int{-1, 5} {
			for k := 1; k <= countPlan.count; k++ {
				dir := t.TempDir()
				plan := &crashPlan{at: k, tear: tear}
				dc := crashConfig(dir, FsyncInterval, plan, nil)
				acked, crashed := runUntilCrashLocal(t, w, alg, dc)
				if !crashed {
					t.Fatalf("%s site %d: crash did not fire", alg.Name(), k)
				}
				if !HasSnapshot(dir) {
					if acked != 0 {
						t.Fatalf("%s site %d (%s): %d acked without a snapshot", alg.Name(), k, plan.fired, acked)
					}
					continue
				}
				verifyLocalRecovery(t, w, alg, dc, acked, alg.Name()+"/"+plan.fired)
			}
		}
	}
}
