package wal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// The crash-point fuzzer (DESIGN.md §4.9). A first pass counts every
// durability-critical site the workload reaches (append.write, append.sync,
// rotate.create, snapshot.write/sync/rename/remove, truncate.remove); then
// one scenario per site re-runs the workload and dies exactly there —
// optionally tearing the in-flight write — and recovery must restore a
// state equal to the from-scratch oracle over the surviving prefix, with
// every surviving batch replayed exactly once. Corruption scenarios flip
// bits and truncate log and snapshot files behind a finished run and assert
// the same. Everything is seeded: a failure message reproduces the run.

// crashPlan is the injection schedule for one scenario.
type crashPlan struct {
	at    int // die at the at-th site reached (1-based; 0 = never)
	tear  int // bytes of the pending write to let through (-1 = none)
	count int // sites reached so far
	fired string
}

func (p *crashPlan) hook(site string) error {
	p.count++
	if p.count == p.at {
		p.fired = site
		return &crashError{Site: site, Tear: p.tear}
	}
	return nil
}

// crashConfig is the fixed fuzzing workload: small enough that a scenario
// (static solve + 8 batches + recovery + 2 oracle solves) stays in the low
// milliseconds even under -race, large enough to force segment rotation,
// two snapshot cycles, retention eviction, and log truncation.
func crashConfig(dir string, policy FsyncPolicy, plan *crashPlan, reg *metrics.Registry) DurableConfig {
	opts := Options{Dir: dir, SegmentBytes: 1 << 11, Policy: policy, FsyncEvery: 2, Metrics: reg}
	if plan != nil {
		opts.hook = plan.hook
	}
	return DurableConfig{Wal: opts, SnapshotEvery: 3}
}

// runUntilCrash feeds the workload until the plan kills the run (or it
// completes), returning the number of acknowledged batches and whether the
// run died.
func runUntilCrash(t *testing.T, dir string, w gen.Workload, alg algo.Selective, dc DurableConfig) (acked int, crashed bool) {
	t.Helper()
	d, err := NewDurableSelective(graph.FromEdges(w.NumV, w.Initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		if _, ok := err.(*crashError); ok {
			return 0, true
		}
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if _, err := d.ProcessBatch(context.Background(), b); err != nil {
			if _, ok := err.(*crashError); ok {
				d.Abandon()
				return acked, true
			}
			t.Fatal(err)
		}
		acked++
	}
	d.Abandon() // even clean completions die without Close: written bytes persist
	return acked, false
}

// verifyRecovery recovers the directory and checks the invariants every
// scenario must satisfy: exactly-once replay accounting and oracle equality
// over the recovered prefix. minSeq, when >= 0, additionally asserts
// completeness (no acknowledged batch may be lost).
func verifyRecovery(t *testing.T, w gen.Workload, alg algo.Selective, dc DurableConfig, minSeq int, label string) {
	t.Helper()
	dc.Wal.hook = nil
	d, rs, err := RecoverSelective(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer d.Close()
	if rs.Replayed != int(rs.LastSeq-rs.SnapshotSeq) {
		t.Fatalf("%s: replayed %d frames over (%d,%d]: duplicate or missed batch",
			label, rs.Replayed, rs.SnapshotSeq, rs.LastSeq)
	}
	if int(rs.LastSeq) > len(w.Batches) {
		t.Fatalf("%s: recovered past the stream: seq %d of %d", label, rs.LastSeq, len(w.Batches))
	}
	if minSeq >= 0 && int(rs.LastSeq) < minSeq {
		t.Fatalf("%s: lost acknowledged batches: recovered to %d, acked %d", label, rs.LastSeq, minSeq)
	}
	if !valsEqual(d.Eng.Values(), oracleVals(t, w, alg, int(rs.LastSeq))) {
		t.Fatalf("%s: recovered state differs from oracle over %d batches", label, rs.LastSeq)
	}
}

// countSites runs the workload with a counting-only plan.
func countSites(t *testing.T, w gen.Workload, alg algo.Selective, policy FsyncPolicy) int {
	t.Helper()
	plan := &crashPlan{}
	dir := t.TempDir()
	if _, crashed := runUntilCrash(t, dir, w, alg, crashConfig(dir, policy, plan, nil)); crashed {
		t.Fatal("count pass must not crash")
	}
	return plan.count
}

// TestCrashPointFuzzer is the full matrix: every injection site × three
// fsync policies × clean and torn crashes, plus seeded bit-flip, torn-tail,
// and snapshot-corruption scenarios — well over 200 seeded scenarios.
func TestCrashPointFuzzer(t *testing.T) {
	w := testWorkload(97, 96, 8, 50)
	alg := algo.SSSP{Src: 0}
	scenarios := 0

	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		sites := countSites(t, w, alg, policy)
		if sites < 15 {
			t.Fatalf("policy %v: only %d sites — the workload no longer exercises the WAL", policy, sites)
		}
		for _, tear := range []int{-1, 5} { // clean death, and death mid-write
			for k := 1; k <= sites; k++ {
				dir := t.TempDir()
				plan := &crashPlan{at: k, tear: tear}
				dc := crashConfig(dir, policy, plan, nil)
				acked, crashed := runUntilCrash(t, dir, w, alg, dc)
				if !crashed {
					t.Fatalf("policy %v site %d/%d: crash did not fire", policy, k, sites)
				}
				// A crash in the creation path can die before any snapshot
				// exists; then there is nothing to recover, by design.
				if !HasSnapshot(dir) {
					if acked != 0 {
						t.Fatalf("policy %v site %d (%s): %d acked without a snapshot", policy, k, plan.fired, acked)
					}
					scenarios++
					continue
				}
				// Process-crash model: written bytes persist, so every
				// acknowledged batch must survive under every policy.
				label := policy.String() + "/" + plan.fired
				verifyRecovery(t, w, alg, dc, acked, label)
				scenarios++
			}
		}
	}

	// Corruption scenarios run against completed (uncrashed) directories:
	// flip a bit or tear a tail in a random log or snapshot file, then
	// recover. Consistency (oracle equality over whatever prefix survives)
	// must hold even when completeness cannot.
	for seed := uint64(0); seed < 48; seed++ {
		r := rng.New(seed * 7656287)
		dir := t.TempDir()
		dc := crashConfig(dir, FsyncOff, nil, nil)
		acked, _ := runUntilCrash(t, dir, w, alg, dc)

		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var segs, snaps []string
		for _, e := range entries {
			if _, ok := segFirst(e.Name()); ok {
				segs = append(segs, filepath.Join(dir, e.Name()))
			} else if _, ok := snapSeqOf(e.Name()); ok {
				snaps = append(snaps, filepath.Join(dir, e.Name()))
			}
		}
		if len(segs) == 0 || len(snaps) != snapRetain {
			t.Fatalf("seed %d: %d segments, %d snapshots", seed, len(segs), len(snaps))
		}
		switch seed % 4 {
		case 0: // bit-flip somewhere in a random log segment
			corruptFile(t, segs[r.Intn(len(segs))], r, false)
			verifyRecovery(t, w, alg, dc, -1, "log-flip")
		case 1: // tear a random log segment's tail
			corruptFile(t, segs[r.Intn(len(segs))], r, true)
			verifyRecovery(t, w, alg, dc, -1, "log-tear")
		case 2: // bit-flip the NEWEST snapshot: the older one + untrimmed
			// log tail must still recover every acknowledged batch.
			corruptFile(t, snaps[len(snaps)-1], r, false)
			verifyRecovery(t, w, alg, dc, acked, "snap-flip")
		case 3: // tear the newest snapshot mid-file: same fallback.
			corruptFile(t, snaps[len(snaps)-1], r, true)
			verifyRecovery(t, w, alg, dc, acked, "snap-tear")
		}
		scenarios++
	}

	if scenarios < 200 {
		t.Fatalf("only %d scenarios ran; the acceptance bar is 200", scenarios)
	}
	t.Logf("%d crash/corruption scenarios verified", scenarios)
}

// corruptFile flips one random byte (tear=false) or truncates at a random
// interior offset (tear=true).
func corruptFile(t *testing.T, path string, r *rng.Xoshiro256, tear bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 {
		t.Fatalf("%s too small to corrupt", path)
	}
	if tear {
		if err := os.Truncate(path, int64(1+r.Intn(len(data)-1))); err != nil {
			t.Fatal(err)
		}
		return
	}
	data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoverySmoke is the check.sh/CI slice of the fuzzer: one seeded
// crash point, one recovery, one oracle check.
func TestCrashRecoverySmoke(t *testing.T) {
	w := testWorkload(41, 64, 5, 40)
	alg := algo.SSSP{Src: 0}
	dir := t.TempDir()
	plan := &crashPlan{at: 11, tear: 5}
	dc := crashConfig(dir, FsyncInterval, plan, nil)
	acked, crashed := runUntilCrash(t, dir, w, alg, dc)
	if !crashed {
		t.Fatal("crash did not fire")
	}
	verifyRecovery(t, w, alg, dc, acked, "smoke/"+plan.fired)
}

// buildMultiSegLog writes n tiny batches across several small segments and
// closes the log cleanly, returning the per-segment paths in order.
func buildMultiSegLog(t *testing.T, dir string, n int) []string {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256, Policy: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	b := graph.Batch{{Edge: graph.Edge{Src: 1, Dst: 2, W: 3}}}
	for seq := uint64(1); seq <= uint64(n); seq++ {
		if err := l.Append(seq, b); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("only %d segments; the workload no longer rotates", l.SegmentCount())
	}
	var paths []string
	for _, s := range l.segs {
		paths = append(paths, s.path)
	}
	l.Close()
	return paths
}

// TestReplayStrictMidLogCorruption is the satellite-2 regression: Replay
// must not pass mid-log corruption off as a short log. Damage in a non-tail
// segment — behind which later segments still hold valid acknowledged
// frames — is an ErrCorrupt error; the same damage in the tail is the
// expected crash shape and stops cleanly. The corruption lands AFTER Open
// (whose repair would otherwise truncate it): bit rot between the scan and
// the replay is exactly the window the strict check exists for.
func TestReplayStrictMidLogCorruption(t *testing.T) {
	const n = 30
	flip := func(t *testing.T, path string, off int64) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("non-tail damage is an error", func(t *testing.T) {
		dir := t.TempDir()
		segs := buildMultiSegLog(t, dir, n)
		l, err := Open(Options{Dir: dir, SegmentBytes: 256, Policy: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		flip(t, segs[0], 10) // payload of the first segment's first frame
		err = l.Replay(0, func(uint64, graph.Batch) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mid-log corruption replayed as %v, want ErrCorrupt", err)
		}
	})

	t.Run("tail damage stops cleanly", func(t *testing.T) {
		dir := t.TempDir()
		segs := buildMultiSegLog(t, dir, n)
		l, err := Open(Options{Dir: dir, SegmentBytes: 256, Policy: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		flip(t, segs[len(segs)-1], 10)
		var got int
		if err := l.Replay(0, func(uint64, graph.Batch) error { got++; return nil }); err != nil {
			t.Fatalf("damaged tail must stop cleanly, got %v", err)
		}
		if got == 0 || got >= n {
			t.Fatalf("replayed %d of %d frames; want the pre-tail prefix only", got, n)
		}
	})

	t.Run("torn tail stops cleanly", func(t *testing.T) {
		dir := t.TempDir()
		segs := buildMultiSegLog(t, dir, n)
		l, err := Open(Options{Dir: dir, SegmentBytes: 256, Policy: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		st, err := os.Stat(segs[len(segs)-1])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[len(segs)-1], st.Size()-3); err != nil {
			t.Fatal(err)
		}
		var got int
		if err := l.Replay(0, func(uint64, graph.Batch) error { got++; return nil }); err != nil {
			t.Fatalf("torn tail must stop cleanly, got %v", err)
		}
		if got != n-1 {
			t.Fatalf("replayed %d frames, want %d (all but the torn final frame)", got, n-1)
		}
	})

	t.Run("torn non-tail is an error", func(t *testing.T) {
		dir := t.TempDir()
		segs := buildMultiSegLog(t, dir, n)
		l, err := Open(Options{Dir: dir, SegmentBytes: 256, Policy: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		st, err := os.Stat(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[0], st.Size()-3); err != nil {
			t.Fatal(err)
		}
		err = l.Replay(0, func(uint64, graph.Batch) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn non-tail segment replayed as %v, want ErrCorrupt", err)
		}
	})
}
