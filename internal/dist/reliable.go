package dist

// Reliable delivery for the cluster's data plane. Each directed node pair is
// a link carrying sequence-numbered packets; the receiver holds out-of-order
// arrivals in a reorder buffer, delivers to the application strictly in send
// order, dedups by sequence number, and returns cumulative acks. Senders
// retransmit unacked packets on an exponential-backoff timer. The layer
// therefore masks every non-crash fault the injector produces.
//
// In-order (FIFO) delivery per link is load-bearing, not a convenience: a
// shadow refresh overtaken by an older refresh would roll a shadow copy
// back to a staler value, and the batch-end invariant "every shadow equals
// the owner's value" — which ownership migration at repartition relies on —
// only holds if refreshes apply in generation order.

// packet is one network-level message: either sequenced application data or
// an unsequenced cumulative ack. deliver is the round it arrives.
type packet struct {
	from, to int
	seq      uint64
	isAck    bool
	ackSeq   uint64 // receiver's nextExpect for the reverse data direction
	msg      clusterMsg
	deliver  int
}

// pendingPkt is an unacked send awaiting retransmission.
type pendingPkt struct {
	seq       uint64
	msg       clusterMsg
	sentRound int
	retries   int
}

// sendLink is the sender half of one directed link.
type sendLink struct {
	nextSeq uint64
	pending []pendingPkt
}

// recvLink is the receiver half: the next in-order sequence number plus a
// reorder buffer for everything that arrived early.
type recvLink struct {
	nextExpect uint64
	buffer     map[uint64]clusterMsg
}

func newRecvLink() *recvLink { return &recvLink{buffer: make(map[uint64]clusterMsg)} }

// resetLink re-initializes both halves of this node's link with peer.
func (n *clusterNode) resetLink(peer int) {
	n.send[peer] = &sendLink{}
	n.recv[peer] = newRecvLink()
}

// network is the in-flight packet set, kept in push order so that delivery
// within a round is deterministic.
type network struct {
	q []packet
}

// pushPacket runs one packet through the fault injector and enqueues the
// surviving copies.
func (c *Cluster) pushPacket(p packet) {
	for _, d := range c.inj.deliveries(c.round) {
		p.deliver = d
		if c.inj.reorder() {
			// Swap delivery times with the most recent in-flight packet on
			// the same link, the classic adjacent-transposition reorder.
			for i := len(c.net.q) - 1; i >= 0; i-- {
				q := &c.net.q[i]
				if q.from == p.from && q.to == p.to {
					p.deliver, q.deliver = q.deliver, p.deliver
					break
				}
			}
		}
		c.net.q = append(c.net.q, p)
	}
}

// sendMsg sends one application message. Local sends bypass the network
// (and the injector: a node does not drop messages to itself). Cross-node
// sends are sequenced, tracked for retransmission, and — for candidates —
// logged for upstream-backup replay during crash recovery.
func (c *Cluster) sendMsg(from, to int, m clusterMsg, logIt bool) {
	if from == to {
		c.nodes[to].inbox = append(c.nodes[to].inbox, m)
		return
	}
	if !c.live[to] && c.detected[to] {
		return // Manager has announced the death; nobody addresses it
	}
	n := c.nodes[from]
	link := n.send[to]
	seq := link.nextSeq
	link.nextSeq++
	link.pending = append(link.pending, pendingPkt{seq: seq, msg: m, sentRound: c.round})
	if logIt {
		n.replayLog = append(n.replayLog, m)
	}
	c.LastCrossMsgs++
	c.pushPacket(packet{from: from, to: to, seq: seq, msg: m})
}

// sendAck returns a cumulative ack for the from→to data direction. Acks are
// unsequenced and fault-exposed; a lost ack just means a retransmission that
// the receiver dedups and re-acks.
func (c *Cluster) sendAck(from, to int, ackSeq uint64) {
	c.pushPacket(packet{from: from, to: to, isAck: true, ackSeq: ackSeq})
}

// deliverRound moves every packet due this round to its destination.
func (c *Cluster) deliverRound() {
	if len(c.net.q) == 0 {
		return
	}
	q := c.net.q
	rest := q[:0]
	var due []packet
	for _, p := range q {
		if p.deliver <= c.round {
			due = append(due, p)
		} else {
			rest = append(rest, p)
		}
	}
	// Acks emitted while delivering land after rest with deliver > round,
	// so they cannot be processed within this same round.
	c.net.q = rest
	for _, p := range due {
		c.deliverPacket(p)
	}
}

// deliverPacket applies one arrival: ack bookkeeping, or reorder-buffer
// insertion + in-order flush + ack.
func (c *Cluster) deliverPacket(p packet) {
	if !c.live[p.to] {
		return // delivery to a crashed worker is void
	}
	if p.isAck {
		link := c.nodes[p.to].send[p.from]
		keep := link.pending[:0]
		for _, pp := range link.pending {
			if pp.seq >= p.ackSeq {
				keep = append(keep, pp)
			}
		}
		link.pending = keep
		return
	}
	rl := c.nodes[p.to].recv[p.from]
	if p.seq < rl.nextExpect {
		c.Stats.DupsDiscarded++ // stale: already delivered, ack must have been lost
	} else if _, dup := rl.buffer[p.seq]; dup {
		c.Stats.DupsDiscarded++
	} else {
		rl.buffer[p.seq] = p.msg
		for {
			m, ok := rl.buffer[rl.nextExpect]
			if !ok {
				break
			}
			delete(rl.buffer, rl.nextExpect)
			rl.nextExpect++
			c.nodes[p.to].inbox = append(c.nodes[p.to].inbox, m)
		}
	}
	c.sendAck(p.to, p.from, rl.nextExpect)
}

// retransmitRound resends every pending packet whose backoff timer expired.
// Retransmissions run through the injector again — the network is just as
// hostile to them. Retries are capped: a packet that has already been
// retransmitted MaxRetries times is not resent again; instead the sender
// surfaces ErrPeerDown (Stats.PeerDownEvents) and the Manager fail-stop
// converts the unreachable peer — it is declared crashed, the sender's link
// to it is reset (dropping the undeliverable pending queue; the upstream
// backup replayLog, written at first send, still covers the candidates),
// and the ordinary detection/recovery machinery reconstructs its state.
// Healthy schedules never get near the cap, so the graceful-degradation
// path replaces only the pathological retransmit-forever behavior.
func (c *Cluster) retransmitRound() {
	base := c.fc.retransRounds()
	maxR := c.fc.maxRetries()
	for _, n := range c.nodes {
		if !c.live[n.id] {
			continue
		}
		for peer, link := range n.send {
			if peer == n.id || (!c.live[peer] && c.detected[peer]) {
				continue
			}
			exhausted := false
			for i := range link.pending {
				pp := &link.pending[i]
				if pp.retries >= maxR {
					exhausted = true
					break
				}
				shift := pp.retries
				if shift > 6 {
					shift = 6
				}
				if c.round-pp.sentRound >= base<<uint(shift) {
					pp.sentRound = c.round
					pp.retries++
					c.Stats.Retransmits++
					c.pushPacket(packet{from: n.id, to: peer, seq: pp.seq, msg: pp.msg})
				}
			}
			if exhausted {
				c.Stats.PeerDownEvents++
				if c.live[peer] {
					c.crashNode(peer)
				}
				n.resetLink(peer)
			}
		}
	}
}

// linksIdle reports whether every live link has no unacked sends and no
// buffered out-of-order arrivals.
func (c *Cluster) linksIdle() bool {
	for _, n := range c.nodes {
		if !c.live[n.id] {
			continue
		}
		for peer, link := range n.send {
			if peer == n.id || !c.live[peer] {
				continue // links to the dead are purged at detection
			}
			if len(link.pending) > 0 {
				return false
			}
		}
		for peer, rl := range n.recv {
			if peer == n.id {
				continue
			}
			if len(rl.buffer) > 0 {
				return false
			}
		}
	}
	return true
}

// purgeNode drops every in-flight packet to or from a node the Manager has
// just declared dead.
func (c *Cluster) purgeNode(d int) {
	keep := c.net.q[:0]
	for _, p := range c.net.q {
		if p.from == d || p.to == d {
			continue
		}
		keep = append(keep, p)
	}
	c.net.q = keep
}
