package dist

// Seeded property tests for the sim reliable layer (reliable.go): under a
// hostile injector (drop, dup, delay, reorder) every directed link must
// deliver exactly once in FIFO order, cumulative acks must be monotone, and
// a peer past the retry cap must be fail-stop converted with the link reset.
// The schedule is fully deterministic per seed.

import (
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

func propCluster(fc FaultConfig) *Cluster {
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, W: 1}})
	return NewClusterWithFaults(g, algo.SSSP{Src: 0}, 2, 32, fc)
}

func drainInbox(c *Cluster, id int) []clusterMsg {
	n := c.nodes[id]
	msgs := n.inbox
	n.inbox = nil
	return msgs
}

func TestReliableLinkFIFOUnderFaults(t *testing.T) {
	const K = 200
	for seed := uint64(0); seed < 20; seed++ {
		fc := FaultConfig{
			Seed: seed, Drop: 0.25, Dup: 0.25, Delay: 0.4, MaxDelay: 5,
			Reorder: 0.35, RetransRounds: 2, MaxRetries: 16,
		}
		c := propCluster(fc)
		pace := rand.New(rand.NewSource(int64(seed)))
		sent01, sent10 := 0, 0
		var got01, got10 []float64
		var lastAck uint64
		done := false
		for c.round = 0; c.round < 5000; c.round++ {
			for i := pace.Intn(4); i > 0 && sent01 < K; i-- {
				c.sendMsg(0, 1, clusterMsg{v: 1, val: float64(sent01)}, false)
				sent01++
			}
			for i := pace.Intn(4); i > 0 && sent10 < K; i-- {
				c.sendMsg(1, 0, clusterMsg{v: 0, val: float64(sent10)}, false)
				sent10++
			}
			c.deliverRound()
			c.retransmitRound()
			for _, m := range drainInbox(c, 1) {
				got01 = append(got01, m.val)
			}
			for _, m := range drainInbox(c, 0) {
				got10 = append(got10, m.val)
			}
			// Cumulative acks never regress.
			if ne := c.nodes[1].recv[0].nextExpect; ne < lastAck {
				t.Fatalf("seed %d: ack regressed %d -> %d", seed, lastAck, ne)
			} else {
				lastAck = ne
			}
			if sent01 == K && sent10 == K && len(got01) == K && len(got10) == K &&
				len(c.net.q) == 0 && c.linksIdle() {
				done = true
				break
			}
		}
		if !done {
			t.Fatalf("seed %d: links never drained (got %d/%d and %d/%d)",
				seed, len(got01), K, len(got10), K)
		}
		if c.Stats.PeerDownEvents != 0 {
			t.Fatalf("seed %d: healthy schedule hit the retry cap", seed)
		}
		if lastAck != K {
			t.Fatalf("seed %d: final cumulative ack %d, want %d", seed, lastAck, K)
		}
		for dir, got := range [][]float64{got01, got10} {
			for i, v := range got {
				if v != float64(i) {
					t.Fatalf("seed %d dir %d: position %d delivered %v (FIFO/exactly-once violated)",
						seed, dir, i, v)
				}
			}
		}
	}
}

func TestReliableLinkRetryExhaustion(t *testing.T) {
	fc := FaultConfig{Seed: 7, Drop: 0.999, RetransRounds: 1, MaxRetries: 3}
	c := propCluster(fc)
	c.sendMsg(0, 1, clusterMsg{v: 1, val: 42}, false)
	for c.round = 0; c.round < 2000 && c.Stats.PeerDownEvents == 0; c.round++ {
		c.deliverRound()
		c.retransmitRound()
	}
	if c.Stats.PeerDownEvents == 0 {
		t.Fatal("retry cap never surfaced ErrPeerDown")
	}
	if c.live[1] {
		t.Fatal("unreachable peer was not fail-stop converted")
	}
	if got := len(c.nodes[0].send[1].pending); got != 0 {
		t.Fatalf("sender link not reset: %d packets still pending", got)
	}
}

// TestReliableLinkRetryCapUnreachedWhenHealthy pins the design claim that
// the cap only bites pathological schedules: moderate loss plus
// retransmission always finishes without a peer-down event.
func TestReliableLinkRetryCapUnreachedWhenHealthy(t *testing.T) {
	for seed := uint64(100); seed < 110; seed++ {
		fc := FaultConfig{Seed: seed, Drop: 0.5, RetransRounds: 1, MaxRetries: 16}
		c := propCluster(fc)
		for i := 0; i < 50; i++ {
			c.sendMsg(0, 1, clusterMsg{v: 1, val: float64(i)}, false)
		}
		for c.round = 0; c.round < 5000; c.round++ {
			c.deliverRound()
			c.retransmitRound()
			if len(c.net.q) == 0 && c.linksIdle() {
				break
			}
		}
		if c.Stats.PeerDownEvents != 0 {
			t.Fatalf("seed %d: 50%% loss should never exhaust 16 backoff retries", seed)
		}
		if got := len(drainInbox(c, 1)); got != 50 {
			t.Fatalf("seed %d: delivered %d/50", seed, got)
		}
	}
}
