package dist

import (
	"errors"
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// chaosSchedule derives one reproducible fault schedule from a seed, mixing
// drops, duplicates, delays, reorders, scheduled and random crashes, rejoin
// policy, and checkpoint cadence.
func chaosSchedule(seed uint64) FaultConfig {
	r := rng.New(seed)
	fc := FaultConfig{
		Seed:            seed,
		Drop:            0.30 * r.Float64(),
		Dup:             0.20 * r.Float64(),
		Delay:           0.40 * r.Float64(),
		Reorder:         0.30 * r.Float64(),
		MaxDelay:        1 + r.Intn(4),
		DetectRounds:    1 + r.Intn(4),
		RetransRounds:   2 + r.Intn(4),
		CheckpointEvery: 1 + r.Intn(3),
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		fc.CrashSchedule = append(fc.CrashSchedule, CrashPoint{
			Batch: r.Intn(3), Round: 1 + r.Intn(6), Node: r.Intn(5),
		})
	}
	if r.Bool(0.4) {
		fc.CrashRate = 0.02 * r.Float64()
		fc.MaxCrashes = 1 + r.Intn(2)
	}
	if r.Bool(0.2) {
		fc.NoRejoin = true
	}
	return fc
}

// checkClusterChaos runs a workload through a faulty cluster and asserts
// bit-exact agreement with the single-machine fixpoint after every batch.
// It returns the cluster so callers can inspect fault stats.
func checkClusterChaos(t *testing.T, alg algo.Selective, nodes int, w gen.Workload, fc FaultConfig) *Cluster {
	t.Helper()
	initial := w.Initial
	if alg.Symmetric() {
		var both []graph.Edge
		for _, e := range initial {
			both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		initial = both
	}
	g := graph.FromEdges(w.NumV, initial)
	c := NewClusterWithFaults(g, alg, nodes, 32, fc)
	ref := g.Clone()
	for bi, b := range w.Batches {
		if err := c.ProcessBatchE(b); err != nil {
			t.Fatalf("%s nodes=%d batch %d: %v", alg.Name(), nodes, bi, err)
		}
		rb := b
		if alg.Symmetric() {
			rb = symmetrize(b)
		}
		ref.ApplyBatch(rb)
		want, _ := algo.SolveSelective(ref, alg)
		got := c.Values()
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("%s nodes=%d batch %d seed=%d: vertex %d = %v, want %v",
					alg.Name(), nodes, bi, fc.Seed, v, got[v], want[v])
			}
		}
	}
	return c
}

// TestChaosEquivalence is the tentpole acceptance test: 24 distinct seeded
// fault schedules, across algorithms and cluster sizes, must each converge
// bit-exact to the single-machine engine. The aggregate stats prove the
// schedules really exercised every fault type.
func TestChaosEquivalence(t *testing.T) {
	algs := []algo.Selective{algo.SSSP{Src: 0}, algo.BFS{Src: 0}, algo.CC{}}
	var agg FaultStats
	for seed := uint64(1); seed <= 24; seed++ {
		fc := chaosSchedule(seed)
		nodes := 2 + int(seed%4) // 2..5
		alg := algs[int(seed)%len(algs)]
		c := checkClusterChaos(t, alg, nodes, clusterWorkload(100+seed, 3), fc)
		agg.Dropped += c.Stats.Dropped
		agg.Duplicated += c.Stats.Duplicated
		agg.Delayed += c.Stats.Delayed
		agg.Reordered += c.Stats.Reordered
		agg.Retransmits += c.Stats.Retransmits
		agg.DupsDiscarded += c.Stats.DupsDiscarded
		agg.Crashes += c.Stats.Crashes
		agg.Rejoins += c.Stats.Rejoins
		agg.RecoveredVerts += c.Stats.RecoveredVerts
		agg.ReplayedMsgs += c.Stats.ReplayedMsgs
	}
	if agg.Dropped == 0 || agg.Duplicated == 0 || agg.Delayed == 0 || agg.Reordered == 0 {
		t.Fatalf("network faults not exercised: %+v", agg)
	}
	if agg.Retransmits == 0 || agg.DupsDiscarded == 0 {
		t.Fatalf("reliability layer not exercised: %+v", agg)
	}
	if agg.Crashes == 0 || agg.RecoveredVerts == 0 {
		t.Fatalf("crash recovery not exercised: %+v", agg)
	}
}

// TestChaosScheduledCrashes pins precise failure scenarios: early and
// mid-batch crashes, cascading double crashes within one batch, crashes
// with a stale (multi-batch) checkpoint, and no-rejoin operation.
func TestChaosScheduledCrashes(t *testing.T) {
	cases := []struct {
		name string
		fc   FaultConfig
	}{
		{"early-crash", FaultConfig{Seed: 1, CrashSchedule: []CrashPoint{{Batch: 0, Round: 1, Node: 1}}}},
		{"mid-batch-crash", FaultConfig{Seed: 2, CrashSchedule: []CrashPoint{{Batch: 1, Round: 4, Node: 2}}}},
		{"double-crash", FaultConfig{Seed: 3, CrashSchedule: []CrashPoint{
			{Batch: 0, Round: 2, Node: 0}, {Batch: 0, Round: 6, Node: 3},
		}}},
		{"stale-checkpoint", FaultConfig{Seed: 4, CheckpointEvery: 3,
			CrashSchedule: []CrashPoint{{Batch: 2, Round: 3, Node: 1}}}},
		{"no-rejoin", FaultConfig{Seed: 5, NoRejoin: true,
			CrashSchedule: []CrashPoint{{Batch: 0, Round: 2, Node: 2}}}},
		{"crash-under-loss", FaultConfig{Seed: 6, Drop: 0.15, Dup: 0.1, Delay: 0.2, Reorder: 0.1,
			CheckpointEvery: 2, CrashSchedule: []CrashPoint{{Batch: 1, Round: 2, Node: 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := checkClusterChaos(t, algo.SSSP{Src: 0}, 4, clusterWorkload(200, 4), tc.fc)
			if c.Stats.Crashes == 0 {
				t.Fatal("schedule produced no crash")
			}
			if c.Stats.RecoveredVerts == 0 {
				t.Fatal("crash recovered no vertices")
			}
			if !tc.fc.NoRejoin && c.Stats.Rejoins == 0 {
				t.Fatal("crashed worker never rejoined")
			}
			if tc.fc.NoRejoin && c.Stats.Rejoins != 0 {
				t.Fatal("NoRejoin cluster re-admitted a worker")
			}
		})
	}
}

// TestChaosZeroConfigIsFaultFree guards the NewCluster compatibility
// contract: a zero FaultConfig must not perturb anything.
func TestChaosZeroConfigIsFaultFree(t *testing.T) {
	c := checkClusterChaos(t, algo.SSSP{Src: 0}, 4, clusterWorkload(300, 3), FaultConfig{})
	if c.Stats != (FaultStats{}) {
		t.Fatalf("zero config produced fault activity: %+v", c.Stats)
	}
}

// TestChaosDeterministic replays one schedule twice and demands identical
// trajectories, stats included.
func TestChaosDeterministic(t *testing.T) {
	fc := chaosSchedule(7)
	a := checkClusterChaos(t, algo.SSSP{Src: 0}, 3, clusterWorkload(400, 3), fc)
	b := checkClusterChaos(t, algo.SSSP{Src: 0}, 3, clusterWorkload(400, 3), fc)
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.LastRounds != b.LastRounds || a.LastCrossMsgs != b.LastCrossMsgs {
		t.Fatalf("same seed, different trajectory: rounds %d/%d msgs %d/%d",
			a.LastRounds, b.LastRounds, a.LastCrossMsgs, b.LastCrossMsgs)
	}
}

// TestChaosDeletionHeavyUnderCrash stresses the interaction between trim
// recovery and checkpoint restore: deletions keep trimming vertices whose
// checkpoint values are unachievable, so restores must honor trimSinceCkpt.
func TestChaosDeletionHeavyUnderCrash(t *testing.T) {
	cfg := gen.TestDataset(90)
	cfg.NumV, cfg.NumE = 200, 1500
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.7, DeleteRatio: 0.8, BatchSize: 100, NumBatches: 4, Seed: 91,
	})
	fc := FaultConfig{Seed: 8, Drop: 0.1, Delay: 0.2, CheckpointEvery: 2,
		CrashSchedule: []CrashPoint{{Batch: 1, Round: 2, Node: 1}, {Batch: 3, Round: 1, Node: 2}}}
	c := checkClusterChaos(t, algo.SSSP{Src: 0}, 4, w, fc)
	if c.Stats.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", c.Stats.Crashes)
	}
}

// TestClusterRejectsMalformedBatch checks graceful degradation: a malformed
// batch returns a typed error before any state changes, and the cluster
// keeps working afterwards.
func TestClusterRejectsMalformedBatch(t *testing.T) {
	w := clusterWorkload(500, 2)
	g := graph.FromEdges(w.NumV, w.Initial)
	c := NewCluster(g, algo.SSSP{Src: 0}, 3, 32)
	bad := graph.Batch{{Edge: graph.Edge{Src: 0, Dst: uint32(w.NumV) + 7, W: 1}}}
	err := c.ProcessBatchE(bad)
	var be *graph.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *graph.BatchError, got %v", err)
	}
	if be.Index != 0 {
		t.Fatalf("BatchError.Index = %d", be.Index)
	}
	// Still fully functional on the real stream.
	ref := g.Clone()
	for _, b := range w.Batches {
		if err := c.ProcessBatchE(b); err != nil {
			t.Fatal(err)
		}
		ref.ApplyBatch(b)
	}
	want, _ := algo.SolveSelective(ref, algo.SSSP{Src: 0})
	got := c.Values()
	for v := range want {
		if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
			t.Fatalf("post-error divergence at vertex %d", v)
		}
	}
}

func TestParseFaults(t *testing.T) {
	fc, err := ParseFaults("seed=7,drop=0.05,dup=0.02,delay=0.2,reorder=0.1,crash=0.01,maxcrashes=2,detect=5,retrans=3,ckpt=4,maxdelay=2,norejoin,crashat=0:3:1+2:1:0")
	if err != nil {
		t.Fatal(err)
	}
	if fc.Seed != 7 || fc.Drop != 0.05 || fc.Dup != 0.02 || fc.Delay != 0.2 ||
		fc.Reorder != 0.1 || fc.CrashRate != 0.01 || fc.MaxCrashes != 2 ||
		fc.DetectRounds != 5 || fc.RetransRounds != 3 || fc.CheckpointEvery != 4 ||
		fc.MaxDelay != 2 || !fc.NoRejoin {
		t.Fatalf("parsed %+v", fc)
	}
	want := []CrashPoint{{0, 3, 1}, {2, 1, 0}}
	if len(fc.CrashSchedule) != 2 || fc.CrashSchedule[0] != want[0] || fc.CrashSchedule[1] != want[1] {
		t.Fatalf("schedule %+v", fc.CrashSchedule)
	}
	if empty, err := ParseFaults("  "); err != nil || empty.Enabled() {
		t.Fatalf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{"drop=1.5", "bogus=1", "crashat=1:2", "seed=x", "detect=-1", "crashat=0:0:0"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) accepted", bad)
		}
	}
}

// TestSimulateFaultMonotonic asserts the cost-model acceptance criterion:
// on a fixed trace and placement, makespan is monotonically non-decreasing
// in each injected fault rate.
func TestSimulateFaultMonotonic(t *testing.T) {
	trace := syntheticTrace()
	cm := DefaultCostModel()
	pl := Place(trace, 4, LocalityLPT)
	base := Simulate(trace, pl, cm, false).MakespanNs

	prev := base
	for _, drop := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5} {
		cm.Faults = FaultProfile{DropRate: drop, AckBytes: 8}
		got := Simulate(trace, pl, cm, false).MakespanNs
		if got < prev {
			t.Fatalf("makespan fell from %v to %v at drop=%v", prev, got, drop)
		}
		prev = got
	}
	prev = base
	for crashes := 0; crashes <= 4; crashes++ {
		cm.Faults = FaultProfile{Crashes: crashes, DetectionNs: 1e6, ReplayFraction: 0.25}
		got := Simulate(trace, pl, cm, false).MakespanNs
		if got < prev {
			t.Fatalf("makespan fell from %v to %v at crashes=%d", prev, got, crashes)
		}
		prev = got
	}
	cm.Faults = DefaultFaultProfile(1)
	r := Simulate(trace, pl, cm, false)
	if r.FaultNs <= 0 || r.RetransMsgs <= 0 {
		t.Fatalf("fault profile charged nothing: %+v", r)
	}
	if r.MakespanNs <= base {
		t.Fatalf("faulty makespan %v not above fault-free %v", r.MakespanNs, base)
	}
	cm.Faults = FaultProfile{}
	if clean := Simulate(trace, pl, cm, false).MakespanNs; clean != base {
		t.Fatalf("zero profile changed makespan: %v != %v", clean, base)
	}
}
