package dist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// checkpoint is the Manager's periodic snapshot of the cluster's
// authoritative state: every vertex value plus its key edge, taken at a
// batch boundary where global quiescence guarantees consistency (the
// Aspen-style cheap consistent snapshot — no coordination beyond the batch
// barrier the protocol already has).
//
// A checkpoint alone is not enough to recover a crashed worker soundly:
//
//   - A checkpointed value may have lost its supporting path to a deletion
//     since the commit. Two signals catch that: trimSinceCkpt records every
//     vertex the Manager trimmed since the commit, and delLog lets recovery
//     validate the checkpoint-time dependence chain edge by edge
//     (recovery.go's chainBroken). Both are needed — trims walk the
//     *current* forest, so a vertex that migrated to a better live chain
//     escapes the trim even when the chain its checkpoint value rests on
//     breaks. Either signal restores the vertex with the invalid bit set so
//     the new owner refines it from scratch (the KickStarter safety
//     argument: refinement never reads the vertex's own value).
//   - A checkpointed value may have been improved since the commit by
//     work that only the dead worker saw. The restore refinement pulls the
//     improvement back out of the new owner's local shadows, and the
//     upstream backups — every survivor's replayLog of cross-node
//     candidates and the Manager's addLog of applied additions — re-seed
//     improvement chains that were still in flight (recovery.go).
//
// A value whose checkpoint chain is intact is still achievable: every edge
// on the chain survived, so the chain itself witnesses it, and the current
// fixpoint can only sit at or below it. Recovery therefore restores such
// vertices by a refinement *floored* at the checkpoint value.
type checkpoint struct {
	vals   []float64
	parent []int32
}

// commitCheckpoint snapshots the authoritative state and truncates the
// recovery logs — everything before the commit is now covered by the
// snapshot itself.
func (c *Cluster) commitCheckpoint() {
	c.ckpt.vals = append(c.ckpt.vals[:0], c.Values()...)
	c.ckpt.parent = append(c.ckpt.parent[:0], c.parent...)
	for i := range c.trimSinceCkpt {
		c.trimSinceCkpt[i] = false
	}
	c.addLog = c.addLog[:0]
	c.delLog = c.delLog[:0]
	for _, n := range c.nodes {
		n.replayLog = n.replayLog[:0]
	}
}

// SaveCheckpoint persists the last committed checkpoint to path as a single
// CRC32C frame in the shared wal codec, written to a temp file and renamed
// into place so a crash mid-write never leaves a half checkpoint under the
// visible name.
func (c *Cluster) SaveCheckpoint(path string) error {
	if len(c.ckpt.vals) == 0 {
		return fmt.Errorf("dist: no committed checkpoint to save")
	}
	buf := wal.AppendFrame(nil, wal.KindDistCheckpoint,
		wal.EncodeState(nil, c.ckpt.vals, c.ckpt.parent))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads a SaveCheckpoint file, rejecting truncated or
// bit-flipped payloads: the CRC framing catches corruption anywhere in the
// record, the decoder validates every declared length and parent range
// against numV, and trailing bytes after the frame are refused. On any
// violation it returns an error instead of panicking or handing back
// garbage — the regression checkpoint_test.go pins down.
func LoadCheckpoint(path string, numV int) (vals []float64, parent []int32, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: checkpoint: %w", err)
	}
	defer f.Close()
	kind, payload, err := wal.ReadFrame(f)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: checkpoint %s: %w", filepath.Base(path), err)
	}
	if kind != wal.KindDistCheckpoint {
		return nil, nil, fmt.Errorf("%w: checkpoint frame kind %d", wal.ErrCorrupt, kind)
	}
	if _, _, err := wal.ReadFrame(f); err != io.EOF {
		return nil, nil, fmt.Errorf("%w: trailing data after checkpoint frame", wal.ErrCorrupt)
	}
	vals, parent, err = wal.DecodeState(payload, numV, numV)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: checkpoint %s: %w", filepath.Base(path), err)
	}
	if parent == nil {
		return nil, nil, fmt.Errorf("%w: checkpoint is missing the parent section", wal.ErrCorrupt)
	}
	return vals, parent, nil
}

// RestoreCheckpoint loads path (validated) and installs it as the cluster's
// committed checkpoint, as if commitCheckpoint had just run.
func (c *Cluster) RestoreCheckpoint(path string) error {
	vals, parent, err := LoadCheckpoint(path, len(c.parent))
	if err != nil {
		return err
	}
	c.ckpt.vals = vals
	c.ckpt.parent = parent
	return nil
}
