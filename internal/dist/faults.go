package dist

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// FaultConfig describes a deterministic fault schedule for the functional
// cluster. Every decision (drop this packet, crash this node) is drawn from
// one seeded stream, so a given (workload, config) pair replays the exact
// same chaos run every time.
//
// Fault model:
//
//   - The data plane (candidates, shadow refreshes, acks) is an unreliable
//     network: packets may be dropped, duplicated, delayed a bounded number
//     of rounds, or reordered within a link. The reliability layer in
//     reliable.go masks all of this.
//   - Workers are crash-stop: a crashed worker loses all volatile state
//     (inbox, worklist, link state) at a round boundary and sends nothing
//     afterwards. Packets already in flight FROM it may still arrive.
//   - The control plane (Manager trim broadcasts, heartbeats, the
//     flow-worker table, failure announcements) is reliable and synchronous,
//     the standard assumption for a coordinator that is itself replicated.
//
// The zero value disables every fault; NewCluster uses it, so the fault-free
// protocol is byte-for-byte the old one.
type FaultConfig struct {
	// Seed drives the single decision stream. Seed 0 is a valid seed.
	Seed uint64

	// Drop, Dup, Delay, Reorder are per-packet probabilities in [0, 1).
	// Delay adds 1..MaxDelay extra rounds of latency; Reorder swaps the
	// delivery time of the packet with an earlier in-flight packet on the
	// same link.
	Drop    float64
	Dup     float64
	Delay   float64
	Reorder float64
	// MaxDelay bounds the extra rounds a delayed packet waits (default 3).
	MaxDelay int

	// CrashRate is a per-round probability that one live worker crashes
	// (never the last one). MaxCrashes caps how many random crashes fire in
	// total across the run; 0 means unlimited.
	CrashRate  float64
	MaxCrashes int
	// CrashSchedule lists explicit crashes, for reproducing a precise
	// failure scenario independent of the random stream.
	CrashSchedule []CrashPoint

	// DetectRounds is how many rounds of missed heartbeats the Manager
	// waits before declaring a worker dead and starting recovery
	// (default 3).
	DetectRounds int
	// RetransRounds is the base retransmission timeout in rounds; it backs
	// off exponentially per retry (default 4).
	RetransRounds int
	// MaxRetries caps how many backoff rounds a pending packet is
	// retransmitted before the sender gives up, surfaces ErrPeerDown, and
	// the Manager fail-stop-converts the unreachable peer (default 16 —
	// with exponential backoff that is far beyond any survivable loss
	// schedule, so healthy runs never hit it).
	MaxRetries int
	// CheckpointEvery commits a Manager checkpoint of all authoritative
	// values every N batches (default 1). Larger values cheapen steady
	// state and lengthen replay on recovery.
	CheckpointEvery int
	// NoRejoin keeps crashed workers out for the rest of the run instead of
	// re-admitting them (with a full state transfer) at the next batch
	// boundary.
	NoRejoin bool
	// MaxRounds aborts a batch that fails to quiesce (default 100000); a
	// healthy schedule never gets near it, so hitting it indicates a
	// protocol bug rather than bad luck.
	MaxRounds int
}

// CrashPoint schedules worker Node to crash at the start of delivery round
// Round (1-based) of batch Batch (0-based).
type CrashPoint struct {
	Batch int
	Round int
	Node  int
}

// Enabled reports whether the config injects any fault at all.
func (fc FaultConfig) Enabled() bool {
	return fc.Drop > 0 || fc.Dup > 0 || fc.Delay > 0 || fc.Reorder > 0 ||
		fc.CrashRate > 0 || len(fc.CrashSchedule) > 0
}

func (fc FaultConfig) maxDelay() int {
	if fc.MaxDelay <= 0 {
		return 3
	}
	return fc.MaxDelay
}

func (fc FaultConfig) detectRounds() int {
	if fc.DetectRounds <= 0 {
		return 3
	}
	return fc.DetectRounds
}

func (fc FaultConfig) retransRounds() int {
	if fc.RetransRounds <= 0 {
		return 4
	}
	return fc.RetransRounds
}

func (fc FaultConfig) maxRetries() int {
	if fc.MaxRetries <= 0 {
		return 16
	}
	return fc.MaxRetries
}

func (fc FaultConfig) checkpointEvery() int {
	if fc.CheckpointEvery <= 0 {
		return 1
	}
	return fc.CheckpointEvery
}

func (fc FaultConfig) maxRounds() int {
	if fc.MaxRounds <= 0 {
		return 100000
	}
	return fc.MaxRounds
}

// ParseFaults parses the --faults flag syntax: a comma-separated list of
// key=value pairs, e.g.
//
//	seed=7,drop=0.05,dup=0.02,delay=0.2,reorder=0.1,crash=0.01,maxcrashes=2
//
// Scheduled crashes use batch:round:node triples joined by '+':
//
//	seed=7,crashat=0:3:1+2:1:0
//
// Remaining keys: maxdelay, detect, retrans, maxretries, ckpt, maxrounds
// (integers) and norejoin (bare flag or =true). An empty spec returns the
// zero config.
func ParseFaults(spec string) (FaultConfig, error) {
	var fc FaultConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return fc, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		badVal := func(err error) (FaultConfig, error) {
			return FaultConfig{}, fmt.Errorf("faults: bad value %q for %q: %v", val, key, err)
		}
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return badVal(err)
			}
			fc.Seed = u
		case "drop", "dup", "delay", "reorder", "crash":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return badVal(err)
			}
			if f < 0 || f >= 1 {
				return FaultConfig{}, fmt.Errorf("faults: %s=%v outside [0,1)", key, f)
			}
			switch key {
			case "drop":
				fc.Drop = f
			case "dup":
				fc.Dup = f
			case "delay":
				fc.Delay = f
			case "reorder":
				fc.Reorder = f
			case "crash":
				fc.CrashRate = f
			}
		case "maxdelay", "maxcrashes", "detect", "retrans", "maxretries", "ckpt", "maxrounds":
			n, err := strconv.Atoi(val)
			if err != nil {
				return badVal(err)
			}
			if n < 0 {
				return FaultConfig{}, fmt.Errorf("faults: %s=%d is negative", key, n)
			}
			switch key {
			case "maxdelay":
				fc.MaxDelay = n
			case "maxcrashes":
				fc.MaxCrashes = n
			case "detect":
				fc.DetectRounds = n
			case "retrans":
				fc.RetransRounds = n
			case "maxretries":
				fc.MaxRetries = n
			case "ckpt":
				fc.CheckpointEvery = n
			case "maxrounds":
				fc.MaxRounds = n
			}
		case "norejoin":
			if !hasVal || val == "true" || val == "1" {
				fc.NoRejoin = true
			} else if val != "false" && val != "0" {
				return badVal(fmt.Errorf("want a boolean"))
			}
		case "crashat":
			for _, triple := range strings.Split(val, "+") {
				parts := strings.Split(triple, ":")
				if len(parts) != 3 {
					return FaultConfig{}, fmt.Errorf("faults: crashat wants batch:round:node, got %q", triple)
				}
				var cp CrashPoint
				var err error
				if cp.Batch, err = strconv.Atoi(parts[0]); err != nil {
					return badVal(err)
				}
				if cp.Round, err = strconv.Atoi(parts[1]); err != nil {
					return badVal(err)
				}
				if cp.Node, err = strconv.Atoi(parts[2]); err != nil {
					return badVal(err)
				}
				if cp.Batch < 0 || cp.Round < 1 || cp.Node < 0 {
					return FaultConfig{}, fmt.Errorf("faults: crashat %q out of range (round is 1-based)", triple)
				}
				fc.CrashSchedule = append(fc.CrashSchedule, cp)
			}
		default:
			return FaultConfig{}, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return fc, nil
}

// FaultStats counts what the injector and the recovery machinery actually
// did during a run; chaos tests assert on these to prove a schedule really
// exercised the path it claims to.
type FaultStats struct {
	Dropped        int64 // packets the network ate
	Duplicated     int64 // extra copies the network created
	Delayed        int64 // packets held past base latency
	Reordered      int64 // delivery-time swaps within a link
	Retransmits    int64 // timer-driven resends
	PeerDownEvents int64 // links abandoned after MaxRetries (ErrPeerDown)
	DupsDiscarded  int64 // receive-side dedup hits (stale seq)
	Crashes        int64 // workers killed
	Rejoins        int64 // workers re-admitted at a batch boundary
	RecoveredVerts int64 // vertices reconstructed from checkpoint
	ReplayedMsgs   int64 // logged candidates resent during recovery
	ReplaySeeds    int64 // vertices re-enqueued to regenerate influence
}

// injector turns the config into concrete per-packet and per-round
// decisions. All randomness flows through one generator, in one
// deterministic call order, so the whole chaos run replays from the seed.
type injector struct {
	cfg FaultConfig
	rng *rng.Xoshiro256
	st  *FaultStats

	randomCrashes int
}

func newInjector(cfg FaultConfig, st *FaultStats) *injector {
	return &injector{cfg: cfg, rng: rng.New(rng.Mix64(cfg.Seed ^ 0x6661756c7473)), st: st}
}

// deliveries decides the fate of one packet sent during round r: the slice
// holds a delivery round per copy that enters the network (empty = dropped).
// Base latency is one round.
func (in *injector) deliveries(r int) []int {
	base := r + 1
	if !in.cfg.Enabled() {
		return []int{base}
	}
	if in.rng.Bool(in.cfg.Drop) {
		in.st.Dropped++
		return nil
	}
	out := make([]int, 1, 2)
	out[0] = in.delay(base)
	if in.rng.Bool(in.cfg.Dup) {
		in.st.Duplicated++
		out = append(out, in.delay(base))
	}
	return out
}

// delay perturbs one copy's delivery round.
func (in *injector) delay(base int) int {
	if in.rng.Bool(in.cfg.Delay) {
		in.st.Delayed++
		return base + 1 + in.rng.Intn(in.cfg.maxDelay())
	}
	return base
}

// reorder decides whether this copy swaps delivery times with an earlier
// in-flight packet on the same link.
func (in *injector) reorder() bool {
	if in.cfg.Reorder > 0 && in.rng.Bool(in.cfg.Reorder) {
		in.st.Reordered++
		return true
	}
	return false
}

// randomCrash picks a victim among live (sorted ascending), or -1. It never
// kills the last live worker and respects MaxCrashes.
func (in *injector) randomCrash(live []int) int {
	if in.cfg.CrashRate <= 0 || len(live) <= 1 {
		return -1
	}
	if in.cfg.MaxCrashes > 0 && in.randomCrashes >= in.cfg.MaxCrashes {
		return -1
	}
	if !in.rng.Bool(in.cfg.CrashRate) {
		return -1
	}
	in.randomCrashes++
	return live[in.rng.Intn(len(live))]
}
