package dist

// Wire protocol of the real-socket cluster runtime (DESIGN.md §4.10). Every
// frame on a connection uses the shared wal codec framing —
// [len][crc32c][kind][payload] — so the network detects truncation and bit
// corruption exactly the way the on-disk artifacts do. Sequenced
// application messages ride in wkMsg frames under the reliable link layer
// (link.go); acks, heartbeats, and the connection-level hello are
// unsequenced control frames.
//
// Payloads are flat little-endian records, hand-decoded with the same
// discipline as the wal payload codecs: every length and range is validated
// before allocation, and a malformed payload yields an error, never a panic
// or garbage.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/wal"
)

// Socket frame kinds. Distinct from the wal on-disk kinds so a stray file
// read as a stream (or vice versa) fails loudly on kind, not just on
// payload shape.
const (
	wkMsg   byte = 0x10 // [8B seq][1B msgType][body] — reliable, sequenced
	wkAck   byte = 0x11 // [8B cumulative ack = receiver's nextExpect]
	wkPing  byte = 0x12 // heartbeat probe
	wkPong  byte = 0x13 // heartbeat reply
	wkHello byte = 0x14 // connection handshake (worker -> coordinator)
)

// Message types carried inside wkMsg frames.
const (
	mtWelcome      byte = 1  // coordinator -> worker: join accepted, state transfer
	mtBatchStart   byte = 2  // coordinator -> worker: process one batch
	mtData         byte = 3  // both ways: routed candidate/shadow records
	mtIdle         byte = 4  // worker -> coordinator: drained, counters attached
	mtCollect      byte = 5  // coordinator -> worker: report owned state
	mtCollectReply byte = 6  // worker -> coordinator: converged (v, val, parent)
	mtCkptCmd      byte = 8  // coordinator -> worker: write a checkpoint at seq
	mtCkptDone     byte = 9  // worker -> coordinator: checkpoint committed
	mtBye          byte = 10 // either way: graceful leave / shutdown
	mtJoinReject   byte = 11 // coordinator -> worker: join refused
)

// wireHello is the connection-level handshake a worker sends first on every
// new connection (initial join, soft reconnect, and post-restart rejoin).
type wireHello struct {
	ID          int32  // worker id; -1 asks the coordinator to assign one
	Incarnation uint64 // changes on every process (re)start
	StructSeq   uint64 // last batch applied to the worker's recovered graph
	CkptSeq     uint64 // sequence of the newest intact local checkpoint
	HasBase     bool   // a base graph was recovered (ckpt + WAL replay succeeded)
}

func encodeHello(h wireHello) []byte {
	var b [29]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(h.ID))
	binary.LittleEndian.PutUint64(b[4:12], h.Incarnation)
	binary.LittleEndian.PutUint64(b[12:20], h.StructSeq)
	binary.LittleEndian.PutUint64(b[20:28], h.CkptSeq)
	if h.HasBase {
		b[28] = 1
	}
	return b[:]
}

func decodeHello(p []byte) (wireHello, error) {
	if len(p) != 29 {
		return wireHello{}, fmt.Errorf("%w: hello payload %d bytes", wal.ErrCorrupt, len(p))
	}
	return wireHello{
		ID:          int32(binary.LittleEndian.Uint32(p[0:4])),
		Incarnation: binary.LittleEndian.Uint64(p[4:12]),
		StructSeq:   binary.LittleEndian.Uint64(p[12:20]),
		CkptSeq:     binary.LittleEndian.Uint64(p[20:28]),
		HasBase:     p[28] != 0,
	}, nil
}

// --- primitive append/read helpers ---

type wireEnc struct{ b []byte }

func (e *wireEnc) u8(v byte)     { e.b = append(e.b, v) }
func (e *wireEnc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *wireEnc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *wireEnc) i32(v int32)   { e.u32(uint32(v)) }
func (e *wireEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *wireEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *wireEnc) boolByte(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// wireDec is a sticky-error cursor: after the first violation every read
// returns zero values and err() reports the failure.
type wireDec struct {
	b   []byte
	bad bool
}

func (d *wireDec) fail() { d.bad = true }
func (d *wireDec) take(n int) []byte {
	if d.bad || len(d.b) < n {
		d.fail()
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}
func (d *wireDec) u8() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (d *wireDec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}
func (d *wireDec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}
func (d *wireDec) i32() int32   { return int32(d.u32()) }
func (d *wireDec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *wireDec) str() string {
	n := int(d.u32())
	if n < 0 || n > len(d.b) {
		d.fail()
		return ""
	}
	return string(d.take(n))
}

// count reads a length prefix and validates it against the remaining bytes
// at elemLen bytes per element, so a hostile count can never drive an
// allocation past the payload it arrived in.
func (d *wireDec) count(elemLen int) int {
	n := int(d.u32())
	if d.bad || n < 0 || n*elemLen > len(d.b) {
		d.fail()
		return 0
	}
	return n
}

func (d *wireDec) err(what string) error {
	if d.bad {
		return fmt.Errorf("%w: malformed %s message", wal.ErrCorrupt, what)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %s message", wal.ErrCorrupt, len(d.b), what)
	}
	return nil
}

// --- compound sections ---

const updateLen = 4 + 4 + 8 + 1

func encBatch(e *wireEnc, b graph.Batch) {
	e.u32(uint32(len(b)))
	for _, u := range b {
		e.u32(u.Src)
		e.u32(u.Dst)
		e.f64(float64(u.W))
		e.boolByte(u.Del)
	}
}

func decBatch(d *wireDec) graph.Batch {
	n := d.count(updateLen)
	if n == 0 {
		return nil
	}
	b := make(graph.Batch, n)
	for i := range b {
		b[i].Src = d.u32()
		b[i].Dst = d.u32()
		b[i].W = graph.Weight(d.f64())
		b[i].Del = d.u8() != 0
	}
	return b
}

func encVals(e *wireEnc, vals []float64) {
	e.u32(uint32(len(vals)))
	for _, v := range vals {
		e.f64(v)
	}
}

func decVals(d *wireDec) []float64 {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = d.f64()
	}
	return vals
}

func encI32s(e *wireEnc, xs []int32) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.i32(x)
	}
}

func decI32s(d *wireDec) []int32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = d.i32()
	}
	return xs
}

func encU32s(e *wireEnc, xs []uint32) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.u32(x)
	}
}

func decU32s(d *wireDec) []uint32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	xs := make([]uint32, n)
	for i := range xs {
		xs[i] = d.u32()
	}
	return xs
}

func encEdges(e *wireEnc, edges []graph.Edge) {
	e.u32(uint32(len(edges)))
	for _, ed := range edges {
		e.u32(ed.Src)
		e.u32(ed.Dst)
		e.f64(float64(ed.W))
	}
}

func decEdges(d *wireDec) []graph.Edge {
	n := d.count(16)
	if n == 0 {
		return nil
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i].Src = d.u32()
		edges[i].Dst = d.u32()
		edges[i].W = graph.Weight(d.f64())
	}
	return edges
}

// --- application messages ---

// dataRec is one routed protocol record: a candidate aimed at a vertex's
// owner, or a shadow refresh the coordinator fans out to every other
// worker. The wire twin of the simulation's clusterMsg.
type dataRec struct {
	V      uint32
	Parent int32
	Val    float64
	Shadow bool
}

const dataRecLen = 4 + 4 + 8 + 1

// wireWelcome transfers everything a joining worker needs: identity, the
// algorithm, and either the full graph (fresh join) or the batch tail its
// recovered WAL is missing (rejoin), plus the authoritative boundary state.
type wireWelcome struct {
	ID        int32
	AlgName   string
	Source    uint32
	NumV      uint32
	FlowCap   uint32
	CkptEvery uint32
	BatchSeq  uint64 // current boundary sequence
	Full      bool
	Edges     []graph.Edge // full mode: the entire current graph
	Catchup   []graph.Batch
	Vals      []float64
	Parent    []int32
}

func encodeWelcome(w wireWelcome) []byte {
	var e wireEnc
	e.u8(mtWelcome)
	e.i32(w.ID)
	e.str(w.AlgName)
	e.u32(w.Source)
	e.u32(w.NumV)
	e.u32(w.FlowCap)
	e.u32(w.CkptEvery)
	e.u64(w.BatchSeq)
	e.boolByte(w.Full)
	if w.Full {
		encEdges(&e, w.Edges)
	} else {
		e.u32(uint32(len(w.Catchup)))
		for _, b := range w.Catchup {
			encBatch(&e, b)
		}
	}
	encVals(&e, w.Vals)
	encI32s(&e, w.Parent)
	return e.b
}

func decodeWelcome(p []byte) (wireWelcome, error) {
	d := wireDec{b: p}
	var w wireWelcome
	w.ID = d.i32()
	w.AlgName = d.str()
	w.Source = d.u32()
	w.NumV = d.u32()
	w.FlowCap = d.u32()
	w.CkptEvery = d.u32()
	w.BatchSeq = d.u64()
	w.Full = d.u8() != 0
	if w.Full {
		w.Edges = decEdges(&d)
	} else {
		n := d.count(4) // each batch is at least a 4-byte count
		w.Catchup = make([]graph.Batch, 0, n)
		for i := 0; i < n && !d.bad; i++ {
			w.Catchup = append(w.Catchup, decBatch(&d))
		}
	}
	w.Vals = decVals(&d)
	w.Parent = decI32s(&d)
	return w, d.err("welcome")
}

// wireBatchStart launches (or after a recovery, relaunches) one batch: the
// applied update list, the Manager's trim set, and the flow-worker table
// for this attempt.
type wireBatchStart struct {
	Seq     uint64
	Epoch   uint64
	Applied graph.Batch // post-symmetrize updates that actually changed the graph
	Trimmed []uint32
	Assign  []int32 // flow -> worker id (length == numFlows, the validation handle)
	ReRun   bool
}

func encodeBatchStart(m wireBatchStart) []byte {
	var e wireEnc
	e.u8(mtBatchStart)
	e.u64(m.Seq)
	e.u64(m.Epoch)
	e.boolByte(m.ReRun)
	encBatch(&e, m.Applied)
	encU32s(&e, m.Trimmed)
	encI32s(&e, m.Assign)
	return e.b
}

func decodeBatchStart(p []byte) (wireBatchStart, error) {
	d := wireDec{b: p}
	var m wireBatchStart
	m.Seq = d.u64()
	m.Epoch = d.u64()
	m.ReRun = d.u8() != 0
	m.Applied = decBatch(&d)
	m.Trimmed = decU32s(&d)
	m.Assign = decI32s(&d)
	return m, d.err("batch-start")
}

// wireData is a bundle of routed records tagged with the attempt epoch so
// stale in-flight traffic from an aborted attempt is discarded on arrival.
type wireData struct {
	Epoch uint64
	Recs  []dataRec
}

func encodeData(m wireData) []byte {
	var e wireEnc
	e.u8(mtData)
	e.u64(m.Epoch)
	e.u32(uint32(len(m.Recs)))
	for _, r := range m.Recs {
		e.u32(r.V)
		e.i32(r.Parent)
		e.f64(r.Val)
		e.boolByte(r.Shadow)
	}
	return e.b
}

func decodeData(p []byte) (wireData, error) {
	d := wireDec{b: p}
	var m wireData
	m.Epoch = d.u64()
	n := d.count(dataRecLen)
	m.Recs = make([]dataRec, n)
	for i := range m.Recs {
		m.Recs[i].V = d.u32()
		m.Recs[i].Parent = d.i32()
		m.Recs[i].Val = d.f64()
		m.Recs[i].Shadow = d.u8() != 0
	}
	return m, d.err("data")
}

// wireIdle is a worker's quiescence report: it has drained its inbox and
// worklist, having consumed Processed routed records and uploaded Uploaded.
type wireIdle struct {
	Epoch     uint64
	Seq       uint64
	Processed uint64
	Uploaded  uint64
}

func encodeIdle(m wireIdle) []byte {
	var e wireEnc
	e.u8(mtIdle)
	e.u64(m.Epoch)
	e.u64(m.Seq)
	e.u64(m.Processed)
	e.u64(m.Uploaded)
	return e.b
}

func decodeIdle(p []byte) (wireIdle, error) {
	d := wireDec{b: p}
	m := wireIdle{Epoch: d.u64(), Seq: d.u64(), Processed: d.u64(), Uploaded: d.u64()}
	return m, d.err("idle")
}

// wireCollect asks a worker for its owned slice of the boundary state.
type wireCollect struct {
	Epoch uint64
	Seq   uint64
}

func encodeCollect(m wireCollect) []byte {
	var e wireEnc
	e.u8(mtCollect)
	e.u64(m.Epoch)
	e.u64(m.Seq)
	return e.b
}

func decodeCollect(p []byte) (wireCollect, error) {
	d := wireDec{b: p}
	m := wireCollect{Epoch: d.u64(), Seq: d.u64()}
	return m, d.err("collect")
}

// collectRec is one owned vertex's authoritative boundary state.
type collectRec struct {
	V      uint32
	Parent int32
	Val    float64
}

const collectRecLen = 4 + 4 + 8

type wireCollectReply struct {
	Epoch uint64
	Seq   uint64
	Recs  []collectRec
}

func encodeCollectReply(m wireCollectReply) []byte {
	var e wireEnc
	e.u8(mtCollectReply)
	e.u64(m.Epoch)
	e.u64(m.Seq)
	e.u32(uint32(len(m.Recs)))
	for _, r := range m.Recs {
		e.u32(r.V)
		e.i32(r.Parent)
		e.f64(r.Val)
	}
	return e.b
}

func decodeCollectReply(p []byte) (wireCollectReply, error) {
	d := wireDec{b: p}
	var m wireCollectReply
	m.Epoch = d.u64()
	m.Seq = d.u64()
	n := d.count(collectRecLen)
	m.Recs = make([]collectRec, n)
	for i := range m.Recs {
		m.Recs[i].V = d.u32()
		m.Recs[i].Parent = d.i32()
		m.Recs[i].Val = d.f64()
	}
	return m, d.err("collect-reply")
}

// wireCkpt carries checkpoint commands and completions (seq only).
type wireCkpt struct{ Seq uint64 }

func encodeCkpt(mt byte, m wireCkpt) []byte {
	var e wireEnc
	e.u8(mt)
	e.u64(m.Seq)
	return e.b
}

func decodeCkpt(p []byte) (wireCkpt, error) {
	d := wireDec{b: p}
	m := wireCkpt{Seq: d.u64()}
	return m, d.err("checkpoint")
}

// encodeBye / encodeJoinReject carry a human-readable reason.
func encodeReason(mt byte, reason string) []byte {
	var e wireEnc
	e.u8(mt)
	e.str(reason)
	return e.b
}

func decodeReason(p []byte) (string, error) {
	d := wireDec{b: p}
	s := d.str()
	return s, d.err("reason")
}
