package dist

// Wire protocol of the real-socket cluster runtime (DESIGN.md §4.10). Every
// frame on a connection uses the shared wal codec framing —
// [len][crc32c][kind][payload] — so the network detects truncation and bit
// corruption exactly the way the on-disk artifacts do. Sequenced
// application messages ride in wkMsg frames under the reliable link layer
// (link.go); acks, heartbeats, and the connection-level hello are
// unsequenced control frames.
//
// Payloads are flat little-endian records, hand-decoded with the same
// discipline as the wal payload codecs: every length and range is validated
// before allocation, and a malformed payload yields an error, never a panic
// or garbage.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
	"repro/internal/wal"
)

// Socket frame kinds. Distinct from the wal on-disk kinds so a stray file
// read as a stream (or vice versa) fails loudly on kind, not just on
// payload shape.
const (
	wkMsg   byte = 0x10 // [8B seq][1B msgType][body] — reliable, sequenced
	wkAck   byte = 0x11 // [8B cumulative ack = receiver's nextExpect]
	wkPing  byte = 0x12 // heartbeat probe
	wkPong  byte = 0x13 // heartbeat reply
	wkHello byte = 0x14 // connection handshake (worker -> coordinator)
)

// Message types carried inside wkMsg frames.
const (
	mtWelcome      byte = 1  // coordinator -> worker: join accepted, state transfer
	mtBatchStart   byte = 2  // coordinator -> worker: process one batch
	mtData         byte = 3  // both ways: routed candidate/shadow records
	mtIdle         byte = 4  // worker -> coordinator: drained, counters attached
	mtCollect      byte = 5  // coordinator -> worker: report owned state
	mtCollectReply byte = 6  // worker -> coordinator: converged (v, val, parent)
	mtCkptCmd      byte = 8  // coordinator -> worker: write a checkpoint at seq
	mtCkptDone     byte = 9  // worker -> coordinator: checkpoint committed
	mtBye          byte = 10 // either way: graceful leave / shutdown
	mtJoinReject   byte = 11 // coordinator -> worker: join refused
)

// wireHello is the connection-level handshake a worker sends first on every
// new connection (initial join, soft reconnect, and post-restart rejoin).
type wireHello struct {
	ID          int32  // worker id; -1 asks the coordinator to assign one
	Incarnation uint64 // changes on every process (re)start
	StructSeq   uint64 // last batch applied to the worker's recovered graph
	CkptSeq     uint64 // sequence of the newest intact local checkpoint
	HasBase     bool   // a base graph was recovered (ckpt + WAL replay succeeded)
}

func encodeHello(h wireHello) []byte {
	var b [29]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(h.ID))
	binary.LittleEndian.PutUint64(b[4:12], h.Incarnation)
	binary.LittleEndian.PutUint64(b[12:20], h.StructSeq)
	binary.LittleEndian.PutUint64(b[20:28], h.CkptSeq)
	if h.HasBase {
		b[28] = 1
	}
	return b[:]
}

func decodeHello(p []byte) (wireHello, error) {
	if len(p) != 29 {
		return wireHello{}, fmt.Errorf("%w: hello payload %d bytes", wal.ErrCorrupt, len(p))
	}
	return wireHello{
		ID:          int32(binary.LittleEndian.Uint32(p[0:4])),
		Incarnation: binary.LittleEndian.Uint64(p[4:12]),
		StructSeq:   binary.LittleEndian.Uint64(p[12:20]),
		CkptSeq:     binary.LittleEndian.Uint64(p[20:28]),
		HasBase:     p[28] != 0,
	}, nil
}

// --- compound sections ---
//
// The primitive append/read cursors live in the wal package (wal.Enc /
// wal.Dec) so the serving front-end's session protocol and this cluster
// protocol share one validation discipline.

const updateLen = 4 + 4 + 8 + 1

func encBatch(e *wal.Enc, b graph.Batch) {
	e.U32(uint32(len(b)))
	for _, u := range b {
		e.U32(u.Src)
		e.U32(u.Dst)
		e.F64(float64(u.W))
		e.Bool(u.Del)
	}
}

func decBatch(d *wal.Dec) graph.Batch {
	n := d.Count(updateLen)
	if n == 0 {
		return nil
	}
	b := make(graph.Batch, n)
	for i := range b {
		b[i].Src = d.U32()
		b[i].Dst = d.U32()
		b[i].W = graph.Weight(d.F64())
		b[i].Del = d.U8() != 0
	}
	return b
}

func encVals(e *wal.Enc, vals []float64) {
	e.U32(uint32(len(vals)))
	for _, v := range vals {
		e.F64(v)
	}
}

func decVals(d *wal.Dec) []float64 {
	n := d.Count(8)
	if n == 0 {
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = d.F64()
	}
	return vals
}

func encI32s(e *wal.Enc, xs []int32) {
	e.U32(uint32(len(xs)))
	for _, x := range xs {
		e.I32(x)
	}
}

func decI32s(d *wal.Dec) []int32 {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = d.I32()
	}
	return xs
}

func encU32s(e *wal.Enc, xs []uint32) {
	e.U32(uint32(len(xs)))
	for _, x := range xs {
		e.U32(x)
	}
}

func decU32s(d *wal.Dec) []uint32 {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	xs := make([]uint32, n)
	for i := range xs {
		xs[i] = d.U32()
	}
	return xs
}

func encEdges(e *wal.Enc, edges []graph.Edge) {
	e.U32(uint32(len(edges)))
	for _, ed := range edges {
		e.U32(ed.Src)
		e.U32(ed.Dst)
		e.F64(float64(ed.W))
	}
}

func decEdges(d *wal.Dec) []graph.Edge {
	n := d.Count(16)
	if n == 0 {
		return nil
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i].Src = d.U32()
		edges[i].Dst = d.U32()
		edges[i].W = graph.Weight(d.F64())
	}
	return edges
}

// --- application messages ---

// dataRec is one routed protocol record: a candidate aimed at a vertex's
// owner, or a shadow refresh the coordinator fans out to every other
// worker. The wire twin of the simulation's clusterMsg.
type dataRec struct {
	V      uint32
	Parent int32
	Val    float64
	Shadow bool
}

const dataRecLen = 4 + 4 + 8 + 1

// wireWelcome transfers everything a joining worker needs: identity, the
// algorithm, and either the full graph (fresh join) or the batch tail its
// recovered WAL is missing (rejoin), plus the authoritative boundary state.
type wireWelcome struct {
	ID        int32
	AlgName   string
	Source    uint32
	NumV      uint32
	FlowCap   uint32
	CkptEvery uint32
	BatchSeq  uint64 // current boundary sequence
	Full      bool
	Edges     []graph.Edge // full mode: the entire current graph
	Catchup   []graph.Batch
	Vals      []float64
	Parent    []int32
}

func encodeWelcome(w wireWelcome) []byte {
	var e wal.Enc
	e.U8(mtWelcome)
	e.I32(w.ID)
	e.Str(w.AlgName)
	e.U32(w.Source)
	e.U32(w.NumV)
	e.U32(w.FlowCap)
	e.U32(w.CkptEvery)
	e.U64(w.BatchSeq)
	e.Bool(w.Full)
	if w.Full {
		encEdges(&e, w.Edges)
	} else {
		e.U32(uint32(len(w.Catchup)))
		for _, b := range w.Catchup {
			encBatch(&e, b)
		}
	}
	encVals(&e, w.Vals)
	encI32s(&e, w.Parent)
	return e.B
}

func decodeWelcome(p []byte) (wireWelcome, error) {
	d := wal.Dec{B: p}
	var w wireWelcome
	w.ID = d.I32()
	w.AlgName = d.Str()
	w.Source = d.U32()
	w.NumV = d.U32()
	w.FlowCap = d.U32()
	w.CkptEvery = d.U32()
	w.BatchSeq = d.U64()
	w.Full = d.U8() != 0
	if w.Full {
		w.Edges = decEdges(&d)
	} else {
		n := d.Count(4) // each batch is at least a 4-byte count
		w.Catchup = make([]graph.Batch, 0, n)
		for i := 0; i < n && !d.Bad(); i++ {
			w.Catchup = append(w.Catchup, decBatch(&d))
		}
	}
	w.Vals = decVals(&d)
	w.Parent = decI32s(&d)
	return w, d.Err("welcome")
}

// wireBatchStart launches (or after a recovery, relaunches) one batch: the
// applied update list, the Manager's trim set, and the flow-worker table
// for this attempt.
type wireBatchStart struct {
	Seq     uint64
	Epoch   uint64
	Applied graph.Batch // post-symmetrize updates that actually changed the graph
	Trimmed []uint32
	Assign  []int32 // flow -> worker id (length == numFlows, the validation handle)
	ReRun   bool
}

func encodeBatchStart(m wireBatchStart) []byte {
	var e wal.Enc
	e.U8(mtBatchStart)
	e.U64(m.Seq)
	e.U64(m.Epoch)
	e.Bool(m.ReRun)
	encBatch(&e, m.Applied)
	encU32s(&e, m.Trimmed)
	encI32s(&e, m.Assign)
	return e.B
}

func decodeBatchStart(p []byte) (wireBatchStart, error) {
	d := wal.Dec{B: p}
	var m wireBatchStart
	m.Seq = d.U64()
	m.Epoch = d.U64()
	m.ReRun = d.U8() != 0
	m.Applied = decBatch(&d)
	m.Trimmed = decU32s(&d)
	m.Assign = decI32s(&d)
	return m, d.Err("batch-start")
}

// wireData is a bundle of routed records tagged with the attempt epoch so
// stale in-flight traffic from an aborted attempt is discarded on arrival.
type wireData struct {
	Epoch uint64
	Recs  []dataRec
}

func encodeData(m wireData) []byte {
	var e wal.Enc
	e.U8(mtData)
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Recs)))
	for _, r := range m.Recs {
		e.U32(r.V)
		e.I32(r.Parent)
		e.F64(r.Val)
		e.Bool(r.Shadow)
	}
	return e.B
}

func decodeData(p []byte) (wireData, error) {
	d := wal.Dec{B: p}
	var m wireData
	m.Epoch = d.U64()
	n := d.Count(dataRecLen)
	m.Recs = make([]dataRec, n)
	for i := range m.Recs {
		m.Recs[i].V = d.U32()
		m.Recs[i].Parent = d.I32()
		m.Recs[i].Val = d.F64()
		m.Recs[i].Shadow = d.U8() != 0
	}
	return m, d.Err("data")
}

// wireIdle is a worker's quiescence report: it has drained its inbox and
// worklist, having consumed Processed routed records and uploaded Uploaded.
type wireIdle struct {
	Epoch     uint64
	Seq       uint64
	Processed uint64
	Uploaded  uint64
}

func encodeIdle(m wireIdle) []byte {
	var e wal.Enc
	e.U8(mtIdle)
	e.U64(m.Epoch)
	e.U64(m.Seq)
	e.U64(m.Processed)
	e.U64(m.Uploaded)
	return e.B
}

func decodeIdle(p []byte) (wireIdle, error) {
	d := wal.Dec{B: p}
	m := wireIdle{Epoch: d.U64(), Seq: d.U64(), Processed: d.U64(), Uploaded: d.U64()}
	return m, d.Err("idle")
}

// wireCollect asks a worker for its owned slice of the boundary state.
type wireCollect struct {
	Epoch uint64
	Seq   uint64
}

func encodeCollect(m wireCollect) []byte {
	var e wal.Enc
	e.U8(mtCollect)
	e.U64(m.Epoch)
	e.U64(m.Seq)
	return e.B
}

func decodeCollect(p []byte) (wireCollect, error) {
	d := wal.Dec{B: p}
	m := wireCollect{Epoch: d.U64(), Seq: d.U64()}
	return m, d.Err("collect")
}

// collectRec is one owned vertex's authoritative boundary state.
type collectRec struct {
	V      uint32
	Parent int32
	Val    float64
}

const collectRecLen = 4 + 4 + 8

type wireCollectReply struct {
	Epoch uint64
	Seq   uint64
	Recs  []collectRec
}

func encodeCollectReply(m wireCollectReply) []byte {
	var e wal.Enc
	e.U8(mtCollectReply)
	e.U64(m.Epoch)
	e.U64(m.Seq)
	e.U32(uint32(len(m.Recs)))
	for _, r := range m.Recs {
		e.U32(r.V)
		e.I32(r.Parent)
		e.F64(r.Val)
	}
	return e.B
}

func decodeCollectReply(p []byte) (wireCollectReply, error) {
	d := wal.Dec{B: p}
	var m wireCollectReply
	m.Epoch = d.U64()
	m.Seq = d.U64()
	n := d.Count(collectRecLen)
	m.Recs = make([]collectRec, n)
	for i := range m.Recs {
		m.Recs[i].V = d.U32()
		m.Recs[i].Parent = d.I32()
		m.Recs[i].Val = d.F64()
	}
	return m, d.Err("collect-reply")
}

// wireCkpt carries checkpoint commands and completions (seq only).
type wireCkpt struct{ Seq uint64 }

func encodeCkpt(mt byte, m wireCkpt) []byte {
	var e wal.Enc
	e.U8(mt)
	e.U64(m.Seq)
	return e.B
}

func decodeCkpt(p []byte) (wireCkpt, error) {
	d := wal.Dec{B: p}
	m := wireCkpt{Seq: d.U64()}
	return m, d.Err("checkpoint")
}

// encodeBye / encodeJoinReject carry a human-readable reason.
func encodeReason(mt byte, reason string) []byte {
	var e wal.Enc
	e.U8(mt)
	e.Str(reason)
	return e.B
}

func decodeReason(p []byte) (string, error) {
	d := wal.Dec{B: p}
	s := d.Str()
	return s, d.Err("reason")
}
