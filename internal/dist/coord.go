package dist

// Coordinator: the Manager role of the GraphFly cluster protocol (§VI) over
// real sockets. It listens for worker processes, runs the membership
// handshake, replicates batch structure, computes trim sets on its
// dependence forest, routes every cross-worker record (star topology:
// candidates to the target's owner, shadow refreshes fanned to everyone
// else), detects quiescence by counter agreement, collects the converged
// state at each batch boundary, and drives worker checkpoints.
//
// Fault handling is rollback + re-run: every worker snapshots its value
// state when a batch starts, so when a worker dies mid-batch the
// coordinator bumps the attempt epoch, recomputes the flow-worker table
// over the survivors, and rebroadcasts the same batch with reRun set —
// survivors restore their snapshots and the batch re-executes on the new
// membership. No partition state ever needs migrating off a dead machine:
// at every quiescent boundary each worker's full replica equals the global
// state (selective algorithms converge to a unique fixpoint, and shadow
// refreshes synchronize replicas), which is the dependency-flow argument
// for why crash recovery can be this simple.
//
// Restarted workers (kill -9 + respawn) present a hello carrying what their
// local WAL recovered; the coordinator replies with the missing batch tail
// from its in-memory history — or a full transfer when the tail has been
// evicted — and admits them at the next attempt or batch boundary,
// rebalancing flows onto the rejoined member.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/dflow"
	"repro/internal/etree"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// CoordConfig configures a Coordinator.
type CoordConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0"; port 0 picks a free
	// port, readable back via Addr()).
	Addr string
	// FlowCap caps dependency-flow size (dflow.DefaultCap when 0).
	FlowCap int
	// CkptEvery commands a worker checkpoint every N batches (default 4).
	CkptEvery int
	// BatchTimeout bounds one ProcessBatch call, recoveries included
	// (default 60s). Expiry returns ErrBatchTimeout.
	BatchTimeout time.Duration
	// HistoryCap bounds the in-memory applied-batch history used to catch
	// up rejoining workers (default 1024 batches). A worker further behind
	// gets a full state transfer instead.
	HistoryCap int
	// HeartbeatEvery / RetransBase / PeerTimeout / MaxRetries tune the
	// reliable links (see linkConfig; zero picks the defaults).
	HeartbeatEvery time.Duration
	RetransBase    time.Duration
	PeerTimeout    time.Duration
	MaxRetries     int
	// Metrics receives dist.* counters and histograms when non-nil.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives human-readable progress lines.
	Logf func(format string, args ...any)
}

func (c CoordConfig) flowCap() int {
	if c.FlowCap <= 0 {
		return dflow.DefaultCap
	}
	return c.FlowCap
}

func (c CoordConfig) ckptEvery() int {
	if c.CkptEvery <= 0 {
		return 4
	}
	return c.CkptEvery
}

func (c CoordConfig) batchTimeout() time.Duration {
	if c.BatchTimeout <= 0 {
		return 60 * time.Second
	}
	return c.BatchTimeout
}

func (c CoordConfig) historyCap() int {
	if c.HistoryCap <= 0 {
		return 1024
	}
	return c.HistoryCap
}

func (c CoordConfig) linkConfig() linkConfig {
	return linkConfig{
		HeartbeatEvery: c.HeartbeatEvery,
		RetransBase:    c.RetransBase,
		PeerTimeout:    c.PeerTimeout,
		MaxRetries:     c.MaxRetries,
	}
}

// coordWorker is the coordinator's view of one worker process.
type coordWorker struct {
	id          int32
	incarnation uint64
	link        *link
	live        bool       // welcomed into the current membership
	parked      *wireHello // join awaiting admission (nil once welcomed)
	parkedAt    time.Time

	// Per-attempt (epoch) quiescence counters.
	fwd    uint64    // records forwarded to this worker
	recvUp uint64    // records received from it
	idle   *wireIdle // latest idle report matching the current epoch

	ckptDone uint64 // highest acknowledged checkpoint seq
}

// Coordinator runs the cluster. Construct with NewCoordinator, feed batches
// with ProcessBatch, read converged state with Values, stop with Close.
type Coordinator struct {
	cfg CoordConfig
	alg algo.Selective

	algName string
	algSrc  uint32

	ln  net.Listener
	met linkMetrics

	recoveryNs *metrics.Histogram
	rejoinNs   *metrics.Histogram
	rebalances *metrics.Counter

	mu      sync.Mutex
	cond    *sync.Cond
	g       *graph.Streaming
	vals    []float64
	parent  []int32
	kf      *etree.KeyForest
	trimScr []bool // per-batch trim dedup scratch (mgrTrimmed of the sim)

	workers map[int32]*coordWorker
	nextID  int32

	boundarySeq uint64 // last fully completed batch
	curSeq      uint64 // batch in flight (boundarySeq+1), 0 at boundary
	epoch       uint64 // attempt epoch; bumped per BatchStart broadcast
	dirty       bool   // membership changed since the attempt started
	firstDeath  time.Time

	history map[uint64]graph.Batch
	histLow uint64 // lowest seq retained in history

	collect *wireCollectReply // reply for the current (epoch, seq), if any

	ownerTab []int32 // vertex -> worker id for the current attempt

	closed bool
}

// NewCoordinator solves the initial graph, starts listening, and returns.
// Workers may connect immediately; admit them with WaitForWorkers.
func NewCoordinator(g *graph.Streaming, alg algo.Selective, cfg CoordConfig) (*Coordinator, error) {
	name, src, err := selectiveWire(alg)
	if err != nil {
		return nil, err
	}
	vals, parent := algo.SolveSelective(g, alg)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Coordinator{
		cfg:        cfg,
		alg:        alg,
		algName:    name,
		algSrc:     src,
		ln:         ln,
		met:        newLinkMetrics(reg),
		recoveryNs: reg.Histogram("dist.recovery_ns"),
		rejoinNs:   reg.Histogram("dist.rejoin_ns"),
		rebalances: reg.Counter("dist.rebalances"),
		g:          g,
		vals:       vals,
		parent:     parent,
		kf:         etree.NewKeyForest(g.NumVertices()),
		trimScr:    make([]bool, g.NumVertices()),
		workers:    make(map[int32]*coordWorker),
		history:    make(map[uint64]graph.Batch),
		histLow:    1,
	}
	c.cond = sync.NewCond(&c.mu)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the actual listen address (useful with port 0).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// --- membership: accept, hello, admission ---

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.handleConn(conn)
	}
}

// handleConn runs the handshake on one inbound connection: the first frame
// must be a hello, which either soft-reattaches to an existing link or
// registers a (re)join parked until the next admission point.
func (c *Coordinator) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(c.cfg.linkConfig().peerTimeout()))
	kind, payload, err := readFrameConn(conn)
	if err != nil || kind != wkHello {
		conn.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	if w := c.workers[h.ID]; w != nil && h.ID >= 0 && w.incarnation == h.Incarnation && !w.link.isDown() {
		// Same process, new socket: soft reconnect. Seq state survives.
		c.logf("coord: worker %d reconnected", h.ID)
		w.link.attach(conn)
		return
	}
	// Hard (re)join: a new process. If the id was live, its death just
	// became known — fail the current attempt before re-admitting.
	id := h.ID
	if id < 0 {
		id = c.nextID
		c.nextID++
	} else if id >= c.nextID {
		c.nextID = id + 1
	}
	if old := c.workers[id]; old != nil {
		if old.live {
			c.markDeadLocked(old, fmt.Errorf("worker %d: superseded by incarnation %d: %w", id, h.Incarnation, ErrPeerDown))
		}
		old.link.close()
	}
	hh := h
	hh.ID = id
	w := &coordWorker{id: id, incarnation: h.Incarnation, parked: &hh, parkedAt: time.Now()}
	w.link = newLink(c.cfg.linkConfig(), c.met,
		func(mt byte, body []byte) { c.onWorkerMsg(w, mt, body) },
		func(err error) { c.onWorkerDown(w, err) })
	w.link.attach(conn)
	c.workers[id] = w
	c.logf("coord: worker %d joined (incarnation %d, structSeq %d, hasBase %v)",
		id, h.Incarnation, h.StructSeq, h.HasBase)
	c.cond.Broadcast()
}

// readFrameConn reads one frame directly off a conn (pre-link handshake).
func readFrameConn(conn net.Conn) (byte, []byte, error) {
	return wal.ReadFrame(conn)
}

// onWorkerDown handles a link degradation: the worker is dead.
func (c *Coordinator) onWorkerDown(w *coordWorker, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markDeadLocked(w, err)
}

// markDeadLocked removes a worker from the membership. The entry survives
// (a restart of the same id rejoins through it); only liveness and the
// current attempt are affected.
func (c *Coordinator) markDeadLocked(w *coordWorker, err error) {
	if w.parked != nil {
		w.parked = nil // a parked join that died never entered membership
	}
	if !w.live {
		return
	}
	w.live = false
	w.idle = nil
	c.dirty = true
	if c.curSeq != 0 && c.firstDeath.IsZero() {
		c.firstDeath = time.Now()
	}
	c.logf("coord: worker %d down: %v", w.id, err)
	c.cond.Broadcast()
}

// liveLocked returns the live workers in ascending id order.
func (c *Coordinator) liveLocked() []*coordWorker {
	var out []*coordWorker
	for id := int32(0); id < c.nextID; id++ {
		if w := c.workers[id]; w != nil && w.live {
			out = append(out, w)
		}
	}
	return out
}

// LiveWorkers reports the current live membership size.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.liveLocked())
}

// admitParkedLocked welcomes every parked join. welcomeSeq is the batch seq
// the transferred structure corresponds to: the boundary seq between
// batches, or the in-flight seq when admitting at a re-run attempt (the
// coordinator's replica already includes the in-flight structure).
func (c *Coordinator) admitParkedLocked(welcomeSeq uint64) {
	for id := int32(0); id < c.nextID; id++ {
		w := c.workers[id]
		if w == nil || w.parked == nil || w.link.isDown() {
			continue
		}
		h := *w.parked
		wl := wireWelcome{
			ID:        w.id,
			AlgName:   c.algName,
			Source:    c.algSrc,
			NumV:      uint32(c.g.NumVertices()),
			FlowCap:   uint32(c.cfg.flowCap()),
			CkptEvery: uint32(c.cfg.ckptEvery()),
			BatchSeq:  welcomeSeq,
			Vals:      c.vals,
			Parent:    c.parent,
		}
		switch {
		case h.HasBase && h.StructSeq == welcomeSeq:
			// Fully caught up structurally (e.g. died after logging the
			// in-flight batch): state arrays alone suffice.
		case h.HasBase && h.StructSeq < welcomeSeq && h.StructSeq+1 >= c.histLow:
			for s := h.StructSeq + 1; s <= welcomeSeq; s++ {
				wl.Catchup = append(wl.Catchup, c.history[s])
			}
		default:
			// Fresh worker, divergent worker, or history evicted: full dump.
			wl.Full = true
			wl.Edges = c.g.Edges()
		}
		if err := w.link.Send(encodeWelcome(wl)); err != nil {
			c.markDeadLocked(w, err)
			continue
		}
		w.parked = nil
		w.live = true
		w.ckptDone = 0
		c.rejoinNs.Observe(time.Since(w.parkedAt).Nanoseconds())
		c.logf("coord: worker %d admitted at seq %d (full=%v, catchup=%d)",
			w.id, welcomeSeq, wl.Full, len(wl.Catchup))
	}
}

// WaitForWorkers admits joins until n workers are live (or ctx expires).
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(c.cfg.batchTimeout())
	}
	stop := context.AfterFunc(ctx, func() { c.cond.Broadcast() })
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		c.admitParkedLocked(c.boundarySeq)
		if len(c.liveLocked()) >= n {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := c.waitLocked(deadline); err != nil {
			return fmt.Errorf("dist: waiting for %d workers (%d live): %w", n, len(c.liveLocked()), err)
		}
	}
}

// waitLocked blocks on the condition variable until the next event or the
// deadline. Callers re-check their predicate in a loop.
func (c *Coordinator) waitLocked(deadline time.Time) error {
	if time.Now().After(deadline) {
		return ErrBatchTimeout
	}
	t := time.AfterFunc(time.Until(deadline), func() { c.cond.Broadcast() })
	c.cond.Wait()
	t.Stop()
	if time.Now().After(deadline) {
		return ErrBatchTimeout
	}
	return nil
}

// --- message handling (runs on link reader goroutines) ---

func (c *Coordinator) onWorkerMsg(w *coordWorker, mt byte, body []byte) {
	switch mt {
	case mtData:
		m, err := decodeData(body)
		if err != nil {
			return
		}
		c.routeData(w, m)
	case mtIdle:
		m, err := decodeIdle(body)
		if err != nil {
			return
		}
		c.mu.Lock()
		if w.live && m.Epoch == c.epoch {
			mm := m
			w.idle = &mm
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	case mtCollectReply:
		m, err := decodeCollectReply(body)
		if err != nil {
			return
		}
		c.mu.Lock()
		if m.Epoch == c.epoch && m.Seq == c.curSeq {
			c.collect = &m
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	case mtCkptDone:
		m, err := decodeCkpt(body)
		if err != nil {
			return
		}
		c.mu.Lock()
		if m.Seq > w.ckptDone {
			w.ckptDone = m.Seq
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	case mtBye:
		c.mu.Lock()
		c.markDeadLocked(w, errors.New("worker sent bye"))
		w.link.close()
		c.mu.Unlock()
	}
}

// routeData is the star-topology router: candidates go to the target
// vertex's owner, shadow refreshes fan out to every live worker except the
// sender. Records from a stale epoch (an aborted attempt) are dropped.
func (c *Coordinator) routeData(w *coordWorker, m wireData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !w.live || m.Epoch != c.epoch || c.curSeq == 0 {
		return
	}
	w.recvUp += uint64(len(m.Recs))
	live := c.liveLocked()
	out := make(map[*coordWorker][]dataRec)
	numV := uint32(c.g.NumVertices())
	for _, r := range m.Recs {
		if r.V >= numV {
			continue // malformed record; never index out of range
		}
		if r.Shadow {
			for _, o := range live {
				if o != w {
					out[o] = append(out[o], r)
				}
			}
		} else {
			o := c.workers[c.ownerOf(r.V)]
			if o != nil && o.live {
				out[o] = append(out[o], r)
			}
		}
	}
	for o, recs := range out {
		o.fwd += uint64(len(recs))
		if err := o.link.Send(encodeData(wireData{Epoch: m.Epoch, Recs: recs})); err != nil {
			c.markDeadLocked(o, err)
		}
	}
	c.cond.Broadcast()
}

func (c *Coordinator) ownerOf(v uint32) int32 {
	if int(v) < len(c.ownerTab) {
		return c.ownerTab[v]
	}
	return -1
}

// --- batch processing ---

// quiescentLocked is the termination check for the current attempt: every
// live worker has reported idle for this epoch with counters agreeing with
// the coordinator's (links are FIFO and reliable, so counter agreement
// proves nothing is in flight in either direction).
func (c *Coordinator) quiescentLocked() bool {
	live := c.liveLocked()
	if len(live) == 0 {
		return false
	}
	for _, w := range live {
		if w.idle == nil || w.idle.Processed != w.fwd || w.idle.Uploaded != w.recvUp {
			return false
		}
	}
	return true
}

// ProcessBatch streams one batch through the cluster: replicate structure,
// broadcast trims and the flow table, route records until quiescence
// (re-running on membership changes), collect the converged state, and
// drive checkpoints. Bit-exact with the single-machine engines.
func (c *Coordinator) ProcessBatch(ctx context.Context, batch graph.Batch) error {
	deadline := time.Now().Add(c.cfg.batchTimeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	stop := context.AfterFunc(ctx, func() { c.cond.Broadcast() })
	defer stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("dist: coordinator closed")
	}
	if err := c.g.CheckBatch(batch); err != nil {
		return err
	}
	c.admitParkedLocked(c.boundarySeq)
	if c.alg.Symmetric() {
		batch = symmetrize(batch)
	}
	applied := c.g.ApplyBatch(batch)
	c.curSeq = c.boundarySeq + 1
	seq := c.curSeq
	c.history[seq] = applied
	for uint64(len(c.history)) > uint64(c.cfg.historyCap()) {
		delete(c.history, c.histLow)
		c.histLow++
	}

	// The flow table for this batch is derived from the parents collected
	// at the last boundary — the same array every worker holds — so worker
	// and coordinator compute identical partitions independently.
	parentStart := append([]int32(nil), c.parent...)

	// Manager trim identification (sim ProcessBatchE, verbatim semantics).
	c.kf.BulkLoad(c.parent)
	var trimmed []uint32
	for _, u := range applied {
		if !u.Del || c.parent[u.Dst] != int32(u.Src) {
			continue
		}
		// Note: unlike the sim Manager, c.parent is NOT poked to -1 here —
		// it must stay equal to parentStart for the whole batch so workers
		// admitted at a re-run attempt receive the same parent array the
		// survivors rolled back to (partition agreement). trimScr already
		// dedups repeated walks, which is all the -1 bought the sim.
		c.kf.Subtree(u.Dst, func(x uint32) bool {
			if c.trimScr[x] {
				return false
			}
			c.trimScr[x] = true
			trimmed = append(trimmed, x)
			return true
		})
	}
	defer func() {
		for _, x := range trimmed {
			c.trimScr[x] = false
		}
	}()

	reRun := false
	for {
		if reRun {
			// Give killed-and-respawning workers a chance to rejoin this
			// very attempt; with everyone dead this is the only way forward.
			c.admitParkedLocked(seq)
		}
		live := c.liveLocked()
		if len(live) == 0 {
			if err := c.waitLocked(deadline); err != nil {
				c.curSeq = 0
				return fmt.Errorf("%w: %s", ErrNoWorkers, "all workers lost mid-batch")
			}
			continue
		}
		c.epoch++
		c.dirty = false
		c.collect = nil
		part := dflow.NewPartitionFromParents(parentStart, c.cfg.flowCap())
		assign := c.assignLocked(part, live)
		if reRun {
			c.rebalances.Inc()
		}
		bs := encodeBatchStart(wireBatchStart{
			Seq: seq, Epoch: c.epoch, Applied: applied,
			Trimmed: trimmed, Assign: assign, ReRun: reRun,
		})
		for _, w := range live {
			w.fwd, w.recvUp, w.idle = 0, 0, nil
			if err := w.link.Send(bs); err != nil {
				c.markDeadLocked(w, err)
			}
		}
		c.logf("coord: batch %d epoch %d: %d workers, %d flows, %d trimmed, rerun=%v",
			seq, c.epoch, len(live), part.NumFlows(), len(trimmed), reRun)

		// Wait for quiescence, a membership change, or the deadline.
		for !c.dirty && !c.quiescentLocked() {
			if err := c.waitLocked(deadline); err != nil {
				c.curSeq = 0
				return err
			}
		}
		if c.dirty {
			reRun = true
			continue
		}

		// Collect the converged state from the lowest live worker (every
		// replica equals the global fixpoint at quiescence).
		collector := c.liveLocked()[0]
		if err := collector.link.Send(encodeCollect(wireCollect{Epoch: c.epoch, Seq: seq})); err != nil {
			c.markDeadLocked(collector, err)
		}
		for !c.dirty && c.collect == nil {
			if err := c.waitLocked(deadline); err != nil {
				c.curSeq = 0
				return err
			}
		}
		if c.dirty {
			reRun = true
			continue
		}
		for _, r := range c.collect.Recs {
			if int(r.V) < len(c.vals) {
				c.vals[r.V] = r.Val
				c.parent[r.V] = r.Parent
			}
		}
		break
	}
	if !c.firstDeath.IsZero() {
		c.recoveryNs.Observe(time.Since(c.firstDeath).Nanoseconds())
		c.firstDeath = time.Time{}
	}
	c.boundarySeq = seq
	c.curSeq = 0

	// Checkpoint cadence: command every live worker, wait for the acks (a
	// worker dying here just drops out of the wait via the live set).
	if seq%uint64(c.cfg.ckptEvery()) == 0 {
		cmd := encodeCkpt(mtCkptCmd, wireCkpt{Seq: seq})
		for _, w := range c.liveLocked() {
			if err := w.link.Send(cmd); err != nil {
				c.markDeadLocked(w, err)
			}
		}
		for {
			done := true
			for _, w := range c.liveLocked() {
				if w.ckptDone < seq {
					done = false
				}
			}
			if done {
				break
			}
			if err := c.waitLocked(deadline); err != nil {
				return err
			}
		}
	}
	return nil
}

// assignLocked places flows round-robin over the live workers and rebuilds
// the owner table — the Manager's flow-worker table of §VI.
func (c *Coordinator) assignLocked(part *dflow.Partition, live []*coordWorker) []int32 {
	assign := make([]int32, part.NumFlows())
	if len(c.ownerTab) != c.g.NumVertices() {
		c.ownerTab = make([]int32, c.g.NumVertices())
	}
	for f := int32(0); int(f) < part.NumFlows(); f++ {
		w := live[int(f)%len(live)]
		assign[f] = w.id
		for _, v := range part.Members(f) {
			c.ownerTab[v] = w.id
		}
	}
	return assign
}

// Values returns the converged values collected at the last boundary.
func (c *Coordinator) Values() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.vals...)
}

// BoundarySeq returns the last completed batch sequence.
func (c *Coordinator) BoundarySeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.boundarySeq
}

// Close sends Bye to every worker and shuts the coordinator down.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var links []*link
	for _, w := range c.workers {
		if w.live {
			w.link.Send(encodeReason(mtBye, "coordinator closing"))
		}
		links = append(links, w.link)
	}
	c.mu.Unlock()
	// Give the Bye frames a moment on the wire before tearing links down.
	time.Sleep(50 * time.Millisecond)
	for _, l := range links {
		l.close()
	}
	return c.ln.Close()
}
