package dist

// Worker process runtime: the socket twin of the sim's clusterNode, run by
// cmd/graphfly-worker (or in-process by tests). A worker holds a full
// replica of the graph structure and the value/parent/trimmed arrays,
// computes its flow partition locally from the boundary parents (the
// partition is a deterministic function of the parent array, and every
// replica's parents agree at quiescent boundaries, so worker and
// coordinator derive identical flow tables without shipping them — only the
// flow -> worker assignment travels), processes its owned vertices with the
// same fused refine/recompute the sim uses, and routes everything
// cross-worker through the coordinator.
//
// Durability: every applied batch is fsynced into the worker's WAL before
// processing, and on CkptCmd the worker writes a frame-composed checkpoint
// (wckpt.go) carrying the KindDistCheckpoint state frame. After a kill -9,
// the restarted process rebuilds its graph from the newest intact
// checkpoint, replays the WAL tail structurally, and presents the recovered
// position in its hello; the coordinator tops it up with the missing batch
// tail and the authoritative boundary state.
//
// Shutdown: a cancelled context (SIGTERM/SIGINT in the binary) sends Bye,
// flushes the WAL, writes a final checkpoint, and exits cleanly.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/dflow"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// Dir holds the worker's WAL and checkpoints; created if missing.
	Dir string
	// ID is the worker id to present; -1 asks the coordinator to assign
	// one. Restarted workers should present their previous id so the
	// coordinator matches the rejoin to the dead membership slot.
	ID int
	// ConnectTimeout bounds the initial dial retry loop (default 30s).
	ConnectTimeout time.Duration
	// Link timer overrides (zero = defaults; must match the coordinator's
	// order of magnitude for heartbeats to make sense).
	HeartbeatEvery time.Duration
	RetransBase    time.Duration
	PeerTimeout    time.Duration
	MaxRetries     int
	// Metrics receives dist.* and wal.* instruments when non-nil.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives human-readable progress lines.
	Logf func(format string, args ...any)

	// HardStop (tests and chaos harnesses only) simulates kill -9: when it
	// closes, RunWorker returns at once with no bye, no WAL flush beyond
	// what already synced, and no final checkpoint — exactly the state a
	// SIGKILLed process leaves behind.
	HardStop <-chan struct{}
}

func (c WorkerConfig) connectTimeout() time.Duration {
	if c.ConnectTimeout <= 0 {
		return 30 * time.Second
	}
	return c.ConnectTimeout
}

func (c WorkerConfig) linkConfig() linkConfig {
	return linkConfig{
		HeartbeatEvery: c.HeartbeatEvery,
		RetransBase:    c.RetransBase,
		PeerTimeout:    c.PeerTimeout,
		MaxRetries:     c.MaxRetries,
	}
}

// mailbox is an unbounded FIFO the link reader pushes decoded messages
// into; the worker goroutine drains it. Never blocks the reader.
type mailbox struct {
	mu sync.Mutex
	q  []wmsg
	ch chan struct{}
}

type wmsg struct {
	mt   byte
	body []byte
}

func newMailbox() *mailbox { return &mailbox{ch: make(chan struct{}, 1)} }

func (m *mailbox) push(mt byte, body []byte) {
	m.mu.Lock()
	m.q = append(m.q, wmsg{mt: mt, body: body})
	m.mu.Unlock()
	select {
	case m.ch <- struct{}{}:
	default:
	}
}

func (m *mailbox) popAll() []wmsg {
	m.mu.Lock()
	q := m.q
	m.q = nil
	m.mu.Unlock()
	return q
}

// errByeReceived signals a graceful coordinator-initiated shutdown.
var errByeReceived = errors.New("dist: coordinator sent bye")

// outboxChunk bounds how many records ride in one mtData frame.
const outboxChunk = 1 << 16

// workerRt is the in-memory runtime of one worker process.
type workerRt struct {
	cfg   WorkerConfig
	store *workerStore
	link  *link

	id        int32
	g         *graph.Streaming
	alg       algo.Selective
	flowCap   int
	structSeq uint64
	welcomed  bool

	vals    []float64
	parent  []int32
	trimmed []bool
	owner   []int32
	mineID  int32
	peers   bool // any flow assigned to a different worker this attempt

	epoch uint64
	seq   uint64

	snapSeq     uint64
	snapValid   bool
	snapVals    []float64
	snapParent  []int32
	snapTrimmed []bool

	wl        []uint32
	inbox     []dataRec
	outbox    []dataRec
	processed uint64
	uploaded  uint64
	idleSentP uint64
	idleSentU uint64
	idleSent  bool
}

func (w *workerRt) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// RunWorker connects to the coordinator and processes batches until the
// context is cancelled (graceful shutdown), the coordinator says bye, or
// the link degrades to ErrPeerDown (the caller should exit nonzero so a
// supervisor can respawn the process).
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	store, err := openWorkerStore(cfg.Dir, reg)
	if err != nil {
		return err
	}
	defer store.close()

	w := &workerRt{cfg: cfg, store: store, id: int32(cfg.ID)}
	// Local recovery: newest intact checkpoint + structural WAL replay.
	ck, err := store.loadCkpt()
	if err != nil {
		return err
	}
	hasBase := false
	var ckptSeq uint64
	if ck != nil {
		w.g = graph.FromEdges(ck.NumV, ck.Edges)
		w.structSeq = ck.Seq
		ckptSeq = ck.Seq
		hasBase = true
		err := store.replay(ck.Seq, func(seq uint64, b graph.Batch) error {
			w.g.ApplyBatch(b)
			w.structSeq = seq
			return nil
		})
		if err != nil {
			return err
		}
		w.logf("worker: recovered base ckpt seq %d, wal tail through seq %d", ck.Seq, w.structSeq)
	}

	incarnation := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
	hello := encodeHello(wireHello{
		ID: w.id, Incarnation: incarnation,
		StructSeq: w.structSeq, CkptSeq: ckptSeq, HasBase: hasBase,
	})

	lcfg := cfg.linkConfig()
	dial := func() (net.Conn, error) {
		d := net.Dialer{Timeout: lcfg.peerTimeout()}
		return d.Dial("tcp", cfg.Addr)
	}
	conn, err := dialRetry(ctx, dial, cfg.connectTimeout())
	if err != nil {
		return fmt.Errorf("dist: worker connect: %w", err)
	}
	if err := wal.WriteFrame(conn, wkHello, hello); err != nil {
		conn.Close()
		return fmt.Errorf("dist: worker hello: %w", err)
	}

	mb := newMailbox()
	downCh := make(chan error, 1)
	l := newLink(lcfg, newLinkMetrics(reg),
		func(mt byte, body []byte) { mb.push(mt, body) },
		func(err error) { downCh <- err })
	l.dial = dial
	l.hello = hello
	l.attach(conn)
	w.link = l
	defer l.close()

	for {
		select {
		case <-ctx.Done():
			return w.shutdown()
		case <-cfg.HardStop:
			return errors.New("dist: worker hard-stopped (simulated crash)")
		case err := <-downCh:
			return err
		case <-mb.ch:
			for _, m := range mb.popAll() {
				if err := w.handle(m.mt, m.body); err != nil {
					if errors.Is(err, errByeReceived) {
						return nil
					}
					return err
				}
			}
		}
	}
}

// dialRetry dials until success, ctx cancellation, or the timeout — a
// worker often starts before the coordinator's listener is up.
func dialRetry(ctx context.Context, dial func() (net.Conn, error), timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := dial()
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// shutdown is the graceful exit path: announce, flush, final checkpoint.
func (w *workerRt) shutdown() error {
	w.link.Send(encodeReason(mtBye, "worker shutting down"))
	if w.welcomed {
		if err := w.store.checkpoint(w.structSeq, w.g, w.vals, w.parent); err != nil {
			return err
		}
	}
	w.logf("worker %d: graceful shutdown at seq %d", w.id, w.structSeq)
	return nil
}

func (w *workerRt) handle(mt byte, body []byte) error {
	if !w.welcomed && mt != mtWelcome && mt != mtBye && mt != mtJoinReject {
		return fmt.Errorf("dist: worker got message %d before welcome", mt)
	}
	switch mt {
	case mtWelcome:
		m, err := decodeWelcome(body)
		if err != nil {
			return err
		}
		return w.handleWelcome(m)
	case mtBatchStart:
		m, err := decodeBatchStart(body)
		if err != nil {
			return err
		}
		return w.handleBatchStart(m)
	case mtData:
		m, err := decodeData(body)
		if err != nil {
			return err
		}
		return w.handleData(m)
	case mtCollect:
		m, err := decodeCollect(body)
		if err != nil {
			return err
		}
		return w.handleCollect(m)
	case mtCkptCmd:
		m, err := decodeCkpt(body)
		if err != nil {
			return err
		}
		if err := w.store.checkpoint(m.Seq, w.g, w.vals, w.parent); err != nil {
			return err
		}
		return w.link.Send(encodeCkpt(mtCkptDone, m))
	case mtJoinReject:
		reason, _ := decodeReason(body)
		return fmt.Errorf("dist: join rejected: %s", reason)
	case mtBye:
		return errByeReceived
	default:
		return nil // unknown message: ignore for forward compatibility
	}
}

// handleWelcome installs the transferred state: either a full graph dump
// (fresh or divergent worker — the local store is wiped and re-based) or
// the batch tail the local WAL was missing.
func (w *workerRt) handleWelcome(m wireWelcome) error {
	alg, err := selectiveByName(m.AlgName, m.Source)
	if err != nil {
		return err
	}
	w.alg = alg
	w.id = m.ID
	w.flowCap = int(m.FlowCap)
	if m.Full {
		if err := w.store.wipe(); err != nil {
			return err
		}
		w.g = graph.FromEdges(int(m.NumV), m.Edges)
		w.structSeq = m.BatchSeq
	} else {
		if w.g == nil || w.structSeq+uint64(len(m.Catchup)) != m.BatchSeq {
			return fmt.Errorf("dist: welcome catchup %d batches onto seq %d cannot reach seq %d",
				len(m.Catchup), w.structSeq, m.BatchSeq)
		}
		for i, b := range m.Catchup {
			w.g.ApplyBatch(b)
			if err := w.store.appendBatch(w.structSeq+1+uint64(i), b); err != nil {
				return err
			}
		}
		w.structSeq = m.BatchSeq
	}
	if len(m.Vals) != w.g.NumVertices() || len(m.Parent) != w.g.NumVertices() {
		return fmt.Errorf("dist: welcome state arrays (%d/%d) disagree with %d vertices",
			len(m.Vals), len(m.Parent), w.g.NumVertices())
	}
	w.vals = append([]float64(nil), m.Vals...)
	w.parent = append([]int32(nil), m.Parent...)
	w.trimmed = make([]bool, w.g.NumVertices())
	w.snapValid = false
	if m.Full {
		// Re-base the wiped store so the next restart has a graph to
		// recover from even before the first commanded checkpoint.
		if err := w.store.checkpoint(w.structSeq, w.g, w.vals, w.parent); err != nil {
			return err
		}
	}
	w.welcomed = true
	w.logf("worker %d: welcomed at seq %d (full=%v, catchup=%d, %d vertices)",
		w.id, w.structSeq, m.Full, len(m.Catchup), w.g.NumVertices())
	return nil
}

// handleBatchStart begins one attempt of one batch: apply (or re-run)
// structure, derive the flow partition locally, install trims, seed
// addition candidates, and process to local quiescence.
func (w *workerRt) handleBatchStart(m wireBatchStart) error {
	switch {
	case !m.ReRun && m.Seq == w.structSeq+1:
		w.g.ApplyBatch(m.Applied)
		if err := w.store.appendBatch(m.Seq, m.Applied); err != nil {
			return err
		}
		w.structSeq = m.Seq
		w.snapshot(m.Seq)
	case m.Seq == w.structSeq:
		// A re-run attempt (or our first sight of a batch we had already
		// logged before dying). Roll values back to the batch-start
		// snapshot when we have one; otherwise the just-welcomed state IS
		// the batch-start state — snapshot it for any further re-run.
		if w.snapValid && w.snapSeq == m.Seq {
			copy(w.vals, w.snapVals)
			copy(w.parent, w.snapParent)
			copy(w.trimmed, w.snapTrimmed)
		} else {
			w.snapshot(m.Seq)
		}
	default:
		return fmt.Errorf("dist: batch-start seq %d (rerun=%v) does not follow local seq %d",
			m.Seq, m.ReRun, w.structSeq)
	}

	w.epoch = m.Epoch
	w.seq = m.Seq
	w.inbox = w.inbox[:0]
	w.wl = w.wl[:0]
	w.outbox = w.outbox[:0]
	w.processed, w.uploaded = 0, 0
	w.idleSent = false

	// Derive the flow table locally; the assignment length is the
	// cross-check that coordinator and worker computed the same partition.
	part := dflow.NewPartitionFromParents(w.parent, w.flowCap)
	if part.NumFlows() != len(m.Assign) {
		return fmt.Errorf("dist: local partition has %d flows, assignment has %d — replica divergence",
			part.NumFlows(), len(m.Assign))
	}
	if len(w.owner) != w.g.NumVertices() {
		w.owner = make([]int32, w.g.NumVertices())
	}
	w.peers = false
	for f := int32(0); int(f) < part.NumFlows(); f++ {
		o := m.Assign[f]
		if o != w.id {
			w.peers = true
		}
		for _, v := range part.Members(f) {
			w.owner[v] = o
		}
	}

	// Trim invalidations: flags everywhere, refinement work for the owner.
	for _, x := range m.Trimmed {
		if int(x) >= len(w.trimmed) {
			return fmt.Errorf("dist: trimmed vertex %d out of range", x)
		}
		w.trimmed[x] = true
		if w.owner[x] == w.id {
			w.wl = append(w.wl, x)
		}
	}
	// Addition candidates from owned, untrimmed sources.
	for _, u := range m.Applied {
		if u.Del || w.owner[u.Src] != w.id || w.trimmed[u.Src] {
			continue
		}
		cand := w.alg.Propagate(w.vals[u.Src], u.W)
		rec := dataRec{V: u.Dst, Parent: int32(u.Src), Val: cand}
		if w.owner[u.Dst] == w.id {
			w.inbox = append(w.inbox, rec)
		} else {
			w.outbox = append(w.outbox, rec)
		}
	}
	w.drainAndReport()
	return nil
}

// snapshot records the batch-start value state for rollback re-runs.
func (w *workerRt) snapshot(seq uint64) {
	w.snapSeq = seq
	w.snapValid = true
	w.snapVals = append(w.snapVals[:0], w.vals...)
	w.snapParent = append(w.snapParent[:0], w.parent...)
	w.snapTrimmed = append(w.snapTrimmed[:0], w.trimmed...)
}

func (w *workerRt) handleData(m wireData) error {
	if m.Epoch != w.epoch {
		return nil // stale attempt
	}
	w.processed += uint64(len(m.Recs))
	w.inbox = append(w.inbox, m.Recs...)
	w.drainAndReport()
	return nil
}

func (w *workerRt) handleCollect(m wireCollect) error {
	if m.Epoch != w.epoch || m.Seq != w.seq {
		return nil
	}
	recs := make([]collectRec, len(w.vals))
	for v := range w.vals {
		recs[v] = collectRec{V: uint32(v), Parent: w.parent[v], Val: w.vals[v]}
	}
	return w.link.Send(encodeCollectReply(wireCollectReply{Epoch: m.Epoch, Seq: m.Seq, Recs: recs}))
}

// drainAndReport processes until the inbox and worklist are empty, flushes
// the outbox upward, and reports idleness with the quiescence counters.
func (w *workerRt) drainAndReport() {
	for len(w.inbox) > 0 || len(w.wl) > 0 {
		inbox := w.inbox
		w.inbox = nil
		for _, r := range inbox {
			w.applyRec(r)
		}
		for head := 0; head < len(w.wl); head++ {
			w.processVertex(w.wl[head])
		}
		w.wl = w.wl[:0]
	}
	w.flushOutbox()
	if !w.idleSent || w.idleSentP != w.processed || w.idleSentU != w.uploaded {
		w.idleSent, w.idleSentP, w.idleSentU = true, w.processed, w.uploaded
		w.link.Send(encodeIdle(wireIdle{
			Epoch: w.epoch, Seq: w.seq, Processed: w.processed, Uploaded: w.uploaded,
		}))
	}
}

// applyRec is the inbox half of the sim's processNode.
func (w *workerRt) applyRec(r dataRec) {
	if int(r.V) >= len(w.vals) {
		return
	}
	if r.Shadow {
		// Shadow refresh: unconditional overwrite + revalidation, then
		// re-relax owned out-neighbours of the refreshed vertex.
		w.vals[r.V] = r.Val
		w.parent[r.V] = r.Parent
		w.trimmed[r.V] = false
		for _, h := range w.g.Out(r.V) {
			if w.owner[h.To] == w.id {
				cand := w.alg.Propagate(r.Val, h.W)
				if w.trimmed[h.To] {
					w.refine(h.To)
				}
				if w.alg.Better(cand, w.vals[h.To]) {
					w.update(h.To, cand, int32(r.V))
				}
			}
		}
		return
	}
	if w.trimmed[r.V] {
		w.refine(r.V)
	}
	if w.alg.Better(r.Val, w.vals[r.V]) {
		w.update(r.V, r.Val, r.Parent)
	}
}

// processVertex is the worklist half of the sim's processNode.
func (w *workerRt) processVertex(v uint32) {
	if w.trimmed[v] {
		w.refine(v)
	}
	uVal := w.vals[v]
	for _, h := range w.g.Out(v) {
		cand := w.alg.Propagate(uVal, h.W)
		t := h.To
		if w.owner[t] == w.id {
			if w.trimmed[t] {
				w.refine(t)
			}
			if w.alg.Better(cand, w.vals[t]) {
				w.update(t, cand, int32(v))
			}
		} else if w.trimmed[t] || w.alg.Better(cand, w.vals[t]) {
			w.outbox = append(w.outbox, dataRec{V: t, Parent: int32(v), Val: cand})
		}
	}
}

// refine resets an owned trimmed vertex from its local (possibly stale,
// always safe) view — the sim's refine/refineFrom with the base floor.
func (w *workerRt) refine(v uint32) {
	best := w.alg.Base(v)
	bestParent := int32(-1)
	for _, h := range w.g.In(v) {
		if w.trimmed[h.To] {
			continue
		}
		cand := w.alg.Propagate(w.vals[h.To], h.W)
		if w.alg.Better(cand, best) {
			best = cand
			bestParent = int32(h.To)
		}
	}
	w.vals[v] = best
	w.parent[v] = bestParent
	w.trimmed[v] = false
	w.wl = append(w.wl, v)
	w.broadcastShadow(v)
}

// update improves an owned vertex and broadcasts the change.
func (w *workerRt) update(v uint32, val float64, parent int32) {
	w.vals[v] = val
	w.parent[v] = parent
	w.wl = append(w.wl, v)
	w.broadcastShadow(v)
}

// broadcastShadow emits one shadow record; the coordinator fans it out to
// every other worker. Skipped when this worker owns every flow.
func (w *workerRt) broadcastShadow(v uint32) {
	if !w.peers {
		return
	}
	w.outbox = append(w.outbox, dataRec{V: v, Parent: w.parent[v], Val: w.vals[v], Shadow: true})
}

// flushOutbox ships accumulated records to the coordinator in bounded
// chunks and advances the uploaded counter.
func (w *workerRt) flushOutbox() {
	for len(w.outbox) > 0 {
		n := len(w.outbox)
		if n > outboxChunk {
			n = outboxChunk
		}
		chunk := w.outbox[:n]
		if err := w.link.Send(encodeData(wireData{Epoch: w.epoch, Recs: chunk})); err != nil {
			w.outbox = w.outbox[:0]
			return // link degraded; the main loop will exit via onDown
		}
		w.uploaded += uint64(n)
		w.outbox = w.outbox[n:]
	}
	w.outbox = w.outbox[:0]
}
