package dist

// Reliable link over a real net.Conn — the socket twin of reliable.go. The
// link gives the runtime the same contract the simulated layer gives the
// cost-model cluster: per-link FIFO delivery of sequenced messages, dedup by
// sequence number, cumulative acks, retransmission with exponential backoff,
// and capped retries that degrade to the typed ErrPeerDown instead of
// retransmitting forever.
//
// TCP already provides ordering and retransmission *within one connection*;
// the link exists for what TCP does not survive: the connection dying. Seq
// state (nextSeq, pending, nextExpect, reorder buffer) lives in the link,
// not the conn, so a soft reconnect — client redial, or server re-attach of
// a fresh conn carrying the same (id, incarnation) hello — resumes exactly
// where the old socket broke: pending frames are retransmitted, duplicates
// the peer already delivered are dropped by seq, and FIFO order is
// preserved across the splice. Only a hard reset (a peer restarting with a
// new incarnation) zeroes the sequence space, and that is a membership
// event handled above this layer.
//
// Down conversion mirrors the sim semantics: a pending frame retransmitted
// MaxRetries times, or a link left without a usable conn (or without any
// inbound frame) past PeerTimeout, marks the link down, fires onDown(
// ErrPeerDown) exactly once, and refuses further sends. The membership
// layer then treats the peer as crashed.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wal"
)

// linkConfig tunes one link's timers. The zero value picks defaults suited
// to localhost chaos tests: fast enough that a SIGKILL is detected in well
// under a second, slow enough that a loaded CI machine does not false-positive.
type linkConfig struct {
	HeartbeatEvery time.Duration // ping cadence while attached (default 100ms)
	RetransBase    time.Duration // base retransmit timeout (default 150ms)
	MaxRetries     int           // retransmissions per frame before down (default 16)
	PeerTimeout    time.Duration // silence / detachment tolerated before down (default 2s)
	Tick           time.Duration // timer goroutine resolution (default 25ms)
}

func (c linkConfig) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery <= 0 {
		return 100 * time.Millisecond
	}
	return c.HeartbeatEvery
}

func (c linkConfig) retransBase() time.Duration {
	if c.RetransBase <= 0 {
		return 150 * time.Millisecond
	}
	return c.RetransBase
}

func (c linkConfig) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 16
	}
	return c.MaxRetries
}

func (c linkConfig) peerTimeout() time.Duration {
	if c.PeerTimeout <= 0 {
		return 2 * time.Second
	}
	return c.PeerTimeout
}

func (c linkConfig) tick() time.Duration {
	if c.Tick <= 0 {
		return 25 * time.Millisecond
	}
	return c.Tick
}

// linkMetrics bundles the dist.* counters a link reports into. Built via
// newLinkMetrics so every field is always non-nil.
type linkMetrics struct {
	retransmits *metrics.Counter // dist.retransmits
	reconnects  *metrics.Counter // dist.reconnects
	peerDown    *metrics.Counter // dist.peer_down
	dups        *metrics.Counter // dist.dups_discarded
}

func newLinkMetrics(reg *metrics.Registry) linkMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return linkMetrics{
		retransmits: reg.Counter("dist.retransmits"),
		reconnects:  reg.Counter("dist.reconnects"),
		peerDown:    reg.Counter("dist.peer_down"),
		dups:        reg.Counter("dist.dups_discarded"),
	}
}

// linkPending is one unacked sequenced frame awaiting acknowledgment.
type linkPending struct {
	seq     uint64
	frame   []byte // complete encoded wkMsg frame, ready to rewrite
	sentAt  time.Time
	retries int
}

// link is one reliable peer connection. Safe for concurrent use; onMsg is
// invoked from the reader goroutine, strictly in sequence order, without
// any link lock held (so handlers may call Send).
type link struct {
	cfg linkConfig
	met linkMetrics

	// onMsg receives each application message exactly once, in FIFO order.
	onMsg func(msgType byte, body []byte)
	// onDown fires exactly once when the link degrades to ErrPeerDown. It
	// runs on the timer goroutine and must not block for long.
	onDown func(err error)
	// dial, when non-nil, makes this the client side: the link redials on
	// conn failure and replays the hello before resuming.
	dial  func() (net.Conn, error)
	hello []byte // encoded wkHello payload resent on every successful dial

	deliverMu sync.Mutex // serializes in-order flush + onMsg across conn swaps

	mu         sync.Mutex
	conn       net.Conn
	connGen    uint64 // bumped per attach; readers exit when theirs is stale
	nextSeq    uint64
	pending    []linkPending
	nextExpect uint64
	reorder    map[uint64][]byte
	lastRecv   time.Time
	lastPing   time.Time
	detachedAt time.Time // when the link last lost its conn; zero while attached
	redialing  bool
	down       bool
	downErr    error
	closed     bool
	stop       chan struct{}
}

// newLink builds a link and starts its timer goroutine. Attach a conn with
// attach() (server side) or let it dial (client side, dial != nil).
func newLink(cfg linkConfig, met linkMetrics, onMsg func(byte, []byte), onDown func(error)) *link {
	l := &link{
		cfg:        cfg,
		met:        met,
		onMsg:      onMsg,
		onDown:     onDown,
		reorder:    make(map[uint64][]byte),
		lastRecv:   time.Now(),
		detachedAt: time.Now(),
		stop:       make(chan struct{}),
	}
	go l.timerLoop()
	return l
}

// attach splices a live conn into the link (initial connect or soft
// reconnect). The previous conn, if any, is closed; pending frames are
// retransmitted on the new conn so nothing sent during the outage is lost.
func (l *link) attach(conn net.Conn) {
	l.mu.Lock()
	if l.closed || l.down {
		l.mu.Unlock()
		conn.Close()
		return
	}
	if l.conn != nil {
		l.conn.Close()
	}
	l.conn = conn
	l.connGen++
	gen := l.connGen
	l.detachedAt = time.Time{}
	l.lastRecv = time.Now()
	// Replay the entire pending queue: the peer dedups anything the dead
	// conn actually delivered, and in-flight order is preserved because the
	// queue is kept in ascending seq order.
	for i := range l.pending {
		l.pending[i].sentAt = time.Now()
		l.writeFrameLocked(conn, l.pending[i].frame)
	}
	l.mu.Unlock()
	go l.readLoop(conn, gen)
}

// reset hard-resets the sequence space (peer restarted with a new
// incarnation: its link state is gone, so ours must go too). Pending frames
// are dropped — the membership layer re-transfers state instead.
func (l *link) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq = 0
	l.nextExpect = 0
	l.pending = nil
	l.reorder = make(map[uint64][]byte)
}

// Send enqueues one sequenced application message; msg[0] is the message
// type, as the wire encoders produce. The frame is tracked for
// retransmission until cumulatively acked; if the link currently has no
// conn the frame waits in pending and goes out on re-attach. Returns
// ErrPeerDown once the link has degraded.
func (l *link) Send(msg []byte) error {
	l.mu.Lock()
	if l.down {
		l.mu.Unlock()
		return fmt.Errorf("send: %w", l.downErr)
	}
	if l.closed {
		l.mu.Unlock()
		return errors.New("send: link closed")
	}
	seq := l.nextSeq
	l.nextSeq++
	payload := make([]byte, 0, 8+len(msg))
	payload = binary.LittleEndian.AppendUint64(payload, seq)
	payload = append(payload, msg...)
	frame := wal.AppendFrame(nil, wkMsg, payload)
	l.pending = append(l.pending, linkPending{seq: seq, frame: frame, sentAt: time.Now()})
	conn := l.conn
	if conn != nil {
		l.writeFrameLocked(conn, frame)
	}
	l.mu.Unlock()
	return nil
}

// writeFrameLocked writes one pre-encoded frame with a bounded deadline.
// Called with l.mu held; a write failure detaches the conn (the reader will
// also notice, but detaching here stops further writes into a dead pipe).
func (l *link) writeFrameLocked(conn net.Conn, frame []byte) {
	conn.SetWriteDeadline(time.Now().Add(l.cfg.peerTimeout()))
	if _, err := conn.Write(frame); err != nil {
		l.detachLocked(conn)
	}
}

// sendControl writes one unsequenced control frame (ack/ping/pong/hello).
// Control frames are fire-and-forget: loss is repaired by retransmission
// (acks) or the next tick (pings).
func (l *link) sendControl(kind byte, payload []byte) {
	l.mu.Lock()
	if conn := l.conn; conn != nil && !l.down && !l.closed {
		l.writeFrameLocked(conn, wal.AppendFrame(nil, kind, payload))
	}
	l.mu.Unlock()
}

// detachLocked drops the current conn (if it is still the given one) and
// starts the detachment clock. Client links begin redialing from the timer
// loop; server links wait for the peer to re-attach.
func (l *link) detachLocked(conn net.Conn) {
	if l.conn != conn || l.conn == nil {
		return
	}
	l.conn.Close()
	l.conn = nil
	l.detachedAt = time.Now()
}

// readLoop decodes frames off one conn until it dies or is superseded.
func (l *link) readLoop(conn net.Conn, gen uint64) {
	for {
		conn.SetReadDeadline(time.Now().Add(l.cfg.peerTimeout()))
		kind, payload, err := wal.ReadFrame(conn)
		l.mu.Lock()
		stale := l.connGen != gen || l.closed || l.down
		if stale {
			l.mu.Unlock()
			return
		}
		if err != nil {
			l.detachLocked(conn)
			l.mu.Unlock()
			return
		}
		l.lastRecv = time.Now()
		l.mu.Unlock()
		switch kind {
		case wkMsg:
			l.handleData(payload)
		case wkAck:
			if len(payload) == 8 {
				l.handleAck(binary.LittleEndian.Uint64(payload))
			}
		case wkPing:
			l.sendControl(wkPong, nil)
		case wkPong:
			// lastRecv already updated; nothing else to do.
		default:
			// Unknown control frame: ignore for forward compatibility. A
			// corrupt frame cannot reach here — ReadFrame checksums it.
		}
	}
}

// handleData inserts one sequenced frame into the reorder buffer, flushes
// the in-order prefix to onMsg, and acks cumulatively. deliverMu spans the
// flush AND the callbacks so deliveries from consecutive conns cannot
// interleave out of order.
func (l *link) handleData(payload []byte) {
	if len(payload) < 9 {
		return // malformed; unrecoverable but harmless to skip
	}
	seq := binary.LittleEndian.Uint64(payload[:8])
	msg := payload[8:]
	l.deliverMu.Lock()
	l.mu.Lock()
	if seq < l.nextExpect {
		l.met.dups.Inc() // stale retransmit: already delivered, ack was lost
	} else if _, dup := l.reorder[seq]; dup {
		l.met.dups.Inc()
	} else {
		l.reorder[seq] = msg
	}
	var flush [][]byte
	for {
		m, ok := l.reorder[l.nextExpect]
		if !ok {
			break
		}
		delete(l.reorder, l.nextExpect)
		l.nextExpect++
		flush = append(flush, m)
	}
	ack := l.nextExpect
	l.mu.Unlock()
	for _, m := range flush {
		if len(m) >= 1 && l.onMsg != nil {
			l.onMsg(m[0], m[1:])
		}
	}
	l.deliverMu.Unlock()
	var ackBuf [8]byte
	binary.LittleEndian.PutUint64(ackBuf[:], ack)
	l.sendControl(wkAck, ackBuf[:])
}

// handleAck trims every pending frame below the cumulative ack.
func (l *link) handleAck(ackSeq uint64) {
	l.mu.Lock()
	keep := l.pending[:0]
	for _, p := range l.pending {
		if p.seq >= ackSeq {
			keep = append(keep, p)
		}
	}
	l.pending = keep
	l.mu.Unlock()
}

// timerLoop drives heartbeats, retransmission, redial, and down detection.
func (l *link) timerLoop() {
	t := time.NewTicker(l.cfg.tick())
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case now := <-t.C:
			if l.tickOnce(now) {
				return
			}
		}
	}
}

// tickOnce runs one timer pass; returns true when the link is finished.
func (l *link) tickOnce(now time.Time) bool {
	l.mu.Lock()
	if l.closed || l.down {
		l.mu.Unlock()
		return true
	}
	var downErr error
	conn := l.conn
	if conn != nil {
		// Heartbeat + inbound-silence watchdog.
		if now.Sub(l.lastPing) >= l.cfg.heartbeatEvery() {
			l.lastPing = now
			l.writeFrameLocked(conn, wal.AppendFrame(nil, wkPing, nil))
			conn = l.conn // write failure may have detached
		}
		if conn != nil && now.Sub(l.lastRecv) > l.cfg.peerTimeout() {
			l.detachLocked(conn)
			conn = nil
		}
	}
	if conn != nil {
		// Retransmit pass with exponential backoff; capped retries degrade
		// to ErrPeerDown exactly like retransmitRound in the sim layer.
		maxR := l.cfg.maxRetries()
		base := l.cfg.retransBase()
		for i := range l.pending {
			p := &l.pending[i]
			if p.retries >= maxR {
				downErr = fmt.Errorf("seq %d after %d retransmits: %w", p.seq, p.retries, ErrPeerDown)
				break
			}
			shift := p.retries
			if shift > 6 {
				shift = 6
			}
			if now.Sub(p.sentAt) >= base<<uint(shift) {
				p.sentAt = now
				p.retries++
				l.met.retransmits.Inc()
				l.writeFrameLocked(conn, p.frame)
				if l.conn == nil {
					break // write failed and detached; stop the pass
				}
			}
		}
	} else {
		// Detached. A client link redials; both sides give up for good once
		// the outage outlasts PeerTimeout.
		if now.Sub(l.detachedAt) > l.cfg.peerTimeout() {
			downErr = fmt.Errorf("no connection for %v: %w", now.Sub(l.detachedAt).Round(time.Millisecond), ErrPeerDown)
		} else if l.dial != nil && !l.redialing {
			l.redialing = true
			go l.redial()
		}
	}
	if downErr != nil {
		l.markDownLocked(downErr)
		l.mu.Unlock()
		return true
	}
	l.mu.Unlock()
	return false
}

// redial attempts one reconnect (client side). Runs off the timer goroutine;
// the redialing flag makes attempts sequential, and the timer keeps
// scheduling new attempts until re-attach succeeds or PeerTimeout elapses.
func (l *link) redial() {
	conn, err := l.dial()
	l.mu.Lock()
	l.redialing = false
	if l.closed || l.down || l.conn != nil {
		l.mu.Unlock()
		if err == nil {
			conn.Close()
		}
		return
	}
	l.mu.Unlock()
	if err != nil {
		return // timer loop schedules the next attempt
	}
	// Re-introduce ourselves, then splice the conn in. The hello carries the
	// same incarnation, so the far side re-attaches instead of resetting.
	if werr := wal.WriteFrame(conn, wkHello, l.hello); werr != nil {
		conn.Close()
		return
	}
	l.met.reconnects.Inc()
	l.attach(conn)
}

// markDownLocked finalizes degradation: one ErrPeerDown, no further sends.
func (l *link) markDownLocked(err error) {
	l.down = true
	l.downErr = err
	l.met.peerDown.Inc()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	if l.onDown != nil {
		cb := l.onDown
		l.onDown = nil
		go cb(err)
	}
}

// close shuts the link down without an onDown event (graceful path).
func (l *link) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
	close(l.stop)
}

// isDown reports whether the link has degraded.
func (l *link) isDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}
