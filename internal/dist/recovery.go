package dist

import "repro/internal/graph"

// Crash recovery. Workers are crash-stop: at a round boundary a worker
// loses its volatile state and falls silent. The Manager notices the
// missing heartbeats after DetectRounds rounds, announces the death
// (control plane, reliable), and rebuilds the lost flows on the survivors:
//
//  1. purge the network and link state involving the dead worker;
//  2. reassign its flows round-robin over the survivors (flow-worker
//     table update);
//  3. restore each lost vertex at its new owner from the last checkpoint —
//     trimmed with forced refinement if the Manager trimmed it since the
//     commit or its checkpoint-time support chain lost an edge (checkpoint.go
//     explains why both conditions are required for soundness), otherwise by
//     a refinement floored at the still-achievable checkpoint value;
//  4. invalidate every survivor's shadow of a lost vertex, so pre-crash
//     shadow copies — which may reflect lost state that recovery rolls
//     back — can neither satisfy pulls nor suppress re-pushed candidates;
//  5. replay the in-flight work from the upstream backups: survivors
//     resend logged candidates aimed at lost vertices, and senders whose
//     own value may have changed since logging (trimmed since the
//     checkpoint) are re-enqueued instead so they push their *current*
//     value rather than a stale logged one.
//
// Every lost vertex is re-enqueued at its new owner, so its influence
// re-derives locally even when the entire improvement chain lived on the
// dead worker. Rejoins happen at the next batch boundary via a full state
// transfer, the same mechanism as the initial seeding.

// injectCrashes fires scheduled and random crash decisions for the current
// (batch, round).
func (c *Cluster) injectCrashes() {
	for _, cp := range c.fc.CrashSchedule {
		if cp.Batch == c.batches && cp.Round == c.round && cp.Node >= 0 && cp.Node < len(c.nodes) {
			c.crashNode(cp.Node)
		}
	}
	if v := c.inj.randomCrash(c.liveIDs()); v >= 0 {
		c.crashNode(v)
	}
}

// crashNode kills a worker: all volatile state is gone, in-flight packets
// FROM it stay in the network (they were already on the wire), and nothing
// else happens until the Manager times out its heartbeats. The last live
// worker never crashes.
func (c *Cluster) crashNode(d int) {
	if !c.live[d] || len(c.liveIDs()) <= 1 {
		return
	}
	n := c.nodes[d]
	n.inbox, n.wl = nil, nil
	n.replayLog = n.replayLog[:0]
	for p := range c.nodes {
		n.resetLink(p)
	}
	c.live[d] = false
	c.detected[d] = false
	c.crashRound[d] = c.round
	c.Stats.Crashes++
}

// detectAndRecover is the Manager's heartbeat timeout: a worker silent for
// DetectRounds rounds is declared dead and its flows are recovered.
func (c *Cluster) detectAndRecover() {
	for d := range c.nodes {
		if c.live[d] || c.detected[d] {
			continue
		}
		if c.round-c.crashRound[d] >= c.fc.detectRounds() {
			c.detected[d] = true
			c.recoverWorker(d)
		}
	}
}

// recoverWorker reassigns a dead worker's flows to the survivors and
// reconstructs their state (steps 1–5 above).
func (c *Cluster) recoverWorker(d int) {
	// 1. Purge everything in flight to or from the dead worker and reset
	// the survivors' link state with it.
	c.purgeNode(d)
	for _, n := range c.nodes {
		if c.live[n.id] {
			n.resetLink(d)
		}
	}

	// 2. Reassign the dead worker's flows via the flow-worker table.
	live := c.liveIDs()
	rr := 0
	var recovered []uint32
	for f := int32(0); int(f) < len(c.flowNode); f++ {
		if int(c.flowNode[f]) != d {
			continue
		}
		n := int32(live[rr%len(live)])
		rr++
		c.flowNode[f] = n
		for _, v := range c.part.Members(f) {
			c.owner[v] = n
			recovered = append(recovered, v)
		}
	}
	recovered = sortedCopy(recovered)
	recSet := make([]bool, c.G.NumVertices())
	for _, v := range recovered {
		recSet[v] = true
	}

	// 4 (before 3 so the new owner's bit wins). Invalidate survivors'
	// shadows of every lost vertex.
	for _, n := range c.nodes {
		if !c.live[n.id] {
			continue
		}
		for _, v := range recovered {
			n.trimmed[v] = true
		}
	}

	// 3. Restore from the checkpoint at the new owners. A checkpoint value
	// is only achievable if its checkpoint-time support chain survived every
	// deletion since the commit. The per-vertex trim history alone cannot
	// decide that: trims walk the *current* forest, so a vertex that had
	// already migrated to a better chain escapes the trim even when its
	// checkpoint chain breaks — rolling it back would resurrect an
	// unreachable value. chainBroken validates the checkpoint chain against
	// the deletion log directly. Broken (or trimmed-since-commit) vertices
	// restore with the invalid bit and refine from scratch off the worklist;
	// intact vertices restore by a refinement *floored* at the checkpoint
	// value — the pull over the new owner's local shadows re-derives any
	// improvement whose original push the sender's shadow filter suppressed
	// (the improved value already lived at the dead worker, so no survivor
	// ever logged it), and its broadcast revalidates the survivors' shadows.
	chainState := make([]uint8, c.G.NumVertices())
	delSet := make(map[[2]uint32]bool, len(c.delLog))
	for _, u := range c.delLog {
		delSet[[2]uint32{uint32(u.Src), uint32(u.Dst)}] = true
	}
	for _, v := range recovered {
		nb := c.nodes[c.owner[v]]
		nb.vals[v] = c.ckpt.vals[v]
		nb.parent[v] = c.ckpt.parent[v]
		if c.trimSinceCkpt[v] || c.chainBroken(v, chainState, delSet) {
			nb.trimmed[v] = true
			nb.wl = append(nb.wl, v)
		} else {
			c.refineFrom(nb, v, c.ckpt.vals[v], c.ckpt.parent[v])
		}
	}
	c.Stats.RecoveredVerts += int64(len(recovered))

	// 5. Upstream-backup replay.
	seeded := make([]bool, c.G.NumVertices())
	seed := func(u uint32) {
		if recSet[u] || seeded[u] {
			return // lost vertices are already re-enqueued at their new owner
		}
		seeded[u] = true
		nd := c.nodes[c.owner[u]]
		nd.wl = append(nd.wl, u)
		c.Stats.ReplaySeeds++
	}
	// Additions whose candidate may only ever have existed inside the dead
	// worker: re-enqueue the source so it re-pushes with its current value.
	for _, u := range c.addLog {
		if recSet[u.Dst] {
			seed(uint32(u.Src))
		}
	}
	// Survivors replay logged candidates aimed at lost vertices. A logged
	// value must not be resent verbatim — the edge that carried it may have
	// been deleted (or deleted and re-added at another weight) since the
	// send, making the old candidate unachievable. Instead the candidate is
	// recomputed from the sender's *current* authoritative value over the
	// *current* edge, which is safe whenever the sender was never trimmed
	// since the commit (its value can only have improved, so the recomputed
	// candidate still over-approximates an achievable one). A trimmed-since
	// sender is re-enqueued to regenerate from scratch, and a vanished edge
	// means the influence no longer exists at all.
	for _, n := range c.nodes {
		if !c.live[n.id] {
			continue
		}
		for _, m := range n.replayLog {
			if !recSet[m.v] || m.parent < 0 {
				continue
			}
			u := uint32(m.parent)
			if recSet[u] {
				continue
			}
			if c.trimSinceCkpt[u] {
				seed(u)
				continue
			}
			w, ok := c.G.HasEdge(graph.VertexID(u), graph.VertexID(m.v))
			if !ok {
				continue
			}
			cand := c.Alg.Propagate(c.nodes[c.owner[u]].vals[u], w)
			c.sendMsg(n.id, int(c.owner[m.v]), clusterMsg{v: m.v, val: cand, parent: int32(u)}, false)
			c.Stats.ReplayedMsgs++
		}
	}
}

// chainBroken reports whether v's checkpoint-time support chain lost an edge
// to a deletion since the commit (a deleted-then-re-added edge counts as
// broken — the new weight need not match the old one). state memoizes
// verdicts across one recovery (0 unknown, 1 intact, 2 broken); the
// checkpoint parents form a forest, so the walk terminates at a root.
func (c *Cluster) chainBroken(v uint32, state []uint8, delSet map[[2]uint32]bool) bool {
	var path []uint32
	cur := v
	for state[cur] == 0 {
		p := c.ckpt.parent[cur]
		if p < 0 {
			state[cur] = 1
			break
		}
		if delSet[[2]uint32{uint32(p), cur}] {
			state[cur] = 2
			break
		}
		path = append(path, cur)
		cur = uint32(p)
	}
	res := state[cur]
	for _, x := range path {
		state[x] = res
	}
	return res == 2
}

// rejoinDead re-admits crashed workers at the batch boundary with a full
// state transfer (values, key edges, fresh links), then rebalances the
// flow-worker table over the restored worker set.
func (c *Cluster) rejoinDead() {
	if c.fc.NoRejoin {
		return
	}
	var vals []float64
	rejoined := false
	for d := range c.nodes {
		if c.live[d] {
			continue
		}
		if vals == nil {
			vals = c.Values()
		}
		n := c.nodes[d]
		copy(n.vals, vals)
		copy(n.parent, c.parent)
		for i := range n.trimmed {
			n.trimmed[i] = false
		}
		n.inbox, n.wl = nil, nil
		n.replayLog = n.replayLog[:0]
		for p := range c.nodes {
			n.resetLink(p)
			if c.live[p] {
				c.nodes[p].resetLink(d)
			}
		}
		c.live[d] = true
		c.detected[d] = false
		c.crashRound[d] = 0
		c.Stats.Rejoins++
		rejoined = true
	}
	if rejoined {
		c.partition(c.part.Cap)
	}
}
