package dist

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

func syntheticTrace() *engine.WorkTrace {
	t := &engine.WorkTrace{
		FlowWork: map[int32]int64{},
		FlowMsgs: map[[2]int32]int64{},
	}
	for f := int32(0); f < 64; f++ {
		t.FlowWork[f] = int64(1_000_000 + 100_000*int(f%7))
	}
	for f := int32(0); f < 63; f++ {
		t.FlowMsgs[[2]int32{f, f + 1}] = 50
	}
	return t
}

func TestPlaceCoversAllFlows(t *testing.T) {
	tr := syntheticTrace()
	for _, s := range []Strategy{RoundRobin, LPT, LocalityLPT} {
		pl := Place(tr, 4, s)
		if len(pl.NodeOf) != len(tr.FlowWork) {
			t.Fatalf("%v: placed %d of %d flows", s, len(pl.NodeOf), len(tr.FlowWork))
		}
		for f, n := range pl.NodeOf {
			if n < 0 || n >= 4 {
				t.Fatalf("%v: flow %d on invalid node %d", s, f, n)
			}
		}
	}
}

func TestLPTBalances(t *testing.T) {
	tr := syntheticTrace()
	pl := Place(tr, 4, LPT)
	load := make([]int64, 4)
	for f, n := range pl.NodeOf {
		load[n] += tr.FlowWork[f]
	}
	minL, maxL := load[0], load[0]
	for _, l := range load[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if float64(maxL) > 1.2*float64(minL) {
		t.Fatalf("LPT imbalance: %v", load)
	}
}

func TestLocalityReducesCrossMsgs(t *testing.T) {
	tr := syntheticTrace()
	cm := DefaultCostModel()
	rr := Simulate(tr, Place(tr, 4, RoundRobin), cm, false)
	loc := Simulate(tr, Place(tr, 4, LocalityLPT), cm, false)
	if loc.CrossMsgs >= rr.CrossMsgs {
		t.Fatalf("locality placement did not reduce cross messages: %d vs %d",
			loc.CrossMsgs, rr.CrossMsgs)
	}
}

func TestSimulateScalesDown(t *testing.T) {
	tr := syntheticTrace()
	cm := DefaultCostModel()
	times := Sweep(tr, 8, cm, LocalityLPT, true)
	if times[0] <= times[3] {
		t.Fatalf("4 nodes not faster than 1: %v", times)
	}
	for _, x := range times {
		if x <= 0 {
			t.Fatalf("non-positive makespan: %v", times)
		}
	}
}

func TestWorkStealingHelpsOnSkew(t *testing.T) {
	// One giant flow + many small ones on round-robin placement.
	tr := &engine.WorkTrace{
		FlowWork: map[int32]int64{0: 1_000_000},
		FlowMsgs: map[[2]int32]int64{},
	}
	for f := int32(1); f < 32; f++ {
		tr.FlowWork[f] = 100
	}
	cm := DefaultCostModel()
	pl := Place(tr, 4, RoundRobin)
	noSteal := Simulate(tr, pl, cm, false)
	steal := Simulate(tr, pl, cm, true)
	if steal.MakespanNs >= noSteal.MakespanNs {
		t.Fatalf("stealing did not help: %v vs %v", steal.MakespanNs, noSteal.MakespanNs)
	}
	if steal.StolenWorkNs <= 0 {
		t.Fatal("no work recorded as stolen")
	}
}

func TestSimulateAccountsMessages(t *testing.T) {
	tr := &engine.WorkTrace{
		FlowWork: map[int32]int64{0: 10, 1: 10},
		FlowMsgs: map[[2]int32]int64{{0, 1}: 100},
	}
	cm := DefaultCostModel()
	// Same node: all local.
	pl := Placement{NodeOf: map[int32]int{0: 0, 1: 0}, Nodes: 2}
	r := Simulate(tr, pl, cm, false)
	if r.CrossMsgs != 0 || r.LocalMsgs != 100 {
		t.Fatalf("same-node messages misclassified: %+v", r)
	}
	// Different nodes: all cross, makespan grows.
	pl2 := Placement{NodeOf: map[int32]int{0: 0, 1: 1}, Nodes: 2}
	r2 := Simulate(tr, pl2, cm, false)
	if r2.CrossMsgs != 100 || r2.LocalMsgs != 0 {
		t.Fatalf("cross-node messages misclassified: %+v", r2)
	}
	if r2.MakespanNs <= r.MakespanNs {
		t.Fatal("communication cost did not raise the makespan")
	}
}

func TestMergeTraces(t *testing.T) {
	a := &engine.WorkTrace{
		FlowWork: map[int32]int64{1: 5},
		FlowMsgs: map[[2]int32]int64{{1, 2}: 3},
	}
	b := &engine.WorkTrace{
		FlowWork: map[int32]int64{1: 7, 2: 1},
		FlowMsgs: map[[2]int32]int64{{1, 2}: 4},
	}
	m := MergeTraces([]*engine.WorkTrace{a, nil, b})
	if m.FlowWork[1] != 12 || m.FlowWork[2] != 1 {
		t.Fatalf("work merge wrong: %+v", m.FlowWork)
	}
	if m.FlowMsgs[[2]int32{1, 2}] != 7 {
		t.Fatalf("msg merge wrong: %+v", m.FlowMsgs)
	}
}

// End-to-end: drive the real engine with tracing on and verify the
// distributed sweep produces a sane declining curve (Fig 16's shape).
func TestEndToEndTraceSweep(t *testing.T) {
	cfg := gen.TestDataset(61)
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.DefaultStream(300, 3, 62))
	g := graph.FromEdges(w.NumV, w.Initial)
	e := engine.NewSelective(g, algo.SSSP{Src: 0}, engine.Config{Workers: 2, FlowCap: 64, TraceWork: true})
	var traces []*engine.WorkTrace
	for _, b := range w.Batches {
		st := e.ProcessBatch(b)
		traces = append(traces, st.Trace)
	}
	merged := MergeTraces(traces)
	if len(merged.FlowWork) == 0 {
		t.Fatal("engine produced an empty trace")
	}
	// Small test graphs carry little compute per message, so use a
	// compute-heavy cost model (matching the paper's 1M-10M batches where
	// computation dominates) to expose the scaling shape.
	cm := DefaultCostModel()
	cm.EdgeOpNs = 4000
	times := Sweep(merged, 16, cm, LocalityLPT, true)
	if times[0] < times[7] {
		t.Fatalf("8 nodes slower than 1 on a real trace: %v", times)
	}
}
