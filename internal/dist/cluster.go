package dist

import (
	"repro/internal/algo"
	"repro/internal/dflow"
	"repro/internal/etree"
	"repro/internal/graph"
)

// Cluster is a functional simulation of the distributed GraphFly protocol
// of §VI for selective algorithms: a Manager node plus worker nodes that
// exchange *only messages* about vertex values. Each node owns the
// authoritative values of the flows placed on it (the flow-worker table)
// and keeps stale shadow copies of remote values that are refreshed only
// by incoming messages — exactly the consistency model a shared-nothing
// deployment has. The graph *structure* is replicated on every node
// (a documented simplification; the paper also replicates enough structure
// for local traversal, migrating flow data only for load balance).
//
// Safety under staleness: for monotonic algorithms a stale shadow is an
// over-approximation of the true value, and over-approximations are
// exactly what trimming already produces, so pulls over shadows stay safe;
// trim invalidations are broadcast before processing, and a shadow's
// invalid bit is cleared only by the shadow update that carries the
// owner's post-refinement value. Candidates pushed by owners eventually
// deliver every improvement, so the cluster converges to the same fixpoint
// as the single-machine engine (tested bit-exact).
//
// Timing is NOT modeled here — that is Simulate's job; Cluster demonstrates
// protocol correctness (message routing, ownership, shadow coherence,
// Manager-coordinated termination).
type Cluster struct {
	NumNodes int
	G        *graph.Streaming
	Alg      algo.Selective

	part  *dflow.Partition
	owner []int32 // vertex -> node

	kf     *etree.KeyForest // Manager-side dependence forest
	parent []int32          // Manager's collected key edges

	nodes []*clusterNode

	// Stats for the batch most recently processed.
	LastCrossMsgs int64
	LastRounds    int
}

type clusterMsg struct {
	v      uint32
	val    float64
	parent int32
	shadow bool // shadow refresh (apply unconditionally, clear invalid bit)
}

type clusterNode struct {
	id      int
	vals    []float64 // authoritative for owned, shadow otherwise
	trimmed []bool    // owned: live flag; shadow: cleared by shadow updates
	parent  []int32   // owned vertices only
	inbox   []clusterMsg
	wl      []uint32
}

// NewCluster partitions the graph's dependency-flows over numNodes worker
// nodes and runs the initial computation, seeding every node's values and
// shadows.
func NewCluster(g *graph.Streaming, alg algo.Selective, numNodes int, flowCap int) *Cluster {
	if numNodes < 1 {
		numNodes = 1
	}
	vals, parent := algo.SolveSelective(g, alg)
	c := &Cluster{
		NumNodes: numNodes,
		G:        g,
		Alg:      alg,
		kf:       etree.NewKeyForest(g.NumVertices()),
		parent:   parent,
	}
	c.partition(flowCap)
	for n := 0; n < numNodes; n++ {
		node := &clusterNode{
			id:      n,
			vals:    append([]float64(nil), vals...), // initial broadcast
			trimmed: make([]bool, g.NumVertices()),
			parent:  append([]int32(nil), parent...),
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

// partition recomputes flows from the Manager's key forest and places them
// round-robin by flow (balanced vertex counts; §VI Workload Balancing
// rebalances on skew, which round-robin over capped flows approximates).
func (c *Cluster) partition(flowCap int) {
	c.part = dflow.NewPartitionFromParents(c.parent, flowCap)
	c.owner = make([]int32, c.G.NumVertices())
	for f := int32(0); int(f) < c.part.NumFlows(); f++ {
		n := int32(int(f) % c.NumNodes)
		for _, v := range c.part.Members(f) {
			c.owner[v] = n
		}
	}
}

// Values returns the authoritative converged values (collected from the
// owning nodes).
func (c *Cluster) Values() []float64 {
	out := make([]float64, c.G.NumVertices())
	for v := range out {
		out[v] = c.nodes[c.owner[v]].vals[v]
	}
	return out
}

// ProcessBatch runs one batch through the distributed protocol:
// structure replication, Manager trim identification + invalidation
// broadcast, per-node fused refine/recompute, message routing rounds until
// global quiescence, and key-edge collection for the next batch.
func (c *Cluster) ProcessBatch(batch graph.Batch) {
	if c.Alg.Symmetric() {
		batch = symmetrize(batch)
	}
	applied := c.G.ApplyBatch(batch) // structure replicated everywhere

	// Manager: identify trim sets on the dependence forest and broadcast
	// invalidations (owned flag + shadow flags on every node).
	c.kf.BulkLoad(c.parent)
	var trimmed []uint32
	for _, u := range applied {
		if !u.Del || c.parent[u.Dst] != int32(u.Src) {
			continue
		}
		c.kf.Subtree(uint32(u.Dst), func(x uint32) bool {
			if c.nodes[0].trimmed[x] {
				return false
			}
			for _, n := range c.nodes {
				n.trimmed[x] = true
			}
			c.parent[x] = -1
			trimmed = append(trimmed, x)
			return true
		})
	}
	// Owners queue their trimmed vertices for refinement.
	for _, x := range trimmed {
		c.nodes[c.owner[x]].wl = append(c.nodes[c.owner[x]].wl, x)
	}
	// Additions: the source's owner computes the candidate and routes it
	// to the target's owner.
	for _, u := range applied {
		if u.Del {
			continue
		}
		src := c.nodes[c.owner[u.Src]]
		if src.trimmed[u.Src] {
			continue // will push after its own refinement
		}
		cand := c.Alg.Propagate(src.vals[u.Src], u.W)
		c.route(int(c.owner[u.Dst]), clusterMsg{v: uint32(u.Dst), val: cand, parent: int32(u.Src)})
	}

	// Delivery rounds until quiescence (Manager-coordinated termination).
	c.LastCrossMsgs = 0
	c.LastRounds = 0
	for {
		busy := false
		for _, n := range c.nodes {
			if len(n.inbox) > 0 || len(n.wl) > 0 {
				busy = true
				c.processNode(n)
			}
		}
		if !busy {
			break
		}
		c.LastRounds++
	}

	// Collect key edges for the Manager's next-batch forest and refresh
	// the placement.
	for v := range c.parent {
		c.parent[v] = c.nodes[c.owner[v]].parent[v]
	}
	c.partition(c.part.Cap)
}

// route delivers a message to a node, counting cross-node traffic.
func (c *Cluster) route(to int, m clusterMsg) {
	c.nodes[to].inbox = append(c.nodes[to].inbox, m)
}

// processNode drains a node's inbox and worklist: the per-node fused
// refine + recompute of the GraphFly protocol, emitting messages for
// remote targets and shadow refreshes for changed owned vertices.
func (c *Cluster) processNode(n *clusterNode) {
	inbox := n.inbox
	n.inbox = nil
	for _, m := range inbox {
		if m.shadow {
			// Shadow refresh: unconditional overwrite + revalidation. The
			// key edge rides along so that if ownership migrates at the
			// next repartition, the new owner reports correct dependence
			// information to the Manager.
			n.vals[m.v] = m.val
			n.parent[m.v] = m.parent
			n.trimmed[m.v] = false
			// Re-relax owned out-neighbours of the refreshed shadow; the
			// key edge of an improved neighbour is the edge FROM the
			// shadow vertex (m.v), not the shadow's own parent.
			for _, h := range c.G.Out(graph.VertexID(m.v)) {
				if c.owner[h.To] == int32(n.id) {
					cand := c.Alg.Propagate(m.val, h.W)
					if n.trimmed[h.To] {
						c.refine(n, uint32(h.To))
					}
					if c.Alg.Better(cand, n.vals[h.To]) {
						c.update(n, uint32(h.To), cand, int32(m.v), int32(m.v))
					}
				}
			}
			continue
		}
		if n.trimmed[m.v] {
			c.refine(n, m.v)
		}
		if c.Alg.Better(m.val, n.vals[m.v]) {
			c.update(n, m.v, m.val, m.parent, m.parent)
		}
	}
	for head := 0; head < len(n.wl); head++ {
		v := n.wl[head]
		if n.trimmed[v] {
			c.refine(n, v)
		}
		uVal := n.vals[v]
		for _, h := range c.G.Out(graph.VertexID(v)) {
			cand := c.Alg.Propagate(uVal, h.W)
			w := uint32(h.To)
			if c.owner[w] == int32(n.id) {
				if n.trimmed[w] {
					c.refine(n, w)
				}
				if c.Alg.Better(cand, n.vals[w]) {
					c.update(n, w, cand, int32(v), int32(v))
				}
			} else {
				// Remote candidate (only if plausibly useful per the
				// local, possibly stale, shadow).
				if n.trimmed[w] || c.Alg.Better(cand, n.vals[w]) {
					c.route(int(c.owner[w]), clusterMsg{v: w, val: cand, parent: int32(v)})
					c.LastCrossMsgs++
				}
			}
		}
	}
	n.wl = n.wl[:0]
}

// refine resets an owned trimmed vertex from its (possibly stale, always
// safe) local view and broadcasts the new value as a shadow refresh.
func (c *Cluster) refine(n *clusterNode, v uint32) {
	best := c.Alg.Base(graph.VertexID(v))
	bestParent := int32(-1)
	for _, h := range c.G.In(graph.VertexID(v)) {
		if n.trimmed[h.To] {
			continue
		}
		cand := c.Alg.Propagate(n.vals[h.To], h.W)
		if c.Alg.Better(cand, best) {
			best = cand
			bestParent = int32(h.To)
		}
	}
	n.vals[v] = best
	n.parent[v] = bestParent
	n.trimmed[v] = false
	n.wl = append(n.wl, v)
	c.broadcastShadow(n, v)
}

// update improves an owned vertex and broadcasts the change.
func (c *Cluster) update(n *clusterNode, v uint32, val float64, parent, via int32) {
	_ = via
	n.vals[v] = val
	n.parent[v] = parent
	n.wl = append(n.wl, v)
	c.broadcastShadow(n, v)
}

// broadcastShadow refreshes every other node's shadow of v.
func (c *Cluster) broadcastShadow(n *clusterNode, v uint32) {
	for _, other := range c.nodes {
		if other.id == n.id {
			continue
		}
		c.route(other.id, clusterMsg{v: v, val: n.vals[v], parent: n.parent[v], shadow: true})
		c.LastCrossMsgs++
	}
}

func symmetrize(b graph.Batch) graph.Batch {
	type key struct{ a, b graph.VertexID }
	seen := make(map[key]bool, len(b))
	out := make(graph.Batch, 0, 2*len(b))
	for _, u := range b {
		a, d := u.Src, u.Dst
		if a > d {
			a, d = d, a
		}
		k := key{a, d}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out,
			graph.Update{Edge: graph.Edge{Src: a, Dst: d, W: u.W}, Del: u.Del},
			graph.Update{Edge: graph.Edge{Src: d, Dst: a, W: u.W}, Del: u.Del},
		)
	}
	return out
}
