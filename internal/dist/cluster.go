package dist

import (
	"fmt"
	"sort"

	"repro/internal/algo"
	"repro/internal/dflow"
	"repro/internal/engine"
	"repro/internal/etree"
	"repro/internal/graph"
)

// Cluster is a functional simulation of the distributed GraphFly protocol
// of §VI for selective algorithms: a Manager node plus worker nodes that
// exchange *only messages* about vertex values. Each node owns the
// authoritative values of the flows placed on it (the flow-worker table)
// and keeps stale shadow copies of remote values that are refreshed only
// by incoming messages — exactly the consistency model a shared-nothing
// deployment has. The graph *structure* is replicated on every node
// (a documented simplification; the paper also replicates enough structure
// for local traversal, migrating flow data only for load balance).
//
// Safety under staleness: for monotonic algorithms a stale shadow is an
// over-approximation of the true value, and over-approximations are
// exactly what trimming already produces, so pulls over shadows stay safe;
// trim invalidations are broadcast before processing, and a shadow's
// invalid bit is cleared only by the shadow update that carries the
// owner's post-refinement value. Candidates pushed by owners eventually
// deliver every improvement, so the cluster converges to the same fixpoint
// as the single-machine engine (tested bit-exact).
//
// On top of that sits the fault layer (faults.go, reliable.go,
// checkpoint.go, recovery.go): the data plane runs over an unreliable
// network masked by sequenced, acked, retransmitted links, and workers are
// crash-stop processes the Manager detects by missed heartbeats and
// recovers by reassigning their flows and reconstructing state from the
// last checkpoint plus upstream-backup replay. With the zero FaultConfig
// every packet arrives next round, in order, exactly once — the original
// perfect-network protocol.
//
// Timing is NOT modeled here — that is Simulate's job; Cluster demonstrates
// protocol correctness (message routing, ownership, shadow coherence,
// Manager-coordinated termination, and fault masking).
type Cluster struct {
	NumNodes int
	G        *graph.Streaming
	Alg      algo.Selective

	fc  FaultConfig
	inj *injector

	part     *dflow.Partition
	owner    []int32 // vertex -> node
	flowNode []int32 // flow -> node: the Manager's flow-worker table

	kf         *etree.KeyForest // Manager-side dependence forest
	parent     []int32          // Manager's collected key edges
	mgrTrimmed []bool           // Manager's view of this batch's trim set

	nodes      []*clusterNode
	live       []bool
	detected   []bool // Manager has announced this death and recovered
	crashRound []int

	net     network
	round   int // current delivery round within the batch (0 = batch setup)
	batches int // batches fully processed

	ckpt          checkpoint
	trimSinceCkpt []bool         // trimmed at least once since the last commit
	addLog        []graph.Update // additions applied since the last commit
	delLog        []graph.Update // deletions applied since the last commit

	// Stats for the batch most recently processed.
	LastCrossMsgs int64
	LastRounds    int
	// Stats accumulates fault and recovery counters across the whole run.
	Stats FaultStats
}

type clusterMsg struct {
	v      uint32
	val    float64
	parent int32
	shadow bool // shadow refresh (apply unconditionally, clear invalid bit)
}

type clusterNode struct {
	id      int
	vals    []float64 // authoritative for owned, shadow otherwise
	trimmed []bool    // owned: live flag; shadow: cleared by shadow updates
	parent  []int32   // owned vertices only
	inbox   []clusterMsg
	wl      []uint32

	send      []*sendLink  // per peer
	recv      []*recvLink  // per peer
	replayLog []clusterMsg // candidates sent cross-node since last checkpoint
}

// NewCluster partitions the graph's dependency-flows over numNodes worker
// nodes and runs the initial computation, seeding every node's values and
// shadows. The network is perfect and the workers immortal.
func NewCluster(g *graph.Streaming, alg algo.Selective, numNodes int, flowCap int) *Cluster {
	return NewClusterWithFaults(g, alg, numNodes, flowCap, FaultConfig{})
}

// NewClusterWithFaults is NewCluster under an injected fault schedule: the
// same protocol must reach the same fixpoints while the network drops,
// duplicates, delays, and reorders packets and workers crash mid-batch.
func NewClusterWithFaults(g *graph.Streaming, alg algo.Selective, numNodes int, flowCap int, fc FaultConfig) *Cluster {
	if numNodes < 1 {
		numNodes = 1
	}
	vals, parent := algo.SolveSelective(g, alg)
	c := &Cluster{
		NumNodes:      numNodes,
		G:             g,
		Alg:           alg,
		fc:            fc,
		kf:            etree.NewKeyForest(g.NumVertices()),
		parent:        parent,
		mgrTrimmed:    make([]bool, g.NumVertices()),
		live:          make([]bool, numNodes),
		detected:      make([]bool, numNodes),
		crashRound:    make([]int, numNodes),
		trimSinceCkpt: make([]bool, g.NumVertices()),
	}
	c.inj = newInjector(fc, &c.Stats)
	for n := 0; n < numNodes; n++ {
		c.live[n] = true
	}
	c.partition(flowCap)
	for n := 0; n < numNodes; n++ {
		node := &clusterNode{
			id:      n,
			vals:    append([]float64(nil), vals...), // initial broadcast
			trimmed: make([]bool, g.NumVertices()),
			parent:  append([]int32(nil), parent...),
			send:    make([]*sendLink, numNodes),
			recv:    make([]*recvLink, numNodes),
		}
		for p := 0; p < numNodes; p++ {
			node.resetLink(p)
		}
		c.nodes = append(c.nodes, node)
	}
	c.commitCheckpoint()
	return c
}

// Faults returns the schedule the cluster was built with.
func (c *Cluster) Faults() FaultConfig { return c.fc }

// liveIDs returns the live worker ids in ascending order.
func (c *Cluster) liveIDs() []int {
	ids := make([]int, 0, len(c.live))
	for n := range c.live {
		if c.live[n] {
			ids = append(ids, n)
		}
	}
	return ids
}

// partition recomputes flows from the Manager's key forest and places them
// round-robin by flow over the live workers (balanced vertex counts; §VI
// Workload Balancing rebalances on skew, which round-robin over capped
// flows approximates), refreshing the flow-worker table.
func (c *Cluster) partition(flowCap int) {
	c.part = dflow.NewPartitionFromParents(c.parent, flowCap)
	c.flowNode = make([]int32, c.part.NumFlows())
	c.owner = make([]int32, c.G.NumVertices())
	live := c.liveIDs()
	for f := int32(0); int(f) < c.part.NumFlows(); f++ {
		n := int32(live[int(f)%len(live)])
		c.flowNode[f] = n
		for _, v := range c.part.Members(f) {
			c.owner[v] = n
		}
	}
}

// Values returns the authoritative converged values (collected from the
// owning nodes).
func (c *Cluster) Values() []float64 {
	out := make([]float64, c.G.NumVertices())
	for v := range out {
		out[v] = c.nodes[c.owner[v]].vals[v]
	}
	return out
}

// ProcessBatch runs one batch through the distributed protocol. It panics
// on a malformed batch or a batch that cannot quiesce; ProcessBatchE is the
// error-returning form.
func (c *Cluster) ProcessBatch(batch graph.Batch) {
	if err := c.ProcessBatchE(batch); err != nil {
		panic(err)
	}
}

// ProcessBatchE runs one batch through the distributed protocol:
// structure replication, Manager trim identification + invalidation
// broadcast, per-node fused refine/recompute, reliable message delivery
// rounds (with fault injection, failure detection, and recovery) until
// global quiescence, and key-edge collection for the next batch.
func (c *Cluster) ProcessBatchE(batch graph.Batch) error {
	if err := c.G.CheckBatch(batch); err != nil {
		return err
	}
	c.rejoinDead()
	if c.Alg.Symmetric() {
		batch = symmetrize(batch)
	}
	applied := c.G.ApplyBatch(batch) // structure replicated everywhere
	for _, u := range applied {
		if u.Del {
			c.delLog = append(c.delLog, u)
		} else {
			c.addLog = append(c.addLog, u)
		}
	}
	c.LastCrossMsgs = 0
	c.LastRounds = 0
	c.round = 0

	// Manager: identify trim sets on the dependence forest and broadcast
	// invalidations (owned flag + shadow flags on every live node).
	c.kf.BulkLoad(c.parent)
	var trimmed []uint32
	for _, u := range applied {
		if !u.Del || c.parent[u.Dst] != int32(u.Src) {
			continue
		}
		c.kf.Subtree(uint32(u.Dst), func(x uint32) bool {
			if c.mgrTrimmed[x] {
				return false
			}
			c.mgrTrimmed[x] = true
			c.trimSinceCkpt[x] = true
			for _, n := range c.nodes {
				if c.live[n.id] {
					n.trimmed[x] = true
				}
			}
			c.parent[x] = -1
			trimmed = append(trimmed, x)
			return true
		})
	}
	// Owners queue their trimmed vertices for refinement.
	for _, x := range trimmed {
		nd := c.nodes[c.owner[x]]
		nd.wl = append(nd.wl, x)
	}
	// Additions: the source's owner computes the candidate and routes it
	// to the target's owner.
	for _, u := range applied {
		if u.Del {
			continue
		}
		src := c.nodes[c.owner[u.Src]]
		if src.trimmed[u.Src] {
			continue // will push after its own refinement
		}
		cand := c.Alg.Propagate(src.vals[u.Src], u.W)
		c.sendMsg(src.id, int(c.owner[u.Dst]), clusterMsg{v: uint32(u.Dst), val: cand, parent: int32(u.Src)}, true)
	}

	// Delivery rounds until quiescence (Manager-coordinated termination):
	// inject scheduled chaos, deliver what the network lets through, let
	// every live worker drain its inbox and worklist, fire retransmission
	// timers, and let the Manager detect and recover crashed workers.
	for {
		c.round++
		if c.round > c.fc.maxRounds() {
			return fmt.Errorf("dist: batch %d failed to quiesce after %d rounds (fault seed %d)",
				c.batches, c.fc.maxRounds(), c.fc.Seed)
		}
		c.injectCrashes()
		c.deliverRound()
		for _, n := range c.nodes {
			if !c.live[n.id] {
				continue
			}
			if len(n.inbox) > 0 || len(n.wl) > 0 {
				c.processNode(n)
			}
		}
		c.retransmitRound()
		c.detectAndRecover()
		if c.quiescent() {
			break
		}
	}
	c.LastRounds = c.round

	// Collect key edges for the Manager's next-batch forest, refresh the
	// placement, and commit a checkpoint when one is due.
	for v := range c.parent {
		c.parent[v] = c.nodes[c.owner[v]].parent[v]
	}
	for i := range c.mgrTrimmed {
		c.mgrTrimmed[i] = false
	}
	c.partition(c.part.Cap)
	c.batches++
	if c.batches%c.fc.checkpointEvery() == 0 {
		c.commitCheckpoint()
	}
	return nil
}

// quiescent is the Manager's termination check: every worker is known
// alive, the network is drained, every link is acked and gapless, and no
// worker has local work left. An undetected crash blocks termination — the
// Manager keeps waiting out the heartbeat timeout instead.
func (c *Cluster) quiescent() bool {
	for d := range c.nodes {
		if !c.live[d] && !c.detected[d] {
			return false
		}
	}
	if len(c.net.q) > 0 {
		return false
	}
	for _, n := range c.nodes {
		if !c.live[n.id] {
			continue
		}
		if len(n.inbox) > 0 || len(n.wl) > 0 {
			return false
		}
	}
	return c.linksIdle()
}

// processNode drains a node's inbox and worklist: the per-node fused
// refine + recompute of the GraphFly protocol, emitting messages for
// remote targets and shadow refreshes for changed owned vertices.
func (c *Cluster) processNode(n *clusterNode) {
	inbox := n.inbox
	n.inbox = nil
	for _, m := range inbox {
		if m.shadow {
			// Shadow refresh: unconditional overwrite + revalidation. The
			// key edge rides along so that if ownership migrates at the
			// next repartition, the new owner reports correct dependence
			// information to the Manager.
			n.vals[m.v] = m.val
			n.parent[m.v] = m.parent
			n.trimmed[m.v] = false
			// Re-relax owned out-neighbours of the refreshed shadow; the
			// key edge of an improved neighbour is the edge FROM the
			// shadow vertex (m.v), not the shadow's own parent.
			for _, h := range c.G.Out(graph.VertexID(m.v)) {
				if c.owner[h.To] == int32(n.id) {
					cand := c.Alg.Propagate(m.val, h.W)
					if n.trimmed[h.To] {
						c.refine(n, uint32(h.To))
					}
					if c.Alg.Better(cand, n.vals[h.To]) {
						c.update(n, uint32(h.To), cand, int32(m.v), int32(m.v))
					}
				}
			}
			continue
		}
		if n.trimmed[m.v] {
			c.refine(n, m.v)
		}
		if c.Alg.Better(m.val, n.vals[m.v]) {
			c.update(n, m.v, m.val, m.parent, m.parent)
		}
	}
	for head := 0; head < len(n.wl); head++ {
		v := n.wl[head]
		if n.trimmed[v] {
			c.refine(n, v)
		}
		uVal := n.vals[v]
		for _, h := range c.G.Out(graph.VertexID(v)) {
			cand := c.Alg.Propagate(uVal, h.W)
			w := uint32(h.To)
			if c.owner[w] == int32(n.id) {
				if n.trimmed[w] {
					c.refine(n, w)
				}
				if c.Alg.Better(cand, n.vals[w]) {
					c.update(n, w, cand, int32(v), int32(v))
				}
			} else {
				// Remote candidate (only if plausibly useful per the
				// local, possibly stale, shadow).
				if n.trimmed[w] || c.Alg.Better(cand, n.vals[w]) {
					c.sendMsg(n.id, int(c.owner[w]), clusterMsg{v: w, val: cand, parent: int32(v)}, true)
				}
			}
		}
	}
	n.wl = n.wl[:0]
}

// refine resets an owned trimmed vertex from its (possibly stale, always
// safe) local view and broadcasts the new value as a shadow refresh.
func (c *Cluster) refine(n *clusterNode, v uint32) {
	c.refineFrom(n, v, c.Alg.Base(graph.VertexID(v)), -1)
}

// refineFrom is refine seeded with a known-achievable floor instead of the
// base value. Recovery uses it to restore a vertex whose checkpoint value is
// still achievable: the pull over the new owner's local shadows re-derives
// improvements whose original push was filtered out, without ever dropping
// below a value the vertex is entitled to.
func (c *Cluster) refineFrom(n *clusterNode, v uint32, floor float64, floorParent int32) {
	best := floor
	bestParent := floorParent
	for _, h := range c.G.In(graph.VertexID(v)) {
		if n.trimmed[h.To] {
			continue
		}
		cand := c.Alg.Propagate(n.vals[h.To], h.W)
		if c.Alg.Better(cand, best) {
			best = cand
			bestParent = int32(h.To)
		}
	}
	n.vals[v] = best
	n.parent[v] = bestParent
	n.trimmed[v] = false
	n.wl = append(n.wl, v)
	c.broadcastShadow(n, v)
}

// update improves an owned vertex and broadcasts the change.
func (c *Cluster) update(n *clusterNode, v uint32, val float64, parent, via int32) {
	_ = via
	n.vals[v] = val
	n.parent[v] = parent
	n.wl = append(n.wl, v)
	c.broadcastShadow(n, v)
}

// broadcastShadow refreshes every other node's shadow of v.
func (c *Cluster) broadcastShadow(n *clusterNode, v uint32) {
	for _, other := range c.nodes {
		if other.id == n.id {
			continue
		}
		c.sendMsg(n.id, other.id, clusterMsg{v: v, val: n.vals[v], parent: n.parent[v], shadow: true}, false)
	}
}

// symmetrize delegates to the engine's canonical implementation so the
// distributed runtime and the single-machine engines agree on undirected
// batch semantics (last update per pair wins).
func symmetrize(b graph.Batch) graph.Batch { return engine.Symmetrize(b) }

// sortedCopy returns v ascending (small helper for deterministic recovery
// iteration).
func sortedCopy(v []uint32) []uint32 {
	out := append([]uint32(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
