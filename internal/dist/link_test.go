package dist

// Direct tests of the socket reliable link: FIFO exactly-once delivery in
// both directions, transparent reconnection after a conn is torn down
// mid-stream, and ErrPeerDown when the peer never comes back.

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

const testMsgType = 0x7f

func testLinkConfig() linkConfig {
	return linkConfig{
		HeartbeatEvery: 15 * time.Millisecond,
		RetransBase:    20 * time.Millisecond,
		PeerTimeout:    300 * time.Millisecond,
		MaxRetries:     10,
	}
}

// linkRecorder collects delivered message bodies in order.
type linkRecorder struct {
	mu   sync.Mutex
	msgs []uint32
	down chan error
}

func newLinkRecorder() *linkRecorder { return &linkRecorder{down: make(chan error, 4)} }

func (r *linkRecorder) onMsg(mt byte, body []byte) {
	if mt != testMsgType || len(body) != 4 {
		return
	}
	r.mu.Lock()
	r.msgs = append(r.msgs, binary.LittleEndian.Uint32(body))
	r.mu.Unlock()
}

func (r *linkRecorder) got() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint32(nil), r.msgs...)
}

func testMsg(i uint32) []byte {
	m := make([]byte, 5)
	m[0] = testMsgType
	binary.LittleEndian.PutUint32(m[1:], i)
	return m
}

// linkPair wires a client link (with redial) to a server link through a
// real TCP listener. The accept loop re-attaches the server link on every
// reconnect, mimicking the coordinator's soft-reconnect path.
type linkPair struct {
	ln                   net.Listener
	client               *link
	server               *link
	clientRec, serverRec *linkRecorder

	mu         sync.Mutex
	serverConn net.Conn
}

func newLinkPair(t *testing.T) *linkPair {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &linkPair{ln: ln, clientRec: newLinkRecorder(), serverRec: newLinkRecorder()}
	met := newLinkMetrics(nil)
	p.server = newLink(testLinkConfig(), met, p.serverRec.onMsg, func(err error) { p.serverRec.down <- err })
	p.client = newLink(testLinkConfig(), met, p.clientRec.onMsg, func(err error) { p.clientRec.down <- err })
	p.client.dial = func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) }
	p.client.hello = encodeHello(wireHello{ID: 1, Incarnation: 99})

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Handshake: hello frame first, then splice into the server link.
			if kind, _, err := wal.ReadFrame(conn); err != nil || kind != wkHello {
				conn.Close()
				continue
			}
			p.mu.Lock()
			p.serverConn = conn
			p.mu.Unlock()
			p.server.attach(conn)
		}
	}()

	conn, err := p.client.dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteFrame(conn, wkHello, p.client.hello); err != nil {
		t.Fatal(err)
	}
	p.client.attach(conn)
	// Don't return until the server half is really attached — tests that
	// drop the conn right away must hit the live one, not a nil.
	waitFor(t, "server attach", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.serverConn != nil
	})
	return p
}

func (p *linkPair) dropConn() {
	p.mu.Lock()
	c := p.serverConn
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (p *linkPair) close() {
	p.ln.Close()
	p.client.close()
	p.server.close()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLinkFIFOBothDirections(t *testing.T) {
	p := newLinkPair(t)
	defer p.close()
	const K = 500
	for i := uint32(0); i < K; i++ {
		if err := p.client.Send(testMsg(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.server.Send(testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all deliveries", func() bool {
		return len(p.serverRec.got()) == K && len(p.clientRec.got()) == K
	})
	for name, rec := range map[string]*linkRecorder{"server": p.serverRec, "client": p.clientRec} {
		for i, v := range rec.got() {
			if v != uint32(i) {
				t.Fatalf("%s: position %d got %d (FIFO violated)", name, i, v)
			}
		}
	}
}

// TestLinkReconnectMidStream kills the TCP conn while traffic is flowing;
// the client must redial, replay its hello, retransmit unacked frames, and
// the receiver must dedup — exactly-once FIFO end to end.
func TestLinkReconnectMidStream(t *testing.T) {
	p := newLinkPair(t)
	defer p.close()
	const K = 400
	for i := uint32(0); i < K/2; i++ {
		if err := p.client.Send(testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "first half delivered", func() bool {
		return len(p.serverRec.got()) >= K/4
	})
	p.dropConn()
	for i := uint32(K / 2); i < K; i++ {
		if err := p.client.Send(testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "delivery across reconnect", func() bool {
		return len(p.serverRec.got()) == K
	})
	for i, v := range p.serverRec.got() {
		if v != uint32(i) {
			t.Fatalf("position %d got %d after reconnect", i, v)
		}
	}
	if p.client.met.reconnects.Value() == 0 {
		t.Fatal("dist.reconnects counter never incremented")
	}
}

// TestLinkPeerDown: when the peer disappears for good, the client link must
// surface ErrPeerDown within the timeout budget instead of hanging.
func TestLinkPeerDown(t *testing.T) {
	p := newLinkPair(t)
	p.ln.Close() // no more accepts: redials fail
	p.dropConn()
	p.client.Send(testMsg(1))
	select {
	case err := <-p.clientRec.down:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("down callback got %v, want ErrPeerDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client link never reported ErrPeerDown")
	}
	if !p.client.isDown() {
		t.Fatal("isDown() false after peer-down")
	}
	p.client.close()
	p.server.close()
}
