package dist

import "errors"

// ErrPeerDown is the typed degradation signal of the reliable layer, shared
// by the simulated network (reliable.go) and the socket transport (link.go):
// a sender that has exhausted its capped retransmission retries, or a link
// whose heartbeats have timed out past the reconnect grace, stops
// retransmitting forever and surfaces this error instead. The caller's
// contract is fail-stop conversion: treat the peer as crashed, reset the
// link, and let the membership/recovery machinery reconstruct whatever the
// abandoned retransmissions would have carried.
var ErrPeerDown = errors.New("dist: peer down (retries exhausted or heartbeat timeout)")

// ErrNoWorkers means the cluster has no live worker left to run a batch on.
var ErrNoWorkers = errors.New("dist: no live workers")

// ErrBatchTimeout means a batch failed to quiesce within the configured
// hard deadline — the fail-fast guard a hung cluster trips in CI instead of
// wedging the run.
var ErrBatchTimeout = errors.New("dist: batch deadline exceeded")
