package dist

// In-process tests for the socket runtime: a real Coordinator listening on
// a loopback TCP port, with RunWorker instances as goroutines. Everything
// crosses real sockets and real WAL files; only process boundaries are
// elided (proc_test.go covers those with actual kill -9).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netfault"
)

// fastCoordConfig returns timers tight enough that death detection and
// retransmission resolve in tens of milliseconds.
func fastCoordConfig() CoordConfig {
	return CoordConfig{
		Addr:           "127.0.0.1:0",
		FlowCap:        32,
		CkptEvery:      2,
		BatchTimeout:   30 * time.Second,
		HeartbeatEvery: 20 * time.Millisecond,
		RetransBase:    25 * time.Millisecond,
		PeerTimeout:    400 * time.Millisecond,
		MaxRetries:     10,
	}
}

// testWorker is one in-process worker with crash and restart controls.
type testWorker struct {
	id       int
	dir      string
	cancel   context.CancelFunc
	hardStop chan struct{}
	done     chan error
}

func startTestWorker(addr, dir string, id int) *testWorker {
	ctx, cancel := context.WithCancel(context.Background())
	tw := &testWorker{
		id: id, dir: dir, cancel: cancel,
		hardStop: make(chan struct{}),
		done:     make(chan error, 1),
	}
	go func() {
		tw.done <- RunWorker(ctx, WorkerConfig{
			Addr: addr, Dir: dir, ID: id,
			ConnectTimeout: 10 * time.Second,
			HeartbeatEvery: 20 * time.Millisecond,
			RetransBase:    25 * time.Millisecond,
			PeerTimeout:    400 * time.Millisecond,
			MaxRetries:     10,
			HardStop:       tw.hardStop,
		})
	}()
	return tw
}

// crash simulates kill -9 and waits for the worker goroutine to exit.
func (tw *testWorker) crash(t *testing.T) {
	t.Helper()
	close(tw.hardStop)
	select {
	case <-tw.done:
	case <-time.After(5 * time.Second):
		t.Fatal("crashed worker did not exit")
	}
	tw.cancel()
}

// stop cancels the context (SIGTERM path) and waits for a clean exit.
func (tw *testWorker) stop(t *testing.T) {
	t.Helper()
	tw.cancel()
	select {
	case err := <-tw.done:
		if err != nil {
			t.Fatalf("worker %d: graceful stop returned %v", tw.id, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("worker %d did not stop", tw.id)
	}
}

// wait reaps a worker expected to exit on its own (coordinator bye).
func (tw *testWorker) wait(t *testing.T) {
	t.Helper()
	select {
	case err := <-tw.done:
		if err != nil {
			t.Fatalf("worker %d exited with %v", tw.id, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("worker %d did not exit after bye", tw.id)
	}
	tw.cancel()
}

// socketHarness holds one running cluster plus the oracle replica.
type socketHarness struct {
	t       *testing.T
	alg     algo.Selective
	coord   *Coordinator
	ref     *graph.Streaming
	workers map[int]*testWorker
	base    string
}

func newSocketHarness(t *testing.T, alg algo.Selective, w gen.Workload, n int) *socketHarness {
	t.Helper()
	initial := w.Initial
	if alg.Symmetric() {
		var both []graph.Edge
		for _, e := range initial {
			both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		initial = both
	}
	g := graph.FromEdges(w.NumV, initial)
	coord, err := NewCoordinator(g, alg, fastCoordConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := &socketHarness{
		t: t, alg: alg, coord: coord,
		ref:     g.Clone(),
		workers: map[int]*testWorker{},
		base:    t.TempDir(),
	}
	for i := 0; i < n; i++ {
		h.startWorker(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(ctx, n); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *socketHarness) workerDir(id int) string {
	return filepath.Join(h.base, fmt.Sprintf("worker-%d", id))
}

func (h *socketHarness) startWorker(id int) *testWorker {
	tw := startTestWorker(h.coord.Addr(), h.workerDir(id), id)
	h.workers[id] = tw
	return tw
}

// runBatch processes one batch and asserts bit-exact agreement with the
// single-machine oracle.
func (h *socketHarness) runBatch(bi int, b graph.Batch) {
	h.t.Helper()
	if err := h.coord.ProcessBatch(context.Background(), b); err != nil {
		h.t.Fatalf("batch %d: %v", bi, err)
	}
	rb := b
	if h.alg.Symmetric() {
		rb = symmetrize(b)
	}
	h.ref.ApplyBatch(rb)
	want, _ := algo.SolveSelective(h.ref, h.alg)
	got := h.coord.Values()
	for v := range want {
		if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
			h.t.Fatalf("%s batch %d: vertex %d = %v, want %v", h.alg.Name(), bi, v, got[v], want[v])
		}
	}
}

func (h *socketHarness) close() {
	h.coord.Close()
	for _, tw := range h.workers {
		select {
		case <-tw.done:
		case <-time.After(5 * time.Second):
		}
		tw.cancel()
	}
}

func TestSocketClusterMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			w := clusterWorkload(uint64(90+n), 4)
			h := newSocketHarness(t, algo.SSSP{Src: 0}, w, n)
			defer h.close()
			for bi, b := range w.Batches {
				h.runBatch(bi, b)
			}
		})
	}
}

func TestSocketClusterAlgorithms(t *testing.T) {
	algs := []algo.Selective{algo.BFS{Src: 0}, algo.SSWP{Src: 0}, algo.CC{}}
	for _, a := range algs {
		t.Run(a.Name(), func(t *testing.T) {
			w := clusterWorkload(97, 3)
			h := newSocketHarness(t, a, w, 2)
			defer h.close()
			for bi, b := range w.Batches {
				h.runBatch(bi, b)
			}
		})
	}
}

// TestSocketCheckpointFramesOnDisk asserts the acceptance criterion that
// worker checkpoints on disk carry KindDistCheckpoint frames.
func TestSocketCheckpointFramesOnDisk(t *testing.T) {
	w := clusterWorkload(101, 4) // CkptEvery=2 -> checkpoints at seq 2 and 4
	h := newSocketHarness(t, algo.SSSP{Src: 0}, w, 2)
	defer h.close()
	for bi, b := range w.Batches {
		h.runBatch(bi, b)
	}
	for id := 0; id < 2; id++ {
		ck, err := loadWorkerCkpt(h.workerDir(id))
		if err != nil {
			t.Fatalf("worker %d checkpoint: %v", id, err)
		}
		if ck == nil {
			t.Fatalf("worker %d wrote no checkpoint", id)
		}
		if ck.Seq == 0 || len(ck.Vals) != h.ref.NumVertices() {
			t.Fatalf("worker %d checkpoint: seq=%d vals=%d", id, ck.Seq, len(ck.Vals))
		}
	}
}

// TestSocketGracefulLeaveAndJoin: a worker leaving via SIGTERM shrinks the
// membership without failing batches; a new worker joining grows it.
func TestSocketGracefulLeaveAndJoin(t *testing.T) {
	w := clusterWorkload(103, 4)
	h := newSocketHarness(t, algo.SSSP{Src: 0}, w, 2)
	defer h.close()
	h.runBatch(0, w.Batches[0])

	h.workers[0].stop(t) // graceful leave: bye + final checkpoint
	h.runBatch(1, w.Batches[1])
	if live := h.coord.LiveWorkers(); live != 1 {
		t.Fatalf("after leave: %d live workers, want 1", live)
	}

	h.startWorker(2) // fresh member
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.coord.WaitForWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	h.runBatch(2, w.Batches[2])
	h.runBatch(3, w.Batches[3])
	if live := h.coord.LiveWorkers(); live != 2 {
		t.Fatalf("after join: %d live workers, want 2", live)
	}
}

// TestSocketCrashRestartMidBatch kills a worker while a batch is in flight;
// the survivors re-run, the restarted worker recovers from its WAL and
// rejoins, and every batch still matches the oracle bit-exactly.
func TestSocketCrashRestartMidBatch(t *testing.T) {
	w := clusterWorkload(107, 5)
	h := newSocketHarness(t, algo.SSSP{Src: 0}, w, 3)
	defer h.close()
	h.runBatch(0, w.Batches[0])
	h.runBatch(1, w.Batches[1])

	victim := h.workers[1]
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(victim.hardStop)
	}()
	h.runBatch(2, w.Batches[2])
	<-victim.done
	victim.cancel()

	// Restart with the same directory and id: WAL recovery + rejoin.
	h.startWorker(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.coord.WaitForWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}
	h.runBatch(3, w.Batches[3])
	h.runBatch(4, w.Batches[4])
}

// TestSocketAllWorkersDie kills the whole membership mid-batch; restarted
// processes must be admitted into the in-flight batch and finish it.
func TestSocketAllWorkersDie(t *testing.T) {
	w := clusterWorkload(109, 3)
	h := newSocketHarness(t, algo.SSSP{Src: 0}, w, 2)
	defer h.close()
	h.runBatch(0, w.Batches[0])

	w0, w1 := h.workers[0], h.workers[1]
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(w0.hardStop)
		close(w1.hardStop)
		<-w0.done
		<-w1.done
		// Respawn both; the coordinator is still inside ProcessBatch.
		h.startWorker(0)
		h.startWorker(1)
	}()
	h.runBatch(1, w.Batches[1])
	w0.cancel()
	w1.cancel()
	h.runBatch(2, w.Batches[2])
}

// TestSocketChaosSeeded is the in-process chaos loop: random mid-batch
// kill -9s with random restart delays across a longer stream, every batch
// checked against the oracle. Deterministically seeded.
func TestSocketChaosSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos loop is slow under -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := clusterWorkload(uint64(120+seed), 6)
			const n = 3
			h := newSocketHarness(t, algo.SSSP{Src: 0}, w, n)
			defer h.close()
			for bi, b := range w.Batches {
				var crashed *testWorker
				if bi > 0 && rng.Intn(2) == 0 {
					crashed = h.workers[rng.Intn(n)]
					delay := time.Duration(rng.Intn(4)) * time.Millisecond
					go func() {
						time.Sleep(delay)
						close(crashed.hardStop)
					}()
				}
				h.runBatch(bi, b)
				if crashed != nil {
					<-crashed.done
					crashed.cancel()
					h.startWorker(crashed.id)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if err := h.coord.WaitForWorkers(ctx, n); err != nil {
						cancel()
						t.Fatal(err)
					}
					cancel()
				}
			}
		})
	}
}

// TestSocketMembershipChurnSweep is the seeded membership-churn loop for the
// multi-process runtime: between batches the scenario gracefully retires
// members, crashes them outright, restarts crashed ids onto their old WAL
// directories, and admits brand-new members under fresh ids — with at least
// one worker always live — and every batch must still match the
// single-machine oracle bit-exactly.
func TestSocketMembershipChurnSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("membership churn sweep is slow under -short")
	}
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := clusterWorkload(uint64(140+seed), 8)
			h := newSocketHarness(t, algo.SSSP{Src: 0}, w, 2)
			defer h.close()
			live := map[int]bool{0: true, 1: true}
			var crashed []int // dead ids whose WAL dirs await a restart
			nextID := 2
			pick := func() int {
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				return ids[rng.Intn(len(ids))]
			}
			admit := func(id int) {
				h.startWorker(id)
				live[id] = true
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := h.coord.WaitForWorkers(ctx, len(live)); err != nil {
					t.Fatal(err)
				}
			}
			stops, crashes, joins, restarts := 0, 0, 0, 0
			for bi, b := range w.Batches {
				if bi > 0 {
					switch action := rng.Intn(4); {
					case action == 0 && len(live) > 1: // graceful leave (bye + final checkpoint)
						id := pick()
						h.workers[id].stop(t)
						delete(h.workers, id) // already reaped
						delete(live, id)
						stops++
					case action == 1 && len(live) > 1: // kill -9; detection happens mid-batch
						id := pick()
						tw := h.workers[id]
						close(tw.hardStop)
						select {
						case <-tw.done:
						case <-time.After(5 * time.Second):
							t.Fatalf("worker %d did not die", id)
						}
						tw.cancel()
						delete(h.workers, id)
						delete(live, id)
						crashed = append(crashed, id)
						crashes++
					case action == 2: // brand-new member under a fresh id
						admit(nextID)
						nextID++
						joins++
					case action == 3 && len(crashed) > 0: // restart a crashed id onto its WAL
						id := crashed[len(crashed)-1]
						crashed = crashed[:len(crashed)-1]
						admit(id)
						restarts++
					}
				}
				h.runBatch(bi, b)
			}
			if got := h.coord.LiveWorkers(); got != len(live) {
				t.Fatalf("final membership: coordinator sees %d live, want %d", got, len(live))
			}
			t.Logf("churn seed %d: %d graceful leaves, %d crashes, %d fresh joins, %d restarts, %d final members",
				seed, stops, crashes, joins, restarts, len(live))
			if stops+crashes+joins+restarts == 0 {
				t.Fatal("sweep exercised no membership churn")
			}
		})
	}
}

// TestSocketWorkerThroughFaultProxy parks a netfault proxy between the
// coordinator and one worker's dial address — no dist code changes, the
// worker just dials the proxy — and oracle-checks every batch with seeded
// delays jittering the link. The mix is delay-only (delays never spend the
// fault budget, so they inject for the whole run) and MaxDelay stays far
// under PeerTimeout so the link-layer never declares the worker dead: the
// test pins down that a slow, jittery network path reorders nothing the
// seq/ack layer can't absorb.
func TestSocketWorkerThroughFaultProxy(t *testing.T) {
	w := clusterWorkload(171, 6)
	h := newSocketHarness(t, algo.SSSP{Src: 0}, w, 1)
	p := netfault.NewProxy(h.coord.Addr(), netfault.Config{
		Seed: 171, DelayProb: 0.35, MaxDelay: 5 * time.Millisecond,
	})
	paddr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	defer h.close()
	h.workers[1] = startTestWorker(paddr.String(), h.workerDir(1), 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := h.coord.WaitForWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for bi, b := range w.Batches {
		h.runBatch(bi, b)
	}
	if got := h.coord.LiveWorkers(); got != 2 {
		t.Fatalf("proxied worker was declared dead: %d live workers, want 2", got)
	}
	if p.In.Delays() == 0 {
		t.Fatal("proxy injected no delays; the fault path was not exercised")
	}
	t.Logf("proxied link: %d injected delays across %d batches", p.In.Delays(), len(w.Batches))
}
