package dist

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/gen"
	"repro/internal/graph"
)

func clusterWorkload(seed uint64, batches int) gen.Workload {
	cfg := gen.TestDataset(seed)
	cfg.NumV, cfg.NumE = 300, 2000
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: 150,
		NumBatches: batches, Seed: seed + 1,
	})
}

func checkCluster(t *testing.T, alg algo.Selective, nodes int, w gen.Workload) {
	t.Helper()
	initial := w.Initial
	if alg.Symmetric() {
		var both []graph.Edge
		for _, e := range initial {
			both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
		}
		initial = both
	}
	g := graph.FromEdges(w.NumV, initial)
	c := NewCluster(g, alg, nodes, 32)
	ref := g.Clone()
	for bi, b := range w.Batches {
		c.ProcessBatch(b)
		rb := b
		if alg.Symmetric() {
			rb = symmetrize(b)
		}
		ref.ApplyBatch(rb)
		want, _ := algo.SolveSelective(ref, alg)
		got := c.Values()
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("%s nodes=%d batch %d: vertex %d = %v, want %v",
					alg.Name(), nodes, bi, v, got[v], want[v])
			}
		}
	}
}

func TestClusterSSSPMatchesStatic(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 7} {
		checkCluster(t, algo.SSSP{Src: 0}, nodes, clusterWorkload(81, 4))
	}
}

func TestClusterBFS(t *testing.T) {
	checkCluster(t, algo.BFS{Src: 0}, 4, clusterWorkload(82, 3))
}

func TestClusterCC(t *testing.T) {
	checkCluster(t, algo.CC{}, 3, clusterWorkload(83, 3))
}

func TestClusterDeletionHeavy(t *testing.T) {
	cfg := gen.TestDataset(84)
	cfg.NumV, cfg.NumE = 200, 1500
	edges := gen.Generate(cfg)
	w := gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.7, DeleteRatio: 0.8, BatchSize: 100, NumBatches: 4, Seed: 85,
	})
	checkCluster(t, algo.SSSP{Src: 0}, 4, w)
}

func TestClusterCrossTrafficScalesWithNodes(t *testing.T) {
	w := clusterWorkload(86, 1)
	g1 := graph.FromEdges(w.NumV, w.Initial)
	c1 := NewCluster(g1, algo.SSSP{Src: 0}, 1, 32)
	c1.ProcessBatch(w.Batches[0])
	g4 := graph.FromEdges(w.NumV, w.Initial)
	c4 := NewCluster(g4, algo.SSSP{Src: 0}, 4, 32)
	c4.ProcessBatch(w.Batches[0])
	if c1.LastCrossMsgs != 0 {
		t.Fatalf("single node sent %d cross messages", c1.LastCrossMsgs)
	}
	if c4.LastCrossMsgs == 0 && c4.LastRounds == 0 {
		t.Fatal("4-node cluster reported no distributed activity")
	}
}

func TestClusterOwnershipPartition(t *testing.T) {
	w := clusterWorkload(87, 0)
	g := graph.FromEdges(w.NumV, w.Initial)
	c := NewCluster(g, algo.SSSP{Src: 0}, 3, 16)
	counts := make([]int, 3)
	for _, o := range c.owner {
		if o < 0 || o >= 3 {
			t.Fatalf("invalid owner %d", o)
		}
		counts[o]++
	}
	for n, cnt := range counts {
		if cnt == 0 {
			t.Fatalf("node %d owns nothing: %v", n, counts)
		}
	}
}
