package dist

// Process-level chaos tests: build the real graphfly and graphfly-worker
// binaries, run a cluster of actual OS processes, and SIGKILL workers
// mid-stream through the supervisor's pid files. The cluster's converged
// output file must be byte-identical to a single-machine oracle run of the
// same workload — the acceptance criterion for kill -9 crash-restart.
//
// Kills are keyed to the coordinator's own "batch N:" progress lines
// rather than wall-clock, so a fast machine cannot finish the stream
// before the crash lands.
//
// scripts/chaos.sh drives TestProcChaos with GRAPHFLY_CHAOS_RUNS for the
// long seeded campaign; the smoke test here keeps one crash-restart cycle
// in the default `go test ./...` tier.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	procBuildOnce sync.Once
	procBinDir    string
	procBuildErr  error
)

// buildBinaries compiles graphfly and graphfly-worker once per test binary
// and returns their paths. The worker sits next to graphfly so the default
// sibling lookup works too, though tests pass -workerBin explicitly.
func buildBinaries(t *testing.T) (graphflyBin, workerBin string) {
	t.Helper()
	procBuildOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			procBuildErr = err
			return
		}
		procBinDir, err = os.MkdirTemp("", "graphfly-bin-")
		if err != nil {
			procBuildErr = err
			return
		}
		for _, pkg := range []string{"graphfly", "graphfly-worker"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(procBinDir, pkg), "./cmd/"+pkg)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				procBuildErr = fmt.Errorf("go build ./cmd/%s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if procBuildErr != nil {
		t.Fatal(procBuildErr)
	}
	return filepath.Join(procBinDir, "graphfly"), filepath.Join(procBinDir, "graphfly-worker")
}

const procBatches = 12

// workloadArgs is the shared flag set: both the oracle and the cluster run
// must see the exact same generated stream (LJ preset, 4,800 vertices).
func workloadArgs() []string {
	return []string{
		"-algo", "SSSP", "-source", "1",
		"-dataset", "LJ", "-seed", "42", "-deletions", "0.3",
		"-numberOfUpdateBatches", strconv.Itoa(procBatches),
		"-nEdges", "2000",
	}
}

// runOracle produces the single-machine reference output file.
func runOracle(t *testing.T, bin, out string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, append(workloadArgs(), "-outputFile", out)...)
	if outB, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("oracle run: %v\n%s", err, outB)
	}
}

// syncBuffer is a mutex-guarded buffer the chaos goroutine can poll while
// the child process writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// runClusterWithChaos starts graphfly -cluster and SIGKILLs one random
// live worker after each batch index in killAfter appears in the output.
// It returns the number of kills landed. The whole process group gets
// SIGKILL on timeout so no worker leaks.
func runClusterWithChaos(t *testing.T, graphflyBin, workerBin string,
	n int, clusterDir, out string, rng *rand.Rand, killAfter []int) int {
	t.Helper()
	args := append(workloadArgs(),
		"-cluster", strconv.Itoa(n),
		"-clusterDir", clusterDir,
		"-workerBin", workerBin,
		"-outputFile", out,
	)
	cmd := exec.Command(graphflyBin, args...)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	output := &syncBuffer{}
	cmd.Stdout = output
	cmd.Stderr = output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	pgid := cmd.Process.Pid

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	killCh := make(chan int, 1)
	chaosStop := make(chan struct{})
	go func() {
		kills := 0
		defer func() { killCh <- kills }()
		for _, after := range killAfter {
			marker := fmt.Sprintf("batch %d:", after)
			for !strings.Contains(output.String(), marker) {
				select {
				case <-chaosStop:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			if pid, ok := pickVictim(clusterDir, rng); ok {
				if err := syscall.Kill(pid, syscall.SIGKILL); err == nil {
					kills++
					t.Logf("chaos: SIGKILLed worker pid %d after batch %d", pid, after)
				}
			}
		}
	}()

	var runErr error
	select {
	case runErr = <-done:
	case <-time.After(120 * time.Second):
		syscall.Kill(-pgid, syscall.SIGKILL)
		<-done
		close(chaosStop)
		t.Fatalf("cluster run exceeded its 120s budget\n%s", output.String())
	}
	close(chaosStop)
	landed := <-killCh
	if runErr != nil {
		t.Fatalf("cluster run: %v\n%s", runErr, output.String())
	}
	return landed
}

// pickVictim reads the supervisor's worker-<id>.pid files and picks one
// live pid at random.
func pickVictim(clusterDir string, rng *rand.Rand) (int, bool) {
	matches, _ := filepath.Glob(filepath.Join(clusterDir, "worker-*.pid"))
	var pids []int
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
		if err != nil || pid <= 0 {
			continue
		}
		pids = append(pids, pid)
	}
	if len(pids) == 0 {
		return 0, false
	}
	return pids[rng.Intn(len(pids))], true
}

// compareOutputs asserts the cluster's converged values file is
// byte-identical to the oracle's.
func compareOutputs(t *testing.T, oraclePath, clusterPath string) {
	t.Helper()
	want, err := os.ReadFile(oraclePath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(clusterPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("oracle output is empty")
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("cluster output diverges from the single-machine oracle (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestProcCrashRestartSmoke is the CI-tier smoke: 3 real worker processes,
// one SIGKILL mid-stream, supervisor respawn, bit-exact convergence.
func TestProcCrashRestartSmoke(t *testing.T) {
	graphflyBin, workerBin := buildBinaries(t)
	dir := t.TempDir()
	oracleOut := filepath.Join(dir, "oracle.txt")
	clusterOut := filepath.Join(dir, "cluster.txt")

	runOracle(t, graphflyBin, oracleOut)
	kills := runClusterWithChaos(t, graphflyBin, workerBin, 3,
		filepath.Join(dir, "cluster"), clusterOut,
		rand.New(rand.NewSource(1)), []int{1})
	if kills == 0 {
		t.Fatal("chaos landed no kill — the run finished before the crash; smoke proved nothing")
	}
	compareOutputs(t, oracleOut, clusterOut)
}

// TestProcChaos is the seeded kill -9 campaign. GRAPHFLY_CHAOS_RUNS picks
// the number of seeded runs (scripts/chaos.sh sets 20+); default is 2.
func TestProcChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos campaign is slow under -short")
	}
	runs := 2
	if s := os.Getenv("GRAPHFLY_CHAOS_RUNS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad GRAPHFLY_CHAOS_RUNS %q", s)
		}
		runs = v
	}
	graphflyBin, workerBin := buildBinaries(t)
	dir := t.TempDir()
	oracleOut := filepath.Join(dir, "oracle.txt")
	runOracle(t, graphflyBin, oracleOut)

	for seed := 1; seed <= runs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			// 2-3 kills at distinct random batch boundaries mid-stream.
			nk := 2 + rng.Intn(2)
			after := rng.Perm(procBatches - 2)[:nk]
			for i := range after {
				after[i]++ // batches 1..procBatches-2: never before batch 0 or after the last
			}
			sortInts(after)
			rdir := filepath.Join(dir, fmt.Sprintf("run-%d", seed))
			clusterOut := filepath.Join(dir, fmt.Sprintf("cluster-%d.txt", seed))
			kills := runClusterWithChaos(t, graphflyBin, workerBin, 3,
				rdir, clusterOut, rng, after)
			t.Logf("seed %d: %d kills landed after batches %v", seed, kills, after)
			if kills == 0 {
				t.Fatal("chaos landed no kill")
			}
			compareOutputs(t, oracleOut, clusterOut)
		})
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
