// Package dist implements the distributed GraphFly runtime of §VI as a
// deterministic cost-model simulation (the documented substitution for the
// paper's 16-node MPI cluster — DESIGN.md §2).
//
// The simulation is driven by real execution traces: the single-machine
// engine records, per batch, how much work each dependency-flow performed
// and how many messages crossed each flow pair (engine.WorkTrace). The
// cluster model then
//
//   - places flows on worker nodes (the Manager's flow-worker table),
//     preferring to co-locate communicating flows (§VI Data Management),
//   - balances vertex/work load across nodes, optionally with work
//     stealing (§VI Workload Balancing),
//   - charges per-message latency and per-byte bandwidth for flow messages
//     that cross node boundaries (§VI Communication), and
//   - reports the resulting makespan.
//
// Because the traces come from the real engine, the scaling shapes of
// Fig 16 (time falls with nodes until communication dominates) emerge from
// the actual partitioning and communication structure of the workload.
package dist

import (
	"fmt"
	"sort"

	"repro/internal/engine"
)

// CostModel prices the simulated cluster. Defaults approximate the paper's
// testbed: 2.1 GHz cores (≈1 ns per simple edge op after IPC effects) and
// a 10 Gbps network with small control messages.
type CostModel struct {
	// EdgeOpNs is the compute cost of one edge operation on one core.
	EdgeOpNs float64
	// CoresPerNode is the number of worker cores per node.
	CoresPerNode int
	// MsgLatencyNs is the fixed cost of one cross-node message.
	MsgLatencyNs float64
	// MsgBytes is the payload size of one flow message.
	MsgBytes float64
	// ByteNs is the per-byte transfer cost (10 Gbps ≈ 0.8 ns/byte).
	ByteNs float64
	// BatchingFactor is how many flow messages the runtime coalesces into
	// one network send between a node pair (MPI-style aggregation); the
	// fixed latency is amortized across the batch.
	BatchingFactor float64
	// ManagerNs is the fixed per-batch Manager overhead (scheduling,
	// flow-worker table lookups).
	ManagerNs float64
	// Faults prices an unreliable deployment. The zero value models the
	// perfect network and changes nothing.
	Faults FaultProfile
}

// FaultProfile prices the fault layer in the cost model: retransmissions
// inflate communication, ack traffic adds bytes, crashes add detection
// latency plus recovery work, and checkpoints charge steady-state overhead.
// Every term is non-negative and non-decreasing in its rate, so the
// simulated makespan is monotonically non-decreasing in the injected fault
// level (asserted by tests).
type FaultProfile struct {
	// DropRate / DupRate inflate cross-node traffic: each message costs
	// 1/(1-DropRate) expected transmissions plus DupRate duplicate copies.
	DropRate float64
	DupRate  float64
	// DelayRate is the fraction of messages held back; each pays
	// ExtraDelayNs of additional latency.
	DelayRate    float64
	ExtraDelayNs float64
	// AckBytes is the ack payload charged per delivered cross-node message.
	AckBytes float64
	// Crashes is the number of worker crashes to price into the batch.
	// Each pays DetectionNs of heartbeat-timeout latency plus recovery
	// work: re-deriving the mean per-node compute share and replaying
	// ReplayFraction of the cross-node communication.
	Crashes        int
	DetectionNs    float64
	ReplayFraction float64
	// CheckpointEvery amortizes CheckpointNsPerFlow × flows over the
	// checkpoint interval (0 disables the charge).
	CheckpointEvery     int
	CheckpointNsPerFlow float64
}

func (p FaultProfile) enabled() bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.DelayRate > 0 || p.AckBytes > 0 ||
		p.Crashes > 0 || p.CheckpointNsPerFlow > 0
}

// DefaultFaultProfile prices a mildly lossy datacenter network with the
// functional cluster's recovery machinery.
func DefaultFaultProfile(crashes int) FaultProfile {
	return FaultProfile{
		DropRate:            0.01,
		DupRate:             0.005,
		DelayRate:           0.05,
		ExtraDelayNs:        5_000,
		AckBytes:            8,
		Crashes:             crashes,
		DetectionNs:         1_000_000, // a few heartbeat intervals
		ReplayFraction:      0.25,
		CheckpointEvery:     4,
		CheckpointNsPerFlow: 200,
	}
}

// DefaultCostModel returns the paper-testbed-flavoured defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		EdgeOpNs:       4,
		CoresPerNode:   28,
		MsgLatencyNs:   2500, // ~2.5 µs one-way small-message latency
		MsgBytes:       16,   // vertex id + delta payload
		ByteNs:         0.8,
		BatchingFactor: 64,
		ManagerNs:      50_000,
	}
}

// Strategy selects the flow-placement policy.
type Strategy int

const (
	// RoundRobin places flow f on node f % N (no locality, no balance).
	RoundRobin Strategy = iota
	// LPT places flows greedily, heaviest first, on the least-loaded node
	// (load balance, ignores communication).
	LPT
	// LocalityLPT is LPT with a communication-affinity bonus: a flow
	// prefers the node already holding the flows it talks to, breaking
	// ties toward the less-loaded node. This models §VI's placement of
	// same-D-tree flows on the same Worker.
	LocalityLPT
)

func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case LPT:
		return "lpt"
	case LocalityLPT:
		return "locality-lpt"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Placement maps flows to nodes.
type Placement struct {
	NodeOf map[int32]int
	Nodes  int
}

// Place computes a flow placement for the trace.
func Place(trace *engine.WorkTrace, nodes int, strat Strategy) Placement {
	p := Placement{NodeOf: make(map[int32]int, len(trace.FlowWork)), Nodes: nodes}
	if nodes <= 0 {
		nodes = 1
		p.Nodes = 1
	}
	flows := make([]int32, 0, len(trace.FlowWork))
	for f := range trace.FlowWork {
		flows = append(flows, f)
	}
	// Heaviest-first for the greedy strategies; sorted for determinism.
	sort.Slice(flows, func(i, j int) bool {
		wi, wj := trace.FlowWork[flows[i]], trace.FlowWork[flows[j]]
		if wi != wj {
			return wi > wj
		}
		return flows[i] < flows[j]
	})

	switch strat {
	case RoundRobin:
		for i, f := range flows {
			p.NodeOf[f] = i % nodes
		}
	case LPT:
		load := make([]int64, nodes)
		for _, f := range flows {
			best := 0
			for n := 1; n < nodes; n++ {
				if load[n] < load[best] {
					best = n
				}
			}
			p.NodeOf[f] = best
			load[best] += trace.FlowWork[f]
		}
	case LocalityLPT:
		load := make([]int64, nodes)
		// Per-flow communication partners.
		partners := make(map[int32]map[int32]int64)
		addP := func(a, b int32, n int64) {
			m := partners[a]
			if m == nil {
				m = make(map[int32]int64)
				partners[a] = m
			}
			m[b] += n
		}
		for pair, n := range trace.FlowMsgs {
			addP(pair[0], pair[1], n)
			addP(pair[1], pair[0], n)
		}
		var totalWork int64
		for _, w := range trace.FlowWork {
			totalWork += w
		}
		target := totalWork/int64(nodes) + 1
		for _, f := range flows {
			// Affinity score per node from already-placed partners.
			aff := make([]int64, nodes)
			for g, n := range partners[f] {
				if node, ok := p.NodeOf[g]; ok {
					aff[node] += n
				}
			}
			best, bestScore := 0, int64(-1)<<62
			for n := 0; n < nodes; n++ {
				if load[n] >= target*2 {
					continue // badly overloaded: not a candidate
				}
				score := aff[n]*int64(100) - load[n]/1024
				if score > bestScore {
					best, bestScore = n, score
				}
			}
			p.NodeOf[f] = best
			load[best] += trace.FlowWork[f]
		}
	}
	return p
}

// Result reports one simulated batch execution.
type Result struct {
	MakespanNs   float64
	ComputeNs    []float64 // per node
	CommNs       []float64 // per node
	CrossMsgs    int64
	LocalMsgs    int64
	StolenWorkNs float64 // work moved by work stealing
	RetransMsgs  int64   // extra transmissions charged by the fault profile
	FaultNs      float64 // detection + recovery + checkpoint time in the makespan
}

// Simulate prices one batch trace on a cluster of the given size.
// workStealing lets idle nodes absorb divisible surplus compute from
// loaded ones (an optimistic bound on §VI's stealing, still paying the
// communication bill at the original placement).
func Simulate(trace *engine.WorkTrace, pl Placement, cm CostModel, workStealing bool) Result {
	nodes := pl.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	res := Result{
		ComputeNs: make([]float64, nodes),
		CommNs:    make([]float64, nodes),
	}
	flows := make([]int32, 0, len(trace.FlowWork))
	for f := range trace.FlowWork {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		n := pl.NodeOf[f]
		res.ComputeNs[n] += float64(trace.FlowWork[f]) * cm.EdgeOpNs / float64(cm.CoresPerNode)
	}
	bf := cm.BatchingFactor
	if bf < 1 {
		bf = 1
	}
	msgCost := cm.MsgLatencyNs/bf + cm.MsgBytes*cm.ByteNs
	// Fault pricing per cross-node message: expected transmissions are
	// 1/(1-drop) (geometric retransmission) plus dup duplicate copies, acks
	// add bytes, and delayed messages add latency.
	var extraFactor, perMsgExtraNs float64
	if f := cm.Faults; f.enabled() {
		drop := f.DropRate
		if drop > 0.99 {
			drop = 0.99
		}
		extraFactor = 1/(1-drop) - 1 + f.DupRate
		perMsgExtraNs = f.AckBytes*cm.ByteNs + f.DelayRate*f.ExtraDelayNs
	}
	// Deterministic pair order: float accumulation into CommNs must not
	// depend on map iteration order, or repeated simulations of the same
	// trace drift by an ulp.
	pairs := make([][2]int32, 0, len(trace.FlowMsgs))
	for pair := range trace.FlowMsgs {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		cnt := trace.FlowMsgs[pair]
		src, dst := pl.NodeOf[pair[0]], pl.NodeOf[pair[1]]
		if src == dst {
			res.LocalMsgs += cnt
			continue
		}
		res.CrossMsgs += cnt
		cost := float64(cnt) * (msgCost*(1+extraFactor) + perMsgExtraNs)
		res.CommNs[src] += cost / 2
		res.CommNs[dst] += cost / 2
	}
	res.RetransMsgs = int64(float64(res.CrossMsgs) * extraFactor)

	if workStealing && nodes > 1 {
		// Even out compute: total/nodes floor, but no node can go below
		// its communication-bound time.
		var total float64
		for _, c := range res.ComputeNs {
			total += c
		}
		mean := total / float64(nodes)
		for n := range res.ComputeNs {
			if res.ComputeNs[n] > mean {
				res.StolenWorkNs += res.ComputeNs[n] - mean
				res.ComputeNs[n] = mean
			} else {
				res.ComputeNs[n] = mean
			}
		}
	}
	for n := 0; n < nodes; n++ {
		if t := res.ComputeNs[n] + res.CommNs[n]; t > res.MakespanNs {
			res.MakespanNs = t
		}
	}
	res.MakespanNs += cm.ManagerNs
	if f := cm.Faults; f.enabled() {
		if f.Crashes > 0 {
			var totalCompute, totalComm float64
			for n := 0; n < nodes; n++ {
				totalCompute += res.ComputeNs[n]
				totalComm += res.CommNs[n]
			}
			// Each crash pays heartbeat-timeout latency, the re-derivation
			// of one node's compute share, and a fraction of the batch's
			// communication replayed from the upstream backups.
			recoverNs := totalCompute/float64(nodes) + f.ReplayFraction*totalComm
			res.FaultNs += float64(f.Crashes) * (f.DetectionNs + recoverNs)
		}
		if f.CheckpointEvery > 0 && f.CheckpointNsPerFlow > 0 {
			res.FaultNs += f.CheckpointNsPerFlow * float64(len(trace.FlowWork)) / float64(f.CheckpointEvery)
		}
		res.MakespanNs += res.FaultNs
	}
	return res
}

// Sweep runs Simulate over a range of cluster sizes and returns makespans
// in nanoseconds, index i holding the result for i+1 nodes.
func Sweep(trace *engine.WorkTrace, maxNodes int, cm CostModel, strat Strategy, workStealing bool) []float64 {
	out := make([]float64, maxNodes)
	for n := 1; n <= maxNodes; n++ {
		pl := Place(trace, n, strat)
		out[n-1] = Simulate(trace, pl, cm, workStealing).MakespanNs
	}
	return out
}

// MergeTraces folds multiple batch traces into one cumulative trace
// (placement is then optimized for the whole run, like the paper's
// steady-state assignment).
func MergeTraces(traces []*engine.WorkTrace) *engine.WorkTrace {
	out := &engine.WorkTrace{
		FlowWork: make(map[int32]int64),
		FlowMsgs: make(map[[2]int32]int64),
	}
	for _, t := range traces {
		if t == nil {
			continue
		}
		for f, w := range t.FlowWork {
			out.FlowWork[f] += w
		}
		for p, n := range t.FlowMsgs {
			out.FlowMsgs[p] += n
		}
	}
	return out
}
