package dist

// Per-worker durability for the socket runtime. Each worker process owns a
// directory holding:
//
//   - a wal.Log of applied batches, keyed by the cluster-global batch
//     sequence (the coordinator's boundary seq), and
//   - checkpoint files, each a frame-composed snapshot of the worker's full
//     view at a quiescent boundary:
//
//     [KindSnapHeader  seq + numV]
//     [KindSnapEdges   current edge list]
//     [KindDistCheckpoint  8B seq + EncodeState(vals, parent)]
//     [KindSnapFooter  seq]
//
// Checkpoints are written atomically (temp + rename + fsync) and validated
// frame-by-frame on load, falling back to the previous checkpoint when the
// newest is torn or corrupt — the same trust model as wal.ReadSnapshot. The
// KindDistCheckpoint frame (rather than KindSnapState) marks the file as a
// distributed-runtime artifact and carries the boundary seq redundantly
// inside the checksummed payload, so a renamed or cross-copied file is
// caught even if header and footer agree with each other.
//
// Retention keeps the two newest checkpoints; after a successful
// checkpoint the batch log is truncated through the older retained seq, so
// a restart replays at most (checkpoint interval) batches — and if the
// newest checkpoint is damaged, the older one plus the surviving log tail
// still reconstructs the same state.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wal"
)

const (
	wckptPrefix = "wckpt-"
	wckptSuffix = ".ckpt"
	// wckptRetain is how many checkpoints survive retention. Two for the
	// same reason durable.go keeps two snapshots: the log is only truncated
	// past the OLDER retained one, so the newer being corrupt never strands
	// the worker.
	wckptRetain = 2
)

func wckptName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", wckptPrefix, seq, wckptSuffix)
}

func wckptSeqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, wckptPrefix) || !strings.HasSuffix(name, wckptSuffix) {
		return 0, false
	}
	hexa := strings.TrimSuffix(strings.TrimPrefix(name, wckptPrefix), wckptSuffix)
	if len(hexa) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listWorkerCkpts returns the checkpoint sequences in dir, ascending.
func listWorkerCkpts(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dist: ckpt: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if s, ok := wckptSeqOf(e.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// workerCkpt is one decoded worker checkpoint.
type workerCkpt struct {
	Seq    uint64
	NumV   int
	Edges  []graph.Edge
	Vals   []float64
	Parent []int32
}

// writeWorkerCkpt persists the worker's full view at boundary seq.
func writeWorkerCkpt(dir string, seq uint64, g *graph.Streaming, vals []float64, parent []int32) error {
	numV := g.NumVertices()
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(numV))
	var buf []byte
	buf = wal.AppendFrame(buf, wal.KindSnapHeader, hdr[:])
	buf = wal.AppendFrame(buf, wal.KindSnapEdges, wal.EncodeEdges(nil, g.Edges()))
	buf = wal.AppendFrame(buf, wal.KindDistCheckpoint, wal.EncodeDistCheckpoint(nil, seq, vals, parent))
	buf = wal.AppendFrame(buf, wal.KindSnapFooter, hdr[0:8])

	tmp := filepath.Join(dir, wckptName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dist: ckpt: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("dist: ckpt: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dist: ckpt: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dist: ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, wckptName(seq))); err != nil {
		return fmt.Errorf("dist: ckpt: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readWorkerCkpt loads and fully validates one checkpoint file.
func readWorkerCkpt(path string) (*workerCkpt, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dist: ckpt: %w", err)
	}
	defer f.Close()
	next := func(want byte) ([]byte, error) {
		kind, payload, err := wal.ReadFrame(f)
		if err != nil {
			return nil, fmt.Errorf("dist: ckpt %s: %w", filepath.Base(path), err)
		}
		if kind != want {
			return nil, fmt.Errorf("%w: ckpt frame kind %d, want %d", wal.ErrCorrupt, kind, want)
		}
		return payload, nil
	}
	hdr, err := next(wal.KindSnapHeader)
	if err != nil {
		return nil, err
	}
	if len(hdr) != 12 {
		return nil, fmt.Errorf("%w: ckpt header %d bytes", wal.ErrCorrupt, len(hdr))
	}
	ck := &workerCkpt{Seq: binary.LittleEndian.Uint64(hdr[0:8]), NumV: int(binary.LittleEndian.Uint32(hdr[8:12]))}
	if ck.NumV < 0 || ck.NumV > 1<<28 {
		return nil, fmt.Errorf("%w: ckpt declares %d vertices", wal.ErrCorrupt, ck.NumV)
	}
	edgesP, err := next(wal.KindSnapEdges)
	if err != nil {
		return nil, err
	}
	if ck.Edges, err = wal.DecodeEdges(edgesP, ck.NumV); err != nil {
		return nil, err
	}
	stateP, err := next(wal.KindDistCheckpoint)
	if err != nil {
		return nil, err
	}
	var innerSeq uint64
	if innerSeq, ck.Vals, ck.Parent, err = wal.DecodeDistCheckpoint(stateP, ck.NumV, ck.NumV); err != nil {
		return nil, err
	}
	if innerSeq != ck.Seq {
		return nil, fmt.Errorf("%w: ckpt state seq %d disagrees with header %d", wal.ErrCorrupt, innerSeq, ck.Seq)
	}
	footer, err := next(wal.KindSnapFooter)
	if err != nil {
		return nil, err
	}
	if len(footer) != 8 || binary.LittleEndian.Uint64(footer) != ck.Seq {
		return nil, fmt.Errorf("%w: ckpt footer disagrees with header", wal.ErrCorrupt)
	}
	return ck, nil
}

// loadWorkerCkpt returns the newest intact checkpoint in dir, trying older
// ones when the newest fails validation. Returns (nil, nil) when the
// directory holds no usable checkpoint at all (fresh worker).
func loadWorkerCkpt(dir string) (*workerCkpt, error) {
	seqs, err := listWorkerCkpts(dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		ck, err := readWorkerCkpt(filepath.Join(dir, wckptName(seqs[i])))
		if err == nil {
			return ck, nil
		}
		lastErr = err
	}
	if lastErr != nil && !errors.Is(lastErr, os.ErrNotExist) {
		// Every candidate failed — report the newest failure; the caller
		// decides whether to start fresh or abort.
		return nil, lastErr
	}
	return nil, nil
}

// workerStore is a worker's durable half: the applied-batch log plus
// checkpoint files, with retention.
type workerStore struct {
	dir  string
	opts wal.Options
	log  *wal.Log
}

// openWorkerStore opens (creating if needed) the worker's durable state.
func openWorkerStore(dir string, reg *metrics.Registry) (*workerStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: store: %w", err)
	}
	opts := wal.Options{Dir: dir, Metrics: reg}
	log, err := wal.Open(opts)
	if err != nil {
		return nil, err
	}
	return &workerStore{dir: dir, opts: opts, log: log}, nil
}

// appendBatch logs one applied batch under the global boundary seq and
// forces it to disk before the worker acknowledges the boundary.
func (s *workerStore) appendBatch(seq uint64, applied graph.Batch) error {
	if err := s.log.Append(seq, applied); err != nil {
		return err
	}
	return s.log.Sync()
}

// checkpoint writes the checkpoint at seq, applies retention, and truncates
// the batch log through the older retained checkpoint.
func (s *workerStore) checkpoint(seq uint64, g *graph.Streaming, vals []float64, parent []int32) error {
	if err := writeWorkerCkpt(s.dir, seq, g, vals, parent); err != nil {
		return err
	}
	seqs, err := listWorkerCkpts(s.dir)
	if err != nil {
		return err
	}
	for len(seqs) > wckptRetain {
		if err := os.Remove(filepath.Join(s.dir, wckptName(seqs[0]))); err != nil {
			return fmt.Errorf("dist: ckpt: %w", err)
		}
		seqs = seqs[1:]
	}
	if len(seqs) == wckptRetain {
		return s.log.TruncateThrough(seqs[0])
	}
	return nil
}

// loadCkpt returns the newest intact checkpoint, or nil for a fresh store.
func (s *workerStore) loadCkpt() (*workerCkpt, error) { return loadWorkerCkpt(s.dir) }

// replay hands every logged batch with seq in (from, lastSeq] to fn, in
// order (same exclusive-from contract as wal.Log.Replay).
func (s *workerStore) replay(from uint64, fn func(seq uint64, b graph.Batch) error) error {
	return s.log.Replay(from, fn)
}

// lastSeq is the highest batch seq in the log (0 when empty).
func (s *workerStore) lastSeq() uint64 { return s.log.LastSeq() }

// wipe discards every durable artifact and reopens the store empty. A
// worker wipes when the coordinator sends a full state transfer: the local
// history diverged too far for the log tail to ever matter again, and a
// stale base under a fresh log would corrupt the next recovery.
func (s *workerStore) wipe() error {
	if err := s.log.Close(); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("dist: store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
			return fmt.Errorf("dist: store: %w", err)
		}
	}
	log, err := wal.Open(s.opts)
	if err != nil {
		return err
	}
	s.log = log
	return nil
}

func (s *workerStore) close() error { return s.log.Close() }
