package dist

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/rng"
)

// buildCheckpointedCluster runs a couple of batches with CheckpointEvery=1
// so the Manager holds a fresh committed checkpoint.
func buildCheckpointedCluster(t *testing.T) *Cluster {
	t.Helper()
	w := clusterWorkload(909, 2)
	g := graph.FromEdges(w.NumV, w.Initial)
	c := NewClusterWithFaults(g, algo.SSSP{Src: 0}, 3, 0, FaultConfig{CheckpointEvery: 1})
	for _, b := range w.Batches {
		c.ProcessBatch(b)
	}
	if len(c.ckpt.vals) == 0 {
		t.Fatal("no checkpoint committed")
	}
	return c
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	c := buildCheckpointedCluster(t)
	path := filepath.Join(t.TempDir(), "dist.ckpt")
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	vals, parent, err := LoadCheckpoint(path, len(c.parent))
	if err != nil {
		t.Fatal(err)
	}
	for v := range vals {
		if vals[v] != c.ckpt.vals[v] || parent[v] != c.ckpt.parent[v] {
			t.Fatalf("vertex %d differs after round trip", v)
		}
	}
	// RestoreCheckpoint installs it as the committed checkpoint.
	c2 := buildCheckpointedCluster(t)
	c2.ckpt.vals[0]++ // drift, then restore over it
	if err := c2.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if c2.ckpt.vals[0] != vals[0] {
		t.Fatal("restore did not install the saved state")
	}
}

// TestCheckpointLoadRejectsCorruption is the regression for the hardening:
// truncations and bit flips anywhere in the file must produce an error —
// never a panic, never silently loaded garbage.
func TestCheckpointLoadRejectsCorruption(t *testing.T) {
	c := buildCheckpointedCluster(t)
	path := filepath.Join(t.TempDir(), "dist.ckpt")
	if err := c.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	numV := len(c.parent)

	// Every truncation point.
	for cut := 0; cut < len(orig); cut += 1 + len(orig)/199 {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadCheckpoint(path, numV); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(orig))
		}
	}
	// Seeded random bit flips across the whole file, including the header.
	r := rng.New(4242)
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), orig...)
		mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadCheckpoint(path, numV); err == nil {
			t.Fatalf("bit flip %d accepted", i)
		}
	}
	// Wrong vertex count must also be rejected even on a pristine file.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, numV+1); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	// Trailing garbage after the frame is refused.
	if err := os.WriteFile(path, append(append([]byte(nil), orig...), 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, numV); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
