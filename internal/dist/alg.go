package dist

// Wire naming for selective algorithms: the coordinator ships (name, source)
// in the Welcome and the worker reconstructs the algorithm locally, so the
// two processes agree on Base/Better/Propagate without serializing code.

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/graph"
)

// selectiveWire extracts the wire identity of a selective algorithm.
func selectiveWire(alg algo.Selective) (name string, src uint32, err error) {
	switch a := alg.(type) {
	case algo.SSSP:
		return "SSSP", uint32(a.Src), nil
	case algo.BFS:
		return "BFS", uint32(a.Src), nil
	case algo.SSWP:
		return "SSWP", uint32(a.Src), nil
	case algo.CC:
		return "CC", 0, nil
	default:
		return "", 0, fmt.Errorf("dist: algorithm %q is not wire-encodable", alg.Name())
	}
}

// selectiveByName is the inverse of selectiveWire, run worker-side.
func selectiveByName(name string, src uint32) (algo.Selective, error) {
	switch name {
	case "SSSP":
		return algo.SSSP{Src: graph.VertexID(src)}, nil
	case "BFS":
		return algo.BFS{Src: graph.VertexID(src)}, nil
	case "SSWP":
		return algo.SSWP{Src: graph.VertexID(src)}, nil
	case "CC":
		return algo.CC{}, nil
	default:
		return nil, fmt.Errorf("dist: unknown selective algorithm %q", name)
	}
}
