package etree

import (
	"repro/internal/graph"
)

// Direction selects which triangle of the adjacency matrix a D-tree forest
// covers. With vertices ordered by ID, Forward covers edges u->v with u < v
// and Backward covers u->v with u > v. The paper builds one D-tree forest
// per triangle: one partitions the graph into dependency-flows (space), the
// other constrains their execution order (time) — §V-A.
type Direction int

const (
	// Forward covers edges whose destination ID exceeds the source ID.
	Forward Direction = iota
	// Backward covers edges whose destination ID is below the source ID.
	Backward
)

// Covers reports whether edge (u, v) belongs to this triangle.
func (d Direction) Covers(u, v graph.VertexID) bool {
	if u == v {
		return false
	}
	if d == Forward {
		return u < v
	}
	return u > v
}

// Forest is a D-tree forest (paper §IV): an elimination-tree-like structure
// over one triangle of the graph, extended with hyper vertices so that
// arbitrary (CONDITION-1-violating) graphs are handled. Following
// Algorithm 1, a vertex with more than one triangular out-neighbour is
// merged with all of them into a hyper vertex (inseparable); a vertex with
// exactly one gets a tree link to it.
//
// Maintenance is incremental: additions are O(1) amortized (a union and a
// link update); deletions are O(out-degree) for the link recomputation and
// mark the surrounding hyper vertex dirty — separation is deferred to a
// threshold-triggered rebuild, which is always correct (merged-but-
// separable hyper vertices only coarsen flows, they never break PROPERTY 1).
type Forest struct {
	n   int
	dir Direction

	fdeg []int32 // triangular out-degree of each vertex
	link []int32 // smallest triangular out-neighbour, -1 if none
	uf   *UnionFind

	dirty     int // deletions since last rebuild that may allow separation
	mergeOps  int // total hyper merge operations (stats)
	maintainN int // incremental maintenance operations (stats)
}

// NewForest builds the D-tree forest for one triangle of g, implementing
// DtreeGeneration of Algorithm 1 in O(N + E).
func NewForest(g *graph.Streaming, dir Direction) *Forest {
	f := &Forest{
		n:    g.NumVertices(),
		dir:  dir,
		fdeg: make([]int32, g.NumVertices()),
		link: make([]int32, g.NumVertices()),
		uf:   NewUnionFind(g.NumVertices()),
	}
	f.build(g)
	return f
}

func (f *Forest) build(g *graph.Streaming) {
	for v := 0; v < f.n; v++ {
		f.link[v] = -1
		f.fdeg[v] = 0
	}
	f.uf.Reset()
	f.dirty = 0
	for v := 0; v < f.n; v++ {
		src := graph.VertexID(v)
		for _, h := range g.Out(src) {
			if !f.dir.Covers(src, h.To) {
				continue
			}
			f.fdeg[v]++
			if f.link[v] == -1 || graph.VertexID(f.link[v]) > h.To {
				f.link[v] = int32(h.To)
			}
		}
		if f.fdeg[v] > 1 {
			// mergeHyperVertexInDTree: v and all its triangular
			// out-neighbours become one hyper vertex.
			for _, h := range g.Out(src) {
				if f.dir.Covers(src, h.To) {
					if _, merged := f.uf.Union(int32(v), int32(h.To)); merged {
						f.mergeOps++
					}
				}
			}
		}
	}
}

// N returns the number of vertices.
func (f *Forest) N() int { return f.n }

// Dir returns the forest's triangle.
func (f *Forest) Dir() Direction { return f.dir }

// Link returns v's tree link (smallest triangular out-neighbour) or -1.
func (f *Forest) Link(v graph.VertexID) int32 { return f.link[v] }

// Rep returns the hyper-vertex representative of v.
func (f *Forest) Rep(v graph.VertexID) int32 { return f.uf.Find(int32(v)) }

// SameHyper reports whether u and v share a hyper vertex.
func (f *Forest) SameHyper(u, v graph.VertexID) bool {
	return f.uf.Same(int32(u), int32(v))
}

// HyperSize returns the size of v's hyper vertex (1 = plain vertex).
func (f *Forest) HyperSize(v graph.VertexID) int32 { return f.uf.SetSize(int32(v)) }

// TriDegree returns the triangular out-degree of v.
func (f *Forest) TriDegree(v graph.VertexID) int32 { return f.fdeg[v] }

// AddEdge maintains the forest for an edge addition (edgeAddition of
// Algorithm 1). Updates outside this forest's triangle are ignored.
// Amortized O(1): at most two unions and a link comparison.
func (f *Forest) AddEdge(u, v graph.VertexID) {
	if !f.dir.Covers(u, v) {
		return
	}
	f.maintainN++
	f.fdeg[u]++
	switch {
	case f.fdeg[u] == 1:
		f.link[u] = int32(v)
	case f.fdeg[u] == 2:
		// u gains a second parent: merge u with both (CheckMergeHyperVertex).
		if _, m := f.uf.Union(int32(u), f.link[u]); m {
			f.mergeOps++
		}
		if _, m := f.uf.Union(int32(u), int32(v)); m {
			f.mergeOps++
		}
		if int32(v) < f.link[u] {
			f.link[u] = int32(v)
		}
	default:
		// Already a hyper member: absorb the new parent.
		if _, m := f.uf.Union(int32(u), int32(v)); m {
			f.mergeOps++
		}
		if int32(v) < f.link[u] {
			f.link[u] = int32(v)
		}
	}
}

// DeleteEdge maintains the forest for an edge deletion (edgeDeletion of
// Algorithm 1). g must already reflect the deletion. The link is
// recomputed by scanning u's remaining out-edges; hyper separation is
// deferred (CheckSeparateHyperVertex is lazy — see RebuildIfDirty).
func (f *Forest) DeleteEdge(g *graph.Streaming, u, v graph.VertexID) {
	if !f.dir.Covers(u, v) {
		return
	}
	f.maintainN++
	f.fdeg[u]--
	if f.fdeg[u] < 0 {
		f.fdeg[u] = 0
	}
	if f.link[u] == int32(v) {
		f.link[u] = -1
		for _, h := range g.Out(u) {
			if f.dir.Covers(u, h.To) && (f.link[u] == -1 || graph.VertexID(f.link[u]) > h.To) {
				f.link[u] = int32(h.To)
			}
		}
	}
	if f.uf.SetSize(int32(u)) > 1 {
		// The hyper vertex containing u may now be separable.
		f.dirty++
	}
}

// DirtyDeletions returns the count of deletions since the last rebuild that
// might allow hyper-vertex separation.
func (f *Forest) DirtyDeletions() int { return f.dirty }

// RebuildIfDirty rebuilds the forest from scratch when accumulated
// deletions exceed frac*N, restoring exact (minimal) hyper vertices. It
// reports whether a rebuild happened.
func (f *Forest) RebuildIfDirty(g *graph.Streaming, frac float64) bool {
	if float64(f.dirty) <= frac*float64(f.n) {
		return false
	}
	f.build(g)
	return true
}

// Stats summarizes the forest's structure.
type Stats struct {
	Vertices      int
	HyperVertices int // hyper vertices with >= 2 members
	MaxHyperSize  int
	Trees         int // D-trees in the forest (roots at hyper granularity)
	MergeOps      int
	MaintainOps   int
}

// ComputeStats walks the forest and returns its statistics. A hyper node is
// a root when no member has a tree link leaving the hyper node.
func (f *Forest) ComputeStats() Stats {
	s := Stats{Vertices: f.n, MergeOps: f.mergeOps, MaintainOps: f.maintainN}
	sizes := make(map[int32]int)
	hasParent := make(map[int32]bool)
	for v := 0; v < f.n; v++ {
		r := f.uf.Find(int32(v))
		sizes[r]++
		if l := f.link[v]; l != -1 {
			if lr := f.uf.Find(l); lr != r {
				hasParent[r] = true
			}
		}
	}
	for r, sz := range sizes {
		if sz >= 2 {
			s.HyperVertices++
		}
		if sz > s.MaxHyperSize {
			s.MaxHyperSize = sz
		}
		if !hasParent[r] {
			s.Trees++
		}
	}
	return s
}
