package etree

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(6)
	if u.NumSets() != 6 || u.Len() != 6 {
		t.Fatalf("fresh union-find wrong: sets=%d len=%d", u.NumSets(), u.Len())
	}
	if _, merged := u.Union(0, 1); !merged {
		t.Fatal("first union did not merge")
	}
	if _, merged := u.Union(1, 0); merged {
		t.Fatal("repeated union merged again")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if !u.Same(1, 2) {
		t.Fatal("transitive union broken")
	}
	if u.SetSize(1) != 4 {
		t.Fatalf("SetSize = %d, want 4", u.SetSize(1))
	}
	if u.NumSets() != 3 {
		t.Fatalf("NumSets = %d, want 3", u.NumSets())
	}
	u.Reset()
	if u.NumSets() != 6 || u.Same(0, 1) {
		t.Fatal("Reset incomplete")
	}
}

// Paper Fig 6: lower triangular matrix whose directed graph has edges
// 0->2, 1->2, 2->3, 1->4, 3->5, 4->5 (vertex i depends on larger j).
// The elimination tree should be 0->2->3->5 and 1->2, 4->5.
func TestEliminationTreeFig6(t *testing.T) {
	edges := [][2]uint32{{0, 2}, {1, 2}, {2, 3}, {1, 4}, {3, 5}, {4, 5}}
	parent := EliminationTree(6, edges)
	want := []int32{2, 2, 3, 5, 5, -1}
	for v, p := range parent {
		if p != want[v] {
			t.Fatalf("parent[%d] = %d, want %d (full: %v)", v, p, want[v], parent)
		}
	}
}

// Fig 6(d): deleting 1->2 makes the plain elimination tree lose the 1~2
// dependency (they land in disjoint subtrees even though 1 reaches 2's
// subtree via 4->5). This is the deficiency D-trees repair.
func TestEliminationTreeLosesDependencyWithoutCondition1(t *testing.T) {
	edges := [][2]uint32{{0, 2}, {2, 3}, {1, 4}, {3, 5}, {4, 5}}
	parent := EliminationTree(6, edges)
	if parent[1] != 4 {
		t.Fatalf("parent[1] = %d, want 4", parent[1])
	}
	if parent[0] != 2 {
		t.Fatalf("parent[0] = %d, want 2", parent[0])
	}
	sets := SubtreeSets(parent)
	if len(sets) != 1 {
		// 5 is the only root; both chains meet at 5.
		t.Fatalf("expected a single tree rooted at 5, got %v", sets)
	}
}

func TestSubtreeSets(t *testing.T) {
	parent := []int32{2, 2, -1, 4, -1}
	sets := SubtreeSets(parent)
	if len(sets) != 2 {
		t.Fatalf("want 2 trees, got %v", sets)
	}
	if got := sets[2]; len(got) != 3 {
		t.Fatalf("tree at 2 = %v", got)
	}
	if got := sets[4]; len(got) != 2 {
		t.Fatalf("tree at 4 = %v", got)
	}
}

func TestDirectionCovers(t *testing.T) {
	if !Forward.Covers(1, 2) || Forward.Covers(2, 1) || Forward.Covers(3, 3) {
		t.Fatal("Forward.Covers wrong")
	}
	if !Backward.Covers(2, 1) || Backward.Covers(1, 2) || Backward.Covers(3, 3) {
		t.Fatal("Backward.Covers wrong")
	}
}

func TestForestSingleChain(t *testing.T) {
	// 0->1->2->3: every vertex has one forward neighbour: a pure
	// elimination tree, no hyper vertices.
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 1}})
	f := NewForest(g, Forward)
	for v := uint32(0); v < 3; v++ {
		if f.Link(v) != int32(v+1) {
			t.Fatalf("link[%d] = %d", v, f.Link(v))
		}
		if f.TriDegree(v) != 1 {
			t.Fatalf("fdeg[%d] = %d", v, f.TriDegree(v))
		}
	}
	st := f.ComputeStats()
	if st.HyperVertices != 0 {
		t.Fatalf("chain created hyper vertices: %+v", st)
	}
	if st.Trees != 4 {
		// Each vertex is its own hyper node; roots = nodes with no
		// outgoing link to a different hyper node. Only 3 has none, but
		// singleton hyper nodes 0,1,2 have links, so Trees counts reps
		// without parents: only vertex 3.
		if st.Trees != 1 {
			t.Fatalf("Trees = %d, want 1: %+v", st.Trees, st)
		}
	}
}

func TestForestHyperMerge(t *testing.T) {
	// 0 -> {1, 2}: out-degree 2 in the forward triangle, so 0, 1, 2 merge
	// into one hyper vertex (Algorithm 1 lines 5-6).
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 1}})
	f := NewForest(g, Forward)
	if !f.SameHyper(0, 1) || !f.SameHyper(0, 2) {
		t.Fatal("hyper merge missing")
	}
	if f.HyperSize(0) != 3 {
		t.Fatalf("hyper size = %d", f.HyperSize(0))
	}
	st := f.ComputeStats()
	if st.HyperVertices != 1 || st.MaxHyperSize != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestForestBackwardTriangle(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 2, Dst: 0, W: 1}, {Src: 2, Dst: 1, W: 1}})
	fw := NewForest(g, Forward)
	bw := NewForest(g, Backward)
	if fw.TriDegree(2) != 0 {
		t.Fatal("forward forest saw backward edges")
	}
	if bw.TriDegree(2) != 2 {
		t.Fatal("backward forest missed its edges")
	}
	if !bw.SameHyper(2, 0) || !bw.SameHyper(2, 1) {
		t.Fatal("backward hyper merge missing")
	}
}

func TestForestIncrementalAddMatchesRebuild(t *testing.T) {
	r := rng.New(42)
	g := graph.NewStreaming(64)
	f := NewForest(g, Forward)
	for i := 0; i < 500; i++ {
		u := graph.VertexID(r.Intn(64))
		v := graph.VertexID(r.Intn(64))
		if u == v {
			continue
		}
		if g.AddEdge(graph.Edge{Src: u, Dst: v, W: 1}) {
			f.AddEdge(u, v)
		}
	}
	fresh := NewForest(g, Forward)
	for v := graph.VertexID(0); v < 64; v++ {
		if f.Link(v) != fresh.Link(v) {
			t.Fatalf("link[%d]: incremental %d, rebuild %d", v, f.Link(v), fresh.Link(v))
		}
		if f.TriDegree(v) != fresh.TriDegree(v) {
			t.Fatalf("fdeg[%d]: incremental %d, rebuild %d", v, f.TriDegree(v), fresh.TriDegree(v))
		}
	}
	// Incremental merging must be at least as coarse as a fresh build
	// (never finer): every fresh hyper pair is merged incrementally too.
	for u := graph.VertexID(0); u < 64; u++ {
		for v := graph.VertexID(0); v < 64; v++ {
			if fresh.SameHyper(u, v) && !f.SameHyper(u, v) {
				t.Fatalf("fresh merges %d,%d but incremental does not", u, v)
			}
		}
	}
}

func TestForestDeletionLinkRecompute(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 3, W: 1}})
	f := NewForest(g, Forward)
	if f.Link(0) != 1 {
		t.Fatalf("link[0] = %d", f.Link(0))
	}
	g.DeleteEdge(0, 1)
	f.DeleteEdge(g, 0, 1)
	if f.Link(0) != 3 {
		t.Fatalf("after delete, link[0] = %d, want 3", f.Link(0))
	}
	if f.TriDegree(0) != 1 {
		t.Fatalf("fdeg[0] = %d", f.TriDegree(0))
	}
	if f.DirtyDeletions() == 0 {
		t.Fatal("deletion inside a hyper vertex should mark dirty")
	}
}

func TestForestRebuildIfDirty(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 0, Dst: 2, W: 1}, {Src: 0, Dst: 3, W: 1}})
	f := NewForest(g, Forward)
	if f.HyperSize(0) != 4 {
		t.Fatalf("hyper size = %d", f.HyperSize(0))
	}
	// Delete two of the three fan-out edges: out-degree drops to 1 and a
	// fresh build would not merge anything.
	g.DeleteEdge(0, 1)
	f.DeleteEdge(g, 0, 1)
	g.DeleteEdge(0, 2)
	f.DeleteEdge(g, 0, 2)
	if !f.RebuildIfDirty(g, 0.1) {
		t.Fatal("rebuild should trigger at 10% dirty threshold")
	}
	if f.HyperSize(0) != 1 {
		t.Fatalf("after rebuild hyper size = %d, want 1", f.HyperSize(0))
	}
	if f.RebuildIfDirty(g, 0.1) {
		t.Fatal("rebuild should be idempotent on a clean forest")
	}
}

func TestForestOnRealTopology(t *testing.T) {
	cfg := gen.TestDataset(77)
	edges := gen.Generate(cfg)
	g := graph.FromEdges(cfg.NumV, edges)
	f := NewForest(g, Forward)
	st := f.ComputeStats()
	if st.Trees <= 0 {
		t.Fatalf("no trees extracted: %+v", st)
	}
	if st.MaxHyperSize <= 1 {
		t.Fatalf("RMAT graph should create hyper vertices: %+v", st)
	}
	// Every vertex with triangular out-degree >= 2 is in a hyper vertex
	// with all its forward out-neighbours (Algorithm 1 invariant).
	for v := graph.VertexID(0); int(v) < cfg.NumV; v++ {
		if f.TriDegree(v) < 2 {
			continue
		}
		for _, h := range g.Out(v) {
			if Forward.Covers(v, h.To) && !f.SameHyper(v, h.To) {
				t.Fatalf("vertex %d (deg %d) not merged with neighbour %d", v, f.TriDegree(v), h.To)
			}
		}
	}
}

func TestKeyForestBasics(t *testing.T) {
	f := NewKeyForest(6)
	f.SetParent(1, 0)
	f.SetParent(2, 0)
	f.SetParent(3, 1)
	f.SetParent(4, 1)
	f.SetParent(5, 4)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.SubtreeSize(0) != 6 {
		t.Fatalf("subtree(0) = %d", f.SubtreeSize(0))
	}
	if f.SubtreeSize(1) != 4 {
		t.Fatalf("subtree(1) = %d", f.SubtreeSize(1))
	}
	// Rewire 4 from 1 to 2; subtree sizes shift.
	f.SetParent(4, 2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.SubtreeSize(1) != 2 || f.SubtreeSize(2) != 3 {
		t.Fatalf("after rewire: |sub(1)|=%d |sub(2)|=%d", f.SubtreeSize(1), f.SubtreeSize(2))
	}
	f.SetParent(4, -1)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Parent(4) != -1 || f.SubtreeSize(4) != 2 {
		t.Fatal("detach failed")
	}
}

func TestKeyForestSubtreePrune(t *testing.T) {
	f := NewKeyForest(5)
	f.SetParent(1, 0)
	f.SetParent(2, 1)
	f.SetParent(3, 2)
	visited := []uint32{}
	f.Subtree(0, func(v uint32) bool {
		visited = append(visited, v)
		return v != 1 // prune below 1
	})
	if len(visited) != 2 {
		t.Fatalf("pruned traversal visited %v", visited)
	}
}

func TestKeyForestDetachAll(t *testing.T) {
	f := NewKeyForest(4)
	f.SetParent(1, 0)
	f.SetParent(2, 1)
	f.DetachAll()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 4; v++ {
		if f.Parent(v) != -1 || f.NumChildren(v) != 0 {
			t.Fatalf("DetachAll left state at %d", v)
		}
	}
}

// Property: random SetParent sequences that respect "parent has smaller id"
// (hence acyclic) always keep the children index consistent.
func TestKeyForestPropertyConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		kf := NewKeyForest(32)
		for i := 0; i < 200; i++ {
			v := uint32(1 + r.Intn(31))
			var p int32
			if r.Float64() < 0.2 {
				p = -1
			} else {
				p = int32(r.Intn(int(v)))
			}
			kf.SetParent(v, p)
		}
		return kf.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForestBuild(b *testing.B) {
	cfg := gen.TestDataset(1)
	cfg.NumV, cfg.NumE = 10000, 80000
	g := graph.FromEdges(cfg.NumV, gen.Generate(cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewForest(g, Forward)
	}
}

func BenchmarkForestAddEdge(b *testing.B) {
	g := graph.NewStreaming(1 << 16)
	f := NewForest(g, Forward)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.VertexID(r.Intn(1 << 16))
		v := graph.VertexID(r.Intn(1 << 16))
		if u != v {
			f.AddEdge(u, v)
		}
	}
}
