package etree

import "fmt"

// KeyForest is the dependence forest tracked by selective (monotonic)
// algorithms: parent(v) is the source of v's *key edge* — the in-edge that
// determined v's current value, recorded during computation exactly as
// KickStarter does (§IV-B: "we track key edges to generate D-trees for
// selective algorithms"). Because every vertex has at most one key edge,
// the D-tree degenerates to an elimination-tree-like forest with no hyper
// vertices, and the trim set of an edge deletion is precisely the subtree
// of the deleted edge's target.
//
// The structure maintains a children index so subtree traversal costs
// O(subtree) tree nodes — no graph-edge traversal — which is what makes
// identifying impacted vertices before refinement cheap (paper §II-C,
// challenge ❶). SetParent is O(1).
//
// KeyForest is not safe for concurrent mutation; engines shard ownership so
// each vertex's parent is written by one worker, and reconcile through
// per-flow message queues.
type KeyForest struct {
	parent   []int32
	children [][]uint32
	posInPar []int32 // index of v inside children[parent[v]]
}

// NewKeyForest returns a forest of n parentless vertices.
func NewKeyForest(n int) *KeyForest {
	f := &KeyForest{
		parent:   make([]int32, n),
		children: make([][]uint32, n),
		posInPar: make([]int32, n),
	}
	for i := range f.parent {
		f.parent[i] = -1
		f.posInPar[i] = -1
	}
	return f
}

// Len returns the number of vertices.
func (f *KeyForest) Len() int { return len(f.parent) }

// Parent returns v's key-edge source, or -1.
func (f *KeyForest) Parent(v uint32) int32 { return f.parent[v] }

// NumChildren returns the number of key-edge children of v.
func (f *KeyForest) NumChildren(v uint32) int { return len(f.children[v]) }

// SetParent rewires v under p (p == -1 detaches v). O(1) via swap-removal
// from the old parent's child list.
func (f *KeyForest) SetParent(v uint32, p int32) {
	old := f.parent[v]
	if old == p {
		return
	}
	if old != -1 {
		cs := f.children[old]
		i := f.posInPar[v]
		last := len(cs) - 1
		cs[i] = cs[last]
		f.posInPar[cs[i]] = i
		f.children[old] = cs[:last]
	}
	f.parent[v] = p
	if p == -1 {
		f.posInPar[v] = -1
		return
	}
	f.posInPar[v] = int32(len(f.children[p]))
	f.children[p] = append(f.children[p], v)
}

// Subtree calls visit for every vertex in v's subtree, v included, in DFS
// order. visit returning false prunes that vertex's descendants.
func (f *KeyForest) Subtree(v uint32, visit func(uint32) bool) {
	stack := []uint32{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !visit(x) {
			continue
		}
		stack = append(stack, f.children[x]...)
	}
}

// SubtreeSize returns |subtree(v)|.
func (f *KeyForest) SubtreeSize(v uint32) int {
	n := 0
	f.Subtree(v, func(uint32) bool { n++; return true })
	return n
}

// BulkLoad replaces the whole forest with the given parent array (-1 for
// roots) and rebuilds the children index in O(N). Engines call this at the
// start of each batch with the key edges recorded during the previous
// batch's computation (§IV-B: "We record these key edges during the runtime
// ... and then use them for the next batch updates").
func (f *KeyForest) BulkLoad(parent []int32) {
	if len(parent) != len(f.parent) {
		panic("etree: BulkLoad length mismatch")
	}
	for v := range f.parent {
		f.children[v] = f.children[v][:0]
	}
	copy(f.parent, parent)
	for v, p := range f.parent {
		if p == -1 {
			f.posInPar[v] = -1
			continue
		}
		f.posInPar[v] = int32(len(f.children[p]))
		f.children[p] = append(f.children[p], uint32(v))
	}
}

// DetachAll removes every parent link (used when an engine rebuilds state
// from scratch).
func (f *KeyForest) DetachAll() {
	for v := range f.parent {
		f.parent[v] = -1
		f.posInPar[v] = -1
		f.children[v] = f.children[v][:0]
	}
}

// Validate checks structural invariants: the children index matches the
// parent array and the forest is acyclic. O(N). Intended for tests.
func (f *KeyForest) Validate() error {
	for v, p := range f.parent {
		if p == -1 {
			if f.posInPar[v] != -1 {
				return fmt.Errorf("etree: root %d has child position %d", v, f.posInPar[v])
			}
			continue
		}
		if int(p) >= len(f.parent) {
			return fmt.Errorf("etree: vertex %d has out-of-range parent %d", v, p)
		}
		i := f.posInPar[v]
		if i < 0 || int(i) >= len(f.children[p]) || f.children[p][i] != uint32(v) {
			return fmt.Errorf("etree: children index broken for %d (parent %d pos %d)", v, p, i)
		}
	}
	// Acyclicity by pointer-jumping with a step bound.
	n := len(f.parent)
	for v := 0; v < n; v++ {
		x := int32(v)
		for steps := 0; x != -1; steps++ {
			if steps > n {
				return fmt.Errorf("etree: cycle through vertex %d", v)
			}
			x = f.parent[x]
		}
	}
	total := 0
	for _, cs := range f.children {
		total += len(cs)
	}
	withParent := 0
	for _, p := range f.parent {
		if p != -1 {
			withParent++
		}
	}
	if total != withParent {
		return fmt.Errorf("etree: children total %d != vertices with parents %d", total, withParent)
	}
	return nil
}
