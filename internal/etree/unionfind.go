// Package etree implements elimination trees and the paper's D-trees
// (elimination trees extended with hyper vertices), plus the key-edge
// dependence forest used by selective algorithms. These structures are the
// paper's §IV: they let the runtime identify dependency-flows *before*
// refinement, at tree-node cost rather than graph-edge cost.
package etree

// UnionFind is a standard disjoint-set forest with union by size and path
// halving. It implements the hyper-vertex merging of D-trees: vertices
// merged into one hyper vertex share a representative.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

// Find returns the representative of x with path halving.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and returns the surviving
// representative. It reports whether a merge happened (false if already in
// the same set).
func (u *UnionFind) Union(a, b int32) (int32, bool) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra, false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.sets--
	return ra, true
}

// Same reports whether a and b share a set.
func (u *UnionFind) Same(a, b int32) bool { return u.Find(a) == u.Find(b) }

// SetSize returns the size of x's set.
func (u *UnionFind) SetSize(x int32) int32 { return u.size[u.Find(x)] }

// NumSets returns the current number of disjoint sets.
func (u *UnionFind) NumSets() int { return u.sets }

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Reset returns every element to its own singleton set.
func (u *UnionFind) Reset() {
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	u.sets = len(u.parent)
}
