package etree

import "sort"

// EliminationTree builds the classic elimination tree T(L) of a triangular
// edge set (paper Eq. 1): the parent of vertex i is its smallest neighbour
// k > i. Edges are given as (lo, hi) pairs with lo < hi; the function is the
// textbook construction used as the baseline D-trees extend.
//
// The returned slice maps each vertex to its parent, or -1 for roots. Note
// that for matrices violating CONDITION 1 the elimination tree loses
// dependencies (Fig 6d) — that is exactly the deficiency D-trees repair.
func EliminationTree(n int, edges [][2]uint32) []int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	// Sort edges so each vertex sees its candidate parents in order.
	es := append([][2]uint32(nil), edges...)
	sort.Slice(es, func(a, b int) bool {
		if es[a][0] != es[b][0] {
			return es[a][0] < es[b][0]
		}
		return es[a][1] < es[b][1]
	})
	for _, e := range es {
		lo, hi := e[0], e[1]
		if lo >= hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			continue
		}
		if parent[lo] == -1 || uint32(parent[lo]) > hi {
			parent[lo] = int32(hi)
		}
	}
	return parent
}

// SubtreeSets returns, for a parent forest, the vertex set of every root's
// tree (used by tests to verify PROPERTY 1: child subtrees share no edges).
func SubtreeSets(parent []int32) map[int32][]uint32 {
	children := make(map[int32][]uint32)
	roots := []int32{}
	for v, p := range parent {
		if p == -1 {
			roots = append(roots, int32(v))
		} else {
			children[p] = append(children[p], uint32(v))
		}
	}
	out := make(map[int32][]uint32, len(roots))
	for _, r := range roots {
		var set []uint32
		stack := []uint32{uint32(r)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			set = append(set, v)
			stack = append(stack, children[int32(v)]...)
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		out[r] = set
	}
	return out
}
