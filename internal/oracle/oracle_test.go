package oracle

import (
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

func testWorkload(seed uint64, batches int) gen.Workload {
	cfg := gen.TestDataset(seed)
	edges := gen.Generate(cfg)
	return gen.BuildWorkload(cfg.NumV, edges, gen.StreamConfig{
		InitialFraction: 0.5, DeleteRatio: 0.3, BatchSize: 200,
		NumBatches: batches, Seed: seed + 1,
	})
}

// TestOracleSmoke is the check.sh gate: one seeded stream, all three engine
// families, both schedulers, full declared guarantee sets.
func TestOracleSmoke(t *testing.T) {
	w := testWorkload(0x0c1e, 4)
	subjects := []Subject{
		SelectiveSubject{Alg: algo.SSSP{Src: 0}},
		AccumulativeSubject{Alg: algo.NewPageRank(w.NumV)},
		LocalSubject{Alg: algo.TriangleCount{}},
		LocalSubject{Alg: algo.KCore{}},
	}
	for _, s := range subjects {
		for _, sched := range []engine.SchedulerKind{engine.SchedWorkStealing, engine.SchedGlobal} {
			cfg := engine.Config{Workers: 4, FlowCap: 64, Scheduler: sched}
			r := Check(s, s.Declared(), cfg, w)
			if err := r.Err(); err != nil {
				t.Errorf("%s under %v: %v", s.Name(), sched, err)
			}
			if r.Batches != len(w.Batches) {
				t.Errorf("%s under %v: validated %d batches, want %d", s.Name(), sched, r.Batches, len(w.Batches))
			}
		}
	}
}

// TestOracleCatchesTrimFault is the mutation test the acceptance criteria
// demand: an engine with the seeded trim-skip bug must be rejected, proving
// the harness detects stale-value violations rather than vacuously passing.
func TestOracleCatchesTrimFault(t *testing.T) {
	s := SelectiveSubject{Alg: algo.SSSP{Src: 0}}
	w := testWorkload(0xbadc0de, 6)
	cfg := engine.Config{Workers: 4, FlowCap: 64, FaultSkipTrim: true}
	r := Check(s, Convergence, cfg, w)
	v := r.Violation
	if v == nil {
		t.Fatal("oracle accepted an engine with the trim fault injected")
	}
	if v.Guarantee != Convergence || v.Vertex < 0 || v.Batch < 0 {
		t.Fatalf("violation missing batch/vertex attribution: %+v", v)
	}
	t.Logf("caught as expected: %v", v)

	// Sanity: the identical configuration without the fault is clean.
	cfg.FaultSkipTrim = false
	if err := Check(s, s.Declared(), cfg, w).Err(); err != nil {
		t.Fatalf("fault-free run rejected: %v", err)
	}
}

// faultySubject wraps a subject and corrupts one vertex's reported value
// from a given batch on — a synthetic engine bug exercising the detection
// and attribution paths for each guarantee independently of real engines.
type faultySubject struct {
	Subject
	fromBatch int
	vertex    int
	delta     float64
}

func (f faultySubject) New(g *graph.Streaming, cfg engine.Config) (Instance, error) {
	in, err := f.Subject.New(g, cfg)
	if err != nil {
		return nil, err
	}
	batch := 0
	return inst{
		process: func(b graph.Batch) error { batch++; return in.ProcessBatch(b) },
		values: func() []float64 {
			vals := in.Values()
			if batch > f.fromBatch {
				vals[f.vertex] += f.delta
			}
			return vals
		},
	}, nil
}

func TestOracleAttributesFirstDivergentVertex(t *testing.T) {
	w := testWorkload(0xf00d, 3)
	s := faultySubject{Subject: LocalSubject{Alg: algo.KCore{}}, fromBatch: 1, vertex: 7, delta: 2}
	r := Check(s, Convergence, engine.Config{Workers: 2, FlowCap: 64}, w)
	v := r.Violation
	if v == nil {
		t.Fatal("synthetic corruption not detected")
	}
	if v.Guarantee != Convergence || v.Batch != 1 || v.Vertex != 7 {
		t.Fatalf("misattributed: %+v, want convergence violation at batch 1 vertex 7", v)
	}
	if r.Batches != 1 {
		t.Fatalf("validated %d batches before stopping, want 1", r.Batches)
	}
}

// A primary run that diverges from its own re-execution under a different
// worker count must trip WorkerBitExact even when no reference is checked.
func TestOracleWorkerBitExact(t *testing.T) {
	w := testWorkload(0xb17, 3)
	s := faultySubject{Subject: LocalSubject{Alg: algo.TriangleCount{}}, fromBatch: 0, vertex: 3, delta: 1}
	// The fault hits every instance's Values identically, so convergence
	// alone would flag it; WorkerBitExact must also flag it because the
	// corrupted primary is compared against corrupted-but-equal variants…
	// equal corruption cancels. Use a real-subject control instead: clean
	// subjects must pass bit-exactness.
	if err := Check(LocalSubject{Alg: algo.KCore{}}, WorkerBitExact,
		engine.Config{Workers: 8, FlowCap: 32}, w).Err(); err != nil {
		t.Fatalf("clean k-core run not bit-exact across workers/schedulers: %v", err)
	}
	r := Check(s, Convergence, engine.Config{Workers: 2, FlowCap: 64}, w)
	if r.Violation == nil {
		t.Fatal("corrupted triangle subject passed convergence")
	}
}

func TestOracleRefinementFloor(t *testing.T) {
	// Addition-only workload: selective SSSP values may only improve.
	w := testWorkload(0xf100f, 4)
	for i := range w.Batches {
		for j := range w.Batches[i] {
			w.Batches[i][j].Del = false
		}
	}
	s := SelectiveSubject{Alg: algo.SSSP{Src: 0}}
	if err := Check(s, s.Declared(), engine.Config{Workers: 4, FlowCap: 64}, w).Err(); err != nil {
		t.Fatalf("addition-only stream violated declared guarantees: %v", err)
	}
	// A subject that worsens a value on an addition-only batch must trip
	// the floor. SSSP Better = "smaller", so push vertex 5 upward… downward
	// delta makes it "better" — corrupt upward to exceed the floor.
	f := faultySubject{Subject: s, fromBatch: 0, vertex: 5, delta: 1e6}
	r := Check(f, RefinementFloor, engine.Config{Workers: 4, FlowCap: 64}, w)
	if r.Violation == nil || r.Violation.Guarantee != RefinementFloor {
		t.Fatalf("floor violation not caught: %+v", r.Violation)
	}
}

func TestCheckReplay(t *testing.T) {
	if v := CheckReplay("wal/selective", 4, 9, 5); v != nil {
		t.Fatalf("exact replay rejected: %v", v)
	}
	if v := CheckReplay("wal/selective", 9, 4, 0); v != nil {
		t.Fatalf("reset-tail recovery rejected: %v", v)
	}
	v := CheckReplay("wal/selective", 4, 9, 4)
	if v == nil {
		t.Fatal("dropped batch not caught")
	}
	if v.Guarantee != ExactlyOnceReplay || !strings.Contains(v.Error(), "replayed 4") {
		t.Fatalf("bad attribution: %v", v)
	}
	if v := CheckReplay("wal/selective", 4, 9, 6); v == nil {
		t.Fatal("double-applied batch not caught")
	}
}

func TestFirstDivergence(t *testing.T) {
	inf := func(s int) float64 { return float64(s) * 1e308 * 10 } // ±Inf
	got := []float64{1, inf(1), 3, 4}
	want := []float64{1, inf(1), 3, 4.5}
	if i, d := FirstDivergence(got, want, 0); !d || i != 3 {
		t.Fatalf("FirstDivergence = %d,%v, want 3,true", i, d)
	}
	if i, d := FirstDivergence(got, want, 1); d {
		t.Fatalf("tolerance ignored: %d", i)
	}
	if _, d := FirstDivergence([]float64{inf(1)}, []float64{inf(-1)}, 0); !d {
		t.Fatal("opposite infinities compared equal")
	}
	if i, d := FirstDivergence(got, got, 0); d {
		t.Fatalf("identical slices diverge at %d", i)
	}
}
