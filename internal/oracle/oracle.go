// Package oracle is the standing consistency harness: it takes any engine ×
// scheduler × fault configuration plus a declared guarantee set and checks
// the guarantees mechanically against from-scratch recomputation on seeded
// streams. Durability guarantees (exactly-once WAL replay) are checked by
// CheckReplay from plain recovery accounting, so internal/wal can use the
// oracle without an import cycle.
//
// The contract per guarantee:
//
//   - Convergence: after every batch the engine's values match a
//     from-scratch solve of the current graph (within the subject's
//     tolerance; 0 = bit-exact, the selective/local regime).
//   - RefinementFloor: an addition-only batch never makes any selective
//     value strictly worse — the monotone refinement floor restores rely on.
//   - WorkerBitExact: the value stream is bitwise identical across worker
//     counts and schedulers (unique-fixpoint engines only).
//   - ExactlyOnceReplay: recovery replays exactly LastSeq-SnapshotSeq
//     batches — no drops, no double-applies.
package oracle

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Guarantee is a bit in a declared guarantee set.
type Guarantee uint32

const (
	Convergence Guarantee = 1 << iota
	RefinementFloor
	WorkerBitExact
	ExactlyOnceReplay
)

func (g Guarantee) String() string {
	var parts []string
	for _, e := range [...]struct {
		bit  Guarantee
		name string
	}{
		{Convergence, "convergence"},
		{RefinementFloor, "refinement-floor"},
		{WorkerBitExact, "worker-bit-exact"},
		{ExactlyOnceReplay, "exactly-once-replay"},
	} {
		if g&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Violation is a mechanically detected breach of a declared guarantee. It
// implements error so oracle checks slot into existing error plumbing.
type Violation struct {
	Subject   string
	Guarantee Guarantee
	Batch     int // -1 when not batch-scoped
	Vertex    int // first divergent vertex; -1 when not vertex-scoped
	Dim       int // state dimension of the divergence (0 for scalars)
	Got, Want float64
	Detail    string
}

func (v *Violation) Error() string {
	msg := fmt.Sprintf("oracle: %s violates %s", v.Subject, v.Guarantee)
	if v.Batch >= 0 {
		msg += fmt.Sprintf(" at batch %d", v.Batch)
	}
	if v.Vertex >= 0 {
		msg += fmt.Sprintf(": vertex %d", v.Vertex)
		if v.Dim > 0 {
			msg += fmt.Sprintf(" dim %d", v.Dim)
		}
		msg += fmt.Sprintf(" = %v, want %v", v.Got, v.Want)
	}
	if v.Detail != "" {
		msg += " (" + v.Detail + ")"
	}
	return msg
}

// Instance is one live engine under test.
type Instance interface {
	ProcessBatch(b graph.Batch) error
	Values() []float64
}

// Subject adapts one engine family to the oracle. Implementations for the
// three engines live in subjects.go.
type Subject interface {
	// Name labels violations, e.g. "selective/SSSP".
	Name() string
	// Declared is the guarantee set this engine family claims.
	Declared() Guarantee
	// Tolerance is the per-value comparison slack against the from-scratch
	// reference (0 = bit-exact).
	Tolerance() float64
	// Symmetric reports whether batches and initial edges must be mirrored.
	Symmetric() bool
	// Dim is the per-vertex state dimension (Values has NumV*Dim entries).
	Dim() int
	// Better reports whether a is strictly better than b (refinement-floor
	// direction); only consulted when RefinementFloor is checked.
	Better(a, b float64) bool
	// New builds an engine over g (which it may mutate) under cfg.
	New(g *graph.Streaming, cfg engine.Config) (Instance, error)
	// Reference computes the from-scratch answer for the current graph.
	Reference(g *graph.Streaming) []float64
}

// Report is the outcome of one Check run.
type Report struct {
	Subject   string
	Checked   Guarantee
	Batches   int // batches fully validated before stopping
	Violation *Violation
}

// Err returns the first violation as an error, or nil for a clean run.
func (r *Report) Err() error {
	if r.Violation == nil {
		return nil
	}
	return r.Violation
}

// bitExactVariants are the alternate execution configurations a
// WorkerBitExact subject must agree with bitwise.
var bitExactVariants = []struct {
	workers int
	sched   engine.SchedulerKind
}{
	{1, engine.SchedWorkStealing},
	{4, engine.SchedWorkStealing},
	{4, engine.SchedGlobal},
}

// Check drives the subject through the workload under cfg and verifies
// every guarantee in want after every batch, stopping at the first
// violation. The workload's initial edges are mirrored for symmetric
// subjects; batches are handed to engines raw (engines symmetrize
// internally) and to the reference graph pre-symmetrized.
func Check(s Subject, want Guarantee, cfg engine.Config, w gen.Workload) *Report {
	r := &Report{Subject: s.Name(), Checked: want}
	initial := w.Initial
	if s.Symmetric() {
		initial = mirror(initial)
	}
	mk := func(c engine.Config) (Instance, error) {
		return s.New(graph.FromEdges(w.NumV, initial), c)
	}
	primary, err := mk(cfg)
	if err != nil {
		r.Violation = &Violation{Subject: s.Name(), Guarantee: want, Batch: -1, Vertex: -1,
			Detail: "engine construction failed: " + err.Error()}
		return r
	}
	var variants []Instance
	if want&WorkerBitExact != 0 {
		for _, v := range bitExactVariants {
			vc := cfg
			vc.Workers, vc.Scheduler = v.workers, v.sched
			inst, err := mk(vc)
			if err != nil {
				r.Violation = &Violation{Subject: s.Name(), Guarantee: WorkerBitExact, Batch: -1,
					Vertex: -1, Detail: "variant construction failed: " + err.Error()}
				return r
			}
			variants = append(variants, inst)
		}
	}
	ref := graph.FromEdges(w.NumV, initial)
	dim := s.Dim()
	tol := s.Tolerance()

	for bi, b := range w.Batches {
		var floor []float64
		checkFloor := want&RefinementFloor != 0 && additionOnly(b)
		if checkFloor {
			floor = primary.Values()
		}
		if err := primary.ProcessBatch(b); err != nil {
			r.Violation = &Violation{Subject: s.Name(), Guarantee: Convergence, Batch: bi,
				Vertex: -1, Detail: "ProcessBatch failed: " + err.Error()}
			return r
		}
		got := primary.Values()

		if want&Convergence != 0 {
			rb := b
			if s.Symmetric() {
				rb = engine.Symmetrize(b)
			}
			ref.ApplyBatch(rb)
			wantVals := s.Reference(ref)
			if i, diverged := FirstDivergence(got, wantVals, tol); diverged {
				r.Violation = &Violation{Subject: s.Name(), Guarantee: Convergence, Batch: bi,
					Vertex: i / dim, Dim: i % dim, Got: got[i], Want: wantVals[i]}
				return r
			}
		}
		if checkFloor {
			for i := range got {
				if s.Better(floor[i], got[i]) {
					r.Violation = &Violation{Subject: s.Name(), Guarantee: RefinementFloor,
						Batch: bi, Vertex: i / dim, Dim: i % dim, Got: got[i], Want: floor[i],
						Detail: "addition-only batch worsened a value below its floor"}
					return r
				}
			}
		}
		for vi, inst := range variants {
			if err := inst.ProcessBatch(b); err != nil {
				r.Violation = &Violation{Subject: s.Name(), Guarantee: WorkerBitExact, Batch: bi,
					Vertex: -1, Detail: fmt.Sprintf("variant %d ProcessBatch failed: %v", vi, err)}
				return r
			}
			vv := inst.Values()
			if i, diverged := FirstDivergence(got, vv, 0); diverged {
				r.Violation = &Violation{Subject: s.Name(), Guarantee: WorkerBitExact, Batch: bi,
					Vertex: i / dim, Dim: i % dim, Got: vv[i], Want: got[i],
					Detail: fmt.Sprintf("workers=%d sched=%v disagrees with primary",
						bitExactVariants[vi].workers, bitExactVariants[vi].sched)}
				return r
			}
		}
		r.Batches++
	}
	return r
}

// CheckReplay validates the exactly-once replay accounting of one recovery:
// the number of replayed batches must equal the log tail past the restored
// snapshot (zero when the log ends at or before the snapshot — the
// truncated-tail case recovery resolves by resetting the log head). It
// takes plain integers so the wal package can call it without a cycle.
func CheckReplay(subject string, snapshotSeq, lastSeq uint64, replayed int) *Violation {
	want := 0
	if lastSeq > snapshotSeq {
		want = int(lastSeq - snapshotSeq)
	}
	if replayed == want {
		return nil
	}
	return &Violation{Subject: subject, Guarantee: ExactlyOnceReplay, Batch: -1, Vertex: -1,
		Got: float64(replayed), Want: float64(want),
		Detail: fmt.Sprintf("replayed %d batches, want %d (snapshot seq %d, log seq %d)",
			replayed, want, snapshotSeq, lastSeq)}
}

// FirstDivergence returns the first index where got and want differ by more
// than tol (±Inf of equal sign compare equal; NaN never compares equal),
// and whether such an index exists. Fuzzers use it to report the oracle's
// first divergent vertex alongside the seed.
func FirstDivergence(got, want []float64, tol float64) (int, bool) {
	if len(got) != len(want) {
		return 0, true
	}
	for i := range got {
		g, w := got[i], want[i]
		if g == w || (math.IsInf(g, 1) && math.IsInf(w, 1)) || (math.IsInf(g, -1) && math.IsInf(w, -1)) {
			continue
		}
		if math.Abs(g-w) <= tol {
			continue
		}
		return i, true
	}
	return -1, false
}

func mirror(edges []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	return out
}

func additionOnly(b graph.Batch) bool {
	for _, u := range b {
		if u.Del {
			return false
		}
	}
	return true
}
