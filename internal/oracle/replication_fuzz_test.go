package oracle

import (
	"fmt"
	"testing"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/rng"
)

// Hub-skewed replication fuzz: Barabási–Albert streams concentrate
// in-degree on a few hubs, the topology hub replication exists for. Every
// (replication on/off) × scheduler combination must pass its engine
// family's FULL declared guarantee set — for the selective family that
// includes WorkerBitExact, whose variant sweep inherits the replication
// flag, so a replicated engine is held to bit-exact agreement across
// worker counts and schedulers. Failure messages carry the seed.

// hubSkewWorkload builds a BA stream whose size derives from the seed,
// with enough density that several vertices clear the low hub threshold
// the fuzz configs use.
func hubSkewWorkload(seed uint64) gen.Workload {
	r := rng.New(seed)
	numV := 48 + r.Intn(48)
	numE := numV * (4 + r.Intn(4))
	edges := gen.Generate(gen.Config{Kind: gen.BA, NumV: numV, NumE: numE,
		Seed: seed, MaxWeight: 1 + r.Intn(8)})
	return gen.BuildWorkload(numV, edges, gen.StreamConfig{
		InitialFraction: 0.6,
		DeleteRatio:     0.3,
		BatchSize:       24 + r.Intn(48),
		NumBatches:      3,
		Seed:            seed ^ 0xba5eba11,
	})
}

func TestFuzzHubSkewReplication(t *testing.T) {
	seeds := []uint64{0xba5e0001, 0xba5e0002, 0xba5e0003}
	scheds := []engine.SchedulerKind{engine.SchedWorkStealing, engine.SchedGlobal}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			t.Parallel()
			w := hubSkewWorkload(seed)
			subjects := []Subject{
				SelectiveSubject{Alg: algo.SSSP{Src: 0}},
				SelectiveSubject{Alg: algo.CC{}},
				AccumulativeSubject{Alg: algo.NewPageRank(w.NumV)},
			}
			for _, sched := range scheds {
				for _, replicate := range []bool{false, true} {
					cfg := engine.Config{
						Workers:        4,
						FlowCap:        32,
						Scheduler:      sched,
						HubReplication: replicate,
						HubThreshold:   8,
					}
					for _, s := range subjects {
						r := Check(s, s.Declared(), cfg, w)
						if err := r.Err(); err != nil {
							t.Errorf("%s: seed=%#x sched=%v replication=%v: %v",
								s.Name(), seed, sched, replicate, err)
						} else if r.Batches != len(w.Batches) {
							t.Errorf("%s: seed=%#x sched=%v replication=%v: validated %d batches, want %d",
								s.Name(), seed, sched, replicate, r.Batches, len(w.Batches))
						}
					}
				}
			}
		})
	}
}
