package oracle

import (
	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
)

// AccTolerance is the convergence slack for accumulative subjects: both the
// incremental engine and the reference iterate to Epsilon, so their answers
// agree only up to the propagated threshold (matches the engine test suite).
const AccTolerance = 1e-5

type inst struct {
	process func(graph.Batch) error
	values  func() []float64
}

func (i inst) ProcessBatch(b graph.Batch) error { return i.process(b) }
func (i inst) Values() []float64                { return i.values() }

// SelectiveSubject adapts the selective engine (SSSP/SSWP/BFS/CC). Unique
// key-edge fixpoints make it bit-exact and refinement-monotone.
type SelectiveSubject struct{ Alg algo.Selective }

func (s SelectiveSubject) Name() string { return "selective/" + s.Alg.Name() }
func (s SelectiveSubject) Declared() Guarantee {
	return Convergence | RefinementFloor | WorkerBitExact | ExactlyOnceReplay
}
func (s SelectiveSubject) Tolerance() float64       { return 0 }
func (s SelectiveSubject) Symmetric() bool          { return s.Alg.Symmetric() }
func (s SelectiveSubject) Dim() int                 { return 1 }
func (s SelectiveSubject) Better(a, b float64) bool { return s.Alg.Better(a, b) }

func (s SelectiveSubject) New(g *graph.Streaming, cfg engine.Config) (Instance, error) {
	e := engine.NewSelective(g, s.Alg, cfg)
	return inst{
		process: func(b graph.Batch) error { _, err := e.ProcessBatchE(b); return err },
		values:  e.Values,
	}, nil
}

func (s SelectiveSubject) Reference(g *graph.Streaming) []float64 {
	vals, _ := algo.SolveSelective(g, s.Alg)
	return vals
}

// AccumulativeSubject adapts the accumulative engine (PageRank/LP).
// Floating-point delta propagation is order-sensitive, so it declares only
// tolerance-bounded convergence (plus replay accounting) — no bit-exactness
// and no refinement floor.
type AccumulativeSubject struct{ Alg algo.Accumulative }

func (s AccumulativeSubject) Name() string           { return "accumulative/" + s.Alg.Name() }
func (s AccumulativeSubject) Declared() Guarantee    { return Convergence | ExactlyOnceReplay }
func (s AccumulativeSubject) Tolerance() float64     { return AccTolerance }
func (s AccumulativeSubject) Symmetric() bool        { return s.Alg.Symmetric() }
func (s AccumulativeSubject) Dim() int               { return s.Alg.Dim() }
func (AccumulativeSubject) Better(a, b float64) bool { return a > b }

func (s AccumulativeSubject) New(g *graph.Streaming, cfg engine.Config) (Instance, error) {
	e := engine.NewAccumulative(g, s.Alg, cfg)
	return inst{
		process: func(b graph.Batch) error { _, err := e.ProcessBatchE(b); return err },
		values:  e.Values,
	}, nil
}

func (s AccumulativeSubject) Reference(g *graph.Streaming) []float64 {
	return algo.SolveAccumulative(g, s.Alg)
}

// LocalSubject adapts the local engine (triangle counting, k-core). Both
// workloads have unique seeded fixpoints over small integers, so the values
// are bit-exact across schedulers and worker counts, but additions and
// deletions move values in both directions — no refinement floor.
type LocalSubject struct{ Alg algo.Local }

func (s LocalSubject) Name() string { return "local/" + s.Alg.Name() }
func (s LocalSubject) Declared() Guarantee {
	return Convergence | WorkerBitExact | ExactlyOnceReplay
}
func (s LocalSubject) Tolerance() float64       { return 0 }
func (s LocalSubject) Symmetric() bool          { return s.Alg.Symmetric() }
func (s LocalSubject) Dim() int                 { return 1 }
func (s LocalSubject) Better(a, b float64) bool { return s.Alg.Better(a, b) }

func (s LocalSubject) New(g *graph.Streaming, cfg engine.Config) (Instance, error) {
	e := engine.NewLocal(g, s.Alg, cfg)
	return inst{
		process: func(b graph.Batch) error { _, err := e.ProcessBatchE(b); return err },
		values:  e.Values,
	}, nil
}

func (s LocalSubject) Reference(g *graph.Streaming) []float64 {
	return s.Alg.Solve(g)
}
