package cachesim

import "repro/internal/metrics"

// Record publishes the stats into a metrics registry under prefix (e.g.
// "cachesim.fig12.LJ.gf_sssp"), so cache-behaviour figures land in the
// same BENCH_*.json machine-readable report as the timing figures. A nil
// registry is a no-op, matching the layer's disabled-costs-nothing rule.
func (s Stats) Record(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	set := func(name string, v uint64) {
		r.Counter(prefix + "." + name).Add(int64(v))
	}
	set("accesses", s.Total())
	set("hits", s.Hits)
	set("misses", s.Misses)
	set("redundant", s.Redundant)
	set("redundant_misses", s.RedundantMisses)
	r.Gauge(prefix + ".redundancy_ratio").Set(s.RedundancyRatio())
	r.Gauge(prefix + ".hit_rate").Set(s.HitRate())
}
