// Package cachesim provides the memory-access profiling substrate that
// stands in for the hardware performance counters used by the paper
// (Fig 4a, Fig 12, Fig 13). Engines issue every vertex-value and edge-array
// access through a Probe; the simulating probe models a set-associative LRU
// cache and classifies each access as hit or miss, tags it with the current
// execution phase (refinement vs recomputation), and counts *redundant*
// accesses — recomputation-phase touches of data already fetched during
// refinement, exactly the redundancy GraphFly eliminates.
//
// The zero-cost path is Nop, whose methods are empty; engines take a Probe
// so wall-clock benchmarks pay only a cheap interface call.
package cachesim

// Class labels what kind of data an access touches.
type Class uint8

const (
	// ClassVertex is a vertex-value access.
	ClassVertex Class = iota
	// ClassEdge is an edge-array (structure or weight) access.
	ClassEdge
	// ClassMeta is runtime metadata (trees, frontiers, schedules).
	ClassMeta

	numClasses
)

// Phase labels which incremental-processing phase issued the access.
type Phase uint8

const (
	// PhaseNone covers initial computation and bookkeeping.
	PhaseNone Phase = iota
	// PhaseRefine is the refinement (trim / aggregate-adjust) phase.
	PhaseRefine
	// PhaseRecompute is the incremental recomputation phase.
	PhaseRecompute

	numPhases
)

// Probe receives every instrumented memory access. Implementations are not
// safe for concurrent use; parallel engines call Fork to obtain one probe
// per worker and merge statistics afterwards.
type Probe interface {
	// Access records a read (write=false) or write (write=true) of the
	// 8-byte word at addr in the given class.
	Access(addr uint64, write bool, class Class)
	// SetPhase tags subsequent accesses with the phase.
	SetPhase(p Phase)
	// BeginBatch resets per-batch redundancy tracking.
	BeginBatch()
	// Fork returns an independent probe for a parallel worker.
	Fork() Probe
}

// Nop is the zero-cost probe used by wall-clock benchmarks.
type Nop struct{}

// Access is a no-op.
func (Nop) Access(uint64, bool, Class) {}

// SetPhase is a no-op.
func (Nop) SetPhase(Phase) {}

// BeginBatch is a no-op.
func (Nop) BeginBatch() {}

// Fork returns the receiver; Nop carries no state.
func (n Nop) Fork() Probe { return n }

// Stats aggregates counters from one or more probes.
type Stats struct {
	// Reads and Writes per class.
	Reads  [3]uint64
	Writes [3]uint64
	// Hits and Misses in the simulated cache (all classes).
	Hits   uint64
	Misses uint64
	// Per-phase access counts.
	PhaseAccesses [3]uint64
	// Redundant counts recomputation-phase accesses to addresses already
	// touched during the refinement phase of the same batch.
	Redundant uint64
	// RedundantMisses are the subset of Redundant that also missed the
	// cache, i.e. data that had to be fetched from memory twice.
	RedundantMisses uint64
}

// Total returns the total number of accesses.
func (s Stats) Total() uint64 {
	var t uint64
	for c := 0; c < int(numClasses); c++ {
		t += s.Reads[c] + s.Writes[c]
	}
	return t
}

// MemoryAccesses returns the number of simulated DRAM transactions
// (cache misses). This is the paper's "memory accesses" metric (Fig 12).
func (s Stats) MemoryAccesses() uint64 { return s.Misses }

// RedundancyRatio returns the fraction of all accesses that were redundant
// re-touches across the two phases (Fig 4a's shape).
func (s Stats) RedundancyRatio() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Redundant) / float64(t)
}

// HitRate returns the simulated cache hit rate.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	for c := 0; c < int(numClasses); c++ {
		s.Reads[c] += o.Reads[c]
		s.Writes[c] += o.Writes[c]
	}
	s.Hits += o.Hits
	s.Misses += o.Misses
	for p := 0; p < int(numPhases); p++ {
		s.PhaseAccesses[p] += o.PhaseAccesses[p]
	}
	s.Redundant += o.Redundant
	s.RedundantMisses += o.RedundantMisses
}
