package cachesim

import "sync"

// Config describes the simulated cache. The default approximates one core's
// slice of a Xeon E5-2680v4 L2+LLC share (the paper's test machine).
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // cache line size
	Ways      int // associativity
}

// DefaultConfig is 512 KiB, 64-byte lines, 8-way.
func DefaultConfig() Config {
	return Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}
}

func (c Config) sets() int {
	s := c.SizeBytes / (c.LineBytes * c.Ways)
	if s < 1 {
		s = 1
	}
	return s
}

// Sim is a Probe backed by a set-associative LRU cache model plus
// phase/redundancy tracking. Not safe for concurrent use: Fork per worker.
type Sim struct {
	cfg       Config
	lineShift uint
	setMask   uint64

	// tags[set*ways+way]; lru stores a per-way timestamp.
	tags  []uint64
	valid []bool
	lru   []uint64
	tick  uint64

	phase Phase

	// refineTouch records line addresses touched during PhaseRefine in the
	// current batch. It lives on the ROOT probe and is shared by every
	// fork (guarded by rtMu) so that redundancy is detected across workers
	// and phases: refinement on one worker, recomputation on another.
	refineTouch map[uint64]struct{}
	rtMu        sync.Mutex

	stats Stats

	parent *Sim // root collects forked stats
	mu     sync.Mutex
	forks  []*Sim
}

// NewSim returns a simulating probe with the given configuration.
func NewSim(cfg Config) *Sim {
	if cfg.SizeBytes == 0 {
		cfg = DefaultConfig()
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := cfg.sets()
	// Round sets down to a power of two for mask indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &Sim{
		cfg:         cfg,
		lineShift:   shift,
		setMask:     uint64(sets - 1),
		tags:        make([]uint64, sets*cfg.Ways),
		valid:       make([]bool, sets*cfg.Ways),
		lru:         make([]uint64, sets*cfg.Ways),
		refineTouch: make(map[uint64]struct{}),
	}
}

// Access implements Probe.
func (s *Sim) Access(addr uint64, write bool, class Class) {
	if write {
		s.stats.Writes[class]++
	} else {
		s.stats.Reads[class]++
	}
	s.stats.PhaseAccesses[s.phase]++

	line := addr >> s.lineShift
	hit := s.touch(line)
	if hit {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}

	root := s
	if s.parent != nil {
		root = s.parent
	}
	switch s.phase {
	case PhaseRefine:
		root.rtMu.Lock()
		root.refineTouch[line] = struct{}{}
		root.rtMu.Unlock()
	case PhaseRecompute:
		root.rtMu.Lock()
		_, ok := root.refineTouch[line]
		root.rtMu.Unlock()
		if ok {
			s.stats.Redundant++
			if !hit {
				s.stats.RedundantMisses++
			}
		}
	}
}

// touch simulates the cache access and reports hit.
func (s *Sim) touch(line uint64) bool {
	s.tick++
	set := int(line & s.setMask)
	base := set * s.cfg.Ways
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < s.cfg.Ways; w++ {
		i := base + w
		if s.valid[i] && s.tags[i] == line {
			s.lru[i] = s.tick
			return true
		}
		if !s.valid[i] {
			victim = i
			oldest = 0
		} else if s.lru[i] < oldest {
			victim = i
			oldest = s.lru[i]
		}
	}
	s.tags[victim] = line
	s.valid[victim] = true
	s.lru[victim] = s.tick
	return false
}

// SetPhase implements Probe.
func (s *Sim) SetPhase(p Phase) { s.phase = p }

// BeginBatch implements Probe: clears redundancy tracking for a new batch.
// Forks delegate to the root's shared set.
func (s *Sim) BeginBatch() {
	root := s
	if s.parent != nil {
		root = s.parent
	}
	root.rtMu.Lock()
	clear(root.refineTouch)
	root.rtMu.Unlock()
}

// Fork implements Probe. Each fork models a private per-worker cache (one
// core's cache in the paper's machine) and feeds the root's Drain.
func (s *Sim) Fork() Probe {
	root := s
	if s.parent != nil {
		root = s.parent
	}
	f := NewSim(s.cfg)
	f.parent = root
	f.phase = s.phase
	root.mu.Lock()
	root.forks = append(root.forks, f)
	root.mu.Unlock()
	return f
}

// Drain returns aggregated statistics across this probe and every fork.
func (s *Sim) Drain() Stats {
	out := s.stats
	s.mu.Lock()
	forks := append([]*Sim(nil), s.forks...)
	s.mu.Unlock()
	for _, f := range forks {
		out.Add(f.stats)
	}
	return out
}

// Reset zeroes statistics and cache contents on this probe and its forks.
func (s *Sim) Reset() {
	s.stats = Stats{}
	for i := range s.valid {
		s.valid[i] = false
	}
	clear(s.refineTouch)
	s.mu.Lock()
	forks := append([]*Sim(nil), s.forks...)
	s.mu.Unlock()
	for _, f := range forks {
		f.Reset()
	}
}

var _ Probe = (*Sim)(nil)
var _ Probe = Nop{}
