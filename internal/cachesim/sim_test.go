package cachesim

import (
	"testing"
	"testing/quick"
)

func TestNopIsInert(t *testing.T) {
	var p Probe = Nop{}
	p.Access(1, true, ClassVertex)
	p.SetPhase(PhaseRefine)
	p.BeginBatch()
	if f := p.Fork(); f == nil {
		t.Fatal("Nop.Fork returned nil")
	}
}

func TestColdMissThenHit(t *testing.T) {
	s := NewSim(DefaultConfig())
	s.Access(0x1000, false, ClassVertex)
	s.Access(0x1000, false, ClassVertex)
	s.Access(0x1008, false, ClassVertex) // same 64-byte line
	st := s.Drain()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if st.Reads[ClassVertex] != 3 {
		t.Fatalf("reads=%d", st.Reads[ClassVertex])
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny cache: 2 sets x 2 ways x 64B lines = 256 bytes.
	s := NewSim(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	// Three distinct lines mapping to the same set (stride = 2 lines).
	a, b, c := uint64(0), uint64(2*64), uint64(4*64)
	s.Access(a, false, ClassVertex) // miss
	s.Access(b, false, ClassVertex) // miss
	s.Access(c, false, ClassVertex) // miss, evicts a (LRU)
	s.Access(b, false, ClassVertex) // hit
	s.Access(a, false, ClassVertex) // miss again — was evicted
	st := s.Drain()
	if st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/4", st.Hits, st.Misses)
	}
}

func TestSequentialBeatsScattered(t *testing.T) {
	// The property the specialized layout exploits: sequential addresses
	// share lines, scattered ones do not.
	seq := NewSim(DefaultConfig())
	for i := 0; i < 4096; i++ {
		seq.Access(uint64(i*8), false, ClassVertex)
	}
	scat := NewSim(DefaultConfig())
	for i := 0; i < 4096; i++ {
		scat.Access(uint64(i)*4096, false, ClassVertex)
	}
	sSt, cSt := seq.Drain(), scat.Drain()
	if sSt.Misses*4 > cSt.Misses {
		t.Fatalf("sequential misses %d not ≪ scattered %d", sSt.Misses, cSt.Misses)
	}
	if sSt.HitRate() < 0.8 {
		t.Fatalf("sequential hit rate %.2f too low", sSt.HitRate())
	}
}

func TestRedundancyTracking(t *testing.T) {
	s := NewSim(DefaultConfig())
	s.BeginBatch()
	s.SetPhase(PhaseRefine)
	s.Access(0x100, false, ClassVertex)
	s.Access(0x200, true, ClassVertex)
	s.SetPhase(PhaseRecompute)
	s.Access(0x100, false, ClassVertex) // redundant
	s.Access(0x300, false, ClassVertex) // fresh
	st := s.Drain()
	if st.Redundant != 1 {
		t.Fatalf("Redundant = %d, want 1", st.Redundant)
	}
	if st.PhaseAccesses[PhaseRefine] != 2 || st.PhaseAccesses[PhaseRecompute] != 2 {
		t.Fatalf("phase accesses = %v", st.PhaseAccesses)
	}
	// New batch clears the refine set.
	s.BeginBatch()
	s.SetPhase(PhaseRecompute)
	s.Access(0x100, false, ClassVertex)
	if st := s.Drain(); st.Redundant != 1 {
		t.Fatalf("redundancy leaked across batches: %d", st.Redundant)
	}
}

func TestRedundantMissesNeedEviction(t *testing.T) {
	// With a big cache, the re-touch is a hit, so RedundantMisses stays 0.
	s := NewSim(DefaultConfig())
	s.BeginBatch()
	s.SetPhase(PhaseRefine)
	s.Access(0x100, false, ClassVertex)
	s.SetPhase(PhaseRecompute)
	s.Access(0x100, false, ClassVertex)
	if st := s.Drain(); st.RedundantMisses != 0 {
		t.Fatalf("RedundantMisses = %d with no eviction", st.RedundantMisses)
	}
	// With a one-line cache, an intervening access evicts, so the re-touch
	// is both redundant and a miss.
	tiny := NewSim(Config{SizeBytes: 64, LineBytes: 64, Ways: 1})
	tiny.BeginBatch()
	tiny.SetPhase(PhaseRefine)
	tiny.Access(0x100, false, ClassVertex)
	tiny.SetPhase(PhaseRecompute)
	tiny.Access(0x900, false, ClassVertex) // evicts 0x100
	tiny.Access(0x100, false, ClassVertex) // redundant miss
	if st := tiny.Drain(); st.RedundantMisses != 1 {
		t.Fatalf("RedundantMisses = %d, want 1", st.RedundantMisses)
	}
}

func TestForkAggregation(t *testing.T) {
	root := NewSim(DefaultConfig())
	root.Access(0, false, ClassMeta)
	f1 := root.Fork()
	f2 := root.Fork()
	f1.Access(0x1000, true, ClassEdge)
	f2.Access(0x2000, false, ClassVertex)
	// Fork of a fork still reports to the root.
	f3 := f1.Fork()
	f3.Access(0x3000, false, ClassVertex)
	st := root.Drain()
	if st.Total() != 4 {
		t.Fatalf("aggregated total = %d, want 4", st.Total())
	}
	if st.Writes[ClassEdge] != 1 || st.Reads[ClassVertex] != 2 || st.Reads[ClassMeta] != 1 {
		t.Fatalf("per-class counts wrong: %+v", st)
	}
}

func TestResetClearsEverything(t *testing.T) {
	root := NewSim(DefaultConfig())
	f := root.Fork()
	root.Access(0x10, false, ClassVertex)
	f.Access(0x20, false, ClassVertex)
	root.Reset()
	if st := root.Drain(); st.Total() != 0 {
		t.Fatalf("stats survived Reset: %+v", st)
	}
	// Cache contents cleared too: the next access must miss.
	root.Access(0x10, false, ClassVertex)
	if st := root.Drain(); st.Misses != 1 {
		t.Fatalf("cache contents survived Reset")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Redundant: 3}
	a.Reads[ClassVertex] = 5
	b := Stats{Hits: 10, Misses: 20, Redundant: 30}
	b.Reads[ClassVertex] = 50
	a.Add(b)
	if a.Hits != 11 || a.Misses != 22 || a.Redundant != 33 || a.Reads[ClassVertex] != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestRatiosOnEmptyStats(t *testing.T) {
	var s Stats
	if s.RedundancyRatio() != 0 || s.HitRate() != 0 {
		t.Fatal("ratios on empty stats should be 0")
	}
}

// Property: hits + misses == total accesses for any access pattern.
func TestAccountingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		s := NewSim(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
		for i, a := range addrs {
			s.Access(uint64(a), i%3 == 0, Class(i%3))
		}
		st := s.Drain()
		return st.Hits+st.Misses == st.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeating the same address never misses after the first access.
func TestSingleLineAlwaysHits(t *testing.T) {
	s := NewSim(DefaultConfig())
	for i := 0; i < 1000; i++ {
		s.Access(0x42, false, ClassVertex)
	}
	if st := s.Drain(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func BenchmarkSimAccess(b *testing.B) {
	s := NewSim(DefaultConfig())
	for i := 0; i < b.N; i++ {
		s.Access(uint64(i)*8, false, ClassVertex)
	}
}
