package netfault

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Proxy is the out-of-process fault path: it sits between a real client and
// a real daemon (cmd/faultproxy wires it between graphflyd and its clients,
// or between the dist coordinator and a graphfly-worker), forwarding bytes
// both ways through the injector's fault mix. Killing the injected leg
// tears down the whole relayed connection, so both endpoints observe the
// fault — exactly what a mid-stream reset does in production.
type Proxy struct {
	Target string // dial address of the real endpoint
	In     *Injector

	l      net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy builds a proxy toward target with cfg's fault mix.
func NewProxy(target string, cfg Config) *Proxy {
	return &Proxy{Target: target, In: NewInjector(cfg), conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Close.
func (p *Proxy) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netfault: proxy listen: %w", err)
	}
	p.l = l
	p.wg.Add(1)
	go p.acceptLoop()
	return l.Addr(), nil
}

// Addr returns the proxy's listen address (valid after Start).
func (p *Proxy) Addr() net.Addr { return p.l.Addr() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.l.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(c) {
			c.Close()
			return
		}
		p.wg.Add(1)
		go p.relay(c)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay connects one accepted client to the target and pumps bytes through
// the fault-injected wrapper until either side dies.
func (p *Proxy) relay(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()
	upstream, err := net.Dial("tcp", p.Target)
	if err != nil {
		return
	}
	defer upstream.Close()
	// Inject on the client leg only: one wrapped conn per relayed session
	// keeps the fault schedule a function of the session ordinal.
	faulted := p.In.Conn(client)
	done := make(chan struct{}, 2)
	go func() { io.Copy(upstream, faulted); done <- struct{}{} }()
	go func() { io.Copy(faulted, upstream); done <- struct{}{} }()
	<-done // either direction dying tears down both legs via the defers
}

// Close stops accepting and tears down every relayed connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if p.l != nil {
		p.l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}
