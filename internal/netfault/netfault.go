// Package netfault is the serving path's seeded network-fault layer: a
// net.Conn / net.Listener wrapper for in-process tests and an in-path TCP
// proxy (cmd/faultproxy) for the real binaries. Both inject the failure
// shapes a deployed ingest path actually sees — connections reset
// mid-stream, writes that land partially before the peer vanishes, and
// stalls long enough to trip client deadlines — deterministically from a
// seed, so every chaos scenario in the oracle sweeps replays bit-exactly.
//
// Faults are injected at I/O boundaries, never by corrupting bytes: the
// session protocol's CRC framing already proves corruption is detected
// (internal/wal codec tests), while *lost* and *duplicated* deliveries are
// what the exactly-once resume machinery must survive.
package netfault

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// ErrInjectedReset is the error surfaced by a connection the injector chose
// to kill; the peer observes a real TCP reset (or EOF) mid-stream.
var ErrInjectedReset = errors.New("netfault: injected connection reset")

// Config is one seeded fault mix. Probabilities are per I/O operation
// (Read/Write call), matching how real faults interleave with the session
// protocol's frame boundaries.
type Config struct {
	Seed uint64
	// ResetProb kills the connection in place of the operation: in-flight
	// and future I/O on it fails, and the peer sees a hard close.
	ResetProb float64
	// PartialProb truncates a write to a strict prefix and then kills the
	// connection — the torn-frame shape a crashed peer leaves behind.
	PartialProb float64
	// DelayProb stalls an operation by a uniform duration in (0, MaxDelay].
	DelayProb float64
	MaxDelay  time.Duration
	// MaxFaults bounds injected resets+partials per Config (0 = unlimited);
	// sweeps use it so every scenario still terminates.
	MaxFaults int64
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.ResetProb > 0 || c.PartialProb > 0 || (c.DelayProb > 0 && c.MaxDelay > 0)
}

// String renders the config in ParseSpec's syntax.
func (c Config) String() string {
	return fmt.Sprintf("seed=%d,reset=%g,partial=%g,delay=%g,maxdelay=%s,maxfaults=%d",
		c.Seed, c.ResetProb, c.PartialProb, c.DelayProb, c.MaxDelay, c.MaxFaults)
}

// ParseSpec parses a CLI fault mix of the form
// "seed=7,reset=0.05,partial=0.02,delay=0.1,maxdelay=20ms,maxfaults=50"
// (every component optional). An empty spec returns a disabled Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if spec == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("netfault: spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 10, 64)
		case "reset":
			c.ResetProb, err = strconv.ParseFloat(v, 64)
		case "partial":
			c.PartialProb, err = strconv.ParseFloat(v, 64)
		case "delay":
			c.DelayProb, err = strconv.ParseFloat(v, 64)
		case "maxdelay":
			c.MaxDelay, err = time.ParseDuration(v)
		case "maxfaults":
			c.MaxFaults, err = strconv.ParseInt(v, 10, 64)
		default:
			return c, fmt.Errorf("netfault: spec: unknown key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("netfault: spec %s=%q: %v", k, v, err)
		}
	}
	return c, nil
}

// Injector owns the fault budget and hands out per-connection deterministic
// RNG streams: connection i's behavior depends only on (Seed, i), not on
// goroutine scheduling, so a seeded scenario replays the same fault script.
type Injector struct {
	cfg    Config
	conns  atomic.Uint64
	faults atomic.Int64
	stats  Stats
}

// Stats counts what an injector actually did.
type Stats struct {
	Resets   atomic.Int64
	Partials atomic.Int64
	Delays   atomic.Int64
}

// NewInjector builds an injector for one seeded config.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Resets returns the number of injected resets (including partial-write
// kills).
func (in *Injector) Resets() int64 { return in.stats.Resets.Load() + in.stats.Partials.Load() }

// Delays returns the number of injected stalls.
func (in *Injector) Delays() int64 { return in.stats.Delays.Load() }

// spend consumes one unit of the fault budget; false = budget exhausted.
func (in *Injector) spend() bool {
	if in.cfg.MaxFaults <= 0 {
		return true
	}
	return in.faults.Add(1) <= in.cfg.MaxFaults
}

// Conn wraps c with this injector's fault mix. Each wrapped connection gets
// its own RNG stream derived from the seed and the connection ordinal.
func (in *Injector) Conn(c net.Conn) net.Conn {
	if !in.cfg.Enabled() {
		return c
	}
	ord := in.conns.Add(1)
	return &conn{
		Conn: c,
		in:   in,
		rng:  rng.New(rng.Mix64(in.cfg.Seed ^ ord*0x9e3779b97f4a7c15)),
	}
}

// Listen wraps l so every accepted connection is fault-injected.
func (in *Injector) Listen(l net.Listener) net.Listener { return &listener{Listener: l, in: in} }

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// conn injects the configured fault mix around the embedded connection's
// Read/Write. Methods may run concurrently (one reader, one writer is the
// session protocol's shape); mu guards the shared RNG stream.
type conn struct {
	net.Conn
	in     *Injector
	rng    *rng.Xoshiro256
	mu     sync.Mutex
	killed atomic.Bool
}

type verdict int

const (
	vPass verdict = iota
	vReset
	vPartial
	vDelay
)

// roll draws the next fault verdict and, for delays, a stall duration.
func (c *conn) roll(forWrite bool) (verdict, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.in.cfg
	p := c.rng.Float64()
	switch {
	case p < cfg.ResetProb:
		if c.in.spend() {
			return vReset, 0
		}
	case forWrite && p < cfg.ResetProb+cfg.PartialProb:
		if c.in.spend() {
			return vPartial, 0
		}
	case cfg.MaxDelay > 0 && p < cfg.ResetProb+cfg.PartialProb+cfg.DelayProb:
		return vDelay, time.Duration(1 + c.rng.Uint64n(uint64(cfg.MaxDelay)))
	}
	return vPass, 0
}

// kill hard-closes the connection so the peer sees a reset/EOF and every
// local operation fails from here on.
func (c *conn) kill() error {
	if c.killed.CompareAndSwap(false, true) {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN: the harshest shape
		}
		c.Conn.Close()
	}
	return ErrInjectedReset
}

func (c *conn) Read(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, ErrInjectedReset
	}
	switch v, d := c.roll(false); v {
	case vReset:
		c.in.stats.Resets.Add(1)
		return 0, c.kill()
	case vDelay:
		c.in.stats.Delays.Add(1)
		time.Sleep(d)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, ErrInjectedReset
	}
	switch v, d := c.roll(true); v {
	case vReset:
		c.in.stats.Resets.Add(1)
		return 0, c.kill()
	case vPartial:
		c.in.stats.Partials.Add(1)
		if n := len(p) / 2; n > 0 {
			c.Conn.Write(p[:n])
		}
		return 0, c.kill()
	case vDelay:
		c.in.stats.Delays.Add(1)
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

func (c *conn) Close() error {
	if c.killed.Load() {
		return nil
	}
	return c.Conn.Close()
}
