package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("seed=7,reset=0.05,partial=0.02,delay=0.1,maxdelay=20ms,maxfaults=50")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, ResetProb: 0.05, PartialProb: 0.02, DelayProb: 0.1,
		MaxDelay: 20 * time.Millisecond, MaxFaults: 50}
	if c != want {
		t.Fatalf("ParseSpec = %+v, want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatal("full spec should be enabled")
	}
	// String renders back into ParseSpec's syntax.
	c2, err := ParseSpec(c.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", c.String(), err)
	}
	if c2 != c {
		t.Fatalf("String roundtrip = %+v, want %+v", c2, c)
	}

	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec = %+v, %v; want disabled, nil", c, err)
	}
	// Delay without maxdelay injects nothing.
	if c, err := ParseSpec("delay=0.5"); err != nil || c.Enabled() {
		t.Fatalf("delay-only spec = %+v, %v; want disabled, nil", c, err)
	}
	for _, bad := range []string{"reset", "reset=x", "bogus=1", "maxdelay=fast", "seed=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// pipePair returns a wrapped client conn talking to a raw server conn over a
// real TCP loopback socket.
func pipePair(t *testing.T, in *Injector) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := l.Accept()
		ch <- acc{c, err}
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { raw.Close(); a.c.Close() })
	return in.Conn(raw), a.c
}

// faultScript records the verdict sequence one wrapped connection draws, so
// determinism can be compared across injector instances.
func faultScript(cfg Config, rolls int) []verdict {
	in := NewInjector(cfg)
	c := in.Conn(nopConn{}).(*conn)
	out := make([]verdict, rolls)
	for i := range out {
		out[i], _ = c.roll(i%2 == 0)
	}
	return out
}

type nopConn struct{ net.Conn }

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, ResetProb: 0.1, PartialProb: 0.1, DelayProb: 0.2,
		MaxDelay: time.Millisecond}
	a := faultScript(cfg, 200)
	b := faultScript(cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs across same-seed injectors: %v vs %v", i, a[i], b[i])
		}
	}
	var faults int
	for _, v := range a {
		if v != vPass {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("0.4 total fault probability drew no faults in 200 rolls")
	}
	cfg.Seed = 100
	c := faultScript(cfg, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault scripts")
	}
}

func TestConnPassThrough(t *testing.T) {
	in := NewInjector(Config{}) // disabled: wrapping is the identity
	raw := nopConn{}
	if got := in.Conn(raw); got != net.Conn(raw) {
		t.Fatal("disabled injector should return the conn unwrapped")
	}

	// Enabled but zero-probability: bytes flow untouched.
	in = NewInjector(Config{Seed: 1, DelayProb: 0.0001, MaxDelay: time.Nanosecond})
	client, server := pipePair(t, in)
	msg := []byte("hello across the fault layer")
	go func() {
		client.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("relayed %q, want %q", got, msg)
	}
}

func TestConnReset(t *testing.T) {
	in := NewInjector(Config{Seed: 3, ResetProb: 1})
	client, server := pipePair(t, in)
	if _, err := client.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write on reset=1 conn = %v, want ErrInjectedReset", err)
	}
	// Every later operation fails too, and Close is a no-op.
	if _, err := client.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after kill = %v, want ErrInjectedReset", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("close after kill = %v", err)
	}
	// The peer observes a hard close.
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded across an injected reset")
	}
	if in.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", in.Resets())
	}
}

func TestConnPartialWrite(t *testing.T) {
	in := NewInjector(Config{Seed: 5, PartialProb: 1})
	client, server := pipePair(t, in)
	msg := bytes.Repeat([]byte("x"), 64)
	var got []byte
	var rerr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, rerr = io.ReadAll(server)
	}()
	if _, err := client.Write(msg); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partial write = %v, want ErrInjectedReset", err)
	}
	wg.Wait()
	// A strict prefix may land (an RST can also discard it); the full frame
	// never does.
	if rerr == nil && len(got) >= len(msg) {
		t.Fatalf("peer got %d bytes of a torn %d-byte write", len(got), len(msg))
	}
	if in.Resets() != 1 {
		t.Fatalf("Resets (incl. partials) = %d, want 1", in.Resets())
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	// With the budget exhausted up front, a reset=1 config still passes all
	// traffic — sweeps rely on this to guarantee termination.
	in := NewInjector(Config{Seed: 9, ResetProb: 1, MaxFaults: 1})
	c1, s1 := pipePair(t, in)
	if _, err := c1.Write([]byte("a")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("first faulted op = %v, want ErrInjectedReset", err)
	}
	_ = s1
	c2, s2 := pipePair(t, in)
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("post-budget write = %v, want nil", err)
	}
	got := make([]byte, 2)
	s2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(s2, got); err != nil || string(got) != "ok" {
		t.Fatalf("post-budget relay got %q, %v", got, err)
	}
	if in.Resets() != 1 {
		t.Fatalf("Resets = %d, want exactly the budget", in.Resets())
	}
}

// TestProxyRelayAndReset drives a live echo server through the proxy: a
// fault-free config relays bytes bit-exactly, and a reset-heavy config tears
// the relayed session down end to end.
func TestProxyRelayAndReset(t *testing.T) {
	// Echo server = the "real daemon".
	el, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()
	go func() {
		for {
			c, err := el.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	p := NewProxy(el.Addr().String(), Config{Seed: 1, DelayProb: 0.0001, MaxDelay: time.Nanosecond})
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the proxy and back")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	c.Close()

	// Reset-everything proxy: the client-visible session dies.
	pr := NewProxy(el.Addr().String(), Config{Seed: 2, ResetProb: 1})
	raddr, err := pr.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	rc, err := net.Dial("tcp", raddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rc.SetDeadline(time.Now().Add(5 * time.Second))
	rc.Write([]byte("doomed"))
	if _, err := rc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read through reset-everything proxy succeeded")
	}
	if pr.In.Resets() == 0 {
		t.Fatal("proxy injected no resets under reset=1")
	}
}
