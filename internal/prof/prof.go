// Package prof wires Go's stdlib profilers behind three CLI flags
// (-cpuprofile, -memprofile, -trace) shared by cmd/graphfly and
// cmd/bench. All paths are optional; empty strings cost nothing.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins CPU profiling and/or execution tracing into the given
// files (either may be empty) and returns a stop function that flushes
// and closes them. The stop function is always non-nil and idempotent.
func Start(cpuPath, tracePath string) (func(), error) {
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		stops = nil
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("cpu profile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			stop()
			return func() {}, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return func() {}, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	return stop, nil
}

// WriteHeap captures an up-to-date heap profile to path (no-op when path
// is empty).
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // fold garbage into the live-heap picture
	return pprof.Lookup("heap").WriteTo(f, 0)
}
