// Package serve is the concurrent serving front-end over a durable engine
// (DESIGN.md §4.11): many ingest sessions append through the WAL
// group-commit layer, a single applier advances the engine in logged
// order, and readers answer from immutable batch-boundary snapshots. The
// Backend interface makes the loop engine-agnostic — selective
// (SSSP/BFS/SSWP/CC) and local (triangle counting, k-core) engines serve
// through the same code path.
package serve

import (
	"fmt"
	"net"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/wal"
)

// Session frame kinds. Same wal codec framing as the cluster wire protocol
// (dist/wire.go) but a disjoint kind range, so a cluster peer talking to a
// serving port — or vice versa — fails loudly on the first frame.
const (
	skHello     byte = 0x20 // client -> server: [1B role] + optional client identity
	skWelcome   byte = 0x21 // server -> client: alg name, numV, applied seq
	skReject    byte = 0x22 // server -> client: [1B code][reason]; admission or per-batch refusal
	skIngest    byte = 0x23 // client -> server: [8B clientSeq] + one update batch
	skIngestAck byte = 0x24 // server -> client: [8B seq][1B dup] batch durable + ordered
	skGet       byte = 0x25 // client -> server: [4B vertex]
	skValue     byte = 0x26 // server -> client: snapshot seq, vertex, value, parent
	skTopK      byte = 0x27 // client -> server: [4B k]
	skTopKReply byte = 0x28 // server -> client: snapshot seq + (vertex, value) list
	skSubscribe byte = 0x29 // client -> server: push deltas from now on
	skDelta     byte = 0x2a // server -> client: snapshot seq + changed (vertex, value) list
	skStat      byte = 0x2b // client -> server: server status probe
	skStatReply byte = 0x2c // server -> client: applied/logged seq, session count
	skBye       byte = 0x2d // either way: graceful close, with reason
)

// Session roles carried in skHello.
const (
	RoleIngest byte = 1
	RoleQuery  byte = 2
)

// Typed rejection codes carried in skReject. Overloaded and SessionBusy are
// per-batch backpressure (the session survives and may retry); Draining and
// BadRequest end the conversation.
const (
	RejectOverloaded  byte = 1 // admission queue full: server-wide backpressure
	RejectSessionBusy byte = 2 // this session's inflight window is full
	RejectDraining    byte = 3 // server is shutting down; no new batches
	RejectBadRequest  byte = 4 // malformed batch or message
	// RejectDegraded means the WAL cannot accept appends (disk full, I/O
	// errors): the server is read-only until its prober reopens the log.
	// Retryable — back off and resubmit the SAME batch under the SAME
	// clientSeq: the failed attempt may have been logged before the fault,
	// and only the idempotency key keeps the resend exactly-once.
	RejectDegraded byte = 5
)

// RejectError is the typed overload/refusal a client sees for one batch.
type RejectError struct {
	Code   byte
	Reason string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: rejected (code %d): %s", e.Code, e.Reason)
}

// Retryable reports whether the same batch may be resubmitted on this
// session once the server catches up.
func (e *RejectError) Retryable() bool {
	return e.Code == RejectOverloaded || e.Code == RejectSessionBusy || e.Code == RejectDegraded
}

// welcome is the server's hello reply.
type welcome struct {
	AlgName string
	NumV    uint32
	Seq     uint64 // applied sequence at session start
}

func encodeWelcome(w welcome) []byte {
	var e wal.Enc
	e.Str(w.AlgName)
	e.U32(w.NumV)
	e.U64(w.Seq)
	return e.B
}

func decodeWelcome(p []byte) (welcome, error) {
	d := wal.Dec{B: p}
	w := welcome{AlgName: d.Str(), NumV: d.U32(), Seq: d.U64()}
	return w, d.Err("welcome")
}

func encodeReject(code byte, reason string) []byte {
	var e wal.Enc
	e.U8(code)
	e.Str(reason)
	return e.B
}

func decodeReject(p []byte) (*RejectError, error) {
	d := wal.Dec{B: p}
	re := &RejectError{Code: d.U8(), Reason: d.Str()}
	if err := d.Err("reject"); err != nil {
		return nil, err
	}
	return re, nil
}

const updateLen = 4 + 4 + 8 + 1

// encodeIngest frames one batch with its idempotency key. clientSeq 0 means
// untagged (a legacy or anonymous client): the server appends it without
// exactly-once accounting.
func encodeIngest(clientSeq uint64, b graph.Batch) []byte {
	var e wal.Enc
	e.U64(clientSeq)
	e.U32(uint32(len(b)))
	for _, u := range b {
		e.U32(u.Src)
		e.U32(u.Dst)
		e.F64(float64(u.W))
		e.Bool(u.Del)
	}
	return e.B
}

func decodeIngest(p []byte) (uint64, graph.Batch, error) {
	d := wal.Dec{B: p}
	clientSeq := d.U64()
	n := d.Count(updateLen)
	b := make(graph.Batch, n)
	for i := range b {
		b[i].Src = d.U32()
		b[i].Dst = d.U32()
		b[i].W = graph.Weight(d.F64())
		b[i].Del = d.U8() != 0
	}
	return clientSeq, b, d.Err("ingest")
}

// encodeHello frames the session hello: the role byte, plus the client's
// stable identity when it wants exactly-once resume. A bare [1B role] is the
// legacy anonymous form and stays accepted.
func encodeHello(role byte, clientID string) []byte {
	var e wal.Enc
	e.U8(role)
	if clientID != "" {
		e.Str(clientID)
	}
	return e.B
}

func decodeHello(p []byte) (role byte, clientID string, err error) {
	if len(p) == 1 {
		return p[0], "", nil
	}
	d := wal.Dec{B: p}
	role = d.U8()
	clientID = d.Str()
	return role, clientID, d.Err("hello")
}

// value is one per-vertex read reply.
type value struct {
	Seq    uint64 // snapshot sequence the answer is consistent at
	V      uint32
	Val    float64
	Parent int32
}

func encodeValue(v value) []byte {
	var e wal.Enc
	e.U64(v.Seq)
	e.U32(v.V)
	e.F64(v.Val)
	e.I32(v.Parent)
	return e.B
}

func decodeValue(p []byte) (value, error) {
	d := wal.Dec{B: p}
	v := value{Seq: d.U64(), V: d.U32(), Val: d.F64(), Parent: d.I32()}
	return v, d.Err("value")
}

const vvLen = 4 + 8

// vvList is a snapshot-stamped (vertex, value) list: a top-k reply or one
// subscription delta.
type vvList struct {
	Seq  uint64
	Recs []engine.VertexValue
}

func encodeVVList(m vvList) []byte {
	var e wal.Enc
	e.U64(m.Seq)
	e.U32(uint32(len(m.Recs)))
	for _, r := range m.Recs {
		e.U32(uint32(r.V))
		e.F64(r.Val)
	}
	return e.B
}

func decodeVVList(p []byte, what string) (vvList, error) {
	d := wal.Dec{B: p}
	var m vvList
	m.Seq = d.U64()
	n := d.Count(vvLen)
	m.Recs = make([]engine.VertexValue, n)
	for i := range m.Recs {
		m.Recs[i].V = graph.VertexID(d.U32())
		m.Recs[i].Val = d.F64()
	}
	return m, d.Err(what)
}

// Stat is the server status a client can probe.
type Stat struct {
	AppliedSeq uint64 // last batch folded into the published snapshot
	LoggedSeq  uint64 // last batch durably appended
	Sessions   uint32 // live sessions (all roles)
}

func encodeStat(s Stat) []byte {
	var e wal.Enc
	e.U64(s.AppliedSeq)
	e.U64(s.LoggedSeq)
	e.U32(s.Sessions)
	return e.B
}

func decodeStat(p []byte) (Stat, error) {
	d := wal.Dec{B: p}
	s := Stat{AppliedSeq: d.U64(), LoggedSeq: d.U64(), Sessions: d.U32()}
	return s, d.Err("stat")
}

// writeFrame writes one session frame; the wal framing CRCs it end to end.
func writeFrame(conn net.Conn, kind byte, payload []byte) error {
	return wal.WriteFrame(conn, kind, payload)
}
