package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// Config configures a Server over an already-built durable engine.
type Config struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Backend is the durable engine the server owns. The server puts its
	// log in serving (group-commit) mode and closes it on Shutdown. When
	// nil, Durable+Alg below are wrapped in a SelectiveBackend.
	Backend Backend
	// Durable is the selective engine + WAL (legacy configuration; ignored
	// when Backend is set).
	Durable *wal.DurableSelective
	// Alg is the selective algorithm Durable runs; its Better orders top-k
	// replies (legacy configuration; ignored when Backend is set).
	Alg algo.Selective
	// MaxSessions caps concurrent sessions, all roles (default 64).
	MaxSessions int
	// MaxPending caps batches admitted (logged) but not yet applied — the
	// server-wide backpressure window (default 64).
	MaxPending int
	// SessionQueue caps each ingest session's decoded-but-unsubmitted
	// batches (default 4); overflow is a typed RejectSessionBusy.
	SessionQueue int
	// SubBuffer caps buffered deltas per subscriber (default 32); a
	// subscriber that falls further behind is disconnected rather than
	// allowed to stall the applier.
	SubBuffer int
	// Metrics, when non-nil, receives serve.sessions, serve.rejected,
	// serve.group_commit_size, and serve.read_lag_ns.
	Metrics *metrics.Registry
}

func (c Config) maxSessions() int {
	if c.MaxSessions > 0 {
		return c.MaxSessions
	}
	return 64
}

func (c Config) maxPending() int {
	if c.MaxPending > 0 {
		return c.MaxPending
	}
	return 64
}

func (c Config) sessionQueue() int {
	if c.SessionQueue > 0 {
		return c.SessionQueue
	}
	return 4
}

func (c Config) subBuffer() int {
	if c.SubBuffer > 0 {
		return c.SubBuffer
	}
	return 32
}

// logged is one admitted batch riding from the group-commit callback to the
// applier: the WAL already holds it under seq.
type logged struct {
	seq uint64
	b   graph.Batch
	at  time.Time
}

// Server is the long-lived serving front-end: an acceptor, per-session
// goroutines feeding the WAL through the group-commit layer, one applier
// draining the logged queue through the engine in sequence order, and an
// atomically published StateSnapshot per batch boundary that every reader
// answers from.
//
// Ordering contract: a batch is acknowledged only after it is durably
// logged, and the applier consumes batches in exactly the logged order —
// so the state any snapshot exposes is the state recovery would rebuild.
type Server struct {
	cfg Config
	b   Backend
	gc  *wal.GroupCommit
	ln  net.Listener

	// tokens is the admission window: an ingest worker must place a token
	// (non-blocking) before appending, and the applier removes it after the
	// apply. applyQ has the same capacity, which makes the enqueue inside
	// the group-commit callback provably non-blocking.
	tokens chan struct{}
	applyQ chan logged

	snap atomic.Pointer[engine.StateSnapshot]

	mu       sync.Mutex
	draining bool
	stopped  bool  // Shutdown/Abort already ran (or is running)
	failed   error // first applier error; the server refuses new work
	degraded error // first append-path error; read-only until the prober recovers
	proberOn bool
	sessions map[*session]struct{}
	subs     map[*subscriber]struct{}

	acceptDone  chan struct{}
	applierDone chan struct{}
	stopProbe   chan struct{}
	sessWG      sync.WaitGroup
	proberWG    sync.WaitGroup

	mSessions  *metrics.Gauge
	mRejected  *metrics.Counter
	mGroupSize *metrics.Histogram
	mReadLag   *metrics.Histogram
	mDegraded  *metrics.Counter
	mRecovered *metrics.Counter
}

// New starts a server listening on cfg.Addr. The durable engine's log moves
// into serving mode; use Shutdown for a clean stop.
func New(cfg Config) (*Server, error) {
	backend := cfg.Backend
	if backend == nil {
		if cfg.Durable == nil {
			return nil, errors.New("serve: Config.Backend (or Config.Durable) is required")
		}
		backend = SelectiveBackend{D: cfg.Durable, Alg: cfg.Alg}
	}
	s := &Server{
		cfg:         cfg,
		b:           backend,
		tokens:      make(chan struct{}, cfg.maxPending()),
		applyQ:      make(chan logged, cfg.maxPending()),
		sessions:    make(map[*session]struct{}),
		subs:        make(map[*subscriber]struct{}),
		acceptDone:  make(chan struct{}),
		applierDone: make(chan struct{}),
		stopProbe:   make(chan struct{}),
	}
	if r := cfg.Metrics; r != nil {
		s.mSessions = r.Gauge("serve.sessions")
		s.mRejected = r.Counter("serve.rejected")
		s.mGroupSize = r.Histogram("serve.group_commit_size")
		s.mReadLag = r.Histogram("serve.read_lag_ns")
		s.mDegraded = r.Counter("serve.degraded_entries")
		s.mRecovered = r.Counter("serve.degraded_recoveries")
	}
	// Readers have a consistent answer from the first connection on, even
	// before any batch arrives.
	s.snap.Store(s.b.StateSnapshot(s.b.Seq()))
	s.gc = s.b.Group(func(seq uint64, b graph.Batch) {
		// Runs under the append mutex: enqueue in logged order. Never
		// blocks — admission tokens bound entries to cap(applyQ).
		s.applyQ <- logged{seq: seq, b: b, at: time.Now()}
	}, s.mGroupSize)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	go s.applier()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Snapshot returns the currently published read snapshot.
func (s *Server) Snapshot() *engine.StateSnapshot { return s.snap.Load() }

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		s.sessWG.Add(1)
		go func() {
			defer s.sessWG.Done()
			s.serveConn(conn)
		}()
	}
}

// applier is the single consumer of the logged queue: it advances the
// engine batch by batch in WAL order, publishes an immutable snapshot at
// each boundary, and pushes the delta to subscribers.
func (s *Server) applier() {
	defer close(s.applierDone)
	for lg := range s.applyQ {
		s.mu.Lock()
		failed := s.failed
		s.mu.Unlock()
		if failed == nil {
			if _, err := s.b.ApplyLogged(context.Background(), lg.seq, lg.b); err != nil {
				// The batch is durably logged but the in-memory apply died;
				// refuse further work — recovery from the directory is the
				// consistent path (the WAL tail holds everything).
				s.mu.Lock()
				s.failed = err
				s.mu.Unlock()
			} else {
				prev := s.snap.Load()
				next := s.b.StateSnapshot(lg.seq)
				s.snap.Store(next)
				if s.mReadLag != nil {
					s.mReadLag.Observe(time.Since(lg.at).Nanoseconds())
				}
				if deltas := next.Diff(prev); len(deltas) > 0 {
					s.fanout(vvList{Seq: lg.seq, Recs: deltas})
				}
			}
		}
		<-s.tokens // release the admission slot
	}
}

// fanout pushes one delta to every subscriber. A subscriber whose buffer is
// full is disconnected: readers must never exert backpressure on the apply
// path.
func (s *Server) fanout(m vvList) {
	s.mu.Lock()
	var drop []*subscriber
	for sub := range s.subs {
		select {
		case sub.ch <- m:
		default:
			drop = append(drop, sub)
		}
	}
	for _, sub := range drop {
		delete(s.subs, sub)
		close(sub.ch)
	}
	s.mu.Unlock()
}

// admit reserves one admission slot, returning a typed rejection when the
// server is draining, failed, degraded, or at its backpressure window.
func (s *Server) admit() *RejectError {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return &RejectError{Code: RejectDraining, Reason: "server draining"}
	}
	if s.failed != nil {
		s.mu.Unlock()
		return &RejectError{Code: RejectDraining, Reason: "server failed: " + s.failed.Error()}
	}
	if deg := s.degraded; deg != nil {
		s.mu.Unlock()
		return &RejectError{Code: RejectDegraded, Reason: "log unavailable: " + deg.Error()}
	}
	s.mu.Unlock()
	select {
	case s.tokens <- struct{}{}:
		return nil
	default:
		return &RejectError{Code: RejectOverloaded, Reason: fmt.Sprintf("admission window full (%d pending)", cap(s.tokens))}
	}
}

// Degraded reports whether the server is currently refusing ingest because
// the log cannot append (reads keep serving the published snapshot).
func (s *Server) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded != nil
}

// enterDegraded flips the server read-only after an append-path error and
// (once) starts the prober that tries to bring the log back. The triggering
// session already released its token; in-flight appends drain through the
// applier as usual — only *new* ingest is refused.
func (s *Server) enterDegraded(err error) {
	s.mu.Lock()
	if s.degraded == nil {
		s.degraded = err
		if s.mDegraded != nil {
			s.mDegraded.Inc()
		}
	}
	start := !s.proberOn && !s.stopped
	if start {
		s.proberOn = true
		s.proberWG.Add(1)
	}
	s.mu.Unlock()
	if start {
		go s.prober()
	}
}

// prober retries Backend.ReopenLog with capped exponential backoff until the
// log accepts appends again (degraded mode ends) or the server stops.
// ReopenLog itself refuses to run until the applier has drained everything
// the dead log generation acknowledged, so recovery never loses a logged
// batch.
func (s *Server) prober() {
	defer s.proberWG.Done()
	backoff := 2 * time.Millisecond
	for {
		select {
		case <-s.stopProbe:
			return
		case <-time.After(backoff):
		}
		if err := s.b.ReopenLog(); err != nil {
			if backoff *= 2; backoff > 100*time.Millisecond {
				backoff = 100 * time.Millisecond
			}
			continue
		}
		s.mu.Lock()
		s.degraded = nil
		s.proberOn = false
		if s.mRecovered != nil {
			s.mRecovered.Inc()
		}
		s.mu.Unlock()
		return
	}
}

// Shutdown drains and stops the server: new batches are rejected as
// draining, admitted batches finish applying, sessions get a bye, the final
// state is snapshotted (unless the engine died mid-apply), and the log is
// closed. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return errors.New("serve: already stopped")
	}
	s.stopped = true
	s.draining = true
	s.mu.Unlock()
	close(s.stopProbe)
	s.proberWG.Wait()
	s.ln.Close()
	<-s.acceptDone

	// Occupy the whole admission window: once every token is placed, no
	// batch is admitted-but-unapplied, so the engine is at a boundary.
	for i := 0; i < cap(s.tokens); i++ {
		select {
		case s.tokens <- struct{}{}:
		case <-ctx.Done():
			// A session may still be mid-append, so applyQ cannot be closed
			// safely; the process is exiting and recovery replays the WAL.
			return fmt.Errorf("serve: drain: %w", ctx.Err())
		}
	}
	close(s.applyQ)
	<-s.applierDone
	var derr error

	s.mu.Lock()
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
	}
	sess := make([]*session, 0, len(s.sessions))
	for c := range s.sessions {
		sess = append(sess, c)
	}
	failed := s.failed
	s.mu.Unlock()
	for _, c := range sess {
		c.bye("server shutting down")
	}
	s.sessWG.Wait()

	if derr == nil && failed == nil && !s.b.Dirty() {
		if err := s.b.Snapshot(); err != nil && !errors.Is(err, wal.ErrEngineDirty) {
			derr = err
		}
	}
	if err := s.b.Close(); err != nil && derr == nil {
		derr = err
	}
	if failed != nil && derr == nil {
		return fmt.Errorf("serve: applier failed: %w", failed)
	}
	return derr
}

// Abort is the in-process stand-in for kill -9: it stops the server WITHOUT
// a final snapshot, final fsync, or session byes — exactly the state a dead
// process leaves on disk. Chaos tests use it so the next Recover sees what a
// real crash would leave; production stops should use Shutdown.
func (s *Server) Abort() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.draining = true
	s.mu.Unlock()
	close(s.stopProbe)
	s.proberWG.Wait()
	s.ln.Close()
	<-s.acceptDone

	// Let in-flight appends land so the applier can be stopped by closing
	// its queue (goroutine hygiene, not durability: anything the dead
	// process had in memory is discarded anyway — recovery reads the disk).
	for i := 0; i < cap(s.tokens); i++ {
		s.tokens <- struct{}{}
	}
	close(s.applyQ)
	<-s.applierDone

	s.mu.Lock()
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
	}
	sess := make([]*session, 0, len(s.sessions))
	for c := range s.sessions {
		sess = append(sess, c)
	}
	s.mu.Unlock()
	for _, c := range sess {
		c.conn.Close() // no bye: the peer sees the drop a crash produces
	}
	s.sessWG.Wait()
	s.b.Abandon()
}
