package serve

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/wal"
)

// The in-process serving suite: 8 concurrent ingest sessions and 8 readers
// race against one server under FsyncAlways and -race, then the drained
// directory must recover to exactly the state that was served.

func valsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsInf(a[i], 1) && math.IsInf(b[i], 1)) {
			return false
		}
	}
	return true
}

// testStream builds an initial graph plus insert-only batches partitioned
// across sessions. Insert-only with disjoint edges makes the final graph —
// and therefore the selective fixpoint — independent of how the sessions'
// appends interleave in the log.
func testStream(seed uint64, sessions, perSession, batchSize int) (numV int, initial []graph.Edge, perSess [][]graph.Batch) {
	cfg := gen.TestDataset(seed)
	edges := gen.Generate(cfg)
	need := sessions * perSession * batchSize
	if len(edges) < need+need/2 {
		panic("serve: test dataset too small")
	}
	initial = edges[:len(edges)-need]
	stream := edges[len(edges)-need:]
	perSess = make([][]graph.Batch, sessions)
	for s := 0; s < sessions; s++ {
		for i := 0; i < perSession; i++ {
			var b graph.Batch
			for j := 0; j < batchSize; j++ {
				b = append(b, graph.Update{Edge: stream[(s*perSession+i)*batchSize+j]})
			}
			perSess[s] = append(perSess[s], b)
		}
	}
	return cfg.NumV, initial, perSess
}

func newTestServer(t *testing.T, cfg Config, alg algo.Selective, numV int, initial []graph.Edge, reg *metrics.Registry) (*Server, *wal.DurableSelective, wal.DurableConfig) {
	t.Helper()
	dc := wal.DurableConfig{Wal: wal.Options{Dir: t.TempDir(), Policy: wal.FsyncAlways, Metrics: reg}}
	d, err := wal.NewDurableSelective(graph.FromEdges(numV, initial), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Durable = d
	cfg.Alg = alg
	cfg.Metrics = reg
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, d, dc
}

func TestServeConcurrentIngestAndReaders(t *testing.T) {
	const (
		sessions   = 8
		readers    = 8
		perSession = 6
		batchSize  = 40
	)
	alg := algo.SSSP{Src: 0}
	numV, initial, perSess := testStream(31, sessions, perSession, batchSize)
	reg := metrics.NewRegistry()
	srv, d, dc := newTestServer(t, Config{}, alg, numV, initial, reg)
	addr := srv.Addr()
	total := uint64(sessions * perSession)

	ingestDone := make(chan struct{})
	var ingWG, readWG sync.WaitGroup
	fail := make(chan error, sessions+readers+1)

	// 8 concurrent ingest sessions, each submitting its own batches in order.
	for s := 0; s < sessions; s++ {
		ingWG.Add(1)
		go func(s int) {
			defer ingWG.Done()
			c, err := Dial(addr, RoleIngest, 5*time.Second)
			if err != nil {
				fail <- err
				return
			}
			defer c.Close()
			var last uint64
			for i, b := range perSess[s] {
				seq, err := c.IngestRetry(b)
				if err != nil {
					fail <- err
					return
				}
				if seq <= last {
					t.Errorf("session %d: batch %d acked seq %d after %d", s, i, seq, last)
				}
				last = seq
			}
		}(s)
	}

	// 8 readers hammer the snapshot API while ingest is in flight. Each
	// session's observed snapshot sequence must be monotone, and Stat's
	// logged watermark must never trail its applied watermark.
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			c, err := Dial(addr, RoleQuery, 5*time.Second)
			if err != nil {
				fail <- err
				return
			}
			defer c.Close()
			rnd := rng.New(uint64(100 + r))
			var lastSeq uint64
			for {
				select {
				case <-ingestDone:
					return
				default:
				}
				switch rnd.Intn(3) {
				case 0:
					v := graph.VertexID(rnd.Intn(numV))
					_, _, seq, err := c.Get(v)
					if err != nil {
						fail <- err
						return
					}
					if seq < lastSeq {
						t.Errorf("reader %d: snapshot went backwards %d -> %d", r, lastSeq, seq)
					}
					lastSeq = seq
				case 1:
					recs, _, err := c.TopK(5)
					if err != nil {
						fail <- err
						return
					}
					if len(recs) > 5 {
						t.Errorf("reader %d: top-5 returned %d records", r, len(recs))
					}
				case 2:
					st, err := c.Stat()
					if err != nil {
						fail <- err
						return
					}
					if st.LoggedSeq < st.AppliedSeq {
						t.Errorf("reader %d: logged %d < applied %d", r, st.LoggedSeq, st.AppliedSeq)
					}
				}
			}
		}(r)
	}

	// One subscriber collects the delta stream until the server's bye.
	subDone := make(chan struct{})
	var deltaSeqs []uint64
	go func() {
		defer close(subDone)
		c, err := Dial(addr, RoleQuery, 5*time.Second)
		if err != nil {
			fail <- err
			return
		}
		defer c.Close()
		if err := c.Subscribe(); err != nil {
			fail <- err
			return
		}
		for {
			dlt, ok, err := c.Next(10 * time.Second)
			if err != nil || !ok {
				return // bye (shutdown) or dropped subscription
			}
			if n := len(deltaSeqs); n > 0 && dlt.Seq <= deltaSeqs[n-1] {
				t.Errorf("delta seq %d after %d", dlt.Seq, deltaSeqs[n-1])
			}
			deltaSeqs = append(deltaSeqs, dlt.Seq)
		}
	}()

	ingWG.Wait()
	close(ingestDone)
	readWG.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-subDone
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	if got := d.Seq(); got != total {
		t.Fatalf("applied through seq %d, want %d (every acked batch applied)", got, total)
	}
	if got := srv.Snapshot().Seq; got != total {
		t.Fatalf("published snapshot at seq %d, want %d", got, total)
	}
	if len(deltaSeqs) == 0 {
		t.Fatal("subscriber saw no deltas")
	}

	// Every append rides in exactly one commit group.
	if sum := reg.Histogram("serve.group_commit_size").Sum(); sum != int64(total) {
		t.Fatalf("group_commit_size sum %d, want %d", sum, total)
	}

	// Oracle: the final graph is interleaving-independent (disjoint inserts),
	// so the served state must equal a from-scratch solve.
	g := graph.FromEdges(numV, initial)
	for _, sb := range perSess {
		for _, b := range sb {
			g.ApplyBatch(b)
		}
	}
	vals, _ := algo.SolveSelective(g, alg)
	if !valsEqual(d.Eng.Values(), vals) {
		t.Fatal("served state differs from oracle")
	}

	// The drained directory recovers to the exact served state.
	rec, rs, err := wal.RecoverSelective(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatalf("recovery after drain: %v", err)
	}
	defer rec.Close()
	if rs.LastSeq != total || rs.Replayed != int(rs.LastSeq-rs.SnapshotSeq) {
		t.Fatalf("recovery stats %+v, want LastSeq %d with exactly-once replay", rs, total)
	}
	if !valsEqual(rec.Eng.Values(), d.Eng.Values()) {
		t.Fatal("recovered state differs from served state")
	}
}

// mirrorEdges doubles the initial edge list so local (undirected)
// algorithms start from a symmetric graph, matching what graphflyd does.
func mirrorEdges(initial []graph.Edge) []graph.Edge {
	both := make([]graph.Edge, 0, 2*len(initial))
	for _, e := range initial {
		both = append(both, e, graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W})
	}
	return both
}

func newLocalTestServer(t *testing.T, cfg Config, alg algo.Local, numV int, initial []graph.Edge) (*Server, *wal.DurableLocal, wal.DurableConfig) {
	t.Helper()
	dc := wal.DurableConfig{Wal: wal.Options{Dir: t.TempDir(), Policy: wal.FsyncAlways}, SnapshotEvery: 4}
	d, err := wal.NewDurableLocal(graph.FromEdges(numV, mirrorEdges(initial)), alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Backend = LocalBackend{D: d, Alg: alg}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, d, dc
}

// localOracle replays the stream onto a from-scratch undirected graph the
// same way the serving engine sees it (symmetrized batches) and solves it
// statically.
func localOracle(alg algo.Local, numV int, initial []graph.Edge, batches []graph.Batch) []float64 {
	ref := graph.FromEdges(numV, mirrorEdges(initial))
	for _, b := range batches {
		ref.ApplyBatch(engine.Symmetrize(b))
	}
	return alg.Solve(ref)
}

// awaitApplied polls Stat until the applier has folded every acked batch
// into the published snapshot, checking the logged/applied watermark
// invariant along the way.
func awaitApplied(t *testing.T, c *Client, total uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if st.LoggedSeq < st.AppliedSeq {
			t.Errorf("logged %d < applied %d", st.LoggedSeq, st.AppliedSeq)
		}
		if st.AppliedSeq == total {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("applier stuck at seq %d, want %d", st.AppliedSeq, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeLocalTriangleTopK serves incremental triangle counting through
// the local backend: after a streamed ingest, top-k replies from the
// published snapshot must rank vertices by triangle count and agree
// bit-exactly with a from-scratch count, and the drained directory must
// recover to the served state.
func TestServeLocalTriangleTopK(t *testing.T) {
	alg := algo.TriangleCount{}
	numV, initial, perSess := testStream(33, 1, 4, 30)
	srv, _, dc := newLocalTestServer(t, Config{}, alg, numV, initial)
	addr := srv.Addr()
	total := uint64(len(perSess[0]))

	ing, err := Dial(addr, RoleIngest, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := ing.Welcome.AlgName; got != "triangle" {
		t.Fatalf("welcome algorithm %q, want triangle", got)
	}
	for i, b := range perSess[0] {
		seq, err := ing.IngestRetry(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("batch %d acked seq %d", i, seq)
		}
	}
	ing.Close()

	qry, err := Dial(addr, RoleQuery, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	awaitApplied(t, qry, total)
	want := localOracle(alg, numV, initial, perSess[0])

	// Top-k triangle counts from the published snapshot: ranked by Better
	// (descending count) and bit-exact against the oracle.
	recs, seq, err := qry.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if seq != total {
		t.Fatalf("top-k answered at seq %d, want %d", seq, total)
	}
	if len(recs) != 5 {
		t.Fatalf("top-5 returned %d records", len(recs))
	}
	best := want[0]
	for _, w := range want {
		if w > best {
			best = w
		}
	}
	if recs[0].Val != best {
		t.Fatalf("top-1 count %g, want the global max %g", recs[0].Val, best)
	}
	for i, r := range recs {
		if r.Val != want[r.V] {
			t.Errorf("top-k[%d]: vertex %d count %g, oracle %g", i, r.V, r.Val, want[r.V])
		}
		if i > 0 && alg.Better(r.Val, recs[i-1].Val) {
			t.Errorf("top-k out of order at %d: %g after %g", i, r.Val, recs[i-1].Val)
		}
	}

	// Point reads come from the same snapshot; local snapshots have no
	// key-edge parents.
	for v := 0; v < numV; v += 17 {
		val, parent, gseq, err := qry.Get(graph.VertexID(v))
		if err != nil {
			t.Fatal(err)
		}
		if gseq != total || val != want[v] || parent != -1 {
			t.Errorf("get %d: (val %g, parent %d, seq %d), want (%g, -1, %d)", v, val, parent, gseq, want[v], total)
		}
	}
	qry.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rec, rs, err := wal.RecoverLocal(alg, engine.Config{Workers: 2}, dc)
	if err != nil {
		t.Fatalf("recovery after drain: %v", err)
	}
	defer rec.Close()
	if rs.LastSeq != total || rs.Replayed != int(rs.LastSeq-rs.SnapshotSeq) {
		t.Fatalf("recovery stats %+v, want LastSeq %d with exactly-once replay", rs, total)
	}
	if !valsEqual(rec.Eng.Values(), want) {
		t.Fatal("recovered triangle counts differ from oracle")
	}
}

// TestServeLocalKCoreStat serves k-core maintenance through the local
// backend: stat probes stay consistent while the stream applies, and a
// full-width top-k (the consistent point-in-time dump) must equal the
// from-scratch coreness of the final graph.
func TestServeLocalKCoreStat(t *testing.T) {
	alg := algo.KCore{}
	numV, initial, perSess := testStream(34, 1, 4, 30)
	srv, d, _ := newLocalTestServer(t, Config{}, alg, numV, initial)
	addr := srv.Addr()
	total := uint64(len(perSess[0]))

	ing, err := Dial(addr, RoleIngest, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := ing.Welcome.AlgName; got != "kCore" {
		t.Fatalf("welcome algorithm %q, want kCore", got)
	}
	qry, err := Dial(addr, RoleQuery, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave stat probes with ingest: the logged watermark must never
	// trail the applied one mid-stream.
	for i, b := range perSess[0] {
		if _, err := ing.IngestRetry(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		st, err := qry.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if st.LoggedSeq < st.AppliedSeq {
			t.Errorf("after batch %d: logged %d < applied %d", i, st.LoggedSeq, st.AppliedSeq)
		}
		if st.Sessions != 2 {
			t.Errorf("after batch %d: stat reports %d sessions, want 2", i, st.Sessions)
		}
	}
	ing.Close()
	awaitApplied(t, qry, total)

	// The full-width top-k is a consistent coreness dump of every vertex.
	want := localOracle(alg, numV, initial, perSess[0])
	recs, seq, err := qry.TopK(numV)
	if err != nil {
		t.Fatal(err)
	}
	if seq != total || len(recs) != numV {
		t.Fatalf("dump: %d records at seq %d, want %d at %d", len(recs), seq, numV, total)
	}
	got := make([]float64, numV)
	for _, r := range recs {
		got[r.V] = r.Val
	}
	if !valsEqual(got, want) {
		t.Fatal("served coreness differs from from-scratch k-core")
	}
	if !valsEqual(d.Eng.Values(), want) {
		t.Fatal("engine coreness differs from from-scratch k-core")
	}
	qry.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeTypedRejects(t *testing.T) {
	alg := algo.SSSP{Src: 0}
	numV, initial, perSess := testStream(32, 1, 1, 10)
	srv, _, _ := newTestServer(t, Config{MaxSessions: 2}, alg, numV, initial, metrics.NewRegistry())
	addr := srv.Addr()

	ing, err := Dial(addr, RoleIngest, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	qry, err := Dial(addr, RoleQuery, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Session cap: the third concurrent session gets a retryable overload.
	if _, err := Dial(addr, RoleQuery, 5*time.Second); err == nil {
		t.Fatal("third session admitted past MaxSessions=2")
	} else if re, ok := err.(*RejectError); !ok || re.Code != RejectOverloaded || !re.Retryable() {
		t.Fatalf("session-cap reject: got %v, want retryable RejectOverloaded", err)
	}

	// A malformed batch is refused before the WAL, and the session survives.
	bad := graph.Batch{{Edge: graph.Edge{Src: graph.VertexID(numV + 7), Dst: 0, W: 1}}}
	if _, err := ing.Ingest(bad); err == nil {
		t.Fatal("out-of-range batch accepted")
	} else if re, ok := err.(*RejectError); !ok || re.Code != RejectBadRequest || re.Retryable() {
		t.Fatalf("bad-batch reject: got %v, want non-retryable RejectBadRequest", err)
	}
	if seq, err := ing.Ingest(perSess[0][0]); err != nil || seq != 1 {
		t.Fatalf("valid ingest after bad-batch reject: seq %d, %v", seq, err)
	}

	// Reads validate their arguments the same way.
	if _, _, _, err := qry.Get(graph.VertexID(numV + 7)); err == nil {
		t.Fatal("out-of-range get answered")
	} else if re, ok := err.(*RejectError); !ok || re.Code != RejectBadRequest {
		t.Fatalf("bad-get reject: got %v", err)
	}
	if _, _, err := qry.TopK(0); err == nil {
		t.Fatal("top-0 answered")
	}

	// Ingest on a query session is a role violation that ends the session.
	if _, err := qry.Ingest(perSess[0][0]); err == nil {
		t.Fatal("ingest accepted on a query session")
	} else if re, ok := err.(*RejectError); !ok || re.Code != RejectBadRequest {
		t.Fatalf("role-violation reject: got %v", err)
	}
	qry.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := Dial(addr, RoleQuery, time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
