package serve

import (
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/wal"
)

// writeTimeout bounds every session write so a client that stops reading
// cannot pin a server goroutine forever.
const writeTimeout = 30 * time.Second

// session is one accepted connection. Its read loop decodes frames; ingest
// batches go through a bounded queue to a single worker goroutine (so each
// session's batches reach the WAL in submission order — per-session FIFO),
// and reads are answered inline from the published snapshot.
type session struct {
	srv      *Server
	conn     net.Conn
	role     byte
	clientID string // stable identity for exactly-once resume; "" = anonymous

	wmu sync.Mutex // serializes conn writes (worker, read loop, pump)

	q     chan ingestReq // bounded ingest queue feeding the worker
	qdone chan struct{}  // closed when the worker has drained q

	closeOnce sync.Once
}

// ingestReq is one decoded batch with its idempotency key (clientSeq 0 =
// untagged).
type ingestReq struct {
	clientSeq uint64
	b         graph.Batch
}

// write sends one frame under the write mutex with a bounded deadline.
func (c *session) write(kind byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return writeFrame(c.conn, kind, payload)
}

// reject sends one typed refusal; the session stays open for retryable
// codes.
func (c *session) reject(code byte, reason string) {
	if m := c.srv.mRejected; m != nil {
		m.Inc()
	}
	c.write(skReject, encodeReject(code, reason))
}

// bye sends a graceful close and shuts the conn down.
func (c *session) bye(reason string) {
	c.closeOnce.Do(func() {
		c.write(skBye, encodeReject(0, reason))
		c.conn.Close()
	})
}

// serveConn runs one session to completion: hello/admission, then the
// frame loop.
func (s *Server) serveConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(writeTimeout))
	kind, payload, err := wal.ReadFrame(conn)
	if err != nil || kind != skHello {
		conn.Close()
		return
	}
	role, clientID, err := decodeHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	c := &session{
		srv:      s,
		conn:     conn,
		role:     role,
		clientID: clientID,
		q:        make(chan ingestReq, s.cfg.sessionQueue()),
		qdone:    make(chan struct{}),
	}
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		c.reject(RejectDraining, "server draining")
		conn.Close()
		return
	case len(s.sessions) >= s.cfg.maxSessions():
		s.mu.Unlock()
		c.reject(RejectOverloaded, "session limit reached")
		conn.Close()
		return
	case role != RoleIngest && role != RoleQuery:
		s.mu.Unlock()
		c.reject(RejectBadRequest, "unknown role")
		conn.Close()
		return
	}
	s.sessions[c] = struct{}{}
	n := len(s.sessions)
	s.mu.Unlock()
	if s.mSessions != nil {
		s.mSessions.Set(float64(n))
	}
	if role == RoleIngest {
		// Advertise the writer so group-commit sync leaders hold the
		// commit window open while several ingest sessions are connected.
		s.gc.AddWriter(1)
	}
	defer func() {
		if role == RoleIngest {
			s.gc.AddWriter(-1)
		}
		s.mu.Lock()
		delete(s.sessions, c)
		n := len(s.sessions)
		s.mu.Unlock()
		if s.mSessions != nil {
			s.mSessions.Set(float64(n))
		}
		c.bye("")
	}()

	c.write(skWelcome, encodeWelcome(welcome{
		AlgName: s.b.AlgName(),
		NumV:    uint32(s.snap.Load().NumVertices()),
		Seq:     s.snap.Load().Seq,
	}))

	go c.ingestWorker()
	defer func() {
		close(c.q)
		<-c.qdone
	}()

	for {
		conn.SetReadDeadline(time.Time{}) // sessions may idle between requests
		kind, payload, err := wal.ReadFrame(conn)
		if err != nil {
			return // conn closed or corrupt frame: drop the session
		}
		switch kind {
		case skIngest:
			if role != RoleIngest {
				c.reject(RejectBadRequest, "ingest on a query session")
				return
			}
			cseq, b, derr := decodeIngest(payload)
			if derr != nil {
				c.reject(RejectBadRequest, derr.Error())
				return
			}
			if cerr := s.b.CheckBatch(b); cerr != nil {
				// Malformed content is rejected before it can reach the WAL,
				// but the session may continue with its next batch.
				c.reject(RejectBadRequest, cerr.Error())
				continue
			}
			select {
			case c.q <- ingestReq{clientSeq: cseq, b: b}:
			default:
				c.reject(RejectSessionBusy, "session queue full")
			}
		case skGet:
			c.handleGet(payload)
		case skTopK:
			c.handleTopK(payload)
		case skStat:
			c.handleStat()
		case skSubscribe:
			s.addSubscriber(c)
		case skBye:
			return
		default:
			c.reject(RejectBadRequest, "unknown frame kind")
			return
		}
	}
}

// ingestWorker drains the session queue in FIFO order: admission token,
// group-commit append (durable on return), then the ack carrying the
// assigned sequence and whether the batch was a deduplicated resend. An
// append failure no longer kills the session: the server flips to degraded
// (read-only) mode, the batch is rejected as RejectDegraded, and the client
// resubmits the same clientSeq once the prober brings the log back — the
// dedup window keeps an append that landed before the fault exactly-once.
func (c *session) ingestWorker() {
	defer close(c.qdone)
	for r := range c.q {
		if re := c.srv.admit(); re != nil {
			c.reject(re.Code, re.Reason)
			continue
		}
		seq, dup, err := c.srv.gc.AppendTagged(c.clientID, r.clientSeq, r.b)
		if err != nil {
			// seq == 0: nothing was logged or enqueued (a torn write, a
			// poisoned log, or a dup whose durability re-check failed), so
			// the reserved slot must be released here. seq != 0: only the
			// fsync failed — the frame IS logged, onAppend enqueued it, and
			// the applier releases the slot after applying, exactly like a
			// healthy append whose ack was lost; the client's resend of the
			// same clientSeq dedups against it.
			if seq == 0 {
				<-c.srv.tokens
			}
			c.srv.enterDegraded(err)
			c.reject(RejectDegraded, "append failed: "+err.Error())
			continue
		}
		if dup {
			// A resend of an already-logged batch: acked with its original
			// sequence, never re-applied. Release the unused apply slot.
			<-c.srv.tokens
		}
		var e wal.Enc
		e.U64(seq)
		e.Bool(dup)
		c.write(skIngestAck, e.B)
	}
}

func (c *session) handleGet(payload []byte) {
	d := wal.Dec{B: payload}
	v := d.U32()
	if d.Err("get") != nil {
		c.reject(RejectBadRequest, "malformed get")
		return
	}
	snap := c.srv.snap.Load()
	val, parent, ok := snap.Value(graph.VertexID(v))
	if !ok {
		c.reject(RejectBadRequest, "vertex out of range")
		return
	}
	c.write(skValue, encodeValue(value{Seq: snap.Seq, V: v, Val: val, Parent: parent}))
}

func (c *session) handleTopK(payload []byte) {
	d := wal.Dec{B: payload}
	k := int(d.U32())
	if d.Err("topk") != nil || k <= 0 || k > 1<<20 {
		c.reject(RejectBadRequest, "malformed top-k")
		return
	}
	snap := c.srv.snap.Load()
	c.write(skTopKReply, encodeVVList(vvList{Seq: snap.Seq, Recs: snap.TopK(k, c.srv.b.Better)}))
}

func (c *session) handleStat() {
	s := c.srv
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	c.write(skStatReply, encodeStat(Stat{
		AppliedSeq: s.snap.Load().Seq,
		LoggedSeq:  s.gc.LastSeq(),
		Sessions:   uint32(n),
	}))
}

// subscriber is one delta stream: the applier fans each batch's changed
// vertices into ch, and the pump goroutine writes them to the session.
type subscriber struct {
	sess *session
	ch   chan vvList
}

func (s *Server) addSubscriber(c *session) {
	sub := &subscriber{sess: c, ch: make(chan vvList, s.cfg.subBuffer())}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		c.reject(RejectDraining, "server draining")
		return
	}
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	s.sessWG.Add(1)
	go func() {
		defer s.sessWG.Done()
		sub.pump()
	}()
}

// pump writes deltas until the channel closes (shutdown or overflow drop)
// or the write fails (dead client). On exit it makes sure the subscriber is
// unregistered and the session torn down, so a stalled reader costs the
// server nothing.
func (sub *subscriber) pump() {
	srv := sub.sess.srv
	for m := range sub.ch {
		if err := sub.sess.write(skDelta, encodeVVList(m)); err != nil {
			break
		}
	}
	srv.mu.Lock()
	delete(srv.subs, sub)
	srv.mu.Unlock()
	sub.sess.bye("subscription ended")
}
